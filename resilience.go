package intertubes

import (
	"context"
	"fmt"
	"strings"

	"intertubes/internal/obs"
	"intertubes/internal/report"
	"intertubes/internal/resilience"
)

// resilience.go extends the Study with the physical-robustness
// analyses the paper defers to future work ("we intend to analyze
// different dimensions of network resilience"): fiber-cut impact,
// targeted vs random cut strategies, per-provider partition cost, and
// conduit criticality.

// CutImpact evaluates cutting the given number of most-shared conduits
// against every mapped ISP.
func (s *Study) CutImpact(k int) []resilience.Impact {
	cuts := resilience.TargetedBySharing(s.mx, k)
	return resilience.CutImpact(s.res.Map, s.mx, cuts)
}

// PartitionCosts returns, per ISP, the minimum number of conduit cuts
// that splits its backbone.
func (s *Study) PartitionCosts() []resilience.PartitionCost {
	return resilience.PartitionCosts(s.res.Map, s.mx.ISPs)
}

// Criticality ranks the k most path-critical conduits.
func (s *Study) Criticality(k int) []resilience.CriticalConduit {
	return resilience.Criticality(s.res.Map, s.mx, k)
}

// RenderResilience renders the full resilience report: criticality,
// targeted-vs-random cuts, and partition costs.
func (s *Study) RenderResilience(k int) string {
	if k <= 0 {
		k = 8
	}
	_, sp := obs.Trace(context.Background(), "study.resilience")
	sp.SetItems(int64(k))
	defer sp.End()
	var b strings.Builder

	crit := s.Criticality(10)
	t := report.Table{
		Title:   "Conduit criticality: shortest-path betweenness vs sharing",
		Headers: []string{"Location", "Location", "betweenness", "shared by"},
	}
	for _, c := range crit {
		t.AddRow(c.A, c.B, c.Betweenness, c.Sharing)
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	bySharing := resilience.MeanDisconnection(
		resilience.CutImpact(s.res.Map, s.mx, resilience.TargetedBySharing(s.mx, k)))
	byBetween := resilience.MeanDisconnection(
		resilience.CutImpact(s.res.Map, s.mx, resilience.TargetedByBetweenness(s.res.Map, k)))
	random := resilience.RandomCuts(s.res.Map, s.mx, k, 10, s.opts.Seed+3)
	fmt.Fprintf(&b, "cutting %d conduits, mean fraction of provider node pairs disconnected:\n", k)
	fmt.Fprintf(&b, "  random cuts:                 %.4f\n", random)
	fmt.Fprintf(&b, "  targeted (most shared):      %.4f (%.1fx random)\n", bySharing, ratio(bySharing, random))
	fmt.Fprintf(&b, "  targeted (most between):     %.4f (%.1fx random)\n\n", byBetween, ratio(byBetween, random))

	costs := s.PartitionCosts()
	t2 := report.Table{
		Title:   "Minimum conduit cuts to partition each provider's backbone",
		Headers: []string{"ISP", "nodes", "min cuts"},
	}
	for _, pc := range costs {
		t2.AddRow(pc.ISP, pc.Nodes, pc.MinCuts)
	}
	b.WriteString(t2.String())
	b.WriteString("every backbone has degree-1 spurs, so one or two targeted cuts\n")
	b.WriteString("partition any single provider - the shared-conduit story of §4 in\n")
	b.WriteString("its starkest form.\n")
	return b.String()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
