// Package intertubes reproduces "InterTubes: A Study of the US
// Long-haul Fiber-optic Infrastructure" (Durairajan, Barford, Sommers,
// Willinger — SIGCOMM 2015) as a Go library.
//
// A Study wires the whole reproduction together:
//
//	study := intertubes.NewStudy(intertubes.Options{Seed: 42})
//	fmt.Println(study.RenderFigure1())       // the long-haul map
//	fmt.Println(study.RenderFigure6())       // conduit sharing
//	fmt.Println(study.RenderTable5())        // peering suggestions
//
// The heavy stages — the §2 map construction, the §4.3 traceroute
// campaign, the §5 mitigation analyses — run lazily on first use and
// are cached. Everything is deterministic in Options.Seed.
//
// Each experiment is also accessible as data (Result, RiskMatrix,
// Campaign, ...) so downstream code can run its own analyses; the
// internal packages (geo, graph, atlas, fiber, records, mapbuilder,
// risk, traceroute, mitigate, report) are the implementation and are
// importable within this module.
package intertubes

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/mitigate"
	"intertubes/internal/obs"
	"intertubes/internal/par"
	"intertubes/internal/records"
	"intertubes/internal/report"
	"intertubes/internal/risk"
	"intertubes/internal/scenario"
	"intertubes/internal/traceroute"
)

// Options configures a Study.
type Options struct {
	// Seed drives every random choice; equal options give bit-
	// identical studies. Defaults to 42, the seed used throughout
	// EXPERIMENTS.md.
	Seed int64
	// Probes is the traceroute campaign size (default 200000; the
	// paper used 4.9M over three months).
	Probes int
	// RecordsCoverage, RecordsRecall, RecordsFalseRate tune the
	// public-records corpus noise (defaults 0.9 / 0.9 / 0.04).
	RecordsCoverage  float64
	RecordsRecall    float64
	RecordsFalseRate float64
	// AddConduits is the k of the §5.2 sweep (default 10).
	AddConduits int
	// ColocationBufferKm is the co-location buffer of §3 (default 15).
	ColocationBufferKm float64
	// LatencyMaxPairs caps the §5.3 study size (default 3000).
	LatencyMaxPairs int
	// Workers bounds the worker pool shared by the parallel analysis
	// stages — the §3 co-location overlap, the §4.3 campaign, the
	// §5.2 conduit sweep, and the §5.3 latency study. 0 means all
	// CPUs; 1 forces serial execution. Every stage produces
	// bit-identical results for any value (see DESIGN.md, "Parallel
	// execution").
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Probes == 0 {
		o.Probes = 200000
	}
	if o.RecordsCoverage == 0 {
		o.RecordsCoverage = 0.9
	}
	if o.RecordsRecall == 0 {
		o.RecordsRecall = 0.9
	}
	if o.RecordsFalseRate == 0 {
		o.RecordsFalseRate = 0.04
	}
	if o.AddConduits == 0 {
		o.AddConduits = 10
	}
	if o.ColocationBufferKm == 0 {
		o.ColocationBufferKm = 15
	}
	if o.LatencyMaxPairs == 0 {
		o.LatencyMaxPairs = 3000
	}
	return o
}

// Study is a complete, lazily evaluated reproduction of the paper.
type Study struct {
	opts Options

	res  *mapbuilder.Result
	mx   *risk.Matrix
	camp *traceroute.Campaign
	lat  []mitigate.PairLatency
	rob  []mitigate.ISPRobustness
	add  *mitigate.AddResult
	colo []geo.Colocation
	scen *scenario.Cache
}

// NewStudy builds the long-haul map (§2) and the risk matrix (§4.1).
func NewStudy(opts Options) *Study {
	opts = opts.withDefaults()
	_, buildSpan := obs.Trace(context.Background(), "study.mapbuild")
	res := mapbuilder.Build(mapbuilder.Options{
		Seed: opts.Seed,
		Records: records.Options{
			Coverage:        opts.RecordsCoverage,
			TenantRecall:    opts.RecordsRecall,
			FalseTenantRate: opts.RecordsFalseRate,
			Seed:            opts.Seed + 1,
		},
	})
	buildSpan.SetItems(int64(len(res.Map.Conduits)))
	buildSpan.End()
	_, riskSpan := obs.Trace(context.Background(), "study.riskmatrix")
	mx := risk.Build(res.Map, nil)
	riskSpan.SetItems(int64(len(res.Map.Conduits)))
	riskSpan.End()
	return &Study{
		opts: opts,
		res:  res,
		mx:   mx,
	}
}

// Result exposes the full §2 build (map, atlas, corpus, ground truth).
func (s *Study) Result() *mapbuilder.Result { return s.res }

// Map returns the constructed long-haul fiber map.
func (s *Study) Map() *fiber.Map { return s.res.Map }

// RiskMatrix returns the §4.1 risk matrix over the 20 mapped ISPs.
func (s *Study) RiskMatrix() *risk.Matrix { return s.mx }

// Campaign runs (once) and returns the §4.3 traceroute campaign.
func (s *Study) Campaign() *traceroute.Campaign {
	if s.camp == nil {
		ctx, sp := obs.Trace(context.Background(), "study.campaign")
		sp.SetWorkers(par.Workers(s.opts.Workers))
		s.camp, _ = traceroute.RunCtx(ctx, s.res, traceroute.Options{
			N:       s.opts.Probes,
			Seed:    s.opts.Seed + 2,
			Workers: s.opts.Workers,
		}) // background-derived ctx: cannot fail
		sp.SetItems(int64(s.camp.Total))
		sp.End()
	}
	return s.camp
}

// Latency runs (once) and returns the §5.3 study.
func (s *Study) Latency() []mitigate.PairLatency {
	if s.lat == nil {
		_, sp := obs.Trace(context.Background(), "study.latency")
		sp.SetWorkers(par.Workers(s.opts.Workers))
		s.lat = mitigate.LatencyStudy(s.res.Map, s.res.Atlas, mitigate.LatencyOptions{
			MaxPairs: s.opts.LatencyMaxPairs,
			Workers:  s.opts.Workers,
		})
		sp.SetItems(int64(len(s.lat)))
		sp.End()
	}
	return s.lat
}

// TargetConduits returns the most heavily shared conduits — the §5
// optimization target set (the paper's 12 conduits shared by more
// than 17 of 20 ISPs).
func (s *Study) TargetConduits() []fiber.ConduitID { return s.mx.TopShared(12) }

// Robustness runs (once) the §5.1 robustness-suggestion framework
// over the target conduits.
func (s *Study) Robustness() []mitigate.ISPRobustness {
	if s.rob == nil {
		_, sp := obs.Trace(context.Background(), "study.robustness")
		s.rob = mitigate.RobustnessSuggestion(s.res.Map, s.mx, s.TargetConduits(), 3)
		sp.SetItems(int64(len(s.rob)))
		sp.End()
	}
	return s.rob
}

// Additions runs (once) the §5.2 k-new-conduits sweep.
func (s *Study) Additions() *mitigate.AddResult {
	if s.add == nil {
		_, sp := obs.Trace(context.Background(), "study.additions")
		sp.SetWorkers(par.Workers(s.opts.Workers))
		s.add = mitigate.AddConduits(s.res.Map, s.mx, mitigate.AddOptions{
			K:       s.opts.AddConduits,
			Workers: s.opts.Workers,
		})
		sp.SetItems(int64(len(s.add.Additions)))
		sp.End()
	}
	return s.add
}

// Colocation computes (once) the §3 co-location analysis of every
// tenanted conduit against the road, rail, and pipeline layers.
func (s *Study) Colocation() []geo.Colocation {
	if s.colo == nil {
		_, sp := obs.Trace(context.Background(), "study.colocation")
		sp.SetWorkers(par.Workers(s.opts.Workers))
		an := geo.NewOverlapAnalyzer(map[string][]geo.Polyline{
			"road": s.res.Atlas.RoadPolylines(),
			"rail": s.res.Atlas.RailPolylines(),
		}, geo.OverlapOptions{BufferKm: s.opts.ColocationBufferKm})
		var paths []geo.Polyline
		for i := range s.res.Map.Conduits {
			c := &s.res.Map.Conduits[i]
			if len(c.Tenants) == 0 {
				continue
			}
			paths = append(paths, c.Path)
		}
		s.colo = an.AnalyzeAll(paths, s.opts.Workers)
		sp.SetItems(int64(len(s.colo)))
		sp.End()
	}
	return s.colo
}

// BuildReport renders the per-stage build report: wall time, share of
// the total, items processed, and throughput for every stage recorded
// so far (see internal/obs). Stages appear once they have run — lazy
// stages that were never requested are absent.
func (s *Study) BuildReport() string { return obs.Report() }

// ---- Rendered artifacts, one per paper table/figure. ----

// RenderTable1 reproduces Table 1: nodes and links per step-1 ISP.
func (s *Study) RenderTable1() string {
	t := report.Table{
		Title:   "Table 1: nodes and long-haul links per ISP in the initial (geocoded) map",
		Headers: []string{"ISP", "Nodes", "Links"},
	}
	for _, c := range s.res.Report.PerISP {
		if c.Geocoded {
			t.AddRow(c.Name, c.Nodes, c.Links)
		}
	}
	return t.String()
}

// RenderStep3 reports the §2.3 POP-only additions.
func (s *Study) RenderStep3() string {
	t := report.Table{
		Title:   "Step 3: ISPs added from POP-only maps, aligned along rights-of-way",
		Headers: []string{"ISP", "Nodes", "Links"},
	}
	for _, c := range s.res.Report.PerISP {
		if !c.Geocoded {
			t.AddRow(c.Name, c.Nodes, c.Links)
		}
	}
	return t.String()
}

// RenderFigure1 summarizes the final map (the paper's headline:
// 273 nodes, 2411 links, 542 conduits).
func (s *Study) RenderFigure1() string {
	st := s.res.Map.Stats()
	r := s.res.Report
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: the constructed US long-haul fiber map\n")
	fmt.Fprintf(&b, "  nodes:    %d\n  links:    %d\n  conduits: %d\n  ISPs:     %d\n",
		st.Nodes, st.Links, st.Conduits, st.ISPs)
	fmt.Fprintf(&b, "  total conduit length: %.0f km (avg %.0f km)\n",
		st.TotalKm, st.TotalKm/float64(st.Conduits))
	fmt.Fprintf(&b, "  sharing: %.2f%% of conduits shared by >=2 ISPs, %.2f%% by >=3, %.2f%% by >=4\n",
		pct(st.SharedByGE2, st.Conduits), pct(st.SharedByGE3, st.Conduits), pct(st.SharedByGE4, st.Conduits))
	fmt.Fprintf(&b, "  %d conduits shared by more than 17 ISPs (max sharing %d of %d)\n",
		st.SharedByGT17, st.MaxSharing, st.ISPs)
	fmt.Fprintf(&b, "  build: step 2 validated %d of %d geocoded links from public records;\n",
		r.Step2Validated, r.Step2Checked)
	fmt.Fprintf(&b, "         step 4 aligned %d logical links onto %d conduits (%.1f%% match ground truth)\n",
		r.Step4Routes, r.Step4Edges, 100*r.AlignmentAccuracy())
	return b.String()
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// RenderFigure4 reproduces the §3 co-location histogram: the fraction
// of each conduit's route co-located with roads, rails, or either.
func (s *Study) RenderFigure4() string {
	return renderFigure4(s.Colocation())
}

// renderFigure4 renders the co-location histogram for a computed
// analysis. An empty analysis renders an empty table instead of
// dividing by zero.
func renderFigure4(colo []geo.Colocation) string {
	bins := 5
	roadH := make([]int, bins+1)
	railH := make([]int, bins+1)
	eitherH := make([]int, bins+1)
	binOf := func(f float64) int {
		b := int(f * float64(bins))
		if b > bins {
			b = bins
		}
		if b == bins && f < 1 {
			b = bins - 1
		}
		return b
	}
	for _, c := range colo {
		roadH[binOf(c.Fractions["road"])]++
		railH[binOf(c.Fractions["rail"])]++
		eitherH[binOf(c.Any)]++
	}
	t := report.Table{
		Title:   "Figure 4: fraction of conduit routes co-located with transportation ROWs",
		Headers: []string{"co-located fraction", "rail", "road", "rail or road"},
	}
	n := float64(len(colo))
	if n == 0 {
		// No analyzed conduits: an empty table, not a NaN histogram.
		return t.String() + "no co-location data (no tenanted conduits analyzed)\n"
	}
	for b := 0; b <= bins; b++ {
		lo := float64(b) / float64(bins)
		label := fmt.Sprintf("%.1f-%.1f", lo, lo+1.0/float64(bins))
		if b == bins {
			label = "exactly 1.0"
		}
		t.AddRow(label, float64(railH[b])/n, float64(roadH[b])/n, float64(eitherH[b])/n)
	}
	var road, rail, either float64
	for _, c := range colo {
		road += c.Fractions["road"]
		rail += c.Fractions["rail"]
		either += c.Any
	}
	return t.String() + fmt.Sprintf(
		"mean co-location: road %.2f, rail %.2f, either %.2f (road > rail, as in the paper)\n",
		road/n, rail/n, either/n)
}

// RenderFigure6 reproduces Figure 6: conduits shared by at least k
// ISPs.
func (s *Study) RenderFigure6() string {
	counts := s.mx.SharingCounts()
	bars := make([]report.Bar, len(counts))
	for i, c := range counts {
		bars[i] = report.Bar{Label: fmt.Sprintf("k=%2d", i+1), Value: float64(c)}
	}
	return report.BarChart("Figure 6: number of conduits shared by at least k ISPs", bars, 50)
}

// RenderFigure7 reproduces Figure 7: ISPs ranked by the average
// number of ISPs sharing the conduits they use.
func (s *Study) RenderFigure7() string {
	t := report.Table{
		Title:   "Figure 7: average conduit sharing per ISP (ascending; paper: Suddenlink least, DT/NTT/XO most)",
		Headers: []string{"ISP", "conduits", "avg sharing", "stderr", "p25", "p75", "shared conduits"},
	}
	for _, r := range s.mx.Ranking() {
		t.AddRow(r.ISP, r.Conduits, r.Mean, r.StdErr, r.P25, r.P75, r.SharedConduits)
	}
	return t.String()
}

// RenderFigure8 reproduces Figure 8: the Hamming-distance heat map of
// ISP risk profiles.
func (s *Study) RenderFigure8() string {
	return report.Heatmap("Figure 8: risk-profile similarity (Hamming distance)", s.mx.ISPs, s.mx.Hamming())
}

// RenderFigure9 reproduces Figure 9: the sharing CDF before and after
// the traceroute overlay.
func (s *Study) RenderFigure9() string {
	pub, over := s.Campaign().SharingWithTraffic()
	toF := func(xs []int) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		sort.Float64s(out)
		return out
	}
	return report.CDFTable(
		"Figure 9: ISPs sharing a conduit — published map vs traceroute overlay",
		[]report.CDFSeries{
			{Name: "physical map only", Values: toF(pub)},
			{Name: "traceroute overlaid", Values: toF(over)},
		}, nil)
}

// RenderTable2 reproduces Table 2 (top west-origin east-bound
// conduits); RenderTable3 the east-origin west-bound equivalent.
func (s *Study) RenderTable2() string { return s.renderTopConduits(true, "Table 2") }

// RenderTable3 reproduces Table 3.
func (s *Study) RenderTable3() string { return s.renderTopConduits(false, "Table 3") }

func (s *Study) renderTopConduits(westEast bool, name string) string {
	dir := "west-origin east-bound"
	if !westEast {
		dir = "east-origin west-bound"
	}
	t := report.Table{
		Title:   fmt.Sprintf("%s: top 20 conduits by %s traceroute probes", name, dir),
		Headers: []string{"Location", "Location", "# Probes"},
	}
	for _, r := range s.Campaign().TopConduits(20, westEast) {
		t.AddRow(r.A, r.B, r.Probes)
	}
	return t.String()
}

// RenderTable4 reproduces Table 4: top ISPs by conduits carrying
// probe traffic.
func (s *Study) RenderTable4() string {
	t := report.Table{
		Title:   "Table 4: top 10 ISPs by number of conduits carrying probe traffic",
		Headers: []string{"ISP", "# conduits", "# probes"},
	}
	for _, r := range s.Campaign().TopISPs(10) {
		t.AddRow(r.ISP, r.Conduits, r.Probes)
	}
	return t.String()
}

// RenderFigure10 reproduces Figure 10: path inflation and shared-risk
// reduction from re-routing the target conduits.
func (s *Study) RenderFigure10() string {
	t := report.Table{
		Title:   "Figure 10: path inflation (hops) and shared-risk reduction per ISP over the most-shared conduits",
		Headers: []string{"ISP", "targets", "PI min", "PI avg", "PI max", "SRR min", "SRR avg", "SRR max"},
	}
	for _, r := range s.Robustness() {
		t.AddRow(r.ISP, r.Evaluated, r.PI.Min, r.PI.Avg, r.PI.Max, r.SRR.Min, r.SRR.Avg, r.SRR.Max)
	}
	return t.String()
}

// RenderTable5 reproduces Table 5: suggested peerings.
func (s *Study) RenderTable5() string {
	t := report.Table{
		Title:   "Table 5: top 3 peerings suggested by the robustness framework",
		Headers: []string{"ISP", "Suggested Peering"},
	}
	for _, r := range s.Robustness() {
		t.AddRow(r.ISP, strings.Join(r.SuggestedPeers, " | "))
	}
	return t.String()
}

// RenderFigure11 reproduces Figure 11: improvement ratio versus
// number of added conduits per ISP.
func (s *Study) RenderFigure11() string {
	add := s.Additions()
	t := report.Table{
		Title:   "Figure 11: shared-risk improvement ratio vs number of conduits added",
		Headers: []string{"ISP"},
	}
	for k := 1; k <= len(add.Additions); k++ {
		t.Headers = append(t.Headers, fmt.Sprintf("k=%d", k))
	}
	isps := make([]string, 0, len(add.Improvement))
	for isp := range add.Improvement {
		isps = append(isps, isp)
	}
	sort.Slice(isps, func(i, j int) bool {
		si, sj := add.Improvement[isps[i]], add.Improvement[isps[j]]
		if si[len(si)-1] != sj[len(sj)-1] {
			return si[len(si)-1] > sj[len(sj)-1]
		}
		return isps[i] < isps[j] // tie-break: render must be deterministic
	})
	for _, isp := range isps {
		row := []any{isp}
		for _, v := range add.Improvement[isp] {
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("chosen additions:\n")
	for i, ad := range add.Additions {
		fmt.Fprintf(&b, "  %2d. %s - %s (%.0f km, benefit %.2f)\n", i+1,
			s.res.Map.Node(ad.A).Key(), s.res.Map.Node(ad.B).Key(), ad.LengthKm, ad.Benefit)
	}
	return b.String()
}

// RenderFigure12 reproduces Figure 12: the latency CDFs.
func (s *Study) RenderFigure12() string {
	study := s.Latency()
	series := []report.CDFSeries{
		{Name: "best paths", Values: mitigate.CDF(study, func(p mitigate.PairLatency) float64 { return p.BestMs })},
		{Name: "LOS", Values: mitigate.CDF(study, func(p mitigate.PairLatency) float64 { return p.LosMs })},
		{Name: "avg of existing", Values: mitigate.CDF(study, func(p mitigate.PairLatency) float64 { return p.AvgMs })},
		{Name: "ROW", Values: mitigate.CDF(study, func(p mitigate.PairLatency) float64 { return p.RowMs })},
	}
	sum := mitigate.Summarize(study)
	out := report.CDFTable("Figure 12: one-way propagation delay (ms) across city pairs", series, nil) +
		fmt.Sprintf("pairs: %d; best==ROW for %.0f%% of pairs (paper: ~65%%); LOS gap p50 %.2f ms, p75 %.2f ms\n",
			sum.Pairs, 100*sum.BestEqualsROW, sum.LosGapP50, sum.LosGapP75)
	// The constructive half of §5.3: the best ROW-following builds.
	imps := s.LatencyImprovements(5)
	if len(imps) > 0 {
		out += "best new ROW-following builds (delay saved per km of new fiber):\n"
		for _, imp := range imps {
			out += fmt.Sprintf("  %s - %s: %.2f -> %.2f ms (saves %.2f ms, %.0f km new fiber)\n",
				s.res.Map.Node(imp.A).Key(), s.res.Map.Node(imp.B).Key(),
				imp.BestMs, imp.RowMs, imp.SavedMs, imp.NewFiberKm)
		}
	}
	return out
}

// LatencyImprovements proposes the top-k ROW-following builds that
// close the gap between deployed fiber delay and the right-of-way
// bound (§5.3's constructive conclusion).
func (s *Study) LatencyImprovements(k int) []mitigate.LatencyImprovement {
	return mitigate.LatencyImprovements(s.res.Map, s.res.Atlas, s.Latency(), k,
		mitigate.LatencyOptions{Workers: s.opts.Workers})
}

// ExportGeoJSON writes the map and the road/rail/pipeline layers as
// GeoJSON files into dir (Figures 1-3 as data).
func (s *Study) ExportGeoJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mapJSON, err := s.res.Map.GeoJSON()
	if err != nil {
		return err
	}
	files := map[string][]byte{"fibermap.geojson": mapJSON}
	for name, lines := range map[string][]geo.Polyline{
		"roads.geojson":     s.res.Atlas.RoadPolylines(),
		"rails.geojson":     s.res.Atlas.RailPolylines(),
		"pipelines.geojson": s.res.Atlas.PipelinePolylines(),
	} {
		raw, err := fiber.LayerGeoJSON(strings.TrimSuffix(name, ".geojson"), lines)
		if err != nil {
			return err
		}
		files[name] = raw
	}
	for name, raw := range files {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ExportDataset writes the full map in the line-oriented dataset
// format (fiber.WriteMap) — the analogue of the paper's PREDICT data
// release. The file round-trips through fiber.ReadMap.
func (s *Study) ExportDataset(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fiber.WriteMap(f, s.res.Map); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RenderAll renders every table and figure in paper order.
func (s *Study) RenderAll() string {
	parts := []string{
		s.RenderTable1(), s.RenderStep3(), s.RenderFigure1(), s.RenderFigure4(),
		s.RenderFigure6(), s.RenderFigure7(), s.RenderFigure8(), s.RenderFigure9(),
		s.RenderTable2(), s.RenderTable3(), s.RenderTable4(),
		s.RenderFigure10(), s.RenderTable5(), s.RenderFigure11(), s.RenderFigure12(),
	}
	return strings.Join(parts, "\n")
}
