// Package server exposes a completed Study over HTTP: map statistics,
// per-provider and per-conduit detail, the risk metrics, every
// rendered table/figure, and the GeoJSON layers. It is the
// programmatic counterpart of the paper's data release through the
// PREDICT portal.
//
// The API is read-only and JSON-first:
//
//	GET /healthz                    liveness
//	GET /api/stats                  map statistics (Figure 1 numbers)
//	GET /api/isps                   provider list with footprint sizes
//	GET /api/isps/{name}            provider detail + risk profile
//	GET /api/conduits?minshare=K    conduit list, optionally filtered
//	GET /api/conduits/{id}          conduit detail
//	GET /api/risk/sharing           Figure 6 counts
//	GET /api/risk/ranking           Figure 7 rows
//	GET /api/figures/{name}         rendered artifact (text/plain)
//	GET /api/annotated?limit=N      annotated map (traffic + delay per conduit)
//	GET /api/resilience             partition costs + conduit criticality
//	GET /geojson/{layer}            fibermap | roads | rails | pipelines | annotated
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"intertubes"
	"intertubes/internal/fiber"
)

// Server serves a Study. It is safe for concurrent use: the study is
// fully materialized at construction and never mutated afterwards.
type Server struct {
	study *intertubes.Study
	mux   *http.ServeMux
	log   *log.Logger
}

// New builds a Server, eagerly materializing every lazy analysis the
// endpoints need so request latency is flat.
func New(study *intertubes.Study, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{study: study, mux: http.NewServeMux(), log: logger}
	// Materialize lazy stages up front.
	study.Robustness()
	s.routes()
	return s
}

// ServeHTTP implements http.Handler with request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.log.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/isps", s.handleISPs)
	s.mux.HandleFunc("GET /api/isps/{name}", s.handleISP)
	s.mux.HandleFunc("GET /api/conduits", s.handleConduits)
	s.mux.HandleFunc("GET /api/conduits/{id}", s.handleConduit)
	s.mux.HandleFunc("GET /api/risk/sharing", s.handleSharing)
	s.mux.HandleFunc("GET /api/risk/ranking", s.handleRanking)
	s.mux.HandleFunc("GET /api/figures/{name}", s.handleFigure)
	s.mux.HandleFunc("GET /api/annotated", s.handleAnnotated)
	s.mux.HandleFunc("GET /api/resilience", s.handleResilience)
	s.mux.HandleFunc("GET /geojson/{layer}", s.handleGeoJSON)
}

// handleAnnotated serves the §8 annotated map (traffic + delay per
// conduit). ?limit=N truncates.
func (s *Server) handleAnnotated(w http.ResponseWriter, r *http.Request) {
	anns := s.study.AnnotatedMap()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		if n < len(anns) {
			anns = anns[:n]
		}
	}
	s.writeJSON(w, anns)
}

// handleResilience serves the fiber-cut analyses: partition costs and
// conduit criticality.
func (s *Server) handleResilience(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"partitionCosts": s.study.PartitionCosts(),
		"criticality":    s.study.Criticality(10),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("encode: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.study.Map().Stats()
	s.writeJSON(w, map[string]any{
		"nodes":         st.Nodes,
		"links":         st.Links,
		"conduits":      st.Conduits,
		"isps":          st.ISPs,
		"totalKm":       st.TotalKm,
		"avgTenancy":    st.AvgTenancy,
		"maxSharing":    st.MaxSharing,
		"sharedByGE2":   st.SharedByGE2,
		"sharedByGE3":   st.SharedByGE3,
		"sharedByGE4":   st.SharedByGE4,
		"sharedByGT17":  st.SharedByGT17,
		"paperHeadline": "273 nodes, 2411 links, 542 conduits",
	})
}

type ispSummary struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Conduits int    `json:"conduits"`
}

func (s *Server) handleISPs(w http.ResponseWriter, _ *http.Request) {
	m := s.study.Map()
	var out []ispSummary
	for _, isp := range m.ISPs() {
		out = append(out, ispSummary{
			Name:     isp,
			Nodes:    len(m.NodesOf(isp)),
			Conduits: len(m.ConduitsOf(isp)),
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleISP(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m := s.study.Map()
	conduits := m.ConduitsOf(name)
	if len(conduits) == 0 {
		s.writeError(w, http.StatusNotFound, "unknown provider "+name)
		return
	}
	var risk struct {
		Mean           float64  `json:"meanSharing"`
		P25            float64  `json:"p25"`
		P75            float64  `json:"p75"`
		Rank           int      `json:"rank"`
		SuggestedPeers []string `json:"suggestedPeers"`
	}
	for pos, row := range s.study.RiskMatrix().Ranking() {
		if row.ISP == name {
			risk.Mean, risk.P25, risk.P75, risk.Rank = row.Mean, row.P25, row.P75, pos+1
		}
	}
	for _, rob := range s.study.Robustness() {
		if rob.ISP == name {
			risk.SuggestedPeers = rob.SuggestedPeers
		}
	}
	cities := make([]string, 0)
	for _, nid := range m.NodesOf(name) {
		cities = append(cities, m.Node(nid).Key())
	}
	s.writeJSON(w, map[string]any{
		"name":     name,
		"nodes":    len(cities),
		"cities":   cities,
		"conduits": len(conduits),
		"risk":     risk,
	})
}

type conduitSummary struct {
	ID       int     `json:"id"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	LengthKm float64 `json:"lengthKm"`
	Sharing  int     `json:"sharing"`
}

func (s *Server) handleConduits(w http.ResponseWriter, r *http.Request) {
	minShare := 0
	if q := r.URL.Query().Get("minshare"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "minshare must be a non-negative integer")
			return
		}
		minShare = v
	}
	m := s.study.Map()
	out := make([]conduitSummary, 0)
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 || len(c.Tenants) < minShare {
			continue
		}
		out = append(out, conduitSummary{
			ID:       int(c.ID),
			A:        m.Node(c.A).Key(),
			B:        m.Node(c.B).Key(),
			LengthKm: c.LengthKm,
			Sharing:  len(c.Tenants),
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleConduit(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	m := s.study.Map()
	if err != nil || id < 0 || id >= len(m.Conduits) {
		s.writeError(w, http.StatusNotFound, "no such conduit")
		return
	}
	c := m.Conduit(fiber.ConduitID(id))
	if len(c.Tenants) == 0 {
		s.writeError(w, http.StatusNotFound, "conduit is not in the published map")
		return
	}
	s.writeJSON(w, map[string]any{
		"id":       id,
		"a":        m.Node(c.A).Key(),
		"b":        m.Node(c.B).Key(),
		"lengthKm": c.LengthKm,
		"tenants":  c.Tenants,
		"sharing":  len(c.Tenants),
	})
}

func (s *Server) handleSharing(w http.ResponseWriter, _ *http.Request) {
	counts := s.study.RiskMatrix().SharingCounts()
	type row struct {
		K        int `json:"k"`
		Conduits int `json:"conduits"`
	}
	out := make([]row, len(counts))
	for i, c := range counts {
		out[i] = row{K: i + 1, Conduits: c}
	}
	s.writeJSON(w, out)
}

func (s *Server) handleRanking(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		ISP      string  `json:"isp"`
		Conduits int     `json:"conduits"`
		Mean     float64 `json:"meanSharing"`
		P25      float64 `json:"p25"`
		P75      float64 `json:"p75"`
	}
	var out []row
	for _, r := range s.study.RiskMatrix().Ranking() {
		out = append(out, row{ISP: r.ISP, Conduits: r.Conduits, Mean: r.Mean, P25: r.P25, P75: r.P75})
	}
	s.writeJSON(w, out)
}

// figureRenderers maps artifact names to Study methods.
func (s *Server) figureRenderers() map[string]func() string {
	st := s.study
	return map[string]func() string{
		"table1":   st.RenderTable1,
		"step3":    st.RenderStep3,
		"figure1":  st.RenderFigure1,
		"figure4":  st.RenderFigure4,
		"figure6":  st.RenderFigure6,
		"figure7":  st.RenderFigure7,
		"figure8":  st.RenderFigure8,
		"figure9":  st.RenderFigure9,
		"table2":   st.RenderTable2,
		"table3":   st.RenderTable3,
		"table4":   st.RenderTable4,
		"figure10": st.RenderFigure10,
		"table5":   st.RenderTable5,
		"figure11": st.RenderFigure11,
		"figure12": st.RenderFigure12,
	}
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	render, ok := s.figureRenderers()[name]
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown artifact "+name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, render())
}

func (s *Server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	layer := r.PathValue("layer")
	var raw []byte
	var err error
	res := s.study.Result()
	switch layer {
	case "fibermap":
		raw, err = res.Map.GeoJSON()
	case "roads":
		raw, err = fiber.LayerGeoJSON("roads", res.Atlas.RoadPolylines())
	case "rails":
		raw, err = fiber.LayerGeoJSON("rails", res.Atlas.RailPolylines())
	case "pipelines":
		raw, err = fiber.LayerGeoJSON("pipelines", res.Atlas.PipelinePolylines())
	case "annotated":
		raw, err = s.study.AnnotatedGeoJSON()
	default:
		s.writeError(w, http.StatusNotFound, "unknown layer "+layer)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/geo+json")
	w.Write(raw)
}
