// Package server exposes a completed Study over HTTP: map statistics,
// per-provider and per-conduit detail, the risk metrics, every
// rendered table/figure, and the GeoJSON layers. It is the
// programmatic counterpart of the paper's data release through the
// PREDICT portal.
//
// The API is side-effect-free and JSON-first (the scenario POSTs
// evaluate queries; they never mutate the study):
//
//	GET /healthz                    liveness
//	GET /metrics                    Prometheus text exposition
//	GET /api/buildreport            per-stage build report (see internal/obs)
//	GET /api/stats                  map statistics (Figure 1 numbers)
//	GET /api/isps                   provider list with footprint sizes
//	GET /api/isps/{name}            provider detail + risk profile
//	GET /api/conduits?minshare=K    conduit list, optionally filtered
//	GET /api/conduits/{id}          conduit detail
//	GET /api/risk/sharing           Figure 6 counts
//	GET /api/risk/ranking           Figure 7 rows
//	GET /api/figures/{name}         rendered artifact (text/plain)
//	GET /api/latency?page=N&per=M   paginated all-pairs latency atlas (ETag per baseline)
//	GET /api/annotated?limit=N      annotated map (traffic + delay per conduit)
//	GET /api/resilience             partition costs + conduit criticality
//	POST /api/scenario              evaluate a what-if scenario (JSON deltas)
//	POST /api/scenario/report       same, rendered as text
//
// The scenario POSTs are admission-limited (bounded in-flight slots
// plus a small wait queue); overflow is shed with 429 and Retry-After.
// Specs over 1 MiB are rejected with 413. Every handler runs under
// panic containment: a panic yields a 500 and a counted metric, never
// a crashed server.
//
//	GET /api/scenarios              scenario presets + cached results
//	GET /geojson/{layer}            fibermap | roads | rails | pipelines | annotated
//
// The batch lane (internal/jobs) serves long-running grid sweeps on
// its own serial runner, checkpointed and resumable, without touching
// the interactive admission limits:
//
//	POST /api/jobs/sweep            submit a disaster-grid sweep (idempotent by spec+baseline)
//	GET  /api/jobs                  job listing + store stats
//	GET  /api/jobs/{id}             one job's status and progress
//	POST /api/jobs/{id}/cancel      terminally cancel a job
//	GET  /api/jobs/{id}/stream      SSE partial results as cell chunks complete
//	GET  /api/jobs/{id}/result      heatmap artifact (?format=geojson|grid)
//
// Every request is measured (count, duration, status, bytes, per
// route) into the internal/obs registry that /metrics serves.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"syscall"
	"time"

	"intertubes"
	"intertubes/internal/fiber"
	"intertubes/internal/jobs"
	"intertubes/internal/obs"
)

// Server-side metric handles, resolved once at package init; request
// handling touches only atomics.
var (
	encodeFailures = obs.GetCounter("server_json_encode_failures_total",
		"JSON responses that failed to encode.")
	writeFailClient = obs.GetCounter("http_write_failures_total",
		"Response writes that failed, by cause.", obs.L("kind", "client_disconnect"))
	writeFailServer = obs.GetCounter("http_write_failures_total",
		"Response writes that failed, by cause.", obs.L("kind", "server"))
	dupWriteHeaders = obs.GetCounter("http_write_header_duplicates_total",
		"WriteHeader calls after the header was already written.")
	httpPanics = obs.GetCounter("http_panics_total",
		"Handler panics contained by the recovery middleware.")
	scenarioShed = obs.GetCounter("scenario_requests_shed_total",
		"Scenario requests rejected with 429 because in-flight and queue capacity were exhausted.")
	scenarioQueueDepth = obs.GetGauge("scenario_queue_depth",
		"Scenario requests currently waiting for an in-flight slot.")
)

// routeMetrics is the pre-resolved instrument set for one route
// pattern (or the synthetic "unmatched" route).
type routeMetrics struct {
	duration *obs.Histogram
	bytes    *obs.Histogram
	byCode   map[int]*obs.Counter // common codes, read-only after init
	route    string
}

func newRouteMetrics(route string) *routeMetrics {
	rm := &routeMetrics{
		route: route,
		duration: obs.GetHistogram("http_request_duration_seconds",
			"Request latency by route.", nil, obs.L("route", route)),
		bytes: obs.GetHistogram("http_response_bytes",
			"Response body size by route.", obs.SizeBuckets, obs.L("route", route)),
		byCode: make(map[int]*obs.Counter),
	}
	for _, code := range []int{200, 400, 404, 405, 500} {
		rm.byCode[code] = rm.requestCounter(code)
	}
	return rm
}

func (rm *routeMetrics) requestCounter(code int) *obs.Counter {
	return obs.GetCounter("http_requests_total",
		"Requests served, by route and status code.",
		obs.L("route", rm.route), obs.L("code", strconv.Itoa(code)))
}

func (rm *routeMetrics) observe(code int, bytes int64, d time.Duration) {
	c := rm.byCode[code]
	if c == nil {
		c = rm.requestCounter(code) // rare codes pay the registry lookup
	}
	c.Inc()
	rm.duration.Observe(d.Seconds())
	rm.bytes.Observe(float64(bytes))
}

// Server serves a Study. It is safe for concurrent use: the study is
// fully materialized at construction and never mutated afterwards.
type Server struct {
	study           *intertubes.Study
	mux             *http.ServeMux
	log             *slog.Logger
	routes          map[string]*routeMetrics
	unmatched       *routeMetrics
	scenarioLimiter *limiter
	jobs            *jobs.Store
	ownJobs         bool // store was defaulted here, Close tears it down
}

// New builds a Server with default middleware Config, eagerly
// materializing every lazy analysis the endpoints need so request
// latency is flat. A nil logger falls back to the shared obs handler.
func New(study *intertubes.Study, logger *slog.Logger) *Server {
	return NewWithConfig(study, logger, Config{})
}

// NewWithConfig is New with explicit request-lifecycle tuning.
func NewWithConfig(study *intertubes.Study, logger *slog.Logger, cfg Config) *Server {
	if logger == nil {
		logger = obs.Logger("server")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		study:           study,
		mux:             http.NewServeMux(),
		log:             logger,
		routes:          make(map[string]*routeMetrics),
		unmatched:       newRouteMetrics("unmatched"),
		scenarioLimiter: newLimiter(cfg.ScenarioInFlight, cfg.ScenarioQueue, cfg.RetryAfter),
		jobs:            cfg.Jobs,
	}
	if s.jobs == nil {
		// Default in-memory store over the study's scenario engine so
		// the /api/jobs surface always works; fibermapd injects a
		// persistent one via Config.Jobs for checkpoint/resume.
		store, err := jobs.NewStore(study.Scenarios().Engine(), jobs.Options{})
		if err != nil {
			// NewStore without a directory cannot fail; guard anyway.
			logger.Error("default job store", "err", err)
		} else {
			s.jobs = store
			s.ownJobs = true
		}
	}
	// Materialize lazy stages up front.
	study.Robustness()
	s.registerRoutes()
	return s
}

// Close releases resources the server created itself — currently the
// defaulted in-memory job store. An injected Config.Jobs store stays
// open; its owner closes it.
func (s *Server) Close() {
	if s.ownJobs && s.jobs != nil {
		s.jobs.Close()
	}
}

// ServeHTTP implements http.Handler: every request is wrapped in a
// statusRecorder, run under panic containment, measured into the
// per-route metrics, and logged through the structured logger. A
// panicking handler still produces a measured, logged 500.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.serveContained(rec, r)
	d := time.Since(start)
	rm := s.routes[rec.route]
	if rm == nil {
		rm = s.unmatched
	}
	rm.observe(rec.status, rec.bytes, d)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", rm.route),
		slog.Int("status", rec.status),
		slog.Int64("bytes", rec.bytes),
		slog.Duration("duration", d.Round(time.Microsecond)),
	)
}

// statusRecorder captures the response status and body size. A second
// WriteHeader call is counted (metric + field) instead of being
// forwarded, which would panic in net/http's superfluous-call check.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
	dupHeaders  int
	route       string // matched mux pattern, set by the route wrapper
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.wroteHeader {
		r.dupHeaders++
		dupWriteHeaders.Inc()
		return
	}
	r.wroteHeader = true
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.NewResponseController,
// so streaming handlers (the jobs SSE endpoint) can Flush and clear
// the write deadline through the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		// The implicit 200 the underlying writer is about to send.
		r.wroteHeader = true
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// handle registers a handler and pre-resolves its route metrics; the
// wrapper stamps the matched pattern onto the recorder so ServeHTTP
// can attribute the request without consulting the mux again.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes[pattern] = newRouteMetrics(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if rec, ok := w.(*statusRecorder); ok {
			rec.route = pattern
		}
		h(w, r)
	})
}

func (s *Server) registerRoutes() {
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /api/buildreport", s.handleBuildReport)
	s.handle("GET /api/stats", s.handleStats)
	s.handle("GET /api/isps", s.handleISPs)
	s.handle("GET /api/isps/{name}", s.handleISP)
	s.handle("GET /api/conduits", s.handleConduits)
	s.handle("GET /api/conduits/{id}", s.handleConduit)
	s.handle("GET /api/risk/sharing", s.handleSharing)
	s.handle("GET /api/risk/ranking", s.handleRanking)
	s.handle("GET /api/figures/{name}", s.handleFigure)
	s.handle("GET /api/latency", s.handleLatency)
	s.handle("GET /api/annotated", s.handleAnnotated)
	s.handle("GET /api/resilience", s.handleResilience)
	s.handle("GET /api/traces", s.handleTraces)
	s.handle("GET /api/traces/{id}", s.handleTrace)
	s.handle("POST /api/scenario", s.limited(s.handleScenario))
	s.handle("POST /api/scenario/report", s.limited(s.handleScenarioReport))
	s.handle("GET /api/scenarios", s.handleScenarios)
	s.handle("GET /geojson/{layer}", s.handleGeoJSON)
	if s.jobs != nil {
		s.handle("POST /api/jobs/sweep", s.handleJobSubmit)
		s.handle("GET /api/jobs", s.handleJobs)
		s.handle("GET /api/jobs/{id}", s.handleJob)
		s.handle("POST /api/jobs/{id}/cancel", s.handleJobCancel)
		s.handle("GET /api/jobs/{id}/stream", s.handleJobStream)
		s.handle("GET /api/jobs/{id}/result", s.handleJobResult)
	}
}

// handleMetrics serves the obs registry: HTTP route metrics, study
// stage durations, runtime gauges, and internal/par pool activity.
// Classic Prometheus 0.0.4 text by default; the OpenMetrics rendering
// (with trace-ID exemplars) under an openmetrics Accept header.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.ServeMetrics(w, r)
}

// handleBuildReport serves the per-stage build report, both as
// structured stage stats and as the rendered text table.
func (s *Server) handleBuildReport(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"stages": obs.Snapshot(),
		"report": s.study.BuildReport(),
	})
}

// handleAnnotated serves the §8 annotated map (traffic + delay per
// conduit). ?limit=N truncates.
func (s *Server) handleAnnotated(w http.ResponseWriter, r *http.Request) {
	anns := s.study.AnnotatedMap()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		if n < len(anns) {
			anns = anns[:n]
		}
	}
	s.writeJSON(w, anns)
}

// handleResilience serves the fiber-cut analyses: partition costs and
// conduit criticality.
func (s *Server) handleResilience(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"partitionCosts": s.study.PartitionCosts(),
		"criticality":    s.study.Criticality(10),
	})
}

// writeJSON renders v. Encoding happens before anything reaches the
// wire, so an encode failure still produces a clean 500 with a JSON
// body; a failure writing the encoded bytes means headers are already
// sent, so it is logged and counted but cannot change the response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	raw, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		encodeFailures.Inc()
		s.log.Error("response encode failed", "err", err)
		s.writeError(w, http.StatusInternalServerError, "response encoding failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(raw, '\n')); err != nil {
		s.reportWriteError(err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// reportWriteError classifies a failed response write: a client that
// went away is routine (debug log, client_disconnect metric); anything
// else is a server-side problem worth an error log.
func (s *Server) reportWriteError(err error) {
	if err == nil {
		return
	}
	if isClientDisconnect(err) {
		writeFailClient.Inc()
		s.log.Debug("client disconnected mid-response", "err", err)
		return
	}
	writeFailServer.Inc()
	s.log.Error("response write failed", "err", err)
}

// isClientDisconnect reports whether a response-write error was caused
// by the peer rather than the server.
func isClientDisconnect(err error) bool {
	if errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, context.Canceled) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, http.ErrHandlerTimeout) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.study.Map().Stats()
	var service map[string]any
	if s.jobs != nil {
		service = s.serviceStats()
	}
	s.writeJSON(w, map[string]any{
		"service":       service,
		"nodes":         st.Nodes,
		"links":         st.Links,
		"conduits":      st.Conduits,
		"isps":          st.ISPs,
		"totalKm":       st.TotalKm,
		"avgTenancy":    st.AvgTenancy,
		"maxSharing":    st.MaxSharing,
		"sharedByGE2":   st.SharedByGE2,
		"sharedByGE3":   st.SharedByGE3,
		"sharedByGE4":   st.SharedByGE4,
		"sharedByGT17":  st.SharedByGT17,
		"paperHeadline": "273 nodes, 2411 links, 542 conduits",
	})
}

type ispSummary struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Conduits int    `json:"conduits"`
}

func (s *Server) handleISPs(w http.ResponseWriter, _ *http.Request) {
	m := s.study.Map()
	var out []ispSummary
	for _, isp := range m.ISPs() {
		out = append(out, ispSummary{
			Name:     isp,
			Nodes:    len(m.NodesOf(isp)),
			Conduits: len(m.ConduitsOf(isp)),
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleISP(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m := s.study.Map()
	conduits := m.ConduitsOf(name)
	if len(conduits) == 0 {
		s.writeError(w, http.StatusNotFound, "unknown provider "+name)
		return
	}
	var risk struct {
		Mean           float64  `json:"meanSharing"`
		P25            float64  `json:"p25"`
		P75            float64  `json:"p75"`
		Rank           int      `json:"rank"`
		SuggestedPeers []string `json:"suggestedPeers"`
	}
	for pos, row := range s.study.RiskMatrix().Ranking() {
		if row.ISP == name {
			risk.Mean, risk.P25, risk.P75, risk.Rank = row.Mean, row.P25, row.P75, pos+1
		}
	}
	for _, rob := range s.study.Robustness() {
		if rob.ISP == name {
			risk.SuggestedPeers = rob.SuggestedPeers
		}
	}
	cities := make([]string, 0)
	for _, nid := range m.NodesOf(name) {
		cities = append(cities, m.Node(nid).Key())
	}
	s.writeJSON(w, map[string]any{
		"name":     name,
		"nodes":    len(cities),
		"cities":   cities,
		"conduits": len(conduits),
		"risk":     risk,
	})
}

type conduitSummary struct {
	ID       int     `json:"id"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	LengthKm float64 `json:"lengthKm"`
	Sharing  int     `json:"sharing"`
}

func (s *Server) handleConduits(w http.ResponseWriter, r *http.Request) {
	minShare := 0
	if q := r.URL.Query().Get("minshare"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "minshare must be a non-negative integer")
			return
		}
		minShare = v
	}
	m := s.study.Map()
	out := make([]conduitSummary, 0)
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 || len(c.Tenants) < minShare {
			continue
		}
		out = append(out, conduitSummary{
			ID:       int(c.ID),
			A:        m.Node(c.A).Key(),
			B:        m.Node(c.B).Key(),
			LengthKm: c.LengthKm,
			Sharing:  len(c.Tenants),
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleConduit(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	m := s.study.Map()
	if err != nil || id < 0 || id >= len(m.Conduits) {
		s.writeError(w, http.StatusNotFound, "no such conduit")
		return
	}
	c := m.Conduit(fiber.ConduitID(id))
	if len(c.Tenants) == 0 {
		s.writeError(w, http.StatusNotFound, "conduit is not in the published map")
		return
	}
	s.writeJSON(w, map[string]any{
		"id":       id,
		"a":        m.Node(c.A).Key(),
		"b":        m.Node(c.B).Key(),
		"lengthKm": c.LengthKm,
		"tenants":  c.Tenants,
		"sharing":  len(c.Tenants),
	})
}

func (s *Server) handleSharing(w http.ResponseWriter, _ *http.Request) {
	counts := s.study.RiskMatrix().SharingCounts()
	type row struct {
		K        int `json:"k"`
		Conduits int `json:"conduits"`
	}
	out := make([]row, len(counts))
	for i, c := range counts {
		out[i] = row{K: i + 1, Conduits: c}
	}
	s.writeJSON(w, out)
}

func (s *Server) handleRanking(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		ISP      string  `json:"isp"`
		Conduits int     `json:"conduits"`
		Mean     float64 `json:"meanSharing"`
		P25      float64 `json:"p25"`
		P75      float64 `json:"p75"`
	}
	var out []row
	for _, r := range s.study.RiskMatrix().Ranking() {
		out = append(out, row{ISP: r.ISP, Conduits: r.Conduits, Mean: r.Mean, P25: r.P25, P75: r.P75})
	}
	s.writeJSON(w, out)
}

// figureRenderers maps artifact names to Study methods.
func (s *Server) figureRenderers() map[string]func() string {
	st := s.study
	return map[string]func() string{
		"table1":            st.RenderTable1,
		"step3":             st.RenderStep3,
		"figure1":           st.RenderFigure1,
		"figure4":           st.RenderFigure4,
		"figure6":           st.RenderFigure6,
		"figure7":           st.RenderFigure7,
		"figure8":           st.RenderFigure8,
		"figure9":           st.RenderFigure9,
		"table2":            st.RenderTable2,
		"table3":            st.RenderTable3,
		"table4":            st.RenderTable4,
		"figure10":          st.RenderFigure10,
		"table5":            st.RenderTable5,
		"figure11":          st.RenderFigure11,
		"figure12":          st.RenderFigure12,
		"latency-inflation": st.RenderInflationCDF,
		"relay-plan":        func() string { return st.RenderRelayPlan(3) },
	}
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	render, ok := s.figureRenderers()[name]
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown artifact "+name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := fmt.Fprint(w, render()); err != nil {
		s.reportWriteError(err)
	}
}

func (s *Server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	layer := r.PathValue("layer")
	var raw []byte
	var err error
	res := s.study.Result()
	switch layer {
	case "fibermap":
		raw, err = res.Map.GeoJSON()
	case "roads":
		raw, err = fiber.LayerGeoJSON("roads", res.Atlas.RoadPolylines())
	case "rails":
		raw, err = fiber.LayerGeoJSON("rails", res.Atlas.RailPolylines())
	case "pipelines":
		raw, err = fiber.LayerGeoJSON("pipelines", res.Atlas.PipelinePolylines())
	case "annotated":
		raw, err = s.study.AnnotatedGeoJSON()
	default:
		s.writeError(w, http.StatusNotFound, "unknown layer "+layer)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/geo+json")
	if _, err := w.Write(raw); err != nil {
		s.reportWriteError(err)
	}
}
