package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"intertubes/internal/obs"
	"intertubes/internal/scenario"
)

// scenario.go serves the what-if engine: POST a declarative Scenario,
// get the evaluated deltas back. Responses are cached by scenario
// content hash (LRU + singleflight in scenario.Cache), so identical
// queries — however concurrent — cost one evaluation, and every
// response for a given hash is byte-identical.

// maxScenarioBody bounds a scenario spec upload; real specs are a few
// hundred bytes.
const maxScenarioBody = 1 << 20

// decodeScenario parses the request body into a Scenario, rejecting
// unknown fields so typos fail loudly instead of evaluating the
// baseline. The body is bounded through http.MaxBytesReader — unlike
// a bare LimitReader, an over-limit spec is a distinguishable
// *http.MaxBytesError (mapped to 413 by decodeError) rather than a
// silent truncation that decodes as garbage, and the server stops
// reading instead of draining an unbounded upload.
func decodeScenario(w http.ResponseWriter, r *http.Request) (scenario.Scenario, error) {
	var sc scenario.Scenario
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxScenarioBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("invalid scenario spec: %w", err)
	}
	return sc, nil
}

// decodeError maps a decode failure to its status: an oversized body
// is 413, anything else a plain 400.
func (s *Server) decodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("scenario spec exceeds %d bytes", maxScenarioBody))
		return
	}
	s.writeError(w, http.StatusBadRequest, err.Error())
}

// startScenarioTrace opens a recorded trace for one scenario request
// and stamps its ID on the response, so a client can fetch the
// evaluation's span tree from /api/traces/{id} afterwards. The header
// is set before the handler writes anything; an unrecorded request
// (recorder disabled) gets no header.
func startScenarioTrace(ctx context.Context, w http.ResponseWriter, name string) (context.Context, *obs.Span) {
	ctx, sp := obs.StartTrace(ctx, name)
	if id := sp.TraceID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	return ctx, sp
}

// handleScenario evaluates a posted scenario and serves the Result.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	sc, err := decodeScenario(w, r)
	if err != nil {
		s.decodeError(w, err)
		return
	}
	ctx, sp := startScenarioTrace(r.Context(), w, "http.scenario")
	defer sp.End()
	res, err := s.study.Scenarios().Eval(ctx, sc)
	if err != nil {
		s.scenarioError(w, r, err)
		return
	}
	s.writeJSON(w, res)
}

// handleScenarioReport is the rendered-text variant of POST
// /api/scenario.
func (s *Server) handleScenarioReport(w http.ResponseWriter, r *http.Request) {
	sc, err := decodeScenario(w, r)
	if err != nil {
		s.decodeError(w, err)
		return
	}
	ctx, sp := startScenarioTrace(r.Context(), w, "http.scenario.report")
	defer sp.End()
	res, err := s.study.Scenarios().Eval(ctx, sc)
	if err != nil {
		s.scenarioError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := fmt.Fprint(w, scenario.Render(res)); err != nil {
		s.reportWriteError(err)
	}
}

// handleScenarios lists the available presets and the currently cached
// results (most recently used first).
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"presets": scenario.Presets(),
		"cached":  s.study.Scenarios().Entries(),
	})
}

// scenarioError maps an evaluation failure: a canceled request is the
// client's doing, anything else is a bad spec (unknown preset, node,
// or conduit).
func (s *Server) scenarioError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
		s.writeError(w, http.StatusServiceUnavailable, "evaluation canceled")
		return
	}
	s.writeError(w, http.StatusBadRequest, err.Error())
}
