package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"intertubes/internal/jobs"
	"intertubes/internal/scenario"
)

// jobs.go serves the batch-analysis subsystem: submit a disaster-grid
// sweep, watch it stream, fetch its artifacts. The job store runs at
// most one sweep at a time on its own runner goroutine, so these
// routes never contend with the interactive scenario admission lane —
// a sweep can grind for minutes while POST /api/scenario stays green.

// maxJobBody bounds a grid-spec upload; real specs are tens of bytes.
const maxJobBody = 1 << 16

// handleJobSubmit admits a sweep. Submission is idempotent by content:
// an identical spec against the same baseline returns the existing
// job. A full queue sheds with 429 + Retry-After, mirroring the
// interactive scenario lane's admission behavior.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec scenario.GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.decodeError(w, fmt.Errorf("invalid grid spec: %w", err))
		return
	}
	st, err := s.jobs.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		s.writeError(w, http.StatusTooManyRequests, "job queue full")
		return
	case errors.Is(err, jobs.ErrShutdown):
		s.writeError(w, http.StatusServiceUnavailable, "job store shutting down")
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusAccepted)
	s.writeJSON(w, st)
}

// handleJobs lists every job, newest-submitted last.
func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"jobs":  s.jobs.List(),
		"stats": s.jobs.Stats(),
	})
}

// handleJob serves one job's status and progress.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.writeJSON(w, st)
}

// handleJobCancel terminally cancels a job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.writeJSON(w, st)
}

// handleJobResult serves the job's heatmap artifact. ?format=geojson
// (default) renders the FeatureCollection; ?format=grid the ASCII
// raster. Partial artifacts are served while the job runs — the
// completed/total fields say how much is in — and the bytes become
// the deterministic final artifact once the job is done. Until then
// the response carries Cache-Control: no-store, so an intermediary
// never pins a half-built GeoJSON as if it were the final artifact.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, stErr := s.jobs.Get(id)
	h, err := s.jobs.Heatmap(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if stErr == nil && !st.State.Terminal() {
		w.Header().Set("Cache-Control", "no-store")
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "geojson":
		raw, err := h.GeoJSON()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/geo+json")
		if _, err := w.Write(raw); err != nil {
			s.reportWriteError(err)
		}
	case "grid":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := fmt.Fprint(w, h.RenderGrid()); err != nil {
			s.reportWriteError(err)
		}
	default:
		s.writeError(w, http.StatusBadRequest, "format must be geojson or grid")
	}
}

// handleJobStream serves Server-Sent Events: one JSON Event per line
// of progress (state transitions and chunks of completed cells). The
// stream ends when the job reaches a terminal state or the client
// goes away. The write deadline is cleared for this response — a
// sweep legitimately outlives the server's WriteTimeout.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.jobs.Get(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ch, detach, err := s.jobs.Subscribe(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	defer detach()

	rc := http.NewResponseController(w)
	if err := rc.SetWriteDeadline(time.Time{}); err != nil {
		s.log.Debug("jobs stream: clearing write deadline failed", "err", err)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(v any) bool {
		raw, err := json.Marshal(v)
		if err != nil {
			encodeFailures.Inc()
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			s.reportWriteError(err)
			return false
		}
		if err := rc.Flush(); err != nil {
			s.reportWriteError(err)
			return false
		}
		return true
	}

	// Opening snapshot so a subscriber always knows where the job
	// stands, even if no further events ever fire.
	if !send(jobs.Event{JobID: st.ID, State: st.State, Err: st.Err,
		Total: st.Total, Completed: st.Completed}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}

// serviceStats is the admission-control snapshot embedded in GET
// /api/stats: the interactive scenario lane and the batch job lane
// side by side.
func (s *Server) serviceStats() map[string]any {
	return map[string]any{
		"scenarioQueueDepth": int(scenarioQueueDepth.Value()),
		"scenarioShedTotal":  scenarioShed.Value(),
		"jobs":               s.jobs.Stats(),
	}
}
