package server

import (
	"net/http"

	"intertubes/internal/obs"
)

// traces.go serves the flight recorder: GET /api/traces lists the
// retained evaluations (N most recent + N slowest), GET
// /api/traces/{id} returns one span tree — as structured JSON, or as
// Chrome trace-event JSON (?format=chrome) that loads directly into
// Perfetto (ui.perfetto.dev) or chrome://tracing. Scenario responses
// carry the matching ID in X-Trace-Id.

// handleTraces serves the trace index, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]any{
		"enabled": obs.DefaultTraces.Enabled(),
		"traces":  obs.DefaultTraces.Index(),
	})
}

// handleTrace serves one retained trace by ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := obs.DefaultTraces.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown or evicted trace "+id)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.writeJSON(w, tr)
	case "chrome":
		buf, err := tr.ChromeTrace()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "trace rendering failed")
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace-`+id+`.json"`)
		if _, err := w.Write(buf); err != nil {
			s.reportWriteError(err)
		}
	default:
		s.writeError(w, http.StatusBadRequest, "format must be json or chrome")
	}
}
