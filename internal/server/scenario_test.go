package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"intertubes/internal/obs"
)

func post(t *testing.T, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv(t).URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func evalCounter(t *testing.T) int64 {
	t.Helper()
	return obs.GetCounter("scenario_evaluations_total",
		"Scenario evaluations actually executed (cache hits and singleflight followers excluded).").Value()
}

func TestScenarioEndpoint(t *testing.T) {
	resp, body := post(t, "/api/scenario", `{"preset": "top12-cut"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Hash        string `json:"hash"`
		ConduitsCut int    `json:"conduitsCut"`
		Stats       struct {
			Before struct {
				Links int `json:"Links"`
			} `json:"before"`
			After struct {
				Links int `json:"Links"`
			} `json:"after"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if out.Hash == "" || out.ConduitsCut != 12 {
		t.Errorf("result headline = %+v", out)
	}
	if out.Stats.After.Links >= out.Stats.Before.Links {
		t.Errorf("links did not drop: %+v", out.Stats)
	}
}

// TestScenarioCachedHit is the acceptance criterion: a repeated POST
// must be served from the cache without re-evaluating, observable on
// the evaluation counter.
func TestScenarioCachedHit(t *testing.T) {
	spec := `{"removeISPs": ["Comcast"]}`
	_, first := post(t, "/api/scenario", spec)

	before := evalCounter(t)
	resp, second := post(t, "/api/scenario", spec)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, second)
	}
	if got := evalCounter(t) - before; got != 0 {
		t.Errorf("cached POST re-evaluated %d times", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached response is not byte-identical to the first")
	}
}

func TestScenarioBadRequests(t *testing.T) {
	cases := []struct{ name, body string }{
		{"malformed JSON", `{"preset": `},
		{"unknown field", `{"cutConduitz": [1]}`},
		{"unknown preset", `{"preset": "nope"}`},
		{"out-of-range conduit", `{"cutConduits": [1073741824]}`},
		{"unknown node", `{"add": [{"a": "Nowhere,ZZ", "b": "Seattle,WA"}]}`},
	}
	for _, tc := range cases {
		resp, body := post(t, "/api/scenario", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
}

func TestScenarioReportEndpoint(t *testing.T) {
	resp, body := post(t, "/api/scenario/report", `{"preset": "gulf-hurricane"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	for _, marker := range []string{"gulf-hurricane", "Sharing distribution", "Per-provider disconnection"} {
		if !bytes.Contains(body, []byte(marker)) {
			t.Errorf("report missing %q", marker)
		}
	}
}

func TestScenarioListEndpoint(t *testing.T) {
	// Ensure at least one cached entry exists.
	post(t, "/api/scenario", `{"preset": "top12-cut"}`)

	var out struct {
		Presets []struct {
			Name string `json:"name"`
		} `json:"presets"`
		Cached []struct {
			Hash string `json:"hash"`
		} `json:"cached"`
	}
	resp := getJSON(t, "/api/scenarios", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Presets) < 5 {
		t.Errorf("presets = %d", len(out.Presets))
	}
	if len(out.Cached) == 0 {
		t.Error("no cached entries listed")
	}
}

// TestScenarioConcurrent hammers the endpoint with identical and
// distinct scenarios under the race detector: identical in-flight
// queries must collapse to one evaluation each (singleflight), and
// every response for a given hash must be byte-identical.
func TestScenarioConcurrent(t *testing.T) {
	srv(t) // materialize the study before measuring the counter

	const distinct = 4
	const perScenario = 8
	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"cutConduits": [%d, %d]}`, 50+i, 60+i)
	}

	before := evalCounter(t)
	bodies := make([][][]byte, distinct)
	for i := range bodies {
		bodies[i] = make([][]byte, perScenario)
	}
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		for j := 0; j < perScenario; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				resp, body := post(t, "/api/scenario", specs[i])
				if resp.StatusCode != 200 {
					t.Errorf("scenario %d: status %d", i, resp.StatusCode)
					return
				}
				bodies[i][j] = body
			}(i, j)
		}
	}
	wg.Wait()

	// Singleflight + cache: each distinct scenario evaluated exactly
	// once across all 32 concurrent requests.
	if got := evalCounter(t) - before; got != distinct {
		t.Errorf("evaluations = %d, want %d", got, distinct)
	}
	for i := range bodies {
		for j := 1; j < perScenario; j++ {
			if !bytes.Equal(bodies[i][j], bodies[i][0]) {
				t.Fatalf("scenario %d: response %d differs from response 0", i, j)
			}
		}
	}
	// Distinct scenarios must not alias each other.
	for i := 1; i < distinct; i++ {
		if bytes.Equal(bodies[i][0], bodies[0][0]) {
			t.Errorf("scenario %d response identical to scenario 0", i)
		}
	}
}
