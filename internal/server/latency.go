package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// latency.go serves the all-pairs latency atlas as a paginated,
// cacheable resource. Pair order is the atlas's stable source-major
// ordering, so a page means the same thing on every request against
// one baseline; responses carry a strong ETag keyed on the engine's
// baseline version, so clients revalidate with If-None-Match and get
// 304s until a SwapBaseline rebuilds the atlas.

const (
	latencyDefaultPer = 100
	latencyMaxPer     = 1000
)

type latencyPairJSON struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	FiberMs   float64 `json:"fiberMs"`
	GeoMs     float64 `json:"geoMs"`
	Inflation float64 `json:"inflation"`
}

type latencyPageJSON struct {
	BaselineVersion uint64            `json:"baselineVersion"`
	Page            int               `json:"page"`
	Per             int               `json:"per"`
	TotalPairs      int               `json:"totalPairs"`
	TotalPages      int               `json:"totalPages"`
	Pairs           []latencyPairJSON `json:"pairs"`
}

func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	page, per := 1, latencyDefaultPer
	if q := r.URL.Query().Get("page"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, "page must be a positive integer")
			return
		}
		page = n
	}
	if q := r.URL.Query().Get("per"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > latencyMaxPer {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("per must be in [1,%d]", latencyMaxPer))
			return
		}
		per = n
	}
	at, version := s.study.LatencyAtlas()
	etag := fmt.Sprintf("\"latency-v%d\"", version)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache") // cacheable, but always revalidated
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	pairs := at.Pairs()
	total := len(pairs)
	lo := (page - 1) * per
	hi := lo + per
	if lo > total {
		lo = total
	}
	if hi > total {
		hi = total
	}
	m := s.study.Map()
	out := latencyPageJSON{
		BaselineVersion: version,
		Page:            page,
		Per:             per,
		TotalPairs:      total,
		TotalPages:      (total + per - 1) / per,
		Pairs:           make([]latencyPairJSON, 0, hi-lo),
	}
	for _, pl := range pairs[lo:hi] {
		out.Pairs = append(out.Pairs, latencyPairJSON{
			A:       m.Node(pl.A).Key(),
			B:       m.Node(pl.B).Key(),
			FiberMs: pl.FiberMs, GeoMs: pl.GeoMs, Inflation: pl.Inflation,
		})
	}
	s.writeJSON(w, out)
}
