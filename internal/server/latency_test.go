package server

import (
	"net/http"
	"reflect"
	"strconv"
	"testing"
)

// latency_test.go exercises the paginated atlas endpoint: page
// boundaries, stable source-major ordering across requests, parameter
// validation, and the baseline-versioned ETag lifecycle including a
// SwapBaseline staleness flip.

func TestLatencyFirstPage(t *testing.T) {
	var out latencyPageJSON
	resp := getJSON(t, "/api/latency", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Page != 1 || out.Per != latencyDefaultPer {
		t.Fatalf("page/per = %d/%d, want 1/%d", out.Page, out.Per, latencyDefaultPer)
	}
	if out.TotalPairs == 0 {
		t.Fatal("empty atlas")
	}
	want := out.TotalPairs
	if want > out.Per {
		want = out.Per
	}
	if len(out.Pairs) != want {
		t.Fatalf("first page has %d pairs, want %d", len(out.Pairs), want)
	}
	if out.TotalPages != (out.TotalPairs+out.Per-1)/out.Per {
		t.Fatalf("totalPages = %d inconsistent with %d pairs per %d", out.TotalPages, out.TotalPairs, out.Per)
	}
	for _, pl := range out.Pairs {
		if pl.A == "" || pl.B == "" || pl.FiberMs <= 0 || pl.Inflation < 1-1e-9 {
			t.Fatalf("degenerate pair %+v", pl)
		}
	}
}

func TestLatencyLastAndBeyondLastPage(t *testing.T) {
	var first latencyPageJSON
	getJSON(t, "/api/latency?per=7", &first)
	last := first.TotalPages
	var out latencyPageJSON
	getJSON(t, "/api/latency?per=7&page="+itoa(last), &out)
	wantLast := first.TotalPairs - (last-1)*7
	if len(out.Pairs) != wantLast {
		t.Fatalf("last page has %d pairs, want %d", len(out.Pairs), wantLast)
	}
	var beyond latencyPageJSON
	resp := getJSON(t, "/api/latency?per=7&page="+itoa(last+1), &beyond)
	if resp.StatusCode != 200 || len(beyond.Pairs) != 0 {
		t.Fatalf("beyond-last page: status %d, %d pairs; want 200 and none", resp.StatusCode, len(beyond.Pairs))
	}
	if beyond.TotalPairs != first.TotalPairs {
		t.Fatalf("beyond-last totals diverge: %d vs %d", beyond.TotalPairs, first.TotalPairs)
	}
}

// TestLatencyPagesTile: two small pages concatenated must equal one
// double-size page — the ordering is stable and pages never overlap.
func TestLatencyPagesTile(t *testing.T) {
	var p1, p2, both latencyPageJSON
	getJSON(t, "/api/latency?per=10&page=1", &p1)
	getJSON(t, "/api/latency?per=10&page=2", &p2)
	getJSON(t, "/api/latency?per=20&page=1", &both)
	got := append(append([]latencyPairJSON{}, p1.Pairs...), p2.Pairs...)
	if !reflect.DeepEqual(got, both.Pairs) {
		t.Fatal("pages do not tile the per=20 page")
	}
}

func TestLatencyBadParams(t *testing.T) {
	for _, path := range []string{
		"/api/latency?page=0",
		"/api/latency?page=-3",
		"/api/latency?page=abc",
		"/api/latency?per=0",
		"/api/latency?per=1001",
		"/api/latency?per=x",
	} {
		resp, _ := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestLatencyETagLifecycle(t *testing.T) {
	resp, _ := get(t, "/api/latency")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on latency response")
	}

	req, err := http.NewRequest("GET", srv(t).URL+"/api/latency", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", r2.StatusCode)
	}

	// A baseline swap (same inputs, new snapshot) must stale the tag:
	// the old value now misses and the response carries a fresh one.
	st := study(t)
	st.Scenarios().Engine().SwapBaseline(st.Result(), st.RiskMatrix())
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match after swap: status %d, want 200", r3.StatusCode)
	}
	fresh := r3.Header.Get("ETag")
	if fresh == "" || fresh == etag {
		t.Fatalf("ETag after swap = %q, want a new tag (old %q)", fresh, etag)
	}
}

// TestLatencyVersionMatchesEngine: the payload's baselineVersion is
// the engine's current version — the same number the ETag carries.
func TestLatencyVersionMatchesEngine(t *testing.T) {
	var out latencyPageJSON
	resp := getJSON(t, "/api/latency?per=1", &out)
	want := "\"latency-v" + strconv.FormatUint(out.BaselineVersion, 10) + "\""
	if got := resp.Header.Get("ETag"); got != want {
		t.Fatalf("ETag = %q, want %q", got, want)
	}
}
