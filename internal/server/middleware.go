package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"intertubes/internal/jobs"
)

// middleware.go is the request-lifecycle hardening around the route
// handlers: admission control for the expensive scenario routes and
// panic containment for everything.
//
// The scenario limiter is two bounded pools. A request first tries to
// take an in-flight slot; if none is free it stands in a bounded wait
// queue until a slot frees or its client gives up; if the queue is
// full too, the request is shed immediately with 429 and Retry-After.
// Baseline GET routes are never limited — a scenario flood cannot
// starve /healthz or /metrics.

// errShed marks an admission rejection (queue full), as opposed to the
// client abandoning the wait.
var errShed = errors.New("server: scenario capacity exhausted")

// Config tunes the request-lifecycle middleware. The zero value means
// defaults.
type Config struct {
	// ScenarioInFlight bounds concurrently executing scenario
	// evaluations admitted by this server (default
	// DefaultScenarioInFlight). Coalesced identical queries each hold a
	// slot — the bound is on admitted requests, not distinct hashes.
	ScenarioInFlight int
	// ScenarioQueue bounds how many additional scenario requests may
	// wait for an in-flight slot before new arrivals are shed with 429
	// (default DefaultScenarioQueue).
	ScenarioQueue int
	// RetryAfter is the Retry-After value, in seconds, stamped on shed
	// responses (default 1).
	RetryAfter int
	// Jobs injects the batch job store serving /api/jobs/*. Nil builds
	// a default in-memory store over the study's scenario engine
	// (Server.Close releases it); fibermapd passes a persistent one so
	// sweeps checkpoint and resume across restarts.
	Jobs *jobs.Store
}

// Default admission bounds: generous enough that an interactive
// dashboard never notices, small enough that a flood of distinct
// scenario hashes cannot pile up unbounded evaluations.
const (
	DefaultScenarioInFlight = 8
	DefaultScenarioQueue    = 16
)

func (c Config) withDefaults() Config {
	if c.ScenarioInFlight <= 0 {
		c.ScenarioInFlight = DefaultScenarioInFlight
	}
	if c.ScenarioQueue < 0 {
		c.ScenarioQueue = 0
	} else if c.ScenarioQueue == 0 {
		c.ScenarioQueue = DefaultScenarioQueue
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	return c
}

// limiter is a two-stage admission gate: a slot pool for in-flight
// work and a bounded stand-by queue. Both are plain buffered channels,
// so acquisition order under contention is the runtime's — admission
// never affects evaluation results, only whether a request runs.
type limiter struct {
	slots      chan struct{}
	queue      chan struct{}
	retryAfter string
}

func newLimiter(inFlight, queue, retryAfter int) *limiter {
	return &limiter{
		slots:      make(chan struct{}, inFlight),
		queue:      make(chan struct{}, queue),
		retryAfter: strconv.Itoa(retryAfter),
	}
}

// acquire admits the request (nil), sheds it (errShed), or reports the
// client gone while queued (the context error).
func (l *limiter) acquire(r *http.Request) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		scenarioShed.Inc()
		return errShed
	}
	scenarioQueueDepth.Inc()
	defer func() {
		scenarioQueueDepth.Dec()
		<-l.queue
	}()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

func (l *limiter) release() { <-l.slots }

// limited wraps a scenario handler in the admission gate.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch err := s.scenarioLimiter.acquire(r); {
		case err == nil:
			defer s.scenarioLimiter.release()
			h(w, r)
		case errors.Is(err, errShed):
			w.Header().Set("Retry-After", s.scenarioLimiter.retryAfter)
			s.writeError(w, http.StatusTooManyRequests,
				"scenario capacity exhausted; retry shortly")
		default:
			// Client hung up while queued; the status is moot but keep
			// the accounting honest.
			s.writeError(w, http.StatusServiceUnavailable, "canceled while queued")
		}
	}
}

// serveContained runs the mux with panic containment: a panicking
// handler yields a 500 (when the header is still writable), a counted
// metric, and an error log — and the server keeps serving.
// http.ErrAbortHandler is re-raised; it is net/http's sanctioned way
// to abort a response and must keep its meaning.
func (s *Server) serveContained(rec *statusRecorder, r *http.Request) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			panic(v)
		}
		httpPanics.Inc()
		s.log.Error("handler panicked",
			"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(v))
		if !rec.wroteHeader {
			s.writeError(rec, http.StatusInternalServerError, "internal error")
		}
	}()
	s.mux.ServeHTTP(rec, r)
}
