package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"intertubes/internal/obs"
)

// traces_test.go drives the flight-recorder surface end to end: a
// scenario request carries X-Trace-Id, the ID resolves at /api/traces
// (index) and /api/traces/{id} (JSON and Chrome trace-event formats),
// and the Chrome export shows the overlay path's stage attribution.

func postScenario(t *testing.T, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv(t).URL+"/api/scenario", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestScenarioTraceEndToEnd(t *testing.T) {
	resp := postScenario(t, `{"cutMostShared": 4}`)
	if resp.StatusCode != 200 {
		t.Fatalf("scenario status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("scenario response has no X-Trace-Id header")
	}

	// The index lists the trace.
	var idx struct {
		Enabled bool               `json:"enabled"`
		Traces  []obs.TraceSummary `json:"traces"`
	}
	if r := getJSON(t, "/api/traces", &idx); r.StatusCode != 200 {
		t.Fatalf("index status %d", r.StatusCode)
	}
	if !idx.Enabled {
		t.Error("recorder reported disabled")
	}
	found := false
	for _, s := range idx.Traces {
		if s.ID == id {
			found = true
			if s.Spans < 5 {
				t.Errorf("trace %s has %d spans, want the full stage tree", id, s.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in index (%d entries)", id, len(idx.Traces))
	}

	// JSON form: the span tree carries the attribution attrs.
	var tr obs.TraceRecord
	if r := getJSON(t, "/api/traces/"+id, &tr); r.StatusCode != 200 {
		t.Fatalf("trace status %d", r.StatusCode)
	}
	attrs := map[string]map[string]string{}
	for _, s := range tr.Spans {
		m := map[string]string{}
		for _, a := range s.Attrs {
			m[a.Key] = a.Value
		}
		attrs[s.Name] = m
	}
	if attrs["scenario.evaluate"]["path"] != "overlay" {
		t.Errorf("evaluate path attr = %q", attrs["scenario.evaluate"]["path"])
	}
	if attrs["http.scenario"]["cache"] == "" {
		t.Errorf("root span missing cache outcome; attrs = %v", attrs["http.scenario"])
	}
	part := attrs["scenario.stage.partition"]
	if part["outcome"] != "recomputed" || part["touched"] == "0" || part["touched"] == "" {
		t.Errorf("partition stage attribution = %v", part)
	}

	// Chrome form: valid trace-event JSON with the stage attribution in
	// event args.
	resp2, body := get(t, "/api/traces/"+id+"?format=chrome")
	if resp2.StatusCode != 200 {
		t.Fatalf("chrome status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("chrome content-type = %q", ct)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	var sawAttribution bool
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" && ev.Name == "scenario.stage.disconnection" {
			if ev.Args["outcome"] == "recomputed" && ev.Args["touched"] != nil {
				sawAttribution = true
			}
		}
	}
	if !sawAttribution {
		t.Error("chrome export missing reused/recomputed attribution with touched counts")
	}
}

func TestTraceNotFoundAndBadFormat(t *testing.T) {
	if resp, _ := get(t, "/api/traces/nope"); resp.StatusCode != 404 {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}
	resp := postScenario(t, `{"cutMostShared": 2}`)
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no trace ID")
	}
	if r, _ := get(t, "/api/traces/"+id+"?format=perfetto"); r.StatusCode != 400 {
		t.Errorf("bad format status = %d, want 400", r.StatusCode)
	}
}

func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	// Record one scenario so an exemplar exists.
	postScenario(t, `{"cutMostShared": 3}`)

	req, _ := http.NewRequest("GET", srv(t).URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("openmetrics content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("openmetrics body missing # EOF")
	}
	if !strings.Contains(body, "trace_id=") {
		t.Error("openmetrics body has no exemplars after a recorded evaluation")
	}
}
