package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"intertubes/internal/jobs"
)

// jobs_test.go exercises the batch lane over HTTP: submit, stream,
// artifacts, cancel — and the acceptance criterion that interactive
// scenario routes stay green while a sweep is running.

func postJSON(t *testing.T, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv(t).URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// streamUntilTerminal reads the job's SSE stream until a terminal
// event (or EOF) and returns the last event seen plus how many cells
// were streamed in chunks.
func streamUntilTerminal(t *testing.T, id string) (jobs.Event, int) {
	t.Helper()
	resp, err := http.Get(srv(t).URL + "/api/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var last jobs.Event
	cells := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		cells += len(ev.Cells)
		last = ev
		if ev.State == jobs.StateDone || ev.State == jobs.StateFailed || ev.State == jobs.StateCanceled {
			break
		}
	}
	return last, cells
}

func TestJobsEndToEnd(t *testing.T) {
	resp, raw := postJSON(t, "/api/jobs/sweep", `{"cellKm": 500, "radiiKm": [80]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st jobs.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total == 0 {
		t.Fatalf("submit returned %+v", st)
	}

	// Identical resubmission returns the same job.
	_, raw2 := postJSON(t, "/api/jobs/sweep", `{"cellKm": 500, "radiiKm": [80]}`)
	var st2 jobs.Status
	if err := json.Unmarshal(raw2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Errorf("resubmit made a new job: %s vs %s", st2.ID, st.ID)
	}

	last, _ := streamUntilTerminal(t, st.ID)
	if last.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", last.State, last.Err)
	}

	// Status and listing reflect the finished job.
	resp, raw = get(t, "/api/jobs/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got jobs.Status
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone || got.Completed != got.Total {
		t.Errorf("job status %+v", got)
	}
	resp, raw = get(t, "/api/jobs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), st.ID) {
		t.Errorf("listing (status %d) missing job: %s", resp.StatusCode, raw)
	}

	// GeoJSON artifact.
	resp, raw = get(t, "/api/jobs/"+st.ID+"/result?format=geojson")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("result content type %q", ct)
	}
	var doc struct {
		Type      string `json:"type"`
		Total     int    `json:"total"`
		Completed int    `json:"completed"`
		Features  []any  `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" || doc.Completed != got.Total || len(doc.Features) != got.Total {
		t.Errorf("artifact %s: %d features, completed %d, total %d",
			doc.Type, len(doc.Features), doc.Completed, got.Total)
	}

	// ASCII raster artifact.
	resp, raw = get(t, "/api/jobs/"+st.ID+"/result?format=grid")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "disaster grid") {
		t.Errorf("grid artifact (status %d): %s", resp.StatusCode, raw[:min(len(raw), 120)])
	}
	if resp, _ := get(t, "/api/jobs/"+st.ID+"/result?format=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status %d", resp.StatusCode)
	}

	// The admission snapshot rides /api/stats.
	resp, raw = get(t, "/api/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		Service struct {
			Jobs struct {
				ByState map[string]int `json:"byState"`
			} `json:"jobs"`
		} `json:"service"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Service.Jobs.ByState[string(jobs.StateDone)] == 0 {
		t.Errorf("stats service section missing done jobs: %s", raw)
	}
}

func TestJobsBadRequests(t *testing.T) {
	if resp, _ := postJSON(t, "/api/jobs/sweep", `{"cellKm": -1, "radiiKm": [80]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, "/api/jobs/sweep", `{"cellKm": 500, "radiiKm": [80], "nope": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
	for _, path := range []string{
		"/api/jobs/nope", "/api/jobs/nope/stream", "/api/jobs/nope/result",
	} {
		if resp, _ := get(t, path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, "/api/jobs/nope/cancel", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown status %d", resp.StatusCode)
	}
}

// TestJobResultCacheControlFlip pins the artifact caching contract: a
// result fetched while the job is still running is a partial artifact
// and must carry Cache-Control: no-store; once the job is terminal the
// bytes are final and the header disappears.
func TestJobResultCacheControlFlip(t *testing.T) {
	eng := study(t).Scenarios().Engine()
	started := make(chan struct{})
	var once sync.Once
	eng.SetEvalHook(func(ctx context.Context) {
		if _, ok := jobs.JobIDFromContext(ctx); !ok {
			return // interactive evaluation: untouched
		}
		once.Do(func() { close(started) })
		<-ctx.Done() // park every job evaluation until cancel
	})
	defer eng.SetEvalHook(nil)

	resp, raw := postJSON(t, "/api/jobs/sweep", `{"cellKm": 500, "radiiKm": [90]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st jobs.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	<-started

	// Mid-flight: the partial artifact must not be cacheable.
	for _, format := range []string{"geojson", "grid"} {
		resp, _ := get(t, "/api/jobs/"+st.ID+"/result?format="+format)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("running %s result status %d", format, resp.StatusCode)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("running %s result Cache-Control = %q, want no-store", format, cc)
		}
	}

	// Drive the job terminal and re-fetch: the artifact is now final,
	// so the no-store header must be gone.
	if resp, _ := postJSON(t, "/api/jobs/"+st.ID+"/cancel", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	last, _ := streamUntilTerminal(t, st.ID)
	if !last.State.Terminal() {
		t.Fatalf("job ended in non-terminal state %s", last.State)
	}
	resp, _ = get(t, "/api/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terminal result status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "" {
		t.Errorf("terminal result Cache-Control = %q, want unset", cc)
	}
}

// TestInteractiveRoutesGreenDuringSweep is the admission acceptance
// criterion: with a sweep job actively running (its evaluations
// parked on the fault hook), interactive scenario POSTs still return
// 200 — the batch lane cannot starve the interactive lane.
func TestInteractiveRoutesGreenDuringSweep(t *testing.T) {
	eng := study(t).Scenarios().Engine()
	started := make(chan struct{})
	var once sync.Once
	eng.SetEvalHook(func(ctx context.Context) {
		if _, ok := jobs.JobIDFromContext(ctx); !ok {
			return // interactive evaluation: untouched
		}
		once.Do(func() { close(started) })
		<-ctx.Done() // park every job evaluation until cancel
	})
	defer eng.SetEvalHook(nil)

	resp, raw := postJSON(t, "/api/jobs/sweep", `{"cellKm": 500, "radiiKm": [120]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st jobs.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	<-started

	// The sweep is mid-flight and blocked. Interactive routes must be
	// fully functional.
	resp, raw = postJSON(t, "/api/scenario", `{"cutConduits": [3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive scenario during sweep: status %d: %s", resp.StatusCode, raw)
	}
	if resp, _ := get(t, "/api/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("stats during sweep: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, "/api/jobs/"+st.ID); resp.StatusCode != http.StatusOK {
		t.Errorf("job status during sweep: status %d", resp.StatusCode)
	}

	// Tear the sweep down so the shared store's runner frees up.
	if resp, _ := postJSON(t, "/api/jobs/"+st.ID+"/cancel", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	last, _ := streamUntilTerminal(t, st.ID)
	if last.State != jobs.StateCanceled {
		t.Errorf("job ended %s after cancel", last.State)
	}
}
