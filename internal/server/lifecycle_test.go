package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"intertubes/internal/obs"
)

// lifecycle_test.go is the fault-injection harness for the request
// lifecycle: client hang-ups mid-evaluation, a flood of distinct
// scenario hashes against a small admission limiter, a panicking
// evaluation stage, and an oversized spec. Faults are injected
// deterministically through Engine.SetEvalHook — never with sleeps
// standing in for synchronization.

func canceledCounter() int64 {
	return obs.GetCounter("scenario_evaluations_canceled_total",
		"Scenario evaluations aborted by context cancellation or deadline before completing.").Value()
}

func shedCounter() int64 { return scenarioShed.Value() }

// TestScenarioClientCancelMidEvaluation: a client that hangs up
// mid-evaluation must actually stop the work (observed via the
// evaluation context's cancellation) and increment the canceled
// counter — and the hash must be immediately evaluable again.
func TestScenarioClientCancelMidEvaluation(t *testing.T) {
	eng := study(t).Scenarios().Engine()
	started := make(chan struct{})
	stopped := make(chan struct{})
	eng.SetEvalHook(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(stopped)
	})

	canceledBefore := canceledCounter()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv(t).URL+"/api/scenario", strings.NewReader(`{"cutConduits": [200]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	<-started // evaluation is definitely in flight
	cancel()  // client hangs up

	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation context was never canceled: abandoned work kept running")
	}
	waitFor(t, "canceled counter", func() bool {
		return canceledCounter() > canceledBefore
	})

	// The hash must not be wedged: the same scenario evaluates fresh.
	eng.SetEvalHook(nil)
	resp, body := post(t, "/api/scenario", `{"cutConduits": [200]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("re-POST after cancel: status %d: %s", resp.StatusCode, body)
	}
}

// waitFor polls cond until it holds or a deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScenarioFloodSheds floods a small-limit server with distinct
// scenario hashes while evaluations are pinned in flight: the overflow
// must shed with 429 + Retry-After, the shed counter must move, and
// baseline GET routes must keep answering throughout.
func TestScenarioFloodSheds(t *testing.T) {
	eng := study(t).Scenarios().Engine()
	release := make(chan struct{})
	eng.SetEvalHook(func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	})
	defer eng.SetEvalHook(nil)

	small := httptest.NewServer(NewWithConfig(study(t), discardLogger(), Config{
		ScenarioInFlight: 1,
		ScenarioQueue:    1,
		RetryAfter:       7,
	}))
	defer small.Close()

	const flood = 8
	shedBefore := shedCounter()
	codes := make(chan *http.Response, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct hashes: coalescing cannot absorb the flood.
			resp, err := http.Post(small.URL+"/api/scenario", "application/json",
				strings.NewReader(fmt.Sprintf(`{"cutConduits": [%d]}`, 70+i)))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp
		}(i)
	}

	// Sheds happen as soon as slot+queue are full; wait for them, then
	// check baseline routes answer while scenario capacity is pinned.
	waitFor(t, "flood to shed", func() bool {
		return shedCounter()-shedBefore >= flood-2
	})
	health, err := http.Get(small.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != 200 {
		t.Errorf("/healthz = %d during flood, want 200", health.StatusCode)
	}
	metrics, err := http.Get(small.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics.Body.Close()
	if metrics.StatusCode != 200 {
		t.Errorf("/metrics = %d during flood, want 200", metrics.StatusCode)
	}

	close(release)
	wg.Wait()
	close(codes)

	var ok200, shed429 int
	for resp := range codes {
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if ra := resp.Header.Get("Retry-After"); ra != "7" {
				t.Errorf("Retry-After = %q, want \"7\"", ra)
			}
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
	}
	// 1 in-flight + 1 queued admitted; the other 6 shed.
	if ok200 != 2 || shed429 != flood-2 {
		t.Errorf("ok=%d shed=%d, want 2 and %d", ok200, shed429, flood-2)
	}
	if got := shedCounter() - shedBefore; got != int64(flood-2) {
		t.Errorf("scenario_requests_shed_total moved by %d, want %d", got, flood-2)
	}
	if depth := scenarioQueueDepth.Value(); depth != 0 {
		t.Errorf("scenario_queue_depth = %v after flood, want 0", depth)
	}
}

// TestScenarioPanicContained: a panicking evaluation stage must become
// a 500 with the panic counter bumped — and the server must keep
// serving afterwards, including the same scenario.
func TestScenarioPanicContained(t *testing.T) {
	eng := study(t).Scenarios().Engine()
	eng.SetEvalHook(func(context.Context) { panic("injected stage failure") })

	panicsBefore := httpPanics.Value()
	resp, body := post(t, "/api/scenario", `{"cutConduits": [210]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("error")) {
		t.Errorf("500 body = %s, want JSON error", body)
	}
	if got := httpPanics.Value(); got != panicsBefore+1 {
		t.Errorf("http_panics_total = %d, want %d", got, panicsBefore+1)
	}

	// The server survives: baseline route and the same scenario both
	// work once the fault is removed.
	eng.SetEvalHook(nil)
	if resp, _ := get(t, "/healthz"); resp.StatusCode != 200 {
		t.Errorf("/healthz after panic = %d", resp.StatusCode)
	}
	if resp, body := post(t, "/api/scenario", `{"cutConduits": [210]}`); resp.StatusCode != 200 {
		t.Errorf("re-POST after panic: %d: %s", resp.StatusCode, body)
	}
}

// TestScenarioBodyTooLarge: a spec over the 1 MiB bound is rejected
// with 413, not decoded-as-garbage 400 or an unbounded read.
func TestScenarioBodyTooLarge(t *testing.T) {
	big := `{"name": "` + strings.Repeat("x", maxScenarioBody+1024) + `"}`
	resp, body := post(t, "/api/scenario", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%.80s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("error")) {
		t.Errorf("413 body = %s, want JSON error", body)
	}
	// A maximal-but-legal spec still parses.
	pad := strings.Repeat("x", 1024)
	resp, _ = post(t, "/api/scenario", `{"name": "`+pad+`", "cutConduits": [211]}`)
	if resp.StatusCode != 200 {
		t.Errorf("legal-size spec status = %d, want 200", resp.StatusCode)
	}
}
