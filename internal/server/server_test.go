package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"intertubes"
)

var (
	testSrv   *httptest.Server
	testStudy *intertubes.Study
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// study returns the shared small-options study backing the test
// servers (built once; the map build dominates test wall time).
func study(t *testing.T) *intertubes.Study {
	t.Helper()
	if testStudy == nil {
		testStudy = intertubes.NewStudy(intertubes.Options{
			Probes:          10000,
			LatencyMaxPairs: 300,
			AddConduits:     2,
		})
	}
	return testStudy
}

func srv(t *testing.T) *httptest.Server {
	t.Helper()
	if testSrv == nil {
		// Admission limits far above anything the concurrency tests
		// throw at the shared server: those tests pin evaluation and
		// coalescing counts and must never be shed. The shedding path
		// is exercised against dedicated small-limit servers in
		// lifecycle_test.go.
		testSrv = httptest.NewServer(NewWithConfig(study(t), discardLogger(), Config{
			ScenarioInFlight: 64,
			ScenarioQueue:    64,
		}))
	}
	return testSrv
}

func get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv(t).URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func getJSON(t *testing.T, path string, v any) *http.Response {
	t.Helper()
	resp, body := get(t, path)
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("%s: invalid JSON: %v\n%s", path, err, body)
	}
	return resp
}

func TestHealth(t *testing.T) {
	var out map[string]string
	resp := getJSON(t, "/healthz", &out)
	if resp.StatusCode != 200 || out["status"] != "ok" {
		t.Errorf("health = %d %v", resp.StatusCode, out)
	}
}

func TestStats(t *testing.T) {
	var out map[string]any
	resp := getJSON(t, "/api/stats", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out["isps"].(float64) != 20 {
		t.Errorf("isps = %v", out["isps"])
	}
	if out["conduits"].(float64) < 250 {
		t.Errorf("conduits = %v", out["conduits"])
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}
}

func TestISPList(t *testing.T) {
	var out []map[string]any
	getJSON(t, "/api/isps", &out)
	if len(out) != 20 {
		t.Fatalf("isps = %d", len(out))
	}
	for _, isp := range out {
		if isp["name"] == "" || isp["conduits"].(float64) == 0 {
			t.Errorf("bad isp row %v", isp)
		}
	}
}

func TestISPDetail(t *testing.T) {
	var out struct {
		Name     string   `json:"name"`
		Conduits int      `json:"conduits"`
		Cities   []string `json:"cities"`
		Risk     struct {
			Mean           float64  `json:"meanSharing"`
			Rank           int      `json:"rank"`
			SuggestedPeers []string `json:"suggestedPeers"`
		} `json:"risk"`
	}
	resp := getJSON(t, "/api/isps/Sprint", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Name != "Sprint" || out.Conduits == 0 || len(out.Cities) == 0 {
		t.Errorf("detail = %+v", out)
	}
	if out.Risk.Mean <= 1 || out.Risk.Rank == 0 {
		t.Errorf("risk = %+v", out.Risk)
	}
	if len(out.Risk.SuggestedPeers) == 0 {
		t.Error("no suggested peers")
	}
}

func TestISPDetailNotFound(t *testing.T) {
	resp, body := get(t, "/api/isps/Atlantis")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "error") {
		t.Errorf("body = %s", body)
	}
}

func TestConduitsListAndFilter(t *testing.T) {
	var all, top []map[string]any
	getJSON(t, "/api/conduits", &all)
	getJSON(t, "/api/conduits?minshare=15", &top)
	if len(all) < 250 {
		t.Errorf("all conduits = %d", len(all))
	}
	if len(top) == 0 || len(top) >= len(all) {
		t.Errorf("filtered = %d of %d", len(top), len(all))
	}
	for _, c := range top {
		if c["sharing"].(float64) < 15 {
			t.Errorf("filter leaked %v", c)
		}
	}
}

func TestConduitsBadFilter(t *testing.T) {
	resp, _ := get(t, "/api/conduits?minshare=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	resp, _ = get(t, "/api/conduits?minshare=-3")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative status = %d", resp.StatusCode)
	}
}

func TestConduitDetail(t *testing.T) {
	// Find a real conduit id from the list first.
	var all []map[string]any
	getJSON(t, "/api/conduits", &all)
	id := int(all[0]["id"].(float64))
	var out struct {
		Tenants []string `json:"tenants"`
		A       string   `json:"a"`
	}
	resp := getJSON(t, "/api/conduits/"+itoa(id), &out)
	if resp.StatusCode != 200 || len(out.Tenants) == 0 || out.A == "" {
		t.Errorf("conduit %d = %+v (%d)", id, out, resp.StatusCode)
	}
}

func itoa(v int) string {
	return string(appendInt(nil, v))
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

func TestConduitNotFound(t *testing.T) {
	for _, path := range []string{"/api/conduits/999999", "/api/conduits/xyz"} {
		resp, _ := get(t, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
	}
}

func TestRiskEndpoints(t *testing.T) {
	var sharing []struct {
		K        int `json:"k"`
		Conduits int `json:"conduits"`
	}
	getJSON(t, "/api/risk/sharing", &sharing)
	if len(sharing) != 20 || sharing[0].K != 1 {
		t.Fatalf("sharing = %v", sharing)
	}
	for i := 1; i < len(sharing); i++ {
		if sharing[i].Conduits > sharing[i-1].Conduits {
			t.Error("sharing counts must be non-increasing")
		}
	}
	var ranking []struct {
		ISP  string  `json:"isp"`
		Mean float64 `json:"meanSharing"`
	}
	getJSON(t, "/api/risk/ranking", &ranking)
	if len(ranking) != 20 {
		t.Fatalf("ranking = %d", len(ranking))
	}
}

func TestFigureEndpoints(t *testing.T) {
	for _, name := range []string{"table1", "figure1", "figure6", "figure7", "table5"} {
		resp, body := get(t, "/api/figures/"+name)
		if resp.StatusCode != 200 {
			t.Errorf("%s status = %d", name, resp.StatusCode)
		}
		if len(body) < 40 {
			t.Errorf("%s body too short", name)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s content type = %q", name, ct)
		}
	}
	resp, _ := get(t, "/api/figures/figure99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure status = %d", resp.StatusCode)
	}
}

func TestGeoJSONEndpoints(t *testing.T) {
	for _, layer := range []string{"fibermap", "roads", "rails", "pipelines"} {
		resp, body := get(t, "/geojson/"+layer)
		if resp.StatusCode != 200 {
			t.Errorf("%s status = %d", layer, resp.StatusCode)
		}
		if !json.Valid(body) || !strings.Contains(string(body[:80]), "FeatureCollection") {
			t.Errorf("%s is not GeoJSON", layer)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
			t.Errorf("%s content type = %q", layer, ct)
		}
	}
	resp, _ := get(t, "/geojson/atlantis")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown layer status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	resp, err := http.Post(srv(t).URL+"/api/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestAnnotatedEndpoint(t *testing.T) {
	var anns []map[string]any
	getJSON(t, "/api/annotated?limit=5", &anns)
	if len(anns) != 5 {
		t.Fatalf("annotated = %d", len(anns))
	}
	for _, a := range anns {
		if a["delayMs"].(float64) <= 0 || a["sharing"].(float64) < 1 {
			t.Errorf("bad annotation %v", a)
		}
	}
	resp, _ := get(t, "/api/annotated?limit=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", resp.StatusCode)
	}
}

func TestResilienceEndpoint(t *testing.T) {
	var out struct {
		PartitionCosts []struct {
			ISP     string `json:"ISP"`
			MinCuts int    `json:"MinCuts"`
		} `json:"partitionCosts"`
		Criticality []struct {
			Betweenness float64 `json:"Betweenness"`
		} `json:"criticality"`
	}
	getJSON(t, "/api/resilience", &out)
	if len(out.PartitionCosts) != 20 || len(out.Criticality) != 10 {
		t.Fatalf("resilience = %d costs, %d critical", len(out.PartitionCosts), len(out.Criticality))
	}
}

func TestAnnotatedGeoJSONLayer(t *testing.T) {
	resp, body := get(t, "/geojson/annotated")
	if resp.StatusCode != 200 || !json.Valid(body) {
		t.Errorf("annotated layer: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "probesWestEast") {
		t.Error("annotations missing from GeoJSON properties")
	}
}

func TestAnnotatedBadLimit(t *testing.T) {
	resp, body := get(t, "/api/annotated?limit=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=banana status = %d", resp.StatusCode)
	}
	if !json.Valid(body) || !strings.Contains(string(body), "error") {
		t.Errorf("error body = %s", body)
	}
}

// TestMetricsEndpoint checks that /metrics serves a parseable
// Prometheus text exposition covering the HTTP layer, the study
// stages, and the worker pool.
func TestMetricsEndpoint(t *testing.T) {
	// Generate at least one measured request first.
	get(t, "/api/stats")
	resp, body := get(t, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	// Every non-comment line must be `name{labels} value` or
	// `name value` with a parseable float — a minimal exposition
	// format check.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed metric line %q", line)
		}
		name := line[:sp]
		if strings.ContainsAny(name[:1], "0123456789{") {
			t.Errorf("bad metric name in %q", line)
		}
		if _, err := parseFloat(line[sp+1:]); err != nil {
			t.Errorf("bad value in %q: %v", line, err)
		}
	}
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",route="GET /api/stats"}`,
		"# TYPE http_request_duration_seconds histogram",
		"stage_duration_seconds_bucket",
		`stage="study.mapbuild"`,
		`stage="study.campaign"`,
		"par_chunks_executed_total",
		"par_run_wall_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func TestBuildReportEndpoint(t *testing.T) {
	var out struct {
		Stages []struct {
			Name  string `json:"name"`
			Calls int64  `json:"calls"`
		} `json:"stages"`
		Report string `json:"report"`
	}
	resp := getJSON(t, "/api/buildreport", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := make(map[string]bool)
	for _, st := range out.Stages {
		names[st.Name] = true
		if st.Calls == 0 {
			t.Errorf("stage %s has zero calls", st.Name)
		}
	}
	for _, want := range []string{"study.mapbuild", "study.riskmatrix", "study.campaign", "traceroute.synthesize"} {
		if !names[want] {
			t.Errorf("build report missing stage %s (have %v)", want, names)
		}
	}
	for _, col := range []string{"stage", "wall", "items/s", "study.campaign"} {
		if !strings.Contains(out.Report, col) {
			t.Errorf("rendered report missing %q", col)
		}
	}
}

// TestStatusRecorder exercises the satellite fixes directly: byte
// accounting, implicit-200 capture, and duplicate WriteHeader calls
// being swallowed and counted rather than forwarded.
func TestStatusRecorder(t *testing.T) {
	base := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: base, status: http.StatusOK}
	n, err := rec.Write([]byte("hello "))
	if err != nil || n != 6 {
		t.Fatalf("write = %d, %v", n, err)
	}
	rec.Write([]byte("world"))
	if rec.bytes != 11 {
		t.Errorf("bytes = %d", rec.bytes)
	}
	if !rec.wroteHeader || rec.status != http.StatusOK {
		t.Errorf("implicit header: wrote=%v status=%d", rec.wroteHeader, rec.status)
	}
	// A late WriteHeader must not reach the underlying writer.
	rec.WriteHeader(http.StatusInternalServerError)
	rec.WriteHeader(http.StatusTeapot)
	if rec.dupHeaders != 2 {
		t.Errorf("dupHeaders = %d", rec.dupHeaders)
	}
	if rec.status != http.StatusOK || base.Code != http.StatusOK {
		t.Errorf("status mutated: rec=%d base=%d", rec.status, base.Code)
	}
}

func TestStatusRecorderExplicitHeader(t *testing.T) {
	base := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: base, status: http.StatusOK}
	rec.WriteHeader(http.StatusNotFound)
	if rec.status != http.StatusNotFound || base.Code != http.StatusNotFound {
		t.Errorf("status = %d / %d", rec.status, base.Code)
	}
	if rec.dupHeaders != 0 {
		t.Errorf("dupHeaders = %d", rec.dupHeaders)
	}
}

// TestWriteJSONEncodeFailure pins the satellite fix: an unencodable
// value yields a 500 with a JSON error body (because nothing has hit
// the wire yet) and bumps the failure counter.
func TestWriteJSONEncodeFailure(t *testing.T) {
	s := &Server{log: discardLogger()}
	before := encodeFailures.Value()
	rr := httptest.NewRecorder()
	s.writeJSON(rr, map[string]any{"bad": make(chan int)})
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("status = %d", rr.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("error body is not JSON: %s", rr.Body.String())
	}
	if out["error"] == "" {
		t.Errorf("body = %v", out)
	}
	if got := encodeFailures.Value(); got != before+1 {
		t.Errorf("encodeFailures = %d, want %d", got, before+1)
	}
}

func TestIsClientDisconnect(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{io.ErrClosedPipe, false},
		{http.ErrHandlerTimeout, true},
		{errWrap{}, false},
	}
	for _, c := range cases {
		if got := isClientDisconnect(c.err); got != c.want {
			t.Errorf("isClientDisconnect(%v) = %v", c.err, got)
		}
	}
}

type errWrap struct{}

func (errWrap) Error() string { return "opaque" }
