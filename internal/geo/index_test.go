package geo

import (
	"math/rand"
	"testing"
)

func TestGridIndexBasics(t *testing.T) {
	idx := NewGridIndex(25)
	// A horizontal line along latitude 40.
	line := Polyline{Point{40, -105}, Point{40, -100}}
	idx.InsertPolyline(7, line.Resample(25))
	if idx.SegmentCount() == 0 {
		t.Fatal("no segments indexed")
	}

	near := Point{40.1, -102.5} // ~11 km north of the line
	far := Point{43, -102.5}    // ~333 km north

	if !idx.AnyWithinKm(near, 15) {
		t.Error("near point should be within 15 km")
	}
	if idx.AnyWithinKm(far, 15) {
		t.Error("far point should not be within 15 km")
	}

	// The great circle between the endpoints bulges a few km north of
	// latitude 40, so the nearest distance is a bit under 11.1 km.
	if d, ok := idx.NearestKm(near, 50); !ok || d > 12 || d < 6 {
		t.Errorf("NearestKm = %v,%v want ~8-11", d, ok)
	}
	if _, ok := idx.NearestKm(far, 50); ok {
		t.Error("far point should find nothing within 50 km")
	}

	ids := idx.IDsWithinKm(near, 15)
	if len(ids) != 1 || ids[0] != 7 {
		t.Errorf("IDsWithinKm = %v, want [7]", ids)
	}
}

func TestGridIndexMultipleIDs(t *testing.T) {
	idx := NewGridIndex(25)
	idx.InsertPolyline(1, Polyline{Point{40, -105}, Point{40, -100}}.Resample(25))
	idx.InsertPolyline(2, Polyline{Point{40.2, -105}, Point{40.2, -100}}.Resample(25))
	idx.InsertPolyline(3, Polyline{Point{45, -105}, Point{45, -100}}.Resample(25))

	ids := idx.IDsWithinKm(Point{40.1, -102.5}, 30)
	if len(ids) != 2 {
		t.Fatalf("want both nearby lines, got %v", ids)
	}
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[1] || !seen[2] || seen[3] {
		t.Errorf("wrong ids: %v", ids)
	}
}

// The index must agree with brute force on random data.
func TestGridIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var lines []Polyline
	idx := NewGridIndex(30)
	for i := 0; i < 40; i++ {
		a := Point{Lat: 30 + rng.Float64()*15, Lon: -120 + rng.Float64()*40}
		b := a.Offset(rng.Float64()*360, 50+rng.Float64()*400)
		pl := GreatCircle(a, b, 6)
		lines = append(lines, pl)
		idx.InsertPolyline(i, pl)
	}
	for trial := 0; trial < 200; trial++ {
		p := Point{Lat: 30 + rng.Float64()*15, Lon: -120 + rng.Float64()*40}
		radius := 20 + rng.Float64()*80
		brute := false
		for _, pl := range lines {
			if pl.DistanceToKm(p) <= radius {
				brute = true
				break
			}
		}
		got := idx.AnyWithinKm(p, radius)
		if got != brute {
			t.Fatalf("trial %d: index=%v brute=%v (p=%v r=%.1f)", trial, got, brute, p, radius)
		}
	}
}

func TestNewGridIndexPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive cell size")
		}
	}()
	NewGridIndex(0)
}
