// Package geo provides the geodesy substrate for the InterTubes
// reproduction: great-circle math over WGS84-spherical coordinates,
// polylines with resampling and distance queries, a spatial grid index,
// buffered co-location (overlap) analysis standing in for the paper's
// ArcGIS polygon-overlap workflow, and fiber propagation-delay
// conversion.
//
// All distances are in kilometres, all angles in degrees unless noted,
// and all latencies in milliseconds. Computations use a spherical Earth
// (mean radius 6371.0088 km), which is accurate to ~0.5% — far below
// the fidelity the paper's analyses require.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the IUGG mean Earth radius.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees.
// Latitude is positive north, longitude positive east
// (US longitudes are negative).
type Point struct {
	Lat float64
	Lon float64
}

// String renders the point as "lat,lon" with 4 decimal places
// (~11 m resolution).
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal coordinate range.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// DistanceKm returns the great-circle (haversine) distance between
// p and q in kilometres.
func (p Point) DistanceKm(q Point) float64 {
	lat1, lon1 := radians(p.Lat), radians(p.Lon)
	lat2, lon2 := radians(q.Lat), radians(q.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// BearingDeg returns the initial great-circle bearing from p to q in
// degrees clockwise from north, in [0, 360).
func (p Point) BearingDeg(q Point) float64 {
	lat1, lat2 := radians(p.Lat), radians(q.Lat)
	dLon := radians(q.Lon - p.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := degrees(math.Atan2(y, x))
	if b < 0 {
		b += 360
	}
	return b
}

// Intermediate returns the point a fraction f of the way along the
// great circle from p to q. f=0 yields p, f=1 yields q. Fractions
// outside [0,1] extrapolate along the great circle.
func Intermediate(p, q Point, f float64) Point {
	if p == q {
		return p
	}
	lat1, lon1 := radians(p.Lat), radians(p.Lon)
	lat2, lon2 := radians(q.Lat), radians(q.Lon)
	d := p.DistanceKm(q) / EarthRadiusKm // angular distance
	if d == 0 {
		return p
	}
	sinD := math.Sin(d)
	a := math.Sin((1-f)*d) / sinD
	b := math.Sin(f*d) / sinD
	x := a*math.Cos(lat1)*math.Cos(lon1) + b*math.Cos(lat2)*math.Cos(lon2)
	y := a*math.Cos(lat1)*math.Sin(lon1) + b*math.Cos(lat2)*math.Sin(lon2)
	z := a*math.Sin(lat1) + b*math.Sin(lat2)
	return Point{
		Lat: degrees(math.Atan2(z, math.Sqrt(x*x+y*y))),
		Lon: degrees(math.Atan2(y, x)),
	}
}

// Offset returns the point reached by travelling distKm from p along
// the given bearing (degrees clockwise from north).
func (p Point) Offset(bearingDeg, distKm float64) Point {
	lat1, lon1 := radians(p.Lat), radians(p.Lon)
	brg := radians(bearingDeg)
	d := distKm / EarthRadiusKm
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180].
	lonDeg := math.Mod(degrees(lon2)+540, 360) - 180
	return Point{Lat: degrees(lat2), Lon: lonDeg}
}

// Midpoint returns the great-circle midpoint of p and q.
func Midpoint(p, q Point) Point { return Intermediate(p, q, 0.5) }

// Bounds is an axis-aligned lat/lon bounding box.
type Bounds struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// EmptyBounds returns a bounds value that contains nothing and extends
// correctly under Add.
func EmptyBounds() Bounds {
	return Bounds{MinLat: 91, MinLon: 181, MaxLat: -91, MaxLon: -181}
}

// Add extends the bounds to include p.
func (b Bounds) Add(p Point) Bounds {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Contains reports whether p lies inside the bounds (inclusive).
func (b Bounds) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// ExpandKm grows the bounds by approximately km in every direction.
func (b Bounds) ExpandKm(km float64) Bounds {
	dLat := km / 111.32 // km per degree latitude
	// Use the least-shrunk parallel inside the box for the lon scale so
	// the expansion is conservative (never too small).
	absLat := math.Min(math.Abs(b.MinLat), math.Abs(b.MaxLat))
	if b.MinLat <= 0 && b.MaxLat >= 0 {
		absLat = 0
	}
	cos := math.Cos(radians(absLat))
	if cos < 0.1 {
		cos = 0.1
	}
	dLon := km / (111.32 * cos)
	b.MinLat -= dLat
	b.MaxLat += dLat
	b.MinLon -= dLon
	b.MaxLon += dLon
	return b
}

// Empty reports whether the bounds contain no points.
func (b Bounds) Empty() bool {
	return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon
}

// PointSegmentDistanceKm returns the distance from p to the segment
// a-b. For the segment interior it uses a local equirectangular
// projection centred on the segment, which is accurate to well under
// 1% for the sub-500 km segments produced by polyline resampling.
func PointSegmentDistanceKm(p, a, b Point) float64 {
	if a == b {
		return p.DistanceKm(a)
	}
	// Project into a local tangent plane centred at a.
	cos := math.Cos(radians((a.Lat + b.Lat) / 2))
	ax, ay := 0.0, 0.0
	bx := (b.Lon - a.Lon) * cos * 111.32
	by := (b.Lat - a.Lat) * 111.32
	px := (p.Lon - a.Lon) * cos * 111.32
	py := (p.Lat - a.Lat) * 111.32
	dx, dy := bx-ax, by-ay
	l2 := dx*dx + dy*dy
	t := ((px-ax)*dx + (py-ay)*dy) / l2
	d := math.Inf(1)
	if t > 0 && t < 1 {
		cx, cy := ax+t*dx, ay+t*dy
		ex, ey := px-cx, py-cy
		d = math.Sqrt(ex*ex + ey*ey)
	}
	// The equirectangular projection distorts long segments (it can
	// even misjudge which endpoint is nearer), and the true distance
	// to the segment never exceeds the distance to either endpoint, so
	// clamp against both unconditionally.
	if da := p.DistanceKm(a); da < d {
		d = da
	}
	if db := p.DistanceKm(b); db < d {
		d = db
	}
	return d
}
