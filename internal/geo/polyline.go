package geo

import "math"

// Polyline is an ordered sequence of points describing a route on the
// Earth's surface, e.g. a fiber conduit, a highway, or a rail line.
type Polyline []Point

// LengthKm returns the sum of great-circle segment lengths.
func (pl Polyline) LengthKm() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].DistanceKm(pl[i])
	}
	return total
}

// Bounds returns the bounding box of the polyline.
func (pl Polyline) Bounds() Bounds {
	b := EmptyBounds()
	for _, p := range pl {
		b = b.Add(p)
	}
	return b
}

// Reverse returns a copy of the polyline with point order reversed.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// Resample returns a polyline with points spaced at most stepKm apart
// along each original segment, preserving the original vertices. A
// non-positive step returns a copy of the input.
func (pl Polyline) Resample(stepKm float64) Polyline {
	if len(pl) == 0 {
		return nil
	}
	if stepKm <= 0 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	out := make(Polyline, 0, len(pl)*2)
	out = append(out, pl[0])
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		d := a.DistanceKm(b)
		if d > stepKm {
			n := int(math.Ceil(d / stepKm))
			for j := 1; j < n; j++ {
				out = append(out, Intermediate(a, b, float64(j)/float64(n)))
			}
		}
		out = append(out, b)
	}
	return out
}

// DistanceToKm returns the minimum distance from p to any segment of
// the polyline. It returns +Inf for an empty polyline.
func (pl Polyline) DistanceToKm(p Point) float64 {
	if len(pl) == 0 {
		return math.Inf(1)
	}
	if len(pl) == 1 {
		return p.DistanceKm(pl[0])
	}
	best := math.Inf(1)
	for i := 1; i < len(pl); i++ {
		if d := PointSegmentDistanceKm(p, pl[i-1], pl[i]); d < best {
			best = d
		}
	}
	return best
}

// GreatCircle returns a polyline of n+1 points following the great
// circle from a to b. n must be at least 1.
func GreatCircle(a, b Point, n int) Polyline {
	if n < 1 {
		n = 1
	}
	out := make(Polyline, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, Intermediate(a, b, float64(i)/float64(n)))
	}
	return out
}

// PerpendicularOffset displaces each interior point of the polyline
// sideways (90° from the local direction of travel) by offsetKm,
// leaving the endpoints fixed. It is used to separate road, rail, and
// conduit geometries that follow the same corridor so that co-location
// analysis measures real distances rather than exact coincidence.
func (pl Polyline) PerpendicularOffset(offsetKm float64) Polyline {
	if len(pl) < 3 || offsetKm == 0 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	out := make(Polyline, len(pl))
	out[0] = pl[0]
	out[len(pl)-1] = pl[len(pl)-1]
	for i := 1; i < len(pl)-1; i++ {
		brg := pl[i-1].BearingDeg(pl[i+1])
		side := brg + 90
		d := offsetKm
		if d < 0 {
			side = brg - 90
			d = -d
		}
		out[i] = pl[i].Offset(side, d)
	}
	return out
}
