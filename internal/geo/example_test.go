package geo_test

import (
	"fmt"

	"intertubes/internal/geo"
)

func ExamplePoint_DistanceKm() {
	nyc := geo.Point{Lat: 40.7128, Lon: -74.0060}
	chi := geo.Point{Lat: 41.8781, Lon: -87.6298}
	fmt.Printf("%.0f km\n", nyc.DistanceKm(chi))
	// Output: 1144 km
}

func ExampleFiberLatencyMs() {
	// The paper's §5.3 rule of thumb: 100 microseconds of one-way
	// delay is about 20 km of fiber.
	fmt.Printf("%.1f km per 100 us\n", geo.FiberKmForLatencyMs(0.1))
	fmt.Printf("%.2f ms across 1000 km\n", geo.FiberLatencyMs(1000))
	// Output:
	// 20.4 km per 100 us
	// 4.90 ms across 1000 km
}

func ExamplePolyline_Simplify() {
	dense := geo.GreatCircle(geo.Point{Lat: 40, Lon: -100}, geo.Point{Lat: 41, Lon: -95}, 40)
	slim := dense.Simplify(5)
	fmt.Println(len(dense) > len(slim))
	// Output: true
}
