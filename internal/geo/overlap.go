package geo

import "intertubes/internal/par"

// overlap.go implements the co-location (buffered overlap) analysis
// the paper performed with ArcGIS: for each fiber conduit polyline,
// what fraction of the route lies within a buffer of the roadway
// layer, the railway layer, or both (Figure 4).

// OverlapOptions configures a co-location analysis.
type OverlapOptions struct {
	// BufferKm is the half-width of the buffer drawn around each
	// infrastructure layer. The paper does not state the ArcGIS buffer;
	// we default to 15 km, which matches the visual scale of its
	// National Atlas comparison. Ablations at 10/20/40 km are in
	// EXPERIMENTS.md.
	BufferKm float64
	// SampleStepKm is the spacing of probe points along the analyzed
	// polyline. Defaults to 10 km.
	SampleStepKm float64
	// IndexCellKm is the spatial-index cell size. Defaults to BufferKm.
	IndexCellKm float64
}

func (o OverlapOptions) withDefaults() OverlapOptions {
	if o.BufferKm <= 0 {
		o.BufferKm = 15
	}
	if o.SampleStepKm <= 0 {
		o.SampleStepKm = 10
	}
	if o.IndexCellKm <= 0 {
		o.IndexCellKm = o.BufferKm
	}
	return o
}

// OverlapAnalyzer measures what fraction of a query polyline is
// co-located with each of a set of named infrastructure layers.
type OverlapAnalyzer struct {
	opts   OverlapOptions
	names  []string
	layers map[string]*GridIndex
}

// NewOverlapAnalyzer indexes the given layers (name -> polylines).
func NewOverlapAnalyzer(layers map[string][]Polyline, opts OverlapOptions) *OverlapAnalyzer {
	opts = opts.withDefaults()
	a := &OverlapAnalyzer{
		opts:   opts,
		layers: make(map[string]*GridIndex, len(layers)),
	}
	for name, pls := range layers {
		idx := NewGridIndex(opts.IndexCellKm)
		for i, pl := range pls {
			idx.InsertPolyline(i, pl.Resample(opts.BufferKm))
		}
		a.names = append(a.names, name)
		a.layers[name] = idx
	}
	return a
}

// Layers returns the registered layer names (in registration order is
// not guaranteed; callers should not rely on ordering).
func (a *OverlapAnalyzer) Layers() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Colocation is the result of analyzing one polyline: for each layer,
// the fraction (0..1) of sampled route points within the buffer, plus
// the fraction near any layer and near none.
type Colocation struct {
	Fractions map[string]float64 // per layer
	Any       float64            // within buffer of at least one layer
	None      float64            // within buffer of no layer
	Samples   int
}

// AnalyzeAll analyzes each polyline using up to `workers` goroutines
// (<= 0 means all CPUs) and returns the results in input order. Every
// analysis reads only the immutable layer indexes, so the output is
// identical to calling Analyze in a loop for any worker count.
func (a *OverlapAnalyzer) AnalyzeAll(pls []Polyline, workers int) []Colocation {
	return par.Map(len(pls), workers, func(i int) Colocation {
		return a.Analyze(pls[i])
	})
}

// Analyze samples the polyline and measures per-layer co-location.
// An empty or single-point polyline yields zero samples and NaN-free
// zero fractions.
func (a *OverlapAnalyzer) Analyze(pl Polyline) Colocation {
	res := Colocation{Fractions: make(map[string]float64, len(a.layers))}
	pts := pl.Resample(a.opts.SampleStepKm)
	if len(pts) == 0 {
		for name := range a.layers {
			res.Fractions[name] = 0
		}
		return res
	}
	hits := make(map[string]int, len(a.layers))
	anyHits, noneHits := 0, 0
	for _, p := range pts {
		near := false
		for name, idx := range a.layers {
			if idx.AnyWithinKm(p, a.opts.BufferKm) {
				hits[name]++
				near = true
			}
		}
		if near {
			anyHits++
		} else {
			noneHits++
		}
	}
	n := float64(len(pts))
	for name := range a.layers {
		res.Fractions[name] = float64(hits[name]) / n
	}
	res.Any = float64(anyHits) / n
	res.None = float64(noneHits) / n
	res.Samples = len(pts)
	return res
}
