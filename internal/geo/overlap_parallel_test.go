package geo

import (
	"reflect"
	"testing"
)

// TestAnalyzeAllWorkerInvariance pins the parallel co-location scan to
// the serial per-polyline results for several worker counts.
func TestAnalyzeAllWorkerInvariance(t *testing.T) {
	layers := map[string][]Polyline{
		"road": {
			{Point{40, -110}, Point{40, -100}},
			{Point{38, -104}, Point{42, -104}},
		},
		"rail": {
			{Point{45, -110}, Point{45, -100}},
		},
	}
	a := NewOverlapAnalyzer(layers, OverlapOptions{BufferKm: 15, SampleStepKm: 10})

	var pls []Polyline
	for i := 0; i < 150; i++ {
		lat := 38 + float64(i%9)
		lon := -111 + float64(i%13)
		pls = append(pls, GreatCircle(Point{lat, lon}, Point{lat + 0.5, lon + 6}, 12))
	}

	want := make([]Colocation, len(pls))
	for i, pl := range pls {
		want[i] = a.Analyze(pl)
	}
	for _, workers := range []int{1, 2, 7} {
		got := a.AnalyzeAll(pls, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: AnalyzeAll diverges from serial Analyze", workers)
		}
	}
}
