package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference cities with well-known coordinates and pairwise distances.
var (
	nyc = Point{Lat: 40.7128, Lon: -74.0060}
	lax = Point{Lat: 34.0522, Lon: -118.2437}
	chi = Point{Lat: 41.8781, Lon: -87.6298}
	den = Point{Lat: 39.7392, Lon: -104.9903}
	slc = Point{Lat: 40.7608, Lon: -111.8910}
)

func approx(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > tolFrac {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tolFrac {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tolFrac*100)
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		km   float64
	}{
		{"NYC-LAX", nyc, lax, 3936},
		{"NYC-CHI", nyc, chi, 1145},
		{"DEN-SLC", den, slc, 598},
		{"CHI-DEN", chi, den, 1480},
	}
	for _, c := range cases {
		approx(t, c.name, c.a.DistanceKm(c.b), c.km, 0.01)
	}
}

func TestDistanceProperties(t *testing.T) {
	gen := usPointGen()
	// Symmetry.
	if err := quick.Check(func(i, j uint32) bool {
		a, b := gen(i), gen(j)
		return math.Abs(a.DistanceKm(b)-b.DistanceKm(a)) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
	// Identity.
	if err := quick.Check(func(i uint32) bool {
		a := gen(i)
		return a.DistanceKm(a) == 0
	}, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality (with a tiny epsilon for float error).
	if err := quick.Check(func(i, j, k uint32) bool {
		a, b, c := gen(i), gen(j), gen(k)
		return a.DistanceKm(c) <= a.DistanceKm(b)+b.DistanceKm(c)+1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

// usPointGen derives a deterministic point inside the continental US
// from an integer, for property tests.
func usPointGen() func(uint32) Point {
	return func(v uint32) Point {
		lat := 25 + float64(v%2400)/100.0          // 25..49
		lon := -124 + float64((v/2400)%5700)/100.0 // -124..-67
		return Point{Lat: lat, Lon: lon}
	}
}

func TestIntermediateEndpoints(t *testing.T) {
	m := Intermediate(nyc, lax, 0)
	if m.DistanceKm(nyc) > 0.001 {
		t.Errorf("f=0 gave %v, want %v", m, nyc)
	}
	m = Intermediate(nyc, lax, 1)
	if m.DistanceKm(lax) > 0.001 {
		t.Errorf("f=1 gave %v, want %v", m, lax)
	}
}

func TestIntermediateSplitsDistance(t *testing.T) {
	gen := usPointGen()
	if err := quick.Check(func(i, j uint32, fraw uint8) bool {
		a, b := gen(i), gen(j)
		f := float64(fraw) / 255.0
		m := Intermediate(a, b, f)
		d := a.DistanceKm(b)
		return math.Abs(a.DistanceKm(m)-f*d) < 0.5 // within 500 m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	p := den
	q := p.Offset(90, 100)
	approx(t, "offset distance", p.DistanceKm(q), 100, 0.001)
	// Offsetting back along the reverse bearing returns near the start.
	back := q.Offset(q.BearingDeg(p), p.DistanceKm(q))
	if back.DistanceKm(p) > 0.5 {
		t.Errorf("round trip missed by %.3f km", back.DistanceKm(p))
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 40, Lon: -100}
	north := Point{Lat: 41, Lon: -100}
	east := Point{Lat: 40, Lon: -99}
	if b := p.BearingDeg(north); math.Abs(b-0) > 0.01 && math.Abs(b-360) > 0.01 {
		t.Errorf("north bearing = %v", b)
	}
	if b := p.BearingDeg(east); math.Abs(b-90) > 0.5 {
		t.Errorf("east bearing = %v", b)
	}
}

func TestBoundsAddContains(t *testing.T) {
	b := EmptyBounds()
	if !b.Empty() {
		t.Fatal("EmptyBounds not empty")
	}
	for _, p := range []Point{nyc, lax, chi} {
		b = b.Add(p)
	}
	for _, p := range []Point{nyc, lax, chi} {
		if !b.Contains(p) {
			t.Errorf("bounds should contain %v", p)
		}
	}
	if b.Contains(Point{Lat: 60, Lon: -100}) {
		t.Error("bounds should not contain a point north of all inputs")
	}
	exp := b.ExpandKm(100)
	if !exp.Contains(Point{Lat: b.MaxLat + 0.5, Lon: -100}) {
		t.Error("expanded bounds should contain a point ~55 km north")
	}
}

func TestPointSegmentDistance(t *testing.T) {
	a := Point{Lat: 40, Lon: -100}
	b := Point{Lat: 40, Lon: -99}
	// Point directly above the midpoint, ~55.66 km north.
	p := Point{Lat: 40.5, Lon: -99.5}
	approx(t, "perpendicular", PointSegmentDistanceKm(p, a, b), 55.66, 0.02)
	// Point beyond an endpoint clamps to the endpoint distance.
	q := Point{Lat: 40, Lon: -98}
	approx(t, "beyond end", PointSegmentDistanceKm(q, a, b), q.DistanceKm(b), 0.001)
	// Degenerate segment.
	approx(t, "degenerate", PointSegmentDistanceKm(q, a, a), q.DistanceKm(a), 0.001)
}

func TestPointSegmentDistanceNeverExceedsEndpointDistance(t *testing.T) {
	gen := usPointGen()
	if err := quick.Check(func(i, j, k uint32) bool {
		a, b, p := gen(i), gen(j), gen(k)
		d := PointSegmentDistanceKm(p, a, b)
		return d <= p.DistanceKm(a)+1e-6 && d <= p.DistanceKm(b)+1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylineLengthAndResample(t *testing.T) {
	pl := Polyline{nyc, chi, den, slc, lax}
	want := nyc.DistanceKm(chi) + chi.DistanceKm(den) + den.DistanceKm(slc) + slc.DistanceKm(lax)
	approx(t, "length", pl.LengthKm(), want, 1e-9)

	rs := pl.Resample(50)
	// Resampling preserves length to high accuracy (great-circle
	// interpolation stays on the same path).
	approx(t, "resampled length", rs.LengthKm(), want, 0.001)
	if rs[0] != pl[0] || rs[len(rs)-1] != pl[len(pl)-1] {
		t.Error("resample must preserve endpoints")
	}
	// No gap exceeds the step (allow small numeric slack).
	for i := 1; i < len(rs); i++ {
		if d := rs[i-1].DistanceKm(rs[i]); d > 50.001 {
			t.Fatalf("gap %d is %.3f km > step", i, d)
		}
	}
	// Non-positive step returns a copy.
	cp := pl.Resample(0)
	if len(cp) != len(pl) {
		t.Fatal("step<=0 should copy")
	}
}

func TestPolylineReverse(t *testing.T) {
	pl := Polyline{nyc, chi, den}
	rv := pl.Reverse()
	if rv[0] != den || rv[2] != nyc {
		t.Errorf("reverse got %v", rv)
	}
	if pl[0] != nyc {
		t.Error("reverse must not mutate the original")
	}
}

func TestPolylineDistanceTo(t *testing.T) {
	pl := Polyline{Point{40, -100}, Point{40, -95}}
	p := Point{41, -97.5}
	approx(t, "distance to line", pl.DistanceToKm(p), 111.2, 0.02)
	if !math.IsInf(Polyline(nil).DistanceToKm(p), 1) {
		t.Error("empty polyline should be infinitely far")
	}
	single := Polyline{Point{40, -100}}
	approx(t, "single point", single.DistanceToKm(p), p.DistanceKm(single[0]), 1e-9)
}

func TestGreatCircle(t *testing.T) {
	gc := GreatCircle(nyc, lax, 10)
	if len(gc) != 11 {
		t.Fatalf("len=%d want 11", len(gc))
	}
	approx(t, "gc length", gc.LengthKm(), nyc.DistanceKm(lax), 0.001)
	if GreatCircle(nyc, lax, 0)[0] != nyc {
		t.Error("n<1 should clamp to a single segment")
	}
}

func TestPerpendicularOffset(t *testing.T) {
	pl := GreatCircle(chi, den, 8)
	off := pl.PerpendicularOffset(5)
	if off[0] != pl[0] || off[len(off)-1] != pl[len(pl)-1] {
		t.Error("offset must pin endpoints")
	}
	for i := 1; i < len(pl)-1; i++ {
		d := pl[i].DistanceKm(off[i])
		approx(t, "interior displacement", d, 5, 0.01)
	}
	// Zero offset copies.
	z := pl.PerpendicularOffset(0)
	for i := range pl {
		if z[i] != pl[i] {
			t.Fatal("zero offset should copy exactly")
		}
	}
}

func TestFiberLatency(t *testing.T) {
	// ~204.2 km per ms.
	approx(t, "1000 km", FiberLatencyMs(1000), 4.896, 0.01)
	// Paper's rule of thumb: 100 µs ≈ 20 km.
	approx(t, "100us km", FiberKmForLatencyMs(0.1), 20.4, 0.01)
	// Round trip.
	if err := quick.Check(func(raw uint16) bool {
		km := float64(raw)
		return math.Abs(FiberKmForLatencyMs(FiberLatencyMs(km))-km) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	if !nyc.Valid() {
		t.Error("nyc should be valid")
	}
	if (Point{Lat: 91}).Valid() || (Point{Lon: -200}).Valid() {
		t.Error("out-of-range points must be invalid")
	}
}
