package geo

import "math"

// GridIndex is a uniform lat/lon grid spatial index over polyline
// segments. It answers "which polylines have a segment near this
// point" queries in roughly constant time for the densities that occur
// in continental-scale infrastructure maps.
//
// The zero value is not usable; construct with NewGridIndex.
type GridIndex struct {
	cellDeg  float64
	segments []indexedSegment
	cells    map[cellKey][]int32 // cell -> indices into segments
}

type indexedSegment struct {
	id   int32
	a, b Point
}

type cellKey struct{ row, col int32 }

// NewGridIndex creates an index whose cells are approximately cellKm
// wide at mid-latitudes. cellKm must be positive.
func NewGridIndex(cellKm float64) *GridIndex {
	if cellKm <= 0 {
		panic("geo: NewGridIndex requires positive cell size")
	}
	return &GridIndex{
		cellDeg: cellKm / 111.32,
		cells:   make(map[cellKey][]int32),
	}
}

func (g *GridIndex) key(p Point) cellKey {
	return cellKey{
		row: int32(math.Floor(p.Lat / g.cellDeg)),
		col: int32(math.Floor(p.Lon / g.cellDeg)),
	}
}

// InsertPolyline registers every segment of pl under the caller's id.
// Ids need not be unique or contiguous; a polyline may be inserted in
// several pieces under the same id.
func (g *GridIndex) InsertPolyline(id int, pl Polyline) {
	for i := 1; i < len(pl); i++ {
		g.insertSegment(int32(id), pl[i-1], pl[i])
	}
}

func (g *GridIndex) insertSegment(id int32, a, b Point) {
	segIdx := int32(len(g.segments))
	g.segments = append(g.segments, indexedSegment{id: id, a: a, b: b})
	// Register the segment in every cell its bounding box touches.
	minR := int32(math.Floor(math.Min(a.Lat, b.Lat) / g.cellDeg))
	maxR := int32(math.Floor(math.Max(a.Lat, b.Lat) / g.cellDeg))
	minC := int32(math.Floor(math.Min(a.Lon, b.Lon) / g.cellDeg))
	maxC := int32(math.Floor(math.Max(a.Lon, b.Lon) / g.cellDeg))
	for r := minR; r <= maxR; r++ {
		for c := minC; c <= maxC; c++ {
			k := cellKey{row: r, col: c}
			g.cells[k] = append(g.cells[k], segIdx)
		}
	}
}

// SegmentCount returns the number of indexed segments.
func (g *GridIndex) SegmentCount() int { return len(g.segments) }

// AnyWithinKm reports whether any indexed segment passes within
// radiusKm of p.
func (g *GridIndex) AnyWithinKm(p Point, radiusKm float64) bool {
	found := false
	g.visitNear(p, radiusKm, func(seg indexedSegment) bool {
		if PointSegmentDistanceKm(p, seg.a, seg.b) <= radiusKm {
			found = true
			return false // stop
		}
		return true
	})
	return found
}

// NearestKm returns the distance from p to the nearest indexed segment
// found within radiusKm, and whether one was found.
func (g *GridIndex) NearestKm(p Point, radiusKm float64) (float64, bool) {
	best := math.Inf(1)
	g.visitNear(p, radiusKm, func(seg indexedSegment) bool {
		if d := PointSegmentDistanceKm(p, seg.a, seg.b); d < best {
			best = d
		}
		return true
	})
	if best <= radiusKm {
		return best, true
	}
	return 0, false
}

// IDsWithinKm returns the distinct polyline ids with a segment within
// radiusKm of p.
func (g *GridIndex) IDsWithinKm(p Point, radiusKm float64) []int {
	seen := make(map[int32]struct{})
	g.visitNear(p, radiusKm, func(seg indexedSegment) bool {
		if _, ok := seen[seg.id]; ok {
			return true
		}
		if PointSegmentDistanceKm(p, seg.a, seg.b) <= radiusKm {
			seen[seg.id] = struct{}{}
		}
		return true
	})
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, int(id))
	}
	return out
}

// visitNear calls fn for every candidate segment in cells overlapping
// the radius around p, de-duplicated. fn returning false stops the
// scan early.
func (g *GridIndex) visitNear(p Point, radiusKm float64, fn func(indexedSegment) bool) {
	cos := math.Cos(radians(p.Lat))
	if cos < 0.1 {
		cos = 0.1
	}
	dLat := radiusKm / 111.32
	dLon := radiusKm / (111.32 * cos)
	minR := int32(math.Floor((p.Lat - dLat) / g.cellDeg))
	maxR := int32(math.Floor((p.Lat + dLat) / g.cellDeg))
	minC := int32(math.Floor((p.Lon - dLon) / g.cellDeg))
	maxC := int32(math.Floor((p.Lon + dLon) / g.cellDeg))
	visited := make(map[int32]struct{})
	for r := minR; r <= maxR; r++ {
		for c := minC; c <= maxC; c++ {
			for _, si := range g.cells[cellKey{row: r, col: c}] {
				if _, ok := visited[si]; ok {
					continue
				}
				visited[si] = struct{}{}
				if !fn(g.segments[si]) {
					return
				}
			}
		}
	}
}
