package geo

// simplify.go implements Douglas-Peucker polyline simplification,
// used to keep GeoJSON exports compact: conduit paths are sampled
// every ~25 km for analysis, far denser than a map viewer needs.

// Simplify returns a polyline visually equivalent to pl where no
// removed point was farther than toleranceKm from the simplified
// line. Endpoints are always preserved. A non-positive tolerance
// returns a copy.
func (pl Polyline) Simplify(toleranceKm float64) Polyline {
	if len(pl) < 3 || toleranceKm <= 0 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	keep := make([]bool, len(pl))
	keep[0], keep[len(pl)-1] = true, true
	simplifyRange(pl, 0, len(pl)-1, toleranceKm, keep)
	out := make(Polyline, 0, len(pl))
	for i, k := range keep {
		if k {
			out = append(out, pl[i])
		}
	}
	return out
}

// simplifyRange marks points to keep between fixed endpoints lo and
// hi (exclusive interior), recursing on the farthest outlier.
func simplifyRange(pl Polyline, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxD, maxI := -1.0, -1
	for i := lo + 1; i < hi; i++ {
		if d := PointSegmentDistanceKm(pl[i], pl[lo], pl[hi]); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= tol {
		return // every interior point is close enough; drop them all
	}
	keep[maxI] = true
	simplifyRange(pl, lo, maxI, tol, keep)
	simplifyRange(pl, maxI, hi, tol, keep)
}
