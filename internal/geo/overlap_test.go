package geo

import (
	"math"
	"testing"
)

func TestOverlapAnalyzerColocated(t *testing.T) {
	road := Polyline{Point{40, -110}, Point{40, -100}}
	rail := Polyline{Point{45, -110}, Point{45, -100}} // far away
	a := NewOverlapAnalyzer(map[string][]Polyline{
		"road": {road},
		"rail": {rail},
	}, OverlapOptions{BufferKm: 15, SampleStepKm: 10})

	// A conduit hugging the road, offset ~5 km.
	conduit := GreatCircle(Point{40.05, -110}, Point{40.05, -100}, 20)
	res := a.Analyze(conduit)
	if res.Fractions["road"] < 0.99 {
		t.Errorf("road fraction = %v, want ~1", res.Fractions["road"])
	}
	if res.Fractions["rail"] > 0.01 {
		t.Errorf("rail fraction = %v, want ~0", res.Fractions["rail"])
	}
	if res.Any < 0.99 || res.None > 0.01 {
		t.Errorf("any=%v none=%v", res.Any, res.None)
	}
	if res.Samples == 0 {
		t.Error("expected samples")
	}
}

func TestOverlapAnalyzerPartial(t *testing.T) {
	// Road covers only the western half of the conduit's extent.
	road := Polyline{Point{40, -110}, Point{40, -105}}
	a := NewOverlapAnalyzer(map[string][]Polyline{"road": {road}},
		OverlapOptions{BufferKm: 15, SampleStepKm: 5})
	conduit := GreatCircle(Point{40, -110}, Point{40, -100}, 40)
	res := a.Analyze(conduit)
	if res.Fractions["road"] < 0.40 || res.Fractions["road"] > 0.60 {
		t.Errorf("partial fraction = %v, want ~0.5", res.Fractions["road"])
	}
	if math.Abs(res.Any+res.None-1) > 1e-9 {
		t.Errorf("any+none = %v, want 1", res.Any+res.None)
	}
}

func TestOverlapAnalyzerEmptyPolyline(t *testing.T) {
	a := NewOverlapAnalyzer(map[string][]Polyline{"road": nil}, OverlapOptions{})
	res := a.Analyze(nil)
	if res.Samples != 0 || res.Fractions["road"] != 0 {
		t.Errorf("empty polyline should yield zeroes, got %+v", res)
	}
}

func TestOverlapOptionsDefaults(t *testing.T) {
	o := OverlapOptions{}.withDefaults()
	if o.BufferKm != 15 || o.SampleStepKm != 10 || o.IndexCellKm != 15 {
		t.Errorf("defaults = %+v", o)
	}
	o = OverlapOptions{BufferKm: 40}.withDefaults()
	if o.IndexCellKm != 40 {
		t.Errorf("IndexCellKm should follow BufferKm, got %v", o.IndexCellKm)
	}
}

func TestOverlapLayersAccessor(t *testing.T) {
	a := NewOverlapAnalyzer(map[string][]Polyline{"road": nil, "rail": nil}, OverlapOptions{})
	if len(a.Layers()) != 2 {
		t.Errorf("Layers() = %v", a.Layers())
	}
}
