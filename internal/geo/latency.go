package geo

// latency.go converts fiber route lengths to one-way propagation
// delays. Light in silica fiber travels at c divided by the group
// refractive index (~1.468 for standard single-mode fiber), i.e.
// about 204 km per millisecond — the paper's §5.3 rule of thumb that
// 100 µs ≈ 20 km follows from the same constant.

const (
	// SpeedOfLightKmPerMs is c in km/ms.
	SpeedOfLightKmPerMs = 299792.458 / 1000.0
	// FiberRefractiveIndex is the group index of standard single-mode
	// fiber at 1550 nm.
	FiberRefractiveIndex = 1.468
	// FiberKmPerMs is the propagation speed of light in fiber, km/ms.
	FiberKmPerMs = SpeedOfLightKmPerMs / FiberRefractiveIndex
)

// FiberLatencyMs returns the one-way propagation delay, in
// milliseconds, over km kilometres of fiber.
func FiberLatencyMs(km float64) float64 { return km / FiberKmPerMs }

// FiberKmForLatencyMs is the inverse of FiberLatencyMs.
func FiberKmForLatencyMs(ms float64) float64 { return ms * FiberKmPerMs }
