package geo

import (
	"math/rand"
	"testing"
)

func TestSimplifyStraightLine(t *testing.T) {
	// Points along a great circle collapse to the endpoints.
	pl := GreatCircle(Point{40, -100}, Point{42, -90}, 50)
	// Tolerance must absorb the projected-chord vs great-circle gap
	// over ~900 km; 5 km does.
	out := pl.Simplify(5.0)
	if len(out) > 5 {
		t.Errorf("straight line kept %d points", len(out))
	}
	if out[0] != pl[0] || out[len(out)-1] != pl[len(pl)-1] {
		t.Error("endpoints must survive")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	// An L-shaped route: the corner must survive any reasonable
	// tolerance.
	corner := Point{40, -100}
	pl := GreatCircle(Point{35, -100}, corner, 10)
	pl = append(pl, GreatCircle(corner, Point{40, -90}, 10)[1:]...)
	out := pl.Simplify(5)
	found := false
	for _, p := range out {
		if p.DistanceKm(corner) < 0.01 {
			found = true
		}
	}
	if !found {
		t.Errorf("corner dropped: %v", out)
	}
}

func TestSimplifyErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// A wiggly route.
		base := GreatCircle(Point{35, -110}, Point{42, -85}, 40)
		pl := make(Polyline, len(base))
		copy(pl, base)
		for i := 1; i < len(pl)-1; i++ {
			pl[i] = pl[i].Offset(rng.Float64()*360, rng.Float64()*12)
		}
		tol := 3 + rng.Float64()*15
		out := pl.Simplify(tol)
		// Every original point stays within tolerance of the
		// simplified line (the Douglas-Peucker guarantee, with slack
		// for spherical segment approximations).
		for _, p := range pl {
			if d := out.DistanceToKm(p); d > tol*1.05 {
				t.Fatalf("trial %d: point %.1f km from simplified line (tol %.1f)", trial, d, tol)
			}
		}
		if len(out) > len(pl) {
			t.Fatal("simplify grew the polyline")
		}
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	if got := Polyline(nil).Simplify(1); len(got) != 0 {
		t.Errorf("nil -> %v", got)
	}
	two := Polyline{{40, -100}, {41, -99}}
	if got := two.Simplify(1); len(got) != 2 {
		t.Errorf("two points -> %v", got)
	}
	// Non-positive tolerance copies.
	pl := GreatCircle(Point{40, -100}, Point{42, -90}, 5)
	if got := pl.Simplify(0); len(got) != len(pl) {
		t.Errorf("tol=0 -> %d points, want %d", len(got), len(pl))
	}
}
