// Package atlas is the data substrate standing in for the proprietary
// inputs of the InterTubes paper: a set of real US cities (with true
// coordinates and approximate populations) and a corridor graph whose
// edges follow real interstate-highway, railway, and pipeline
// alignments. The paper drew the equivalent layers from ISP fiber
// maps and the US National Atlas; see DESIGN.md for the substitution
// argument.
package atlas

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"intertubes/internal/geo"
	"intertubes/internal/graph"
)

// ROW identifies which rights-of-way are available in a corridor.
type ROW int

const (
	// ROWRoad means the corridor is highway-only.
	ROWRoad ROW = iota
	// ROWRail means the corridor is railway-only.
	ROWRail
	// ROWBoth means highway and railway share the corridor.
	ROWBoth
	// ROWPipeline means the corridor follows a petroleum/NGL pipeline
	// right-of-way with no co-located road or rail (the paper's §3
	// examples such as Anaheim-Las Vegas).
	ROWPipeline
)

// String returns the lowercase name used in the data files.
func (r ROW) String() string {
	switch r {
	case ROWRoad:
		return "road"
	case ROWRail:
		return "rail"
	case ROWBoth:
		return "both"
	case ROWPipeline:
		return "pipeline"
	}
	return fmt.Sprintf("ROW(%d)", int(r))
}

// HasRoad reports whether a highway runs in the corridor.
func (r ROW) HasRoad() bool { return r == ROWRoad || r == ROWBoth }

// HasRail reports whether a railway runs in the corridor.
func (r ROW) HasRail() bool { return r == ROWRail || r == ROWBoth }

func parseROW(s string) (ROW, error) {
	switch s {
	case "road":
		return ROWRoad, nil
	case "rail":
		return ROWRail, nil
	case "both":
		return ROWBoth, nil
	case "pipeline":
		return ROWPipeline, nil
	}
	return 0, fmt.Errorf("atlas: unknown right-of-way %q", s)
}

// City is a population center.
type City struct {
	Name       string
	State      string
	Loc        geo.Point
	Population int
}

// Key returns the canonical "Name,ST" identifier.
func (c City) Key() string { return c.Name + "," + c.State }

// Corridor is a transportation corridor between two cities. A, B are
// indices into Atlas.Cities. Geometry follows the corridor's primary
// right-of-way; RoadGeom/RailGeom/PipeGeom carry the per-mode
// alignments (nil when the mode is absent), which differ by a few km
// the way a highway and a railway sharing a valley do.
type Corridor struct {
	A, B     int
	ROW      ROW
	Route    string
	Geometry geo.Polyline
	RoadGeom geo.Polyline
	RailGeom geo.Polyline
	PipeGeom geo.Polyline
	LengthKm float64
}

// Atlas is the loaded city and corridor database.
type Atlas struct {
	Cities    []City
	Corridors []Corridor
	byKey     map[string]int
}

// Load parses the embedded city and corridor data. The data is part
// of the program, so malformed data panics (it is a build defect, not
// a runtime condition).
func Load() *Atlas {
	a, err := parse(citiesData, corridorsData)
	if err != nil {
		panic(err)
	}
	return a
}

func parse(cities, corridors string) (*Atlas, error) {
	a := &Atlas{byKey: make(map[string]int)}
	for ln, line := range strings.Split(cities, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 5 {
			return nil, fmt.Errorf("atlas: cities line %d: want 5 fields, got %d", ln+1, len(parts))
		}
		lat, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("atlas: cities line %d: lat: %v", ln+1, err)
		}
		lon, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("atlas: cities line %d: lon: %v", ln+1, err)
		}
		pop, err := strconv.Atoi(parts[4])
		if err != nil {
			return nil, fmt.Errorf("atlas: cities line %d: population: %v", ln+1, err)
		}
		c := City{Name: parts[0], State: parts[1], Loc: geo.Point{Lat: lat, Lon: lon}, Population: pop}
		if !c.Loc.Valid() {
			return nil, fmt.Errorf("atlas: cities line %d: invalid coordinates %v", ln+1, c.Loc)
		}
		if _, dup := a.byKey[c.Key()]; dup {
			return nil, fmt.Errorf("atlas: duplicate city %q", c.Key())
		}
		a.byKey[c.Key()] = len(a.Cities)
		a.Cities = append(a.Cities, c)
	}
	for ln, line := range strings.Split(corridors, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 4 {
			return nil, fmt.Errorf("atlas: corridors line %d: want 4 fields, got %d", ln+1, len(parts))
		}
		ai, ok := a.byKey[parts[0]]
		if !ok {
			return nil, fmt.Errorf("atlas: corridors line %d: unknown city %q", ln+1, parts[0])
		}
		bi, ok := a.byKey[parts[1]]
		if !ok {
			return nil, fmt.Errorf("atlas: corridors line %d: unknown city %q", ln+1, parts[1])
		}
		if ai == bi {
			return nil, fmt.Errorf("atlas: corridors line %d: self-loop at %q", ln+1, parts[0])
		}
		row, err := parseROW(parts[2])
		if err != nil {
			return nil, fmt.Errorf("atlas: corridors line %d: %v", ln+1, err)
		}
		c := Corridor{A: ai, B: bi, ROW: row, Route: parts[3]}
		buildGeometry(&c, a.Cities[ai], a.Cities[bi])
		a.Corridors = append(a.Corridors, c)
	}
	return a, nil
}

// CityIndex returns the index of the city with the given "Name,ST"
// key.
func (a *Atlas) CityIndex(key string) (int, bool) {
	i, ok := a.byKey[key]
	return i, ok
}

// MustCity returns the city index or panics; for tests and embedded
// configuration that reference cities by name.
func (a *Atlas) MustCity(key string) int {
	i, ok := a.byKey[key]
	if !ok {
		panic(fmt.Sprintf("atlas: unknown city %q", key))
	}
	return i
}

// Nearest returns the index of the city closest to p.
func (a *Atlas) Nearest(p geo.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range a.Cities {
		if d := c.Loc.DistanceKm(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// CitiesOver returns the indices of cities with population >= minPop,
// in data order.
func (a *Atlas) CitiesOver(minPop int) []int {
	var out []int
	for i, c := range a.Cities {
		if c.Population >= minPop {
			out = append(out, i)
		}
	}
	return out
}

// Graph returns the corridor multigraph: vertex i is city i, edge j is
// corridor j, weighted by corridor length in km.
func (a *Atlas) Graph() *graph.Graph {
	g := graph.New(len(a.Cities))
	for _, c := range a.Corridors {
		g.AddEdge(c.A, c.B, c.LengthKm)
	}
	return g
}

// RoadPolylines returns the highway layer (one polyline per corridor
// with a road).
func (a *Atlas) RoadPolylines() []geo.Polyline {
	return a.layer(func(c Corridor) geo.Polyline { return c.RoadGeom })
}

// RailPolylines returns the railway layer.
func (a *Atlas) RailPolylines() []geo.Polyline {
	return a.layer(func(c Corridor) geo.Polyline { return c.RailGeom })
}

// PipelinePolylines returns the pipeline layer.
func (a *Atlas) PipelinePolylines() []geo.Polyline {
	return a.layer(func(c Corridor) geo.Polyline { return c.PipeGeom })
}

func (a *Atlas) layer(pick func(Corridor) geo.Polyline) []geo.Polyline {
	var out []geo.Polyline
	for _, c := range a.Corridors {
		if pl := pick(c); pl != nil {
			out = append(out, pl)
		}
	}
	return out
}

// buildGeometry synthesizes deterministic corridor alignments. Real
// roads wiggle; we model that with a smooth sinusoidal perpendicular
// displacement whose phase is derived from the corridor name, so every
// build of the atlas produces identical geometry. Road, rail, and
// pipeline alignments in the same corridor get different phases and a
// small mutual offset, like a highway and a railway sharing a valley.
func buildGeometry(c *Corridor, ca, cb City) {
	if c.ROW.HasRoad() {
		c.RoadGeom = wiggle(ca.Loc, cb.Loc, c.Route+"/road", 0)
	}
	if c.ROW.HasRail() {
		c.RailGeom = wiggle(ca.Loc, cb.Loc, c.Route+"/rail", 3.0)
	}
	if c.ROW == ROWPipeline {
		c.PipeGeom = wiggle(ca.Loc, cb.Loc, c.Route+"/pipe", 0)
	}
	switch {
	case c.RoadGeom != nil:
		c.Geometry = c.RoadGeom
	case c.RailGeom != nil:
		c.Geometry = c.RailGeom
	default:
		c.Geometry = c.PipeGeom
	}
	c.LengthKm = c.Geometry.LengthKm()
}

// wiggle builds a polyline from a to b with a smooth deterministic
// perpendicular displacement plus a constant sideways offset.
func wiggle(a, b geo.Point, seed string, sideOffsetKm float64) geo.Polyline {
	dist := a.DistanceKm(b)
	n := int(dist/25) + 2 // a vertex roughly every 25 km
	if n < 3 {
		n = 3
	}
	h := fnv.New64a()
	h.Write([]byte(seed))
	hv := h.Sum64()
	phase := float64(hv%360) * math.Pi / 180
	cycles := 1 + float64((hv>>16)%3) // 1..3 full sine cycles
	// Amplitude scales with corridor length but stays under ~9 km so
	// that a 15 km co-location buffer still matches shared corridors.
	amp := math.Min(9, dist*0.035)

	base := geo.GreatCircle(a, b, n)
	out := make(geo.Polyline, len(base))
	out[0], out[len(out)-1] = base[0], base[len(base)-1]
	for i := 1; i < len(base)-1; i++ {
		f := float64(i) / float64(len(base)-1)
		disp := amp*math.Sin(2*math.Pi*cycles*f+phase) + sideOffsetKm
		brg := base[i-1].BearingDeg(base[i+1]) + 90
		if disp < 0 {
			brg = base[i-1].BearingDeg(base[i+1]) - 90
			disp = -disp
		}
		out[i] = base[i].Offset(brg, disp)
	}
	return out
}
