package atlas

// corridorsData lists the transportation corridors of the synthetic
// National Atlas: CityA,ST|CityB,ST|row|route, one per line.
//
// row is the right-of-way class available in the corridor:
//
//	road     - highway only
//	rail     - railway only
//	both     - highway and railway share the corridor
//	pipeline - petroleum/NGL pipeline right-of-way (no road/rail);
//	           these model the paper's Figure 5 / §3 examples
//	           (Anaheim-Las Vegas, the Houston-Atlanta NGL route
//	           through Laurel, MS)
//
// Routes follow real alignments (I-80 over Donner, the UP Overland
// Route through Wells NV, the NEC, the BNSF Transcon, …) so that the
// long-haul chokepoints the paper highlights — Salt Lake City-Denver,
// Phoenix-Tucson, Philadelphia-New York — emerge at the same places.
const corridorsData = `
Seattle,WA|Tacoma,WA|both|I-5/BNSF
Tacoma,WA|Olympia,WA|road|I-5
Olympia,WA|Portland,OR|both|I-5/BNSF
Seattle,WA|Ellensburg,WA|both|I-90/BNSF
Ellensburg,WA|Spokane,WA|both|I-90/BNSF
Spokane,WA|Lewiston,ID|road|US-195
Lewiston,ID|Boise,ID|road|US-95
Seattle,WA|Yakima,WA|road|I-90/I-82
Yakima,WA|Portland,OR|road|I-84/US-97
Portland,OR|Hillsboro,OR|road|US-26
Portland,OR|Salem,OR|both|I-5/UP
Salem,OR|Eugene,OR|both|I-5/UP
Eugene,OR|Medford,OR|both|I-5/CORP
Medford,OR|Redding,CA|both|I-5/UP
Portland,OR|Bend,OR|road|US-26/US-97
Bend,OR|Burns,OR|road|US-20
Burns,OR|Boise,ID|road|US-20
Redding,CA|Chico,CA|both|I-5/UP
Chico,CA|Sacramento,CA|both|CA-99/UP
Sacramento,CA|San Francisco,CA|both|I-80/CC
Sacramento,CA|Stockton,CA|both|CA-99/UP
San Francisco,CA|Oakland,CA|both|I-80
Oakland,CA|Sacramento,CA|both|I-80/UP
San Francisco,CA|Palo Alto,CA|both|US-101/Caltrain
Palo Alto,CA|San Jose,CA|both|US-101/Caltrain
San Jose,CA|Santa Clara,CA|road|US-101
Oakland,CA|San Jose,CA|both|I-880/UP
San Jose,CA|Salinas,CA|both|US-101/UP
Salinas,CA|San Luis Obispo,CA|both|US-101/UP
San Luis Obispo,CA|Lompoc,CA|both|US-101/UP
Lompoc,CA|Santa Barbara,CA|both|US-101/UP
Santa Barbara,CA|Los Angeles,CA|both|US-101/UP
Stockton,CA|Modesto,CA|both|CA-99/UP
Modesto,CA|Fresno,CA|both|CA-99/UP
Fresno,CA|Bakersfield,CA|both|CA-99/UP
Bakersfield,CA|Los Angeles,CA|both|I-5/UP-Tehachapi
Los Angeles,CA|Anaheim,CA|both|I-5/BNSF
Anaheim,CA|Riverside,CA|road|CA-91
Anaheim,CA|San Diego,CA|both|I-5/Surfline
Riverside,CA|San Diego,CA|road|I-15
Riverside,CA|Barstow,CA|both|I-15/BNSF
Barstow,CA|Las Vegas,NV|road|I-15
Anaheim,CA|Las Vegas,NV|pipeline|CalNev-products
Barstow,CA|Needles,CA|both|I-40/BNSF-Transcon
Needles,CA|Kingman,AZ|both|I-40/BNSF-Transcon
Kingman,AZ|Flagstaff,AZ|both|I-40/BNSF-Transcon
Kingman,AZ|Las Vegas,NV|road|US-93
Flagstaff,AZ|Winslow,AZ|both|I-40/BNSF-Transcon
Winslow,AZ|Gallup,NM|both|I-40/BNSF-Transcon
Gallup,NM|Albuquerque,NM|both|I-40/BNSF-Transcon
Flagstaff,AZ|Camp Verde,AZ|road|I-17
Camp Verde,AZ|Sedona,AZ|road|AZ-179
Sedona,AZ|Flagstaff,AZ|road|AZ-89A
Camp Verde,AZ|Phoenix,AZ|road|I-17
Phoenix,AZ|Tucson,AZ|both|I-10/UP-Sunset
Tucson,AZ|Lordsburg,NM|both|I-10/UP-Sunset
Lordsburg,NM|El Paso,TX|both|I-10/UP-Sunset
Phoenix,AZ|Yuma,AZ|both|I-8/UP
Yuma,AZ|San Diego,CA|both|I-8/SD&AE
Sacramento,CA|Reno,NV|both|I-80/UP-Donner
Reno,NV|Winnemucca,NV|both|I-80/UP-Overland
Winnemucca,NV|Elko,NV|both|I-80/UP-Overland
Elko,NV|Wells,NV|both|I-80/UP-Overland
Wells,NV|Wendover,UT|both|I-80/UP-Overland
Wendover,UT|Salt Lake City,UT|both|I-80/UP-Overland
Wells,NV|Twin Falls,ID|road|US-93
Reno,NV|Tonopah,NV|road|US-95
Tonopah,NV|Las Vegas,NV|road|US-95
Las Vegas,NV|St George,UT|road|I-15
St George,UT|Beaver,UT|road|I-15
Beaver,UT|Provo,UT|road|I-15
Provo,UT|Salt Lake City,UT|both|I-15/UP
Salt Lake City,UT|Ogden,UT|both|I-15/UP
Ogden,UT|Pocatello,ID|both|I-15/UP
Pocatello,ID|Idaho Falls,ID|both|I-15/UP
Pocatello,ID|Twin Falls,ID|both|I-86/UP
Twin Falls,ID|Boise,ID|both|I-84/UP
Boise,ID|Pendleton,OR|both|I-84/UP
Pendleton,OR|Portland,OR|both|I-84/UP
Idaho Falls,ID|Butte,MT|both|I-15/UP
Butte,MT|Helena,MT|both|I-15/MRL
Helena,MT|Great Falls,MT|both|I-15/BNSF
Butte,MT|Missoula,MT|both|I-90/MRL
Missoula,MT|Spokane,WA|both|I-90/MRL
Butte,MT|Bozeman,MT|both|I-90/MRL
Bozeman,MT|Billings,MT|both|I-90/MRL
Billings,MT|Sheridan,WY|road|I-90
Sheridan,WY|Casper,WY|road|I-25
Casper,WY|Cheyenne,WY|road|I-25
Cheyenne,WY|Denver,CO|both|I-25/UP
Cheyenne,WY|Laramie,WY|both|I-80/UP
Laramie,WY|Rawlins,WY|both|I-80/UP
Rawlins,WY|Rock Springs,WY|both|I-80/UP
Rock Springs,WY|Salt Lake City,UT|both|I-80/UP
Salt Lake City,UT|Provo,UT|rail|UTA-Provo-Sub
Provo,UT|Green River,UT|both|US-6/UP-DRGW
Green River,UT|Grand Junction,CO|both|I-70/UP-DRGW
Grand Junction,CO|Denver,CO|both|I-70/UP-Moffat
Great Falls,MT|Billings,MT|road|US-87
Billings,MT|Miles City,MT|both|I-94/BNSF
Miles City,MT|Bismarck,ND|both|I-94/BNSF
Bismarck,ND|Fargo,ND|both|I-94/BNSF
Fargo,ND|St Cloud,MN|both|I-94/BNSF
St Cloud,MN|Minneapolis,MN|both|I-94/BNSF
Fargo,ND|Grand Forks,ND|both|I-29/BNSF
Billings,MT|Gillette,WY|road|I-90
Gillette,WY|Rapid City,SD|road|I-90
Rapid City,SD|Sioux Falls,SD|both|I-90/RCP&E
Sioux Falls,SD|Omaha,NE|both|I-29/BNSF
Sioux Falls,SD|Minneapolis,MN|road|I-90/I-35
Minneapolis,MN|Duluth,MN|both|I-35/BNSF
Minneapolis,MN|Eau Claire,WI|both|I-94/UP
Eau Claire,WI|Madison,WI|road|I-94
Madison,WI|Milwaukee,WI|both|I-94/CP
Madison,WI|Rockford,IL|road|I-90
Rockford,IL|Chicago,IL|both|I-90/UP
Milwaukee,WI|Chicago,IL|both|I-94/CP
Minneapolis,MN|Rochester,MN|road|US-52
Rochester,MN|La Crosse,WI|road|I-90
La Crosse,WI|Madison,WI|both|I-90/CP
Green Bay,WI|Milwaukee,WI|both|I-43/CN
Denver,CO|Fort Collins,CO|both|I-25/BNSF
Fort Collins,CO|Cheyenne,WY|both|I-25/BNSF
Denver,CO|Colorado Springs,CO|both|I-25/UP
Colorado Springs,CO|Pueblo,CO|both|I-25/UP
Pueblo,CO|Trinidad,CO|both|I-25/BNSF-Raton
Trinidad,CO|Santa Fe,NM|both|I-25/BNSF-Raton
Santa Fe,NM|Albuquerque,NM|both|I-25/BNSF
Albuquerque,NM|Socorro,NM|both|I-25/BNSF
Socorro,NM|Las Cruces,NM|both|I-25/BNSF
Las Cruces,NM|El Paso,TX|both|I-25/UP
Denver,CO|Limon,CO|both|I-70/UP-KP
Limon,CO|Hays,KS|both|I-70/UP-KP
Hays,KS|Salina,KS|both|I-70/UP-KP
Salina,KS|Topeka,KS|both|I-70/UP
Topeka,KS|Kansas City,MO|both|I-70/UP
Cheyenne,WY|Sidney,NE|both|I-80/UP
Sidney,NE|North Platte,NE|both|I-80/UP
North Platte,NE|Grand Island,NE|both|I-80/UP
Grand Island,NE|Lincoln,NE|both|I-80/UP
Lincoln,NE|Omaha,NE|both|I-80/UP
Omaha,NE|Des Moines,IA|both|I-80/UP
Des Moines,IA|Davenport,IA|both|I-80/IAIS
Davenport,IA|Chicago,IL|both|I-80/BNSF
Topeka,KS|Lincoln,NE|road|US-75
Kansas City,MO|Omaha,NE|road|I-29
Kansas City,MO|St Louis,MO|both|I-70/UP
Kansas City,MO|Columbia,MO|both|I-70/UP
Columbia,MO|St Louis,MO|both|I-70/UP
Kansas City,MO|Emporia,KS|both|I-35/BNSF
Emporia,KS|Wichita,KS|both|I-35/BNSF
Wichita,KS|Salina,KS|road|I-135
Wichita,KS|Oklahoma City,OK|both|I-35/BNSF
Oklahoma City,OK|Tulsa,OK|both|I-44/BNSF
Tulsa,OK|Joplin,MO|road|I-44
Joplin,MO|Springfield,MO|both|I-44/BNSF
Springfield,MO|St Louis,MO|both|I-44/BNSF
Oklahoma City,OK|Dallas,TX|both|I-35/BNSF
Oklahoma City,OK|Amarillo,TX|both|I-40/BNSF
Amarillo,TX|Tucumcari,NM|both|I-40/UP
Tucumcari,NM|Albuquerque,NM|both|I-40/BNSF
Amarillo,TX|Wichita Falls,TX|road|US-287
Wichita Falls,TX|Dallas,TX|road|US-287
Amarillo,TX|Lubbock,TX|both|I-27/BNSF
Lubbock,TX|Midland,TX|road|TX-349
Midland,TX|Van Horn,TX|both|I-20/UP
Van Horn,TX|El Paso,TX|both|I-10/UP
Midland,TX|Abilene,TX|both|I-20/UP
Abilene,TX|Fort Worth,TX|both|I-20/UP
Dallas,TX|Fort Worth,TX|both|I-30/UP
Dallas,TX|Waco,TX|both|I-35/UP
Waco,TX|Austin,TX|both|I-35/UP
Austin,TX|San Antonio,TX|both|I-35/UP
San Antonio,TX|Houston,TX|both|I-10/UP
San Antonio,TX|Laredo,TX|both|I-35/UP
San Antonio,TX|Corpus Christi,TX|both|I-37/UP
Waco,TX|Bryan,TX|road|TX-6
Bryan,TX|Houston,TX|both|TX-6/UP
Houston,TX|Beaumont,TX|both|I-10/UP
Beaumont,TX|Lafayette,LA|both|I-10/UP
Lafayette,LA|Baton Rouge,LA|both|I-10/UP
Baton Rouge,LA|New Orleans,LA|both|I-10/KCS
Houston,TX|Dallas,TX|both|I-45/UP
Dallas,TX|Tyler,TX|road|I-20
Tyler,TX|Shreveport,LA|both|I-20/UP
Shreveport,LA|Monroe,LA|both|I-20/KCS
Monroe,LA|Jackson,MS|both|I-20/KCS
Jackson,MS|Meridian,MS|both|I-20/KCS
Meridian,MS|Birmingham,AL|both|I-20/NS
Birmingham,AL|Atlanta,GA|both|I-20/NS
Meridian,MS|Laurel,MS|both|I-59/NS
Laurel,MS|Hattiesburg,MS|both|I-59/NS
Hattiesburg,MS|Gulfport,MS|road|US-49
Hattiesburg,MS|New Orleans,LA|both|I-59/NS
Baton Rouge,LA|Laurel,MS|pipeline|Dixie-NGL
Laurel,MS|Montgomery,AL|pipeline|Dixie-NGL
Montgomery,AL|Atlanta,GA|both|I-85/CSX
Jackson,MS|Memphis,TN|both|I-55/CN
Jackson,MS|New Orleans,LA|both|I-55/CN
New Orleans,LA|Gulfport,MS|both|I-10/CSX
Gulfport,MS|Mobile,AL|both|I-10/CSX
Mobile,AL|Pensacola,FL|both|I-10/CSX
Pensacola,FL|Tallahassee,FL|both|I-10/CSX
Tallahassee,FL|Lake City,FL|both|I-10/CSX
Lake City,FL|Jacksonville,FL|both|I-10/CSX
Mobile,AL|Montgomery,AL|both|I-65/CSX
Montgomery,AL|Birmingham,AL|both|I-65/CSX
Birmingham,AL|Huntsville,AL|road|I-65
Huntsville,AL|Nashville,TN|road|I-65
Memphis,TN|Jackson,TN|both|I-40/NS
Jackson,TN|Nashville,TN|both|I-40/CSX
Nashville,TN|Cookeville,TN|both|I-40/NS
Cookeville,TN|Knoxville,TN|both|I-40/NS
Knoxville,TN|Asheville,NC|road|I-40
Asheville,NC|Charlotte,NC|road|US-74
Knoxville,TN|Chattanooga,TN|both|I-75/NS
Chattanooga,TN|Atlanta,GA|both|I-75/CSX
Nashville,TN|Chattanooga,TN|both|I-24/CSX
Nashville,TN|Bowling Green,KY|both|I-65/CSX
Bowling Green,KY|Louisville,KY|both|I-65/CSX
Louisville,KY|Lexington,KY|road|I-64
Lexington,KY|Cincinnati,OH|both|I-75/NS
Louisville,KY|Indianapolis,IN|both|I-65/CSX
Louisville,KY|St Louis,MO|road|I-64
Memphis,TN|Little Rock,AR|both|I-40/UP
Little Rock,AR|Fort Smith,AR|both|I-40/UP
Fort Smith,AR|Tulsa,OK|road|I-40/US-64
Little Rock,AR|Texarkana,TX|both|I-30/UP
Texarkana,TX|Dallas,TX|both|I-30/UP
Memphis,TN|St Louis,MO|both|I-55/UP
St Louis,MO|Springfield,IL|both|I-55/UP
Springfield,IL|Bloomington,IL|both|I-55/UP
Bloomington,IL|Chicago,IL|both|I-55/UP
Springfield,IL|Peoria,IL|road|I-155
Peoria,IL|Bloomington,IL|road|I-74
St Louis,MO|Effingham,IL|both|I-70/CSX
Effingham,IL|Terre Haute,IN|both|I-70/CSX
Terre Haute,IN|Indianapolis,IN|both|I-70/CSX
Effingham,IL|Urbana,IL|both|I-57/CN
Urbana,IL|Chicago,IL|both|I-57/CN
Indianapolis,IN|Chicago,IL|both|I-65/CSX
Indianapolis,IN|Cincinnati,OH|both|I-74/CSX
Indianapolis,IN|Dayton,OH|both|I-70/NS
Dayton,OH|Columbus,OH|both|I-70/NS
Dayton,OH|Cincinnati,OH|both|I-75/CSX
Indianapolis,IN|Fort Wayne,IN|road|I-69
Fort Wayne,IN|Toledo,OH|both|US-24/NS
Indianapolis,IN|Evansville,IN|road|I-69
Evansville,IN|Nashville,TN|road|I-24/US-41
Evansville,IN|St Louis,MO|road|I-64
Chicago,IL|South Bend,IN|both|I-90/NS
South Bend,IN|Kalamazoo,MI|both|I-94/Amtrak
Kalamazoo,MI|Battle Creek,MI|both|I-94/Amtrak
Battle Creek,MI|Lansing,MI|road|I-69
Battle Creek,MI|Livonia,MI|both|I-94/NS
Livonia,MI|Southfield,MI|road|I-96/I-696
Southfield,MI|Detroit,MI|road|M-10
Livonia,MI|Detroit,MI|road|I-96
Lansing,MI|Livonia,MI|road|I-96
Lansing,MI|Grand Rapids,MI|road|I-96
Grand Rapids,MI|Kalamazoo,MI|road|US-131
Detroit,MI|Toledo,OH|both|I-75/CN
Detroit,MI|Flint,MI|both|I-75/CN
Flint,MI|Lansing,MI|road|I-69
Toledo,OH|Cleveland,OH|both|I-80-90/NS
Cleveland,OH|Erie,PA|both|I-90/NS
Erie,PA|Buffalo,NY|both|I-90/NS
Buffalo,NY|Rochester,NY|both|I-90/CSX
Rochester,NY|Syracuse,NY|both|I-90/CSX
Syracuse,NY|Utica,NY|both|I-90/CSX
Utica,NY|Albany,NY|both|I-90/CSX
Albany,NY|Springfield,MA|both|I-90/CSX
Springfield,MA|Worcester,MA|both|I-90/CSX
Worcester,MA|Boston,MA|both|I-90/CSX
Albany,NY|New York,NY|both|I-87/Hudson-Line
Albany,NY|Burlington,VT|road|I-87/US-7
Boston,MA|Manchester,NH|road|I-93
Boston,MA|Portsmouth,NH|both|I-95/PanAm
Portsmouth,NH|Portland,ME|both|I-95/PanAm
Boston,MA|Providence,RI|both|I-95/NEC
Providence,RI|New Haven,CT|both|I-95/NEC
New Haven,CT|Hartford,CT|both|I-91/Amtrak
Hartford,CT|Springfield,MA|both|I-91/Amtrak
New Haven,CT|Stamford,CT|both|I-95/NEC
Stamford,CT|White Plains,NY|road|I-287
White Plains,NY|New York,NY|both|I-87/MetroNorth
Stamford,CT|New York,NY|both|I-95/NEC
New York,NY|Newark,NJ|both|NEC/NJTurnpike
Newark,NJ|Edison,NJ|both|NEC/NJTurnpike
Edison,NJ|Trenton,NJ|both|NEC/NJTurnpike
Trenton,NJ|Philadelphia,PA|both|NEC/I-95
Philadelphia,PA|Wilmington,DE|both|NEC/I-95
Wilmington,DE|Baltimore,MD|both|NEC/I-95
Baltimore,MD|Towson,MD|road|I-695
Baltimore,MD|Washington,DC|both|NEC/I-95
Washington,DC|Ashburn,VA|road|Dulles-Greenway
Washington,DC|Richmond,VA|both|I-95/CSX-RFP
Richmond,VA|Charlottesville,VA|road|I-64
Charlottesville,VA|Lynchburg,VA|rail|NS-Piedmont
Charlottesville,VA|Washington,DC|both|US-29/NS
Lynchburg,VA|Roanoke,VA|both|US-460/NS
Roanoke,VA|Charleston,WV|road|US-60/I-64
Charleston,WV|Lexington,KY|road|I-64
Charleston,WV|Columbus,OH|road|US-23/I-77
Roanoke,VA|Bristol,TN|both|I-81/NS
Bristol,TN|Knoxville,TN|both|I-81/NS
Richmond,VA|Norfolk,VA|both|I-64/CSX
Norfolk,VA|Raleigh,NC|road|US-64
Richmond,VA|Rocky Mount,NC|both|I-95/CSX-A-Line
Rocky Mount,NC|Fayetteville,NC|both|I-95/CSX-A-Line
Fayetteville,NC|Florence,SC|both|I-95/CSX-A-Line
Florence,SC|Columbia,SC|both|I-20/CSX
Florence,SC|Savannah,GA|both|I-95/CSX
Savannah,GA|Brunswick,GA|both|I-95/CSX
Brunswick,GA|Jacksonville,FL|both|I-95/CSX
Raleigh,NC|Rocky Mount,NC|road|US-64
Raleigh,NC|Greensboro,NC|both|I-40/NS
Greensboro,NC|Charlotte,NC|both|I-85/NS
Greensboro,NC|Lynchburg,VA|both|US-29/NS-Piedmont
Charlotte,NC|Columbia,SC|both|I-77/NS
Columbia,SC|Augusta,GA|road|I-20
Augusta,GA|Atlanta,GA|both|I-20/CSX
Charlotte,NC|Greenville,SC|both|I-85/NS
Greenville,SC|Atlanta,GA|both|I-85/NS
Columbia,SC|Charleston,SC|both|I-26/NS
Charleston,SC|Savannah,GA|both|US-17/CSX
Atlanta,GA|Macon,GA|both|I-75/NS
Macon,GA|Savannah,GA|both|I-16/NS
Macon,GA|Valdosta,GA|both|I-75/NS
Valdosta,GA|Gainesville,FL|both|I-75/CSX
Gainesville,FL|Ocala,FL|both|I-75/CSX
Ocala,FL|Tampa,FL|both|I-75/CSX
Ocala,FL|Orlando,FL|road|FL-Turnpike
Jacksonville,FL|Daytona Beach,FL|both|I-95/FEC
Daytona Beach,FL|Orlando,FL|both|I-4/FEC
Orlando,FL|Tampa,FL|both|I-4/CSX
Orlando,FL|West Palm Beach,FL|road|FL-Turnpike
Daytona Beach,FL|West Palm Beach,FL|rail|FEC-Mainline
West Palm Beach,FL|Boca Raton,FL|both|I-95/FEC
Boca Raton,FL|Fort Lauderdale,FL|both|I-95/FEC
Fort Lauderdale,FL|Miami,FL|both|I-95/FEC
Tampa,FL|Fort Myers,FL|both|I-75/SCFE
Fort Myers,FL|Miami,FL|road|I-75-Alligator-Alley
Jacksonville,FL|Gainesville,FL|road|FL-24/US-301
Cleveland,OH|Youngstown,OH|both|I-76/NS
Youngstown,OH|Pittsburgh,PA|both|I-76/NS
Pittsburgh,PA|Harrisburg,PA|both|PA-Turnpike/NS
Harrisburg,PA|Philadelphia,PA|both|PA-Turnpike/Amtrak
Harrisburg,PA|Allentown,PA|road|I-78
Allentown,PA|Philadelphia,PA|road|I-476
Allentown,PA|Newark,NJ|both|I-78/NS
Allentown,PA|Scranton,PA|road|I-476
Scranton,PA|Binghamton,NY|both|I-81/DL
Binghamton,NY|Syracuse,NY|both|I-81/NYSW
Scranton,PA|New York,NY|road|I-80
Binghamton,NY|Albany,NY|road|I-88
Harrisburg,PA|Baltimore,MD|both|I-83/NS
Pittsburgh,PA|Columbus,OH|road|I-70
Columbus,OH|Cincinnati,OH|both|I-71/NS
Columbus,OH|Cleveland,OH|both|I-71/CSX
Cleveland,OH|Akron,OH|both|I-77/CSX
Toledo,OH|Chicago,IL|both|I-80-90/NS
Des Moines,IA|Minneapolis,MN|both|I-35/UP
Des Moines,IA|Kansas City,MO|both|I-35/BNSF
Davenport,IA|Cedar Rapids,IA|road|I-380
Cedar Rapids,IA|Des Moines,IA|road|US-30/I-80
Seattle,WA|Portland,OR|rail|BNSF-Seattle-Sub
Spokane,WA|Yakima,WA|road|I-90/I-82
Sacramento,CA|Reno,NV|road|US-50
San Jose,CA|Fresno,CA|road|CA-152
Riverside,CA|Phoenix,AZ|both|I-10/UP-Sunset
Kingman,AZ|Wickenburg,AZ|road|US-93
Wickenburg,AZ|Phoenix,AZ|road|US-93
Denver,CO|North Platte,NE|road|I-76
Amarillo,TX|Pueblo,CO|road|US-87
Wichita,KS|Liberal,KS|road|US-54
Liberal,KS|Amarillo,TX|road|US-54
Tucumcari,NM|Lubbock,TX|road|US-84
Abilene,TX|Wichita Falls,TX|road|US-277
Houston,TX|Austin,TX|road|TX-71
Austin,TX|Bryan,TX|road|TX-21
Houston,TX|Lufkin,TX|road|US-59
Lufkin,TX|Shreveport,LA|road|US-59
Shreveport,LA|Texarkana,TX|both|US-71/KCS
St Louis,MO|Davenport,IA|road|US-61
Chicago,IL|Fort Wayne,IN|rail|NS-Chicago-Line
Pittsburgh,PA|Erie,PA|road|I-79
Pittsburgh,PA|Baltimore,MD|road|I-70/I-68
Philadelphia,PA|New York,NY|road|NJ-Turnpike
New York,NY|Albany,NY|rail|CSX-River-Line
Hartford,CT|Worcester,MA|road|I-84/I-90
Richmond,VA|Raleigh,NC|both|I-85/CSX-S-Line
Memphis,TN|Tupelo,MS|both|I-22/BNSF
Tupelo,MS|Birmingham,AL|both|I-22/BNSF
Kansas City,MO|Tulsa,OK|road|US-169
Minneapolis,MN|La Crosse,WI|rail|CP-River-Sub
Boise,ID|Winnemucca,NV|road|US-95
Bakersfield,CA|Barstow,CA|both|CA-58/BNSF
Pueblo,CO|Dodge City,KS|road|US-50
Dodge City,KS|Wichita,KS|road|US-400
Springfield,MO|Memphis,TN|road|US-63
Evansville,IN|Louisville,KY|road|I-64
Columbus,OH|Toledo,OH|road|US-23
Roanoke,VA|Greensboro,NC|road|US-220
Charleston,WV|Pittsburgh,PA|road|I-79
Cincinnati,OH|Louisville,KY|both|I-71/CSX
Lexington,KY|Knoxville,TN|road|I-75
Houston,TX|Corpus Christi,TX|road|US-77
San Antonio,TX|Fort Stockton,TX|both|I-10/UP-Sunset
Fort Stockton,TX|El Paso,TX|both|I-10/UP-Sunset
Yakima,WA|Pendleton,OR|road|I-82
Eau Claire,WI|Duluth,MN|road|US-53
Scranton,PA|Harrisburg,PA|road|I-81
Lynchburg,VA|Richmond,VA|road|US-460
Birmingham,AL|Chattanooga,TN|road|I-59
Salina,KS|Lincoln,NE|road|US-81
Bozeman,MT|Idaho Falls,ID|road|US-20
Peoria,IL|Davenport,IA|road|I-74
Urbana,IL|Indianapolis,IN|road|I-74
`
