package atlas

import (
	"strings"
	"testing"

	"intertubes/internal/geo"
)

func TestLoadParsesCleanly(t *testing.T) {
	a := Load()
	if len(a.Cities) < 200 {
		t.Errorf("cities = %d, want >= 200", len(a.Cities))
	}
	if len(a.Corridors) < 250 {
		t.Errorf("corridors = %d, want >= 250", len(a.Corridors))
	}
}

func TestCorridorGraphConnected(t *testing.T) {
	a := Load()
	comps := a.Graph().Components()
	if len(comps) != 1 {
		// Report the smaller components to make data bugs easy to fix.
		var orphans []string
		for _, comp := range comps[1:] {
			for _, v := range comp {
				orphans = append(orphans, a.Cities[v].Key())
			}
		}
		t.Fatalf("corridor graph has %d components; stranded: %v", len(comps), orphans)
	}
}

func TestEveryCityHasACorridor(t *testing.T) {
	a := Load()
	deg := make([]int, len(a.Cities))
	for _, c := range a.Corridors {
		deg[c.A]++
		deg[c.B]++
	}
	for i, d := range deg {
		if d == 0 {
			t.Errorf("city %s has no corridors", a.Cities[i].Key())
		}
	}
}

func TestPaperCitiesPresent(t *testing.T) {
	a := Load()
	// Cities named in the paper's tables and examples must exist.
	for _, key := range []string{
		"Trenton,NJ", "Edison,NJ", "Kalamazoo,MI", "Battle Creek,MI",
		"Dallas,TX", "Fort Worth,TX", "Baltimore,MD", "Towson,MD",
		"Baton Rouge,LA", "New Orleans,LA", "Livonia,MI", "Southfield,MI",
		"Topeka,KS", "Lincoln,NE", "Spokane,WA", "Boise,ID",
		"Bryan,TX", "Shreveport,LA", "Wichita Falls,TX",
		"San Luis Obispo,CA", "Lompoc,CA", "Wells,NV", "Salt Lake City,UT",
		"Lansing,MI", "South Bend,IN", "Philadelphia,PA", "Allentown,PA",
		"West Palm Beach,FL", "Boca Raton,FL", "Lynchburg,VA",
		"Charlottesville,VA", "Sedona,AZ", "Camp Verde,AZ", "Bozeman,MT",
		"Billings,MT", "Casper,WY", "Cheyenne,WY", "White Plains,NY",
		"Stamford,CT", "Amarillo,TX", "Eugene,OR", "Chico,CA",
		"Phoenix,AZ", "Provo,UT", "Eau Claire,WI", "Madison,WI",
		"Bakersfield,CA", "Hillsboro,OR", "Santa Barbara,CA",
		"Gainesville,FL", "Ocala,FL", "Laurel,MS", "Anaheim,CA",
		"Urbana,IL", "Tucson,AZ", "Denver,CO",
	} {
		if _, ok := a.CityIndex(key); !ok {
			t.Errorf("missing paper city %q", key)
		}
	}
}

func TestCorridorGeometry(t *testing.T) {
	a := Load()
	for i, c := range a.Corridors {
		ca, cb := a.Cities[c.A], a.Cities[c.B]
		gc := ca.Loc.DistanceKm(cb.Loc)
		if c.LengthKm < gc*0.999 {
			t.Errorf("corridor %d (%s-%s): length %.1f < great circle %.1f",
				i, ca.Key(), cb.Key(), c.LengthKm, gc)
		}
		if c.LengthKm > gc*1.35+20 {
			t.Errorf("corridor %d (%s-%s): length %.1f too circuitous vs %.1f",
				i, ca.Key(), cb.Key(), c.LengthKm, gc)
		}
		// Geometry must begin and end at the cities.
		if c.Geometry[0].DistanceKm(ca.Loc) > 0.1 ||
			c.Geometry[len(c.Geometry)-1].DistanceKm(cb.Loc) > 0.1 {
			t.Errorf("corridor %d endpoints do not match cities", i)
		}
		// Per-mode geometry presence must match the ROW class.
		if c.ROW.HasRoad() != (c.RoadGeom != nil) {
			t.Errorf("corridor %d road geometry mismatch", i)
		}
		if c.ROW.HasRail() != (c.RailGeom != nil) {
			t.Errorf("corridor %d rail geometry mismatch", i)
		}
		if (c.ROW == ROWPipeline) != (c.PipeGeom != nil) {
			t.Errorf("corridor %d pipeline geometry mismatch", i)
		}
	}
}

func TestGeometryDeterministic(t *testing.T) {
	a1, a2 := Load(), Load()
	for i := range a1.Corridors {
		g1, g2 := a1.Corridors[i].Geometry, a2.Corridors[i].Geometry
		if len(g1) != len(g2) {
			t.Fatalf("corridor %d geometry length differs between loads", i)
		}
		for j := range g1 {
			if g1[j] != g2[j] {
				t.Fatalf("corridor %d point %d differs between loads", i, j)
			}
		}
	}
}

func TestRoadRailSeparation(t *testing.T) {
	a := Load()
	for i, c := range a.Corridors {
		if c.ROW != ROWBoth {
			continue
		}
		// Road and rail must stay near each other (same corridor) but
		// not be identical.
		identical := true
		for j := range c.RoadGeom {
			if j < len(c.RailGeom) && c.RoadGeom[j] != c.RailGeom[j] {
				identical = false
				break
			}
		}
		if identical && len(c.RoadGeom) > 2 {
			t.Errorf("corridor %d: road and rail identical", i)
		}
		mid := c.RoadGeom[len(c.RoadGeom)/2]
		if d := c.RailGeom.DistanceToKm(mid); d > 30 {
			t.Errorf("corridor %d: road and rail diverge %.1f km", i, d)
		}
	}
}

func TestCityLookups(t *testing.T) {
	a := Load()
	i := a.MustCity("Denver,CO")
	if a.Cities[i].State != "CO" {
		t.Errorf("MustCity returned %v", a.Cities[i])
	}
	if _, ok := a.CityIndex("Atlantis,XX"); ok {
		t.Error("found a city that should not exist")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCity should panic on unknown city")
		}
	}()
	a.MustCity("Atlantis,XX")
}

func TestNearest(t *testing.T) {
	a := Load()
	// A point in central Kansas should be closest to Salina or Hays.
	got := a.Cities[a.Nearest(geo.Point{Lat: 38.8, Lon: -98.0})].Key()
	if got != "Salina,KS" && got != "Hays,KS" {
		t.Errorf("nearest to central Kansas = %s", got)
	}
}

func TestCitiesOver(t *testing.T) {
	a := Load()
	big := a.CitiesOver(1000000)
	if len(big) < 5 || len(big) > 20 {
		t.Errorf("million-plus cities = %d, want a handful", len(big))
	}
	for _, i := range big {
		if a.Cities[i].Population < 1000000 {
			t.Errorf("%s below threshold", a.Cities[i].Key())
		}
	}
}

func TestDuplicateCorridorsAreIntentional(t *testing.T) {
	a := Load()
	// Parallel corridors (same city pair) are allowed but should be
	// rare and justified (e.g. the I-15 and UTA alignments between
	// SLC and Provo).
	count := map[[2]int]int{}
	for _, c := range a.Corridors {
		k := [2]int{min(c.A, c.B), max(c.A, c.B)}
		count[k]++
	}
	parallel := 0
	for _, n := range count {
		if n > 1 {
			parallel += n - 1
		}
	}
	if parallel > 5 {
		t.Errorf("%d parallel corridors; verify the data is intentional", parallel)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name     string
		cities   string
		corrs    string
		errMatch string
	}{
		{"bad city fields", "A|B|1", "", "want 5 fields"},
		{"bad lat", "A|ST|x|0|1", "", "lat"},
		{"bad lon", "A|ST|0|x|1", "", "lon"},
		{"bad pop", "A|ST|0|0|x", "", "population"},
		{"invalid coords", "A|ST|95|0|1", "", "invalid coordinates"},
		{"dup city", "A|ST|0|0|1\nA|ST|1|1|2", "", "duplicate"},
		{"bad corridor fields", "A|ST|0|0|1", "A,ST|B,ST|road", "want 4 fields"},
		{"unknown city", "A|ST|0|0|1", "A,ST|B,ST|road|X", "unknown city"},
		{"self loop", "A|ST|0|0|1", "A,ST|A,ST|road|X", "self-loop"},
		{"bad row", "A|ST|0|0|1\nB|ST|1|1|1", "A,ST|B,ST|tube|X", "unknown right-of-way"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parse(c.cities, c.corrs)
			if err == nil || !strings.Contains(err.Error(), c.errMatch) {
				t.Errorf("err = %v, want contains %q", err, c.errMatch)
			}
		})
	}
}

func TestLayers(t *testing.T) {
	a := Load()
	roads := a.RoadPolylines()
	rails := a.RailPolylines()
	pipes := a.PipelinePolylines()
	if len(roads) == 0 || len(rails) == 0 {
		t.Fatal("road and rail layers must be non-empty")
	}
	if len(roads) <= len(rails) {
		t.Errorf("roads (%d) should outnumber rails (%d): more corridors are road-only", len(roads), len(rails))
	}
	if len(pipes) < 2 {
		t.Errorf("pipelines = %d, want the CalNev and Dixie routes", len(pipes))
	}
}
