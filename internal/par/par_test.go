package par

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// serialMap is the reference implementation every parallel variant
// must match: a plain loop.
func serialMap[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = fn(i)
	}
	return out
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != runtime.NumCPU() {
			t.Errorf("Workers(%d) = %d, want NumCPU %d", n, got, runtime.NumCPU())
		}
	}
}

// TestMapMatchesSerialQuick is the property the ISSUE demands: any
// slice length x any worker count yields the same ordered results as
// a plain loop.
func TestMapMatchesSerialQuick(t *testing.T) {
	prop := func(n uint16, workers uint8, salt int64) bool {
		length := int(n % 3000)
		w := int(workers%12) - 2 // exercise <=0 (NumCPU) too
		fn := func(i int) int64 { return salt + int64(i)*31 }
		got := Map(length, w, fn)
		want := serialMap(length, fn)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMapSeededWorkerInvarianceQuick pins the stronger property: the
// per-chunk rand streams make MapSeeded's output identical for every
// worker count, even though each item consumes a data-dependent
// number of rand calls.
func TestMapSeededWorkerInvarianceQuick(t *testing.T) {
	fn := func(i int, rng *rand.Rand) float64 {
		v := rng.Float64()
		// Data-dependent consumption: some items draw again.
		if i%3 == 0 {
			v += rng.Float64() * float64(rng.Intn(5))
		}
		return v
	}
	prop := func(n uint16, workers uint8, seed int64) bool {
		length := int(n % 2048)
		w := 1 + int(workers%9)
		got := MapSeeded(length, w, seed, fn)
		want := MapSeeded(length, 1, seed, fn)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapEdgeCases(t *testing.T) {
	double := func(i int) int { return 2 * i }
	cases := []struct {
		n, workers int
	}{
		{0, 1}, {0, 8}, {-3, 4}, // empty and negative lengths
		{1, 1}, {1, 16}, // single item, more workers than items
		{5, 64},            // len < workers
		{ChunkSize, 2},     // exactly one chunk
		{ChunkSize + 1, 2}, // one chunk plus a remainder of 1
		{4 * ChunkSize, 3}, // chunk count not divisible by workers
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d_w=%d", c.n, c.workers), func(t *testing.T) {
			got := Map(c.n, c.workers, double)
			want := serialMap(c.n, double)
			if len(got) != len(want) {
				t.Fatalf("len = %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		n := 10*ChunkSize + 17
		visits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { visits[i].Add(1) })
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestMapSeededRangeWindowing(t *testing.T) {
	// Streaming a range through windows must reproduce the one-shot
	// call exactly, as long as windows lie on the chunk grid.
	const n = 7*ChunkSize + 13
	fn := func(i int, rng *rand.Rand) float64 { return float64(i) + rng.Float64() }
	whole := MapSeeded(n, 4, 99, fn)
	var streamed []float64
	window := 2 * ChunkSize
	for lo := 0; lo < n; lo += window {
		hi := lo + window
		if hi > n {
			hi = n
		}
		streamed = append(streamed, MapSeededRange(lo, hi, 3, 99, fn)...)
	}
	if len(streamed) != len(whole) {
		t.Fatalf("len = %d, want %d", len(streamed), len(whole))
	}
	for i := range whole {
		if streamed[i] != whole[i] {
			t.Fatalf("streamed[%d] = %v, want %v", i, streamed[i], whole[i])
		}
	}
}

func TestChunkSeedSpread(t *testing.T) {
	seen := make(map[int64]int)
	for seed := int64(0); seed < 4; seed++ {
		for c := 0; c < 256; c++ {
			s := ChunkSeed(seed, c)
			if prev, dup := seen[s]; dup {
				t.Fatalf("ChunkSeed collision: %d (chunk %d)", s, prev)
			}
			seen[s] = c
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	For(1000, 4, func(i int) {
		if i == 777 {
			panic("boom")
		}
	})
}

func TestMemoCachesPureResults(t *testing.T) {
	m := NewMemo[int, int]()
	var calls atomic.Int32
	square := func(k int) func() int {
		return func() int { calls.Add(1); return k * k }
	}
	For(500, 8, func(i int) {
		k := i % 10
		if got := m.Do(k, square(k)); got != k*k {
			t.Errorf("memo(%d) = %d", k, got)
		}
	})
	if m.Len() != 10 {
		t.Errorf("memo holds %d entries, want 10", m.Len())
	}
	// Racing workers may compute a key more than once; after warmup a
	// serial pass must not compute at all.
	warm := calls.Load()
	for k := 0; k < 10; k++ {
		m.Do(k, square(k))
	}
	if calls.Load() != warm {
		t.Errorf("warm memo recomputed: %d -> %d calls", warm, calls.Load())
	}
}
