package par

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// with_test.go covers the per-worker state variants: state is created
// at most once per worker, results stay identical to the stateless
// calls at any worker count, and cancellation behaves like the
// stateless counterparts.

func TestMapCtxWithMatchesMapCtx(t *testing.T) {
	const n = 1000
	want, err := MapCtx(context.Background(), n, 1, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		var created atomic.Int64
		got, err := MapCtxWith(context.Background(), n, workers,
			func() *[]int { created.Add(1); buf := make([]int, 0, 8); return &buf },
			func(i int, scratch *[]int) int {
				*scratch = append((*scratch)[:0], i) // exercise the scratch
				return (*scratch)[0] * i
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
		if c := created.Load(); c < 1 || c > int64(Workers(workers)) {
			t.Fatalf("workers=%d: newState called %d times, want 1..%d", workers, c, Workers(workers))
		}
	}
}

func TestRunCtxWithOneStatePerWorker(t *testing.T) {
	const n = 10 * ChunkSize
	var created atomic.Int64
	type state struct{ touched int }
	err := RunCtxWith(context.Background(), n, 4,
		func() *state { created.Add(1); return &state{} },
		func(i int, s *state) { s.touched++ })
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Fatalf("newState called %d times, want 1..4", c)
	}
}

func TestMapSeededRangeCtxWithMatchesStateless(t *testing.T) {
	const lo, hi, seed = 32, 32 + 5*ChunkSize, int64(99)
	want, err := MapSeededRangeCtx(context.Background(), lo, hi, 1, seed,
		func(i int, rng *rand.Rand) int64 { return int64(i) + rng.Int63n(1000) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := MapSeededRangeCtxWith(context.Background(), lo, hi, workers, seed,
			NewMemo[int, int], // any state works; a memo doubles as scratch
			func(i int, rng *rand.Rand, _ *Memo[int, int]) int64 {
				return int64(i) + rng.Int63n(1000)
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d (rand stream drifted)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunCtxWithPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := RunCtxWith(ctx, 1000, 4, func() int { return 0 },
		func(i int, _ int) { ran.Add(1) })
	if err == nil {
		t.Fatal("want ctx error from pre-canceled run")
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled run executed %d items", ran.Load())
	}
}
