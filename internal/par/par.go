// Package par is the deterministic parallel-execution substrate for
// the analysis hot paths: an order-preserving chunked map over index
// ranges, a worker count resolved from runtime.NumCPU (overridable
// per call), and per-chunk math/rand streams derived from a campaign
// seed.
//
// The determinism contract is the whole point of the package: for any
// worker count — including 1 — the same inputs yield bit-identical
// outputs. Three properties make that hold:
//
//  1. Chunk boundaries lie on a fixed grid (ChunkSize) that depends on
//     nothing but the index range, so the set of chunks is identical
//     no matter how many workers claim them.
//  2. Each chunk's rand stream is derived from (seed, absolute chunk
//     index) alone — see ChunkSeed — and indices within a chunk run in
//     order, so hop-level randomness never depends on scheduling.
//  3. Results land at out[i]; reduction happens in index order in the
//     caller, never in completion order.
//
// Memo is the companion piece for ported loops that used serial
// memoization: it caches *pure* computations behind a mutex, so a
// cache hit and a recomputation are indistinguishable and the memo
// affects speed only, never results.
package par

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"intertubes/internal/obs"
)

// Pool metrics: observational only — the chunk grid, the per-chunk
// rand streams, and the claim order are untouched, so instrumentation
// cannot perturb the determinism contract. All observations are
// atomic adds; the metric handles resolve once at package init.
var (
	poolRuns = obs.GetCounter("par_pool_runs_total",
		"Invocations of the worker pool (one per parallel stage call).")
	poolChunks = obs.GetCounter("par_chunks_executed_total",
		"Chunks executed across all pool runs.")
	poolItems = obs.GetCounter("par_items_total",
		"Items processed across all pool runs.")
	poolWorkers = obs.GetGauge("par_workers",
		"Worker count of the most recent pool run.")
	poolWall = obs.GetHistogram("par_run_wall_seconds",
		"Wall time per pool run.", nil)
	poolBusy = obs.GetHistogram("par_run_busy_seconds",
		"Summed per-worker busy time per pool run.", nil)
	poolQueueWait = obs.GetHistogram("par_run_queue_wait_seconds",
		"Per-run idle capacity: workers x wall minus busy time.", nil)
	poolCanceled = obs.GetCounter("par_runs_canceled_total",
		"Pool runs aborted by context cancellation before all chunks ran.")
)

// ChunkSize is the number of consecutive indices a worker claims at a
// time. It is a constant, not a function of the worker count: chunk
// boundaries (and therefore the per-chunk rand streams of MapSeeded)
// must not move when the machine changes.
const ChunkSize = 64

// Workers resolves a requested worker count: n > 0 is honored as
// given, anything else means runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Chunks returns the half-open index ranges [lo, hi) into which
// [0, n) is split, in order. Exported so tests and fuzzers can check
// the boundary arithmetic directly.
func Chunks(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, (n+ChunkSize-1)/ChunkSize)
	for lo := 0; lo < n; lo += ChunkSize {
		hi := lo + ChunkSize
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ChunkSeed derives the rand stream for one chunk from the campaign
// seed and the absolute chunk index, with a splitmix64 finalizer so
// that neighboring chunks get well-separated streams even for small
// seeds.
func ChunkSeed(seed int64, chunk int) int64 {
	z := uint64(seed) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// forChunks runs fn over every chunk without a cancellation context;
// it can never fail.
func forChunks(lo, hi, workers int, fn func(chunk, clo, chi int)) {
	_ = forChunksWorkerCtx(nil, lo, hi, workers, func(_, chunk, clo, chi int) {
		fn(chunk, clo, chi)
	})
}

// forChunksCtx is forChunksWorkerCtx for callers that do not need the
// worker id.
func forChunksCtx(ctx context.Context, lo, hi, workers int, fn func(chunk, clo, chi int)) error {
	return forChunksWorkerCtx(ctx, lo, hi, workers, func(_, chunk, clo, chi int) {
		fn(chunk, clo, chi)
	})
}

// forChunksWorkerCtx runs fn over every chunk of the absolute index
// range [lo, hi), claiming chunks from a shared atomic counter. The
// grid is absolute: a chunk's index is its position in [0, ...), so a
// caller processing a window [lo, hi) of a larger range sees the same
// chunk seeds the whole-range call would. fn receives the claiming
// worker's id in [0, workers) — stable for the lifetime of one call,
// carrying no cross-call meaning — plus the chunk index and the
// clipped [clo, chi) item range. A panic in any worker is re-raised
// in the caller.
//
// Cancellation is cooperative and checked only at chunk-grant
// boundaries: a claimed chunk always runs to completion, no further
// chunks are granted once ctx is canceled, and the call returns
// ctx.Err(). Because cancellation can only truncate the set of chunks
// executed — never reorder them or move the grid — a run that returns
// nil is bit-identical to the serial order. A nil ctx means the run
// cannot be canceled.
func forChunksWorkerCtx(ctx context.Context, lo, hi, workers int, fn func(worker, chunk, clo, chi int)) error {
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if hi <= lo {
		return ctxErr()
	}
	firstChunk := lo / ChunkSize
	lastChunk := (hi - 1) / ChunkSize
	nchunks := lastChunk - firstChunk + 1
	clip := func(c int) (int, int) {
		clo, chi := c*ChunkSize, (c+1)*ChunkSize
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		return clo, chi
	}
	workers = Workers(workers)
	if workers > nchunks {
		workers = nchunks
	}
	poolRuns.Inc()
	poolWorkers.Set(float64(workers))
	start := time.Now()
	var busyNanos atomic.Int64
	run := func(worker, c int) {
		clo, chi := clip(c)
		t0 := time.Now()
		fn(worker, c, clo, chi)
		busyNanos.Add(int64(time.Since(t0)))
		poolChunks.Inc()
		poolItems.Add(int64(chi - clo))
	}
	finish := func() {
		wall := time.Since(start)
		busy := time.Duration(busyNanos.Load())
		poolWall.Observe(wall.Seconds())
		poolBusy.Observe(busy.Seconds())
		if wait := wall.Seconds()*float64(workers) - busy.Seconds(); wait > 0 {
			poolQueueWait.Observe(wait)
		} else {
			poolQueueWait.Observe(0)
		}
	}
	if workers <= 1 {
		for c := firstChunk; c <= lastChunk; c++ {
			if err := ctxErr(); err != nil {
				poolCanceled.Inc()
				finish()
				return err
			}
			run(0, c)
		}
		finish()
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicV   any
		canceled atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			if ctx != nil {
				// Adopt the caller's pprof labels (stage=, scenario_hash=)
				// so CPU profile samples from worker goroutines attribute
				// to the enclosing evaluation stage. Observational only.
				pprof.SetGoroutineLabels(ctx)
			}
			for {
				// Chunk-grant boundary: a canceled context stops the
				// claim loop, but the chunk being executed finishes.
				if canceled.Load() {
					return
				}
				if err := ctxErr(); err != nil {
					canceled.Store(true)
					return
				}
				c := firstChunk + int(next.Add(1)) - 1
				if c > lastChunk {
					return
				}
				run(worker, c)
			}
		}(w)
	}
	wg.Wait()
	finish()
	if panicV != nil {
		panic(panicV)
	}
	if canceled.Load() {
		poolCanceled.Inc()
		return ctxErr()
	}
	return nil
}

// For calls fn(i) for every i in [0, n) from up to `workers`
// goroutines (<= 0 means NumCPU) and returns once all calls finish.
// fn must not depend on cross-index ordering.
func For(n, workers int, fn func(i int)) {
	forChunks(0, n, workers, func(_, clo, chi int) {
		for i := clo; i < chi; i++ {
			fn(i)
		}
	})
}

// RunCtx is For with cooperative cancellation: fn is called for every
// i in [0, n) unless ctx is canceled first. Cancellation is observed
// only at chunk-grant boundaries, so a run that returns nil executed
// every index exactly once in the same chunk order as For — the
// worker-invariance contract is untouched. A canceled run returns
// ctx.Err() after its in-flight chunks drain; no goroutines outlive
// the call.
func RunCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return forChunksCtx(ctx, 0, n, workers, func(_, clo, chi int) {
		for i := clo; i < chi; i++ {
			fn(i)
		}
	})
}

// Map computes out[i] = fn(i) for i in [0, n) in parallel. The result
// is identical to a plain serial loop for any worker count, provided
// fn is pure per index.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapCtx is Map with cooperative cancellation. On a nil error the
// result is bit-identical to Map; on cancellation it returns the
// partially filled slice (slots whose chunks never ran keep their
// zero value) together with ctx.Err().
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	if n <= 0 {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil
	}
	out := make([]T, n)
	err := RunCtx(ctx, n, workers, func(i int) { out[i] = fn(i) })
	return out, err
}

// MapSeeded is Map with a per-chunk *rand.Rand derived from seed:
// chunk c gets rand.New(rand.NewSource(ChunkSeed(seed, c))), and the
// indices of a chunk run in order sharing that stream. Because the
// chunk grid is fixed, the output is bit-identical for any worker
// count — the property the serial-equivalence suite pins.
func MapSeeded[T any](n, workers int, seed int64, fn func(i int, rng *rand.Rand) T) []T {
	return MapSeededRange(0, n, workers, seed, fn)
}

// MapSeededRange is MapSeeded over the absolute index window
// [lo, hi): out[i-lo] = fn(i, rng). Chunk indices (and so the rand
// streams) are positions on the absolute grid, which lets a caller
// stream a long range through a bounded buffer window by window and
// still produce exactly what one whole-range call would.
func MapSeededRange[T any](lo, hi, workers int, seed int64, fn func(i int, rng *rand.Rand) T) []T {
	out, _ := MapSeededRangeCtx[T](nil, lo, hi, workers, seed, fn)
	return out
}

// MapSeededCtx is MapSeeded with cooperative cancellation (see
// MapSeededRangeCtx).
func MapSeededCtx[T any](ctx context.Context, n, workers int, seed int64, fn func(i int, rng *rand.Rand) T) ([]T, error) {
	return MapSeededRangeCtx(ctx, 0, n, workers, seed, fn)
}

// MapSeededRangeCtx is MapSeededRange with cooperative cancellation.
// The chunk grid and per-chunk rand streams are exactly those of the
// uncancelled call, so a nil error guarantees a bit-identical result;
// cancellation only truncates which chunks ran (partial slots keep
// their zero value) and returns ctx.Err(). A nil ctx cannot cancel.
func MapSeededRangeCtx[T any](ctx context.Context, lo, hi, workers int, seed int64, fn func(i int, rng *rand.Rand) T) ([]T, error) {
	if hi <= lo {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil
	}
	out := make([]T, hi-lo)
	err := forChunksCtx(ctx, lo, hi, workers, func(chunk, clo, chi int) {
		rng := rand.New(rand.NewSource(ChunkSeed(seed, chunk)))
		for i := clo; i < chi; i++ {
			out[i-lo] = fn(i, rng)
		}
	})
	return out, err
}

// workerStates lazily constructs one S per worker id. Each worker
// only ever touches its own slot, so no locking is needed. State is
// scoped to a single pool run: it exists to amortize scratch memory
// (e.g. graph.Workspace), and because results must stay bit-identical
// at any worker count, fn must never let state influence its output —
// only its speed.
type workerStates[S any] struct {
	newState func() S
	states   []S
	made     []bool
}

func newWorkerStates[S any](workers int, newState func() S) *workerStates[S] {
	workers = Workers(workers)
	return &workerStates[S]{
		newState: newState,
		states:   make([]S, workers),
		made:     make([]bool, workers),
	}
}

func (ws *workerStates[S]) get(worker int) S {
	if !ws.made[worker] {
		ws.states[worker] = ws.newState()
		ws.made[worker] = true
	}
	return ws.states[worker]
}

// RunCtxWith is RunCtx with per-worker state: newState is called at
// most once per worker (lazily, on its first chunk), and fn receives
// the claiming worker's state alongside the index. The state must be
// pure scratch — reusable buffers, workspaces — that can change how
// fast fn runs but never what it returns; the worker-invariance
// contract of the pool is otherwise broken.
func RunCtxWith[S any](ctx context.Context, n, workers int, newState func() S, fn func(i int, state S)) error {
	states := newWorkerStates(workers, newState)
	return forChunksWorkerCtx(ctx, 0, n, workers, func(worker, _, clo, chi int) {
		s := states.get(worker)
		for i := clo; i < chi; i++ {
			fn(i, s)
		}
	})
}

// MapCtxWith is MapCtx with per-worker state (see RunCtxWith).
func MapCtxWith[S, T any](ctx context.Context, n, workers int, newState func() S, fn func(i int, state S) T) ([]T, error) {
	if n <= 0 {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil
	}
	out := make([]T, n)
	err := RunCtxWith(ctx, n, workers, newState, func(i int, s S) { out[i] = fn(i, s) })
	return out, err
}

// MapSeededRangeCtxWith is MapSeededRangeCtx with per-worker state
// (see RunCtxWith): the chunk grid and per-chunk rand streams are
// exactly those of the stateless call, so a nil error still guarantees
// a bit-identical result at any worker count.
func MapSeededRangeCtxWith[S, T any](ctx context.Context, lo, hi, workers int, seed int64, newState func() S, fn func(i int, rng *rand.Rand, state S) T) ([]T, error) {
	if hi <= lo {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil
	}
	states := newWorkerStates(workers, newState)
	out := make([]T, hi-lo)
	err := forChunksWorkerCtx(ctx, lo, hi, workers, func(worker, chunk, clo, chi int) {
		s := states.get(worker)
		rng := rand.New(rand.NewSource(ChunkSeed(seed, chunk)))
		for i := clo; i < chi; i++ {
			out[i-lo] = fn(i, rng, s)
		}
	})
	return out, err
}

// Memo is a mutex-guarded cache for pure computations shared by
// workers. Do computes outside the lock, so two workers may both
// compute a missing entry — for a pure fn both results are equal and
// last-write-wins is harmless. That trade keeps the critical section
// tiny and, crucially, keeps results independent of scheduling.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// NewMemo returns an empty memo.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{m: make(map[K]V)}
}

// Do returns the cached value for key, computing and caching it with
// fn on a miss. fn must be pure: its result may be discarded in favor
// of a concurrent worker's identical one.
func (t *Memo[K, V]) Do(key K, fn func() V) V {
	t.mu.Lock()
	if v, ok := t.m[key]; ok {
		t.mu.Unlock()
		return v
	}
	t.mu.Unlock()
	v := fn()
	t.mu.Lock()
	t.m[key] = v
	t.mu.Unlock()
	return v
}

// Len returns the number of cached entries.
func (t *Memo[K, V]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
