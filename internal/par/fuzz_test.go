package par

import (
	"math/rand"
	"testing"
)

// FuzzChunks asserts the chunk-boundary arithmetic: every index range
// is covered exactly once, in order, by chunks that never exceed
// ChunkSize, and the parallel map built on those chunks agrees with a
// plain loop for the fuzzed worker count.
func FuzzChunks(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(ChunkSize-1, 2)
	f.Add(ChunkSize, 3)
	f.Add(ChunkSize+1, 4)
	f.Add(5*ChunkSize+7, 9)
	f.Fuzz(func(t *testing.T, n, workers int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 14
		chunks := Chunks(n)
		next := 0
		for _, c := range chunks {
			lo, hi := c[0], c[1]
			if lo != next {
				t.Fatalf("chunk starts at %d, want %d (gap or overlap)", lo, next)
			}
			if hi <= lo {
				t.Fatalf("empty chunk [%d,%d)", lo, hi)
			}
			if hi-lo > ChunkSize {
				t.Fatalf("chunk [%d,%d) exceeds ChunkSize", lo, hi)
			}
			if lo%ChunkSize != 0 {
				t.Fatalf("chunk start %d off the fixed grid", lo)
			}
			next = hi
		}
		if next != n && !(n == 0 && len(chunks) == 0) {
			t.Fatalf("chunks cover [0,%d), want [0,%d)", next, n)
		}

		w := workers%16 - 2 // include <=0 (NumCPU)
		got := MapSeeded(n, w, int64(n)*7919, func(i int, rng *rand.Rand) int64 {
			return int64(i) ^ rng.Int63()
		})
		want := MapSeeded(n, 1, int64(n)*7919, func(i int, rng *rand.Rand) int64 {
			return int64(i) ^ rng.Int63()
		})
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("out[%d] differs across worker counts", i)
			}
		}
	})
}
