package par

import (
	"context"
	"sync/atomic"
	"testing"

	"intertubes/internal/obs"
)

// trace_test.go pins the flight-recorder propagation contract across
// chunk boundaries: a span opened inside a RunCtxWith/MapCtxWith body
// (the evaluation context is captured by the closure) must join the
// caller's recorded trace regardless of which worker goroutine claims
// the chunk. Run under -race this also exercises concurrent span
// folding from many workers into one trace.

func withFreshTraces(t *testing.T) *obs.TraceStore {
	t.Helper()
	st := obs.NewTraceStore(8, 8)
	old := obs.DefaultTraces
	obs.DefaultTraces = st
	t.Cleanup(func() { obs.DefaultTraces = old })
	return st
}

func TestRunCtxWithPropagatesTrace(t *testing.T) {
	st := withFreshTraces(t)
	ctx, root := obs.StartTrace(context.Background(), "sweep")
	id := root.TraceID()
	if id == "" {
		t.Fatal("no trace ID on root span")
	}

	const n = 200
	var mismatches atomic.Int64
	err := RunCtxWith(ctx, n, 8, func() int { return 0 }, func(i int, _ int) {
		sctx, sp := obs.Trace(ctx, "sweep.item")
		if sp.TraceID() != id {
			mismatches.Add(1)
		}
		// A nested span inside the worker must also join.
		_, inner := obs.Trace(sctx, "sweep.item.inner")
		if inner.TraceID() != id {
			mismatches.Add(1)
		}
		inner.End()
		sp.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if m := mismatches.Load(); m != 0 {
		t.Fatalf("%d spans lost the trace across chunk boundaries", m)
	}
	tr, ok := st.Get(id)
	if !ok {
		t.Fatal("trace not retained")
	}
	// Root + n item spans + n inner spans.
	if want := 1 + 2*n; len(tr.Spans) != want {
		t.Fatalf("recorded %d spans, want %d", len(tr.Spans), want)
	}
	var rootID uint32
	for _, s := range tr.Spans {
		if s.Name == "sweep" {
			rootID = s.SpanID
		}
	}
	seen := map[uint32]bool{}
	for _, s := range tr.Spans {
		if seen[s.SpanID] {
			t.Fatalf("duplicate span ID %d", s.SpanID)
		}
		seen[s.SpanID] = true
		if s.Name == "sweep.item" && s.ParentID != rootID {
			t.Errorf("item span parent = %d, want root %d", s.ParentID, rootID)
		}
	}
}

func TestMapCtxWithPropagatesTrace(t *testing.T) {
	st := withFreshTraces(t)
	ctx, root := obs.StartTrace(context.Background(), "map")
	id := root.TraceID()

	out, err := MapCtxWith(ctx, 100, 8, func() int { return 0 }, func(i int, _ int) string {
		_, sp := obs.Trace(ctx, "map.item")
		defer sp.End()
		return sp.TraceID()
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	for i, got := range out {
		if got != id {
			t.Fatalf("item %d trace = %q, want %q", i, got, id)
		}
	}
	tr, ok := st.Get(id)
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(tr.Spans) != 101 {
		t.Fatalf("recorded %d spans, want 101", len(tr.Spans))
	}
}
