package par

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// ctx_test.go pins the cancellation contract of the ctx-aware pool
// entry points: prompt ctx.Err() on cancel, no goroutine leaks, and —
// the load-bearing half — completed runs bit-identical to their
// non-ctx counterparts at every worker count.

func TestRunCtxNilContextCompletes(t *testing.T) {
	var visits atomic.Int64
	if err := RunCtx(nil, 1000, 4, func(int) { visits.Add(1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if visits.Load() != 1000 {
		t.Errorf("visits = %d", visits.Load())
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visits atomic.Int64
	err := RunCtx(ctx, 10000, 4, func(int) { visits.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visits.Load() != 0 {
		t.Errorf("pre-canceled run visited %d indices, want 0", visits.Load())
	}
}

// TestRunCtxCanceledMidRun cancels from inside fn and checks that the
// run stops granting chunks promptly (the claimed chunks drain, but
// nothing close to the full range executes) and returns ctx.Err().
func TestRunCtxCanceledMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var visits atomic.Int64
		const n = 1 << 20
		err := RunCtx(ctx, n, workers, func(int) {
			if visits.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight chunks finish (up to workers*ChunkSize items plus
		// the triggering chunk); anything well under n proves the grant
		// loop stopped.
		if v := visits.Load(); v >= n/2 {
			t.Errorf("workers=%d: %d of %d indices ran after cancel", workers, v, n)
		}
		cancel()
	}
}

// TestRunCtxNoGoroutineLeak: a canceled run must not leave pool
// workers behind.
func TestRunCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var visits atomic.Int64
		_ = RunCtx(ctx, 1<<18, 8, func(int) {
			if visits.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
	}
	// Give exiting workers a beat, then compare against the baseline
	// with slack for unrelated runtime goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, started with %d", g, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapCtxMatchesMapEveryWorkerCount is the determinism half of the
// contract: a completed MapCtx run is byte-identical to Map at every
// worker count.
func TestMapCtxMatchesMapEveryWorkerCount(t *testing.T) {
	const n = 5000
	fn := func(i int) int { return i*i - 7*i }
	want := Map(n, 1, fn)
	for _, workers := range []int{1, 2, 3, 5, 8, 16} {
		got, err := MapCtx(context.Background(), n, workers, fn)
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapSeededCtxMatchesMapSeeded pins the seeded variant: chunk rand
// streams must be untouched by the ctx plumbing.
func TestMapSeededCtxMatchesMapSeeded(t *testing.T) {
	const n, seed = 3000, 99
	fn := func(i int, rng *rand.Rand) float64 { return float64(i) + rng.Float64() }
	want := MapSeeded(n, 1, seed, fn)
	for _, workers := range []int{1, 3, 7, 12} {
		got, err := MapSeededCtx(context.Background(), n, workers, seed, fn)
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapCtxCanceledKeepsLength: cancellation truncates which chunks
// ran, never the slice shape callers index into.
func TestMapCtxCanceledKeepsLength(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var visits atomic.Int64
	const n = 1 << 19
	out, err := MapCtx(ctx, n, 4, func(i int) int {
		if visits.Add(1) == 3 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	// Every slot is either untouched (zero) or fully computed.
	for i, v := range out {
		if v != 0 && v != i+1 {
			t.Fatalf("out[%d] = %d: neither zero nor fn(i)", i, v)
		}
	}
}

// TestRunCtxCanceledCounter: aborted runs are visible in the pool
// metrics.
func TestRunCtxCanceledCounter(t *testing.T) {
	before := poolCanceled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = RunCtx(ctx, 100, 2, func(int) {})
	if got := poolCanceled.Value(); got != before+1 {
		t.Errorf("par_runs_canceled_total = %d, want %d", got, before+1)
	}
}

// TestMapSeededRangeCtxDeadline exercises deadline-based cancellation
// on the windowed entry point used by the traceroute campaign.
func TestMapSeededRangeCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := MapSeededRangeCtx(ctx, 0, 1<<19, 4, 7, func(i int, _ *rand.Rand) int {
		time.Sleep(10 * time.Microsecond)
		return i
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
