package graph

import "math"

// mincutws.go is the overlay-aware, workspace-backed counterpart of
// mincut.go. The scenario engine answers "how many conduit cuts
// partition this backbone" for thousands of perturbed topologies per
// sweep; the dense Stoer-Wagner in GlobalMinCut rebuilds an O(V²)
// matrix per call and runs O(V³) phases, which dominated evaluation
// time. GlobalMinCutWS keeps the base CSR shared and immutable: the
// caller materializes one weight table per query (a flat copy of a
// cached base table plus +Inf masks, the same trick Yen's spur loop
// uses) and overlay edges that do not exist in the base graph ride
// along as an explicit extra list. All scratch lives in the Workspace.
//
// The implementation is Stoer-Wagner over union-find supervertices
// with lazy-heap maximum-adjacency phases: O(V·E·log V) instead of
// O(V³). Any maximum-adjacency ordering yields the exact global
// minimum cut, and the minimum-cut *value* of a graph is unique, so
// the result equals GlobalMinCut's bit for bit whenever edge-weight
// sums are exactly representable (unit weights, the scenario case).

// mincutScratch is the reusable state of GlobalMinCutWS, owned by a
// Workspace and grown lazily.
type mincutScratch struct {
	local  []int32 // vertex id -> local index, -1 when not selected
	arcOff []int32 // CSR offsets over local vertices
	arcTo  []int32
	arcW   []float64
	arcEid []int32  // staged-edge id per arc (twin halves share one)
	halfs  []mcHalf // arc staging before the counting sort
	parent []int32  // union-find over local supervertices
	head   []int32  // supervertex member-list head (local index)
	next   []int32  // member-list links
	tail   []int32
	key    []float64 // MA-phase accumulated adjacency
	mark   []uint8   // 0 free, 1 in A, 2 seen this phase
	alive  []bool
	// Unit-weight λ≤1 fast path: iterative bridge-DFS state.
	dfsStk  []int32
	dfsDisc []int32
	dfsLow  []int32
	dfsCur  []int32
	dfsEid  []int32 // eid of the tree arc into each vertex
}

type mcHalf struct {
	from, to int32
	w        float64
	eid      int32
}

// mincut returns the workspace's min-cut scratch, allocating it on
// first use.
func (w *Workspace) mincut() *mincutScratch {
	if w.mc == nil {
		w.mc = &mincutScratch{}
	}
	return w.mc
}

// GlobalMinCutWS returns the weight of the minimum cut of the graph
// restricted to the given vertices, like GlobalMinCut, but with all
// scratch in ws and the query's edge weights supplied as data instead
// of a closure:
//
//   - weights[eid] is the traversal cost of base edge eid (+Inf or 0
//     excludes it, matching the dense kernel's usable-edge rule);
//   - extra lists overlay edges absent from the base graph (new
//     conduit builds); their Weight fields are used directly.
//
// The restriction, exclusion, and connectivity semantics match
// GlobalMinCut exactly: fewer than two selected vertices returns
// (0, false), a disconnected restriction returns (0, true), and with
// integral weights the returned value is bit-identical to the dense
// kernel's (the minimum-cut value of a graph is unique).
func (g *Graph) GlobalMinCutWS(ws *Workspace, vertices []int, weights []float64, extra []Edge) (float64, bool) {
	n := len(vertices)
	if n < 2 {
		return 0, false
	}
	mc := ws.mincut()

	// Map selected vertices to a compact local index space.
	if len(mc.local) < g.n {
		mc.local = append(mc.local, make([]int32, g.n-len(mc.local))...)
	}
	local := mc.local[:g.n]
	for i := range local {
		local[i] = -1
	}
	for i, v := range vertices {
		if v >= 0 && v < g.n {
			local[v] = int32(i)
		}
	}

	// Stage usable arcs (both directions) and build a combined CSR
	// adjacency with a counting sort, merging parallel edges so each
	// (u,v) pair appears once per direction. Merging keeps phase heap
	// traffic proportional to distinct neighbors.
	mc.halfs = mc.halfs[:0]
	allUnit := true
	stage := func(u, v int, w float64) {
		if w <= 0 || math.IsInf(w, 1) || math.IsNaN(w) {
			return
		}
		if u < 0 || u >= g.n || v < 0 || v >= g.n {
			return
		}
		lu, lv := local[u], local[v]
		if lu < 0 || lv < 0 || lu == lv {
			return
		}
		if w != 1 {
			allUnit = false
		}
		eid := int32(len(mc.halfs) / 2)
		mc.halfs = append(mc.halfs,
			mcHalf{from: lu, to: lv, w: w, eid: eid},
			mcHalf{from: lv, to: lu, w: w, eid: eid})
	}
	for eid := range g.edges {
		e := &g.edges[eid]
		stage(e.U, e.V, weights[eid])
	}
	for i := range extra {
		e := &extra[i]
		stage(e.U, e.V, e.Weight)
	}

	if cap(mc.arcOff) < n+1 {
		mc.arcOff = make([]int32, n+1)
	}
	off := mc.arcOff[:n+1]
	for i := range off {
		off[i] = 0
	}
	for _, h := range mc.halfs {
		off[h.from+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	na := len(mc.halfs)
	if cap(mc.arcTo) < na {
		mc.arcTo = make([]int32, na)
		mc.arcW = make([]float64, na)
		mc.arcEid = make([]int32, na)
	}
	arcTo, arcW, arcEid := mc.arcTo[:na], mc.arcW[:na], mc.arcEid[:na]
	// Fill per-vertex runs; the cursor borrows the tail array, which is
	// not needed for member lists until after the sort.
	if cap(mc.tail) < n {
		mc.tail = make([]int32, n)
	}
	cur := mc.tail[:n]
	copy(cur, off[:n])
	for _, h := range mc.halfs {
		arcTo[cur[h.from]] = h.to
		arcW[cur[h.from]] = h.w
		arcEid[cur[h.from]] = h.eid
		cur[h.from]++
	}

	// Unit-weight fast path: with every usable arc weighing exactly 1,
	// the cut value is integral and λ ∈ {0, 1} — the overlay sweep's
	// common case — is decidable in O(V+E) by one DFS: an unreachable
	// selected vertex means a disconnected restriction (cut 0, exactly
	// what the phase loop below reports), and a bridge in the
	// multigraph means λ = 1 (unique minimum-cut value, so the answer
	// is bit-identical to Stoer-Wagner's). Anything 2-edge-connected
	// falls through to the full phase loop.
	if allUnit {
		if v, ok := mc.unitCutLE1(n, off, arcTo, arcEid); ok {
			ws.mcFast++
			return v, true
		}
	}
	ws.mcFull++

	// Union-find supervertices with member lists.
	grow := func(p []int32) []int32 {
		if cap(p) < n {
			return make([]int32, n)
		}
		return p[:n]
	}
	mc.parent = grow(mc.parent)
	mc.head = grow(mc.head)
	mc.next = grow(mc.next)
	mc.tail = grow(mc.tail)
	if cap(mc.key) < n {
		mc.key = make([]float64, n)
	}
	if cap(mc.mark) < n {
		mc.mark = make([]uint8, n)
	}
	if cap(mc.alive) < n {
		mc.alive = make([]bool, n)
	}
	parent, head, next, tail := mc.parent, mc.head[:n], mc.next[:n], mc.tail[:n]
	key, mark, alive := mc.key[:n], mc.mark[:n], mc.alive[:n]
	for i := 0; i < n; i++ {
		parent[i] = int32(i)
		head[i], tail[i] = int32(i), int32(i)
		next[i] = -1
		alive[i] = true
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	h := &ws.heap
	best := math.Inf(1)
	for remaining := n; remaining > 1; remaining-- {
		// Maximum-adjacency phase over alive supervertices, seeded at
		// the lowest-indexed alive root. key[] accumulates adjacency to
		// the growing set A; the lazy heap orders by -key so stale
		// entries are skipped on pop.
		for i := 0; i < n; i++ {
			key[i] = 0
			if alive[i] {
				mark[i] = 0
			} else {
				mark[i] = 1 // dead: never enters A
			}
		}
		h.reset()
		seed := int32(-1)
		for i := 0; i < n; i++ {
			if alive[i] {
				seed = int32(i)
				break
			}
		}
		h.push(pqItem{v: seed, dist: 0})
		added := 0
		var prev, last int32 = -1, -1
		var lastKey float64
		for h.len() > 0 {
			it := h.pop()
			r := it.v
			if mark[r] == 1 || -it.dist < key[r] {
				continue // already in A, or stale entry
			}
			mark[r] = 1
			prev, last = last, r
			lastKey = key[r]
			added++
			// Relax every original arc of every member of r.
			for m := head[r]; m != -1; m = next[m] {
				for a := off[m]; a < off[m+1]; a++ {
					t := find(arcTo[a])
					if mark[t] == 1 || t == r {
						continue
					}
					key[t] += arcW[a]
					h.push(pqItem{v: t, dist: -key[t]})
				}
			}
		}
		if added < remaining {
			// Some alive supervertex was unreachable: the restriction
			// is disconnected, and the dense kernel reports cut 0.
			return 0, true
		}
		if lastKey < best {
			best = lastKey
		}
		// Contract last into prev: union the roots and splice the
		// member lists so future phases iterate both footprints.
		parent[last] = prev
		next[tail[prev]] = head[last]
		tail[prev] = tail[last]
		alive[last] = false
	}
	return best, true
}

// unitCutLE1 decides the unit-weight minimum cut when it is 0 or 1:
// one iterative DFS from local vertex 0 checks reachability of every
// selected vertex and finds bridges via lowpoints. The reverse half
// of the tree arc is recognized by its staged-edge id, so a parallel
// edge (distinct id, same endpoints) correctly cancels a bridge. The
// second return is false when λ ≥ 2 and the caller must run the full
// phase loop.
func (mc *mincutScratch) unitCutLE1(n int, off, arcTo, arcEid []int32) (float64, bool) {
	grow := func(p []int32) []int32 {
		if cap(p) < n {
			return make([]int32, n)
		}
		return p[:n]
	}
	mc.dfsStk = grow(mc.dfsStk)
	mc.dfsDisc = grow(mc.dfsDisc)
	mc.dfsLow = grow(mc.dfsLow)
	mc.dfsCur = grow(mc.dfsCur)
	mc.dfsEid = grow(mc.dfsEid)
	stk, disc, low, cur, ieid := mc.dfsStk, mc.dfsDisc, mc.dfsLow, mc.dfsCur, mc.dfsEid
	for i := 0; i < n; i++ {
		disc[i] = 0 // unvisited
	}

	timer := int32(1)
	visited := 1
	bridge := false
	sp := 0
	stk[sp] = 0
	disc[0], low[0] = timer, timer
	cur[0], ieid[0] = off[0], -1
	timer++
	sp++
	for sp > 0 {
		u := stk[sp-1]
		if a := cur[u]; a < off[u+1] {
			cur[u] = a + 1
			v := arcTo[a]
			if arcEid[a] == ieid[u] {
				continue // the reverse half of the tree arc into u
			}
			if disc[v] == 0 {
				disc[v], low[v] = timer, timer
				cur[v], ieid[v] = off[v], arcEid[a]
				timer++
				visited++
				stk[sp] = v
				sp++
			} else if disc[v] < low[u] {
				low[u] = disc[v]
			}
		} else {
			sp--
			if sp > 0 {
				p := stk[sp-1]
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					bridge = true
				}
			}
		}
	}
	if visited < n {
		return 0, true // disconnected restriction
	}
	if bridge {
		return 1, true
	}
	return 0, false // 2-edge-connected: λ ≥ 2, run the phase loop
}
