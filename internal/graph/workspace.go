package graph

import (
	"math"
	"sync"
)

// workspace.go holds the reusable per-query scratch state of the
// compute kernel. Every Dijkstra-family query needs a distance array,
// a parent-edge array, heap storage, and (for Yen and Brandes) a few
// more scratch slices; allocating them per call dominated the alloc
// profile of the analysis sweeps. A Workspace owns all of it and is
// reused across queries: the parallel sweeps keep one workspace per
// worker per run, and the legacy non-workspace entry points borrow one
// from a package pool.
//
// Re-initialization between runs is O(touched), not O(n): instead of
// clearing the distance array, every write stamps the vertex with the
// workspace's current epoch, and a read treats a stale stamp as
// "unvisited" (+Inf distance, -1 parent). begin() bumps the epoch,
// which invalidates the whole previous run in O(1).

// Workspace is reusable scratch memory for the graph algorithms. It
// is sized lazily to the graphs it is used with, may be shared across
// graphs of different sizes, and must not be used concurrently: give
// each goroutine its own (see par's per-worker state helpers).
//
// The zero value is not ready; use NewWorkspace.
type Workspace struct {
	// Dijkstra state, epoch-stamped per vertex.
	dist   []float64
	parent []int32
	stamp  []uint32
	epoch  uint32
	heap   heap4

	// Materialized per-sweep weight table (one wf call per edge, so
	// the relaxation loop indexes an array instead of calling a
	// closure per edge visit).
	weights []float64
	// Yen scratch: a mutable copy of the base table carrying the
	// spur-iteration exclusion masks.
	spurWeights []float64

	// Brandes (edge betweenness) scratch, epoch-stamped alongside
	// dist: sigma counts shortest paths, delta accumulates
	// dependencies, order records settle order, preds the shortest-
	// path DAG into each vertex.
	sigma []float64
	delta []float64
	order []int32
	preds [][]halfEdge

	// Stoer-Wagner (GlobalMinCutWS) scratch, grown lazily on first
	// min-cut query.
	mc *mincutScratch

	// Dinic (MaxFlowWS) scratch, grown lazily on first max-flow
	// query.
	mf *maxflowScratch

	// Source of the last ShortestTreeWS run; TreePathWS traces against
	// it. -1 until a tree query has run.
	treeSrc int32

	// Min-cut path counters: queries resolved by the unit-weight
	// bridge-DFS fast path vs the full Stoer-Wagner phase loop. The
	// workspace is single-goroutine, so plain increments suffice;
	// callers read deltas around a batch via MinCutStats.
	mcFast uint64
	mcFull uint64
}

// MinCutStats reports how many GlobalMinCutWS queries on this
// workspace were resolved by the unit-weight fast path and how many
// fell through to the full Stoer-Wagner phase loop.
func (w *Workspace) MinCutStats() (fastPath, stoerWagner uint64) {
	return w.mcFast, w.mcFull
}

// NewWorkspace returns an empty workspace; it grows to fit the first
// graph it is used with.
func NewWorkspace() *Workspace {
	return &Workspace{treeSrc: -1}
}

// begin starts a new query over a graph with n vertices: it grows the
// per-vertex arrays if needed and invalidates all previous stamps by
// bumping the epoch.
func (w *Workspace) begin(n int) {
	if len(w.stamp) < n {
		w.dist = append(w.dist, make([]float64, n-len(w.dist))...)
		w.parent = append(w.parent, make([]int32, n-len(w.parent))...)
		w.stamp = append(w.stamp, make([]uint32, n-len(w.stamp))...)
	}
	w.epoch++
	if w.epoch == 0 {
		// Epoch counter wrapped: stale stamps from 2^32 runs ago could
		// alias. Clear once and restart at 1 (0 means "never stamped").
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.epoch = 1
	}
	w.heap.reset()
}

// beginBrandes is begin plus the Brandes scratch arrays.
func (w *Workspace) beginBrandes(n int) {
	w.begin(n)
	if len(w.sigma) < n {
		w.sigma = append(w.sigma, make([]float64, n-len(w.sigma))...)
		w.delta = append(w.delta, make([]float64, n-len(w.delta))...)
		w.preds = append(w.preds, make([][]halfEdge, n-len(w.preds))...)
	}
	w.order = w.order[:0]
}

// visited reports whether v was reached in the current query.
func (w *Workspace) visited(v int32) bool { return w.stamp[v] == w.epoch }

// distAt returns v's distance in the current query (+Inf when
// unreached).
func (w *Workspace) distAt(v int32) float64 {
	if w.stamp[v] != w.epoch {
		return math.Inf(1)
	}
	return w.dist[v]
}

// materialize returns the weight table for one sweep under wf: dst[e]
// = wf(e) for every edge id. A nil wf uses the graph's cached default
// table (shared and read-only — copy before mutating). The table is
// valid until the workspace's next materialize call or the graph's
// next mutation.
func (w *Workspace) materialize(g *Graph, t *topology, wf WeightFunc) []float64 {
	if wf == nil {
		return t.defWeights
	}
	ne := len(g.edges)
	if cap(w.weights) < ne {
		w.weights = make([]float64, ne)
	}
	w.weights = w.weights[:ne]
	for i := range w.weights {
		w.weights[i] = wf(i)
	}
	return w.weights
}

// spurTable returns the Yen scratch table, sized to the graph.
func (w *Workspace) spurTable(ne int) []float64 {
	if cap(w.spurWeights) < ne {
		w.spurWeights = make([]float64, ne)
	}
	w.spurWeights = w.spurWeights[:ne]
	return w.spurWeights
}

// wsPool backs the legacy non-workspace entry points, so callers that
// have not adopted explicit workspaces still amortize scratch state
// across calls.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

func getWS() *Workspace  { return wsPool.Get().(*Workspace) }
func putWS(w *Workspace) { wsPool.Put(w) }
