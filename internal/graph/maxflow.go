package graph

import "math"

// maxflow.go grows the kernel from global min-cut to s-t maximum
// flow. The capacity layer asks "how many Gbps survive between this
// demand pair" for every scenario evaluation in a sweep, so the
// kernel follows the same discipline as GlobalMinCutWS: the base CSR
// stays shared and immutable, the query's per-edge capacities arrive
// as a flat table, overlay-only conduits ride along as extra edges,
// and every byte of scratch lives in the Workspace — zero allocations
// once warm.
//
// The algorithm is Dinic's: BFS level graph, then DFS blocking flow
// with per-vertex arc cursors. An undirected edge of capacity c
// becomes a twin arc pair (u→v and v→u, capacity c each) that act as
// each other's residuals — the standard undirected reduction, under
// which the twin of arc a is arc a^1. Iteration order is fixed by the
// staged arc order (base edges ascending by id, then extras in input
// order), so the returned flow value is bit-identical across runs,
// workspaces, and — because excluded arcs are never staged — across
// hosting graphs that agree on the reachable subgraph.

// maxflowScratch is the reusable state of MaxFlowWS, owned by a
// Workspace and grown lazily.
type maxflowScratch struct {
	arcOff []int32   // CSR offsets per vertex over staged arc cells
	arcIdx []int32   // CSR cell -> arc id
	arcTo  []int32   // per arc: head vertex
	arcCap []float64 // per arc: residual capacity (twin of a is a^1)
	cur    []int32   // staging cursor, then DFS arc cursor per vertex
	level  []int32   // BFS level, -1 unreached
	queue  []int32
	path   []int32 // DFS stack of arc ids from src
}

// maxflow returns the workspace's max-flow scratch, allocating it on
// first use.
func (w *Workspace) maxflow() *maxflowScratch {
	if w.mf == nil {
		w.mf = &maxflowScratch{}
	}
	return w.mf
}

// MaxFlow is the pooled-workspace convenience entry for MaxFlowWS.
func (g *Graph) MaxFlow(src, dst int, caps []float64, extra []Edge) float64 {
	ws := getWS()
	defer putWS(ws)
	return g.MaxFlowWS(ws, src, dst, caps, extra)
}

// MaxFlowWS returns the maximum s-t flow of the graph under the given
// edge capacities, with all scratch in ws:
//
//   - caps[eid] is the capacity of base edge eid; a zero, negative,
//     +Inf, or NaN capacity excludes the edge, matching
//     GlobalMinCutWS's usable-edge rule (nil caps uses the graph's
//     default weight table);
//   - extra lists overlay edges absent from the base graph (new
//     conduit builds); their Weight fields are their capacities, under
//     the same exclusion rule.
//
// Edges are undirected: capacity c may be consumed in either
// direction (but not both at once beyond c). Self-loops carry no
// flow. src == dst, or either endpoint out of range, returns 0.
//
// With integral capacities the result is exact; in general the
// float64 sum is deterministic because augmenting paths are found in
// a fixed arc order.
func (g *Graph) MaxFlowWS(ws *Workspace, src, dst int, caps []float64, extra []Edge) float64 {
	n := g.n
	if src == dst || src < 0 || src >= n || dst < 0 || dst >= n {
		return 0
	}
	if caps == nil {
		caps = g.topoView().defWeights
	}
	mf := ws.maxflow()

	grow := func(p []int32, n int) []int32 {
		if cap(p) < n {
			return make([]int32, n)
		}
		return p[:n]
	}
	mf.arcOff = grow(mf.arcOff, n+1)
	mf.cur = grow(mf.cur, n)
	mf.level = grow(mf.level, n)
	mf.queue = grow(mf.queue, n)
	mf.path = grow(mf.path, n)
	off, cur, level, queue, path := mf.arcOff, mf.cur, mf.level, mf.queue, mf.path

	usable := func(u, v int, w float64) bool {
		if w <= 0 || math.IsInf(w, 1) || math.IsNaN(w) {
			return false
		}
		return u != v && u >= 0 && u < n && v >= 0 && v < n
	}

	// Pass 1: count usable arcs per tail vertex.
	for i := range off {
		off[i] = 0
	}
	na := 0
	for eid := range g.edges {
		e := &g.edges[eid]
		if usable(e.U, e.V, caps[eid]) {
			off[e.U+1]++
			off[e.V+1]++
			na += 2
		}
	}
	for i := range extra {
		e := &extra[i]
		if usable(e.U, e.V, e.Weight) {
			off[e.U+1]++
			off[e.V+1]++
			na += 2
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}

	mf.arcIdx = grow(mf.arcIdx, na)
	mf.arcTo = grow(mf.arcTo, na)
	if cap(mf.arcCap) < na {
		mf.arcCap = make([]float64, na)
	}
	arcIdx, arcTo, arcCap := mf.arcIdx[:na], mf.arcTo[:na], mf.arcCap[:na]

	// Pass 2: lay the twin arc pairs in staged order and fill the CSR
	// cells with a counting sort.
	copy(cur, off[:n])
	arc := int32(0)
	add := func(u, v int, w float64) {
		arcTo[arc], arcCap[arc] = int32(v), w
		arcTo[arc+1], arcCap[arc+1] = int32(u), w
		arcIdx[cur[u]] = arc
		cur[u]++
		arcIdx[cur[v]] = arc + 1
		cur[v]++
		arc += 2
	}
	for eid := range g.edges {
		e := &g.edges[eid]
		if usable(e.U, e.V, caps[eid]) {
			add(e.U, e.V, caps[eid])
		}
	}
	for i := range extra {
		e := &extra[i]
		if usable(e.U, e.V, e.Weight) {
			add(e.U, e.V, e.Weight)
		}
	}

	// BFS level graph over positive-residual arcs.
	bfs := func() bool {
		for i := 0; i < n; i++ {
			level[i] = -1
		}
		level[src] = 0
		queue[0] = int32(src)
		qh, qt := 0, 1
		for qh < qt {
			u := queue[qh]
			qh++
			for c := off[u]; c < off[u+1]; c++ {
				a := arcIdx[c]
				if arcCap[a] <= 0 {
					continue
				}
				v := arcTo[a]
				if level[v] >= 0 {
					continue
				}
				level[v] = level[u] + 1
				queue[qt] = v
				qt++
			}
		}
		return level[dst] >= 0
	}

	total := 0.0
	for bfs() {
		// Blocking flow: iterative DFS with per-vertex cursors. A
		// vertex that dead-ends is pruned by resetting its level; a
		// saturated path arc fails the residual check on revisit, so
		// cursors are never rewound within a phase.
		copy(cur, off[:n])
		sp := 0
		v := int32(src)
		for {
			if v == int32(dst) {
				b := math.Inf(1)
				for i := 0; i < sp; i++ {
					if c := arcCap[path[i]]; c < b {
						b = c
					}
				}
				cutAt := sp
				for i := 0; i < sp; i++ {
					a := path[i]
					arcCap[a] -= b
					arcCap[a^1] += b
					if arcCap[a] <= 0 && i < cutAt {
						cutAt = i
					}
				}
				total += b
				sp = cutAt
				if sp == 0 {
					v = int32(src)
				} else {
					v = arcTo[path[sp-1]]
				}
				continue
			}
			advanced := false
			for cur[v] < off[v+1] {
				a := arcIdx[cur[v]]
				u := arcTo[a]
				if arcCap[a] > 0 && level[u] == level[v]+1 {
					path[sp] = a
					sp++
					v = u
					advanced = true
					break
				}
				cur[v]++
			}
			if !advanced {
				level[v] = -1
				if sp == 0 {
					break
				}
				sp--
				v = arcTo[path[sp]^1]
			}
		}
	}
	return total
}
