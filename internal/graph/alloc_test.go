package graph

import (
	"math/rand"
	"testing"
)

// alloc_test.go is the allocation-regression guard: the whole point of
// the workspace API is that steady-state distance queries allocate
// nothing, so a regression here silently re-inflates every §5 sweep.
// The guards skip under -short (they are perf gates, not correctness)
// and under the race detector (instrumentation allocates).

// allocFixture builds a mid-sized connected multigraph and warms a
// workspace against it.
func allocFixture() (*Graph, *Workspace, WeightFunc) {
	rng := rand.New(rand.NewSource(23))
	const n = 400
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
	}
	for i := 0; i < 3*n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(9)))
	}
	wf := func(eid int) float64 { return g.Edge(eid).Weight }
	ws := NewWorkspace()
	g.ShortestDistancesWS(ws, 0, wf, nil) // warm: CSR build + workspace growth
	return g, ws, wf
}

func skipIfAllocsUnmeasurable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("allocation guard skipped under the race detector")
	}
}

func TestShortestDistancesWSZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, wf := allocFixture()
	dst := make([]float64, g.NumVertices())
	if avg := testing.AllocsPerRun(50, func() {
		dst = g.ShortestDistancesWS(ws, 7, wf, dst)
	}); avg != 0 {
		t.Fatalf("ShortestDistancesWS allocates %.1f per run, want 0", avg)
	}
}

func TestShortestDistanceWSZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, wf := allocFixture()
	if avg := testing.AllocsPerRun(50, func() {
		g.ShortestDistanceWS(ws, 3, g.NumVertices()-1, wf)
	}); avg != 0 {
		t.Fatalf("ShortestDistanceWS allocates %.1f per run, want 0", avg)
	}
}

func TestMinimaxDistancesWSZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, wf := allocFixture()
	dst := make([]float64, g.NumVertices())
	if avg := testing.AllocsPerRun(50, func() {
		dst = g.MinimaxDistancesWS(ws, 5, wf, dst)
	}); avg != 0 {
		t.Fatalf("MinimaxDistancesWS allocates %.1f per run, want 0", avg)
	}
}

// TestShortestPathWSOnlyPathAllocs pins the documented contract that a
// path query allocates only the returned Path (nodes + edges slices).
func TestShortestPathWSOnlyPathAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, wf := allocFixture()
	if avg := testing.AllocsPerRun(50, func() {
		g.ShortestPathWS(ws, 3, g.NumVertices()-1, wf)
	}); avg > 2 {
		t.Fatalf("ShortestPathWS allocates %.1f per run, want <= 2 (the Path slices)", avg)
	}
}

// TestGlobalMinCutWSZeroAllocs pins the sparse Stoer-Wagner kernel to
// the same steady-state contract as the distance queries: after the
// first (growing) call, a min-cut query over a warmed workspace
// allocates nothing.
func TestGlobalMinCutWSZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, _ := allocFixture()
	w := make([]float64, g.NumEdges())
	for eid := range w {
		w[eid] = g.Edge(eid).Weight
	}
	verts := make([]int, 0, 60)
	for v := 0; v < 60; v++ {
		verts = append(verts, v)
	}
	extra := []Edge{{U: 0, V: 59, Weight: 2}}
	g.GlobalMinCutWS(ws, verts, w, extra) // warm: scratch growth
	if avg := testing.AllocsPerRun(20, func() {
		g.GlobalMinCutWS(ws, verts, w, extra)
	}); avg != 0 {
		t.Fatalf("GlobalMinCutWS allocates %.1f per run, want 0", avg)
	}
}
