package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// tree_test.go pins the tree-query contract: one full ShortestTreeWS
// settle answers every destination exactly as the per-pair entry
// points would — same distances, same parent-trace paths — because
// parents only change on strictly-shorter relaxations, so a settled
// vertex's chain is final regardless of where the run stopped.

func TestTreeQueriesMatchPerPair(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tws, pws := NewWorkspace(), NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		g := randomMultigraph(rng)
		for src := 0; src < g.NumVertices(); src += 3 {
			g.ShortestTreeWS(tws, src, nil)
			for dst := 0; dst < g.NumVertices(); dst++ {
				td, tok := g.TreeDistWS(tws, dst)
				pd, pok := g.ShortestDistanceWS(pws, src, dst, nil)
				if tok != pok {
					t.Fatalf("trial %d %d->%d: tree ok=%v, per-pair ok=%v", trial, src, dst, tok, pok)
				}
				if tok && td != pd {
					t.Fatalf("trial %d %d->%d: tree dist %v, per-pair %v", trial, src, dst, td, pd)
				}
				tp, tok := g.TreePathWS(tws, dst)
				pp, pok := g.ShortestPathWS(pws, src, dst, nil)
				if tok != pok {
					t.Fatalf("trial %d %d->%d: tree path ok=%v, per-pair ok=%v", trial, src, dst, tok, pok)
				}
				if tok && !reflect.DeepEqual(tp, pp) {
					t.Fatalf("trial %d %d->%d: tree path %+v, per-pair %+v", trial, src, dst, tp, pp)
				}
			}
		}
	}
}

func TestTreeQueriesGuardUnprimedWorkspace(t *testing.T) {
	g := buildDiamond()
	ws := NewWorkspace()
	if _, ok := g.TreeDistWS(ws, 1); ok {
		t.Error("TreeDistWS answered before any ShortestTreeWS")
	}
	if _, ok := g.TreePathWS(ws, 1); ok {
		t.Error("TreePathWS answered before any ShortestTreeWS")
	}
	g.ShortestTreeWS(ws, 0, nil)
	if d, ok := g.TreeDistWS(ws, 3); !ok || d != 2 {
		t.Errorf("dist to 3 = %v, %v; want 2, true", d, ok)
	}
	if p, ok := g.TreePathWS(ws, 3); !ok || !equalIntSlices(p.Nodes, []int{0, 1, 3}) {
		t.Errorf("path to 3 = %+v, %v", p, ok)
	}
	if _, ok := g.TreeDistWS(ws, 4); ok {
		t.Error("isolated vertex reported reachable")
	}
	if _, ok := g.TreeDistWS(ws, -1); ok {
		t.Error("negative destination accepted")
	}
	if _, ok := g.TreePathWS(ws, 99); ok {
		t.Error("out-of-range destination accepted")
	}
}
