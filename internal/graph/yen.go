package graph

import (
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless minimum-weight paths from
// src to dst under wf, in non-decreasing weight order, using Yen's
// algorithm. Fewer than k paths are returned if the graph does not
// contain that many distinct loopless paths.
func (g *Graph) KShortestPaths(src, dst, k int, wf WeightFunc) []Path {
	ws := getWS()
	defer putWS(ws)
	return g.KShortestPathsWS(ws, src, dst, k, wf)
}

// KShortestPathsWS is KShortestPaths using the caller's workspace.
//
// Spur exclusions (the edges and root nodes Yen bans per deviation)
// are expressed as +Inf masks written in place onto a scratch copy of
// the materialized weight table, rebuilt by a flat copy each spur
// iteration — no per-spur maps, no closure dispatch in the inner
// Dijkstra. Banning a node masks every incident edge via the CSR
// adjacency, which excludes exactly the edges the reference
// formulation rejects by endpoint test.
func (g *Graph) KShortestPathsWS(ws *Workspace, src, dst, k int, wf WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return nil
	}
	t := g.topoView()
	base := ws.materialize(g, t, wf)
	g.dijkstra(ws, t, base, int32(src), int32(dst))
	if !ws.visited(int32(dst)) {
		return nil
	}
	first := g.tracePath(ws, src, dst)

	paths := []Path{first}
	// Candidate set, kept sorted by weight. Small k keeps this cheap.
	var candidates []Path

	spurW := ws.spurTable(len(g.edges))
	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Deviate at every spur node of the previous path.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]

			copy(spurW, base)
			// Ban root nodes (except the spur) to keep paths loopless:
			// all of a banned node's incident edges are masked.
			for _, v := range rootNodes[:len(rootNodes)-1] {
				for _, he := range t.neighbors(int32(v)) {
					spurW[he.edge] = math.Inf(1)
				}
			}
			// Ban edges that would recreate an already-found path with
			// the same root.
			for _, p := range paths {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					spurW[p.Edges[i]] = math.Inf(1)
				}
			}
			for _, p := range candidates {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					spurW[p.Edges[i]] = math.Inf(1)
				}
			}

			g.dijkstra(ws, t, spurW, int32(spur), int32(dst))
			if !ws.visited(int32(dst)) {
				continue
			}
			spurPath := g.tracePath(ws, spur, dst)
			total := joinPaths(rootNodes, rootEdges, spurPath, base)
			if pathKnown(paths, total) || pathKnown(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return candidates[a].Weight < candidates[b].Weight
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func sameIntPrefix(full, prefix []int) bool {
	if len(full) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if full[i] != v {
			return false
		}
	}
	return true
}

// joinPaths splices the root onto the spur path, re-deriving the total
// weight from the base weight table (the spur Dijkstra ran over masked
// weights).
func joinPaths(rootNodes, rootEdges []int, spur Path, base []float64) Path {
	nodes := make([]int, 0, len(rootNodes)+len(spur.Nodes)-1)
	nodes = append(nodes, rootNodes...)
	nodes = append(nodes, spur.Nodes[1:]...)
	edges := make([]int, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	var w float64
	for _, eid := range edges {
		w += base[eid]
	}
	return Path{Nodes: nodes, Edges: edges, Weight: w}
}

func pathKnown(set []Path, p Path) bool {
	for _, q := range set {
		if equalIntSlices(q.Edges, p.Edges) {
			return true
		}
	}
	return false
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
