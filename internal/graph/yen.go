package graph

import (
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless minimum-weight paths from
// src to dst under wf, in non-decreasing weight order, using Yen's
// algorithm. Fewer than k paths are returned if the graph does not
// contain that many distinct loopless paths.
func (g *Graph) KShortestPaths(src, dst, k int, wf WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst, wf)
	if !ok {
		return nil
	}
	paths := []Path{first}
	// Candidate set, kept sorted by weight. Small k keeps this cheap.
	var candidates []Path

	bannedEdges := make(map[int]bool)
	bannedNodes := make(map[int]bool)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Deviate at every spur node of the previous path.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]

			clearMap(bannedEdges)
			clearMap(bannedNodes)
			// Ban edges that would recreate an already-found path with
			// the same root.
			for _, p := range paths {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			for _, p := range candidates {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			// Ban root nodes (except the spur) to keep paths loopless.
			for _, v := range rootNodes[:len(rootNodes)-1] {
				bannedNodes[v] = true
			}

			spurWF := func(eid int) float64 {
				if bannedEdges[eid] {
					return math.Inf(1)
				}
				e := g.edges[eid]
				if bannedNodes[e.U] || bannedNodes[e.V] {
					return math.Inf(1)
				}
				return g.weightOf(wf, eid)
			}
			spurPath, ok := g.ShortestPath(spur, dst, spurWF)
			if !ok {
				continue
			}
			total := joinPaths(g, rootNodes, rootEdges, spurPath, wf)
			if pathKnown(paths, total) || pathKnown(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return candidates[a].Weight < candidates[b].Weight
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func clearMap(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

func sameIntPrefix(full, prefix []int) bool {
	if len(full) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if full[i] != v {
			return false
		}
	}
	return true
}

func joinPaths(g *Graph, rootNodes, rootEdges []int, spur Path, wf WeightFunc) Path {
	nodes := make([]int, 0, len(rootNodes)+len(spur.Nodes)-1)
	nodes = append(nodes, rootNodes...)
	nodes = append(nodes, spur.Nodes[1:]...)
	edges := make([]int, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	var w float64
	for _, eid := range edges {
		w += g.weightOf(wf, eid)
	}
	return Path{Nodes: nodes, Edges: edges, Weight: w}
}

func pathKnown(set []Path, p Path) bool {
	for _, q := range set {
		if equalIntSlices(q.Edges, p.Edges) {
			return true
		}
	}
	return false
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
