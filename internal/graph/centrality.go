package graph

import (
	"container/heap"
	"math"
)

// centrality.go implements Brandes' algorithm for edge betweenness
// centrality under arbitrary edge weights. The resilience analyses
// use it to find the conduits that carry the most shortest paths —
// the backhoe targets.

// EdgeBetweenness returns, for every edge, the number of shortest
// paths between vertex pairs that traverse it (summed over ordered
// pairs and split evenly among equal-cost shortest paths). Edges
// excluded by wf (+Inf) get zero. Runs Brandes with Dijkstra in
// O(V * E log V).
func (g *Graph) EdgeBetweenness(wf WeightFunc) []float64 {
	n := len(g.adj)
	score := make([]float64, len(g.edges))

	// Per-source scratch, reused across sources.
	dist := make([]float64, n)
	sigma := make([]float64, n) // number of shortest paths
	delta := make([]float64, n) // dependency accumulator
	order := make([]int32, 0, n)
	// preds[v] lists the half-edges on shortest paths into v.
	preds := make([][]halfEdge, n)

	for s := 0; s < n; s++ {
		order = order[:0]
		for i := 0; i < n; i++ {
			dist[i] = math.Inf(1)
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		q := pq{{v: int32(s), dist: 0}}
		for q.Len() > 0 {
			it := heap.Pop(&q).(pqItem)
			v := int(it.v)
			if it.dist > dist[v] {
				continue
			}
			order = append(order, it.v)
			for _, h := range g.adj[v] {
				w := g.weightOf(wf, int(h.edge))
				if math.IsInf(w, 1) {
					continue
				}
				nd := dist[v] + w
				switch {
				case nd < dist[h.to]-1e-12:
					dist[h.to] = nd
					sigma[h.to] = sigma[v]
					preds[h.to] = append(preds[h.to][:0], halfEdge{to: int32(v), edge: h.edge})
					heap.Push(&q, pqItem{v: h.to, dist: nd})
				case math.Abs(nd-dist[h.to]) <= 1e-12:
					sigma[h.to] += sigma[v]
					preds[h.to] = append(preds[h.to], halfEdge{to: int32(v), edge: h.edge})
				}
			}
		}
		// Accumulate dependencies in reverse settle order.
		for i := len(order) - 1; i > 0; i-- {
			w := int(order[i])
			for _, ph := range preds[w] {
				v := int(ph.to)
				c := sigma[v] / sigma[w] * (1 + delta[w])
				score[ph.edge] += c
				delta[v] += c
			}
		}
	}
	return score
}
