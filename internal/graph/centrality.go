package graph

import (
	"math"
)

// centrality.go implements Brandes' algorithm for edge betweenness
// centrality under arbitrary edge weights. The resilience analyses
// use it to find the conduits that carry the most shortest paths —
// the backhoe targets.

// EdgeBetweenness returns, for every edge, the number of shortest
// paths between vertex pairs that traverse it (summed over ordered
// pairs and split evenly among equal-cost shortest paths). Edges
// excluded by wf (+Inf) get zero. Runs Brandes with Dijkstra in
// O(V * E log V).
func (g *Graph) EdgeBetweenness(wf WeightFunc) []float64 {
	ws := getWS()
	defer putWS(ws)
	return g.EdgeBetweennessWS(ws, wf, nil)
}

// EdgeBetweennessWS is EdgeBetweenness using the caller's workspace,
// writing scores into dst (resized as needed; nil allocates). The
// weight table is materialized once for all sources, and the per-
// source scratch (settle order, path counts, dependency accumulators,
// predecessor lists) is epoch-stamped workspace state — re-arming it
// between sources costs O(touched), not O(V).
func (g *Graph) EdgeBetweennessWS(ws *Workspace, wf WeightFunc, dst []float64) []float64 {
	n := g.n
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	if cap(dst) < len(g.edges) {
		dst = make([]float64, len(g.edges))
	}
	dst = dst[:len(g.edges)]
	for i := range dst {
		dst[i] = 0
	}

	for s := 0; s < n; s++ {
		ws.beginBrandes(n)
		sv := int32(s)
		ws.stamp[sv] = ws.epoch
		ws.dist[sv] = 0
		ws.sigma[sv] = 1
		ws.delta[sv] = 0
		ws.preds[sv] = ws.preds[sv][:0]
		h := &ws.heap
		h.push(pqItem{v: sv, dist: 0})
		for h.len() > 0 {
			it := h.pop()
			v := it.v
			if it.dist > ws.dist[v] {
				continue
			}
			ws.order = append(ws.order, v)
			for _, he := range t.half[t.off[v]:t.off[v+1]] {
				w := weights[he.edge]
				if math.IsInf(w, 1) {
					continue
				}
				nd := ws.dist[v] + w
				to := he.to
				if ws.stamp[to] != ws.epoch {
					ws.stamp[to] = ws.epoch
					ws.dist[to] = nd
					ws.sigma[to] = ws.sigma[v]
					ws.delta[to] = 0
					ws.preds[to] = append(ws.preds[to][:0], halfEdge{to: v, edge: he.edge})
					h.push(pqItem{v: to, dist: nd})
					continue
				}
				switch {
				case nd < ws.dist[to]-1e-12:
					ws.dist[to] = nd
					ws.sigma[to] = ws.sigma[v]
					ws.preds[to] = append(ws.preds[to][:0], halfEdge{to: v, edge: he.edge})
					h.push(pqItem{v: to, dist: nd})
				case math.Abs(nd-ws.dist[to]) <= 1e-12:
					ws.sigma[to] += ws.sigma[v]
					ws.preds[to] = append(ws.preds[to], halfEdge{to: v, edge: he.edge})
				}
			}
		}
		// Accumulate dependencies in reverse settle order.
		for i := len(ws.order) - 1; i > 0; i-- {
			w := ws.order[i]
			for _, ph := range ws.preds[w] {
				v := ph.to
				c := ws.sigma[v] / ws.sigma[w] * (1 + ws.delta[w])
				dst[ph.edge] += c
				ws.delta[v] += c
			}
		}
	}
	return dst
}
