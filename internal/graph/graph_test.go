package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond creates:
//
//	0 --1-- 1 --1-- 3
//	 \--1-- 2 --3--/
//
// plus an isolated vertex 4.
func buildDiamond() *Graph {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 3)
	return g
}

func TestShortestPathBasic(t *testing.T) {
	g := buildDiamond()
	p, ok := g.ShortestPath(0, 3, nil)
	if !ok {
		t.Fatal("no path")
	}
	if p.Weight != 2 || p.Hops() != 2 {
		t.Errorf("weight=%v hops=%d, want 2,2", p.Weight, p.Hops())
	}
	wantNodes := []int{0, 1, 3}
	if !equalIntSlices(p.Nodes, wantNodes) {
		t.Errorf("nodes=%v want %v", p.Nodes, wantNodes)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := buildDiamond()
	if _, ok := g.ShortestPath(0, 4, nil); ok {
		t.Error("vertex 4 must be unreachable")
	}
	if _, ok := g.ShortestPath(-1, 2, nil); ok {
		t.Error("out-of-range src must fail")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := buildDiamond()
	p, ok := g.ShortestPath(2, 2, nil)
	if !ok || p.Hops() != 0 || p.Weight != 0 {
		t.Errorf("self path = %+v, %v", p, ok)
	}
}

func TestWeightFuncOverridesAndBans(t *testing.T) {
	g := buildDiamond()
	// Ban edge 0 (0-1); path must go through 2.
	p, ok := g.ShortestPath(0, 3, func(eid int) float64 {
		if eid == 0 {
			return math.Inf(1)
		}
		return g.Edge(eid).Weight
	})
	if !ok {
		t.Fatal("no path with ban")
	}
	if !equalIntSlices(p.Nodes, []int{0, 2, 3}) {
		t.Errorf("nodes=%v", p.Nodes)
	}
	if p.Weight != 4 {
		t.Errorf("weight=%v want 4", p.Weight)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	slow := g.AddEdge(0, 1, 10)
	fast := g.AddEdge(0, 1, 2)
	p, ok := g.ShortestPath(0, 1, nil)
	if !ok || p.Edges[0] != fast {
		t.Errorf("should pick the fast parallel edge, got %+v", p)
	}
	// Yen should return both parallel edges as distinct paths.
	ps := g.KShortestPaths(0, 1, 3, nil)
	if len(ps) != 2 {
		t.Fatalf("k-shortest over parallel edges = %d paths, want 2", len(ps))
	}
	if ps[0].Edges[0] != fast || ps[1].Edges[0] != slow {
		t.Errorf("order wrong: %+v", ps)
	}
}

func TestShortestDistances(t *testing.T) {
	g := buildDiamond()
	dist := g.ShortestDistances(0, nil)
	want := []float64{0, 1, 1, 2, math.Inf(1)}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d]=%v want %v", i, dist[i], w)
		}
	}
}

func TestComponents(t *testing.T) {
	g := buildDiamond()
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 4 || len(comps[1]) != 1 {
		t.Errorf("sizes = %d,%d", len(comps[0]), len(comps[1]))
	}
	if !g.Connected(0, 3) || g.Connected(0, 4) {
		t.Error("connectivity wrong")
	}
}

func TestAddVertex(t *testing.T) {
	g := New(0)
	a := g.AddVertex()
	b := g.AddVertex()
	g.AddEdge(a, b, 5)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts = %d,%d", g.NumVertices(), g.NumEdges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	mustPanic(t, func() { g.AddEdge(0, 5, 1) })
	mustPanic(t, func() { g.AddEdge(0, 1, -1) })
	mustPanic(t, func() { g.AddEdge(0, 1, math.NaN()) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestNeighbors(t *testing.T) {
	g := buildDiamond()
	var tos []int
	g.Neighbors(0, func(to, eid int) { tos = append(tos, to) })
	if len(tos) != 2 {
		t.Errorf("neighbors of 0 = %v", tos)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := buildDiamond()
	ps := g.KShortestPaths(0, 3, 5, nil)
	if len(ps) != 2 {
		t.Fatalf("got %d paths, want 2", len(ps))
	}
	if ps[0].Weight != 2 || ps[1].Weight != 4 {
		t.Errorf("weights = %v, %v", ps[0].Weight, ps[1].Weight)
	}
	// Paths must be loopless.
	for _, p := range ps {
		seen := map[int]bool{}
		for _, v := range p.Nodes {
			if seen[v] {
				t.Errorf("path %v revisits %d", p.Nodes, v)
			}
			seen[v] = true
		}
	}
}

func TestKShortestPathsGrid(t *testing.T) {
	// 3x3 grid; many equal-cost paths.
	g := New(9)
	at := func(r, c int) int { return r*3 + c }
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if c+1 < 3 {
				g.AddEdge(at(r, c), at(r, c+1), 1)
			}
			if r+1 < 3 {
				g.AddEdge(at(r, c), at(r+1, c), 1)
			}
		}
	}
	ps := g.KShortestPaths(at(0, 0), at(2, 2), 6, nil)
	if len(ps) != 6 {
		t.Fatalf("got %d paths, want 6 (all monotone grid paths)", len(ps))
	}
	for _, p := range ps {
		if p.Weight != 4 {
			t.Errorf("path weight %v, want 4 for first six", p.Weight)
		}
	}
	// Distinct edge sequences.
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if equalIntSlices(ps[i].Edges, ps[j].Edges) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestKShortestNoPath(t *testing.T) {
	g := buildDiamond()
	if ps := g.KShortestPaths(0, 4, 3, nil); ps != nil {
		t.Errorf("expected nil, got %v", ps)
	}
	if ps := g.KShortestPaths(0, 3, 0, nil); ps != nil {
		t.Errorf("k<=0 should yield nil, got %v", ps)
	}
}

// Property: on random connected graphs, Dijkstra's distance equals
// Bellman-Ford's distance.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		// Random spanning tree plus extras.
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, rng.Float64()*10)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()*10)
		}
		src := rng.Intn(n)
		got := g.ShortestDistances(src, nil)
		want := bellmanFord(g, src)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("trial %d: dist[%d]=%v want %v", trial, v, got[v], want[v])
			}
		}
	}
}

func bellmanFord(g *Graph, src int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for eid := 0; eid < g.NumEdges(); eid++ {
			e := g.Edge(eid)
			if dist[e.U]+e.Weight < dist[e.V] {
				dist[e.V] = dist[e.U] + e.Weight
				changed = true
			}
			if dist[e.V]+e.Weight < dist[e.U] {
				dist[e.U] = dist[e.V] + e.Weight
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Property: k-shortest path weights are non-decreasing and all paths
// are loopless, on random graphs.
func TestKShortestProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*5)
		}
		for i := 0; i < n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*5)
		}
		ps := g.KShortestPaths(0, n-1, 5, nil)
		for i := 1; i < len(ps); i++ {
			if ps[i].Weight < ps[i-1].Weight-1e-9 {
				t.Fatalf("trial %d: weights decrease: %v then %v", trial, ps[i-1].Weight, ps[i].Weight)
			}
		}
		for _, p := range ps {
			seen := map[int]bool{}
			for _, v := range p.Nodes {
				if seen[v] {
					t.Fatalf("trial %d: loop in %v", trial, p.Nodes)
				}
				seen[v] = true
			}
			// Edge sequence must actually connect the node sequence.
			for i, eid := range p.Edges {
				e := g.Edge(eid)
				a, b := p.Nodes[i], p.Nodes[i+1]
				if !((e.U == a && e.V == b) || (e.U == b && e.V == a)) {
					t.Fatalf("trial %d: edge %d does not connect %d-%d", trial, eid, a, b)
				}
			}
		}
	}
}

func TestPathClone(t *testing.T) {
	p := Path{Nodes: []int{1, 2}, Edges: []int{0}, Weight: 3}
	q := p.Clone()
	q.Nodes[0] = 9
	if p.Nodes[0] != 1 {
		t.Error("clone must not share backing arrays")
	}
}

func TestWeightFuncNilUsesDefault(t *testing.T) {
	if err := quick.Check(func(w uint8) bool {
		g := New(2)
		g.AddEdge(0, 1, float64(w))
		p, ok := g.ShortestPath(0, 1, nil)
		return ok && p.Weight == float64(w)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMinimaxDistances(t *testing.T) {
	// Two routes 0->3: via 1 with max weight 9, via 2 with max 4.
	g := New(4)
	g.AddEdge(0, 1, 9)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 3)
	d := g.MinimaxDistances(0, nil)
	if d[3] != 4 {
		t.Errorf("minimax to 3 = %v, want 4 (via vertex 2)", d[3])
	}
	if d[0] != 0 {
		t.Errorf("self = %v", d[0])
	}
	// Banned edges exclude routes.
	banned := func(eid int) float64 {
		if g.Edge(eid).U == 0 && g.Edge(eid).V == 2 {
			return math.Inf(1)
		}
		return g.Edge(eid).Weight
	}
	d = g.MinimaxDistances(0, banned)
	if d[3] != 9 {
		t.Errorf("minimax with ban = %v, want 9", d[3])
	}
}

func TestMinimaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
		got := g.MinimaxDistances(0, nil)
		// Brute force via repeated relaxation.
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Inf(1)
		}
		want[0] = 0
		for iter := 0; iter < n+1; iter++ {
			for eid := 0; eid < g.NumEdges(); eid++ {
				e := g.Edge(eid)
				if m := math.Max(want[e.U], e.Weight); m < want[e.V] {
					want[e.V] = m
				}
				if m := math.Max(want[e.V], e.Weight); m < want[e.U] {
					want[e.U] = m
				}
			}
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: minimax[%d] = %v, want %v", trial, v, got[v], want[v])
			}
		}
	}
}
