package graph

import "math"

// tree.go exposes the shortest-path tree a full Dijkstra settles as a
// queryable structure: run ShortestTreeWS once per source, then trace
// any number of destinations off the parent array. This is the
// source-batched complement to the per-pair entry points — one SSSP
// amortized over every destination sharing the source — and the
// results are bit-identical to per-pair ShortestPathWS queries:
// parents only change on strictly-shorter relaxations, so a settled
// vertex's parent chain is final whether or not the run stopped
// early at that vertex.

// ShortestTreeWS runs a full single-source Dijkstra from src under
// wf, leaving the settled distances and parent edges in ws for
// TreeDistWS/TreePathWS. The tree is valid until the workspace's next
// query of any kind. Zero allocations with a warmed workspace.
func (g *Graph) ShortestTreeWS(ws *Workspace, src int, wf WeightFunc) {
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	g.dijkstra(ws, t, weights, int32(src), -1)
	ws.treeSrc = int32(src)
}

// TreeDistWS returns the distance from the last ShortestTreeWS source
// to dst (ok=false when unreachable).
func (g *Graph) TreeDistWS(ws *Workspace, dst int) (float64, bool) {
	if ws.treeSrc < 0 || dst < 0 || dst >= g.n || !ws.visited(int32(dst)) {
		return math.Inf(1), false
	}
	return ws.dist[dst], true
}

// TreePathWS materializes the path from the last ShortestTreeWS
// source to dst (ok=false when unreachable). Only the returned Path
// is allocated.
func (g *Graph) TreePathWS(ws *Workspace, dst int) (Path, bool) {
	if ws.treeSrc < 0 || dst < 0 || dst >= g.n || !ws.visited(int32(dst)) {
		return Path{}, false
	}
	return g.tracePath(ws, int(ws.treeSrc), dst), true
}
