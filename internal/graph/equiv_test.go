package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// equiv_test.go is the differential suite pinning the CSR kernel to a
// straightforward reference implementation: slice-of-slices adjacency,
// container/heap priority queue, weight closure called per relaxation.
// Both sides share the (dist, then vertex id) total order, which is
// the package's documented determinism contract, so every output —
// distance arrays, parent-edge path traces, Yen path sets, Brandes
// scores — must match exactly, not approximately.

// ---- reference implementation (old shape) ----

type refItem struct {
	v    int
	dist float64
}

type refPQ []refItem

func (q refPQ) Len() int { return len(q) }
func (q refPQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].v < q[j].v
}
func (q refPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x any)   { *q = append(*q, x.(refItem)) }
func (q *refPQ) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

type refHalf struct{ to, edge int }

// refAdjacency builds the per-vertex incidence lists in edge-insertion
// order — the order the CSR counting sort reproduces.
func refAdjacency(g *Graph) [][]refHalf {
	adj := make([][]refHalf, g.NumVertices())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], refHalf{to: e.V, edge: id})
		if e.U != e.V {
			adj[e.V] = append(adj[e.V], refHalf{to: e.U, edge: id})
		}
	}
	return adj
}

// refDijkstra is the pre-CSR kernel: returns dense dist and parent-edge
// arrays (parent -1 where unset, +Inf where unreachable).
func refDijkstra(g *Graph, adj [][]refHalf, src int, wf WeightFunc) (dist []float64, parent []int) {
	n := g.NumVertices()
	dist = make([]float64, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	pq := &refPQ{{v: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(refItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, h := range adj[it.v] {
			w := g.weightOf(wf, h.edge)
			if math.IsInf(w, 1) {
				continue
			}
			if nd := it.dist + w; nd < dist[h.to] {
				dist[h.to] = nd
				parent[h.to] = h.edge
				heap.Push(pq, refItem{v: h.to, dist: nd})
			}
		}
	}
	return dist, parent
}

func refTracePath(g *Graph, dist []float64, parent []int, src, dst int) (Path, bool) {
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	p := Path{Nodes: []int{dst}, Weight: dist[dst]}
	for v := dst; v != src; {
		eid := parent[v]
		p.Edges = append(p.Edges, eid)
		e := g.Edge(eid)
		if e.U == v {
			v = e.V
		} else {
			v = e.U
		}
		p.Nodes = append(p.Nodes, v)
	}
	for i, j := 0, len(p.Nodes)-1; i < j; i, j = i+1, j-1 {
		p.Nodes[i], p.Nodes[j] = p.Nodes[j], p.Nodes[i]
	}
	for i, j := 0, len(p.Edges)-1; i < j; i, j = i+1, j-1 {
		p.Edges[i], p.Edges[j] = p.Edges[j], p.Edges[i]
	}
	if len(p.Edges) == 0 {
		p.Edges = nil
	}
	return p, true
}

// refKShortest is Yen's algorithm in its pre-workspace formulation:
// banned nodes and deviation edges held in per-spur maps, exclusion by
// endpoint test inside a wrapping weight closure.
func refKShortest(g *Graph, adj [][]refHalf, src, dst, k int, wf WeightFunc) []Path {
	if k <= 0 || src < 0 || src >= g.NumVertices() || dst < 0 || dst >= g.NumVertices() {
		return nil
	}
	dist, parent := refDijkstra(g, adj, src, wf)
	first, ok := refTracePath(g, dist, parent, src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]
			bannedNodes := make(map[int]bool)
			for _, v := range rootNodes[:len(rootNodes)-1] {
				bannedNodes[v] = true
			}
			bannedEdges := make(map[int]bool)
			for _, p := range paths {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			for _, p := range candidates {
				if sameIntPrefix(p.Nodes, rootNodes) && len(p.Edges) > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			spurWF := func(eid int) float64 {
				if bannedEdges[eid] {
					return math.Inf(1)
				}
				e := g.Edge(eid)
				if bannedNodes[e.U] || bannedNodes[e.V] {
					return math.Inf(1)
				}
				return g.weightOf(wf, eid)
			}
			sd, sp := refDijkstra(g, adj, spur, spurWF)
			spurPath, ok := refTracePath(g, sd, sp, spur, dst)
			if !ok {
				continue
			}
			nodes := append(append([]int{}, rootNodes...), spurPath.Nodes[1:]...)
			edges := append(append([]int{}, rootEdges...), spurPath.Edges...)
			var w float64
			for _, eid := range edges {
				w += g.weightOf(wf, eid)
			}
			total := Path{Nodes: nodes, Edges: edges, Weight: w}
			if pathKnown(paths, total) || pathKnown(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return candidates[a].Weight < candidates[b].Weight
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// refEdgeBetweenness is Brandes with container/heap and per-source
// allocated scratch, epsilon branches identical to the kernel's.
func refEdgeBetweenness(g *Graph, adj [][]refHalf, wf WeightFunc) []float64 {
	n := g.NumVertices()
	out := make([]float64, g.NumEdges())
	for s := 0; s < n; s++ {
		dist := make([]float64, n)
		sigma := make([]float64, n)
		delta := make([]float64, n)
		preds := make([][]refHalf, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[s] = 0
		sigma[s] = 1
		var order []int
		pq := &refPQ{{v: s, dist: 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(refItem)
			v := it.v
			if it.dist > dist[v] {
				continue
			}
			order = append(order, v)
			for _, h := range adj[v] {
				w := g.weightOf(wf, h.edge)
				if math.IsInf(w, 1) {
					continue
				}
				nd := dist[v] + w
				switch {
				case nd < dist[h.to]-1e-12:
					dist[h.to] = nd
					sigma[h.to] = sigma[v]
					preds[h.to] = append(preds[h.to][:0], refHalf{to: v, edge: h.edge})
					heap.Push(pq, refItem{v: h.to, dist: nd})
				case math.Abs(nd-dist[h.to]) <= 1e-12:
					sigma[h.to] += sigma[v]
					preds[h.to] = append(preds[h.to], refHalf{to: v, edge: h.edge})
				}
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, ph := range preds[w] {
				c := sigma[ph.to] / sigma[w] * (1 + delta[w])
				out[ph.edge] += c
				delta[ph.to] += c
			}
		}
	}
	return out
}

// ---- randomized multigraphs ----

// randomMultigraph builds a graph with parallel edges, self-loops, and
// small integer weights — integer weights force genuine distance ties,
// the case where tie-breaking discipline matters.
func randomMultigraph(rng *rand.Rand) *Graph {
	n := 2 + rng.Intn(24)
	g := New(n)
	m := rng.Intn(4 * n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if rng.Intn(20) != 0 && u == v {
			v = (v + 1) % n // keep self-loops rare but present
		}
		g.AddEdge(u, v, float64(1+rng.Intn(6)))
	}
	return g
}

// maskWF drops every 7th edge (exercises +Inf exclusion) and otherwise
// perturbs default weights deterministically.
func maskWF(g *Graph) WeightFunc {
	return func(eid int) float64 {
		if eid%7 == 3 {
			return math.Inf(1)
		}
		return g.Edge(eid).Weight + float64(eid%3)
	}
}

func equalPaths(a, b Path) bool {
	return a.Weight == b.Weight && equalIntSlices(a.Nodes, b.Nodes) && equalIntSlices(a.Edges, b.Edges)
}

func TestDijkstraMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		g := randomMultigraph(rng)
		adj := refAdjacency(g)
		var wf WeightFunc
		if trial%2 == 1 {
			wf = maskWF(g)
		}
		src := rng.Intn(g.NumVertices())
		wantDist, wantParent := refDijkstra(g, adj, src, wf)

		got := g.ShortestDistances(src, wf)
		for v := range wantDist {
			if got[v] != wantDist[v] {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, v, got[v], wantDist[v])
			}
		}
		for dst := 0; dst < g.NumVertices(); dst++ {
			wantPath, wantOK := refTracePath(g, wantDist, wantParent, src, dst)
			gotPath, gotOK := g.ShortestPath(src, dst, wf)
			if gotOK != wantOK {
				t.Fatalf("trial %d: ShortestPath(%d,%d) ok=%v, want %v", trial, src, dst, gotOK, wantOK)
			}
			if gotOK && !equalPaths(gotPath, wantPath) {
				t.Fatalf("trial %d: ShortestPath(%d,%d)\n got %+v\nwant %+v", trial, src, dst, gotPath, wantPath)
			}
		}
	}
}

func TestKShortestPathsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		g := randomMultigraph(rng)
		adj := refAdjacency(g)
		var wf WeightFunc
		if trial%3 == 2 {
			wf = maskWF(g)
		}
		src, dst := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
		k := 1 + rng.Intn(5)
		want := refKShortest(g, adj, src, dst, k, wf)
		got := g.KShortestPaths(src, dst, k, wf)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d paths, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !equalPaths(got[i], want[i]) {
				t.Fatalf("trial %d: path %d\n got %+v\nwant %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestEdgeBetweennessMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		g := randomMultigraph(rng)
		adj := refAdjacency(g)
		var wf WeightFunc
		if trial%2 == 1 {
			wf = maskWF(g)
		}
		want := refEdgeBetweenness(g, adj, wf)
		got := g.EdgeBetweenness(wf)
		for e := range want {
			// Same settle order, same accumulation order — bit identical.
			if got[e] != want[e] {
				t.Fatalf("trial %d: betweenness[%d] = %v, want %v", trial, e, got[e], want[e])
			}
		}
	}
}

// TestWorkspaceReuseMatchesFresh pins that a workspace carried across
// many queries (including epoch reuse over different graphs) never
// leaks state between queries.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ws := NewWorkspace()
	for trial := 0; trial < 150; trial++ {
		g := randomMultigraph(rng)
		src := rng.Intn(g.NumVertices())
		want := g.ShortestDistancesWS(NewWorkspace(), src, nil, nil)
		got := g.ShortestDistancesWS(ws, src, nil, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: reused ws dist[%d] = %v, want %v", trial, v, got[v], want[v])
			}
		}
	}
}

// TestWorkspaceEpochWrap forces the uint32 epoch counter through its
// wrap-around and checks queries stay correct on both sides.
func TestWorkspaceEpochWrap(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	ws := NewWorkspace()
	check := func() {
		t.Helper()
		d := g.ShortestDistancesWS(ws, 0, nil, nil)
		if d[0] != 0 || d[1] != 1 || d[2] != 2 {
			t.Fatalf("dist after epoch %d = %v", ws.epoch, d)
		}
	}
	check()
	ws.epoch = math.MaxUint32 - 1
	check() // runs at MaxUint32
	check() // wraps: stamps cleared, epoch restarts at 1
	if ws.epoch == 0 || ws.epoch > 2 {
		t.Fatalf("epoch after wrap = %d, want 1 or 2", ws.epoch)
	}
	check()
}

// TestMinimaxMatchesBruteforce pins MinimaxDistances against a simple
// Bellman-Ford-style relaxation of the bottleneck objective.
func TestMinimaxMatchesBruteforce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 80; trial++ {
		g := randomMultigraph(rng)
		n := g.NumVertices()
		src := rng.Intn(n)
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Inf(1)
		}
		want[src] = 0
		for iter := 0; iter < n; iter++ {
			changed := false
			for id := 0; id < g.NumEdges(); id++ {
				e := g.Edge(id)
				if nd := math.Max(want[e.U], e.Weight); nd < want[e.V] {
					want[e.V] = nd
					changed = true
				}
				if nd := math.Max(want[e.V], e.Weight); nd < want[e.U] {
					want[e.U] = nd
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		got := g.MinimaxDistances(src, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: minimax[%d] = %v, want %v", trial, v, got[v], want[v])
			}
		}
	}
}

// TestHeapPopIsSortedOrder is the heap's total-order property under
// testing/quick: pops must come out exactly as sort by (dist, v).
func TestHeapPopIsSortedOrder(t *testing.T) {
	prop := func(dists []float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h heap4
		items := make([]pqItem, 0, len(dists))
		for i, d := range dists {
			if math.IsNaN(d) {
				d = float64(i) // NaN has no total order; substitute
			}
			items = append(items, pqItem{v: int32(rng.Intn(64)), dist: d})
		}
		for _, it := range items {
			h.push(it)
		}
		sort.SliceStable(items, func(a, b int) bool { return pqLess(items[a], items[b]) })
		for _, want := range items {
			// (dist, v) is a total order and exact duplicates are
			// value-identical, so pop order is fully determined.
			if h.pop() != want {
				return false
			}
		}
		return h.len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzHeapOrdering feeds arbitrary push/pop scripts to the 4-ary heap
// and cross-checks every pop against a sorted reference multiset.
func FuzzHeapOrdering(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 0, 0})
	f.Add([]byte{0})
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		var h heap4
		var ref []pqItem
		for i, b := range script {
			if b == 0 { // pop
				if len(ref) == 0 {
					if h.len() != 0 {
						t.Fatalf("heap has %d items, reference empty", h.len())
					}
					continue
				}
				best := 0
				for j := 1; j < len(ref); j++ {
					if pqLess(ref[j], ref[best]) {
						best = j
					}
				}
				want := ref[best]
				ref = append(ref[:best], ref[best+1:]...)
				got := h.pop()
				if got.dist != want.dist || got.v != want.v {
					t.Fatalf("op %d: pop = %+v, want %+v", i, got, want)
				}
				continue
			}
			it := pqItem{v: int32(b % 32), dist: float64(b >> 3)}
			h.push(it)
			ref = append(ref, it)
		}
		if h.len() != len(ref) {
			t.Fatalf("final size %d, want %d", h.len(), len(ref))
		}
	})
}
