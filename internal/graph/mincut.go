package graph

import "math"

// mincut.go implements the Stoer-Wagner global minimum cut, used to
// answer the paper's motivating security question: how many conduit
// cuts would it take to partition a backbone?

// GlobalMinCut returns the weight of the minimum cut of the graph
// restricted to the given vertices, under wf (edges with +Inf weight
// are ignored; the remaining edge weights are summed across parallel
// edges). It returns ok=false when fewer than two usable vertices
// remain or the restriction is disconnected (min cut 0 is then
// returned with ok=true only for the connected case).
//
// With unit edge weights the result is the minimum number of edges
// (conduits) whose removal disconnects the vertex set.
func (g *Graph) GlobalMinCut(vertices []int, wf WeightFunc) (float64, bool) {
	// Build a dense weight matrix over the selected vertices.
	n := len(vertices)
	if n < 2 {
		return 0, false
	}
	idx := make(map[int]int, n)
	for i, v := range vertices {
		idx[v] = i
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for eid := range g.edges {
		cost := g.weightOf(wf, eid)
		if math.IsInf(cost, 1) {
			continue
		}
		e := g.edges[eid]
		i, iok := idx[e.U]
		j, jok := idx[e.V]
		if !iok || !jok || i == j {
			continue
		}
		w[i][j] += cost
		w[j][i] += cost
	}

	// Disconnected restrictions have a trivial zero cut.
	if !denseConnected(w) {
		return 0, true
	}

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := math.Inf(1)
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase).
		inA := make([]bool, n)
		weights := make([]float64, n)
		prev, last := -1, -1
		for step := 0; step < len(active); step++ {
			sel := -1
			for _, v := range active {
				if !inA[v] && (sel == -1 || weights[v] > weights[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: weight of `last` against the rest.
		if weights[last] < best {
			best = weights[last]
		}
		// Merge last into prev.
		for _, v := range active {
			if v != last && v != prev {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		// Remove last from active.
		out := active[:0]
		for _, v := range active {
			if v != last {
				out = append(out, v)
			}
		}
		active = out
	}
	return best, true
}

// denseConnected reports whether the dense weight matrix describes a
// connected graph (positive weights as edges).
func denseConnected(w [][]float64) bool {
	n := len(w)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := 0; u < n; u++ {
			if !seen[u] && w[v][u] > 0 {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}
