package graph

import (
	"math"
	"math/rand"
	"testing"
)

// mincutws_test.go pins GlobalMinCutWS to the dense GlobalMinCut
// reference over randomized multigraphs. All weights are small
// integers (or +Inf masks), so weight sums are exactly representable
// and the unique minimum-cut value must match bit for bit regardless
// of the maximum-adjacency ordering each kernel happens to use.

// randMultigraph builds a connected-ish random multigraph with nv
// vertices and ~ne edges of integral weight 1..maxW.
func randMultigraph(rng *rand.Rand, nv, ne, maxW int) *Graph {
	g := New(nv)
	// Random spanning chain first so most graphs are connected.
	perm := rng.Perm(nv)
	for i := 1; i < nv; i++ {
		g.AddEdge(perm[i-1], perm[i], float64(1+rng.Intn(maxW)))
	}
	for i := 0; i < ne; i++ {
		u, v := rng.Intn(nv), rng.Intn(nv)
		g.AddEdge(u, v, float64(1+rng.Intn(maxW)))
	}
	return g
}

// weightsAndMask materializes an integral weight table with a random
// +Inf exclusion mask, returning both the table and the matching
// closure for the dense reference.
func weightsAndMask(rng *rand.Rand, g *Graph, maskFrac float64) ([]float64, WeightFunc) {
	w := make([]float64, g.NumEdges())
	for eid := range w {
		if rng.Float64() < maskFrac {
			w[eid] = math.Inf(1)
		} else {
			w[eid] = g.Edge(eid).Weight
		}
	}
	wf := func(eid int) float64 { return w[eid] }
	return w, wf
}

func TestGlobalMinCutWSMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ws := NewWorkspace() // reused across all cases on purpose
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(14)
		g := randMultigraph(rng, nv, rng.Intn(3*nv), 4)
		w, wf := weightsAndMask(rng, g, []float64{0, 0.2, 0.5}[trial%3])

		// Random vertex subset (sometimes everything).
		var verts []int
		if trial%4 == 0 {
			for v := 0; v < nv; v++ {
				verts = append(verts, v)
			}
		} else {
			for v := 0; v < nv; v++ {
				if rng.Float64() < 0.7 {
					verts = append(verts, v)
				}
			}
		}

		want, wantOK := g.GlobalMinCut(verts, wf)
		got, gotOK := g.GlobalMinCutWS(ws, verts, w, nil)
		if want != got || wantOK != gotOK {
			t.Fatalf("trial %d: dense (%v,%v) != ws (%v,%v) over %d verts of %d, %d edges",
				trial, want, wantOK, got, gotOK, len(verts), nv, g.NumEdges())
		}
	}
}

func TestGlobalMinCutWSExtraEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ws := NewWorkspace()
	for trial := 0; trial < 100; trial++ {
		nv := 3 + rng.Intn(12)
		g := randMultigraph(rng, nv, rng.Intn(2*nv), 3)
		w, _ := weightsAndMask(rng, g, 0.3)

		// Overlay edges: the WS kernel sees them as `extra`; the dense
		// reference sees them appended to a copy of the graph.
		var extra []Edge
		for i := 0; i < rng.Intn(5); i++ {
			extra = append(extra, Edge{U: rng.Intn(nv), V: rng.Intn(nv), Weight: float64(1 + rng.Intn(3))})
		}
		g2 := New(nv)
		for eid := 0; eid < g.NumEdges(); eid++ {
			e := g.Edge(eid)
			g2.AddEdge(e.U, e.V, e.Weight)
		}
		for _, e := range extra {
			g2.AddEdge(e.U, e.V, e.Weight)
		}
		wf2 := func(eid int) float64 {
			if eid < len(w) {
				return w[eid]
			}
			return g2.Edge(eid).Weight
		}

		verts := make([]int, 0, nv)
		for v := 0; v < nv; v++ {
			if rng.Float64() < 0.8 {
				verts = append(verts, v)
			}
		}

		want, wantOK := g2.GlobalMinCut(verts, wf2)
		got, gotOK := g.GlobalMinCutWS(ws, verts, w, extra)
		if want != got || wantOK != gotOK {
			t.Fatalf("trial %d: dense (%v,%v) != ws (%v,%v) with %d extra edges",
				trial, want, wantOK, got, gotOK, len(extra))
		}
	}
}

func TestGlobalMinCutWSEdgeCases(t *testing.T) {
	ws := NewWorkspace()
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	w := []float64{1, 1, 1}

	if got, ok := g.GlobalMinCutWS(ws, nil, w, nil); got != 0 || ok {
		t.Fatalf("empty vertex set: got (%v,%v), want (0,false)", got, ok)
	}
	if got, ok := g.GlobalMinCutWS(ws, []int{0}, w, nil); got != 0 || ok {
		t.Fatalf("single vertex: got (%v,%v), want (0,false)", got, ok)
	}
	// {0,1,2} is a path: min cut 1.
	if got, ok := g.GlobalMinCutWS(ws, []int{0, 1, 2}, w, nil); got != 1 || !ok {
		t.Fatalf("path: got (%v,%v), want (1,true)", got, ok)
	}
	// {0,1,3} spans two components: disconnected.
	if got, ok := g.GlobalMinCutWS(ws, []int{0, 1, 3}, w, nil); got != 0 || !ok {
		t.Fatalf("disconnected: got (%v,%v), want (0,true)", got, ok)
	}
	// Vertex 5 is isolated: disconnected.
	if got, ok := g.GlobalMinCutWS(ws, []int{0, 1, 5}, w, nil); got != 0 || !ok {
		t.Fatalf("isolated vertex: got (%v,%v), want (0,true)", got, ok)
	}
	// Masking the only path edge disconnects.
	w2 := []float64{math.Inf(1), 1, 1}
	if got, ok := g.GlobalMinCutWS(ws, []int{0, 1, 2}, w2, nil); got != 0 || !ok {
		t.Fatalf("masked edge: got (%v,%v), want (0,true)", got, ok)
	}
	// An extra edge can stitch the mask back together.
	if got, ok := g.GlobalMinCutWS(ws, []int{0, 1, 2}, w2, []Edge{{U: 0, V: 1, Weight: 1}}); got != 1 || !ok {
		t.Fatalf("extra edge bridge: got (%v,%v), want (1,true)", got, ok)
	}
}
