package graph

// heap.go is the typed priority queue of the compute kernel: a 4-ary
// min-heap specialized to pqItem, replacing container/heap. The old
// interface-based API boxed every Push into an interface{} — one heap
// allocation per edge relaxation, millions per analysis sweep.
//
// Ordering is a hard contract, not an implementation detail. Entries
// compare by (dist, vertex): a vertex is only ever re-pushed with a
// strictly smaller distance, so the (dist, v) pair is unique among
// live entries and the comparison is a strict total order. Pops from
// any correct min-heap under a total order come out globally sorted,
// which makes the pop sequence independent of heap arity — the
// equivalence suite pins the kernel against a container/heap reference
// using the same tie-break.

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int32
	dist float64
}

// pqLess is the kernel's total order: distance first, then vertex id.
func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.v < b.v
}

// heap4 is a 4-ary min-heap over pqItem. The zero value is ready to
// use; reset keeps the backing array for reuse across runs. The wider
// fan-out halves tree depth versus a binary heap, trading slightly
// more comparisons per sift-down for fewer cache-missing levels —
// Dijkstra is push-heavy, and pushes only walk the cheap parent chain.
type heap4 struct {
	items []pqItem
}

func (h *heap4) len() int { return len(h.items) }

func (h *heap4) reset() { h.items = h.items[:0] }

// push inserts an entry and sifts it up to its (dist, v) position.
func (h *heap4) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !pqLess(it, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = it
}

// pop removes and returns the minimum entry.
func (h *heap4) pop() pqItem {
	items := h.items
	top := items[0]
	last := items[len(items)-1]
	items = items[:len(items)-1]
	h.items = items
	n := len(items)
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if pqLess(items[c], items[min]) {
				min = c
			}
		}
		if !pqLess(items[min], last) {
			break
		}
		items[i] = items[min]
		i = min
	}
	items[i] = last
	return top
}
