package graph

import (
	"math"
	"math/rand"
	"testing"
)

// maxflow_test.go pins MaxFlowWS to a naive Edmonds-Karp reference
// over a dense residual matrix. Both sides use small integer
// capacities, so float64 arithmetic is exact and every comparison is
// equality, not tolerance.

// refMaxFlow is BFS-augmenting-path Ford-Fulkerson over an adjacency
// matrix. Parallel undirected edges merge by capacity sum, which
// leaves the max-flow value unchanged.
func refMaxFlow(n int, edges []Edge, caps func(i int) float64, src, dst int) float64 {
	res := make([][]float64, n)
	for i := range res {
		res[i] = make([]float64, n)
	}
	for i, e := range edges {
		c := caps(i)
		if c <= 0 || math.IsInf(c, 1) || math.IsNaN(c) || e.U == e.V {
			continue
		}
		res[e.U][e.V] += c
		res[e.V][e.U] += c
	}
	total := 0.0
	parent := make([]int, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[dst] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if res[u][v] > 0 && parent[v] == -1 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[dst] == -1 {
			return total
		}
		b := math.Inf(1)
		for v := dst; v != src; v = parent[v] {
			if res[parent[v]][v] < b {
				b = res[parent[v]][v]
			}
		}
		for v := dst; v != src; v = parent[v] {
			res[parent[v]][v] -= b
			res[v][parent[v]] += b
		}
		total += b
	}
}

// combined returns the base edges plus extras as one list with a
// capacity accessor, the shape refMaxFlow wants.
func combined(g *Graph, caps []float64, extra []Edge) ([]Edge, func(i int) float64) {
	all := make([]Edge, 0, len(g.edges)+len(extra))
	all = append(all, g.edges...)
	all = append(all, extra...)
	return all, func(i int) float64 {
		if i < len(g.edges) {
			return caps[i]
		}
		return extra[i-len(g.edges)].Weight
	}
}

func TestMaxFlowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ws := NewWorkspace()
	for trial := 0; trial < 300; trial++ {
		g := randomMultigraph(rng)
		n := g.NumVertices()
		caps := make([]float64, g.NumEdges())
		for i := range caps {
			switch rng.Intn(8) {
			case 0:
				caps[i] = 0 // excluded
			case 1:
				caps[i] = math.Inf(1) // excluded
			default:
				caps[i] = float64(1 + rng.Intn(6))
			}
		}
		var extra []Edge
		for i := rng.Intn(4); i > 0; i-- {
			extra = append(extra, Edge{
				U: rng.Intn(n), V: rng.Intn(n), Weight: float64(rng.Intn(5)),
			})
		}
		src, dst := rng.Intn(n), rng.Intn(n)

		got := g.MaxFlowWS(ws, src, dst, caps, extra)
		all, capOf := combined(g, caps, extra)
		want := 0.0
		if src != dst {
			want = refMaxFlow(n, all, capOf, src, dst)
		}
		if got != want {
			t.Fatalf("trial %d: MaxFlowWS(%d,%d) = %v, reference %v", trial, src, dst, got, want)
		}
	}
}

// TestMaxFlowReuseMatchesFresh checks a long-lived workspace answers
// exactly like a fresh one, interleaved with other kernel queries that
// share its scratch.
func TestMaxFlowReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	reused := NewWorkspace()
	for trial := 0; trial < 150; trial++ {
		g := randomMultigraph(rng)
		n := g.NumVertices()
		caps := make([]float64, g.NumEdges())
		for i := range caps {
			caps[i] = float64(1 + rng.Intn(4))
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		// Interleave a Dijkstra query so dist/heap scratch churns
		// between flow queries.
		g.ShortestDistancesWS(reused, src, nil, nil)
		got := g.MaxFlowWS(reused, src, dst, caps, nil)
		want := NewWorkspace()
		if fresh := g.MaxFlowWS(want, src, dst, caps, nil); got != fresh {
			t.Fatalf("trial %d: reused ws = %v, fresh ws = %v", trial, got, fresh)
		}
	}
}

// TestMaxFlowEpochWrap runs flow queries across the workspace epoch
// wrap-around: MaxFlowWS does not stamp epochs itself, but it shares
// the workspace with kernels that do, and must stay correct when the
// wrap clears their stamps between its calls.
func TestMaxFlowEpochWrap(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	caps := []float64{3, 2, 4, 5}
	ws := NewWorkspace()
	check := func() {
		t.Helper()
		if f := g.MaxFlowWS(ws, 0, 3, caps, nil); f != 5 {
			t.Fatalf("flow after epoch %d = %v, want 5", ws.epoch, f)
		}
		if d := g.ShortestDistancesWS(ws, 0, nil, nil); d[3] != 2 {
			t.Fatalf("dist after epoch %d = %v", ws.epoch, d)
		}
	}
	check()
	ws.epoch = math.MaxUint32 - 1
	check() // runs at MaxUint32
	check() // wraps: stamps cleared, epoch restarts at 1
	check()
}

func TestMaxFlowDegenerate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	ws := NewWorkspace()
	caps := []float64{7}
	if f := g.MaxFlowWS(ws, 0, 0, caps, nil); f != 0 {
		t.Fatalf("src==dst flow = %v, want 0", f)
	}
	if f := g.MaxFlowWS(ws, 0, 2, caps, nil); f != 0 {
		t.Fatalf("disconnected flow = %v, want 0", f)
	}
	if f := g.MaxFlowWS(ws, -1, 1, caps, nil); f != 0 {
		t.Fatalf("out-of-range src flow = %v, want 0", f)
	}
	// A pure-extra path: flow exists even when every base edge is
	// excluded.
	if f := g.MaxFlowWS(ws, 0, 2, []float64{0}, []Edge{{U: 0, V: 2, Weight: 3}}); f != 3 {
		t.Fatalf("extra-edge flow = %v, want 3", f)
	}
}

func TestMaxFlowWSZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	g, ws, _ := allocFixture()
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = float64(1 + i%5)
	}
	extra := []Edge{{U: 1, V: 7, Weight: 2}}
	g.MaxFlowWS(ws, 0, 399, caps, extra) // warm: scratch growth
	if avg := testing.AllocsPerRun(50, func() {
		g.MaxFlowWS(ws, 0, 399, caps, extra)
	}); avg != 0 {
		t.Fatalf("MaxFlowWS allocates %.1f per run, want 0", avg)
	}
}
