package graph_test

import (
	"fmt"

	"intertubes/internal/graph"
)

func ExampleGraph_ShortestPath() {
	// A diamond: 0-1-3 is cheaper than 0-2-3.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 3)
	p, _ := g.ShortestPath(0, 3, nil)
	fmt.Println(p.Nodes, p.Weight)
	// Output: [0 1 3] 2
}

func ExampleGraph_KShortestPaths() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 3)
	for _, p := range g.KShortestPaths(0, 3, 2, nil) {
		fmt.Println(p.Nodes, p.Weight)
	}
	// Output:
	// [0 1 3] 2
	// [0 2 3] 4
}
