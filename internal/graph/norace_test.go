//go:build !race

package graph

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
