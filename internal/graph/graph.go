// Package graph provides the routing substrate: an undirected
// multigraph with integer vertices, Dijkstra shortest paths under
// caller-supplied edge weights, Yen's k-shortest loopless paths, and
// connectivity utilities. It is an allocation-aware compute kernel:
// the mitigation analyses in §5 of the paper run many thousands of
// shortest-path queries per experiment, so adjacency lives in a
// compact CSR layout, the priority queue is a typed 4-ary heap, and
// all per-query scratch state is reusable through Workspace (zero
// steady-state allocations for distance queries).
package graph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Edge is an undirected edge between vertices U and V with a default
// weight. Parallel edges and self-loops are permitted (the conduit
// graph has parallel deployments, e.g. Kansas City–Denver).
type Edge struct {
	U, V   int
	Weight float64
}

// halfEdge is one direction of an edge as seen from a vertex.
type halfEdge struct {
	to   int32
	edge int32
}

// topology is the immutable compiled form of the graph: a compressed-
// sparse-row adjacency (half[off[v]:off[v+1]] are v's incident half-
// edges, in edge-insertion order) plus the default weight table. It is
// rebuilt lazily after mutations; a built topology is never modified,
// so concurrent queries may share it freely.
type topology struct {
	off        []int32
	half       []halfEdge
	defWeights []float64
}

// Graph is an undirected multigraph. The zero value is an empty graph
// with no vertices; use New to pre-size. Queries compile the edge list
// into a CSR adjacency on first use; mutations (AddVertex, AddEdge)
// invalidate it. Concurrent queries are safe; mutating concurrently
// with queries is not (and never was).
type Graph struct {
	n      int
	edges  []Edge
	topo   atomic.Pointer[topology]
	topoMu sync.Mutex
}

// New returns a graph with n vertices (0..n-1) and no edges.
func New(n int) *Graph {
	return &Graph{n: n}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.n++
	g.topo.Store(nil)
	return g.n - 1
}

// AddEdge inserts an undirected edge u-v with the given weight and
// returns its edge id. It panics if either endpoint is out of range or
// the weight is negative or NaN.
func (g *Graph) AddEdge(u, v int, weight float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if weight < 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("graph: AddEdge weight %v must be non-negative", weight))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: weight})
	g.topo.Store(nil)
	return id
}

// topoView returns the compiled CSR topology, building it if a
// mutation invalidated the previous one. Safe for concurrent use.
func (g *Graph) topoView() *topology {
	if t := g.topo.Load(); t != nil {
		return t
	}
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	if t := g.topo.Load(); t != nil {
		return t
	}
	t := buildTopology(g.n, g.edges)
	g.topo.Store(t)
	return t
}

// buildTopology compiles the edge list with a counting sort. Filling
// in ascending edge-id order (u's half before v's) reproduces exactly
// the per-vertex adjacency order the old slice-of-slices layout got
// from its AddEdge appends — iteration order is part of the kernel's
// determinism contract.
func buildTopology(n int, edges []Edge) *topology {
	off := make([]int32, n+1)
	for i := range edges {
		e := &edges[i]
		off[e.U+1]++
		if e.U != e.V {
			off[e.V+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	half := make([]halfEdge, off[n])
	cur := make([]int32, n)
	copy(cur, off[:n])
	defW := make([]float64, len(edges))
	for i := range edges {
		e := &edges[i]
		half[cur[e.U]] = halfEdge{to: int32(e.V), edge: int32(i)}
		cur[e.U]++
		if e.U != e.V {
			half[cur[e.V]] = halfEdge{to: int32(e.U), edge: int32(i)}
			cur[e.V]++
		}
		defW[i] = e.Weight
	}
	return &topology{off: off, half: half, defWeights: defW}
}

// neighbors returns v's incident half-edges.
func (t *topology) neighbors(v int32) []halfEdge {
	return t.half[t.off[v]:t.off[v+1]]
}

// Degree returns the number of incident edge endpoints at v
// (a self-loop counts once).
func (g *Graph) Degree(v int) int {
	t := g.topoView()
	return int(t.off[v+1] - t.off[v])
}

// Neighbors calls fn for every incident edge of v with the neighbor
// vertex and edge id.
func (g *Graph) Neighbors(v int, fn func(to, edgeID int)) {
	for _, h := range g.topoView().neighbors(int32(v)) {
		fn(int(h.to), int(h.edge))
	}
}

// Path is a walk through the graph: Nodes has one more element than
// Edges, and Edges[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes  []int
	Edges  []int
	Weight float64
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int { return len(p.Edges) }

// Clone deep-copies the path.
func (p Path) Clone() Path {
	q := Path{
		Nodes:  append([]int(nil), p.Nodes...),
		Edges:  append([]int(nil), p.Edges...),
		Weight: p.Weight,
	}
	return q
}

// WeightFunc maps an edge id to its traversal cost for one query.
// Returning +Inf excludes the edge. A nil WeightFunc uses each edge's
// default weight.
//
// The kernel materializes wf into a flat table once per sweep (see
// Weights), so wf is called exactly once per edge id per query — it
// must be a pure function of the edge id for the query's duration.
type WeightFunc func(edgeID int) float64

func (g *Graph) weightOf(wf WeightFunc, id int) float64 {
	if wf == nil {
		return g.edges[id].Weight
	}
	return wf(id)
}

// Weights materializes wf into dst (resized as needed): dst[e] = wf(e)
// for every edge id, with nil wf meaning default weights. Hot loops
// index the table instead of calling a closure per edge relaxation.
func (g *Graph) Weights(wf WeightFunc, dst []float64) []float64 {
	ne := len(g.edges)
	if cap(dst) < ne {
		dst = make([]float64, ne)
	}
	dst = dst[:ne]
	if wf == nil {
		copy(dst, g.topoView().defWeights)
		return dst
	}
	for i := range dst {
		dst[i] = wf(i)
	}
	return dst
}

// ShortestPath returns the minimum-weight path from src to dst under
// wf, or ok=false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int, wf WeightFunc) (Path, bool) {
	ws := getWS()
	defer putWS(ws)
	return g.ShortestPathWS(ws, src, dst, wf)
}

// ShortestPathWS is ShortestPath using the caller's workspace. Only
// the returned Path is allocated.
func (g *Graph) ShortestPathWS(ws *Workspace, src, dst int, wf WeightFunc) (Path, bool) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return Path{}, false
	}
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	g.dijkstra(ws, t, weights, int32(src), int32(dst))
	if !ws.visited(int32(dst)) {
		return Path{}, false
	}
	return g.tracePath(ws, src, dst), true
}

// ShortestDistance returns the minimum path weight from src to dst
// under wf (ok=false if unreachable) without materializing the path.
func (g *Graph) ShortestDistance(src, dst int, wf WeightFunc) (float64, bool) {
	ws := getWS()
	defer putWS(ws)
	return g.ShortestDistanceWS(ws, src, dst, wf)
}

// ShortestDistanceWS is ShortestDistance using the caller's workspace:
// zero allocations in the steady state.
func (g *Graph) ShortestDistanceWS(ws *Workspace, src, dst int, wf WeightFunc) (float64, bool) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return math.Inf(1), false
	}
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	g.dijkstra(ws, t, weights, int32(src), int32(dst))
	if !ws.visited(int32(dst)) {
		return math.Inf(1), false
	}
	return ws.dist[dst], true
}

// ShortestDistances runs Dijkstra from src and returns the full
// distance array (unreachable vertices get +Inf).
func (g *Graph) ShortestDistances(src int, wf WeightFunc) []float64 {
	ws := getWS()
	defer putWS(ws)
	return g.ShortestDistancesWS(ws, src, wf, nil)
}

// ShortestDistancesWS is ShortestDistances using the caller's
// workspace, writing into dst (resized as needed; nil allocates). With
// a reused workspace and a caller-owned dst it is allocation-free.
func (g *Graph) ShortestDistancesWS(ws *Workspace, src int, wf WeightFunc, dst []float64) []float64 {
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	g.dijkstra(ws, t, weights, int32(src), -1)
	return ws.exportDistances(g.n, dst)
}

// exportDistances resolves the epoch-stamped distance state into a
// dense array.
func (w *Workspace) exportDistances(n int, dst []float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	inf := math.Inf(1)
	for i := range dst {
		if w.stamp[i] == w.epoch {
			dst[i] = w.dist[i]
		} else {
			dst[i] = inf
		}
	}
	return dst
}

// dijkstra computes shortest distances from src over the materialized
// weight table, stamping dist/parent into ws; if dst >= 0 it stops
// once dst is settled. Ties between equal-distance heap entries break
// on vertex id (see heap.go) — an explicit contract the equivalence
// suite pins.
func (g *Graph) dijkstra(ws *Workspace, t *topology, weights []float64, src, dst int32) {
	ws.begin(g.n)
	ws.stamp[src] = ws.epoch
	ws.dist[src] = 0
	ws.parent[src] = -1
	h := &ws.heap
	h.push(pqItem{v: src, dist: 0})
	for h.len() > 0 {
		it := h.pop()
		v := it.v
		if it.dist > ws.dist[v] {
			continue // stale entry
		}
		if v == dst {
			return
		}
		for _, he := range t.half[t.off[v]:t.off[v+1]] {
			w := weights[he.edge]
			if math.IsInf(w, 1) {
				continue
			}
			nd := it.dist + w
			if ws.stamp[he.to] == ws.epoch && nd >= ws.dist[he.to] {
				continue
			}
			ws.stamp[he.to] = ws.epoch
			ws.dist[he.to] = nd
			ws.parent[he.to] = he.edge
			h.push(pqItem{v: he.to, dist: nd})
		}
	}
}

// tracePath materializes the src->dst path from the workspace's
// parent-edge state: one counting walk to size the slices exactly,
// then one backward fill — no append growth, no endpoint re-walk.
func (g *Graph) tracePath(ws *Workspace, src, dst int) Path {
	hops := 0
	for v := dst; v != src; hops++ {
		e := &g.edges[ws.parent[v]]
		if e.U == v {
			v = e.V
		} else {
			v = e.U
		}
	}
	if hops == 0 {
		return Path{Nodes: []int{src}, Weight: ws.dist[dst]}
	}
	nodes := make([]int, hops+1)
	edges := make([]int, hops)
	nodes[hops] = dst
	v := dst
	for i := hops - 1; i >= 0; i-- {
		eid := ws.parent[v]
		edges[i] = int(eid)
		e := &g.edges[eid]
		if e.U == v {
			v = e.V
		} else {
			v = e.U
		}
		nodes[i] = v
	}
	return Path{Nodes: nodes, Edges: edges, Weight: ws.dist[dst]}
}

// Components returns the connected components as vertex lists, in
// ascending order of their smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.n
	t := g.topoView()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	var stack []int32
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], int32(s))
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, int(v))
			for _, h := range t.neighbors(v) {
				if comp[h.to] == -1 {
					comp[h.to] = id
					stack = append(stack, h.to)
				}
			}
		}
		out = append(out, members)
	}
	return out
}

// Connected reports whether u and v are in the same component
// (ignoring weights; +Inf default weights still connect).
func (g *Graph) Connected(u, v int) bool {
	if u == v {
		return true
	}
	p, ok := g.ShortestPath(u, v, func(int) float64 { return 1 })
	return ok && len(p.Edges) > 0
}

// MinimaxDistances computes, for every vertex, the minimum over all
// paths from src of the maximum edge weight along the path (the
// bottleneck shortest path). Unreachable vertices get +Inf. The §5
// shared-risk analyses use it with per-conduit sharing degrees as
// weights: the result is the best achievable worst-case sharing when
// routing from src.
func (g *Graph) MinimaxDistances(src int, wf WeightFunc) []float64 {
	ws := getWS()
	defer putWS(ws)
	return g.MinimaxDistancesWS(ws, src, wf, nil)
}

// MinimaxDistancesWS is MinimaxDistances using the caller's workspace,
// writing into dst (resized as needed; nil allocates).
func (g *Graph) MinimaxDistancesWS(ws *Workspace, src int, wf WeightFunc, dst []float64) []float64 {
	t := g.topoView()
	weights := ws.materialize(g, t, wf)
	ws.begin(g.n)
	ws.stamp[src] = ws.epoch
	ws.dist[src] = 0
	h := &ws.heap
	h.push(pqItem{v: int32(src), dist: 0})
	for h.len() > 0 {
		it := h.pop()
		v := it.v
		if it.dist > ws.dist[v] {
			continue
		}
		for _, he := range t.half[t.off[v]:t.off[v+1]] {
			w := weights[he.edge]
			if math.IsInf(w, 1) {
				continue
			}
			nd := math.Max(it.dist, w)
			if ws.stamp[he.to] == ws.epoch && nd >= ws.dist[he.to] {
				continue
			}
			ws.stamp[he.to] = ws.epoch
			ws.dist[he.to] = nd
			h.push(pqItem{v: he.to, dist: nd})
		}
	}
	return ws.exportDistances(g.n, dst)
}
