// Package graph provides the routing substrate: an undirected
// multigraph with integer vertices, Dijkstra shortest paths under
// caller-supplied edge weights, Yen's k-shortest loopless paths, and
// connectivity utilities. It is deliberately small and allocation-
// conscious: the mitigation analyses in §5 of the paper run many
// thousands of shortest-path queries per experiment.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is an undirected edge between vertices U and V with a default
// weight. Parallel edges and self-loops are permitted (the conduit
// graph has parallel deployments, e.g. Kansas City–Denver).
type Edge struct {
	U, V   int
	Weight float64
}

type halfEdge struct {
	to   int32
	edge int32
}

// Graph is an undirected multigraph. The zero value is an empty graph
// with no vertices; use New to pre-size.
type Graph struct {
	adj   [][]halfEdge
	edges []Edge
}

// New returns a graph with n vertices (0..n-1) and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts an undirected edge u-v with the given weight and
// returns its edge id. It panics if either endpoint is out of range or
// the weight is negative or NaN.
func (g *Graph) AddEdge(u, v int, weight float64) int {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	if weight < 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("graph: AddEdge weight %v must be non-negative", weight))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: weight})
	g.adj[u] = append(g.adj[u], halfEdge{to: int32(v), edge: int32(id)})
	if u != v {
		g.adj[v] = append(g.adj[v], halfEdge{to: int32(u), edge: int32(id)})
	}
	return id
}

// Degree returns the number of incident edge endpoints at v
// (a self-loop counts once).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for every incident edge of v with the neighbor
// vertex and edge id.
func (g *Graph) Neighbors(v int, fn func(to, edgeID int)) {
	for _, h := range g.adj[v] {
		fn(int(h.to), int(h.edge))
	}
}

// Path is a walk through the graph: Nodes has one more element than
// Edges, and Edges[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes  []int
	Edges  []int
	Weight float64
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int { return len(p.Edges) }

// Clone deep-copies the path.
func (p Path) Clone() Path {
	q := Path{
		Nodes:  append([]int(nil), p.Nodes...),
		Edges:  append([]int(nil), p.Edges...),
		Weight: p.Weight,
	}
	return q
}

// WeightFunc maps an edge id to its traversal cost for one query.
// Returning +Inf excludes the edge. A nil WeightFunc uses each edge's
// default weight.
type WeightFunc func(edgeID int) float64

func (g *Graph) weightOf(wf WeightFunc, id int) float64 {
	if wf == nil {
		return g.edges[id].Weight
	}
	return wf(id)
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int32
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-weight path from src to dst under
// wf, or ok=false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int, wf WeightFunc) (Path, bool) {
	if src < 0 || src >= len(g.adj) || dst < 0 || dst >= len(g.adj) {
		return Path{}, false
	}
	dist, parentEdge := g.dijkstra(src, dst, wf)
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return g.tracePath(src, dst, dist, parentEdge), true
}

// ShortestDistances runs Dijkstra from src and returns the full
// distance array (unreachable vertices get +Inf).
func (g *Graph) ShortestDistances(src int, wf WeightFunc) []float64 {
	dist, _ := g.dijkstra(src, -1, wf)
	return dist
}

// dijkstra computes distances from src; if dst >= 0 it may stop once
// dst is settled. parentEdge[v] is the edge id used to reach v
// (-1 for src/unreached).
func (g *Graph) dijkstra(src, dst int, wf WeightFunc) (dist []float64, parentEdge []int32) {
	n := len(g.adj)
	dist = make([]float64, n)
	parentEdge = make([]int32, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	dist[src] = 0
	q := pq{{v: int32(src), dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		v := int(it.v)
		if it.dist > dist[v] {
			continue // stale entry
		}
		if v == dst {
			return dist, parentEdge
		}
		for _, h := range g.adj[v] {
			w := g.weightOf(wf, int(h.edge))
			if math.IsInf(w, 1) {
				continue
			}
			nd := it.dist + w
			if nd < dist[h.to] {
				dist[h.to] = nd
				parentEdge[h.to] = h.edge
				heap.Push(&q, pqItem{v: h.to, dist: nd})
			}
		}
	}
	return dist, parentEdge
}

func (g *Graph) tracePath(src, dst int, dist []float64, parentEdge []int32) Path {
	var edges []int
	v := dst
	for v != src {
		eid := int(parentEdge[v])
		edges = append(edges, eid)
		e := g.edges[eid]
		if e.U == v {
			v = e.V
		} else {
			v = e.U
		}
	}
	// Reverse edges and build node list.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	nodes := make([]int, 0, len(edges)+1)
	nodes = append(nodes, src)
	cur := src
	for _, eid := range edges {
		e := g.edges[eid]
		if e.U == cur {
			cur = e.V
		} else {
			cur = e.U
		}
		nodes = append(nodes, cur)
	}
	return Path{Nodes: nodes, Edges: edges, Weight: dist[dst]}
}

// Components returns the connected components as vertex lists, in
// ascending order of their smallest vertex.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, h := range g.adj[v] {
				if comp[h.to] == -1 {
					comp[h.to] = id
					stack = append(stack, int(h.to))
				}
			}
		}
		out = append(out, members)
	}
	return out
}

// Connected reports whether u and v are in the same component
// (ignoring weights; +Inf default weights still connect).
func (g *Graph) Connected(u, v int) bool {
	if u == v {
		return true
	}
	p, ok := g.ShortestPath(u, v, func(int) float64 { return 1 })
	return ok && len(p.Edges) > 0
}

// MinimaxDistances computes, for every vertex, the minimum over all
// paths from src of the maximum edge weight along the path (the
// bottleneck shortest path). Unreachable vertices get +Inf. The §5
// shared-risk analyses use it with per-conduit sharing degrees as
// weights: the result is the best achievable worst-case sharing when
// routing from src.
func (g *Graph) MinimaxDistances(src int, wf WeightFunc) []float64 {
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := pq{{v: int32(src), dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		v := int(it.v)
		if it.dist > dist[v] {
			continue
		}
		for _, h := range g.adj[v] {
			w := g.weightOf(wf, int(h.edge))
			if math.IsInf(w, 1) {
				continue
			}
			nd := math.Max(it.dist, w)
			if nd < dist[h.to] {
				dist[h.to] = nd
				heap.Push(&q, pqItem{v: h.to, dist: nd})
			}
		}
	}
	return dist
}
