package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestEdgeBetweennessPath(t *testing.T) {
	// Path 0-1-2-3: middle edge carries the most pairs.
	g := New(4)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e23 := g.AddEdge(2, 3, 1)
	bc := g.EdgeBetweenness(nil)
	// Ordered pairs crossing e12: (0,2),(0,3),(1,2),(1,3) and reverses = 8.
	if bc[e12] != 8 {
		t.Errorf("middle edge = %v, want 8", bc[e12])
	}
	// e01 carries (0,1),(0,2),(0,3) and reverses = 6.
	if bc[e01] != 6 || bc[e23] != 6 {
		t.Errorf("end edges = %v, %v, want 6", bc[e01], bc[e23])
	}
}

func TestEdgeBetweennessSplitsEqualPaths(t *testing.T) {
	// Square 0-1-3 and 0-2-3 with equal weights: the pair (0,3)
	// splits evenly across the two routes.
	g := New(4)
	e01 := g.AddEdge(0, 1, 1)
	e13 := g.AddEdge(1, 3, 1)
	e02 := g.AddEdge(0, 2, 1)
	e23 := g.AddEdge(2, 3, 1)
	bc := g.EdgeBetweenness(nil)
	// Each side edge: pairs (0,1)x2 full + (0,3)x2 half + (1,3)x2... let's
	// check symmetry instead of exact values.
	if math.Abs(bc[e01]-bc[e02]) > 1e-9 || math.Abs(bc[e13]-bc[e23]) > 1e-9 {
		t.Errorf("asymmetric betweenness: %v", bc)
	}
	if math.Abs(bc[e01]-bc[e13]) > 1e-9 {
		t.Errorf("path halves differ: %v vs %v", bc[e01], bc[e13])
	}
	// Total dependency conservation: sum over edges of betweenness
	// equals sum over ordered pairs of path length (hops weighted by
	// path share). For the square: 12 ordered pairs, adjacent pairs (8)
	// contribute 1 hop, opposite pairs (4... wait (0,3),(3,0),(1,2),(2,1))
	// contribute 2 hops each = 8+8 = 16.
	var total float64
	for _, v := range bc {
		total += v
	}
	if math.Abs(total-16) > 1e-9 {
		t.Errorf("total = %v, want 16", total)
	}
}

func TestEdgeBetweennessRespectsWeightFunc(t *testing.T) {
	g := New(3)
	direct := g.AddEdge(0, 2, 1)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 1)
	banned := func(eid int) float64 {
		if eid == direct {
			return math.Inf(1)
		}
		return 1
	}
	bc := g.EdgeBetweenness(banned)
	if bc[direct] != 0 {
		t.Errorf("banned edge has betweenness %v", bc[direct])
	}
	if bc[a] == 0 || bc[b] == 0 {
		t.Error("detour edges should carry paths")
	}
}

func TestGlobalMinCutBridge(t *testing.T) {
	// Two triangles joined by a single bridge: min cut 1.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	g.AddEdge(2, 3, 1) // bridge
	unit := func(int) float64 { return 1 }
	cut, ok := g.GlobalMinCut([]int{0, 1, 2, 3, 4, 5}, unit)
	if !ok || cut != 1 {
		t.Errorf("cut = %v,%v want 1", cut, ok)
	}
}

func TestGlobalMinCutCycle(t *testing.T) {
	// A 5-cycle needs 2 cuts.
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5, 1)
	}
	unit := func(int) float64 { return 1 }
	cut, ok := g.GlobalMinCut([]int{0, 1, 2, 3, 4}, unit)
	if !ok || cut != 2 {
		t.Errorf("cut = %v,%v want 2", cut, ok)
	}
}

func TestGlobalMinCutComplete(t *testing.T) {
	// K4 with unit weights: min cut 3.
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	unit := func(int) float64 { return 1 }
	cut, ok := g.GlobalMinCut([]int{0, 1, 2, 3}, unit)
	if !ok || cut != 3 {
		t.Errorf("cut = %v,%v want 3", cut, ok)
	}
}

func TestGlobalMinCutDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	unit := func(int) float64 { return 1 }
	cut, ok := g.GlobalMinCut([]int{0, 1, 2, 3}, unit)
	if !ok || cut != 0 {
		t.Errorf("disconnected cut = %v,%v want 0,true", cut, ok)
	}
}

func TestGlobalMinCutDegenerate(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	if _, ok := g.GlobalMinCut([]int{0}, nil); ok {
		t.Error("single vertex should not have a cut")
	}
	if _, ok := g.GlobalMinCut(nil, nil); ok {
		t.Error("empty vertex set should not have a cut")
	}
}

func TestGlobalMinCutSubset(t *testing.T) {
	// Restricting to a subset ignores outside edges.
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1) // triangle over {0,1,2}
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	unit := func(int) float64 { return 1 }
	cut, ok := g.GlobalMinCut([]int{0, 1, 2}, unit)
	if !ok || cut != 2 {
		t.Errorf("triangle cut = %v,%v want 2", cut, ok)
	}
}

// Brute-force comparison on random small graphs: Stoer-Wagner equals
// the minimum over all 2^(n-1) bipartitions.
func TestGlobalMinCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	unit := func(int) float64 { return 1 }
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, 1)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		verts := make([]int, n)
		for i := range verts {
			verts[i] = i
		}
		got, ok := g.GlobalMinCut(verts, unit)
		if !ok {
			t.Fatal("no cut")
		}
		want := bruteMinCut(g, n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: stoer-wagner %v != brute %v", trial, got, want)
		}
	}
}

func bruteMinCut(g *Graph, n int) float64 {
	best := math.Inf(1)
	for mask := 1; mask < (1 << (n - 1)); mask++ {
		var cut float64
		for eid := 0; eid < g.NumEdges(); eid++ {
			e := g.Edge(eid)
			su := mask>>(e.U)&1 == 1
			sv := mask>>(e.V)&1 == 1
			// vertex n-1 is always on side 0 (mask has n-1 bits)
			if e.U == n-1 {
				su = false
			}
			if e.V == n-1 {
				sv = false
			}
			if su != sv {
				cut++
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}
