package records

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// index.go implements the search side of the paper's methodology: the
// authors drove "a systematic search for government-related public
// filings" with queries like "los angeles to san francisco fiber iru
// at&t sprint". We index the corpus with a TF-IDF-weighted inverted
// index and score queries by accumulated term weight.

// Tokenize lowercases s and splits it into letter/digit runs.
// Punctuation (including the '&' in AT&T) separates tokens, which is
// what a person typing search terms effectively does too.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

type posting struct {
	doc int32
	tf  float64
}

// Index is an inverted index over a Corpus.
type Index struct {
	corpus   *Corpus
	postings map[string][]posting
	docLen   []float64
}

// BuildIndex indexes every document's title and body.
func BuildIndex(c *Corpus) *Index {
	idx := &Index{
		corpus:   c,
		postings: make(map[string][]posting),
		docLen:   make([]float64, len(c.Docs)),
	}
	for i, doc := range c.Docs {
		counts := make(map[string]int)
		toks := Tokenize(doc.Title + " " + doc.Body)
		for _, t := range toks {
			counts[t]++
		}
		idx.docLen[i] = float64(len(toks))
		for t, n := range counts {
			idx.postings[t] = append(idx.postings[t], posting{doc: int32(i), tf: float64(n)})
		}
	}
	return idx
}

// Result is one search hit.
type Result struct {
	DocID int
	Score float64
}

// Search scores documents against the query by TF-IDF sum and returns
// the top k hits, best first. Ties break by document id for
// determinism.
func (idx *Index) Search(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	nDocs := float64(len(idx.corpus.Docs))
	scores := make(map[int32]float64)
	seen := make(map[string]bool)
	for _, t := range Tokenize(query) {
		if seen[t] {
			continue
		}
		seen[t] = true
		ps := idx.postings[t]
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + nDocs/float64(len(ps)))
		for _, p := range ps {
			// Length-normalized TF.
			scores[p.doc] += idf * p.tf / math.Sqrt(idx.docLen[p.doc])
		}
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Result{DocID: int(doc), Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Doc returns the indexed document by id.
func (idx *Index) Doc(id int) Document { return idx.corpus.Docs[id] }
