package records

import (
	"strings"
	"testing"
)

var testISPs = []string{"Level 3", "AT&T", "Sprint", "Comcast", "Verizon", "Cox", "Zayo"}

func testTruth() GroundTruth {
	return GroundTruth{Tenants: map[ConduitRef][]string{
		NewConduitRef("Salt Lake City,UT", "Denver,CO"):     {"Level 3", "AT&T", "Sprint", "Verizon"},
		NewConduitRef("Sacramento,CA", "Salt Lake City,UT"): {"Level 3", "Sprint"},
		NewConduitRef("Sacramento,CA", "Palo Alto,CA"):      {"Level 3"},
		NewConduitRef("Gainesville,FL", "Ocala,FL"):         {"Level 3", "Cox", "Comcast"},
		NewConduitRef("Houston,TX", "Dallas,TX"):            {"AT&T", "Verizon", "Zayo"},
		NewConduitRef("Phoenix,AZ", "Tucson,AZ"):            {"Level 3", "AT&T", "Sprint", "Cox", "Zayo"},
	}}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Seed: 1}
	c1 := Generate(testTruth(), testISPs, opts)
	c2 := Generate(testTruth(), testISPs, opts)
	if len(c1.Docs) != len(c2.Docs) {
		t.Fatalf("doc counts differ: %d vs %d", len(c1.Docs), len(c2.Docs))
	}
	for i := range c1.Docs {
		if c1.Docs[i] != c2.Docs[i] {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestGenerateFullCoverageNamesAllTenants(t *testing.T) {
	c := Generate(testTruth(), testISPs, Options{
		Coverage: 1, TenantRecall: 1, FalseTenantRate: 0, Seed: 2,
	})
	if len(c.Docs) == 0 {
		t.Fatal("no documents generated")
	}
	// Every tenant of every conduit must be mentioned in at least one
	// document naming both cities.
	all := strings.Builder{}
	for _, d := range c.Docs {
		all.WriteString(d.Title)
		all.WriteString(" ")
		all.WriteString(d.Body)
		all.WriteString("\n")
	}
	text := all.String()
	for ref, tenants := range testTruth().Tenants {
		for _, isp := range tenants {
			if !strings.Contains(text, isp) {
				t.Errorf("tenant %q of %v never mentioned", isp, ref)
			}
		}
	}
}

func TestGenerateZeroCoverage(t *testing.T) {
	c := Generate(testTruth(), testISPs, Options{Coverage: -1, Seed: 3})
	// Coverage<0 means no conduit passes the coverage check... but the
	// zero-value handling maps 0 to the default, so use a tiny epsilon.
	if len(c.Docs) != 0 {
		t.Errorf("expected empty corpus, got %d docs", len(c.Docs))
	}
}

func TestConduitRefNormalization(t *testing.T) {
	a := NewConduitRef("Denver,CO", "Salt Lake City,UT")
	b := NewConduitRef("Salt Lake City,UT", "Denver,CO")
	if a != b {
		t.Errorf("refs should normalize: %v vs %v", a, b)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Los Angeles to San Francisco fiber IRU AT&T, Sprint!")
	want := []string{"los", "angeles", "to", "san", "francisco", "fiber", "iru", "at", "t", "sprint"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty input should have no tokens")
	}
}

func TestSearchFindsRelevantDoc(t *testing.T) {
	c := Generate(testTruth(), testISPs, Options{Coverage: 1, TenantRecall: 1, Seed: 4})
	idx := BuildIndex(c)
	hits := idx.Search("gainesville to ocala fiber", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	top := idx.Doc(hits[0].DocID)
	text := top.Title + " " + top.Body
	if !strings.Contains(text, "Gainesville") || !strings.Contains(text, "Ocala") {
		t.Errorf("top hit not about the route: %q", top.Title)
	}
	// Scores are sorted descending.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
	if idx.Search("anything", 0) != nil {
		t.Error("k<=0 should return nil")
	}
	if hits := idx.Search("zzz qqq xyzzy", 5); len(hits) != 0 {
		t.Errorf("nonsense query returned %v", hits)
	}
}

func TestInferenceRecoversTruthWithoutNoise(t *testing.T) {
	truth := testTruth()
	c := Generate(truth, testISPs, Options{Coverage: 1, TenantRecall: 1, FalseTenantRate: 0, Seed: 5})
	inf := NewInference(BuildIndex(c))
	inferred := make(map[ConduitRef][]string)
	for ref := range truth.Tenants {
		for _, ev := range inf.TenantsFor(ref, testISPs, 10) {
			inferred[ref] = append(inferred[ref], ev.ISP)
		}
	}
	rep := Score(inferred, c)
	if rep.Precision() < 0.999 {
		t.Errorf("precision = %v (fp=%d)", rep.Precision(), rep.FalsePositives)
	}
	if rep.Recall() < 0.999 {
		t.Errorf("recall = %v (fn=%d)", rep.Recall(), rep.FalseNegatives)
	}
}

func TestInferenceDegradesGracefullyWithNoise(t *testing.T) {
	truth := testTruth()
	c := Generate(truth, testISPs, Options{Coverage: 0.8, TenantRecall: 0.7, FalseTenantRate: 0.3, Seed: 6})
	inf := NewInference(BuildIndex(c))
	inferred := make(map[ConduitRef][]string)
	for ref := range truth.Tenants {
		for _, ev := range inf.TenantsFor(ref, testISPs, 10) {
			inferred[ref] = append(inferred[ref], ev.ISP)
		}
	}
	rep := Score(inferred, c)
	// With lossy records recall must drop below 1 but stay useful.
	if rep.Recall() >= 1 {
		t.Errorf("recall = %v; noise should lose some tenants", rep.Recall())
	}
	if rep.Recall() < 0.3 {
		t.Errorf("recall = %v; inference collapsed", rep.Recall())
	}
}

func TestValidate(t *testing.T) {
	truth := testTruth()
	c := Generate(truth, testISPs, Options{Coverage: 1, TenantRecall: 1, FalseTenantRate: 0, Seed: 7})
	inf := NewInference(BuildIndex(c))
	ref := NewConduitRef("Salt Lake City,UT", "Denver,CO")
	if _, ok := inf.Validate(ref, "Level 3", 10); !ok {
		t.Error("Level 3 on SLC-Denver should validate")
	}
	if _, ok := inf.Validate(ref, "Comcast", 10); ok {
		t.Error("Comcast is not on SLC-Denver")
	}
}

func TestScoreReportEdgeCases(t *testing.T) {
	var rep ScoreReport
	if rep.Precision() != 1 || rep.Recall() != 1 {
		t.Error("empty report should score 1/1")
	}
	rep = ScoreReport{TruePositives: 3, FalsePositives: 1, FalseNegatives: 2}
	if p := rep.Precision(); p != 0.75 {
		t.Errorf("precision = %v", p)
	}
	if r := rep.Recall(); r != 0.6 {
		t.Errorf("recall = %v", r)
	}
}

func TestRefsSortedAndComplete(t *testing.T) {
	truth := testTruth()
	c := Generate(truth, testISPs, Options{Seed: 8})
	refs := c.Refs()
	if len(refs) != len(truth.Tenants) {
		t.Fatalf("refs = %d, want %d", len(refs), len(truth.Tenants))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].key() >= refs[i].key() {
			t.Error("refs not sorted")
		}
	}
}

func TestDocTypeString(t *testing.T) {
	if IRUAgreement.String() != "IRU agreement" {
		t.Errorf("got %q", IRUAgreement.String())
	}
	if !strings.Contains(DocType(99).String(), "99") {
		t.Error("unknown doc type should include its number")
	}
}

func TestContainsSeq(t *testing.T) {
	h := []string{"the", "at", "t", "network"}
	if !containsSeq(h, []string{"at", "t"}) {
		t.Error("should find at&t tokens")
	}
	if containsSeq(h, []string{"t", "at"}) {
		t.Error("order matters")
	}
	if containsSeq(h, nil) {
		t.Error("empty needle should not match")
	}
}
