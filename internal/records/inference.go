package records

import (
	"sort"
	"strings"
)

// inference.go implements steps 2 and 4 of the paper's mapping
// process: given the searchable public-records corpus, validate that a
// fiber link between two cities exists along a right-of-way, and infer
// which other providers share the conduit.

// Inference runs validation and sharing-inference queries against an
// index.
type Inference struct {
	idx *Index
	// docTokens caches each document's token sequence for mention
	// extraction.
	docTokens [][]string
}

// NewInference prepares an inference engine over idx.
func NewInference(idx *Index) *Inference {
	inf := &Inference{idx: idx, docTokens: make([][]string, len(idx.corpus.Docs))}
	for i, d := range idx.corpus.Docs {
		inf.docTokens[i] = Tokenize(d.Title + " " + d.Body)
	}
	return inf
}

// containsSeq reports whether needle occurs as a contiguous
// subsequence of haystack.
func containsSeq(haystack, needle []string) bool {
	if len(needle) == 0 {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, t := range needle {
			if haystack[i+j] != t {
				continue outer
			}
		}
		return true
	}
	return false
}

// mentions reports whether doc i mentions the phrase (e.g. an ISP or
// city name) as a contiguous token sequence.
func (inf *Inference) mentions(doc int, phrase string) bool {
	return containsSeq(inf.docTokens[doc], Tokenize(phrase))
}

// Evidence records why a tenancy was inferred.
type Evidence struct {
	ISP   string
	DocID int
}

// TenantsFor searches the corpus for the conduit between the two city
// keys and returns the ISPs (from the candidate universe) mentioned in
// documents that reference both endpoint cities, together with the
// supporting document ids. This mirrors the paper's
// "<city> to <city> fiber iru <isp>" query workflow.
func (inf *Inference) TenantsFor(ref ConduitRef, candidates []string, topK int) []Evidence {
	a, b := cityName(ref.A), cityName(ref.B)
	hits := inf.idx.Search(a+" to "+b+" fiber conduit right of way iru", topK)
	found := make(map[string]int) // isp -> first doc id
	for _, h := range hits {
		if !inf.mentions(h.DocID, a) || !inf.mentions(h.DocID, b) {
			continue // the document is about some other route
		}
		for _, isp := range candidates {
			if _, ok := found[isp]; ok {
				continue
			}
			if inf.mentions(h.DocID, isp) {
				found[isp] = h.DocID
			}
		}
	}
	out := make([]Evidence, 0, len(found))
	for isp, doc := range found {
		out = append(out, Evidence{ISP: isp, DocID: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ISP < out[j].ISP })
	return out
}

// Validate checks for public evidence that isp occupies the conduit:
// a document mentioning both endpoint cities and the ISP. It returns
// the supporting document id when found.
func (inf *Inference) Validate(ref ConduitRef, isp string, topK int) (int, bool) {
	a, b := cityName(ref.A), cityName(ref.B)
	hits := inf.idx.Search(a+" to "+b+" fiber iru "+strings.ToLower(isp), topK)
	for _, h := range hits {
		if inf.mentions(h.DocID, a) && inf.mentions(h.DocID, b) && inf.mentions(h.DocID, isp) {
			return h.DocID, true
		}
	}
	return 0, false
}

// ScoreReport quantifies inference quality against ground truth.
type ScoreReport struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP / (TP + FP), or 1 when nothing was inferred.
func (s ScoreReport) Precision() float64 {
	d := s.TruePositives + s.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN), or 1 when there was nothing to find.
func (s ScoreReport) Recall() float64 {
	d := s.TruePositives + s.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// Score compares an inferred tenancy relation with the corpus ground
// truth.
func Score(inferred map[ConduitRef][]string, c *Corpus) ScoreReport {
	var rep ScoreReport
	for _, ref := range c.Refs() {
		truth := c.TrueTenants(ref)
		got := inferred[ref]
		for _, isp := range got {
			if containsString(truth, isp) {
				rep.TruePositives++
			} else {
				rep.FalsePositives++
			}
		}
		for _, isp := range truth {
			if !containsString(got, isp) {
				rep.FalseNegatives++
			}
		}
	}
	return rep
}
