// Package records is the public-records substrate of the InterTubes
// reproduction. The paper's mapping methodology (§2, steps 2 and 4)
// validates fiber link locations and infers conduit sharing from
// government agency filings, IRU agreements, franchise agreements,
// environmental impact statements, press releases, and settlement
// notices. We cannot ship those proprietary-by-obscurity documents,
// so this package (a) generates a synthetic corpus of such documents
// from a ground-truth tenancy relation with configurable noise, (b)
// provides a tokenized inverted-index search engine over the corpus,
// and (c) implements the validate-and-infer procedure, whose precision
// and recall against ground truth we can measure — something the paper
// itself could not do.
package records

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// DocType classifies a public record.
type DocType int

const (
	// IRUAgreement is an indefeasible-right-of-use agreement between
	// carriers (e.g. the Level 3/Comcast IRU the paper cites).
	IRUAgreement DocType = iota
	// ROWFiling is a state/municipal right-of-way filing.
	ROWFiling
	// FranchiseAgreement is a county cable franchise agreement.
	FranchiseAgreement
	// PressRelease is a carrier press release or news article.
	PressRelease
	// EnvironmentalImpact is an environmental impact statement with a
	// utilities section.
	EnvironmentalImpact
	// SettlementNotice is a railroad-ROW class-action settlement
	// notice (the paper's fiberopticsettlements.com source).
	SettlementNotice
)

var docTypeNames = [...]string{
	"IRU agreement",
	"right-of-way filing",
	"franchise agreement",
	"press release",
	"environmental impact statement",
	"settlement notice",
}

// String names the document type.
func (d DocType) String() string {
	if int(d) < len(docTypeNames) {
		return docTypeNames[d]
	}
	return fmt.Sprintf("DocType(%d)", int(d))
}

// Document is one public record.
type Document struct {
	ID    int
	Type  DocType
	Title string
	Body  string
}

// Corpus is a set of public records plus the ground truth they were
// generated from (kept for scoring; the inference path never reads
// it).
type Corpus struct {
	Docs []Document
	// truth maps a conduit key to the tenant set each document set was
	// generated from.
	truth map[string][]string
}

// ConduitRef identifies a conduit by its endpoint city keys, order-
// normalized.
type ConduitRef struct {
	A, B string // "City,ST" keys, A < B
}

// NewConduitRef normalizes the endpoint order.
func NewConduitRef(a, b string) ConduitRef {
	if a > b {
		a, b = b, a
	}
	return ConduitRef{A: a, B: b}
}

func (r ConduitRef) key() string { return r.A + "~" + r.B }

// GroundTruth holds the real tenancy relation the corpus describes.
type GroundTruth struct {
	// Tenants maps each conduit to the ISPs that actually occupy it.
	Tenants map[ConduitRef][]string
}

// Options tunes corpus generation noise.
type Options struct {
	// Coverage is the probability that a conduit generates any
	// documents at all. Default 0.9 — public records are plentiful
	// but not universal.
	Coverage float64
	// TenantRecall is the probability each true tenant is named in the
	// conduit's documents. Default 0.9.
	TenantRecall float64
	// FalseTenantRate is the probability a document names one ISP that
	// is NOT in the conduit (stale or erroneous filings). Default 0.04.
	FalseTenantRate float64
	// Seed drives the deterministic generator.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Coverage == 0 {
		o.Coverage = 0.9
	}
	if o.TenantRecall == 0 {
		o.TenantRecall = 0.9
	}
	// FalseTenantRate zero value is meaningful (no noise); keep it.
	return o
}

// cityName strips the ",ST" suffix from a city key for use in prose.
func cityName(key string) string {
	if i := strings.LastIndexByte(key, ','); i >= 0 {
		return key[:i]
	}
	return key
}

// Generate builds a synthetic public-records corpus describing the
// ground-truth tenancy relation, with noise per opts. allISPs is the
// universe of provider names used for false-tenant noise.
func Generate(truth GroundTruth, allISPs []string, opts Options) *Corpus {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Corpus{truth: make(map[string][]string)}

	// Deterministic iteration order over the map.
	refs := make([]ConduitRef, 0, len(truth.Tenants))
	for ref := range truth.Tenants {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].key() < refs[j].key() })

	for _, ref := range refs {
		tenants := truth.Tenants[ref]
		c.truth[ref.key()] = append([]string(nil), tenants...)
		if rng.Float64() >= opts.Coverage {
			continue // this conduit left no public paper trail
		}
		// Which tenants get mentioned at all.
		var named []string
		for _, isp := range tenants {
			if rng.Float64() < opts.TenantRecall {
				named = append(named, isp)
			}
		}
		if len(named) == 0 {
			continue
		}
		// Possibly inject one false tenant.
		if rng.Float64() < opts.FalseTenantRate && len(allISPs) > 0 {
			for tries := 0; tries < 8; tries++ {
				cand := allISPs[rng.Intn(len(allISPs))]
				if !containsString(tenants, cand) {
					named = append(named, cand)
					break
				}
			}
		}
		// Split the named tenants across 1-3 documents, every document
		// naming at least one.
		nDocs := 1 + rng.Intn(3)
		if nDocs > len(named) {
			nDocs = len(named)
		}
		groups := make([][]string, nDocs)
		for i, isp := range named {
			groups[i%nDocs] = append(groups[i%nDocs], isp)
		}
		for _, group := range groups {
			dt := DocType(rng.Intn(len(docTypeNames)))
			doc := compose(len(c.Docs), dt, ref, group, rng)
			c.Docs = append(c.Docs, doc)
		}
	}
	return c
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// compose writes a document in the register of its type. The prose
// matters: the inference engine works by full-text search, so the
// documents must bury the signal in realistic boilerplate.
func compose(id int, dt DocType, ref ConduitRef, isps []string, rng *rand.Rand) Document {
	a, b := cityName(ref.A), cityName(ref.B)
	ispList := strings.Join(isps, ", ")
	var title, body string
	switch dt {
	case IRUAgreement:
		title = fmt.Sprintf("Indefeasible Right of Use Agreement: %s to %s fiber route", a, b)
		body = fmt.Sprintf(
			"This IRU agreement grants the purchaser an indefeasible right of use "+
				"in %d dark fiber strands within the existing conduit between %s and %s. "+
				"The conduit is presently occupied by facilities of %s. "+
				"Term of this agreement is %d years with customary maintenance obligations.",
			2+rng.Intn(94), a, b, ispList, 10+rng.Intn(20))
	case ROWFiling:
		title = fmt.Sprintf("Utility right-of-way occupancy permit, %s - %s corridor", a, b)
		body = fmt.Sprintf(
			"Pursuant to state utility accommodation policy, occupancy of the "+
				"public right-of-way along the %s to %s corridor is granted to %s "+
				"for the installation and maintenance of fiber-optic communication lines. "+
				"Permittee shall locate facilities within the existing longitudinal trench.",
			a, b, ispList)
	case FranchiseAgreement:
		title = fmt.Sprintf("Cable franchise agreement addendum, %s", a)
		body = fmt.Sprintf(
			"The franchisee's fiber plant between %s and %s shall be constructed in "+
				"joint trench with existing facilities of %s where practicable. "+
				"Franchise fee is %d percent of gross revenue.",
			a, b, ispList, 3+rng.Intn(3))
	case PressRelease:
		title = fmt.Sprintf("%s extends national fiber infrastructure", isps[0])
		body = fmt.Sprintf(
			"The company announced an agreement adding %d route miles to its network, "+
				"including segments connecting %s and %s. The buildout uses existing conduit "+
				"capacity alongside %s, reducing construction cost and time to market.",
			100+rng.Intn(19000), a, b, ispList)
	case EnvironmentalImpact:
		title = fmt.Sprintf("Final environmental impact statement, %s to %s project: utilities section", a, b)
		body = fmt.Sprintf(
			"Section 4 (utilities): the project corridor between %s and %s contains "+
				"buried fiber-optic facilities belonging to %s. Utility relocation plans "+
				"shall be coordinated with all listed owners prior to construction.",
			a, b, ispList)
	default: // SettlementNotice
		title = fmt.Sprintf("Class action settlement notice: railroad right-of-way, %s to %s", a, b)
		body = fmt.Sprintf(
			"If you own land next to or under a railroad right-of-way between %s and %s "+
				"where telecommunications facilities such as fiber-optic cables were installed "+
				"by %s, you may be entitled to benefits under a class action settlement.",
			a, b, ispList)
	}
	return Document{ID: id, Type: dt, Title: title, Body: body}
}

// TrueTenants exposes the generation-time tenant set for scoring.
func (c *Corpus) TrueTenants(ref ConduitRef) []string {
	return append([]string(nil), c.truth[ref.key()]...)
}

// Refs returns all conduits the corpus knows about, sorted.
func (c *Corpus) Refs() []ConduitRef {
	out := make([]ConduitRef, 0, len(c.truth))
	for k := range c.truth {
		i := strings.IndexByte(k, '~')
		out = append(out, ConduitRef{A: k[:i], B: k[i+1:]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}
