package records

import "testing"

// FuzzTokenize asserts the tokenizer never panics and only emits
// lowercase letter/digit runs.
func FuzzTokenize(f *testing.F) {
	f.Add("Los Angeles to San Francisco fiber IRU AT&T")
	f.Add("")
	f.Add("\x00\xff日本語 mixed UTF-8 and bytes")
	f.Fuzz(func(t *testing.T, input string) {
		for _, tok := range Tokenize(input) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					t.Fatalf("uppercase leaked into token %q", tok)
				}
			}
		}
	})
}
