package records_test

import (
	"fmt"

	"intertubes/internal/records"
)

func ExampleTokenize() {
	fmt.Println(records.Tokenize("Los Angeles to San Francisco fiber IRU AT&T"))
	// Output: [los angeles to san francisco fiber iru at t]
}

func ExampleInference_TenantsFor() {
	truth := records.GroundTruth{Tenants: map[records.ConduitRef][]string{
		records.NewConduitRef("Gainesville,FL", "Ocala,FL"): {"Cox", "Level 3"},
	}}
	corpus := records.Generate(truth, []string{"Cox", "Level 3", "Sprint"},
		records.Options{Coverage: 1, TenantRecall: 1, Seed: 1})
	inf := records.NewInference(records.BuildIndex(corpus))
	for _, ev := range inf.TenantsFor(records.NewConduitRef("Gainesville,FL", "Ocala,FL"),
		[]string{"Cox", "Level 3", "Sprint"}, 8) {
		fmt.Println(ev.ISP)
	}
	// Output:
	// Cox
	// Level 3
}
