package mitigate

import (
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/latency"
)

// relay.go implements the overlay-routing payoff of the latency
// atlas: the "Dissecting Latency" line of work closes part of the
// inflation gap without trenching new fiber by relaying traffic
// through an intermediate city whenever the two-leg fiber path beats
// the default route. PlaceRelays is the constructive planner — a
// sibling of AddConduits, except a candidate site is scored in O(1)
// per pair straight off precomputed atlas rows, so the whole greedy
// sweep costs k·sites·pairs float operations and no graph queries.

// Relay is one placed overlay relay site.
type Relay struct {
	Node fiber.NodeID
	// GainMs is the aggregate one-way delay saved across the study's
	// pairs by adding this relay on top of the previously placed ones.
	GainMs float64
	// PairsImproved counts pairs this relay lowers.
	PairsImproved int
}

// RelayResult is the outcome of a greedy relay placement.
type RelayResult struct {
	Relays []Relay
	// Pairs is the number of study pairs the planner scored.
	Pairs int
	// MeanBeforeMs and MeanAfterMs are the mean one-way pair delays
	// before any relay and after all placed relays.
	MeanBeforeMs, MeanAfterMs float64
}

// PlaceRelays greedily places up to k overlay relay sites among the
// atlas's cities. Each study pair starts at its average existing
// delay (AvgMs — the modelled default route); routing via a relay r
// costs the best fiber path A→r plus r→B, both read off atlas rows.
// Every round picks the site with the largest aggregate saving over
// the pairs' current delays, ties broken toward the lowest node id,
// and stops early once no site helps. The result is deterministic:
// the scan is a pure fold over immutable matrix rows.
func PlaceRelays(at *latency.Atlas, study []PairLatency, k int) RelayResult {
	var res RelayResult
	if at == nil || k <= 0 {
		return res
	}
	type relayPair struct {
		ra   int // atlas row of A
		a, b fiber.NodeID
		cur  float64 // current delay, ms
	}
	var pairs []relayPair
	var before float64
	for _, pl := range study {
		ra, rb := at.RowIndex(pl.A), at.RowIndex(pl.B)
		if ra < 0 || rb < 0 || !isFinite(pl.AvgMs) || pl.AvgMs <= 0 {
			continue
		}
		pairs = append(pairs, relayPair{ra: ra, a: pl.A, b: pl.B, cur: pl.AvgMs})
		before += pl.AvgMs
	}
	res.Pairs = len(pairs)
	if len(pairs) == 0 {
		return res
	}
	res.MeanBeforeMs = before / float64(len(pairs))

	used := make([]bool, at.NumSources())
	via := func(p *relayPair, ri int, rNode fiber.NodeID) float64 {
		return geo.FiberLatencyMs(at.DistKm(p.ra, rNode) + at.DistKm(ri, p.b))
	}
	for round := 0; round < k; round++ {
		bestRi, bestImproved := -1, 0
		var bestGain float64
		for ri := 0; ri < at.NumSources(); ri++ {
			if used[ri] {
				continue
			}
			rNode := at.Source(ri)
			var gain float64
			improved := 0
			for pi := range pairs {
				p := &pairs[pi]
				if rNode == p.a || rNode == p.b {
					continue // a relay is an intermediate site
				}
				if v := via(p, ri, rNode); v < p.cur {
					gain += p.cur - v
					improved++
				}
			}
			// Strict > keeps the lowest node id on exact ties.
			if gain > bestGain {
				bestGain, bestRi, bestImproved = gain, ri, improved
			}
		}
		if bestRi < 0 || bestGain <= 0 {
			break
		}
		used[bestRi] = true
		rNode := at.Source(bestRi)
		for pi := range pairs {
			p := &pairs[pi]
			if rNode == p.a || rNode == p.b {
				continue
			}
			if v := via(p, bestRi, rNode); v < p.cur {
				p.cur = v
			}
		}
		res.Relays = append(res.Relays, Relay{Node: rNode, GainMs: bestGain, PairsImproved: bestImproved})
	}
	var after float64
	for pi := range pairs {
		after += pairs[pi].cur
	}
	res.MeanAfterMs = after / float64(len(pairs))
	return res
}
