package mitigate

import (
	"context"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/par"
)

// latencyfix.go implements the constructive half of §5.3: the paper
// does not just measure the gap between deployed fiber paths and the
// best rights-of-way — it proposes "deploying new links along
// previously unused transportation corridors and rights-of-way" to
// close it. LatencyImprovements finds the city pairs with the largest
// deployable gap and the ROW route a new build would follow.

// LatencyImprovement is one proposed ROW-following build.
type LatencyImprovement struct {
	A, B fiber.NodeID
	// BestMs is today's best fiber delay; RowMs what a ROW-following
	// build achieves; SavedMs the one-way gain.
	BestMs, RowMs, SavedMs float64
	// NewFiberKm is the length of the proposed build (the ROW path may
	// reuse corridors that already carry lit conduits; only unlit
	// stretches count as new fiber).
	NewFiberKm float64
	// Route names the corridor route designations along the build
	// ("I-80/UP-Donner", "secondary" for implicit highway edges).
	Route []string
}

// LatencyImprovements ranks the top-k proposed builds by delay saved
// per new fiber kilometre, considering the pairs of an existing
// latency study. Pairs whose best path already matches the ROW bound
// are skipped.
func LatencyImprovements(m *fiber.Map, a *atlas.Atlas, study []PairLatency, k int, opts LatencyOptions) []LatencyImprovement {
	out, _ := LatencyImprovementsCtx(context.Background(), m, a, study, k, opts) // background ctx: cannot fail
	return out
}

// LatencyImprovementsCtx is LatencyImprovements with cooperative
// cancellation of the per-pair ROW-graph scan; a completed call is
// bit-identical to LatencyImprovements at any worker count.
func LatencyImprovementsCtx(ctx context.Context, m *fiber.Map, a *atlas.Atlas, study []PairLatency, k int, opts LatencyOptions) ([]LatencyImprovement, error) {
	opts = opts.withDefaults()
	rg := rowGraph(a, opts)
	nCorridors := len(a.Corridors)

	// Corridors that already carry lit fiber contribute no new fiber
	// cost to a build.
	lit := make(map[int]bool)
	for i := range m.Conduits {
		if len(m.Conduits[i].Tenants) > 0 {
			lit[m.Conduits[i].Corridor] = true
		}
	}

	// A latency study lists pairs grouped by source (A ascending, then
	// B), so the ROW scan batches per source: one full shortest-path
	// tree per distinct A (graph.ShortestTreeWS), then every B of the
	// group traces its path off the settled parent array instead of
	// running its own Dijkstra. A traced path is bit-identical to the
	// per-pair ShortestPathWS it replaces — parents only change on
	// strictly-shorter relaxations, so early-stop and full-settle runs
	// agree — and groups are independent, keeping the output identical
	// for any worker count.
	type group struct{ lo, hi int } // study[lo:hi) share study[lo].A
	var groups []group
	for lo := 0; lo < len(study); {
		hi := lo + 1
		for hi < len(study) && study[hi].A == study[lo].A {
			hi++
		}
		groups = append(groups, group{lo: lo, hi: hi})
		lo = hi
	}
	computed, err := par.MapCtxWith(ctx, len(groups), opts.Workers, graph.NewWorkspace, func(gi int, ws *graph.Workspace) []*LatencyImprovement {
		gr := groups[gi]
		imps := make([]*LatencyImprovement, gr.hi-gr.lo)
		na := m.Node(study[gr.lo].A)
		treeBuilt := false
		for i := gr.lo; i < gr.hi; i++ {
			pl := study[i]
			if pl.BestMs <= pl.RowMs*1.02 {
				continue // already at the ROW bound
			}
			nb := m.Node(pl.B)
			if na.AtlasCity < 0 || na.AtlasCity >= rg.NumVertices() || nb.AtlasCity < 0 {
				continue
			}
			if !treeBuilt {
				rg.ShortestTreeWS(ws, na.AtlasCity, nil)
				treeBuilt = true
			}
			path, ok := rg.TreePathWS(ws, nb.AtlasCity)
			if !ok {
				continue
			}
			imp := LatencyImprovement{
				A: pl.A, B: pl.B,
				BestMs:  pl.BestMs,
				RowMs:   geo.FiberLatencyMs(path.Weight),
				SavedMs: pl.BestMs - geo.FiberLatencyMs(path.Weight),
			}
			for _, eid := range path.Edges {
				e := rg.Edge(eid)
				if eid < nCorridors {
					if !lit[eid] {
						imp.NewFiberKm += a.Corridors[eid].LengthKm
						imp.Route = append(imp.Route, a.Corridors[eid].Route)
					}
				} else {
					// Implicit secondary-highway edge: always a new build.
					imp.NewFiberKm += e.Weight
					imp.Route = append(imp.Route, "secondary")
				}
			}
			// Only material proposals: a build must save at least 50 us
			// (~10 km of route) to be worth a trench.
			if imp.SavedMs < 0.05 {
				continue
			}
			imps[i-gr.lo] = &imp
		}
		return imps
	})
	if err != nil {
		return nil, err
	}
	var out []LatencyImprovement
	for _, imps := range computed {
		for _, imp := range imps {
			if imp != nil {
				out = append(out, *imp)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// Rank by delay saved per new fiber km; an all-reuse build
		// (zero new fiber) is infinitely good and sorts first by
		// SavedMs.
		zi, zj := out[i].NewFiberKm == 0, out[j].NewFiberKm == 0
		if zi != zj {
			return zi
		}
		if zi && zj {
			return out[i].SavedMs > out[j].SavedMs
		}
		ri := out[i].SavedMs / out[i].NewFiberKm
		rj := out[j].SavedMs / out[j].NewFiberKm
		if ri != rj {
			return ri > rj
		}
		if out[i].SavedMs != out[j].SavedMs {
			return out[i].SavedMs > out[j].SavedMs
		}
		// Exact ties fall back to node ids: the ranking must be
		// deterministic at any worker count.
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
