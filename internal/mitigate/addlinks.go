package mitigate

import (
	"context"
	"math"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/par"
	"intertubes/internal/risk"
)

// addlinks.go implements §5.2: choose up to k new city-to-city
// conduits (eq. 2) that maximize global shared-risk reduction while
// penalizing deployment cost (fiber miles). The evaluation follows
// the paper's framing: after an addition, each ISP may re-route its
// most heavily shared conduits over paths that use the new (initially
// empty) conduit; the improvement ratio compares its average shared
// risk before and after.

// AddOptions tunes the optimizer.
type AddOptions struct {
	// K is the number of conduits to add (default 10, as in
	// Figure 11's sweep).
	K int
	// MinKm/MaxKm bound candidate great-circle lengths
	// (default 100-900 km; shorter adds nothing, longer is not a
	// single long-haul conduit).
	MinKm, MaxKm float64
	// Alpha is the deployment-cost penalty per 1000 km of new fiber in
	// benefit units (default 1.0).
	Alpha float64
	// TargetsPerISP is how many of each ISP's most-shared conduits are
	// considered for re-routing (default 4).
	TargetsPerISP int
	// MaxCandidates caps the candidate set, keeping the shortest
	// (default 4000).
	MaxCandidates int
	// Exact switches candidate scoring from the fast summed-SR
	// distance-field approximation to exact bottleneck (minimax)
	// shortest paths: a candidate's gain for a target is precisely the
	// reduction in best achievable worst-case sharing. Slower; exists
	// for the greedy-vs-exact ablation in DESIGN.md.
	Exact bool
	// CapacityObjective, when non-nil, adds a capacity-aware term (in
	// benefit units) to every candidate's score before the cost
	// penalty — e.g. fiber.CapacityGbps scaled to reward conduits that
	// would carry more wavelengths. It must be a pure function of its
	// arguments: it is evaluated once per candidate at enumeration
	// time, so the greedy sweep stays deterministic at any worker
	// count. Nil preserves the pure shared-risk objective.
	CapacityObjective func(a, b fiber.NodeID, lengthKm float64) float64
	// Workers bounds the worker pool for the per-target distance
	// fields and the candidate-scoring scan (<= 0 means all CPUs).
	// The chosen additions are identical for any value.
	Workers int
}

func (o AddOptions) withDefaults() AddOptions {
	if o.K == 0 {
		o.K = 10
	}
	if o.MinKm == 0 {
		o.MinKm = 100
	}
	if o.MaxKm == 0 {
		o.MaxKm = 900
	}
	if o.Alpha == 0 {
		o.Alpha = 1.0
	}
	if o.TargetsPerISP == 0 {
		o.TargetsPerISP = 4
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 4000
	}
	return o
}

// Addition is one new conduit chosen by the optimizer.
type Addition struct {
	A, B     fiber.NodeID
	LengthKm float64
	// Benefit is the objective value at selection time (total SRR
	// minus the cost penalty).
	Benefit float64
}

// AddResult is the outcome of the §5.2 sweep.
type AddResult struct {
	Additions []Addition
	// Improvement[isp][k-1] is the ISP's relative shared-risk
	// reduction (1 - after/before) once the first k additions are in
	// place — the y-axis of Figure 11.
	Improvement map[string][]float64
}

// ispTargets identifies an ISP's most-shared conduits.
func ispTargets(m *fiber.Map, mx *risk.Matrix, isp string, n int) []fiber.ConduitID {
	cids := m.ConduitsOf(isp)
	sort.Slice(cids, func(i, j int) bool {
		si, sj := mx.Sharing(cids[i]), mx.Sharing(cids[j])
		if si != sj {
			return si > sj
		}
		return cids[i] < cids[j]
	})
	if len(cids) > n {
		cids = cids[:n]
	}
	return cids
}

// AddConduits runs the greedy sweep. The returned improvements are
// computed against the original matrix, so Improvement[isp] is a
// non-decreasing series in k.
func AddConduits(m *fiber.Map, mx *risk.Matrix, opts AddOptions) *AddResult {
	res, _ := AddConduitsCtx(context.Background(), m, mx, opts) // background ctx: cannot fail
	return res
}

// AddConduitsCtx is AddConduits with cooperative cancellation: ctx is
// checked between greedy steps and at every chunk grant of the
// distance-field and candidate-scoring scans, so a canceled sweep
// stops within one scan and returns (nil, ctx.Err()). A completed
// sweep chooses identical additions at any worker count.
func AddConduitsCtx(ctx context.Context, m *fiber.Map, mx *risk.Matrix, opts AddOptions) (*AddResult, error) {
	opts = opts.withDefaults()
	g := m.Graph() // mutated as conduits are added

	// Candidate set: city pairs with no direct conduit, within the
	// length window, shortest first.
	type candidate struct {
		a, b  fiber.NodeID
		km    float64
		bonus float64 // CapacityObjective term, fixed at enumeration
	}
	var cands []candidate
	for i := range m.Nodes {
		for j := i + 1; j < len(m.Nodes); j++ {
			a, b := fiber.NodeID(i), fiber.NodeID(j)
			if len(m.ConduitsBetween(a, b)) > 0 {
				continue
			}
			km := m.Nodes[i].Loc.DistanceKm(m.Nodes[j].Loc)
			if km < opts.MinKm || km > opts.MaxKm {
				continue
			}
			c := candidate{a: a, b: b, km: km}
			if opts.CapacityObjective != nil {
				c.bonus = opts.CapacityObjective(a, b, km)
			}
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].km != cands[j].km {
			return cands[i].km < cands[j].km
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	if len(cands) > opts.MaxCandidates {
		cands = cands[:opts.MaxCandidates]
	}

	// Per-ISP baseline risk and re-route targets.
	type ispState struct {
		name    string
		targets []fiber.ConduitID
		before  float64 // average sharing over the ISP's conduits
	}
	var states []ispState
	for _, isp := range mx.ISPs {
		cids := m.ConduitsOf(isp)
		if len(cids) == 0 {
			continue
		}
		var sum float64
		for _, cid := range cids {
			sum += float64(mx.Sharing(cid))
		}
		states = append(states, ispState{
			name:    isp,
			targets: ispTargets(m, mx, isp, opts.TargetsPerISP),
			before:  sum / float64(len(cids)),
		})
	}

	// sharing returns the effective sharing degree of a graph edge:
	// matrix sharing for original conduits, adopter count for new
	// ones.
	newEdgeSharing := make(map[int]int) // new graph edge id -> adopters
	sharing := func(eid int) float64 {
		if n, ok := newEdgeSharing[eid]; ok {
			return float64(1 + n) // the re-routing ISP plus adopters
		}
		s := mx.Sharing(fiber.ConduitID(eid))
		if s == 0 {
			return math.Inf(1)
		}
		return float64(s)
	}

	// bestReroute returns, for a target conduit, the minimum worst-
	// case sharing reachable between its endpoints avoiding the
	// conduit itself (the quantity an addition can improve). ws is the
	// calling goroutine's scratch workspace.
	bestReroute := func(ws *graph.Workspace, target fiber.ConduitID) (maxSharing float64, path graph.Path, ok bool) {
		c := m.Conduit(target)
		wf := func(eid int) float64 {
			if fiber.ConduitID(eid) == target {
				return math.Inf(1)
			}
			return sharing(eid)
		}
		path, ok = g.ShortestPathWS(ws, int(c.A), int(c.B), wf)
		if !ok {
			return 0, path, false
		}
		for _, eid := range path.Edges {
			if s := sharing(eid); s > maxSharing {
				maxSharing = s
			}
		}
		return maxSharing, path, true
	}

	res := &AddResult{Improvement: make(map[string][]float64)}

	// Workspace for the serial phases (the parallel scans get one per
	// worker from the pool helper).
	serialWS := graph.NewWorkspace()

	// afterRisk recomputes an ISP's average sharing assuming its
	// targets are re-routed wherever that lowers worst-case sharing.
	afterRisk := func(st ispState) float64 {
		cids := m.ConduitsOf(st.name)
		var sum float64
		for _, cid := range cids {
			orig := float64(mx.Sharing(cid))
			replaced := orig
			for _, tgt := range st.targets {
				if tgt != cid {
					continue
				}
				if alt, _, ok := bestReroute(serialWS, cid); ok && alt < orig {
					replaced = alt
				}
			}
			sum += replaced
		}
		return sum / float64(len(cids))
	}

	for step := 0; step < opts.K; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Per-target fields used to score every candidate in O(1):
		// summed-SR distances (fast approximation) or minimax
		// worst-sharing distances (exact), weighted by how many ISPs
		// would re-route over that target. The unique-target list is
		// collected serially (insertion order is deterministic), then
		// the distance fields — one or two Dijkstra sweeps each — fan
		// out over the worker pool; the graph and the sharing closure
		// are read-only until the addition below.
		type field struct {
			distA, distB []float64
			current      float64 // current best re-route worst-sharing
			orig         float64
			weight       float64 // ISPs with this target
		}
		fields := make(map[fiber.ConduitID]*field)
		var fieldOrder []fiber.ConduitID
		for _, st := range states {
			for _, tgt := range st.targets {
				if f, done := fields[tgt]; done {
					f.weight++
					continue
				}
				fields[tgt] = &field{orig: float64(mx.Sharing(tgt)), weight: 1}
				fieldOrder = append(fieldOrder, tgt)
			}
		}
		err := par.RunCtxWith(ctx, len(fieldOrder), opts.Workers, graph.NewWorkspace, func(i int, ws *graph.Workspace) {
			tgt := fieldOrder[i]
			f := fields[tgt]
			c := m.Conduit(tgt)
			wf := func(eid int) float64 {
				if fiber.ConduitID(eid) == tgt {
					return math.Inf(1)
				}
				return sharing(eid)
			}
			// The distance fields outlive the scan (the candidate
			// scoring reads them), so they are fresh allocations — the
			// workspace only absorbs the heap/stamp/weight-table churn.
			if opts.Exact {
				f.distA = g.MinimaxDistancesWS(ws, int(c.A), wf, nil)
				f.distB = g.MinimaxDistancesWS(ws, int(c.B), wf, nil)
				f.current = f.distA[int(c.B)]
			} else {
				cur, _, ok := bestReroute(ws, tgt)
				if !ok {
					cur = math.Inf(1)
				}
				f.distA = g.ShortestDistancesWS(ws, int(c.A), wf, nil)
				f.distB = g.ShortestDistancesWS(ws, int(c.B), wf, nil)
				f.current = cur
			}
		})
		if err != nil {
			return nil, err
		}
		// Score candidates: a candidate (u,v) helps target t if
		// routing endpointA ->u -> new conduit -> v-> endpointB (or the
		// reverse) beats both the original conduit and the current
		// best re-route. We approximate the path's worst-case sharing
		// by its average SR per hop, which the exact recomputation
		// after selection corrects. Each candidate's score is
		// independent, and the per-candidate float accumulation always
		// walks fieldOrder — never map order — so the scan is both
		// parallelizable and run-to-run deterministic.
		scores, err := par.MapCtx(ctx, len(cands), opts.Workers, func(ci int) float64 {
			cand := cands[ci]
			var gain float64
			for _, tgt := range fieldOrder {
				f := fields[tgt]
				if opts.Exact {
					// Exact: the candidate's worst-case sharing when
					// used on a re-route is the bottleneck of the two
					// connecting paths and the fresh conduit itself.
					candWorst := math.Min(
						math.Max(math.Max(f.distA[int(cand.a)], f.distB[int(cand.b)]), 1),
						math.Max(math.Max(f.distA[int(cand.b)], f.distB[int(cand.a)]), 1))
					today := math.Min(f.orig, f.current)
					if candWorst < today {
						gain += f.weight * (today - candWorst)
					}
					continue
				}
				// The candidate is useful only if it can sit on a
				// re-route: both of the target's endpoints must be
				// SR-reachable from the candidate's endpoints.
				reachable := !math.IsInf(f.distA[int(cand.a)]+f.distB[int(cand.b)], 1) ||
					!math.IsInf(f.distA[int(cand.b)]+f.distB[int(cand.a)], 1)
				if !reachable {
					continue
				}
				// Gain proxy: a brand-new conduit carries one tenant,
				// so the most it can shave from this target's worst-
				// case sharing is the gap down to 1, relative to the
				// best option available today.
				today := math.Min(f.orig, f.current)
				if shave := today - 1; shave > 0 {
					// Discount by how far out of the way the candidate
					// is (accumulated SR of the connecting paths).
					detour := math.Min(f.distA[int(cand.a)]+f.distB[int(cand.b)],
						f.distA[int(cand.b)]+f.distB[int(cand.a)])
					gain += f.weight * shave / (1 + detour/10)
				}
			}
			return gain + cand.bonus - opts.Alpha*cand.km/1000
		})
		if err != nil {
			return nil, err
		}
		// Ordered reduce: the first strict improvement wins, exactly
		// as the serial scan behaved.
		bestIdx, bestScore := -1, 0.0
		for ci, score := range scores {
			if score > bestScore {
				bestIdx, bestScore = ci, score
			}
		}
		if bestIdx < 0 {
			break // no candidate has positive benefit
		}
		chosen := cands[bestIdx]
		cands = append(cands[:bestIdx], cands[bestIdx+1:]...)
		eid := g.AddEdge(int(chosen.a), int(chosen.b), chosen.km)
		newEdgeSharing[eid] = 0
		res.Additions = append(res.Additions, Addition{
			A: chosen.a, B: chosen.b, LengthKm: chosen.km, Benefit: bestScore,
		})

		// Record per-ISP improvement at this k.
		for _, st := range states {
			after := afterRisk(st)
			impr := 0.0
			if st.before > 0 {
				impr = 1 - after/st.before
			}
			if impr < 0 {
				impr = 0
			}
			prev := res.Improvement[st.name]
			// The series is cumulative; never report a regression
			// caused by approximation noise.
			if n := len(prev); n > 0 && impr < prev[n-1] {
				impr = prev[n-1]
			}
			res.Improvement[st.name] = append(prev, impr)
		}
	}
	return res, nil
}
