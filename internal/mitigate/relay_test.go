package mitigate

import (
	"context"
	"math"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/latency"
)

// relayMap builds a 4-node map whose direct A-B conduit detours far
// north (long), while two co-located midpoints C and D offer the
// identical short two-leg path: the planner must prefer a relay, and
// break the exact C/D tie toward the lower node id.
func relayMap(t *testing.T) (*fiber.Map, fiber.NodeID, fiber.NodeID, fiber.NodeID) {
	t.Helper()
	m := fiber.NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1000000, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 40, Lon: -96}, 1000000, -1)
	mid := geo.Point{Lat: 41, Lon: -98}
	c := m.AddNode("C", "XX", mid, 1000000, -1)
	d := m.AddNode("D", "XX", mid, 1000000, -1)
	mk := func(x, y fiber.NodeID, corr int, path geo.Polyline) {
		m.AddTenant(m.EnsureConduit(x, y, corr, path), "X")
	}
	gc := func(x, y fiber.NodeID) geo.Polyline {
		return geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2)
	}
	// The direct conduit swings through the far north.
	mk(a, b, 0, geo.Polyline{m.Node(a).Loc, {Lat: 50, Lon: -98}, m.Node(b).Loc})
	mk(a, c, 1, gc(a, c))
	mk(c, b, 2, gc(c, b))
	mk(a, d, 3, gc(a, d))
	mk(d, b, 4, gc(d, b))
	return m, a, b, c
}

func TestPlaceRelaysGreedy(t *testing.T) {
	m, a, b, c := relayMap(t)
	at, err := latency.Build(context.Background(), m, latency.Options{MinPopulation: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The modelled default route is the long direct conduit; the
	// two-leg relay path is what the atlas rows price.
	avg := geo.FiberLatencyMs(m.ConduitLengthKm(0))
	study := []PairLatency{{A: a, B: b, AvgMs: avg}}
	res := PlaceRelays(at, study, 3)
	if res.Pairs != 1 {
		t.Fatalf("Pairs = %d, want 1", res.Pairs)
	}
	if len(res.Relays) != 1 {
		t.Fatalf("relays = %+v, want exactly one (the co-located twin cannot improve further)", res.Relays)
	}
	r := res.Relays[0]
	if r.Node != c {
		t.Fatalf("relay = node %d, want %d (lowest id on the C/D tie)", r.Node, c)
	}
	if r.Node == a || r.Node == b {
		t.Fatal("relay must be an intermediate site")
	}
	ra, rc := at.RowIndex(a), at.RowIndex(c)
	wantVia := geo.FiberLatencyMs(at.DistKm(ra, c) + at.DistKm(rc, b))
	if wantVia >= avg {
		t.Fatalf("fixture broken: relay path %v ms not below direct %v ms", wantVia, avg)
	}
	if got := avg - wantVia; math.Abs(r.GainMs-got) > 1e-9 {
		t.Fatalf("GainMs = %v, want %v", r.GainMs, got)
	}
	if r.PairsImproved != 1 {
		t.Fatalf("PairsImproved = %d, want 1", r.PairsImproved)
	}
	if math.Abs(res.MeanBeforeMs-avg) > 1e-9 || math.Abs(res.MeanAfterMs-wantVia) > 1e-9 {
		t.Fatalf("means = %v -> %v, want %v -> %v", res.MeanBeforeMs, res.MeanAfterMs, avg, wantVia)
	}

	// Determinism: the scan is a pure fold over immutable rows.
	again := PlaceRelays(at, study, 3)
	if len(again.Relays) != 1 || again.Relays[0] != r {
		t.Fatalf("repeat run diverged: %+v vs %+v", again.Relays, res.Relays)
	}
}

func TestPlaceRelaysSkipsUnusablePairs(t *testing.T) {
	m, a, b, _ := relayMap(t)
	at, err := latency.Build(context.Background(), m, latency.Options{MinPopulation: 1})
	if err != nil {
		t.Fatal(err)
	}
	study := []PairLatency{
		{A: a, B: fiber.NodeID(99), AvgMs: 10}, // not an atlas source
		{A: a, B: b, AvgMs: math.NaN()},        // non-finite default delay
		{A: a, B: b, AvgMs: math.Inf(1)},
		{A: a, B: b, AvgMs: 0}, // degenerate zero delay
	}
	res := PlaceRelays(at, study, 2)
	if res.Pairs != 0 || len(res.Relays) != 0 {
		t.Fatalf("unusable pairs scored: %+v", res)
	}
	if res.MeanBeforeMs != 0 || res.MeanAfterMs != 0 {
		t.Fatalf("degenerate means = %+v", res)
	}
}

func TestPlaceRelaysDegenerateInputs(t *testing.T) {
	m, a, b, _ := relayMap(t)
	at, err := latency.Build(context.Background(), m, latency.Options{MinPopulation: 1})
	if err != nil {
		t.Fatal(err)
	}
	study := []PairLatency{{A: a, B: b, AvgMs: geo.FiberLatencyMs(1000)}}
	if res := PlaceRelays(nil, study, 2); res.Pairs != 0 || len(res.Relays) != 0 {
		t.Fatalf("nil atlas scored: %+v", res)
	}
	if res := PlaceRelays(at, study, 0); res.Pairs != 0 || len(res.Relays) != 0 {
		t.Fatalf("k=0 placed relays: %+v", res)
	}
	if res := PlaceRelays(at, nil, 3); res.Pairs != 0 || len(res.Relays) != 0 {
		t.Fatalf("empty study placed relays: %+v", res)
	}
}

// TestSummarizeDegenerate pins the no-NaN guarantee: disconnected
// pairs feed NaN/Inf delays into the summary, and every headline
// number must stay finite.
func TestSummarizeDegenerate(t *testing.T) {
	cases := []struct {
		name  string
		study []PairLatency
	}{
		{"empty", nil},
		{"all-nonfinite", []PairLatency{
			{BestMs: math.Inf(1), AvgMs: math.Inf(1), RowMs: math.Inf(1), LosMs: 1},
			{BestMs: math.NaN(), AvgMs: math.NaN(), RowMs: math.NaN(), LosMs: math.NaN()},
		}},
		{"zero-delays", []PairLatency{{}, {}}},
		{"mixed", []PairLatency{
			{BestMs: 2, AvgMs: 3, RowMs: 2, LosMs: 1},
			{BestMs: math.Inf(1), AvgMs: math.NaN(), RowMs: math.Inf(1), LosMs: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.study)
			for name, v := range map[string]float64{
				"BestEqualsROW": s.BestEqualsROW,
				"LosGapP50":     s.LosGapP50,
				"LosGapP75":     s.LosGapP75,
				"AvgToBest":     s.AvgToBest,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			if s.Pairs != len(tc.study) {
				t.Errorf("Pairs = %d, want %d", s.Pairs, len(tc.study))
			}
		})
	}
}
