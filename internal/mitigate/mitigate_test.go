package mitigate

import (
	"math"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
)

var (
	cachedRes *mapbuilder.Result
	cachedMx  *risk.Matrix
)

func build(t *testing.T) (*mapbuilder.Result, *risk.Matrix) {
	t.Helper()
	if cachedRes == nil {
		cachedRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
		cachedMx = risk.Build(cachedRes.Map, nil)
	}
	return cachedRes, cachedMx
}

// smallMap builds a hand-checked topology:
//
//	A --c0(3 tenants: X,Y,Z)-- B
//	A --c1(X)-- C --c2(X)-- B     (a 2-hop lightly shared detour)
func smallMap(t *testing.T) (*fiber.Map, *risk.Matrix, fiber.ConduitID) {
	t.Helper()
	m := fiber.NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1000000, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 40, Lon: -98}, 1000000, -1)
	c := m.AddNode("C", "XX", geo.Point{Lat: 41, Lon: -99}, 1000000, -1)
	mk := func(x, y fiber.NodeID, corr int) fiber.ConduitID {
		return m.EnsureConduit(x, y, corr, geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2))
	}
	c0 := mk(a, b, 0)
	c1 := mk(a, c, 1)
	c2 := mk(c, b, 2)
	for _, isp := range []string{"X", "Y", "Z"} {
		m.AddTenant(c0, isp)
	}
	m.AddTenant(c1, "X")
	m.AddTenant(c2, "X")
	return m, risk.Build(m, nil), c0
}

func TestRobustnessSuggestionSmall(t *testing.T) {
	m, mx, target := smallMap(t)
	out := RobustnessSuggestion(m, mx, []fiber.ConduitID{target}, 3)
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, r := range out {
		if r.Evaluated != 1 {
			t.Errorf("%s evaluated %d, want 1", r.ISP, r.Evaluated)
		}
		// The detour has 2 hops: PI = 1; its worst sharing is 1 vs the
		// original 3: SRR = 2.
		if r.PI.Avg != 1 {
			t.Errorf("%s PI = %+v", r.ISP, r.PI)
		}
		if r.SRR.Avg != 2 {
			t.Errorf("%s SRR = %+v", r.ISP, r.SRR)
		}
	}
	// Y and Z do not occupy the detour conduits, so X is their
	// suggested peer.
	for _, r := range out {
		if r.ISP == "Y" || r.ISP == "Z" {
			if len(r.SuggestedPeers) == 0 || r.SuggestedPeers[0] != "X" {
				t.Errorf("%s peers = %v, want X first", r.ISP, r.SuggestedPeers)
			}
		}
		if r.ISP == "X" && len(r.SuggestedPeers) != 0 {
			t.Errorf("X owns the whole detour; peers = %v", r.SuggestedPeers)
		}
	}
}

func TestRobustnessSuggestionFullMap(t *testing.T) {
	res, mx := build(t)
	targets := mx.TopShared(12)
	if len(targets) != 12 {
		t.Fatalf("targets = %d", len(targets))
	}
	out := RobustnessSuggestion(res.Map, mx, targets, 3)
	if len(out) != 20 {
		t.Fatalf("rows = %d", len(out))
	}
	level3Suggested := 0
	for _, r := range out {
		if r.Evaluated == 0 {
			continue
		}
		// Paper Figure 10: one-to-two extra conduits buy most of the
		// shared-risk reduction.
		if r.PI.Avg < 0.5 || r.PI.Avg > 8 {
			t.Errorf("%s PI avg = %v", r.ISP, r.PI.Avg)
		}
		if r.SRR.Avg <= 0 {
			t.Errorf("%s SRR avg = %v; re-routing should reduce risk", r.ISP, r.SRR.Avg)
		}
		if r.SRR.Max > float64(len(mx.ISPs)) {
			t.Errorf("%s SRR max = %v exceeds ISP count", r.ISP, r.SRR.Max)
		}
		for _, p := range r.SuggestedPeers {
			if p == r.ISP {
				t.Errorf("%s suggested itself", r.ISP)
			}
			if p == "Level 3" {
				level3Suggested++
			}
		}
	}
	// Paper Table 5: Level 3 is predominantly the best peer to add.
	if level3Suggested < 10 {
		t.Errorf("Level 3 suggested only %d times; expected to dominate Table 5", level3Suggested)
	}
}

func TestStatAccumulator(t *testing.T) {
	s := newStat()
	for _, v := range []float64{2, 4, 6} {
		s.add(v)
	}
	s.finish()
	if s.Min != 2 || s.Max != 6 || math.Abs(s.Avg-4) > 1e-9 || s.N != 3 {
		t.Errorf("stat = %+v", s)
	}
	empty := newStat()
	empty.finish()
	if empty.Min != 0 || empty.Max != 0 || empty.Avg != 0 {
		t.Errorf("empty stat = %+v", empty)
	}
}

func TestAddConduitsSmall(t *testing.T) {
	m, mx, _ := smallMap(t)
	res := AddConduits(m, mx, AddOptions{K: 2, MinKm: 50, MaxKm: 500})
	// The only candidate pairs already have conduits (A-B, A-C, C-B),
	// so nothing useful can be added on this tiny map.
	if len(res.Additions) != 0 {
		t.Errorf("additions = %v", res.Additions)
	}
}

func TestAddConduitsFullMap(t *testing.T) {
	res, mx := build(t)
	out := AddConduits(res.Map, mx, AddOptions{K: 6})
	if len(out.Additions) == 0 {
		t.Fatal("no additions chosen")
	}
	if len(out.Additions) > 6 {
		t.Fatalf("too many additions: %d", len(out.Additions))
	}
	for _, ad := range out.Additions {
		if ad.LengthKm < 100 || ad.LengthKm > 900 {
			t.Errorf("addition length %v outside window", ad.LengthKm)
		}
		if ad.Benefit <= 0 {
			t.Errorf("addition with non-positive benefit %v", ad.Benefit)
		}
		if len(res.Map.ConduitsBetween(ad.A, ad.B)) > 0 {
			t.Error("addition duplicates an existing conduit")
		}
	}
	// Improvement series: present for every ISP, within [0,1],
	// non-decreasing in k.
	if len(out.Improvement) != 20 {
		t.Fatalf("improvement for %d ISPs", len(out.Improvement))
	}
	for isp, series := range out.Improvement {
		if len(series) != len(out.Additions) {
			t.Fatalf("%s series length %d != %d", isp, len(series), len(out.Additions))
		}
		for i, v := range series {
			if v < 0 || v > 1 {
				t.Errorf("%s improvement[%d] = %v", isp, i, v)
			}
			if i > 0 && v < series[i-1]-1e-9 {
				t.Errorf("%s series decreases at k=%d", isp, i+1)
			}
		}
	}
	// Figure 11's ordering: small international backbones gain more
	// than the large incumbents with already-rich connectivity.
	final := func(isp string) float64 {
		s := out.Improvement[isp]
		return s[len(s)-1]
	}
	smallGain := (final("TeliaSonera") + final("Tata") + final("Deutsche Telekom")) / 3
	bigGain := (final("Level 3") + final("EarthLink")) / 2
	if smallGain <= bigGain {
		t.Errorf("small ISPs gain %.3f <= big ISPs %.3f; Figure 11 ordering violated", smallGain, bigGain)
	}
}

func TestLatencyStudySmall(t *testing.T) {
	res, _ := build(t)
	m, _, _ := smallMap(t)
	// The small map's nodes have no atlas cities, so ROW falls back to
	// the best existing path.
	study := LatencyStudy(m, res.Atlas, LatencyOptions{MinPopulation: 1})
	if len(study) == 0 {
		t.Fatal("no pairs studied")
	}
	for _, pl := range study {
		if pl.LosMs <= 0 || pl.BestMs <= 0 {
			t.Errorf("degenerate pair %+v", pl)
		}
		if pl.BestMs < pl.LosMs {
			t.Errorf("best %.3f beats line of sight %.3f", pl.BestMs, pl.LosMs)
		}
		if pl.AvgMs < pl.BestMs {
			t.Errorf("avg %.3f below best %.3f", pl.AvgMs, pl.BestMs)
		}
	}
}

func TestLatencyStudyFullMap(t *testing.T) {
	res, _ := build(t)
	study := LatencyStudy(res.Map, res.Atlas, LatencyOptions{MaxPairs: 800})
	if len(study) < 400 {
		t.Fatalf("pairs = %d", len(study))
	}
	for _, pl := range study {
		if pl.BestMs < pl.LosMs-1e-9 {
			t.Fatalf("best %.3f under LOS %.3f for %d-%d", pl.BestMs, pl.LosMs, pl.A, pl.B)
		}
		if pl.RowMs < pl.LosMs-1e-9 {
			t.Fatalf("ROW %.3f under LOS %.3f", pl.RowMs, pl.LosMs)
		}
		if pl.AvgMs < pl.BestMs-1e-9 {
			t.Fatalf("avg %.3f under best %.3f", pl.AvgMs, pl.BestMs)
		}
	}
	s := Summarize(study)
	// Paper: ~65% of best paths are also the best ROW paths; ours
	// lands nearby.
	if s.BestEqualsROW < 0.40 || s.BestEqualsROW > 0.90 {
		t.Errorf("BestEqualsROW = %.3f, want ~0.6", s.BestEqualsROW)
	}
	// The LOS gap grows through the distribution.
	if s.LosGapP75 < s.LosGapP50 {
		t.Error("LOS gap quantiles inverted")
	}
	if s.AvgToBest < 1 {
		t.Errorf("AvgToBest = %v", s.AvgToBest)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Pairs != 0 || s.BestEqualsROW != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestCDFSorted(t *testing.T) {
	study := []PairLatency{{BestMs: 3}, {BestMs: 1}, {BestMs: 2}}
	cdf := CDF(study, func(p PairLatency) float64 { return p.BestMs })
	if cdf[0] != 1 || cdf[1] != 2 || cdf[2] != 3 {
		t.Errorf("cdf = %v", cdf)
	}
}

// TestCDFDropsNonFinite: a disconnected pair reports +Inf (or NaN)
// latency; those values must be filtered, not fed to sort.Float64s —
// NaN has no total order, so one bad pair used to leave the CDF
// unsorted and the Figure 12 rendering scrambled.
func TestCDFDropsNonFinite(t *testing.T) {
	study := []PairLatency{
		{BestMs: 3},
		{BestMs: math.Inf(1)}, // disconnected pair
		{BestMs: 1},
		{BestMs: math.NaN()},
		{BestMs: 2},
		{BestMs: math.Inf(-1)},
	}
	cdf := CDF(study, func(p PairLatency) float64 { return p.BestMs })
	if len(cdf) != 3 {
		t.Fatalf("cdf kept %d values, want 3 finite ones: %v", len(cdf), cdf)
	}
	for i, want := range []float64{1, 2, 3} {
		if cdf[i] != want {
			t.Fatalf("cdf = %v, want [1 2 3]", cdf)
		}
	}
	if got := CDF(nil, func(p PairLatency) float64 { return p.BestMs }); len(got) != 0 {
		t.Errorf("empty study cdf = %v", got)
	}
}

func TestTopKeys(t *testing.T) {
	score := map[string]int{"b": 2, "a": 2, "c": 5}
	got := topKeys(score, 2)
	if len(got) != 2 || got[0] != "c" || got[1] != "a" {
		t.Errorf("topKeys = %v", got)
	}
	if got := topKeys(nil, 3); len(got) != 0 {
		t.Errorf("empty topKeys = %v", got)
	}
}

// TestAddConduitsCapacityObjective exercises the capacity-aware hook:
// a zero objective is byte-for-byte the pure shared-risk sweep, and a
// targeted bonus redirects the first pick.
func TestAddConduitsCapacityObjective(t *testing.T) {
	res, mx := build(t)
	base := AddConduits(res.Map, mx, AddOptions{K: 2})
	if len(base.Additions) == 0 {
		t.Fatal("baseline sweep chose nothing")
	}

	zero := AddConduits(res.Map, mx, AddOptions{K: 2,
		CapacityObjective: func(a, b fiber.NodeID, km float64) float64 { return 0 },
	})
	if len(zero.Additions) != len(base.Additions) {
		t.Fatalf("zero objective changed the addition count: %d vs %d",
			len(zero.Additions), len(base.Additions))
	}
	for i := range base.Additions {
		if zero.Additions[i] != base.Additions[i] {
			t.Errorf("zero objective changed addition %d: %+v vs %+v",
				i, zero.Additions[i], base.Additions[i])
		}
	}

	// Reward every candidate except the baseline winner; the first
	// pick must move and carry the bonus in its benefit.
	first := base.Additions[0]
	biased := AddConduits(res.Map, mx, AddOptions{K: 1,
		CapacityObjective: func(a, b fiber.NodeID, km float64) float64 {
			if a == first.A && b == first.B {
				return 0
			}
			return 1e6
		},
	})
	if len(biased.Additions) != 1 {
		t.Fatalf("biased sweep chose %d additions, want 1", len(biased.Additions))
	}
	got := biased.Additions[0]
	if got.A == first.A && got.B == first.B {
		t.Errorf("capacity objective did not redirect the pick from %v-%v", first.A, first.B)
	}
	if got.Benefit < 1e5 {
		t.Errorf("biased benefit %v does not reflect the objective term", got.Benefit)
	}

	// A capacity-proportional objective (the intended use) still
	// yields valid additions within the length window.
	capObj := AddConduits(res.Map, mx, AddOptions{K: 2,
		CapacityObjective: func(a, b fiber.NodeID, km float64) float64 {
			return fiber.CapacityGbps(a, b, km, 1) / 1000
		},
	})
	for _, ad := range capObj.Additions {
		if ad.LengthKm < 100 || ad.LengthKm > 900 {
			t.Errorf("capacity-biased addition length %v outside window", ad.LengthKm)
		}
	}
}

func TestAddConduitsExactMode(t *testing.T) {
	res, mx := build(t)
	exact := AddConduits(res.Map, mx, AddOptions{K: 3, Exact: true})
	approx := AddConduits(res.Map, mx, AddOptions{K: 3})
	if len(exact.Additions) == 0 {
		t.Fatal("exact mode chose nothing")
	}
	// Both modes must produce valid additions and improvements; the
	// exact mode's realized improvement should be at least comparable.
	mean := func(r *AddResult) float64 {
		var sum float64
		n := 0
		for _, series := range r.Improvement {
			sum += series[len(series)-1]
			n++
		}
		return sum / float64(n)
	}
	me, ma := mean(exact), mean(approx)
	if me <= 0 || ma <= 0 {
		t.Fatalf("improvements: exact %v approx %v", me, ma)
	}
	// The approximation should be within a factor of the exact
	// optimizer (this is the DESIGN.md ablation, asserted).
	if ma < me*0.5 {
		t.Errorf("approximation (%.4f) far below exact (%.4f)", ma, me)
	}
}

func TestLatencyImprovements(t *testing.T) {
	res, _ := build(t)
	study := LatencyStudy(res.Map, res.Atlas, LatencyOptions{MaxPairs: 800})
	imps := LatencyImprovements(res.Map, res.Atlas, study, 10, LatencyOptions{})
	if len(imps) == 0 {
		t.Fatal("no latency improvements proposed; ~40% of pairs are off the ROW bound")
	}
	for _, imp := range imps {
		if imp.SavedMs <= 0 {
			t.Errorf("non-positive saving %+v", imp)
		}
		if imp.RowMs > imp.BestMs {
			t.Errorf("ROW build slower than existing: %+v", imp)
		}
		if imp.NewFiberKm < 0 {
			t.Errorf("negative new fiber: %+v", imp)
		}
	}
	// Ranked by value density: zero-new-fiber reuse first, then by
	// saved-per-km.
	for i := 1; i < len(imps); i++ {
		zi, zj := imps[i-1].NewFiberKm == 0, imps[i].NewFiberKm == 0
		if !zi && zj {
			t.Error("zero-cost builds must sort first")
		}
	}
}
