package mitigate

import (
	"context"
	"math"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/latency"
	"intertubes/internal/par"
)

// latency.go implements §5.3: propagation delays between major city
// pairs, compared across four route classes — the best existing
// physical conduit path, the average over existing physical paths,
// the best path along any right-of-way (deployed or not), and the
// line-of-sight lower bound.
//
// The right-of-way network is deliberately denser than the long-haul
// corridor set: the paper's National Atlas road layer contains every
// US and state highway, not just the corridors fiber follows. We model
// that by augmenting the corridor graph with secondary-highway edges
// between nearby city pairs (great-circle length times a road
// circuity factor). That is what gives new ROW-following builds room
// to beat today's fiber paths, and the line of sight remains the
// floor under everything.

// PairLatency is one city pair's row of Figure 12's CDFs. All delays
// are one-way propagation in milliseconds.
type PairLatency struct {
	A, B   fiber.NodeID
	BestMs float64 // lowest-delay existing conduit path
	AvgMs  float64 // average over existing conduit paths
	RowMs  float64 // best path along any right-of-way
	LosMs  float64 // line of sight (great circle)
}

// LatencyOptions tunes the study.
type LatencyOptions struct {
	// MinPopulation restricts the study to city pairs at or above this
	// population — the paper's long-haul definition uses 100,000
	// (the default).
	MinPopulation int
	// KPaths is how many alternative existing paths contribute to the
	// average (default 4).
	KPaths int
	// MaxStretch drops alternative paths longer than this multiple of
	// the best (default 2.5); real traffic would never take them.
	MaxStretch float64
	// SecondaryKm is the maximum great-circle distance at which two
	// cities are assumed to be joined by a secondary highway absent a
	// mapped corridor (default 250 km).
	SecondaryKm float64
	// SecondaryCircuity inflates secondary-highway lengths over the
	// great circle (default 1.15).
	SecondaryCircuity float64
	// MaxPairs caps the number of city pairs studied (0 = no cap);
	// pairs are dropped deterministically by stride, not truncation.
	MaxPairs int
	// MaxLosKm restricts the study to pairs within this line-of-sight
	// distance (default 900 km, matching the 1-4 ms delay range of the
	// paper's Figure 12).
	MaxLosKm float64
	// Workers bounds the worker pool for the all-pairs sweep (<= 0
	// means all CPUs). The result is identical for any value.
	Workers int
}

func (o LatencyOptions) withDefaults() LatencyOptions {
	if o.MinPopulation == 0 {
		o.MinPopulation = 100000
	}
	if o.KPaths == 0 {
		o.KPaths = 4
	}
	if o.MaxStretch == 0 {
		o.MaxStretch = 2.5
	}
	if o.SecondaryKm == 0 {
		o.SecondaryKm = 250
	}
	if o.SecondaryCircuity == 0 {
		o.SecondaryCircuity = 1.15
	}
	if o.MaxLosKm == 0 {
		o.MaxLosKm = 900
	}
	return o
}

// rowGraph builds the full right-of-way graph over atlas cities:
// every corridor plus implicit secondary highways between nearby
// pairs.
func rowGraph(a *atlas.Atlas, opts LatencyOptions) *graph.Graph {
	g := a.Graph()
	for i := range a.Cities {
		for j := i + 1; j < len(a.Cities); j++ {
			d := a.Cities[i].Loc.DistanceKm(a.Cities[j].Loc)
			if d > opts.SecondaryKm {
				continue
			}
			g.AddEdge(i, j, d*opts.SecondaryCircuity)
		}
	}
	return g
}

// LatencyStudy computes PairLatency for every pair of map nodes whose
// cities meet the population threshold and that are connected through
// lit conduits. Pairs appear once (A < B).
func LatencyStudy(m *fiber.Map, a *atlas.Atlas, opts LatencyOptions) []PairLatency {
	study, _ := LatencyStudyCtx(context.Background(), m, a, opts) // background ctx: cannot fail
	return study
}

// LatencyStudyCtx is LatencyStudy with cooperative cancellation: the
// all-pairs sweep stops granting chunks once ctx is canceled and the
// call returns (nil, ctx.Err()). A completed study is bit-identical
// to LatencyStudy at any worker count.
func LatencyStudyCtx(ctx context.Context, m *fiber.Map, a *atlas.Atlas, opts LatencyOptions) ([]PairLatency, error) {
	opts = opts.withDefaults()
	g := m.Graph()
	rg := rowGraph(a, opts)

	// Major-city nodes, ascending id.
	var nodes []fiber.NodeID
	for i := range m.Nodes {
		if m.Nodes[i].Population >= opts.MinPopulation {
			nodes = append(nodes, fiber.NodeID(i))
		}
	}
	type pair struct{ a, b fiber.NodeID }
	var pairs []pair
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d := m.Node(nodes[i]).Loc.DistanceKm(m.Node(nodes[j]).Loc)
			if d > opts.MaxLosKm {
				continue
			}
			pairs = append(pairs, pair{a: nodes[i], b: nodes[j]})
		}
	}
	if opts.MaxPairs > 0 && len(pairs) > opts.MaxPairs {
		stride := (len(pairs) + opts.MaxPairs - 1) / opts.MaxPairs
		var kept []pair
		for i := 0; i < len(pairs); i += stride {
			kept = append(kept, pairs[i])
		}
		pairs = kept
	}

	// Phase 1 — source-batched SSSP rows (internal/latency): one full
	// Dijkstra per distinct source over the lit graph and one per
	// distinct atlas city over the ROW graph, instead of one query per
	// pair. A pair then reads its best-existing and best-ROW distances
	// straight off matrix rows; a row value is bit-identical to the
	// per-pair query it replaces (same Dijkstra accumulation, and an
	// early-stopped run settles dst at its final distance), so the
	// output bytes are unchanged — the worker-invariance suite pins
	// this.
	litWF := m.LitWeight()
	litSrc := make([]int32, len(nodes))
	litIdx := make([]int32, m.NumNodes()) // node id -> lit matrix row
	for i := range litIdx {
		litIdx[i] = -1
	}
	for i, id := range nodes {
		litSrc[i] = int32(id)
		litIdx[id] = int32(i)
	}
	litMx, err := latency.BuildMatrix(ctx, g, litWF, litSrc, opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	rowIdx := make([]int32, rg.NumVertices()) // atlas city -> ROW matrix row
	for i := range rowIdx {
		rowIdx[i] = -1
	}
	var rowSrc []int32
	for _, id := range nodes {
		if ac := m.Node(id).AtlasCity; ac >= 0 && ac < len(rowIdx) && rowIdx[ac] < 0 {
			rowIdx[ac] = 0 // mark; renumbered after the sort below
			rowSrc = append(rowSrc, int32(ac))
		}
	}
	sort.Slice(rowSrc, func(i, j int) bool { return rowSrc[i] < rowSrc[j] })
	for i, ac := range rowSrc {
		rowIdx[ac] = int32(i)
	}
	rowMx, err := latency.BuildMatrix(ctx, rg, nil, rowSrc, opts.Workers, nil)
	if err != nil {
		return nil, err
	}

	// Phase 2 — per-pair work that a distance matrix cannot batch:
	// Yen's k-shortest-paths for the alternative-path average. Pairs
	// the lit matrix shows disconnected skip Yen entirely (previously
	// each burned a full no-path Dijkstra); dropped pairs are filtered
	// during the ordered reduce.
	type pairResult struct {
		pl PairLatency
		ok bool
	}
	computed, err := par.MapCtxWith(ctx, len(pairs), opts.Workers, graph.NewWorkspace, func(i int, ws *graph.Workspace) pairResult {
		p := pairs[i]
		na, nb := m.Node(p.a), m.Node(p.b)
		pl := PairLatency{A: p.a, B: p.b}
		pl.LosMs = geo.FiberLatencyMs(na.Loc.DistanceKm(nb.Loc))

		// Best existing physical path over lit conduits, off the
		// batched matrix row.
		best := litMx.Row(int(litIdx[p.a]))[p.b]
		if math.IsInf(best, 0) {
			return pairResult{} // no lit path
		}
		paths := g.KShortestPathsWS(ws, int(p.a), int(p.b), opts.KPaths, litWF)
		if len(paths) == 0 {
			return pairResult{}
		}
		var sum float64
		n := 0
		for _, path := range paths {
			if path.Weight > best*opts.MaxStretch {
				break
			}
			sum += path.Weight
			n++
		}
		pl.BestMs = geo.FiberLatencyMs(best)
		pl.AvgMs = geo.FiberLatencyMs(sum / float64(n))

		// Best right-of-way distance over the augmented ROW graph (the
		// route itself is not needed here, only its length).
		if na.AtlasCity >= 0 && na.AtlasCity < rg.NumVertices() &&
			nb.AtlasCity >= 0 && nb.AtlasCity < rg.NumVertices() {
			if ri := rowIdx[na.AtlasCity]; ri >= 0 {
				if d := rowMx.Row(int(ri))[nb.AtlasCity]; !math.IsInf(d, 0) {
					pl.RowMs = geo.FiberLatencyMs(d)
				}
			}
		}
		if pl.RowMs == 0 {
			pl.RowMs = pl.BestMs
		}
		return pairResult{pl: pl, ok: true}
	})
	if err != nil {
		return nil, err
	}
	out := make([]PairLatency, 0, len(pairs))
	for _, r := range computed {
		if r.ok {
			out = append(out, r.pl)
		}
	}
	return out, nil
}

// LatencySummary aggregates Figure 12's headline comparisons.
type LatencySummary struct {
	Pairs int
	// BestEqualsROW is the fraction of pairs whose best existing path
	// already achieves (within 2%) the best right-of-way delay — the
	// paper reports about 65%.
	BestEqualsROW float64
	// LosGapP50/P75 are quantiles of (best-ROW minus line-of-sight) in
	// ms (the paper: <0.1 ms for 50% of paths, >0.5 ms for 25%).
	LosGapP50, LosGapP75 float64
	// AvgToBest is the median ratio of average to best existing delay.
	AvgToBest float64
}

// Summarize derives the headline numbers from a study. Degenerate
// input — an empty study, or pairs carrying NaN/Inf delays from a
// disconnected map — never yields NaN percentiles: non-finite values
// are excluded from every quantile, and a quantile with no finite
// samples reports zero.
func Summarize(study []PairLatency) LatencySummary {
	s := LatencySummary{Pairs: len(study)}
	if len(study) == 0 {
		return s
	}
	equal := 0
	var gaps, ratios []float64
	for _, pl := range study {
		if pl.BestMs <= pl.RowMs*1.02 {
			equal++
		}
		if gap := math.Max(0, pl.RowMs-pl.LosMs); isFinite(gap) {
			gaps = append(gaps, gap)
		}
		if pl.BestMs > 0 {
			if r := pl.AvgMs / pl.BestMs; isFinite(r) {
				ratios = append(ratios, r)
			}
		}
	}
	s.BestEqualsROW = float64(equal) / float64(len(study))
	sort.Float64s(gaps)
	sort.Float64s(ratios)
	if len(gaps) > 0 {
		s.LosGapP50 = gaps[len(gaps)/2]
		s.LosGapP75 = gaps[len(gaps)*3/4]
	}
	if len(ratios) > 0 {
		s.AvgToBest = ratios[len(ratios)/2]
	}
	return s
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CDF returns the sorted finite values of one latency class across
// the study, for rendering Figure 12. Non-finite values — a
// disconnected pair reports +Inf or NaN latency — are dropped rather
// than sorted: NaN has no total order under sort.Float64s, so a
// single unreachable pair used to scramble the whole CDF.
func CDF(study []PairLatency, pick func(PairLatency) float64) []float64 {
	out := make([]float64, 0, len(study))
	for _, pl := range study {
		v := pick(pl)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
