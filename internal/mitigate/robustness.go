// Package mitigate implements §5 of the paper: improving the existing
// long-haul infrastructure. Three analyses:
//
//   - RobustnessSuggestion (§5.1): re-route around the most heavily
//     shared conduits using only existing conduits, quantifying path
//     inflation (PI) and shared-risk reduction (SRR), and deriving
//     peering suggestions (Table 5, Figure 10).
//   - AddConduits (§5.2): greedily add up to k new city-to-city
//     conduits that maximize global shared-risk reduction per fiber
//     mile (Figure 11).
//   - LatencyStudy (§5.3): per city pair, compare the best and average
//     existing-path delays with the best right-of-way path and the
//     line-of-sight lower bound (Figure 12).
package mitigate

import (
	"math"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/risk"
)

// Stat summarizes a metric's distribution across targets.
type Stat struct {
	Min, Max, Avg float64
	N             int
}

func newStat() Stat { return Stat{Min: math.Inf(1), Max: math.Inf(-1)} }

func (s *Stat) add(v float64) {
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	s.Avg += v
	s.N++
}

func (s *Stat) finish() {
	if s.N > 0 {
		s.Avg /= float64(s.N)
	} else {
		s.Min, s.Max = 0, 0
	}
}

// ISPRobustness is one ISP's row of Figure 10 plus its Table 5
// peering suggestions.
type ISPRobustness struct {
	ISP string
	// Evaluated counts the target conduits this ISP occupies (and so
	// had to re-route).
	Evaluated int
	// PI is path inflation: extra hops of the optimized path versus
	// the single original conduit.
	PI Stat
	// SRR is shared-risk reduction: tenants on the original conduit
	// minus the worst-case tenants along the optimized path.
	SRR Stat
	// SuggestedPeers are the top owners of optimized-path conduits the
	// ISP does not occupy (Table 5).
	SuggestedPeers []string
}

// hopPenalty regularizes the shared-risk objective: the paper's
// eq. 1 minimizes summed sharing over coarse conduits, which at our
// finer conduit granularity would happily take ten short low-share
// hops to save one unit of risk. Charging a constant per hop keeps
// optimized paths operationally sensible (every hop is a real
// wavelength/regeneration cost) and restores the paper's "one-to-two
// extra conduits" result.
const hopPenalty = 2.0

// RobustnessSuggestion runs the §5.1 framework: for every ISP and
// every target conduit in its footprint, find the path between the
// conduit's endpoints over all other lit conduits that minimizes
// total shared risk (eq. 1, hop-regularized), and report PI, SRR,
// and peering suggestions. topPeers bounds the suggestion list (the
// paper shows 3).
func RobustnessSuggestion(m *fiber.Map, mx *risk.Matrix, targets []fiber.ConduitID, topPeers int) []ISPRobustness {
	g := m.Graph()
	// One workspace serves every shortest-path query of the scan.
	ws := graph.NewWorkspace()
	var out []ISPRobustness
	for _, isp := range mx.ISPs {
		r := ISPRobustness{ISP: isp, PI: newStat(), SRR: newStat()}
		peerScore := make(map[string]int)
		for _, target := range targets {
			c := m.Conduit(target)
			if !c.HasTenant(isp) {
				continue
			}
			r.Evaluated++
			// Minimum shared-risk path avoiding the target conduit,
			// over all lit conduits (the framework may use conduits
			// outside the ISP's own footprint — that is where peering
			// suggestions come from).
			srWeight := func(eid int) float64 {
				if fiber.ConduitID(eid) == target {
					return math.Inf(1)
				}
				s := mx.Sharing(fiber.ConduitID(eid))
				if s == 0 {
					return math.Inf(1) // unlit conduit
				}
				return float64(s) + hopPenalty
			}
			path, ok := g.ShortestPathWS(ws, int(c.A), int(c.B), srWeight)
			if !ok {
				continue
			}
			maxSharing := 0
			for _, eid := range path.Edges {
				s := mx.Sharing(fiber.ConduitID(eid))
				if s > maxSharing {
					maxSharing = s
				}
				// Peering: owners of conduits the ISP does not occupy.
				pc := m.Conduit(fiber.ConduitID(eid))
				if !pc.HasTenant(isp) {
					for _, owner := range pc.Tenants {
						if owner != isp {
							peerScore[owner]++
						}
					}
				}
			}
			r.PI.add(float64(path.Hops() - 1))
			srr := mx.Sharing(target) - maxSharing
			if srr < 0 {
				srr = 0
			}
			r.SRR.add(float64(srr))
		}
		r.PI.finish()
		r.SRR.finish()
		r.SuggestedPeers = topKeys(peerScore, topPeers)
		out = append(out, r)
	}
	return out
}

// topKeys returns the n keys with the highest counts, ties broken
// alphabetically for determinism.
func topKeys(score map[string]int, n int) []string {
	keys := make([]string, 0, len(score))
	for k := range score {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if score[keys[i]] != score[keys[j]] {
			return score[keys[i]] > score[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// pathSharedRisk sums the sharing degrees along a path (eq. 1's SR).
func pathSharedRisk(mx *risk.Matrix, path graph.Path) float64 {
	var sr float64
	for _, eid := range path.Edges {
		sr += float64(mx.Sharing(fiber.ConduitID(eid)))
	}
	return sr
}
