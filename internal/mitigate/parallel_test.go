package mitigate

import (
	"reflect"
	"testing"
)

// TestLatencyStudyWorkerInvariance pins the parallel all-pairs sweep
// to the serial result for several worker counts.
func TestLatencyStudyWorkerInvariance(t *testing.T) {
	res, _ := build(t)
	base := LatencyStudy(res.Map, res.Atlas, LatencyOptions{MaxPairs: 250, Workers: 1})
	if len(base) == 0 {
		t.Fatal("empty latency study")
	}
	for _, workers := range []int{2, 6} {
		got := LatencyStudy(res.Map, res.Atlas, LatencyOptions{MaxPairs: 250, Workers: workers})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: latency pairs diverge from serial", workers)
		}
	}
}

// TestLatencyImprovementsWorkerInvariance pins the parallel §5.3
// build-proposal sweep to the serial result: the ranked proposals must
// be identical for any worker count.
func TestLatencyImprovementsWorkerInvariance(t *testing.T) {
	res, _ := build(t)
	study := LatencyStudy(res.Map, res.Atlas, LatencyOptions{MaxPairs: 250, Workers: 1})
	base := LatencyImprovements(res.Map, res.Atlas, study, 10, LatencyOptions{Workers: 1})
	if len(base) == 0 {
		t.Fatal("no proposed builds")
	}
	for _, workers := range []int{2, 6} {
		got := LatencyImprovements(res.Map, res.Atlas, study, 10, LatencyOptions{Workers: workers})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: proposed builds diverge from serial", workers)
		}
	}
}

// TestAddConduitsDeterministicFullMap is the regression guard for the
// §5.2 greedy sweep on the full seed-42 map: the chosen additions must
// not depend on the worker count, and the top-k endpoints are pinned
// as golden values so any drift in candidate scoring (for example a
// reintroduced map-iteration sum) fails loudly here.
func TestAddConduitsDeterministicFullMap(t *testing.T) {
	if testing.Short() {
		t.Skip("full-map greedy sweep")
	}
	res, mx := build(t)
	run := func(workers int) *AddResult {
		return AddConduits(res.Map, mx, AddOptions{K: 3, Workers: workers})
	}
	base := run(1)
	if len(base.Additions) != 3 {
		t.Fatalf("additions = %d, want 3", len(base.Additions))
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !reflect.DeepEqual(got.Additions, base.Additions) {
			t.Errorf("workers=%d: additions diverge from serial", workers)
		}
		if !reflect.DeepEqual(got.Improvement, base.Improvement) {
			t.Errorf("workers=%d: improvement curves diverge from serial", workers)
		}
	}

	// Golden endpoints for mapbuilder seed 42, AddOptions{K: 3}.
	// Regenerate by logging base.Additions if the map pipeline or the
	// scoring objective changes intentionally.
	golden := [][2]string{
		{"Santa Barbara,CA", "Anaheim,CA"},
		{"Santa Barbara,CA", "Riverside,CA"},
		{"Newark,NJ", "Scranton,PA"},
	}
	for i, add := range base.Additions {
		a := res.Map.Node(add.A).Key()
		b := res.Map.Node(add.B).Key()
		if a != golden[i][0] || b != golden[i][1] {
			t.Errorf("addition %d = %s -- %s, want %s -- %s", i, a, b, golden[i][0], golden[i][1])
		}
	}
}
