// Package risk implements §4 of the paper: the risk matrix over
// (ISP × conduit) and the metrics built on it — conduit sharing counts
// (Figure 6), per-ISP average shared risk with percentiles (Figure 7),
// and Hamming-distance similarity of ISP risk profiles (Figure 8).
package risk

import (
	"math"
	"sort"

	"intertubes/internal/fiber"
)

// Matrix is the paper's risk matrix: rows are ISPs, columns are
// conduits, and an entry is the number of ISPs sharing that conduit if
// the row ISP occupies it, zero otherwise.
type Matrix struct {
	ISPs     []string
	Conduits []fiber.ConduitID
	// present[i][j] reports whether ISP i occupies conduit j.
	present [][]bool
	// sharing[j] is the number of matrix ISPs occupying conduit j.
	sharing []int
	colOf   map[fiber.ConduitID]int
}

// Build constructs the risk matrix for the given ISPs over every
// conduit at least one of them occupies. Passing nil ISPs uses all
// published tenants in the map.
func Build(m *fiber.Map, isps []string) *Matrix {
	if isps == nil {
		isps = m.ISPs()
	}
	return BuildFrom(m, isps)
}

// BuildFrom constructs the risk matrix over any fiber.View — the
// baseline map itself or a scenario overlay — for the given ISPs.
// Conduit iteration runs in ascending id order, so the matrix built
// from an overlay is identical (columns, sharing counts, presence) to
// one built from the equivalent materialized map.
func BuildFrom(v fiber.View, isps []string) *Matrix {
	mx := &Matrix{ISPs: isps, colOf: make(map[fiber.ConduitID]int)}
	ispSet := make(map[string]int, len(isps))
	for i, isp := range isps {
		ispSet[isp] = i
	}
	// Columns: conduits occupied by at least one matrix ISP, in id
	// order.
	nc := v.NumConduits()
	for cid := fiber.ConduitID(0); int(cid) < nc; cid++ {
		n := 0
		for _, t := range v.Tenants(cid) {
			if _, ok := ispSet[t]; ok {
				n++
			}
		}
		if n == 0 {
			continue
		}
		mx.colOf[cid] = len(mx.Conduits)
		mx.Conduits = append(mx.Conduits, cid)
		mx.sharing = append(mx.sharing, n)
	}
	mx.present = make([][]bool, len(isps))
	for i := range mx.present {
		mx.present[i] = make([]bool, len(mx.Conduits))
	}
	for j, cid := range mx.Conduits {
		for _, t := range v.Tenants(cid) {
			if i, ok := ispSet[t]; ok {
				mx.present[i][j] = true
			}
		}
	}
	return mx
}

// Sharing returns the number of matrix ISPs occupying the conduit
// (zero if the conduit is not a matrix column).
func (mx *Matrix) Sharing(cid fiber.ConduitID) int {
	if j, ok := mx.colOf[cid]; ok {
		return mx.sharing[j]
	}
	return 0
}

// Occupies reports whether the ISP occupies the conduit.
func (mx *Matrix) Occupies(isp string, cid fiber.ConduitID) bool {
	j, ok := mx.colOf[cid]
	if !ok {
		return false
	}
	for i, name := range mx.ISPs {
		if name == isp {
			return mx.present[i][j]
		}
	}
	return false
}

// SharingCounts returns, for k = 1..len(ISPs), the number of conduits
// shared by at least k matrix ISPs — the y-values of Figure 6.
// Index 0 corresponds to k=1.
func (mx *Matrix) SharingCounts() []int {
	out := make([]int, len(mx.ISPs))
	for _, n := range mx.sharing {
		for k := 1; k <= n && k <= len(out); k++ {
			out[k-1]++
		}
	}
	return out
}

// SharedAtLeast returns the conduits shared by at least k matrix ISPs,
// most-shared first (ties by conduit id).
func (mx *Matrix) SharedAtLeast(k int) []fiber.ConduitID {
	type pair struct {
		cid fiber.ConduitID
		n   int
	}
	var ps []pair
	for j, cid := range mx.Conduits {
		if mx.sharing[j] >= k {
			ps = append(ps, pair{cid: cid, n: mx.sharing[j]})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].n != ps[j].n {
			return ps[i].n > ps[j].n
		}
		return ps[i].cid < ps[j].cid
	})
	out := make([]fiber.ConduitID, len(ps))
	for i, p := range ps {
		out[i] = p.cid
	}
	return out
}

// TopShared returns the n most-shared conduits (the paper's "12 out of
// 542 conduits shared by more than 17 ISPs" target set).
func (mx *Matrix) TopShared(n int) []fiber.ConduitID {
	all := mx.SharedAtLeast(1)
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// ISPRisk is one bar of Figure 7: the distribution of sharing degrees
// over an ISP's conduits.
type ISPRisk struct {
	ISP      string
	Conduits int
	// Mean is the average number of matrix ISPs sharing the conduits
	// this ISP uses (including itself).
	Mean float64
	// StdErr is the standard error of that mean.
	StdErr float64
	// P25, P75 are the quartiles of the sharing distribution.
	P25, P75 float64
	// SharedConduits counts this ISP's conduits occupied by at least
	// one other matrix ISP (the "raw number of shared conduits").
	SharedConduits int
}

// Ranking computes Figure 7: per-ISP average shared risk, sorted by
// increasing mean (the paper plots ISPs from least to most exposed).
func (mx *Matrix) Ranking() []ISPRisk {
	out := make([]ISPRisk, 0, len(mx.ISPs))
	for i, isp := range mx.ISPs {
		var vals []float64
		shared := 0
		for j := range mx.Conduits {
			if !mx.present[i][j] {
				continue
			}
			vals = append(vals, float64(mx.sharing[j]))
			if mx.sharing[j] >= 2 {
				shared++
			}
		}
		r := ISPRisk{ISP: isp, Conduits: len(vals), SharedConduits: shared}
		if len(vals) > 0 {
			var sum float64
			for _, v := range vals {
				sum += v
			}
			r.Mean = sum / float64(len(vals))
			var ss float64
			for _, v := range vals {
				ss += (v - r.Mean) * (v - r.Mean)
			}
			if len(vals) > 1 {
				r.StdErr = math.Sqrt(ss/float64(len(vals)-1)) / math.Sqrt(float64(len(vals)))
			}
			sort.Float64s(vals)
			r.P25 = quantile(vals, 0.25)
			r.P75 = quantile(vals, 0.75)
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Mean < out[b].Mean })
	return out
}

// quantile returns the q-quantile of sorted vals by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Hamming returns the pairwise Hamming distances between ISP presence
// vectors — Figure 8's heat map. Smaller distance means more similar
// risk profiles.
func (mx *Matrix) Hamming() [][]int {
	n := len(mx.ISPs)
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 0
			for c := range mx.Conduits {
				if mx.present[i][c] != mx.present[j][c] {
					d++
				}
			}
			out[i][j], out[j][i] = d, d
		}
	}
	return out
}

// MeanSharing returns the average sharing degree across all matrix
// conduits (used as the global shared-risk scalar in §5 comparisons).
func (mx *Matrix) MeanSharing() float64 {
	if len(mx.sharing) == 0 {
		return 0
	}
	sum := 0
	for _, n := range mx.sharing {
		sum += n
	}
	return float64(sum) / float64(len(mx.sharing))
}
