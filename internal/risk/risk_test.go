package risk

import (
	"math"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
)

// testMap builds a small map with known sharing:
//
//	c0 A-B: L3, Sprint, ATT   (3 tenants)
//	c1 B-C: L3, Sprint        (2)
//	c2 C-D: L3                (1)
//	c3 A-D: Cox               (1, Cox only)
func testMap(t *testing.T) *fiber.Map {
	t.Helper()
	m := fiber.NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 41, Lon: -101}, 1, -1)
	c := m.AddNode("C", "XX", geo.Point{Lat: 42, Lon: -102}, 1, -1)
	d := m.AddNode("D", "XX", geo.Point{Lat: 43, Lon: -103}, 1, -1)
	mk := func(x, y fiber.NodeID, corr int) fiber.ConduitID {
		return m.EnsureConduit(x, y, corr, geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2))
	}
	c0 := mk(a, b, 0)
	c1 := mk(b, c, 1)
	c2 := mk(c, d, 2)
	c3 := mk(a, d, 3)
	for _, isp := range []string{"Level 3", "Sprint", "AT&T"} {
		m.AddTenant(c0, isp)
	}
	m.AddTenant(c1, "Level 3")
	m.AddTenant(c1, "Sprint")
	m.AddTenant(c2, "Level 3")
	m.AddTenant(c3, "Cox")
	return m
}

func TestBuildDimensions(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	if len(mx.ISPs) != 4 {
		t.Errorf("ISPs = %v", mx.ISPs)
	}
	if len(mx.Conduits) != 4 {
		t.Errorf("conduits = %v", mx.Conduits)
	}
}

func TestSharingValues(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	want := map[int]int{0: 3, 1: 2, 2: 1, 3: 1}
	for cid, n := range want {
		if got := mx.Sharing(fiber.ConduitID(cid)); got != n {
			t.Errorf("sharing(%d) = %d, want %d", cid, got, n)
		}
	}
	if mx.Sharing(fiber.ConduitID(99)) != 0 {
		t.Error("unknown conduit should have zero sharing")
	}
}

func TestOccupies(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	if !mx.Occupies("Level 3", 0) || mx.Occupies("Cox", 0) {
		t.Error("occupancy wrong for conduit 0")
	}
	if !mx.Occupies("Cox", 3) || mx.Occupies("Level 3", 3) {
		t.Error("occupancy wrong for conduit 3")
	}
	if mx.Occupies("Nobody", 0) {
		t.Error("unknown ISP occupies nothing")
	}
}

func TestSharingCountsFigure6(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	counts := mx.SharingCounts()
	// k=1: all 4 conduits; k=2: c0,c1; k=3: c0; k=4: none.
	want := []int{4, 2, 1, 0}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("counts[k=%d] = %d, want %d", i+1, counts[i], w)
		}
	}
	// Monotone non-increasing by construction.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Error("sharing counts must be non-increasing")
		}
	}
}

func TestSharedAtLeastAndTopShared(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	ge2 := mx.SharedAtLeast(2)
	if len(ge2) != 2 || ge2[0] != 0 || ge2[1] != 1 {
		t.Errorf("SharedAtLeast(2) = %v", ge2)
	}
	top := mx.TopShared(3)
	if len(top) != 3 || top[0] != 0 {
		t.Errorf("TopShared = %v", top)
	}
	if got := mx.TopShared(100); len(got) != 4 {
		t.Errorf("TopShared(100) = %v", got)
	}
}

func TestRankingFigure7(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	ranking := mx.Ranking()
	if len(ranking) != 4 {
		t.Fatalf("ranking = %v", ranking)
	}
	// Cox only uses its private conduit: mean sharing 1, least risk.
	if ranking[0].ISP != "Cox" || ranking[0].Mean != 1 {
		t.Errorf("least exposed = %+v", ranking[0])
	}
	// AT&T only uses the 3-way conduit: mean sharing 3, most risk.
	last := ranking[len(ranking)-1]
	if last.ISP != "AT&T" || last.Mean != 3 {
		t.Errorf("most exposed = %+v", last)
	}
	// Level 3 spans sharing degrees {3,2,1}: mean 2.
	for _, r := range ranking {
		if r.ISP == "Level 3" {
			if math.Abs(r.Mean-2) > 1e-9 {
				t.Errorf("Level 3 mean = %v", r.Mean)
			}
			if r.Conduits != 3 || r.SharedConduits != 2 {
				t.Errorf("Level 3 conduits = %d shared = %d", r.Conduits, r.SharedConduits)
			}
			if r.P25 >= r.P75 {
				t.Errorf("quartiles inverted: %v %v", r.P25, r.P75)
			}
			if r.StdErr <= 0 {
				t.Errorf("stderr = %v", r.StdErr)
			}
		}
	}
	// Sorted ascending by mean.
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Mean < ranking[i-1].Mean {
			t.Error("ranking not sorted")
		}
	}
}

func TestHammingFigure8(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	h := mx.Hamming()
	idx := map[string]int{}
	for i, isp := range mx.ISPs {
		idx[isp] = i
	}
	// Level 3 = {c0,c1,c2}, Sprint = {c0,c1}: differ only in c2.
	if d := h[idx["Level 3"]][idx["Sprint"]]; d != 1 {
		t.Errorf("L3-Sprint = %d, want 1", d)
	}
	// Sprint = {c0,c1}, Cox = {c3}: differ in 3 columns.
	if d := h[idx["Sprint"]][idx["Cox"]]; d != 3 {
		t.Errorf("Sprint-Cox = %d, want 3", d)
	}
	// Symmetric with zero diagonal.
	for i := range h {
		if h[i][i] != 0 {
			t.Error("diagonal must be zero")
		}
		for j := range h {
			if h[i][j] != h[j][i] {
				t.Error("must be symmetric")
			}
		}
	}
}

func TestMeanSharing(t *testing.T) {
	m := testMap(t)
	mx := Build(m, nil)
	// (3+2+1+1)/4 = 1.75
	if got := mx.MeanSharing(); math.Abs(got-1.75) > 1e-9 {
		t.Errorf("mean sharing = %v", got)
	}
}

func TestBuildWithSubset(t *testing.T) {
	m := testMap(t)
	mx := Build(m, []string{"Level 3", "Sprint"})
	// Only conduits occupied by the subset are columns; Cox's private
	// conduit is excluded.
	if len(mx.Conduits) != 3 {
		t.Errorf("conduits = %v", mx.Conduits)
	}
	// Sharing counts only count subset members.
	if mx.Sharing(0) != 2 {
		t.Errorf("subset sharing(0) = %d, want 2", mx.Sharing(0))
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := fiber.NewMap()
	mx := Build(m, nil)
	if mx.MeanSharing() != 0 {
		t.Error("empty matrix mean should be 0")
	}
	if len(mx.SharingCounts()) != 0 {
		t.Error("no ISPs, no counts")
	}
	if mx.Ranking() != nil && len(mx.Ranking()) != 0 {
		t.Error("empty ranking expected")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if q := quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(vals, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(vals, 0.5); math.Abs(q-2.5) > 1e-9 {
		t.Errorf("median = %v", q)
	}
	if q := quantile([]float64{7}, 0.5); q != 7 {
		t.Errorf("single = %v", q)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}
