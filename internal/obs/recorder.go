package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// recorder.go is the per-evaluation flight recorder: StartTrace opens
// a root span with a fresh trace ID, every span opened through Trace
// on that context chain joins the same trace (inheriting a span ID and
// parent span ID), and when the root span ends the completed span tree
// is folded into a bounded TraceStore. The store's retention policy
// always keeps the N most recent and the N slowest traces, so "why was
// that evaluation slow" stays answerable after the fact.
//
// The cost discipline mirrors the metrics registry: when recording is
// disabled (store disabled, or the span is outside any recorded
// trace), every recorder entry point is a nil-check and nothing
// allocates — guarded by alloc_test.go. The enabled path pays one
// small record per span, appended under the trace's own mutex (spans
// from par worker goroutines end concurrently), never a global lock.

var tracesRecorded = GetCounter("traces_recorded_total",
	"Completed traces folded into the flight-recorder store.")

// Attr is one structured key/value attribute attached to a span
// ("path"="overlay", "outcome"="reused", "touched"="3").
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time annotation inside a span, stamped with its
// offset from the span's start.
type Event struct {
	Name string `json:"name"`
	AtNs int64  `json:"atNs"`
}

// SpanRecord is one completed span of a recorded trace. Span IDs are
// assigned per trace, root first (span 1, parent 0).
type SpanRecord struct {
	SpanID   uint32  `json:"spanId"`
	ParentID uint32  `json:"parentId,omitempty"`
	Name     string  `json:"name"`
	StartNs  int64   `json:"startNs"` // offset from the trace start
	DurNs    int64   `json:"durNs"`
	Items    int64   `json:"items,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Events   []Event `json:"events,omitempty"`
}

// TraceRecord is one completed trace: the root span's identity plus
// every span that ended before the root did, sorted by start offset.
// Records are immutable once in the store; treat them as read-only.
type TraceRecord struct {
	ID    string       `json:"id"`
	Root  string       `json:"root"`
	Start time.Time    `json:"start"`
	DurNs int64        `json:"durNs"`
	Spans []SpanRecord `json:"spans"`
}

// TraceSummary is one row of the store index.
type TraceSummary struct {
	ID    string    `json:"id"`
	Root  string    `json:"root"`
	Start time.Time `json:"start"`
	DurNs int64     `json:"durNs"`
	Spans int       `json:"spans"`
	// Slowest marks traces held by the slowest-N retention set (a
	// trace can be both recent and slowest).
	Slowest bool `json:"slowest,omitempty"`
}

// traceRec is the in-flight accumulation of one recorded trace. Spans
// fold into it as they end; the root span's End seals it and ships the
// TraceRecord to the store. Spans that end after the seal are dropped
// (an abandoned singleflight evaluation outliving its caller).
type traceRec struct {
	store  *TraceStore
	idStr  string
	start  time.Time
	nextID atomic.Uint32

	mu     sync.Mutex
	sealed bool
	spans  []SpanRecord
}

func (r *traceRec) fold(s *Span, d time.Duration) {
	sr := SpanRecord{
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.Name,
		StartNs:  s.start.Sub(r.start).Nanoseconds(),
		DurNs:    int64(d),
		Items:    s.items,
		Workers:  s.workers,
		Attrs:    s.attrs,
		Events:   s.events,
	}
	r.mu.Lock()
	if !r.sealed {
		r.spans = append(r.spans, sr)
	}
	r.mu.Unlock()
	if s.root {
		r.seal(d)
	}
}

// seal snapshots the span set, sorts it into a stable tree order
// (start offset, then span ID), and hands the record to the store.
func (r *traceRec) seal(rootDur time.Duration) {
	r.mu.Lock()
	r.sealed = true
	spans := r.spans
	r.spans = nil
	r.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	root := ""
	for i := range spans {
		if spans[i].SpanID == 1 {
			root = spans[i].Name
			break
		}
	}
	r.store.add(&TraceRecord{
		ID:    r.idStr,
		Root:  root,
		Start: r.start,
		DurNs: int64(rootDur),
		Spans: spans,
	})
}

// Trace IDs: a per-process random salt (crypto/rand, read once at
// init) mixed with an atomic counter through a splitmix64 finalizer.
// Unique within a process run, unguessable enough to dedupe across
// restarts, and never touching math/rand's global stream.
var (
	traceIDCounter atomic.Uint64
	traceIDSalt    = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0x9E3779B97F4A7C15 // deterministic fallback; IDs stay unique per process
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

func newTraceID() string {
	z := traceIDSalt + traceIDCounter.Add(1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return strconv.FormatUint(z, 16)
}

// TraceStore is the bounded flight-recorder sink. Retention keeps two
// overlapping sets: the capRecent most recently completed traces (a
// FIFO window) and the capSlow slowest ever seen since the last Reset
// (a min-ordered board an incoming trace must beat). Lookups scan both
// sets — capacities are small by design.
type TraceStore struct {
	enabled atomic.Bool

	mu        sync.Mutex
	capRecent int
	capSlow   int
	recent    []*TraceRecord // oldest first
	slow      []*TraceRecord // ascending DurNs; [0] is the one to beat
}

// NewTraceStore returns an enabled store retaining up to recent
// most-recent and slowest slowest traces (minimum 1 each).
func NewTraceStore(recent, slowest int) *TraceStore {
	if recent < 1 {
		recent = 1
	}
	if slowest < 1 {
		slowest = 1
	}
	st := &TraceStore{capRecent: recent, capSlow: slowest}
	st.enabled.Store(true)
	return st
}

// DefaultTraces is the process-global flight recorder StartTrace
// samples into. Enabled by default; SetEnabled(false) turns the whole
// recording path into nil-checks.
var DefaultTraces = NewTraceStore(32, 32)

// Enabled reports whether new traces are being recorded.
func (st *TraceStore) Enabled() bool { return st.enabled.Load() }

// SetEnabled flips recording. Disabling does not drop retained traces.
func (st *TraceStore) SetEnabled(on bool) { st.enabled.Store(on) }

// Reset drops every retained trace (tests).
func (st *TraceStore) Reset() {
	st.mu.Lock()
	st.recent = nil
	st.slow = nil
	st.mu.Unlock()
}

func (st *TraceStore) add(tr *TraceRecord) {
	tracesRecorded.Inc()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.recent = append(st.recent, tr)
	if len(st.recent) > st.capRecent {
		n := copy(st.recent, st.recent[1:])
		st.recent[n] = nil
		st.recent = st.recent[:n]
	}
	// Slowest board: insert in ascending duration order, evict the
	// fastest when over capacity.
	i := sort.Search(len(st.slow), func(i int) bool { return st.slow[i].DurNs >= tr.DurNs })
	st.slow = append(st.slow, nil)
	copy(st.slow[i+1:], st.slow[i:])
	st.slow[i] = tr
	if len(st.slow) > st.capSlow {
		n := copy(st.slow, st.slow[1:])
		st.slow[n] = nil
		st.slow = st.slow[:n]
	}
}

// Get returns the retained trace with the given ID.
func (st *TraceStore) Get(id string) (*TraceRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, tr := range st.recent {
		if tr.ID == id {
			return tr, true
		}
	}
	for _, tr := range st.slow {
		if tr.ID == id {
			return tr, true
		}
	}
	return nil, false
}

// Len returns the number of distinct retained traces.
func (st *TraceStore) Len() int { return len(st.Index()) }

// Index lists the retained traces, newest first, deduplicated across
// the two retention sets; traces on the slowest board carry Slowest.
func (st *TraceStore) Index() []TraceSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	slowest := make(map[string]bool, len(st.slow))
	for _, tr := range st.slow {
		slowest[tr.ID] = true
	}
	seen := make(map[string]bool, len(st.recent)+len(st.slow))
	out := make([]TraceSummary, 0, len(st.recent)+len(st.slow))
	emit := func(tr *TraceRecord) {
		if seen[tr.ID] {
			return
		}
		seen[tr.ID] = true
		out = append(out, TraceSummary{
			ID:      tr.ID,
			Root:    tr.Root,
			Start:   tr.Start,
			DurNs:   tr.DurNs,
			Spans:   len(tr.Spans),
			Slowest: slowest[tr.ID],
		})
	}
	for i := len(st.recent) - 1; i >= 0; i-- {
		emit(st.recent[i])
	}
	for i := len(st.slow) - 1; i >= 0; i-- {
		emit(st.slow[i])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// StartTrace opens a span like Trace and, when the context is not
// already inside a recorded trace, starts recording a new trace into
// DefaultTraces (when enabled). The returned span is the trace root:
// its End seals the trace and folds it into the store. When recording
// is off this is exactly Trace — same allocations, empty TraceID.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	ctx, sp := Trace(ctx, name)
	if sp.rec != nil {
		return ctx, sp // already recording: join the enclosing trace
	}
	st := DefaultTraces
	if st == nil || !st.enabled.Load() {
		return ctx, sp
	}
	rec := &traceRec{store: st, idStr: newTraceID(), start: sp.start}
	rec.nextID.Store(1)
	sp.rec = rec
	sp.root = true
	sp.spanID = 1
	return ctx, sp
}
