package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapTraces points DefaultTraces at a fresh store for the duration of
// a test. Recorder tests must not run in parallel with each other.
func swapTraces(t *testing.T, st *TraceStore) {
	t.Helper()
	old := DefaultTraces
	DefaultTraces = st
	t.Cleanup(func() { DefaultTraces = old })
}

func TestStartTraceRecordsSpanTree(t *testing.T) {
	st := NewTraceStore(8, 8)
	swapTraces(t, st)

	ctx, root := StartTrace(context.Background(), "eval")
	if root.TraceID() == "" {
		t.Fatal("root span has no trace ID")
	}
	id := root.TraceID()
	root.SetAttr("path", "overlay")
	root.SetAttrInt("touched", 3)

	cctx, child := Trace(ctx, "eval.stage")
	if child.TraceID() != id {
		t.Fatalf("child trace ID %q != root %q", child.TraceID(), id)
	}
	child.Event("checkpoint")
	_, grand := Trace(cctx, "eval.stage.inner")
	grand.End()
	child.End()
	root.End()

	tr, ok := st.Get(id)
	if !ok {
		t.Fatalf("trace %q not retained", id)
	}
	if tr.Root != "eval" {
		t.Errorf("root name = %q", tr.Root)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	rootRec, stage, inner := byName["eval"], byName["eval.stage"], byName["eval.stage.inner"]
	if rootRec.SpanID != 1 || rootRec.ParentID != 0 {
		t.Errorf("root ids = %d/%d", rootRec.SpanID, rootRec.ParentID)
	}
	if stage.ParentID != rootRec.SpanID {
		t.Errorf("stage parent = %d, want %d", stage.ParentID, rootRec.SpanID)
	}
	if inner.ParentID != stage.SpanID {
		t.Errorf("inner parent = %d, want %d", inner.ParentID, stage.SpanID)
	}
	wantAttrs := map[string]string{"path": "overlay", "touched": "3"}
	for _, a := range rootRec.Attrs {
		if wantAttrs[a.Key] != a.Value {
			t.Errorf("attr %s = %q", a.Key, a.Value)
		}
		delete(wantAttrs, a.Key)
	}
	if len(wantAttrs) != 0 {
		t.Errorf("missing attrs: %v", wantAttrs)
	}
	if len(stage.Events) != 1 || stage.Events[0].Name != "checkpoint" {
		t.Errorf("stage events = %+v", stage.Events)
	}
	// Spans are sorted by start offset: root first.
	if tr.Spans[0].Name != "eval" {
		t.Errorf("spans[0] = %q, want root", tr.Spans[0].Name)
	}
}

func TestStartTraceJoinsEnclosingTrace(t *testing.T) {
	st := NewTraceStore(4, 4)
	swapTraces(t, st)
	ctx, outer := StartTrace(context.Background(), "outer")
	_, inner := StartTrace(ctx, "inner")
	if inner.TraceID() != outer.TraceID() {
		t.Fatalf("nested StartTrace opened a new trace")
	}
	inner.End()
	outer.End()
	tr, ok := st.Get(outer.TraceID())
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v, ok=%v", tr, ok)
	}
}

func TestTraceStoreDisabled(t *testing.T) {
	st := NewTraceStore(4, 4)
	st.SetEnabled(false)
	swapTraces(t, st)
	_, sp := StartTrace(context.Background(), "off")
	if sp.TraceID() != "" {
		t.Fatalf("disabled store still recorded trace %q", sp.TraceID())
	}
	sp.End()
	if n := st.Len(); n != 0 {
		t.Fatalf("retained %d traces while disabled", n)
	}
}

func TestTraceStoreRetention(t *testing.T) {
	st := NewTraceStore(2, 2)
	// Feed traces with increasing then decreasing durations; the store
	// must keep the 2 most recent plus the 2 slowest.
	durs := []int64{10, 50, 40, 30, 5, 1}
	base := time.Now()
	for i, d := range durs {
		st.add(&TraceRecord{
			ID:    fmt.Sprintf("t%d", i),
			Root:  "r",
			Start: base.Add(time.Duration(i) * time.Second),
			DurNs: d,
		})
	}
	idx := st.Index()
	got := map[string]bool{}
	for _, s := range idx {
		got[s.ID] = true
	}
	// Most recent: t4, t5. Slowest: t1 (50), t2 (40).
	for _, want := range []string{"t4", "t5", "t1", "t2"} {
		if !got[want] {
			t.Errorf("retention lost %s; kept %v", want, got)
		}
	}
	if len(idx) != 4 {
		t.Errorf("index = %d entries, want 4: %+v", len(idx), idx)
	}
	// Index is newest-first.
	for i := 1; i < len(idx); i++ {
		if idx[i].Start.After(idx[i-1].Start) {
			t.Errorf("index not sorted newest-first at %d", i)
		}
	}
	// Slowest flags on the board members.
	for _, s := range idx {
		wantSlow := s.ID == "t1" || s.ID == "t2"
		if s.Slowest != wantSlow {
			t.Errorf("%s Slowest = %v, want %v", s.ID, s.Slowest, wantSlow)
		}
	}
	// Get resolves traces held only by the slowest board.
	if _, ok := st.Get("t1"); !ok {
		t.Error("Get lost a slowest-board trace")
	}
	if _, ok := st.Get("t0"); ok {
		t.Error("evicted trace still resolvable")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := newTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestConcurrentSpanEnds(t *testing.T) {
	st := NewTraceStore(4, 4)
	swapTraces(t, st)
	ctx, root := StartTrace(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Trace(ctx, "fanout.worker")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	tr, ok := st.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(tr.Spans) != 17 {
		t.Fatalf("spans = %d, want 17", len(tr.Spans))
	}
	ids := map[uint32]bool{}
	for _, s := range tr.Spans {
		if ids[s.SpanID] {
			t.Fatalf("duplicate span ID %d", s.SpanID)
		}
		ids[s.SpanID] = true
		if s.Name == "fanout.worker" && s.ParentID != 1 {
			t.Errorf("worker parent = %d, want 1", s.ParentID)
		}
	}
}

func TestSpanAfterSealDropped(t *testing.T) {
	st := NewTraceStore(4, 4)
	swapTraces(t, st)
	ctx, root := StartTrace(context.Background(), "root")
	_, straggler := Trace(ctx, "late")
	root.End()
	straggler.End() // after the seal: must not corrupt the record
	tr, _ := st.Get(root.TraceID())
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 (straggler dropped)", len(tr.Spans))
	}
}

func TestSpanFromContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Error("empty context yielded a span")
	}
	if SpanFromContext(nil) != nil {
		t.Error("nil context yielded a span")
	}
	ctx, sp := Trace(context.Background(), "x")
	if SpanFromContext(ctx) != sp {
		t.Error("SpanFromContext did not return the open span")
	}
	sp.End()
}

func TestChromeTraceExport(t *testing.T) {
	st := NewTraceStore(4, 4)
	swapTraces(t, st)
	ctx, root := StartTrace(context.Background(), "eval")
	root.SetAttr("path", "overlay")
	_, child := Trace(ctx, "eval.stage")
	child.SetAttr("outcome", "recomputed")
	child.Event("mark")
	child.End()
	root.End()

	tr, _ := st.Get(root.TraceID())
	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, raw)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var complete, meta, instant int
	var sawOutcome bool
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Pid != 1 || ev.Tid < 1 {
				t.Errorf("event %q pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
			if ev.Name == "eval.stage" {
				if ev.Args["outcome"] == "recomputed" {
					sawOutcome = true
				}
			}
		case "M":
			meta++
		case "i":
			instant++
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if meta == 0 {
		t.Error("no metadata events")
	}
	if instant != 1 {
		t.Errorf("instant events = %d, want 1", instant)
	}
	if !sawOutcome {
		t.Error("stage attrs not carried into event args")
	}
}

func TestExemplarInOpenMetrics(t *testing.T) {
	st := NewTraceStore(4, 4)
	swapTraces(t, st)
	_, sp := StartTrace(context.Background(), "exemplar.stage")
	id := sp.TraceID()
	sp.End()

	var om strings.Builder
	WriteOpenMetrics(&om)
	want := `trace_id="` + id + `"`
	if !strings.Contains(om.String(), want) {
		t.Errorf("OpenMetrics output missing exemplar %s", want)
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Error("OpenMetrics output missing # EOF terminator")
	}
	// The classic exposition must stay exemplar-free.
	var prom strings.Builder
	WritePrometheus(&prom)
	if strings.Contains(prom.String(), "trace_id=") {
		t.Error("exemplar leaked into the 0.0.4 exposition")
	}
}
