package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metrics.go implements the registry: named metric families holding
// counters, gauges, or histograms, each instantiated per label set.
// Callers resolve a metric once (one mutex acquisition) and then
// observe through atomics only.

// Label is one name/value pair attached to a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative for Prometheus
// semantics; this is not enforced).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one to the gauge (level tracking: queue depths, in-flight
// request counts).
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket-layout histogram. The bucket bounds are
// set at family creation and never change, so Observe is a binary
// search plus two atomic adds.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sumB   atomic.Uint64 // float64 bits of the running sum
	count  atomic.Int64
	// exemplars holds the most recent exemplar per bucket (including
	// the +Inf bucket), written by ObserveExemplar. Nil until the first
	// exemplar arrives, so plain histograms pay nothing.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it
// (OpenMetrics exemplar: `# {trace_id="..."} value` after the bucket).
type exemplar struct {
	traceID string
	value   float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and tags its bucket with the
// trace that produced it. The classic Prometheus exposition is
// unchanged; exemplars surface only in the OpenMetrics rendering.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || h.exemplars == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumB.Load()) }

// DurationBuckets is the fixed layout for latency histograms, in
// seconds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the fixed layout for byte-size histograms.
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with instances per label set.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histograms only

	mu        sync.Mutex
	instances map[string]any // label signature -> *Counter | *Gauge | *Histogram
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-global registry: the one /metrics serves and
// every package-level constructor fills.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: kind, bounds: bounds,
			instances: make(map[string]any),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// signature renders labels into a canonical, sorted Prometheus label
// string ("" for none).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	// %q already escapes backslashes and quotes; newlines too.
	return v
}

func (f *family) instance(labels []Label, make func() any) any {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.instances[sig]; ok {
		return m
	}
	m := make()
	f.instances[sig] = m
	return m
}

// Counter returns (creating if needed) the counter instance for the
// given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.instance(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns (creating if needed) the gauge instance for the given
// label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.instance(labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram instance for
// the given label set. The bucket layout is fixed at family creation;
// later calls may pass nil bounds to reuse it.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	f := r.family(name, help, kindHistogram, bounds)
	return f.instance(labels, func() any {
		return &Histogram{
			bounds:    f.bounds,
			counts:    make([]atomic.Int64, len(f.bounds)+1),
			exemplars: make([]atomic.Pointer[exemplar], len(f.bounds)+1),
		}
	}).(*Histogram)
}

// GetCounter, GetGauge, and GetHistogram resolve against Default.
func GetCounter(name, help string, labels ...Label) *Counter {
	return Default.Counter(name, help, labels...)
}

// GetGauge resolves a gauge in the Default registry.
func GetGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}

// GetHistogram resolves a histogram in the Default registry.
func GetHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default.Histogram(name, help, bounds, labels...)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), families and label sets in
// sorted order so the output is stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.instances))
		for sig := range f.instances {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range sigs {
			switch m := f.instances[sig].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, sig, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(w, f.name, sig, m)
			}
		}
		f.mu.Unlock()
	}
}

func writeHistogram(w io.Writer, name, sig string, h *Histogram) {
	// Merge the le label into an existing label set.
	withLE := func(le string) string {
		if sig == "" {
			return `{le="` + le + `"}`
		}
		return sig[:len(sig)-1] + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sig, h.Count())
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the Default registry.
func WritePrometheus(w io.Writer) { Default.WritePrometheus(w) }

// expvar exposure: importing obs publishes the whole Default registry
// as one expvar string ("intertubes_metrics", Prometheus text) so the
// standard /debug/vars surface carries it for free.
func init() {
	expvar.Publish("intertubes_metrics", expvar.Func(func() any {
		var b strings.Builder
		Default.WritePrometheus(&b)
		return b.String()
	}))
}
