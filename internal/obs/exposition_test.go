package obs

import (
	"strings"
	"testing"
)

// exposition_test.go is the golden test for the Prometheus 0.0.4 text
// exposition: a fixed registry must render byte-for-byte identically,
// covering label-value escaping, the +Inf bucket, and deterministic
// family/series ordering. Any change to WritePrometheus that moves a
// byte shows up here.

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	// Families registered out of alphabetical order on purpose.
	r.Counter("zz_requests_total", "Requests by route.", L("route", "/b")).Add(7)
	r.Counter("zz_requests_total", "Requests by route.", L("route", "/a")).Add(3)
	r.Gauge("aa_depth", "Queue depth.").Set(2.5)
	r.Counter("mm_escapes_total", "Label escaping.",
		L("path", `C:\tmp`), L("note", "say \"hi\"\nbye")).Inc()
	h := r.Histogram("hh_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	const want = `# HELP aa_depth Queue depth.
# TYPE aa_depth gauge
aa_depth 2.5
# HELP hh_lat_seconds Latency.
# TYPE hh_lat_seconds histogram
hh_lat_seconds_bucket{le="0.1"} 1
hh_lat_seconds_bucket{le="1"} 2
hh_lat_seconds_bucket{le="+Inf"} 3
hh_lat_seconds_sum 5.55
hh_lat_seconds_count 3
# HELP mm_escapes_total Label escaping.
# TYPE mm_escapes_total counter
mm_escapes_total{note="say \"hi\"\nbye",path="C:\\tmp"} 1
# HELP zz_requests_total Requests by route.
# TYPE zz_requests_total counter
zz_requests_total{route="/a"} 3
zz_requests_total{route="/b"} 7
`
	var out strings.Builder
	r.WritePrometheus(&out)
	if got := out.String(); got != want {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Rendering twice must be identical (ordering is deterministic, not
	// map-iteration luck).
	var again strings.Builder
	r.WritePrometheus(&again)
	if again.String() != out.String() {
		t.Error("two renderings of the same registry differ")
	}
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests.").Add(4)
	h := r.Histogram("lat_seconds", "Latency.", []float64{1})
	h.ObserveExemplar(0.5, "deadbeef")

	const want = `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 1 # {trace_id="deadbeef"} 0.5
lat_seconds_bucket{le="+Inf"} 1
lat_seconds_sum 0.5
lat_seconds_count 1
# HELP req Requests.
# TYPE req counter
req_total 4
# EOF
`
	var out strings.Builder
	r.WriteOpenMetrics(&out)
	if got := out.String(); got != want {
		t.Errorf("OpenMetrics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
