package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// trace.go implements the stage tracer: Trace opens a span, End
// closes it and folds it into the process-global sink, from which
// Study.BuildReport renders the per-stage build report. Spans also
// feed the stage_duration_seconds / stage_items_total metrics, so the
// same data reaches /metrics.

// Span is one in-flight timed stage. A Span is owned by the goroutine
// that opened it; SetItems/SetWorkers/SetAttr/Event/End must not race.
type Span struct {
	// Name identifies the stage ("study.campaign",
	// "traceroute.synthesize", ...). Spans with equal names aggregate
	// into one report row.
	Name string
	// Parent is the name of the enclosing span, resolved from the
	// context passed to Trace ("" at the root).
	Parent string

	start   time.Time
	items   int64
	workers int
	sink    *Sink
	ended   bool

	// Flight-recorder state: nil rec means the span is outside any
	// recorded trace and every recorder entry point is a no-op.
	rec      *traceRec
	spanID   uint32
	parentID uint32
	root     bool
	attrs    []Attr
	events   []Event
}

type spanCtxKey struct{}

// Trace opens a span named name. The parent is taken from ctx (the
// span most recently opened through Trace on that context chain); the
// returned context carries the new span so nested stages link to it.
// When the parent belongs to a recorded trace the new span joins it,
// inheriting the trace and getting a fresh span ID; otherwise the span
// is aggregate-only. Spans report to the DefaultSink.
func Trace(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := &Span{Name: name, start: time.Now(), sink: DefaultSink}
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		sp.Parent = p.Name
		if p.rec != nil {
			sp.rec = p.rec
			sp.parentID = p.spanID
			sp.spanID = p.rec.nextID.Add(1)
		}
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// SpanFromContext returns the span most recently opened through Trace
// on this context chain, or nil. Useful to attach attributes (a cache
// outcome, say) to the caller's span from a callee that doesn't open
// its own.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceID returns the ID of the recorded trace this span belongs to,
// or "" when the span is not being recorded.
func (s *Span) TraceID() string {
	if s == nil || s.rec == nil {
		return ""
	}
	return s.rec.idStr
}

// SetAttr attaches a key/value attribute to the span. No-op (and
// alloc-free) when the span is not being recorded.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.rec == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt attaches an integer attribute to the span. No-op when the
// span is not being recorded.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil || s.rec == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// Event records a point-in-time annotation inside the span, stamped
// with its offset from the span start. No-op when not recorded.
func (s *Span) Event(name string) {
	if s == nil || s.rec == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, AtNs: time.Since(s.start).Nanoseconds()})
}

// SetItems records how many items the stage processed (probes routed,
// conduits scanned, pairs computed, ...).
func (s *Span) SetItems(n int64) {
	if s != nil {
		s.items = n
	}
}

// AddItems accumulates processed items across sub-batches.
func (s *Span) AddItems(n int64) {
	if s != nil {
		s.items += n
	}
}

// SetWorkers records the worker count the stage fanned out over.
func (s *Span) SetWorkers(n int) {
	if s != nil {
		s.workers = n
	}
}

// End closes the span: the duration is computed, the span is folded
// into the sink, and the stage metrics are updated. End is idempotent
// and nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	s.sink.record(s, d)
	h := GetHistogram("stage_duration_seconds",
		"Wall time of each build/analysis stage.", nil,
		L("stage", s.Name))
	if s.rec != nil {
		h.ObserveExemplar(d.Seconds(), s.rec.idStr)
		s.rec.fold(s, d)
	} else {
		h.Observe(d.Seconds())
	}
	if s.items > 0 {
		GetCounter("stage_items_total",
			"Items processed by each build/analysis stage.",
			L("stage", s.Name)).Add(s.items)
	}
}

// StageStats is the aggregate of every ended span sharing one name.
type StageStats struct {
	Name    string `json:"name"`
	Parent  string `json:"parent,omitempty"`
	Calls   int64  `json:"calls"`
	TotalNs int64  `json:"totalNs"`
	Items   int64  `json:"items"`
	// Workers is the worker count most recently reported for the
	// stage (0 when the stage never fans out).
	Workers int `json:"workers,omitempty"`
}

// Total returns the accumulated wall time.
func (s StageStats) Total() time.Duration { return time.Duration(s.TotalNs) }

// Sink aggregates ended spans by stage name, preserving first-seen
// order for reporting.
type Sink struct {
	mu     sync.Mutex
	stages map[string]*StageStats
	order  []string
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{stages: make(map[string]*StageStats)}
}

// DefaultSink is the process-global sink every Trace span reports to.
var DefaultSink = NewSink()

func (k *Sink) record(sp *Span, d time.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	st := k.stages[sp.Name]
	if st == nil {
		st = &StageStats{Name: sp.Name, Parent: sp.Parent}
		k.stages[sp.Name] = st
		k.order = append(k.order, sp.Name)
	}
	if st.Parent == "" {
		st.Parent = sp.Parent
	}
	st.Calls++
	st.TotalNs += int64(d)
	st.Items += sp.items
	if sp.workers > 0 {
		st.Workers = sp.workers
	}
}

// Reset clears the sink (tests).
func (k *Sink) Reset() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.stages = make(map[string]*StageStats)
	k.order = nil
}

// Snapshot returns the aggregated stages in first-seen order.
func (k *Sink) Snapshot() []StageStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]StageStats, 0, len(k.order))
	for _, name := range k.order {
		out = append(out, *k.stages[name])
	}
	return out
}

// Report renders the build report: one row per stage with wall time,
// share of the root total, items, and throughput. Children are listed
// under their parent, indented.
func (k *Sink) Report() string {
	stages := k.Snapshot()
	if len(stages) == 0 {
		return "build report: no stages recorded\n"
	}
	// Root total: the denominator for the % column is the sum over
	// parentless stages, so nested spans don't double-count.
	var rootTotal time.Duration
	for _, st := range stages {
		if st.Parent == "" {
			rootTotal += st.Total()
		}
	}
	children := make(map[string][]StageStats)
	for _, st := range stages {
		if st.Parent != "" {
			children[st.Parent] = append(children[st.Parent], st)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "build report (%s total across %d stages)\n",
		rootTotal.Round(time.Millisecond), len(stages))
	fmt.Fprintf(&b, "  %-34s %6s %12s %7s %12s %12s %8s\n",
		"stage", "calls", "wall", "%", "items", "items/s", "workers")
	var emit func(st StageStats, depth int)
	emit = func(st StageStats, depth int) {
		name := strings.Repeat("  ", depth) + st.Name
		pct := 0.0
		if rootTotal > 0 {
			pct = 100 * float64(st.TotalNs) / float64(rootTotal)
		}
		ips := "-"
		if st.Items > 0 && st.TotalNs > 0 {
			ips = fmt.Sprintf("%.0f", float64(st.Items)/st.Total().Seconds())
		}
		items := "-"
		if st.Items > 0 {
			items = fmt.Sprintf("%d", st.Items)
		}
		workers := "-"
		if st.Workers > 0 {
			workers = fmt.Sprintf("%d", st.Workers)
		}
		fmt.Fprintf(&b, "  %-34s %6d %12s %6.1f%% %12s %12s %8s\n",
			name, st.Calls, st.Total().Round(time.Microsecond), pct, items, ips, workers)
		kids := children[st.Name]
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].TotalNs > kids[j].TotalNs })
		for _, kid := range kids {
			emit(kid, depth+1)
		}
	}
	seen := make(map[string]bool)
	for _, st := range stages {
		if st.Parent == "" && !seen[st.Name] {
			seen[st.Name] = true
			emit(st, 0)
		}
	}
	// Stages whose parent never reported (possible when a nested stage
	// runs without its enclosing span): list them flat so nothing is
	// silently dropped.
	for _, st := range stages {
		if st.Parent != "" {
			if _, ok := k.lookup(st.Parent); !ok {
				emit(st, 0)
			}
		}
	}
	return b.String()
}

func (k *Sink) lookup(name string) (StageStats, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	st, ok := k.stages[name]
	if !ok {
		return StageStats{}, false
	}
	return *st, true
}

// Report renders the DefaultSink.
func Report() string { return DefaultSink.Report() }

// Snapshot returns the DefaultSink's aggregated stages.
func Snapshot() []StageStats { return DefaultSink.Snapshot() }
