// Package obs is the zero-dependency observability layer for the
// reproduction: a stage/span tracer feeding a process-global sink
// (rendered by Study.BuildReport and served at /api/buildreport), a
// metrics registry (counters, gauges, fixed-bucket histograms) exposed
// in Prometheus text format and via expvar, and the shared
// log/slog-based structured-logging handler used by internal/server
// and every cmd/ main.
//
// Everything here is observational: instrumentation reads clocks and
// bumps atomics but never feeds a value back into an analysis, so the
// deterministic outputs pinned by the serial-equivalence suite are
// unchanged (see DESIGN.md, "Instrumentation"). Hot paths touch only
// atomic counters — the registry mutex is paid at metric creation, not
// per observation.
package obs
