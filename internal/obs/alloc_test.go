package obs

import (
	"context"
	"testing"
)

// alloc_test.go pins the flight recorder's hot-path contract: when
// recording is off (disabled store), a StartTrace+attrs+End cycle
// allocates exactly what a plain Trace+End cycle does — the recorder
// entry points reduce to nil-checks. Skips under -short and the race
// detector, matching the graph/scenario packages' convention.

func skipIfAllocsUnmeasurable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("allocation guard skipped under the race detector")
	}
}

func TestDisabledRecorderZeroExtraAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	st := NewTraceStore(4, 4)
	st.SetEnabled(false)
	swapTraces(t, st)
	ctx := context.Background()

	// Warm the stage metrics so End resolves existing instances.
	_, sp := Trace(ctx, "alloc.guard")
	sp.End()

	base := testing.AllocsPerRun(200, func() {
		_, sp := Trace(ctx, "alloc.guard")
		sp.SetItems(1)
		sp.End()
	})
	withRecorder := testing.AllocsPerRun(200, func() {
		_, sp := StartTrace(ctx, "alloc.guard")
		sp.SetAttr("k", "v")
		sp.SetAttrInt("n", 42)
		sp.Event("e")
		sp.SetItems(1)
		sp.End()
	})
	if withRecorder > base {
		t.Fatalf("disabled recorder path allocates %.1f/run vs %.1f baseline — must be zero extra",
			withRecorder, base)
	}
}

func TestUnrecordedSpanAttrsZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	_, sp := Trace(context.Background(), "alloc.attrs")
	defer sp.End()
	if avg := testing.AllocsPerRun(200, func() {
		sp.SetAttr("k", "v")
		sp.SetAttrInt("n", 7)
		sp.Event("e")
	}); avg != 0 {
		t.Fatalf("unrecorded span attrs allocate %.1f per run, want 0", avg)
	}
}
