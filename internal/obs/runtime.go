package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtime.go feeds a small set of runtime/metrics samples into the
// registry as gauges, so the /metrics exposition carries GC pauses,
// heap pressure, goroutine counts, and scheduler latency next to the
// application metrics. The poller is cheap (metrics.Read on a fixed
// sample slice) and runs on an interval; ReadRuntimeMetrics is the
// single-shot form for tests and one-off snapshots.

var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

var (
	rtHeapObjects = GetGauge("runtime_heap_objects_bytes",
		"Bytes of live heap objects (runtime/metrics).")
	rtMemTotal = GetGauge("runtime_memory_total_bytes",
		"Total bytes mapped by the Go runtime.")
	rtGoroutines = GetGauge("runtime_goroutines",
		"Live goroutine count.")
	rtGCCycles = GetGauge("runtime_gc_cycles_total",
		"Completed GC cycles.")
	rtGCPauseP50 = GetGauge("runtime_gc_pause_p50_seconds",
		"Median stop-the-world GC pause (distribution since process start).")
	rtGCPauseP99 = GetGauge("runtime_gc_pause_p99_seconds",
		"99th-percentile stop-the-world GC pause.")
	rtSchedLatP50 = GetGauge("runtime_sched_latency_p50_seconds",
		"Median goroutine scheduling latency.")
	rtSchedLatP99 = GetGauge("runtime_sched_latency_p99_seconds",
		"99th-percentile goroutine scheduling latency.")
)

// ReadRuntimeMetrics samples the runtime once and updates the runtime
// gauges in the Default registry.
func ReadRuntimeMetrics() {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	readRuntimeInto(samples)
}

func readRuntimeInto(samples []metrics.Sample) {
	metrics.Read(samples)
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			setIfUint(rtHeapObjects, s)
		case "/memory/classes/total:bytes":
			setIfUint(rtMemTotal, s)
		case "/sched/goroutines:goroutines":
			setIfUint(rtGoroutines, s)
		case "/gc/cycles/total:gc-cycles":
			setIfUint(rtGCCycles, s)
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rtGCPauseP50.Set(histQuantile(h, 0.50))
				rtGCPauseP99.Set(histQuantile(h, 0.99))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rtSchedLatP50.Set(histQuantile(h, 0.50))
				rtSchedLatP99.Set(histQuantile(h, 0.99))
			}
		}
	}
}

func setIfUint(g *Gauge, s *metrics.Sample) {
	if s.Value.Kind() == metrics.KindUint64 {
		g.Set(float64(s.Value.Uint64()))
	}
}

// histQuantile returns the q-quantile of a runtime cumulative-count
// histogram, interpolated to the lower bucket bound (the runtime's
// buckets are fine-grained enough that the bound itself is the usual
// convention). Returns 0 for an empty distribution.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > want {
			// Buckets[i] is the lower bound of counts[i]; the first and
			// last bounds can be ±Inf.
			b := h.Buckets[i]
			if b < 0 || b != b { // -Inf or NaN
				return 0
			}
			return b
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// StartRuntimeMetrics polls the runtime gauges on the given interval
// until the returned stop function is called. A non-positive interval
// defaults to 10s.
func StartRuntimeMetrics(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		samples := make([]metrics.Sample, len(runtimeSamples))
		for i, name := range runtimeSamples {
			samples[i].Name = name
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		readRuntimeInto(samples)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				readRuntimeInto(samples)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
