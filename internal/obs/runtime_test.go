package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestReadRuntimeMetrics(t *testing.T) {
	runtime.GC() // ensure at least one GC cycle has completed
	ReadRuntimeMetrics()
	if v := rtGoroutines.Value(); v < 1 {
		t.Errorf("runtime_goroutines = %g, want >= 1", v)
	}
	if v := rtHeapObjects.Value(); v <= 0 {
		t.Errorf("runtime_heap_objects_bytes = %g, want > 0", v)
	}
	if v := rtGCCycles.Value(); v < 1 {
		t.Errorf("runtime_gc_cycles_total = %g, want >= 1", v)
	}
	if v := rtGCPauseP99.Value(); v < rtGCPauseP50.Value() {
		t.Errorf("gc pause p99 %g < p50 %g", v, rtGCPauseP50.Value())
	}
	var out strings.Builder
	WritePrometheus(&out)
	for _, want := range []string{
		"runtime_goroutines", "runtime_heap_objects_bytes",
		"runtime_gc_pause_p99_seconds", "runtime_sched_latency_p99_seconds",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestStartRuntimeMetricsStops(t *testing.T) {
	stop := StartRuntimeMetrics(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // idempotent
	if v := rtGoroutines.Value(); v < 1 {
		t.Errorf("poller never sampled: goroutines = %g", v)
	}
}
