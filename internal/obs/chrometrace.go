package obs

import (
	"bytes"
	"encoding/json"
	"sort"
)

// chrometrace.go converts a recorded TraceRecord into Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load):
// one "X" complete event per span with microsecond timestamps, plus
// "i" instant events for span annotations. Spans are laid out on
// synthetic threads ("lanes") by a greedy sweep that keeps nested
// spans on their parent's lane and pushes concurrent siblings (par
// workers) onto their own, so the tree reads as a flame chart.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeTrace renders the trace as Chrome trace-event JSON. The
// result always parses as a JSON object with a traceEvents array, even
// for an empty trace.
func (tr *TraceRecord) ChromeTrace() ([]byte, error) {
	events := make([]chromeEvent, 0, 2+2*len(tr.Spans))
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "trace " + tr.ID + " · " + tr.Root},
	})

	// Lane assignment: spans sorted by start (the stored order), each
	// placed on its parent's lane when the parent isn't running a
	// sibling there, else the first lane free at its start time.
	laneEnd := []int64{}         // per lane, the end offset of its last span
	laneOf := map[uint32]int{}   // span id -> lane
	childAt := map[int]int64{}   // lane -> end of the last child placed there
	place := func(s *SpanRecord) int {
		end := s.StartNs + s.DurNs
		if pl, ok := laneOf[s.ParentID]; ok && childAt[pl] <= s.StartNs {
			childAt[pl] = end
			if laneEnd[pl] < end {
				laneEnd[pl] = end
			}
			return pl
		}
		for l := range laneEnd {
			if laneEnd[l] <= s.StartNs {
				laneEnd[l] = end
				childAt[l] = end
				return l
			}
		}
		laneEnd = append(laneEnd, end)
		l := len(laneEnd) - 1
		childAt[l] = end
		return l
	}

	for i := range tr.Spans {
		s := &tr.Spans[i]
		lane := place(s)
		laneOf[s.SpanID] = lane
		args := map[string]any{
			"spanId":   s.SpanID,
			"parentId": s.ParentID,
		}
		if s.Items > 0 {
			args["items"] = s.Items
		}
		if s.Workers > 0 {
			args["workers"] = s.Workers
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.StartNs) / 1e3,
			Dur: float64(s.DurNs) / 1e3,
			Pid: 1, Tid: lane + 1,
			Args: args,
		})
		for _, ev := range s.Events {
			events = append(events, chromeEvent{
				Name: ev.Name, Ph: "i", S: "t",
				Ts:  float64(s.StartNs+ev.AtNs) / 1e3,
				Pid: 1, Tid: lane + 1,
			})
		}
	}

	// Thread-name metadata, one per lane used.
	lanes := len(laneEnd)
	names := make([]chromeEvent, 0, lanes)
	for l := 0; l < lanes; l++ {
		name := "main"
		if l > 0 {
			name = "worker"
		}
		names = append(names, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l + 1,
			Args: map[string]any{"name": name},
		})
	}
	events = append(events, names...)
	sort.SliceStable(events, func(i, j int) bool {
		// Metadata first, then by timestamp — viewers tolerate any
		// order, but a sorted stream diffs and tests cleanly.
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return events[i].Ts < events[j].Ts
	})

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: events}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
