package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// openmetrics.go renders the registry in the OpenMetrics 1.0 text
// format, which is where histogram exemplars live: the classic 0.0.4
// exposition in metrics.go stays byte-stable (golden-tested), and
// scrapers that want bucket→trace links opt in via the Accept header.
// ServeMetrics is the shared /metrics handler doing that negotiation.

// ContentTypePrometheus is the classic text exposition content type.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeOpenMetrics is the OpenMetrics text content type.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the registry in the OpenMetrics text
// format: same families and ordering as WritePrometheus, with counter
// family names stripped of their _total suffix in metadata lines (the
// sample keeps it) and histogram buckets carrying exemplars when a
// recorded trace observed into them. Exemplar timestamps are omitted
// (optional per the spec) so the output stays deterministic.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.instances))
		for sig := range f.instances {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		// OpenMetrics names a counter family without the _total suffix;
		// the sample line keeps it.
		famName := f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.kind)
		for _, sig := range sigs {
			switch m := f.instances[sig].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, sig, formatFloat(m.Value()))
			case *Histogram:
				writeHistogramOM(w, f.name, sig, m)
			}
		}
		f.mu.Unlock()
	}
	io.WriteString(w, "# EOF\n")
}

func writeHistogramOM(w io.Writer, name, sig string, h *Histogram) {
	withLE := func(le string) string {
		if sig == "" {
			return `{le="` + le + `"}`
		}
		return sig[:len(sig)-1] + `,le="` + le + `"}`
	}
	writeBucket := func(i int, le string, cum int64) {
		fmt.Fprintf(w, "%s_bucket%s %d", name, withLE(le), cum)
		if h.exemplars != nil {
			if ex := h.exemplars[i].Load(); ex != nil {
				fmt.Fprintf(w, " # {trace_id=%q} %s", ex.traceID, formatFloat(ex.value))
			}
		}
		io.WriteString(w, "\n")
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(i, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(len(h.bounds), "+Inf", cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sig, h.Count())
}

// WriteOpenMetrics renders the Default registry.
func WriteOpenMetrics(w io.Writer) { Default.WriteOpenMetrics(w) }

// ServeMetrics is the shared /metrics handler: the classic Prometheus
// 0.0.4 text exposition by default, the OpenMetrics rendering (with
// exemplars) when the Accept header asks for application/openmetrics-text.
func ServeMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", ContentTypeOpenMetrics)
		Default.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", ContentTypePrometheus)
	Default.WritePrometheus(w)
}
