package obs

import (
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSpanParentFromContext(t *testing.T) {
	ctx, parent := Trace(context.Background(), "outer")
	_, child := Trace(ctx, "inner")
	if parent.Parent != "" {
		t.Errorf("root parent = %q", parent.Parent)
	}
	if child.Parent != "outer" {
		t.Errorf("child parent = %q", child.Parent)
	}
	child.End()
	parent.End()
}

func TestSinkAggregation(t *testing.T) {
	sink := NewSink()
	for i := 0; i < 3; i++ {
		sp := &Span{Name: "stage.x", start: time.Now(), sink: sink}
		sp.SetItems(10)
		sp.SetWorkers(4)
		sp.End()
	}
	snap := sink.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("stages = %d", len(snap))
	}
	st := snap[0]
	if st.Calls != 3 || st.Items != 30 || st.Workers != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalNs <= 0 {
		t.Errorf("total = %d", st.TotalNs)
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	sink := NewSink()
	sp := &Span{Name: "once", start: time.Now(), sink: sink}
	sp.End()
	sp.End()
	if got := sink.Snapshot()[0].Calls; got != 1 {
		t.Errorf("calls = %d, want 1", got)
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
	nilSpan.SetItems(1)
	nilSpan.SetWorkers(1)
	nilSpan.AddItems(1)
}

func TestReportRendersStagesAndPercents(t *testing.T) {
	sink := NewSink()
	root := &Span{Name: "study.build", start: time.Now().Add(-100 * time.Millisecond), sink: sink}
	root.SetItems(500)
	root.End()
	child := &Span{Name: "study.build.align", Parent: "study.build",
		start: time.Now().Add(-40 * time.Millisecond), sink: sink}
	child.End()
	rep := sink.Report()
	for _, want := range []string{"study.build", "study.build.align", "%", "items/s", "workers"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The child must be indented under its parent.
	if !strings.Contains(rep, "  study.build.align") {
		t.Errorf("child not indented:\n%s", rep)
	}
}

func TestReportEmptySink(t *testing.T) {
	if rep := NewSink().Report(); !strings.Contains(rep, "no stages") {
		t.Errorf("empty report = %q", rep)
	}
}

func TestTraceFeedsDefaultSinkAndMetrics(t *testing.T) {
	_, sp := Trace(context.Background(), "test.tracestage")
	sp.SetItems(7)
	sp.End()
	found := false
	for _, st := range Snapshot() {
		if st.Name == "test.tracestage" && st.Items == 7 {
			found = true
		}
	}
	if !found {
		t.Error("span not recorded in DefaultSink")
	}
	var b strings.Builder
	WritePrometheus(&b)
	if !strings.Contains(b.String(), `stage_duration_seconds_count{stage="test.tracestage"} `) {
		t.Errorf("stage metric missing:\n%s", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestLoggerRespectsLevel(t *testing.T) {
	var buf strings.Builder
	SetOutput(&buf)
	defer func() {
		SetOutput(nil)
		SetLevel(slog.LevelInfo)
	}()
	if err := ConfigureLogging(false, "warn"); err != nil {
		t.Fatal(err)
	}
	log := Logger("test")
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering broken:\n%s", out)
	}
	if !strings.Contains(out, "component=test") {
		t.Errorf("component attr missing:\n%s", out)
	}
	if err := ConfigureLogging(true, "error"); err != nil {
		t.Fatal(err)
	}
	if Level() != slog.LevelDebug {
		t.Errorf("-v should force debug, got %v", Level())
	}
}
