package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// log.go is the shared structured-logging plumbing: one process-wide
// slog handler (text, stderr by default) behind a dynamic level, so
// every cmd/ main and internal/server log through the same pipe and
// -v / -log-level work uniformly.

var (
	logMu    sync.Mutex
	logLevel = new(slog.LevelVar) // defaults to Info
	logOut   io.Writer
	root     *slog.Logger
)

func init() {
	logOut = os.Stderr
	rebuildLocked()
}

func rebuildLocked() {
	root = slog.New(slog.NewTextHandler(logOut, &slog.HandlerOptions{Level: logLevel}))
}

// Logger returns a logger tagged with the given component name,
// writing through the shared handler.
func Logger(component string) *slog.Logger {
	logMu.Lock()
	defer logMu.Unlock()
	return root.With("component", component)
}

// SetLevel changes the shared handler's level at runtime.
func SetLevel(l slog.Level) { logLevel.Set(l) }

// Level returns the current shared level.
func Level() slog.Level { return logLevel.Level() }

// SetOutput redirects the shared handler (tests, or CLIs logging to a
// file); nil restores stderr. Loggers obtained after the call use the
// new destination.
func SetOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	logOut = w
	rebuildLocked()
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// ConfigureLogging applies the shared -v / -log-level CLI convention:
// verbose forces debug, otherwise the named level applies.
func ConfigureLogging(verbose bool, level string) error {
	if verbose {
		SetLevel(slog.LevelDebug)
		return nil
	}
	l, err := ParseLevel(level)
	if err != nil {
		return err
	}
	SetLevel(l)
	return nil
}
