package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %g, want 2", g.Value())
	}
	// Same name+labels resolves to the same instance.
	if r.Counter("test_total", "help") != c {
		t.Error("counter not deduplicated")
	}
}

func TestCounterLabelsSeparateInstances(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "h", L("route", "/a"))
	b := r.Counter("reqs_total", "h", L("route", "/b"))
	if a == b {
		t.Fatal("different labels must be different instances")
	}
	a.Add(3)
	b.Add(7)
	var out strings.Builder
	r.WritePrometheus(&out)
	s := out.String()
	for _, want := range []string{
		`reqs_total{route="/a"} 3`,
		`reqs_total{route="/b"} 7`,
		"# TYPE reqs_total counter",
		"# HELP reqs_total h",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("exposition missing %q:\n%s", want, s)
		}
	}
}

func TestLabelSignatureSorted(t *testing.T) {
	// Label order must not matter for identity.
	r := NewRegistry()
	a := r.Counter("m_total", "h", L("x", "1"), L("a", "2"))
	b := r.Counter("m_total", "h", L("a", "2"), L("x", "1"))
	if a != b {
		t.Error("label order changed metric identity")
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("sum = %g", got)
	}
	var out strings.Builder
	r.WritePrometheus(&out)
	s := out.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("exposition missing %q:\n%s", want, s)
		}
	}
}

func TestHistogramWithLabelsMergesLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "h", []float64{1}, L("route", "/x"))
	h.Observe(0.5)
	var out strings.Builder
	r.WritePrometheus(&out)
	if !strings.Contains(out.String(), `d_seconds_bucket{route="/x",le="1"} 1`) {
		t.Errorf("le label not merged:\n%s", out.String())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h_seconds", "h", []float64{0.5})
	g := r.Gauge("g", "h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Errorf("lost updates: c=%d h=%d g=%g", c.Value(), h.Count(), g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "h")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "h")
}
