package mapbuilder

// profiles.go declares the provider universe of the study: the nine
// step-1 providers whose published maps carry explicit geocoding, the
// eleven step-3 providers that publish only POP-level connectivity
// (paper §2.3), and a handful of providers with no published map at
// all, which the paper only observed through traceroute naming hints
// (§4.3, Table 4 — SoftLayer, MFN).
//
// POPTarget values are calibrated so the relative footprint sizes
// match the paper's Table 1 (EarthLink and Level 3 near-national,
// AT&T's and Comcast's published long-haul maps small, Integra
// regional in the northwest, Suddenlink in the south-central states).

// Tier classifies a provider.
type Tier int

const (
	// Tier1 is a transit-free backbone carrier.
	Tier1 Tier = iota
	// Cable is a major cable provider.
	Cable
	// Regional is a regional fiber operator.
	Regional
	// Unmapped providers publish no usable map; they appear only as
	// hidden conduit tenants and in traceroute data.
	Unmapped
)

// Profile drives the synthetic footprint generator for one provider.
type Profile struct {
	Name string
	Tier Tier
	// Geocoded providers enter the map in step 1 with full link
	// geometry; non-geocoded mapped providers enter in step 3 from
	// POP-only maps; Unmapped providers never enter the published map.
	Geocoded bool
	// POPTarget is the number of cities the provider's backbone
	// serves.
	POPTarget int
	// Redundancy in [0,1] controls how many extra (ring) routes are
	// added beyond the minimum spanning structure.
	Redundancy float64
	// JitterAmp controls how far the provider's route costs deviate
	// from the industry-shared corridor costs: 0 means it always buys
	// into the cheapest (most-shared) trench; larger values model
	// providers that deployed geographically diverse paths.
	JitterAmp float64
	// PopExponent shapes POP selection: city score ~ population^exp.
	// The default 1.0 favors big metros; values well below 1 model
	// operators that served smaller markets (Suddenlink).
	PopExponent float64
	// BiasStates concentrates POP selection in the listed states
	// (multiplier applied to city scores).
	BiasStates []string
	// BiasWeight is the score multiplier for BiasStates (default 1).
	BiasWeight float64
}

// Mapped reports whether the provider contributes to the published
// map (steps 1-4) rather than being traceroute-only.
func (p Profile) Mapped() bool { return p.Tier != Unmapped }

// Profiles returns the full provider universe in the order the paper
// introduces them.
func Profiles() []Profile {
	return []Profile{
		// Step 1: geocoded fiber maps (paper Table 1).
		{Name: "AT&T", Tier: Tier1, Geocoded: true, POPTarget: 12, Redundancy: 0.30, JitterAmp: 0.30},
		{Name: "Comcast", Tier: Cable, Geocoded: true, POPTarget: 13, Redundancy: 0.30, JitterAmp: 0.30},
		{Name: "Cogent", Tier: Tier1, Geocoded: true, POPTarget: 22, Redundancy: 0.25, JitterAmp: 0.40},
		{Name: "EarthLink", Tier: Tier1, Geocoded: true, POPTarget: 80, Redundancy: 0.35, JitterAmp: 0.45},
		{Name: "Integra", Tier: Regional, Geocoded: true, POPTarget: 11, Redundancy: 0.30, JitterAmp: 0.35,
			BiasStates: []string{"WA", "OR", "ID", "MT", "UT", "CO", "NV", "CA", "AZ"}, BiasWeight: 25},
		{Name: "Level 3", Tier: Tier1, Geocoded: true, POPTarget: 78, Redundancy: 0.40, JitterAmp: 0.45},
		{Name: "Suddenlink", Tier: Cable, Geocoded: true, POPTarget: 15, Redundancy: 0.15, JitterAmp: 0.55,
			PopExponent: 0.45,
			BiasStates:  []string{"TX", "LA", "AR", "OK", "MO", "MS", "WV", "NC", "AZ"}, BiasWeight: 30},
		{Name: "Verizon", Tier: Tier1, Geocoded: true, POPTarget: 32, Redundancy: 0.30, JitterAmp: 0.45},
		{Name: "Zayo", Tier: Tier1, Geocoded: true, POPTarget: 28, Redundancy: 0.35, JitterAmp: 0.45},

		// Step 3: POP-only published maps (paper §2.3).
		{Name: "CenturyLink", Tier: Tier1, Geocoded: false, POPTarget: 30, Redundancy: 0.30, JitterAmp: 0.45},
		{Name: "Cox", Tier: Cable, Geocoded: false, POPTarget: 14, Redundancy: 0.25, JitterAmp: 0.35,
			BiasStates: []string{"VA", "AZ", "CA", "GA", "LA", "OK", "KS", "NV", "FL", "RI", "CT"}, BiasWeight: 18},
		{Name: "Deutsche Telekom", Tier: Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.10, JitterAmp: 0.04},
		{Name: "HE", Tier: Tier1, Geocoded: false, POPTarget: 11, Redundancy: 0.20, JitterAmp: 0.08},
		{Name: "Inteliquent", Tier: Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.10, JitterAmp: 0.04},
		{Name: "NTT", Tier: Tier1, Geocoded: false, POPTarget: 9, Redundancy: 0.10, JitterAmp: 0.04},
		{Name: "Sprint", Tier: Tier1, Geocoded: false, POPTarget: 20, Redundancy: 0.30, JitterAmp: 0.35},
		{Name: "Tata", Tier: Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.10, JitterAmp: 0.05},
		{Name: "TeliaSonera", Tier: Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.10, JitterAmp: 0.05},
		{Name: "TWC", Tier: Cable, Geocoded: false, POPTarget: 15, Redundancy: 0.25, JitterAmp: 0.35,
			BiasStates: []string{"NY", "OH", "NC", "SC", "TX", "CA", "WI", "MO", "KY", "ME"}, BiasWeight: 15},
		{Name: "XO", Tier: Tier1, Geocoded: false, POPTarget: 15, Redundancy: 0.20, JitterAmp: 0.08},

		// Traceroute-only providers (paper Table 4: SoftLayer, MFN).
		{Name: "SoftLayer", Tier: Unmapped, POPTarget: 12, Redundancy: 0.20, JitterAmp: 0.20},
		{Name: "MFN", Tier: Unmapped, POPTarget: 9, Redundancy: 0.15, JitterAmp: 0.20},
		{Name: "GTT", Tier: Unmapped, POPTarget: 8, Redundancy: 0.15, JitterAmp: 0.20},
		{Name: "Windstream", Tier: Unmapped, POPTarget: 14, Redundancy: 0.20, JitterAmp: 0.35,
			BiasStates: []string{"AR", "GA", "KY", "NE", "NC", "OH", "OK", "SC", "TX"}, BiasWeight: 12},
	}
}

// MappedNames returns the names of the 20 providers in the published
// map, in profile order.
func MappedNames() []string {
	var out []string
	for _, p := range Profiles() {
		if p.Mapped() {
			out = append(out, p.Name)
		}
	}
	return out
}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
