package mapbuilder

import (
	"testing"

	"intertubes/internal/atlas"
)

// buildOnce caches one default build across tests in this package —
// the build is deterministic, so sharing it is safe.
var cachedResult *Result

func build(t *testing.T) *Result {
	t.Helper()
	if cachedResult == nil {
		cachedResult = Build(Options{Seed: 42})
	}
	return cachedResult
}

func TestBuildHeadlineShape(t *testing.T) {
	res := build(t)
	s := res.Map.Stats()
	// Scale: same order of magnitude as the paper's 273 nodes, 2411
	// links, 542 conduits (see EXPERIMENTS.md for the comparison).
	if s.Nodes < 150 || s.Nodes > 260 {
		t.Errorf("nodes = %d", s.Nodes)
	}
	if s.Links < 1200 || s.Links > 3200 {
		t.Errorf("links = %d", s.Links)
	}
	if s.Conduits < 250 || s.Conduits > 450 {
		t.Errorf("conduits = %d", s.Conduits)
	}
	if s.ISPs != 20 {
		t.Errorf("ISPs = %d, want the paper's 20", s.ISPs)
	}
	// Sharing distribution shape (paper: 89.67% >=2, 63.28% >=3,
	// 53.50% >=4).
	ge2 := float64(s.SharedByGE2) / float64(s.Conduits)
	ge3 := float64(s.SharedByGE3) / float64(s.Conduits)
	ge4 := float64(s.SharedByGE4) / float64(s.Conduits)
	if ge2 < 0.80 || ge2 > 0.97 {
		t.Errorf("share>=2 = %.3f, want ~0.90", ge2)
	}
	if ge3 < 0.55 || ge3 > 0.85 {
		t.Errorf("share>=3 = %.3f, want ~0.63-0.78", ge3)
	}
	if ge4 < 0.45 || ge4 > 0.75 {
		t.Errorf("share>=4 = %.3f, want ~0.54-0.65", ge4)
	}
	if ge2 <= ge3 || ge3 <= ge4 {
		t.Error("sharing CDF must be decreasing")
	}
	// A small set of mega-shared chokepoint conduits must exist
	// (paper: 12 conduits shared by >17 of 20; max observed 19).
	if s.MaxSharing < 16 || s.MaxSharing > 20 {
		t.Errorf("max sharing = %d, want ~19", s.MaxSharing)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Options{Seed: 7})
	b := Build(Options{Seed: 7})
	sa, sb := a.Map.Stats(), b.Map.Stats()
	if sa != sb {
		t.Fatalf("same seed gave different maps: %+v vs %+v", sa, sb)
	}
	for i := range a.Map.Conduits {
		ca, cb := a.Map.Conduits[i], b.Map.Conduits[i]
		if ca.A != cb.A || ca.B != cb.B || len(ca.Tenants) != len(cb.Tenants) {
			t.Fatalf("conduit %d differs", i)
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a := Build(Options{Seed: 7})
	b := Build(Options{Seed: 8})
	if a.Map.Stats() == b.Map.Stats() {
		t.Error("different seeds should give different maps (statistically certain)")
	}
}

func TestTable1ShapePerISP(t *testing.T) {
	res := build(t)
	counts := make(map[string]ISPCounts, len(res.Report.PerISP))
	for _, c := range res.Report.PerISP {
		counts[c.Name] = c
	}
	if len(counts) != 20 {
		t.Fatalf("per-ISP rows = %d", len(counts))
	}
	// Table 1 ordering relations that must hold: the two near-national
	// networks dominate.
	big := []string{"Level 3", "EarthLink"}
	for _, name := range big {
		for _, other := range []string{"AT&T", "Comcast", "Suddenlink", "Integra", "NTT", "Deutsche Telekom"} {
			if counts[name].Links <= counts[other].Links {
				t.Errorf("%s links (%d) should exceed %s links (%d)",
					name, counts[name].Links, other, counts[other].Links)
			}
		}
	}
	for _, c := range res.Report.PerISP {
		if c.Links == 0 || c.Nodes == 0 {
			t.Errorf("%s has an empty footprint", c.Name)
		}
	}
}

func TestStep2ValidationRate(t *testing.T) {
	res := build(t)
	r := res.Report
	if r.Step2Checked == 0 {
		t.Fatal("step 2 checked nothing")
	}
	rate := float64(r.Step2Validated) / float64(r.Step2Checked)
	// The corpus has 90% coverage and 90% tenant recall, so most but
	// not all links validate.
	if rate < 0.6 || rate > 0.99 {
		t.Errorf("step-2 validation rate = %.3f", rate)
	}
}

func TestStep4Alignment(t *testing.T) {
	res := build(t)
	r := res.Report
	if r.Step4Routes == 0 || r.Step4Edges == 0 {
		t.Fatal("step 4 did nothing")
	}
	if acc := r.AlignmentAccuracy(); acc < 0.7 {
		t.Errorf("alignment accuracy = %.3f, too low for the default corpus", acc)
	}
	if r.Step4EdgesCorrect > r.Step4Edges {
		t.Error("correct > total")
	}
}

func TestHiddenTenancies(t *testing.T) {
	res := build(t)
	if res.Report.HiddenTenancies == 0 {
		t.Fatal("expected hidden tenancies from unmapped providers")
	}
	// Unmapped providers never appear as published tenants.
	for _, p := range Profiles() {
		if p.Mapped() {
			continue
		}
		if got := res.Map.ConduitsOf(p.Name); len(got) != 0 {
			t.Errorf("unmapped %s has published conduits %v", p.Name, got)
		}
	}
	// But they appear as hidden tenants somewhere.
	found := false
	for i := range res.Map.Conduits {
		for _, h := range res.Map.Conduits[i].Hidden {
			if h == "SoftLayer" {
				found = true
			}
		}
	}
	if !found {
		t.Error("SoftLayer should be a hidden tenant somewhere")
	}
}

func TestTruthCoversAllProviders(t *testing.T) {
	res := build(t)
	for _, p := range Profiles() {
		fp, ok := res.Truth[p.Name]
		if !ok || len(fp.Edges) == 0 {
			t.Errorf("no ground truth for %s", p.Name)
		}
		if len(fp.POPs) == 0 {
			t.Errorf("no POPs for %s", p.Name)
		}
	}
}

func TestConduitForCorridor(t *testing.T) {
	res := build(t)
	// Every published conduit must be findable through its corridor.
	for i := range res.Map.Conduits {
		c := &res.Map.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		cid, ok := res.ConduitForCorridor(c.Corridor)
		if !ok || cid != c.ID {
			t.Fatalf("corridor %d: got %v,%v want %v", c.Corridor, cid, ok, c.ID)
		}
	}
	if _, ok := res.ConduitForCorridor(-99); ok {
		t.Error("bogus corridor should not resolve")
	}
}

func TestRegionalBiasShapesFootprints(t *testing.T) {
	res := build(t)
	a := res.Atlas
	// Integra is biased to the northwest: most of its nodes should be
	// west of -100 longitude.
	west, east := 0, 0
	for _, ci := range res.Truth["Integra"].Nodes(a) {
		if a.Cities[ci].Loc.Lon < -100 {
			west++
		} else {
			east++
		}
	}
	if west <= east {
		t.Errorf("Integra: west=%d east=%d; bias not working", west, east)
	}
	// Suddenlink should live mostly in the south-central states.
	southCentral := map[string]bool{"TX": true, "LA": true, "AR": true, "OK": true,
		"MO": true, "MS": true, "WV": true, "NC": true, "AZ": true, "NM": true, "TN": true, "KS": true}
	in, out := 0, 0
	for _, ci := range res.Truth["Suddenlink"].POPs {
		if southCentral[a.Cities[ci].State] {
			in++
		} else {
			out++
		}
	}
	if in <= out {
		t.Errorf("Suddenlink POPs: in-region=%d out=%d", in, out)
	}
}

func TestSmallInternationalsRideSharedTrunks(t *testing.T) {
	// Figure 7's right-hand side: Deutsche Telekom, NTT & co. use
	// conduits that are on average much more shared than Suddenlink's.
	res := build(t)
	avgSharing := func(name string) float64 {
		cids := res.Map.ConduitsOf(name)
		if len(cids) == 0 {
			return 0
		}
		total := 0
		for _, cid := range cids {
			total += res.Map.Conduit(cid).SharingDegree()
		}
		return float64(total) / float64(len(cids))
	}
	dt := avgSharing("Deutsche Telekom")
	ntt := avgSharing("NTT")
	sudden := avgSharing("Suddenlink")
	if dt <= sudden || ntt <= sudden {
		t.Errorf("avg sharing: DT=%.2f NTT=%.2f Suddenlink=%.2f; paper ordering violated", dt, ntt, sudden)
	}
}

func TestFootprintGeneration(t *testing.T) {
	a := atlas.Load()
	g := a.Graph()
	prof, _ := ProfileByName("Verizon")
	fp := GenerateFootprint(a, g, prof, 1, nil)
	if len(fp.Edges) == 0 || len(fp.Routes) == 0 {
		t.Fatal("empty footprint")
	}
	// The footprint must be connected: every edge reachable from the
	// first POP using only footprint edges.
	wf := func(eid int) float64 {
		if !fp.Edges[eid] {
			return 1e18
		}
		return 1
	}
	dist := g.ShortestDistances(fp.POPs[0], wf)
	for eid := range fp.Edges {
		e := g.Edge(eid)
		if dist[e.U] >= 1e17 && dist[e.V] >= 1e17 {
			t.Errorf("edge %d disconnected from backbone", eid)
		}
	}
	// POPs are distinct.
	seen := map[int]bool{}
	for _, p := range fp.POPs {
		if seen[p] {
			t.Errorf("duplicate POP %d", p)
		}
		seen[p] = true
	}
}

func TestOccupancyDiscountMonotone(t *testing.T) {
	prev := occupancyDiscount(0)
	if prev != 1.0 {
		t.Errorf("empty conduit should have no discount, got %v", prev)
	}
	for n := 1; n <= 25; n++ {
		d := occupancyDiscount(n)
		if d >= prev {
			t.Fatalf("discount must decrease: d(%d)=%v >= d(%d)=%v", n, d, n-1, prev)
		}
		if d < 0.3 {
			t.Fatalf("discount floor breached: %v", d)
		}
		prev = d
	}
}

func TestProfileLookups(t *testing.T) {
	if _, ok := ProfileByName("Level 3"); !ok {
		t.Error("Level 3 profile missing")
	}
	if _, ok := ProfileByName("Atlantis Telecom"); ok {
		t.Error("bogus profile found")
	}
	names := MappedNames()
	if len(names) != 20 {
		t.Errorf("mapped names = %d, want 20", len(names))
	}
	for _, n := range names {
		if n == "SoftLayer" || n == "MFN" {
			t.Errorf("unmapped provider %s in mapped list", n)
		}
	}
}

func TestBuildWithSubsetProfiles(t *testing.T) {
	subset := []Profile{
		{Name: "Alpha", Tier: Tier1, Geocoded: true, POPTarget: 10, Redundancy: 0.2, JitterAmp: 0.2},
		{Name: "Beta", Tier: Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.2, JitterAmp: 0.2},
		{Name: "Ghost", Tier: Unmapped, POPTarget: 5, JitterAmp: 0.2},
	}
	res := BuildWithProfiles(Options{Seed: 3}, subset)
	s := res.Map.Stats()
	if s.ISPs != 2 {
		t.Errorf("published ISPs = %d, want 2", s.ISPs)
	}
	if len(res.Truth) != 3 {
		t.Errorf("truth providers = %d, want 3", len(res.Truth))
	}
}

func TestOccupancyDiscountAblation(t *testing.T) {
	with := build(t).Map.Stats()
	without := Build(Options{Seed: 42, DisableOccupancyDiscount: true}).Map.Stats()
	// The discount concentrates tenancy: without it the heavy tail of
	// mega-shared conduits shrinks.
	if without.MaxSharing > with.MaxSharing {
		t.Errorf("max sharing without discount (%d) exceeds with (%d)",
			without.MaxSharing, with.MaxSharing)
	}
	withTail := with.SharedByGT17
	withoutTail := without.SharedByGT17
	if withoutTail > withTail {
		t.Errorf("tail without discount (%d) exceeds with (%d)", withoutTail, withTail)
	}
}
