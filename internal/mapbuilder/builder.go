// Package mapbuilder implements §2 of the paper: the four-step
// construction of the US long-haul fiber map.
//
//	Step 1 — seed the map with the providers whose published fiber
//	         maps carry explicit geocoding.
//	Step 2 — validate those link locations against the public-records
//	         corpus and establish conduit sharing.
//	Step 3 — add providers that publish only POP-level maps by
//	         aligning each logical link along the closest known
//	         rights-of-way.
//	Step 4 — validate the tentative alignments with public records,
//	         choosing among candidate ROWs by documentary evidence.
//
// Because the substrate is synthetic, the builder also retains the
// ground truth, so the fidelity of steps 2-4 (which the paper could
// only argue for qualitatively) is measured and reported.
package mapbuilder

import (
	"fmt"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/records"
)

// Options configures a build.
type Options struct {
	// Seed drives every random choice in the build. Builds with equal
	// options are bit-identical.
	Seed int64
	// Records tunes the synthetic public-records corpus.
	Records records.Options
	// AlignCandidates is how many candidate ROW paths step 3 considers
	// per logical link (default 3).
	AlignCandidates int
	// ValidateTopK is how many search hits steps 2 and 4 examine per
	// validation query (default 8).
	ValidateTopK int
	// DisableOccupancyDiscount turns off the shared-trench economics
	// (every provider prices corridors as greenfield). Exists for the
	// ablation benchmarks: without the discount the sharing
	// distribution of Figure 6 loses its heavy tail.
	DisableOccupancyDiscount bool
}

func (o Options) withDefaults() Options {
	if o.AlignCandidates == 0 {
		o.AlignCandidates = 3
	}
	if o.ValidateTopK == 0 {
		o.ValidateTopK = 8
	}
	if o.Records.Seed == 0 {
		o.Records.Seed = o.Seed + 1
	}
	return o
}

// ISPCounts reproduces one row of the paper's Table 1 for the built
// map.
type ISPCounts struct {
	Name     string
	Nodes    int
	Links    int
	Geocoded bool
}

// Report carries build statistics and ground-truth fidelity measures.
type Report struct {
	PerISP []ISPCounts
	// Step 1 totals (geocoded providers only).
	Step1Nodes, Step1Links, Step1Conduits int
	// Step 2: how many step-1 links had documentary evidence.
	Step2Validated, Step2Checked int
	// Step 3/4: logical-link alignment.
	Step4Routes       int // logical links aligned
	Step4Edges        int // conduit placements chosen
	Step4EdgesCorrect int // placements matching ground truth
	Step4Validated    int // placements with documentary evidence
	// Hidden tenancies recorded for the traceroute overlay.
	HiddenTenancies int
}

// AlignmentAccuracy returns the fraction of step-3/4 conduit
// placements that match ground truth.
func (r Report) AlignmentAccuracy() float64 {
	if r.Step4Edges == 0 {
		return 1
	}
	return float64(r.Step4EdgesCorrect) / float64(r.Step4Edges)
}

// Result is a completed build.
type Result struct {
	Map    *fiber.Map
	Atlas  *atlas.Atlas
	Graph  *graph.Graph // corridor graph (edge ids = corridor indices)
	Corpus *records.Corpus
	Index  *records.Index
	// Truth maps provider name to its ground-truth footprint,
	// including unmapped providers.
	Truth  map[string]Footprint
	Report Report
}

// edgeRef returns the records reference for a corridor edge.
func edgeRef(a *atlas.Atlas, eid int) records.ConduitRef {
	c := &a.Corridors[eid]
	return records.NewConduitRef(a.Cities[c.A].Key(), a.Cities[c.B].Key())
}

// Build runs the four-step pipeline over the default provider
// universe.
func Build(opts Options) *Result {
	return BuildWithProfiles(opts, Profiles())
}

// BuildWithProfiles runs the pipeline over a caller-supplied provider
// universe (used by tests and ablations).
func BuildWithProfiles(opts Options, profiles []Profile) *Result {
	opts = opts.withDefaults()
	a := atlas.Load()
	g := a.Graph()

	res := &Result{
		Map:   fiber.NewMap(),
		Atlas: a,
		Graph: g,
		Truth: make(map[string]Footprint, len(profiles)),
	}

	// Ground truth for every provider, mapped or not. Providers build
	// in order of decreasing footprint size — the large incumbents dug
	// the original trenches, and everyone after them gets the
	// occupancy discount for joining an existing conduit.
	order := make([]int, len(profiles))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return profiles[order[x]].POPTarget > profiles[order[y]].POPTarget
	})
	occupancy := make([]int, g.NumEdges())
	for _, pi := range order {
		p := profiles[pi]
		occ := occupancy
		if opts.DisableOccupancyDiscount {
			occ = nil
		}
		fp := GenerateFootprint(a, g, p, opts.Seed, occ)
		res.Truth[p.Name] = fp
		for eid := range fp.Edges {
			occupancy[eid]++
		}
	}

	// The public-records corpus describes the true tenancy relation.
	truth := records.GroundTruth{Tenants: make(map[records.ConduitRef][]string)}
	edgeTenants := make(map[int][]string)
	for _, p := range profiles {
		for eid := range res.Truth[p.Name].Edges {
			edgeTenants[eid] = append(edgeTenants[eid], p.Name)
		}
	}
	for eid, tenants := range edgeTenants {
		// Parallel corridors between the same city pair share one
		// records reference: merge their tenant sets.
		ref := edgeRef(a, eid)
		merged := append(truth.Tenants[ref], tenants...)
		sort.Strings(merged)
		merged = dedupSorted(merged)
		truth.Tenants[ref] = merged
	}
	allNames := make([]string, 0, len(profiles))
	for _, p := range profiles {
		allNames = append(allNames, p.Name)
	}
	res.Corpus = records.Generate(truth, allNames, opts.Records)
	res.Index = records.BuildIndex(res.Corpus)
	inf := records.NewInference(res.Index)

	ensure := func(eid int) fiber.ConduitID {
		c := &a.Corridors[eid]
		ca, cb := a.Cities[c.A], a.Cities[c.B]
		na := res.Map.AddNode(ca.Name, ca.State, ca.Loc, ca.Population, c.A)
		nb := res.Map.AddNode(cb.Name, cb.State, cb.Loc, cb.Population, c.B)
		// The conduit is trenched alongside the corridor's primary
		// right-of-way, not on its centerline.
		return res.Map.EnsureConduit(na, nb, eid, c.Geometry.PerpendicularOffset(1.5))
	}

	// ---- Step 1: geocoded provider maps. Edge iteration is sorted
	// so conduit ids (and the whole build) are reproducible.
	for _, p := range profiles {
		if !p.Mapped() || !p.Geocoded {
			continue
		}
		for _, eid := range sortedEdges(res.Truth[p.Name].Edges) {
			res.Map.AddTenant(ensure(eid), p.Name)
		}
	}
	s := res.Map.Stats()
	res.Report.Step1Nodes, res.Report.Step1Links, res.Report.Step1Conduits = s.Nodes, s.Links, s.Conduits

	// ---- Step 2: validate step-1 link locations against records.
	for _, p := range profiles {
		if !p.Mapped() || !p.Geocoded {
			continue
		}
		for _, eid := range sortedEdges(res.Truth[p.Name].Edges) {
			res.Report.Step2Checked++
			if _, ok := inf.Validate(edgeRef(a, eid), p.Name, opts.ValidateTopK); ok {
				res.Report.Step2Validated++
			}
		}
	}

	// ---- Steps 3 and 4: align POP-only providers along ROWs and
	// validate the placements.
	plain := func(eid int) float64 {
		c := &a.Corridors[eid]
		return c.LengthKm * rowFactor(c.ROW)
	}
	alignWS := graph.NewWorkspace() // serial alignment loop: one workspace
	for _, p := range profiles {
		if !p.Mapped() || p.Geocoded {
			continue
		}
		fp := res.Truth[p.Name]
		chosen := make(map[int]bool)
		for _, route := range fp.Routes {
			cands := g.KShortestPathsWS(alignWS, route[0], route[1], opts.AlignCandidates, plain)
			if len(cands) == 0 {
				continue
			}
			res.Report.Step4Routes++
			best, bestScore := 0, -1.0
			for i, cand := range cands {
				validated := 0
				for _, eid := range cand.Edges {
					if _, ok := inf.Validate(edgeRef(a, eid), p.Name, opts.ValidateTopK); ok {
						validated++
					}
				}
				score := float64(validated) / float64(len(cand.Edges))
				// Prefer documentary evidence; break ties toward the
				// shorter path (earlier candidate).
				if score > bestScore+1e-9 {
					best, bestScore = i, score
				}
			}
			for _, eid := range cands[best].Edges {
				chosen[eid] = true
			}
		}
		for _, eid := range sortedEdges(chosen) {
			res.Map.AddTenant(ensure(eid), p.Name)
			res.Report.Step4Edges++
			if fp.Edges[eid] {
				res.Report.Step4EdgesCorrect++
			}
			if _, ok := inf.Validate(edgeRef(a, eid), p.Name, opts.ValidateTopK); ok {
				res.Report.Step4Validated++
			}
		}
	}

	// ---- Hidden tenancy: unmapped providers, plus mapped providers'
	// true occupations the published maps missed. These are invisible
	// to the risk matrix but discoverable by the traceroute overlay
	// (paper §4.3).
	for _, p := range profiles {
		fp := res.Truth[p.Name]
		for _, eid := range sortedEdges(fp.Edges) {
			cid, ok := conduitFor(res.Map, a, eid)
			if !ok {
				continue // conduit absent from the published map entirely
			}
			if res.Map.Conduit(cid).HasTenant(p.Name) {
				continue
			}
			if res.Map.AddHiddenTenant(cid, p.Name) {
				res.Report.HiddenTenancies++
			}
		}
	}

	// ---- Per-provider counts (Table 1 / §2.3 reporting).
	for _, p := range profiles {
		if !p.Mapped() {
			continue
		}
		links := res.Map.ConduitsOf(p.Name)
		res.Report.PerISP = append(res.Report.PerISP, ISPCounts{
			Name:     p.Name,
			Nodes:    len(res.Map.NodesOf(p.Name)),
			Links:    len(links),
			Geocoded: p.Geocoded,
		})
	}
	return res
}

// sortedEdges returns the keys of an edge set in ascending order.
func sortedEdges(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for eid := range set {
		out = append(out, eid)
	}
	sort.Ints(out)
	return out
}

// dedupSorted removes adjacent duplicates from a sorted slice.
func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// conduitFor finds the published conduit following corridor eid, if
// any.
func conduitFor(m *fiber.Map, a *atlas.Atlas, eid int) (fiber.ConduitID, bool) {
	if eid < 0 || eid >= len(a.Corridors) {
		return 0, false
	}
	c := &a.Corridors[eid]
	na, ok := m.NodeByKey(a.Cities[c.A].Key())
	if !ok {
		return 0, false
	}
	nb, ok := m.NodeByKey(a.Cities[c.B].Key())
	if !ok {
		return 0, false
	}
	for _, cid := range m.ConduitsBetween(na, nb) {
		if m.Conduit(cid).Corridor == eid {
			return cid, true
		}
	}
	return 0, false
}

// ConduitForCorridor exposes conduit lookup by corridor edge id for
// other packages (traceroute overlay, mitigation).
func (r *Result) ConduitForCorridor(eid int) (fiber.ConduitID, bool) {
	return conduitFor(r.Map, r.Atlas, eid)
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := r.Map.Stats()
	return fmt.Sprintf("map: %d nodes, %d links, %d conduits, %d ISPs",
		s.Nodes, s.Links, s.Conduits, s.ISPs)
}
