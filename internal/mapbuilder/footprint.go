package mapbuilder

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/graph"
)

// footprint.go generates a provider's ground-truth physical footprint
// over the corridor graph. The central modelling assumption — taken
// straight from the paper — is that conduit placement is driven by
// shared economics: everyone wants the cheapest trench, and the
// cheapest trench is the one that already exists along the busiest
// right-of-way. We express that as a corridor cost shared by all
// providers, with a per-provider multiplicative jitter whose amplitude
// models how much a given provider deviated from the herd
// (JitterAmp in the Profile).

// Footprint is a provider's ground-truth deployment.
type Footprint struct {
	// Edges is the set of corridor edge ids the provider occupies.
	Edges map[int]bool
	// POPs are the atlas city indices the provider set out to serve.
	POPs []int
	// Routes are the logical links of the provider's published
	// POP-level map: city-index pairs its backbone connects directly.
	Routes [][2]int
}

// rowFactor expresses that corridors with both road and rail are the
// cheapest to build in (established ROW, grading, access), pipelines
// the dearest.
func rowFactor(r atlas.ROW) float64 {
	switch r {
	case atlas.ROWBoth:
		return 1.0
	case atlas.ROWRoad:
		return 1.08
	case atlas.ROWRail:
		return 1.18
	default: // pipeline
		return 1.45
	}
}

// hash01 maps (name, id) to a deterministic value in [0,1).
func hash01(name string, id int) float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)})
	return float64(h.Sum64()%1e9) / 1e9
}

// occupancyDiscount models the economics at the heart of the paper:
// pulling fiber through a conduit that already exists (dug by an
// earlier provider) costs a fraction of trenching a new one, so the
// more tenants a conduit has, the cheaper the next tenant's entry.
// This positive feedback is what concentrates 19 ISPs into the same
// tube between Salt Lake City and Denver.
func occupancyDiscount(tenants int) float64 {
	return 0.35 + 0.65/float64(1+tenants)
}

// costFunc returns the provider's corridor traversal cost given the
// current occupancy (tenant count per corridor edge) of earlier
// builders. occupancy may be nil for a greenfield cost model.
func costFunc(a *atlas.Atlas, prof Profile, occupancy []int) graph.WeightFunc {
	return func(eid int) float64 {
		c := &a.Corridors[eid]
		// Jitter multiplier in [1-amp, 1+amp], deterministic per
		// (provider, corridor).
		j := 1 + prof.JitterAmp*(2*hash01(prof.Name, eid)-1)
		w := c.LengthKm * rowFactor(c.ROW) * j
		if occupancy != nil {
			w *= occupancyDiscount(occupancy[eid])
		}
		return w
	}
}

// selectPOPs scores every city by population, regional bias, and a
// provider-specific lognormal jitter, then takes the top POPTarget.
func selectPOPs(a *atlas.Atlas, prof Profile, rng *rand.Rand) []int {
	bias := make(map[string]bool, len(prof.BiasStates))
	for _, st := range prof.BiasStates {
		bias[st] = true
	}
	bw := prof.BiasWeight
	if bw <= 0 {
		bw = 1
	}
	type scored struct {
		city  int
		score float64
	}
	all := make([]scored, len(a.Cities))
	// POP-selection noise scales with the provider's route jitter:
	// conservative late entrants (Deutsche Telekom, NTT, ...) serve
	// exactly the biggest metros, while diverse builders spread out.
	sigma := 0.15 + prof.JitterAmp
	exp := prof.PopExponent
	if exp == 0 {
		exp = 1
	}
	for i, c := range a.Cities {
		s := math.Pow(float64(c.Population), exp)
		if bias[c.State] {
			s *= bw
		}
		s *= math.Exp(rng.NormFloat64() * sigma)
		all[i] = scored{city: i, score: s}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	n := prof.POPTarget
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].city
	}
	return out
}

// GenerateFootprint builds the provider's ground-truth footprint:
// POP selection, incremental attachment of each POP to the growing
// backbone along cheapest corridors, then redundancy routes that are
// pushed off already-owned edges to create rings.
//
// occupancy, when non-nil, is the per-corridor tenant count of
// providers that built before this one; its edges are discounted
// (see occupancyDiscount). Callers building a full provider universe
// should generate footprints in deployment order and accumulate
// occupancy between calls.
func GenerateFootprint(a *atlas.Atlas, g *graph.Graph, prof Profile, seed int64, occupancy []int) Footprint {
	h := fnv.New64a()
	h.Write([]byte(prof.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))

	fp := Footprint{Edges: make(map[int]bool)}
	fp.POPs = selectPOPs(a, prof, rng)
	if len(fp.POPs) == 0 {
		return fp
	}
	wf := costFunc(a, prof, occupancy)

	// One workspace (and one reused distance buffer) serves every
	// attachment and redundancy query of this footprint.
	ws := graph.NewWorkspace()
	var dist []float64

	connected := make(map[int]bool)
	connected[fp.POPs[0]] = true
	for _, pop := range fp.POPs[1:] {
		if connected[pop] {
			continue
		}
		dist = g.ShortestDistancesWS(ws, pop, wf, dist)
		// Scan vertices in ascending order so distance ties break
		// deterministically (map iteration order would not).
		best, bestD := -1, math.Inf(1)
		for v := 0; v < g.NumVertices(); v++ {
			if connected[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		if best < 0 {
			continue // isolated; cannot attach (should not happen on a connected atlas)
		}
		path, ok := g.ShortestPathWS(ws, pop, best, wf)
		if !ok {
			continue
		}
		for _, eid := range path.Edges {
			fp.Edges[eid] = true
		}
		for _, v := range path.Nodes {
			connected[v] = true
		}
		fp.Routes = append(fp.Routes, [2]int{pop, best})
	}

	// Redundancy: extra routes between random POP pairs, biased away
	// from edges the provider already owns so they form rings.
	nExtra := int(math.Round(prof.Redundancy * float64(len(fp.POPs))))
	divWF := func(eid int) float64 {
		w := wf(eid)
		if fp.Edges[eid] {
			w *= 2.5
		}
		return w
	}
	for i := 0; i < nExtra; i++ {
		p := fp.POPs[rng.Intn(len(fp.POPs))]
		q := fp.POPs[rng.Intn(len(fp.POPs))]
		if p == q {
			continue
		}
		path, ok := g.ShortestPathWS(ws, p, q, divWF)
		if !ok {
			continue
		}
		newEdge := false
		for _, eid := range path.Edges {
			if !fp.Edges[eid] {
				newEdge = true
			}
			fp.Edges[eid] = true
		}
		if newEdge {
			fp.Routes = append(fp.Routes, [2]int{p, q})
		}
	}
	return fp
}

// Nodes returns the distinct cities touched by the footprint's edges,
// ascending.
func (fp Footprint) Nodes(a *atlas.Atlas) []int {
	seen := make(map[int]bool)
	for eid := range fp.Edges {
		c := &a.Corridors[eid]
		seen[c.A] = true
		seen[c.B] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
