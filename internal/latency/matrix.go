// Package latency implements the all-pairs city-to-city latency
// atlas: one source-batched single-source shortest-path (SSSP) sweep
// replaces the per-pair path queries the §5.3 study grew up on. The
// kernel runs one full Dijkstra per source node — not one per pair —
// chunked over the worker pool with one reusable graph.Workspace per
// worker, and writes every result into a single flat []float64
// distance matrix. "Dissecting Latency in the Internet's Fiber
// Infrastructure" (PAPERS.md) is the blueprint for what the matrix
// feeds: per-pair inflation over the geodesic c-latency bound, and
// overlay relay placement scored directly off matrix rows.
package latency

import (
	"context"

	"intertubes/internal/graph"
	"intertubes/internal/par"
)

// Matrix is a batch of SSSP rows over one graph: row i holds the
// shortest path weight from Sources[i] to every vertex, +Inf where
// unreachable. The backing store is one flat row-major []float64 in
// source-major order — Dist[i*Cols+v] is source i's distance to
// vertex v — and that layout is the determinism contract: each row is
// written by exactly one Dijkstra run, so a completed build is
// bit-identical at any worker count.
type Matrix struct {
	// Sources lists the row sources in ascending vertex order.
	Sources []int32
	// Cols is the number of vertices (columns per row).
	Cols int
	// Dist is the flat row-major distance matrix, len(Sources)*Cols.
	Dist []float64
}

// Row returns source i's distance row. The slice aliases the matrix
// and must be treated as read-only.
func (m *Matrix) Row(i int) []float64 { return m.Dist[i*m.Cols : (i+1)*m.Cols] }

// BuildMatrix runs one full Dijkstra per source over g under wf. Each
// source's row compute is the warm-path kernel: with a grown
// workspace and the weight table materialized, it allocates nothing
// (pinned by an AllocsPerRun guard). reuse, when non-nil, lets a
// caller substitute a previously computed row instead of running the
// source's Dijkstra: it must either copy a byte-identical row into
// dst and return true, or return false to compute from scratch.
func BuildMatrix(ctx context.Context, g *graph.Graph, wf graph.WeightFunc, sources []int32, workers int, reuse func(i int, dst []float64) bool) (*Matrix, error) {
	n := g.NumVertices()
	mx := &Matrix{Sources: sources, Cols: n, Dist: make([]float64, len(sources)*n)}
	err := par.RunCtxWith(ctx, len(sources), workers, graph.NewWorkspace, func(i int, ws *graph.Workspace) {
		row := mx.Row(i)
		if reuse != nil && reuse(i, row) {
			return
		}
		g.ShortestDistancesWS(ws, int(sources[i]), wf, row)
	})
	if err != nil {
		return nil, err
	}
	return mx, nil
}
