package latency

import (
	"context"
	"math"
	"reflect"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/mapbuilder"
)

var cachedRes *mapbuilder.Result

// build returns one shared baseline map for the package's tests; the
// atlas never mutates it, so sharing is safe.
func build(t *testing.T) *mapbuilder.Result {
	t.Helper()
	if cachedRes == nil {
		cachedRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
	}
	return cachedRes
}

// twoIslands builds a map with two lit components — A-B-C connected,
// D-E connected, no lit path between them — so cross-island pairs are
// unreachable and per-island perturbations leave the far island's
// rows untouched.
func twoIslands(t *testing.T) *fiber.Map {
	t.Helper()
	m := fiber.NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1000000, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 40, Lon: -98}, 1000000, -1)
	c := m.AddNode("C", "XX", geo.Point{Lat: 41, Lon: -99}, 1000000, -1)
	d := m.AddNode("D", "YY", geo.Point{Lat: 33, Lon: -84}, 1000000, -1)
	e := m.AddNode("E", "YY", geo.Point{Lat: 34, Lon: -85}, 1000000, -1)
	mk := func(x, y fiber.NodeID, corr int) fiber.ConduitID {
		id := m.EnsureConduit(x, y, corr, geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2))
		m.AddTenant(id, "X")
		return id
	}
	mk(a, b, 0)
	mk(a, c, 1)
	mk(c, b, 2)
	mk(d, e, 3)
	return m
}

func TestAtlasWorkerInvariance(t *testing.T) {
	res := build(t)
	ctx := context.Background()
	var base *Atlas
	for _, workers := range []int{1, 2, 6} {
		at, err := Build(ctx, res.Map, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = at
			continue
		}
		if !reflect.DeepEqual(base.mx.Sources, at.mx.Sources) {
			t.Fatalf("workers=%d changed the source list", workers)
		}
		if !reflect.DeepEqual(base.mx.Dist, at.mx.Dist) {
			t.Fatalf("workers=%d changed the distance matrix", workers)
		}
	}
}

// TestPairsMatchPerPair is the differential half of the tentpole: the
// batched build must reproduce the per-pair reference byte for byte —
// same pairs, same order, same floats.
func TestPairsMatchPerPair(t *testing.T) {
	res := build(t)
	ctx := context.Background()
	at, err := Build(ctx, res.Map, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := PairsPerPair(ctx, res.Map, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := at.Pairs()
	if len(got) == 0 {
		t.Fatal("empty pair table")
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("batched pairs (%d) differ from per-pair reference (%d)", len(got), len(ref))
	}
}

func TestAtlasProperties(t *testing.T) {
	res := build(t)
	at, err := Build(context.Background(), res.Map, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if at.NumSources() == 0 {
		t.Fatal("no sources")
	}
	prev := fiber.NodeID(-1)
	for i := 0; i < at.NumSources(); i++ {
		src := at.Source(i)
		if src <= prev {
			t.Fatalf("sources not ascending at row %d", i)
		}
		prev = src
		if res.Map.Node(src).Population < 100000 {
			t.Fatalf("source %d below the major-city population floor", src)
		}
		if ri := at.RowIndex(src); ri != i {
			t.Fatalf("RowIndex(%d) = %d, want %d", src, ri, i)
		}
		if d := at.DistKm(i, src); d != 0 {
			t.Fatalf("self distance = %v", d)
		}
	}
	if at.RowIndex(fiber.NodeID(-1)) != -1 {
		t.Error("RowIndex must reject out-of-range ids")
	}
	for _, pl := range at.Pairs() {
		if pl.A >= pl.B {
			t.Fatalf("pair %d-%d violates A < B", pl.A, pl.B)
		}
		for _, v := range []float64{pl.FiberMs, pl.GeoMs, pl.Inflation} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite field in pair %+v", pl)
			}
		}
		// A fiber path cannot beat the geodesic c-latency bound.
		if pl.Inflation < 1-1e-9 {
			t.Fatalf("inflation %.6f < 1 for pair %d-%d", pl.Inflation, pl.A, pl.B)
		}
	}
}

// TestPairForCoLocated pins the degenerate-pair convention: a zero
// geodesic bound yields inflation 1, never NaN.
func TestPairForCoLocated(t *testing.T) {
	pl := pairFor(0, 1, 5, 0)
	if pl.Inflation != 1 {
		t.Fatalf("co-located inflation = %v, want 1", pl.Inflation)
	}
}

// TestPairsDropDisconnected: cross-island pairs have no lit path and
// must be dropped from the pair table, while the matrix keeps their
// +Inf entries.
func TestPairsDropDisconnected(t *testing.T) {
	m := twoIslands(t)
	at, err := Build(context.Background(), m, Options{MinPopulation: 1})
	if err != nil {
		t.Fatal(err)
	}
	if at.NumSources() != 5 {
		t.Fatalf("sources = %d, want 5", at.NumSources())
	}
	// 3 intra-island pairs on ABC, 1 on DE; the 6 cross pairs drop.
	if got := len(at.Pairs()); got != 4 {
		t.Fatalf("pairs = %d, want 4", got)
	}
	if d := at.DistKm(0, 3); !math.IsInf(d, 1) {
		t.Fatalf("cross-island distance = %v, want +Inf", d)
	}
}

// TestBuildViewOfMapMatchesBuild: the map is its own view, so a view
// build over it must be byte-identical to the baseline build.
func TestBuildViewOfMapMatchesBuild(t *testing.T) {
	res := build(t)
	ctx := context.Background()
	base, err := Build(ctx, res.Map, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := BuildView(ctx, res.Map, res.Map, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viewed.ReusedRows != 0 {
		t.Fatalf("ReusedRows = %d without a reuse rule", viewed.ReusedRows)
	}
	if !reflect.DeepEqual(base.mx.Dist, viewed.mx.Dist) {
		t.Fatal("view build differs from baseline build")
	}
}

// TestBuildViewRowReuse: an approve-everything reuse rule must copy
// every row verbatim; approve-nothing must recompute them all — and
// both end byte-identical.
func TestBuildViewRowReuse(t *testing.T) {
	res := build(t)
	ctx := context.Background()
	base, err := Build(ctx, res.Map, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := BuildView(ctx, res.Map, res.Map, base, func(fiber.NodeID) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if all.ReusedRows != base.NumSources() {
		t.Fatalf("ReusedRows = %d, want %d", all.ReusedRows, base.NumSources())
	}
	none, err := BuildView(ctx, res.Map, res.Map, base, func(fiber.NodeID) bool { return false }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if none.ReusedRows != 0 {
		t.Fatalf("ReusedRows = %d, want 0", none.ReusedRows)
	}
	if !reflect.DeepEqual(all.mx.Dist, base.mx.Dist) || !reflect.DeepEqual(none.mx.Dist, base.mx.Dist) {
		t.Fatal("reused and recomputed matrices diverge")
	}
}

func skipIfAllocsUnmeasurable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("allocation guard skipped under the race detector")
	}
}

// TestRowKernelZeroAlloc pins the warm-path claim from BuildMatrix's
// doc: one source's row compute with a grown workspace and an
// in-place destination row allocates nothing.
func TestRowKernelZeroAlloc(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	res := build(t)
	g := res.Map.Graph()
	wf := res.Map.LitWeight()
	srcs := sourceNodes(res.Map, 100000)
	if len(srcs) == 0 {
		t.Fatal("no sources")
	}
	ws := graph.NewWorkspace()
	row := make([]float64, g.NumVertices())
	g.ShortestDistancesWS(ws, int(srcs[0]), wf, row) // warm workspace + weight table
	if avg := testing.AllocsPerRun(100, func() {
		g.ShortestDistancesWS(ws, int(srcs[0]), wf, row)
	}); avg != 0 {
		t.Fatalf("warm row kernel allocates %.1f per run, want 0", avg)
	}
}
