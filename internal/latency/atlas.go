package latency

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/par"
)

// Atlas is the all-pairs latency atlas over a fiber map's major
// cities: one matrix row per city holding the shortest lit-fiber
// distance to every map node. Rows are compared against the geodesic
// c-in-fiber bound to give the per-pair latency inflation the
// "Dissecting Latency" extension studies, and they are the scoring
// substrate for overlay relay placement (mitigate.PlaceRelays).
//
// An Atlas is immutable once built and safe for concurrent readers;
// the derived pair table is memoized behind a sync.Once.
type Atlas struct {
	m      *fiber.Map
	mx     *Matrix
	rowIdx []int32 // vertex -> row index, -1 when not a source

	// ReusedRows counts matrix rows copied verbatim from a base atlas
	// during BuildView instead of recomputed — the overlay row-reuse
	// observability hook (0 for a from-scratch build).
	ReusedRows int

	pairsOnce sync.Once
	pairs     []PairLatency
}

// PairLatency is one connected city pair of the atlas: the one-way
// fiber-path propagation delay, the geodesic c-latency lower bound,
// and their ratio (the latency inflation factor).
type PairLatency struct {
	A, B      fiber.NodeID
	FiberMs   float64 // shortest lit-fiber path delay
	GeoMs     float64 // great-circle c-in-fiber bound
	Inflation float64 // FiberMs / GeoMs (1 for co-located pairs)
}

// Options tunes an atlas build.
type Options struct {
	// MinPopulation restricts sources to cities at or above this
	// population — the paper's long-haul definition uses 100,000 (the
	// default), matching mitigate.LatencyOptions.
	MinPopulation int
	// Workers bounds the worker pool for the source sweep (<= 0 means
	// all CPUs). The atlas is bit-identical for any value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MinPopulation == 0 {
		o.MinPopulation = 100000
	}
	return o
}

// sourceNodes lists the major-city map nodes in ascending id order —
// the matrix's row order, and therefore part of the determinism
// contract.
func sourceNodes(m *fiber.Map, minPop int) []int32 {
	var out []int32
	for i := range m.Nodes {
		if m.Nodes[i].Population >= minPop {
			out = append(out, int32(i))
		}
	}
	return out
}

// Build computes the atlas over the baseline map: one Dijkstra per
// major city over the lit-conduit graph.
func Build(ctx context.Context, m *fiber.Map, opts Options) (*Atlas, error) {
	opts = opts.withDefaults()
	return buildAtlas(ctx, m, m.Graph(), m.LitWeight(), nil, nil, opts)
}

// BuildView computes the atlas over an arbitrary fiber.View whose
// base map is m (node metadata — names, locations, populations —
// never changes under a view). When base and reuse are non-nil, rows
// whose source reuse approves are copied verbatim from base instead
// of recomputed; the caller must only approve sources whose reachable
// region the view leaves untouched, and the differential suite pins
// that a reusing build is byte-identical to a from-scratch one.
func BuildView(ctx context.Context, m *fiber.Map, v fiber.View, base *Atlas, reuse func(fiber.NodeID) bool, opts Options) (*Atlas, error) {
	opts = opts.withDefaults()
	g, wf := viewGraph(v)
	return buildAtlas(ctx, m, g, wf, base, reuse, opts)
}

func buildAtlas(ctx context.Context, m *fiber.Map, g *graph.Graph, wf graph.WeightFunc, base *Atlas, reuse func(fiber.NodeID) bool, opts Options) (*Atlas, error) {
	srcs := sourceNodes(m, opts.MinPopulation)
	var reused atomic.Int64
	var rowReuse func(i int, dst []float64) bool
	if base != nil && reuse != nil && base.mx.Cols == g.NumVertices() && sameSources(base.mx.Sources, srcs) {
		rowReuse = func(i int, dst []float64) bool {
			if !reuse(fiber.NodeID(srcs[i])) {
				return false
			}
			copy(dst, base.mx.Row(i))
			reused.Add(1)
			return true
		}
	}
	mx, err := BuildMatrix(ctx, g, wf, srcs, opts.Workers, rowReuse)
	if err != nil {
		return nil, err
	}
	rowIdx := make([]int32, g.NumVertices())
	for i := range rowIdx {
		rowIdx[i] = -1
	}
	for i, s := range srcs {
		rowIdx[s] = int32(i)
	}
	return &Atlas{m: m, mx: mx, rowIdx: rowIdx, ReusedRows: int(reused.Load())}, nil
}

func sameSources(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// viewGraph compiles v into the conduit multigraph (edge id ==
// conduit id, weighted by length) plus the lit-weight function: +Inf
// for conduits with no effective tenants, exactly fiber.Map.LitWeight
// semantics so a view build is byte-identical to building on the
// materialized map.
func viewGraph(v fiber.View) (*graph.Graph, graph.WeightFunc) {
	g := graph.New(v.NumNodes())
	w := make([]float64, v.NumConduits())
	for cid := 0; cid < v.NumConduits(); cid++ {
		id := fiber.ConduitID(cid)
		a, b := v.ConduitEnds(id)
		km := v.ConduitLengthKm(id)
		g.AddEdge(int(a), int(b), km)
		if len(v.Tenants(id)) > 0 {
			w[cid] = km
		} else {
			w[cid] = math.Inf(1)
		}
	}
	return g, func(eid int) float64 { return w[eid] }
}

// NumSources returns the number of matrix rows (major cities).
func (a *Atlas) NumSources() int { return len(a.mx.Sources) }

// Source returns the map node id of row i.
func (a *Atlas) Source(i int) fiber.NodeID { return fiber.NodeID(a.mx.Sources[i]) }

// RowIndex returns id's row index, or -1 when it is not a source.
func (a *Atlas) RowIndex(id fiber.NodeID) int {
	if int(id) < 0 || int(id) >= len(a.rowIdx) {
		return -1
	}
	return int(a.rowIdx[id])
}

// Row returns row i's distances in km, indexed by map node id (+Inf
// where unreachable). Read-only: the slice aliases the matrix.
func (a *Atlas) Row(i int) []float64 { return a.mx.Row(i) }

// DistKm returns the shortest lit-fiber distance from row source i to
// map node v (+Inf when unreachable).
func (a *Atlas) DistKm(i int, v fiber.NodeID) float64 { return a.mx.Dist[i*a.mx.Cols+int(v)] }

// Pairs returns the connected city pairs of the atlas in source-major
// order (row index i ascending, then j > i) — the stable ordering the
// paginated API exposes. Disconnected pairs are dropped; every field
// of a returned pair is finite. The table is computed once and
// memoized.
func (a *Atlas) Pairs() []PairLatency {
	a.pairsOnce.Do(func() { a.pairs = a.computePairs() })
	return a.pairs
}

func (a *Atlas) computePairs() []PairLatency {
	out := make([]PairLatency, 0, a.NumSources()*(a.NumSources()-1)/2)
	for i := 0; i < a.NumSources(); i++ {
		row := a.mx.Row(i)
		la := a.m.Node(a.Source(i)).Loc
		for j := i + 1; j < a.NumSources(); j++ {
			d := row[a.mx.Sources[j]]
			if math.IsInf(d, 0) {
				continue // no lit path
			}
			out = append(out, pairFor(a.Source(i), a.Source(j), d, la.DistanceKm(a.m.Node(a.Source(j)).Loc)))
		}
	}
	return out
}

// pairFor derives one pair row from a fiber distance and a geodesic
// distance; shared by the batched and per-pair builders so the
// differential suite compares exactly the kernel outputs.
func pairFor(na, nb fiber.NodeID, fiberKm, geoKm float64) PairLatency {
	pl := PairLatency{
		A: na, B: nb,
		FiberMs: geo.FiberLatencyMs(fiberKm),
		GeoMs:   geo.FiberLatencyMs(geoKm),
	}
	if pl.GeoMs > 0 {
		pl.Inflation = pl.FiberMs / pl.GeoMs
	} else {
		// Co-located pair: fiber cannot beat a zero bound; by
		// convention the pair is uninflated rather than NaN.
		pl.Inflation = 1
	}
	return pl
}

// PairsPerPair computes the identical pair table with one
// early-stopped Dijkstra per pair — the pre-atlas asymptotics,
// retained as the executable specification for Build and as the
// baseline half of BenchmarkLatencyAtlas. The differential suite pins
// byte-identical output against Build(...).Pairs().
func PairsPerPair(ctx context.Context, m *fiber.Map, opts Options) ([]PairLatency, error) {
	opts = opts.withDefaults()
	g := m.Graph()
	wf := m.LitWeight()
	srcs := sourceNodes(m, opts.MinPopulation)
	type pair struct{ a, b int32 }
	var pairs []pair
	for i := range srcs {
		for j := i + 1; j < len(srcs); j++ {
			pairs = append(pairs, pair{a: srcs[i], b: srcs[j]})
		}
	}
	type pairResult struct {
		pl PairLatency
		ok bool
	}
	computed, err := par.MapCtxWith(ctx, len(pairs), opts.Workers, graph.NewWorkspace, func(i int, ws *graph.Workspace) pairResult {
		p := pairs[i]
		d, ok := g.ShortestDistanceWS(ws, int(p.a), int(p.b), wf)
		if !ok {
			return pairResult{}
		}
		geoKm := m.Node(fiber.NodeID(p.a)).Loc.DistanceKm(m.Node(fiber.NodeID(p.b)).Loc)
		return pairResult{pl: pairFor(fiber.NodeID(p.a), fiber.NodeID(p.b), d, geoKm), ok: true}
	})
	if err != nil {
		return nil, err
	}
	out := make([]PairLatency, 0, len(pairs))
	for _, r := range computed {
		if r.ok {
			out = append(out, r.pl)
		}
	}
	return out, nil
}
