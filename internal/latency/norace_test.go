//go:build !race

package latency

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
