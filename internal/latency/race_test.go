//go:build race

package latency

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression guards skip under it (instrumentation
// allocates).
const raceEnabled = true
