package traceroute

import (
	"strings"
	"testing"
)

const sampleTraceText = `traceroute to Denver,CO from Chicago,IL
 1  ae-1.chicil.level3.net  0.412 ms
 2  * * *
 3  ae-7.omahne.level3.net  9.120 ms
 4  ae-2.denvco.level3.net  18.400 ms

traceroute to Seattle,WA from Boston,MA
 1  ae-3.bostma.sprintlink.net  0.300 ms
 2  ae-4.albany.sprintlink.net  3.100 ms
`

func TestParseTextBasic(t *testing.T) {
	traces, err := ParseText(strings.NewReader(sampleTraceText))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.Dest != "Denver,CO" {
		t.Errorf("dest = %q", tr.Dest)
	}
	if len(tr.Hops) != 4 {
		t.Fatalf("hops = %d", len(tr.Hops))
	}
	if tr.Hops[1].Name != "" {
		t.Errorf("star hop name = %q", tr.Hops[1].Name)
	}
	if tr.Hops[3].Name != "ae-2.denvco.level3.net" || tr.Hops[3].RTTms != 18.4 {
		t.Errorf("hop 4 = %+v", tr.Hops[3])
	}
}

func TestParseTextHeaderless(t *testing.T) {
	text := " 1  ae-1.chicil.level3.net  0.4 ms\n 2  ae-2.denvco.level3.net  9.0 ms\n" +
		" 1  ae-1.bostma.att.net  0.2 ms\n 2  ae-9.newyny.att.net  2.2 ms\n"
	traces, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Index resetting to 1 splits traces.
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
}

func TestParseTextGarbageInsideTrace(t *testing.T) {
	text := " 1  ae-1.chicil.level3.net  0.4 ms\nnot a hop line\n"
	if _, err := ParseText(strings.NewReader(text)); err == nil {
		t.Error("expected error for garbage inside a trace")
	}
}

func TestParseTextEmpty(t *testing.T) {
	traces, err := ParseText(strings.NewReader(""))
	if err != nil || len(traces) != 0 {
		t.Errorf("empty input: %v, %v", traces, err)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	_, c := campaign(t)
	for _, tr := range c.Samples[:5] {
		text := c.FormatText(tr)
		parsed, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("round trip: %v\n%s", err, text)
		}
		if len(parsed) != 1 {
			t.Fatalf("round trip produced %d traces", len(parsed))
		}
		if len(parsed[0].Hops) != len(tr.Hops) {
			t.Fatalf("hops %d != %d", len(parsed[0].Hops), len(tr.Hops))
		}
		for i, h := range parsed[0].Hops {
			if h.Name != tr.Hops[i].Name {
				t.Errorf("hop %d name %q != %q", i, h.Name, tr.Hops[i].Name)
			}
		}
	}
}

func TestOverlayParsedMergesCounts(t *testing.T) {
	res, _ := campaign(t)
	// A fresh small campaign to overlay into.
	c := Run(res, Options{N: 500, Seed: 31})
	beforeChecked := c.AttributionChecked

	// Render some synthetic traces to text, then re-ingest them.
	var text strings.Builder
	for _, tr := range c.Samples {
		text.WriteString(c.FormatText(tr))
		text.WriteString("\n")
	}
	parsed, err := ParseText(strings.NewReader(text.String()))
	if err != nil {
		t.Fatal(err)
	}
	n := c.OverlayParsed(parsed)
	if n == 0 {
		t.Fatal("no parsed traces contributed")
	}
	if c.AttributionChecked <= beforeChecked {
		t.Error("overlay did not add attributions")
	}
}

func TestOverlayParsedIgnoresUnresolvable(t *testing.T) {
	res, _ := campaign(t)
	c := Run(res, Options{N: 200, Seed: 32})
	parsed := []ParsedTrace{
		{Hops: []ParsedHop{{Index: 1, Name: "ae-1.unknowable.example.org"}, {Index: 2}}},
		{Hops: []ParsedHop{{Index: 1, Name: "ae-1.chicil.level3.net"}}}, // single hop
	}
	if n := c.OverlayParsed(parsed); n != 0 {
		t.Errorf("unusable traces contributed %d", n)
	}
}
