package traceroute

import (
	"strings"
	"testing"
)

// FuzzParseText asserts the traceroute text parser never panics and
// that anything it accepts has structurally sane hops.
func FuzzParseText(f *testing.F) {
	f.Add(sampleTraceText)
	f.Add(" 1  ae-1.chicil.level3.net  0.4 ms\n")
	f.Add("traceroute to X\n 1  * * *\n")
	f.Add("1")
	f.Add("traceroute")
	f.Add(" 999  name")
	f.Fuzz(func(t *testing.T, input string) {
		traces, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, tr := range traces {
			if len(tr.Hops) == 0 {
				t.Fatal("accepted a trace with no hops")
			}
		}
	})
}
