package traceroute

import (
	"strings"
	"testing"
)

// FuzzParseText asserts the traceroute text parser never panics and
// that anything it accepts has structurally sane hops.
func FuzzParseText(f *testing.F) {
	f.Add(sampleTraceText)
	f.Add(" 1  ae-1.chicil.level3.net  0.4 ms\n")
	f.Add("traceroute to X\n 1  * * *\n")
	f.Add("1")
	f.Add("traceroute")
	f.Add(" 999  name")
	// MPLS-elided tunnel: only the ingress and egress routers are
	// visible, with the whole tunnel's delay on the final hop.
	f.Add("traceroute to Denver,CO from Chicago,IL\n 1  ae-1.chicil.level3.net  2.1 ms\n 2  ae-9.dnvrco.level3.net  24.9 ms\n")
	// Headerless capture: hop lines with no "traceroute to" banner.
	f.Add(" 1  xe-0.chicil.att.net  1.2 ms\n 2  xe-3.stlsmo.att.net  8.7 ms\n 3  * * *\n")
	f.Fuzz(func(t *testing.T, input string) {
		traces, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, tr := range traces {
			if len(tr.Hops) == 0 {
				t.Fatal("accepted a trace with no hops")
			}
		}
	})
}
