package traceroute

import (
	"fmt"
	"strings"
)

func ExampleParseText() {
	text := `traceroute to Denver,CO from Chicago,IL
 1  ae-1.chicil.level3.net  0.412 ms
 2  * * *
 3  ae-2.denvco.level3.net  18.400 ms`
	traces, _ := ParseText(strings.NewReader(text))
	fmt.Println(traces[0].Dest, len(traces[0].Hops))
	// Output: Denver,CO 3
}

func ExampleISPForDomain() {
	isp, _ := ISPForDomain("ae-3.dalltx.sprintlink.net")
	fmt.Println(isp)
	// Output: Sprint
}
