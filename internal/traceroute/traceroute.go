// Package traceroute implements §4.3 of the paper: a large-scale
// traceroute campaign whose probes are overlaid on the physical
// conduit map, using route popularity as a proxy for traffic volume
// (after Sanchez et al., the paper's [99]).
//
// The paper used three months of Edgescope data (4.9M traceroutes
// from diverse clients). That corpus is proprietary, so this package
// synthesizes a campaign with the same relevant structure: clients
// and servers drawn by population gravity, transit carried by a
// provider chosen in proportion to backbone size, layer-3 hops that
// follow the provider's ground-truth conduit paths, hop names carrying
// the city/provider hints real router names carry, MPLS tunnels that
// elide interior hops, and occasional geolocation noise. The overlay
// then attributes each trace back onto published conduits using ONLY
// what a measurement study would have: hop names and the published
// map.
package traceroute

import (
	"math/rand"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/mapbuilder"
)

// Options configures a campaign.
type Options struct {
	// N is the number of traceroutes to synthesize (default 200000).
	N int
	// Seed drives the deterministic generator.
	Seed int64
	// MPLSProb is the probability that a trace's transit segment is an
	// MPLS tunnel hiding interior hops (default 0.25; the paper
	// observed tunnels but judged their impact limited).
	MPLSProb float64
	// GeoNoiseProb is the probability a hop name is unusable (e.g. no
	// rDNS), leaving only coarse geolocation (default 0.05).
	GeoNoiseProb float64
	// PeerProb is the probability a trace crosses two providers with a
	// handoff at a mutual peering hub (default 0.3).
	PeerProb float64
	// RetainTraces keeps this many raw traces for inspection
	// (default 64).
	RetainTraces int
	// Workers bounds the worker pool for per-probe routing and
	// attribution (<= 0 means all CPUs). Campaign results are
	// bit-identical for any value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 200000
	}
	if o.MPLSProb == 0 {
		o.MPLSProb = 0.25
	}
	if o.GeoNoiseProb == 0 {
		o.GeoNoiseProb = 0.05
	}
	if o.PeerProb == 0 {
		o.PeerProb = 0.3
	}
	if o.RetainTraces == 0 {
		o.RetainTraces = 64
	}
	return o
}

// Hop is one visible layer-3 hop.
type Hop struct {
	Name  string  // router interface DNS name ("" if unresolvable)
	City  int     // atlas city index (ground truth)
	RTTms float64 // cumulative round-trip time
}

// Trace is one synthesized traceroute.
type Trace struct {
	SrcCity, DstCity int
	ISP              string // first transit provider (ground truth)
	PeerISP          string // second provider after the handoff, if any
	MPLS             bool   // interior hops elided on some segment
	Hops             []Hop
}

// WestToEast reports whether the trace runs from a western origin to
// an eastern destination, classified — as in the paper — from the
// geolocation of the endpoints.
func (t Trace) WestToEast(c *Campaign) bool {
	return c.atlasLon(t.SrcCity) < c.atlasLon(t.DstCity)
}

// DirCounts holds per-direction probe counts.
type DirCounts struct {
	WestEast int64
	EastWest int64
}

// Total returns the sum of both directions.
func (d DirCounts) Total() int64 { return d.WestEast + d.EastWest }

// Campaign is the aggregated result of a traceroute run plus its
// conduit overlay.
type Campaign struct {
	Opts  Options
	Total int

	// ConduitProbes counts probes attributed to each published
	// conduit, by trace direction.
	ConduitProbes map[fiber.ConduitID]*DirCounts
	// ISPConduits counts, per provider (as inferred from hop names),
	// the probes attributed to each conduit.
	ISPConduits map[string]map[fiber.ConduitID]int64
	// InferredTenants records providers observed on each conduit via
	// naming hints — including providers absent from the published
	// tenant list (the paper's "additional ISPs", Figure 9).
	InferredTenants map[fiber.ConduitID]map[string]bool
	// Unattributed counts trace segments the overlay could not map to
	// any published conduit (incomplete map and/or hidden providers).
	Unattributed int64
	// AttributionChecked/Correct measure overlay fidelity against
	// ground truth (possible only because the substrate is synthetic).
	AttributionChecked int64
	AttributionCorrect int64
	// Samples holds a few raw traces for display.
	Samples []Trace

	res   *mapbuilder.Result
	namer *Namer
	// truthByName maps provider -> ground-truth corridor edge set, for
	// attribution scoring.
	truthByName map[string]map[int]bool
	// ispIndex assigns stable small integers to provider names for
	// memoization keys.
	ispIndex map[string]int
}

func (c *Campaign) atlasLon(city int) float64 {
	return c.res.Atlas.Cities[city].Loc.Lon
}

// Namer exposes the campaign's hop-name codec.
func (c *Campaign) Namer() *Namer { return c.namer }

// AttributionAccuracy returns the fraction of overlay attributions
// that match the ground-truth conduits.
func (c *Campaign) AttributionAccuracy() float64 {
	if c.AttributionChecked == 0 {
		return 1
	}
	return float64(c.AttributionCorrect) / float64(c.AttributionChecked)
}

// ConduitRank is a row of the paper's Tables 2 and 3.
type ConduitRank struct {
	Conduit fiber.ConduitID
	A, B    string // city keys
	Probes  int64
}

// TopConduits returns the top n conduits by probe count in the given
// direction (westToEast=true reproduces Table 2, false Table 3).
func (c *Campaign) TopConduits(n int, westToEast bool) []ConduitRank {
	out := make([]ConduitRank, 0, len(c.ConduitProbes))
	for cid, d := range c.ConduitProbes {
		count := d.WestEast
		if !westToEast {
			count = d.EastWest
		}
		if count == 0 {
			continue
		}
		con := c.res.Map.Conduit(cid)
		out = append(out, ConduitRank{
			Conduit: cid,
			A:       c.res.Map.Node(con.A).Key(),
			B:       c.res.Map.Node(con.B).Key(),
			Probes:  count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probes != out[j].Probes {
			return out[i].Probes > out[j].Probes
		}
		return out[i].Conduit < out[j].Conduit
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ISPRank is a row of the paper's Table 4.
type ISPRank struct {
	ISP      string
	Conduits int
	Probes   int64
}

// TopISPs returns providers ranked by the number of conduits observed
// carrying their probes (Table 4; Level 3 leads in the paper).
func (c *Campaign) TopISPs(n int) []ISPRank {
	out := make([]ISPRank, 0, len(c.ISPConduits))
	for isp, conduits := range c.ISPConduits {
		var probes int64
		for _, p := range conduits {
			probes += p
		}
		out = append(out, ISPRank{ISP: isp, Conduits: len(conduits), Probes: probes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Conduits != out[j].Conduits {
			return out[i].Conduits > out[j].Conduits
		}
		if out[i].Probes != out[j].Probes {
			return out[i].Probes > out[j].Probes
		}
		return out[i].ISP < out[j].ISP
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SharingWithTraffic returns, for every published conduit, the
// published tenant count and the tenant count after adding providers
// inferred from the traceroute overlay — the two CDFs of Figure 9.
func (c *Campaign) SharingWithTraffic() (published, overlaid []int) {
	for i := range c.res.Map.Conduits {
		con := &c.res.Map.Conduits[i]
		if len(con.Tenants) == 0 {
			continue
		}
		published = append(published, len(con.Tenants))
		extra := 0
		for isp := range c.InferredTenants[con.ID] {
			if !con.HasTenant(isp) {
				extra++
			}
		}
		overlaid = append(overlaid, len(con.Tenants)+extra)
	}
	return published, overlaid
}

// gravity draws a city index weighted by population.
type gravity struct {
	cities []int
	cum    []float64
}

func newGravity(pops []float64, cities []int) *gravity {
	g := &gravity{cities: cities, cum: make([]float64, len(cities))}
	var total float64
	for i, c := range cities {
		total += pops[c]
		g.cum[i] = total
	}
	return g
}

func (g *gravity) draw(rng *rand.Rand) int {
	if len(g.cities) == 0 {
		return -1
	}
	x := rng.Float64() * g.cum[len(g.cum)-1]
	i := sort.SearchFloat64s(g.cum, x)
	if i >= len(g.cities) {
		i = len(g.cities) - 1
	}
	return g.cities[i]
}
