package traceroute

import (
	"reflect"
	"testing"
)

// TestRunWorkerInvariance is the determinism contract for the parallel
// campaign: every counter, attribution table, and retained sample must
// be identical for any worker count at a fixed seed.
func TestRunWorkerInvariance(t *testing.T) {
	res, _ := campaign(t)
	base := Run(res, Options{N: 6000, Seed: 11, Workers: 1})
	for _, workers := range []int{2, 5} {
		got := Run(res, Options{N: 6000, Seed: 11, Workers: workers})
		if got.Total != base.Total {
			t.Errorf("workers=%d: Total = %d, want %d", workers, got.Total, base.Total)
		}
		if got.Unattributed != base.Unattributed {
			t.Errorf("workers=%d: Unattributed = %d, want %d", workers, got.Unattributed, base.Unattributed)
		}
		if got.AttributionChecked != base.AttributionChecked || got.AttributionCorrect != base.AttributionCorrect {
			t.Errorf("workers=%d: attribution %d/%d, want %d/%d", workers,
				got.AttributionCorrect, got.AttributionChecked,
				base.AttributionCorrect, base.AttributionChecked)
		}
		if !reflect.DeepEqual(got.ConduitProbes, base.ConduitProbes) {
			t.Errorf("workers=%d: ConduitProbes diverge", workers)
		}
		if !reflect.DeepEqual(got.ISPConduits, base.ISPConduits) {
			t.Errorf("workers=%d: ISPConduits diverge", workers)
		}
		if !reflect.DeepEqual(got.InferredTenants, base.InferredTenants) {
			t.Errorf("workers=%d: InferredTenants diverge", workers)
		}
		if !reflect.DeepEqual(got.Samples, base.Samples) {
			t.Errorf("workers=%d: retained Samples diverge", workers)
		}
	}
}
