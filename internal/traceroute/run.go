package traceroute

import (
	"math"
	"math/rand"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/mapbuilder"
)

// run.go synthesizes the campaign and performs the conduit overlay.

// ispContext caches the routing state for one transit provider.
type ispContext struct {
	name string
	// truthWF routes over the provider's ground-truth corridor edges.
	truthWF graph.WeightFunc
	// truthEdges is the provider's ground-truth footprint.
	truthEdges map[int]bool
	// nodes are the atlas cities on the provider's backbone.
	nodes []int
	// weight is the provider's share of transit (backbone size).
	weight float64
}

type pathKey struct {
	isp  int
	a, b int
}

// Run synthesizes a campaign over the built map and overlays it onto
// the published conduits.
func Run(res *mapbuilder.Result, opts Options) *Campaign {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	a := res.Atlas
	g := res.Graph

	c := &Campaign{
		Opts:            opts,
		ConduitProbes:   make(map[fiber.ConduitID]*DirCounts),
		ISPConduits:     make(map[string]map[fiber.ConduitID]int64),
		InferredTenants: make(map[fiber.ConduitID]map[string]bool),
		truthByName:     make(map[string]map[int]bool, len(res.Truth)),
		ispIndex:        make(map[string]int),
		res:             res,
		namer:           NewNamer(a),
	}
	for name, fp := range res.Truth {
		c.truthByName[name] = fp.Edges
	}

	// Transit providers, deterministic order.
	names := make([]string, 0, len(res.Truth))
	for name := range res.Truth {
		names = append(names, name)
	}
	sort.Strings(names)
	var isps []*ispContext
	var totalWeight float64
	for _, name := range names {
		fp := res.Truth[name]
		if len(fp.Edges) == 0 {
			continue
		}
		edges := fp.Edges
		ctx := &ispContext{
			name:       name,
			truthEdges: edges,
			nodes:      fp.Nodes(a),
			weight:     float64(len(edges)),
			truthWF: func(eid int) float64 {
				if !edges[eid] {
					return inf
				}
				return a.Corridors[eid].LengthKm
			},
		}
		isps = append(isps, ctx)
		totalWeight += ctx.weight
	}

	// Client/server gravity over all cities.
	pops := make([]float64, len(a.Cities))
	allCities := make([]int, len(a.Cities))
	for i, city := range a.Cities {
		pops[i] = float64(city.Population)
		allCities[i] = i
	}
	grav := newGravity(pops, allCities)

	// Map graph for the overlay (vertices are fiber.NodeIDs).
	mg := res.Map.Graph()
	cityNode := make([]int, len(a.Cities)) // atlas city -> map node or -1
	for i := range cityNode {
		cityNode[i] = -1
	}
	for _, n := range res.Map.Nodes {
		if n.AtlasCity >= 0 {
			cityNode[n.AtlasCity] = int(n.ID)
		}
	}

	truthPaths := make(map[pathKey]graph.Path)
	overlayPaths := make(map[pathKey][]fiber.ConduitID)
	nearestMemo := make(map[pathKey]int) // (isp, city, 0) -> backbone node
	peerHubs := make(map[[2]int][]int)   // (isp1, isp2) -> peering cities

	nearestBackbone := func(ispIdx int, ctx *ispContext, city int) int {
		key := pathKey{isp: ispIdx, a: city}
		if v, ok := nearestMemo[key]; ok {
			return v
		}
		loc := a.Cities[city].Loc
		best, bestD := -1, 1e18
		for _, n := range ctx.nodes {
			if d := a.Cities[n].Loc.DistanceKm(loc); d < bestD {
				best, bestD = n, d
			}
		}
		nearestMemo[key] = best
		return best
	}

	for i := 0; i < opts.N; i++ {
		src := grav.draw(rng)
		dst := grav.draw(rng)
		if src == dst || src < 0 {
			continue
		}
		// Transit provider in proportion to backbone size.
		x := rng.Float64() * totalWeight
		ispIdx := 0
		for ; ispIdx < len(isps)-1; ispIdx++ {
			x -= isps[ispIdx].weight
			if x < 0 {
				break
			}
		}
		ctx := isps[ispIdx]

		memoPath := func(ispIdx int, ctx *ispContext, a, b int) (graph.Path, bool) {
			pk := pathKey{isp: ispIdx, a: a, b: b}
			path, ok := truthPaths[pk]
			if !ok {
				path, _ = g.ShortestPath(a, b, ctx.truthWF)
				truthPaths[pk] = path
			}
			return path, len(path.Edges) > 0
		}

		// With probability PeerProb the trace crosses two providers,
		// handing off at a mutual peering hub — real paths routinely
		// do, and the overlay must attribute each segment to the right
		// provider from its hop names alone.
		var trace Trace
		if rng.Float64() < opts.PeerProb && len(isps) > 1 {
			isp2Idx := rng.Intn(len(isps))
			if isp2Idx == ispIdx {
				isp2Idx = (isp2Idx + 1) % len(isps)
			}
			ctx2 := isps[isp2Idx]
			hub := choosePeerHub(a, peerHubs, ispIdx, isp2Idx, ctx, ctx2, src, dst)
			if hub < 0 {
				continue // the two providers never meet
			}
			entry := nearestBackbone(ispIdx, ctx, src)
			exit := nearestBackbone(isp2Idx, ctx2, dst)
			if entry < 0 || exit < 0 || entry == hub || exit == hub {
				continue
			}
			p1, ok1 := memoPath(ispIdx, ctx, entry, hub)
			p2, ok2 := memoPath(isp2Idx, ctx2, hub, exit)
			if !ok1 || !ok2 {
				continue
			}
			c.Total++
			trace = c.synthesizeTwo(rng, ctx, ctx2, src, dst, p1, p2)
		} else {
			entry := nearestBackbone(ispIdx, ctx, src)
			exit := nearestBackbone(ispIdx, ctx, dst)
			if entry < 0 || exit < 0 || entry == exit {
				continue // no long-haul transit on this trace
			}
			path, ok := memoPath(ispIdx, ctx, entry, exit)
			if !ok {
				continue
			}
			c.Total++
			trace = c.synthesize(rng, ctx, src, dst, path)
		}
		if len(c.Samples) < opts.RetainTraces {
			c.Samples = append(c.Samples, trace)
		}
		c.overlay(trace, mg, cityNode, overlayPaths)
	}
	return c
}

// choosePeerHub returns the atlas city where the two providers hand
// traffic off: among the biggest cities both backbones touch, the one
// closest to the src-dst great-circle midpoint. Returns -1 if the
// footprints are disjoint.
func choosePeerHub(a *atlas.Atlas, memo map[[2]int][]int, i1, i2 int, c1, c2 *ispContext, src, dst int) int {
	key := [2]int{i1, i2}
	if i1 > i2 {
		key = [2]int{i2, i1}
	}
	hubs, ok := memo[key]
	if !ok {
		in2 := make(map[int]bool, len(c2.nodes))
		for _, n := range c2.nodes {
			in2[n] = true
		}
		var common []int
		for _, n := range c1.nodes {
			if in2[n] {
				common = append(common, n)
			}
		}
		// Providers peer at their biggest mutual markets: keep the top
		// few by population.
		sort.Slice(common, func(x, y int) bool {
			px, py := a.Cities[common[x]].Population, a.Cities[common[y]].Population
			if px != py {
				return px > py
			}
			return common[x] < common[y]
		})
		if len(common) > 4 {
			common = common[:4]
		}
		memo[key] = common
		hubs = common
	}
	if len(hubs) == 0 {
		return -1
	}
	mid := geo.Midpoint(a.Cities[src].Loc, a.Cities[dst].Loc)
	best, bestD := -1, math.Inf(1)
	for _, h := range hubs {
		if d := a.Cities[h].Loc.DistanceKm(mid); d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

// synthesize renders the visible hops of one trace: every backbone
// city on the path, unless the segment rides an MPLS tunnel, in which
// case only the ingress and egress are visible (paper §4.3's caveat).
// Each hop name resolves unless rDNS noise hides it.
func (c *Campaign) synthesize(rng *rand.Rand, ctx *ispContext, src, dst int, path graph.Path) Trace {
	a := c.res.Atlas
	t := Trace{SrcCity: src, DstCity: dst, ISP: ctx.name}
	t.MPLS = rng.Float64() < c.Opts.MPLSProb

	cities := path.Nodes
	visible := cities
	if t.MPLS && len(cities) > 2 {
		visible = []int{cities[0], cities[len(cities)-1]}
	}
	// Cumulative RTT: access tail to the first hop plus fiber distance
	// along the backbone, times two (round trip), with jitter.
	rtt := 2 * geo.FiberLatencyMs(a.Cities[src].Loc.DistanceKm(a.Cities[cities[0]].Loc)*1.3)
	prev := cities[0]
	for _, city := range visible {
		if city != prev {
			rtt += 2 * geo.FiberLatencyMs(a.Cities[prev].Loc.DistanceKm(a.Cities[city].Loc)*1.2)
			prev = city
		}
		h := Hop{City: city, RTTms: rtt + rng.Float64()*0.4}
		if rng.Float64() >= c.Opts.GeoNoiseProb {
			h.Name = c.namer.HopName(1+rng.Intn(9), city, ctx.name)
		}
		t.Hops = append(t.Hops, h)
	}
	return t
}

// synthesizeTwo renders a two-provider trace: the first provider's
// hops up to the peering hub, then the second provider's hops. Either
// segment may independently ride an MPLS tunnel.
func (c *Campaign) synthesizeTwo(rng *rand.Rand, ctx1, ctx2 *ispContext, src, dst int, p1, p2 graph.Path) Trace {
	t1 := c.synthesize(rng, ctx1, src, dst, p1)
	// The second segment begins at the peering hub, so its access
	// tail is zero-length.
	t2 := c.synthesize(rng, ctx2, p2.Nodes[0], dst, p2)
	out := Trace{SrcCity: src, DstCity: dst, ISP: ctx1.name, PeerISP: ctx2.name, MPLS: t1.MPLS || t2.MPLS}
	out.Hops = append(out.Hops, t1.Hops...)
	// Continue the clock: the second segment's RTTs stack on the
	// first segment's final RTT.
	base := 0.0
	if len(t1.Hops) > 0 {
		base = t1.Hops[len(t1.Hops)-1].RTTms
	}
	for _, h := range t2.Hops {
		h.RTTms += base
		out.Hops = append(out.Hops, h)
	}
	return out
}

// overlay attributes one trace's visible hop pairs to published
// conduits using only hop names and the published map, then scores the
// attribution against ground truth.
func (c *Campaign) overlay(t Trace, mg *graph.Graph, cityNode []int, memo map[pathKey][]fiber.ConduitID) {
	m := c.res.Map
	westEast := t.WestToEast(c)

	// Decode the hops a measurement study could decode.
	type decoded struct {
		city int
		isp  string
	}
	var hops []decoded
	for _, h := range t.Hops {
		if h.Name == "" {
			continue
		}
		city, isp, ok := c.namer.DecodeHopName(h.Name)
		if !ok {
			continue
		}
		hops = append(hops, decoded{city: city, isp: isp})
	}
	for i := 1; i < len(hops); i++ {
		a, b := hops[i-1], hops[i]
		if a.city == b.city {
			continue
		}
		isp := b.isp // the far end's provider owns the segment
		conduits := c.segmentConduits(a.city, b.city, isp, mg, cityNode, memo)
		if conduits == nil {
			c.Unattributed++
			continue
		}
		for _, cid := range conduits {
			dc := c.ConduitProbes[cid]
			if dc == nil {
				dc = &DirCounts{}
				c.ConduitProbes[cid] = dc
			}
			if westEast {
				dc.WestEast++
			} else {
				dc.EastWest++
			}
			byISP := c.ISPConduits[isp]
			if byISP == nil {
				byISP = make(map[fiber.ConduitID]int64)
				c.ISPConduits[isp] = byISP
			}
			byISP[cid]++
			tenants := c.InferredTenants[cid]
			if tenants == nil {
				tenants = make(map[string]bool)
				c.InferredTenants[cid] = tenants
			}
			tenants[isp] = true

			// Ground-truth scoring: did the overlay put the probe in a
			// conduit the provider actually occupies?
			c.AttributionChecked++
			if c.truthByName[isp][m.Conduit(cid).Corridor] {
				c.AttributionCorrect++
			}
		}
	}
}

// segmentConduits maps a visible hop pair onto published conduits:
// first over the provider's published footprint, then over any lit
// conduit (the provider may be absent from the published map
// entirely — that is how "additional ISPs" are discovered). A nil
// return means the segment cannot be attributed.
func (c *Campaign) segmentConduits(cityA, cityB int, isp string, mg *graph.Graph, cityNode []int, memo map[pathKey][]fiber.ConduitID) []fiber.ConduitID {
	idx, ok := c.ispIndex[isp]
	if !ok {
		idx = len(c.ispIndex)
		c.ispIndex[isp] = idx
	}
	key := pathKey{isp: idx, a: cityA, b: cityB}
	if v, ok := memo[key]; ok {
		return v
	}
	m := c.res.Map
	var out []fiber.ConduitID
	na, nb := cityNode[cityA], cityNode[cityB]
	if na < 0 || nb < 0 {
		memo[key] = nil
		return nil
	}
	path, ok := mg.ShortestPath(na, nb, m.TenantWeight(isp))
	if !ok {
		path, ok = mg.ShortestPath(na, nb, m.LitWeight())
	}
	if ok {
		out = make([]fiber.ConduitID, len(path.Edges))
		for i, eid := range path.Edges {
			out[i] = fiber.ConduitID(eid)
		}
	}
	memo[key] = out
	return out
}

// inf excludes an edge from Dijkstra (the graph package skips +Inf
// edges entirely).
var inf = math.Inf(1)
