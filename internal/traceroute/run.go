package traceroute

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"intertubes/internal/atlas"
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/obs"
	"intertubes/internal/par"
)

// run.go synthesizes the campaign and performs the conduit overlay.
//
// The campaign is structured for deterministic parallelism in three
// phases:
//
//  1. Probe decisions (endpoints, transit provider, peering) are drawn
//     serially from the campaign stream with a fixed number of rand
//     calls per probe, so the sequence never depends on routing
//     outcomes.
//  2. Routing, synthesis, and conduit attribution — the expensive
//     per-probe work — fan out over a worker pool via par.MapSeeded:
//     hop-level randomness (MPLS tunnels, RTT jitter, rDNS noise)
//     comes from per-chunk streams on a fixed grid, and the route
//     memos cache pure shortest-path results, so any worker count
//     produces bit-identical traces.
//  3. Campaign counters are reduced in probe order on one goroutine.

// ispContext caches the routing state for one transit provider.
type ispContext struct {
	name string
	// truthWF routes over the provider's ground-truth corridor edges.
	truthWF graph.WeightFunc
	// truthEdges is the provider's ground-truth footprint.
	truthEdges map[int]bool
	// nodes are the atlas cities on the provider's backbone.
	nodes []int
	// weight is the provider's share of transit (backbone size).
	weight float64
}

type pathKey struct {
	isp  int
	a, b int
}

// segAttr is one conduit attribution extracted from a trace: the
// overlay's output for a single visible hop pair, before it is folded
// into the campaign counters.
type segAttr struct {
	cid     fiber.ConduitID
	isp     string
	correct bool // matches the provider's ground-truth footprint
}

// Run synthesizes a campaign over the built map and overlays it onto
// the published conduits.
func Run(res *mapbuilder.Result, opts Options) *Campaign {
	c, _ := RunCtx(context.Background(), res, opts) // background ctx: cannot fail
	return c
}

// RunCtx is Run with a caller context that both parents the campaign's
// stage spans and carries real cancellation: the phase-1 decision loop
// and every phase-2 window check ctx at chunk-grant boundaries, so a
// canceled campaign stops synthesizing within one window and returns
// (nil, ctx.Err()). A campaign that completes is bit-identical to the
// serial order at any worker count — cancellation can only abort a
// run, never reorder it.
func RunCtx(ctx context.Context, res *mapbuilder.Result, opts Options) (*Campaign, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	a := res.Atlas
	g := res.Graph

	c := &Campaign{
		Opts:            opts,
		ConduitProbes:   make(map[fiber.ConduitID]*DirCounts),
		ISPConduits:     make(map[string]map[fiber.ConduitID]int64),
		InferredTenants: make(map[fiber.ConduitID]map[string]bool),
		truthByName:     make(map[string]map[int]bool, len(res.Truth)),
		ispIndex:        make(map[string]int),
		res:             res,
		namer:           NewNamer(a),
	}
	for name, fp := range res.Truth {
		c.truthByName[name] = fp.Edges
	}

	// Transit providers, deterministic order. Provider memo indices
	// are assigned up front so workers never mutate the index map.
	names := make([]string, 0, len(res.Truth))
	for name := range res.Truth {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		c.ispIndex[name] = i
	}
	var isps []*ispContext
	var totalWeight float64
	for _, name := range names {
		fp := res.Truth[name]
		if len(fp.Edges) == 0 {
			continue
		}
		edges := fp.Edges
		ctx := &ispContext{
			name:       name,
			truthEdges: edges,
			nodes:      fp.Nodes(a),
			weight:     float64(len(edges)),
			truthWF: func(eid int) float64 {
				if !edges[eid] {
					return inf
				}
				return a.Corridors[eid].LengthKm
			},
		}
		isps = append(isps, ctx)
		totalWeight += ctx.weight
	}

	// Client/server gravity over all cities.
	pops := make([]float64, len(a.Cities))
	allCities := make([]int, len(a.Cities))
	for i, city := range a.Cities {
		pops[i] = float64(city.Population)
		allCities[i] = i
	}
	grav := newGravity(pops, allCities)

	// Map graph for the overlay (vertices are fiber.NodeIDs).
	mg := res.Map.Graph()
	cityNode := make([]int, len(a.Cities)) // atlas city -> map node or -1
	for i := range cityNode {
		cityNode[i] = -1
	}
	for _, n := range res.Map.Nodes {
		if n.AtlasCity >= 0 {
			cityNode[n.AtlasCity] = int(n.ID)
		}
	}

	// Route memos shared by the workers. Every cached value is a pure
	// function of the immutable map/atlas, so the memos change speed,
	// never results.
	truthPaths := par.NewMemo[pathKey, graph.Path]()
	nearestMemo := par.NewMemo[pathKey, int]() // (isp, city, 0) -> backbone node
	peerHubs := par.NewMemo[[2]int, []int]()   // (isp1, isp2) -> peering cities
	overlayMemo := par.NewMemo[pathKey, []fiber.ConduitID]()

	nearestBackbone := func(ispIdx int, ctx *ispContext, city int) int {
		return nearestMemo.Do(pathKey{isp: ispIdx, a: city}, func() int {
			loc := a.Cities[city].Loc
			best, bestD := -1, 1e18
			for _, n := range ctx.nodes {
				if d := a.Cities[n].Loc.DistanceKm(loc); d < bestD {
					best, bestD = n, d
				}
			}
			return best
		})
	}
	memoPath := func(ws *graph.Workspace, ispIdx int, ctx *ispContext, from, to int) (graph.Path, bool) {
		path := truthPaths.Do(pathKey{isp: ispIdx, a: from, b: to}, func() graph.Path {
			p, _ := g.ShortestPathWS(ws, from, to, ctx.truthWF)
			return p
		})
		return path, len(path.Edges) > 0
	}

	// Phase 1: probe-level decisions from the campaign stream. The
	// per-probe call pattern is fixed — every probe draws endpoints,
	// a provider, a peering roll, and a peer pick — so the stream
	// cannot drift with routing outcomes.
	type probeSpec struct {
		src, dst int
		ispIdx   int
		peer     bool
		peerPick int
	}
	_, decideSpan := obs.Trace(ctx, "traceroute.decide")
	specs := make([]probeSpec, opts.N)
	for i := range specs {
		// The decision loop is serial (one shared campaign stream), so
		// it polls ctx itself on the same grid the pool uses.
		if i%par.ChunkSize == 0 && ctx.Err() != nil {
			decideSpan.End()
			return nil, ctx.Err()
		}
		sp := &specs[i]
		sp.src = grav.draw(rng)
		sp.dst = grav.draw(rng)
		x := rng.Float64() * totalWeight
		for ; sp.ispIdx < len(isps)-1; sp.ispIdx++ {
			x -= isps[sp.ispIdx].weight
			if x < 0 {
				break
			}
		}
		sp.peer = rng.Float64() < opts.PeerProb
		if len(isps) > 1 {
			sp.peerPick = rng.Intn(len(isps))
		}
	}
	decideSpan.SetItems(int64(opts.N))
	decideSpan.End()

	// Phase 2: the pure per-probe kernel — route, synthesize,
	// attribute. A zero probeOut means the probe saw no long-haul
	// transit (same rejections as the serial code).
	type probeOut struct {
		ok       bool
		trace    Trace
		westEast bool
		attrs    []segAttr
		misses   int
	}
	probe := func(i int, prng *rand.Rand, ws *graph.Workspace) probeOut {
		sp := specs[i]
		if sp.src == sp.dst || sp.src < 0 {
			return probeOut{}
		}
		ctx := isps[sp.ispIdx]
		var trace Trace
		if sp.peer && len(isps) > 1 {
			// The trace crosses two providers, handing off at a mutual
			// peering hub — real paths routinely do, and the overlay
			// must attribute each segment to the right provider from
			// its hop names alone.
			isp2Idx := sp.peerPick
			if isp2Idx == sp.ispIdx {
				isp2Idx = (isp2Idx + 1) % len(isps)
			}
			ctx2 := isps[isp2Idx]
			hub := choosePeerHub(a, peerHubs, sp.ispIdx, isp2Idx, ctx, ctx2, sp.src, sp.dst)
			if hub < 0 {
				return probeOut{} // the two providers never meet
			}
			entry := nearestBackbone(sp.ispIdx, ctx, sp.src)
			exit := nearestBackbone(isp2Idx, ctx2, sp.dst)
			if entry < 0 || exit < 0 || entry == hub || exit == hub {
				return probeOut{}
			}
			p1, ok1 := memoPath(ws, sp.ispIdx, ctx, entry, hub)
			p2, ok2 := memoPath(ws, isp2Idx, ctx2, hub, exit)
			if !ok1 || !ok2 {
				return probeOut{}
			}
			trace = c.synthesizeTwo(prng, ctx, ctx2, sp.src, sp.dst, p1, p2)
		} else {
			entry := nearestBackbone(sp.ispIdx, ctx, sp.src)
			exit := nearestBackbone(sp.ispIdx, ctx, sp.dst)
			if entry < 0 || exit < 0 || entry == exit {
				return probeOut{} // no long-haul transit on this trace
			}
			path, ok := memoPath(ws, sp.ispIdx, ctx, entry, exit)
			if !ok {
				return probeOut{}
			}
			trace = c.synthesize(prng, ctx, sp.src, sp.dst, path)
		}
		out := probeOut{ok: true, trace: trace, westEast: trace.WestToEast(c)}
		out.attrs, out.misses = c.attribute(ws, trace, mg, cityNode, overlayMemo)
		return out
	}

	// Phases 2+3, windowed: each window fans the kernel out over the
	// worker pool and reduces in probe order, bounding the in-flight
	// traces regardless of campaign size. The synthesis seed is offset
	// from the campaign seed because phase 1 already consumed that
	// stream; chunk indices stay absolute across windows.
	synthSeed := opts.Seed + 0x5eed
	const window = 64 * par.ChunkSize
	for lo := 0; lo < opts.N; lo += window {
		hi := lo + window
		if hi > opts.N {
			hi = opts.N
		}
		_, synthSpan := obs.Trace(ctx, "traceroute.synthesize")
		synthSpan.SetWorkers(par.Workers(opts.Workers))
		outs, err := par.MapSeededRangeCtxWith(ctx, lo, hi, opts.Workers, synthSeed, graph.NewWorkspace, probe)
		synthSpan.SetItems(int64(hi - lo))
		synthSpan.End()
		if err != nil {
			return nil, err
		}
		_, reduceSpan := obs.Trace(ctx, "traceroute.reduce")
		kept := int64(0)
		for _, o := range outs {
			if !o.ok {
				continue
			}
			kept++
			c.Total++
			if len(c.Samples) < opts.RetainTraces {
				c.Samples = append(c.Samples, o.trace)
			}
			c.apply(o.westEast, o.attrs, o.misses)
		}
		reduceSpan.SetItems(kept)
		reduceSpan.End()
	}
	return c, nil
}

// choosePeerHub returns the atlas city where the two providers hand
// traffic off: among the biggest cities both backbones touch, the one
// closest to the src-dst great-circle midpoint. Returns -1 if the
// footprints are disjoint.
func choosePeerHub(a *atlas.Atlas, memo *par.Memo[[2]int, []int], i1, i2 int, c1, c2 *ispContext, src, dst int) int {
	key := [2]int{i1, i2}
	if i1 > i2 {
		key = [2]int{i2, i1}
	}
	hubs := memo.Do(key, func() []int {
		in2 := make(map[int]bool, len(c2.nodes))
		for _, n := range c2.nodes {
			in2[n] = true
		}
		var common []int
		for _, n := range c1.nodes {
			if in2[n] {
				common = append(common, n)
			}
		}
		// Providers peer at their biggest mutual markets: keep the top
		// few by population.
		sort.Slice(common, func(x, y int) bool {
			px, py := a.Cities[common[x]].Population, a.Cities[common[y]].Population
			if px != py {
				return px > py
			}
			return common[x] < common[y]
		})
		if len(common) > 4 {
			common = common[:4]
		}
		return common
	})
	if len(hubs) == 0 {
		return -1
	}
	mid := geo.Midpoint(a.Cities[src].Loc, a.Cities[dst].Loc)
	best, bestD := -1, math.Inf(1)
	for _, h := range hubs {
		if d := a.Cities[h].Loc.DistanceKm(mid); d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

// synthesize renders the visible hops of one trace: every backbone
// city on the path, unless the segment rides an MPLS tunnel, in which
// case only the ingress and egress are visible (paper §4.3's caveat).
// Each hop name resolves unless rDNS noise hides it.
func (c *Campaign) synthesize(rng *rand.Rand, ctx *ispContext, src, dst int, path graph.Path) Trace {
	a := c.res.Atlas
	t := Trace{SrcCity: src, DstCity: dst, ISP: ctx.name}
	t.MPLS = rng.Float64() < c.Opts.MPLSProb

	cities := path.Nodes
	visible := cities
	if t.MPLS && len(cities) > 2 {
		visible = []int{cities[0], cities[len(cities)-1]}
	}
	// Cumulative RTT: access tail to the first hop plus fiber distance
	// along the backbone, times two (round trip), with jitter.
	rtt := 2 * geo.FiberLatencyMs(a.Cities[src].Loc.DistanceKm(a.Cities[cities[0]].Loc)*1.3)
	prev := cities[0]
	for _, city := range visible {
		if city != prev {
			rtt += 2 * geo.FiberLatencyMs(a.Cities[prev].Loc.DistanceKm(a.Cities[city].Loc)*1.2)
			prev = city
		}
		h := Hop{City: city, RTTms: rtt + rng.Float64()*0.4}
		if rng.Float64() >= c.Opts.GeoNoiseProb {
			h.Name = c.namer.HopName(1+rng.Intn(9), city, ctx.name)
		}
		t.Hops = append(t.Hops, h)
	}
	return t
}

// synthesizeTwo renders a two-provider trace: the first provider's
// hops up to the peering hub, then the second provider's hops. Either
// segment may independently ride an MPLS tunnel.
func (c *Campaign) synthesizeTwo(rng *rand.Rand, ctx1, ctx2 *ispContext, src, dst int, p1, p2 graph.Path) Trace {
	t1 := c.synthesize(rng, ctx1, src, dst, p1)
	// The second segment begins at the peering hub, so its access
	// tail is zero-length.
	t2 := c.synthesize(rng, ctx2, p2.Nodes[0], dst, p2)
	out := Trace{SrcCity: src, DstCity: dst, ISP: ctx1.name, PeerISP: ctx2.name, MPLS: t1.MPLS || t2.MPLS}
	out.Hops = append(out.Hops, t1.Hops...)
	// Continue the clock: the second segment's RTTs stack on the
	// first segment's final RTT.
	base := 0.0
	if len(t1.Hops) > 0 {
		base = t1.Hops[len(t1.Hops)-1].RTTms
	}
	for _, h := range t2.Hops {
		h.RTTms += base
		out.Hops = append(out.Hops, h)
	}
	return out
}

// attribute maps one trace's visible hop pairs onto published
// conduits using only hop names and the published map, and scores
// each attribution against ground truth. It mutates nothing on the
// campaign: the counter updates happen in apply, on the reducing
// goroutine.
func (c *Campaign) attribute(ws *graph.Workspace, t Trace, mg *graph.Graph, cityNode []int, memo *par.Memo[pathKey, []fiber.ConduitID]) (attrs []segAttr, misses int) {
	m := c.res.Map

	// Decode the hops a measurement study could decode.
	type decoded struct {
		city int
		isp  string
	}
	var hops []decoded
	for _, h := range t.Hops {
		if h.Name == "" {
			continue
		}
		city, isp, ok := c.namer.DecodeHopName(h.Name)
		if !ok {
			continue
		}
		hops = append(hops, decoded{city: city, isp: isp})
	}
	for i := 1; i < len(hops); i++ {
		a, b := hops[i-1], hops[i]
		if a.city == b.city {
			continue
		}
		isp := b.isp // the far end's provider owns the segment
		conduits := c.segmentConduits(ws, a.city, b.city, isp, mg, cityNode, memo)
		if conduits == nil {
			misses++
			continue
		}
		for _, cid := range conduits {
			attrs = append(attrs, segAttr{
				cid: cid, isp: isp,
				// Ground-truth scoring: did the overlay put the probe
				// in a conduit the provider actually occupies?
				correct: c.truthByName[isp][m.Conduit(cid).Corridor],
			})
		}
	}
	return attrs, misses
}

// apply folds one trace's attributions into the campaign counters.
func (c *Campaign) apply(westEast bool, attrs []segAttr, misses int) {
	c.Unattributed += int64(misses)
	for _, at := range attrs {
		dc := c.ConduitProbes[at.cid]
		if dc == nil {
			dc = &DirCounts{}
			c.ConduitProbes[at.cid] = dc
		}
		if westEast {
			dc.WestEast++
		} else {
			dc.EastWest++
		}
		byISP := c.ISPConduits[at.isp]
		if byISP == nil {
			byISP = make(map[fiber.ConduitID]int64)
			c.ISPConduits[at.isp] = byISP
		}
		byISP[at.cid]++
		tenants := c.InferredTenants[at.cid]
		if tenants == nil {
			tenants = make(map[string]bool)
			c.InferredTenants[at.cid] = tenants
		}
		tenants[at.isp] = true
		c.AttributionChecked++
		if at.correct {
			c.AttributionCorrect++
		}
	}
}

// segmentConduits maps a visible hop pair onto published conduits:
// first over the provider's published footprint, then over any lit
// conduit (the provider may be absent from the published map
// entirely — that is how "additional ISPs" are discovered). A nil
// return means the segment cannot be attributed.
func (c *Campaign) segmentConduits(ws *graph.Workspace, cityA, cityB int, isp string, mg *graph.Graph, cityNode []int, memo *par.Memo[pathKey, []fiber.ConduitID]) []fiber.ConduitID {
	idx, ok := c.ispIndex[isp]
	if !ok {
		// A provider outside the pre-assigned index set (possible only
		// for external corpora): compute uncached rather than have
		// racing workers grow the index map.
		return c.computeSegmentConduits(ws, cityA, cityB, isp, mg, cityNode)
	}
	key := pathKey{isp: idx, a: cityA, b: cityB}
	return memo.Do(key, func() []fiber.ConduitID {
		return c.computeSegmentConduits(ws, cityA, cityB, isp, mg, cityNode)
	})
}

func (c *Campaign) computeSegmentConduits(ws *graph.Workspace, cityA, cityB int, isp string, mg *graph.Graph, cityNode []int) []fiber.ConduitID {
	m := c.res.Map
	na, nb := cityNode[cityA], cityNode[cityB]
	if na < 0 || nb < 0 {
		return nil
	}
	path, ok := mg.ShortestPathWS(ws, na, nb, m.TenantWeight(isp))
	if !ok {
		path, ok = mg.ShortestPathWS(ws, na, nb, m.LitWeight())
	}
	if !ok {
		return nil
	}
	out := make([]fiber.ConduitID, len(path.Edges))
	for i, eid := range path.Edges {
		out[i] = fiber.ConduitID(eid)
	}
	return out
}

// inf excludes an edge from Dijkstra (the graph package skips +Inf
// edges entirely).
var inf = math.Inf(1)
