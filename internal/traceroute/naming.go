package traceroute

import (
	"fmt"
	"sort"
	"strings"

	"intertubes/internal/atlas"
)

// naming.go synthesizes and decodes router interface DNS names. The
// paper attributed layer-3 hops to cities and providers through
// "geolocation information and naming hints in the traceroute data"
// (citing DRoP and Chabarek's "What's in a Name?"); our hop names
// follow the same convention real carriers use:
//
//	ae-3.dllstx.sprintlink.net
//	     ^^^^^^ city code   ^^^ provider domain
//
// A Namer builds the code table for a city set and decodes names back
// to (city, provider) — including the collision handling a real
// decoder needs.

// domainForISP maps provider names to the DNS domains seen in
// traceroute data.
var domainForISP = map[string]string{
	"AT&T":             "att.net",
	"Comcast":          "cbone.comcast.net",
	"Cogent":           "cogentco.com",
	"EarthLink":        "earthlink.net",
	"Integra":          "integra.net",
	"Level 3":          "level3.net",
	"Suddenlink":       "suddenlink.net",
	"Verizon":          "alter.net",
	"Zayo":             "zayo.com",
	"CenturyLink":      "centurylink.net",
	"Cox":              "cox.net",
	"Deutsche Telekom": "dtag.de",
	"HE":               "he.net",
	"Inteliquent":      "inteliquent.com",
	"NTT":              "ntt.net",
	"Sprint":           "sprintlink.net",
	"Tata":             "as6453.net",
	"TeliaSonera":      "telia.net",
	"TWC":              "twcable.com",
	"XO":               "xo.net",
	"SoftLayer":        "softlayer.com",
	"MFN":              "mfnx.net",
	"GTT":              "gtt.net",
	"Windstream":       "windstream.net",
}

// ISPForDomain resolves a hop name's domain back to a provider name,
// the way the paper's naming-hint analysis did.
func ISPForDomain(hopName string) (string, bool) {
	for isp, dom := range domainForISP {
		if strings.HasSuffix(hopName, dom) {
			return isp, true
		}
	}
	return "", false
}

// Namer translates between cities and router-name city codes.
type Namer struct {
	codes  []string       // per atlas city index
	byCode map[string]int // code -> city index
}

// NewNamer builds the code table for the atlas cities. Codes are the
// first four letters of the condensed city name plus the lowercase
// state; collisions get a numeric suffix (deterministically, by city
// index).
func NewNamer(a *atlas.Atlas) *Namer {
	n := &Namer{codes: make([]string, len(a.Cities)), byCode: make(map[string]int)}
	// Assign in a fixed order so collision suffixes are stable.
	idxs := make([]int, len(a.Cities))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(x, y int) bool { return idxs[x] < idxs[y] })
	for _, i := range idxs {
		base := baseCode(a.Cities[i].Name, a.Cities[i].State)
		code := base
		for suffix := 2; ; suffix++ {
			if _, taken := n.byCode[code]; !taken {
				break
			}
			code = fmt.Sprintf("%s%d", base, suffix)
		}
		n.codes[i] = code
		n.byCode[code] = i
	}
	return n
}

func baseCode(city, state string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(city) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
		if b.Len() == 4 {
			break
		}
	}
	return b.String() + strings.ToLower(state)
}

// Code returns the city code for an atlas city index.
func (n *Namer) Code(city int) string { return n.codes[city] }

// CityForCode decodes a city code.
func (n *Namer) CityForCode(code string) (int, bool) {
	i, ok := n.byCode[code]
	return i, ok
}

// HopName renders a full router interface name.
func (n *Namer) HopName(ifIndex, city int, isp string) string {
	dom, ok := domainForISP[isp]
	if !ok {
		dom = "unknown.net"
	}
	return fmt.Sprintf("ae-%d.%s.%s", ifIndex, n.codes[city], dom)
}

// DecodeHopName extracts the city and provider from a router name.
// It returns ok=false if either part cannot be resolved.
func (n *Namer) DecodeHopName(name string) (city int, isp string, ok bool) {
	parts := strings.SplitN(name, ".", 3)
	if len(parts) < 3 {
		return 0, "", false
	}
	city, cok := n.CityForCode(parts[1])
	isp, iok := ISPForDomain(name)
	return city, isp, cok && iok
}
