package traceroute

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/par"
)

// parse.go reads textual traceroute output back into Traces, so the
// overlay can be applied to externally collected data (the paper's
// Edgescope corpus was exactly that: millions of text traceroutes).
// The accepted grammar is the common Unix format:
//
//	traceroute to <dest> ...            (optional header)
//	 1  ae-3.dllstx.level3.net  1.234 ms
//	 2  * * *
//	 3  192.0.2.1  5.678 ms
//
// Hop lines start with an index; '*' hops are kept as unresolved.
// Multiple traceroutes may be concatenated; a new header or an index
// that resets to 1 starts a new trace.

// ParsedHop is one line of a parsed traceroute.
type ParsedHop struct {
	Index int
	Name  string // "" for '*' or bare-IP hops
	RTTms float64
}

// ParsedTrace is one parsed traceroute.
type ParsedTrace struct {
	Dest string // from the header, if present
	Hops []ParsedHop
}

// ParseText reads concatenated traceroute output.
func ParseText(r io.Reader) ([]ParsedTrace, error) {
	sc := bufio.NewScanner(r)
	var out []ParsedTrace
	var cur *ParsedTrace
	lineNo := 0
	flush := func() {
		if cur != nil && len(cur.Hops) > 0 {
			out = append(out, *cur)
		}
		cur = nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "traceroute to ") || strings.HasPrefix(line, "traceroute ") {
			flush()
			cur = &ParsedTrace{}
			fields := strings.Fields(line)
			for i, f := range fields {
				if f == "to" && i+1 < len(fields) {
					cur.Dest = strings.TrimSuffix(fields[i+1], ",")
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			// Not a hop line and not a header: tolerate prose lines
			// between traces, reject garbage inside one.
			if cur != nil && len(cur.Hops) > 0 {
				return nil, fmt.Errorf("traceroute: line %d: expected hop line, got %q", lineNo, line)
			}
			continue
		}
		if idx == 1 && cur != nil && len(cur.Hops) > 0 {
			flush()
		}
		if cur == nil {
			cur = &ParsedTrace{}
		}
		hop := ParsedHop{Index: idx}
		if len(fields) > 1 && fields[1] != "*" {
			hop.Name = fields[1]
			// Optional "<rtt> ms" pair(s); take the first.
			for i := 2; i+1 < len(fields)+1 && i < len(fields); i++ {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					hop.RTTms = v
					break
				}
			}
		}
		cur.Hops = append(cur.Hops, hop)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceroute: %w", err)
	}
	flush()
	return out, nil
}

// FormatText renders a Trace in the textual format ParseText accepts,
// closing the loop between synthesis and parsing.
func (c *Campaign) FormatText(t Trace) string {
	var b strings.Builder
	a := c.res.Atlas
	fmt.Fprintf(&b, "traceroute to %s from %s\n",
		a.Cities[t.DstCity].Key(), a.Cities[t.SrcCity].Key())
	for i, h := range t.Hops {
		if h.Name == "" {
			fmt.Fprintf(&b, "%2d  * * *\n", i+1)
			continue
		}
		fmt.Fprintf(&b, "%2d  %s  %.3f ms\n", i+1, h.Name, h.RTTms)
	}
	return b.String()
}

// OverlayParsed attributes externally parsed traces onto the
// campaign's published map, merging their counts into the campaign
// aggregates. Hops without resolvable names are skipped exactly as in
// the synthetic path. Direction is classified from the first and last
// resolvable hop cities. It returns the number of traces that
// contributed at least one attribution.
func (c *Campaign) OverlayParsed(traces []ParsedTrace) int {
	mg := c.res.Map.Graph()
	cityNode := make([]int, len(c.res.Atlas.Cities))
	for i := range cityNode {
		cityNode[i] = -1
	}
	for _, n := range c.res.Map.Nodes {
		if n.AtlasCity >= 0 {
			cityNode[n.AtlasCity] = int(n.ID)
		}
	}
	memo := par.NewMemo[pathKey, []fiber.ConduitID]()
	ws := graph.NewWorkspace() // serial overlay: one workspace for every query
	contributed := 0
	for _, pt := range traces {
		// Rebuild a Trace with ground-truth-free city hops.
		var hops []Hop
		firstCity, lastCity := -1, -1
		for _, ph := range pt.Hops {
			if ph.Name == "" {
				continue
			}
			city, _, ok := c.namer.DecodeHopName(ph.Name)
			if !ok {
				continue
			}
			hops = append(hops, Hop{Name: ph.Name, City: city, RTTms: ph.RTTms})
			if firstCity < 0 {
				firstCity = city
			}
			lastCity = city
		}
		if len(hops) < 2 || firstCity == lastCity {
			continue
		}
		tr := Trace{SrcCity: firstCity, DstCity: lastCity, Hops: hops}
		attrs, misses := c.attribute(ws, tr, mg, cityNode, memo)
		c.apply(tr.WestToEast(c), attrs, misses)
		if len(attrs) > 0 {
			contributed++
		}
	}
	return contributed
}
