package traceroute

import (
	"math/rand"
	"testing"

	"intertubes/internal/atlas"
	"intertubes/internal/mapbuilder"
)

var (
	cachedRes  *mapbuilder.Result
	cachedCamp *Campaign
)

func campaign(t *testing.T) (*mapbuilder.Result, *Campaign) {
	t.Helper()
	if cachedCamp == nil {
		cachedRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
		cachedCamp = Run(cachedRes, Options{N: 20000, Seed: 99})
	}
	return cachedRes, cachedCamp
}

func TestNamerRoundTrip(t *testing.T) {
	a := atlas.Load()
	n := NewNamer(a)
	for i := range a.Cities {
		code := n.Code(i)
		if code == "" {
			t.Fatalf("city %d has empty code", i)
		}
		got, ok := n.CityForCode(code)
		if !ok || got != i {
			t.Fatalf("code %q decodes to %d,%v want %d", code, got, ok, i)
		}
	}
}

func TestNamerCodesUnique(t *testing.T) {
	a := atlas.Load()
	n := NewNamer(a)
	seen := map[string]int{}
	for i := range a.Cities {
		if j, dup := seen[n.Code(i)]; dup {
			t.Errorf("cities %d and %d share code %q", i, j, n.Code(i))
		}
		seen[n.Code(i)] = i
	}
}

func TestHopNameDecode(t *testing.T) {
	a := atlas.Load()
	n := NewNamer(a)
	dal := a.MustCity("Dallas,TX")
	name := n.HopName(3, dal, "Sprint")
	city, isp, ok := n.DecodeHopName(name)
	if !ok || city != dal || isp != "Sprint" {
		t.Errorf("decode(%q) = %d,%q,%v", name, city, isp, ok)
	}
	if _, _, ok := n.DecodeHopName("garbage"); ok {
		t.Error("garbage should not decode")
	}
	if _, _, ok := n.DecodeHopName("ae-1.nowhere.level3.net"); ok {
		t.Error("unknown city code should not decode")
	}
}

func TestISPForDomain(t *testing.T) {
	if isp, ok := ISPForDomain("ae-1.dalltx.level3.net"); !ok || isp != "Level 3" {
		t.Errorf("got %q,%v", isp, ok)
	}
	if _, ok := ISPForDomain("ae-1.dalltx.example.org"); ok {
		t.Error("unknown domain resolved")
	}
}

func TestCampaignBasics(t *testing.T) {
	_, c := campaign(t)
	if c.Total < 10000 {
		t.Fatalf("total = %d; too many rejected traces", c.Total)
	}
	if len(c.ConduitProbes) < 100 {
		t.Errorf("only %d conduits carried probes", len(c.ConduitProbes))
	}
	if len(c.Samples) == 0 || len(c.Samples) > c.Opts.RetainTraces {
		t.Errorf("samples = %d", len(c.Samples))
	}
	for _, tr := range c.Samples {
		if len(tr.Hops) < 1 {
			t.Error("trace with no hops")
		}
		if tr.ISP == "" {
			t.Error("trace without ISP")
		}
		// RTT must be non-decreasing-ish along the path (jitter is
		// bounded by 0.4ms; distances dominate).
		for i := 1; i < len(tr.Hops); i++ {
			if tr.Hops[i].RTTms < tr.Hops[i-1].RTTms-0.5 {
				t.Errorf("RTT went sharply backwards: %v", tr.Hops)
			}
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	res, _ := campaign(t)
	a := Run(res, Options{N: 3000, Seed: 5})
	b := Run(res, Options{N: 3000, Seed: 5})
	if a.Total != b.Total || a.Unattributed != b.Unattributed {
		t.Fatalf("campaigns differ: %d/%d vs %d/%d", a.Total, a.Unattributed, b.Total, b.Unattributed)
	}
	for cid, da := range a.ConduitProbes {
		db := b.ConduitProbes[cid]
		if db == nil || *da != *db {
			t.Fatalf("conduit %d counts differ", cid)
		}
	}
}

func TestAttributionAccuracy(t *testing.T) {
	_, c := campaign(t)
	if acc := c.AttributionAccuracy(); acc < 0.85 {
		t.Errorf("attribution accuracy = %.3f; overlay is broken", acc)
	}
	if c.AttributionChecked == 0 {
		t.Error("nothing was checked")
	}
}

func TestTopConduitsTables2And3(t *testing.T) {
	_, c := campaign(t)
	for _, dir := range []bool{true, false} {
		top := c.TopConduits(20, dir)
		if len(top) != 20 {
			t.Fatalf("top conduits = %d", len(top))
		}
		for i := 1; i < len(top); i++ {
			if top[i].Probes > top[i-1].Probes {
				t.Error("not sorted by probes")
			}
		}
		for _, r := range top {
			if r.A == "" || r.B == "" || r.Probes == 0 {
				t.Errorf("bad row %+v", r)
			}
		}
	}
}

func TestTopISPsTable4(t *testing.T) {
	_, c := campaign(t)
	top := c.TopISPs(10)
	if len(top) != 10 {
		t.Fatalf("top ISPs = %d", len(top))
	}
	// The paper's Table 4: Level 3's infrastructure is the most widely
	// used, by a wide margin over most others.
	if top[0].ISP != "Level 3" && top[0].ISP != "EarthLink" {
		t.Errorf("top ISP = %s, want a near-national backbone", top[0].ISP)
	}
	// Unmapped providers (SoftLayer, MFN) must be discoverable in the
	// ranking universe, exactly as in the paper's Table 4.
	all := c.TopISPs(1000)
	seen := map[string]bool{}
	for _, r := range all {
		seen[r.ISP] = true
	}
	if !seen["SoftLayer"] || !seen["MFN"] {
		t.Error("traceroute-only providers missing from ISP ranking")
	}
}

func TestSharingWithTrafficFigure9(t *testing.T) {
	_, c := campaign(t)
	pub, over := c.SharingWithTraffic()
	if len(pub) != len(over) || len(pub) == 0 {
		t.Fatalf("lengths: %d vs %d", len(pub), len(over))
	}
	var sp, so int
	for i := range pub {
		if over[i] < pub[i] {
			t.Fatal("overlay can only add tenants")
		}
		sp += pub[i]
		so += over[i]
	}
	if so <= sp {
		t.Error("traceroute overlay should reveal additional ISPs (Figure 9 shift)")
	}
}

func TestWestToEastClassification(t *testing.T) {
	res, c := campaign(t)
	a := res.Atlas
	sf := a.MustCity("San Francisco,CA")
	ny := a.MustCity("New York,NY")
	tr := Trace{SrcCity: sf, DstCity: ny}
	if !tr.WestToEast(c) {
		t.Error("SF->NY is west to east")
	}
	tr = Trace{SrcCity: ny, DstCity: sf}
	if tr.WestToEast(c) {
		t.Error("NY->SF is east to west")
	}
}

func TestMPLSHidesInteriorHops(t *testing.T) {
	_, c := campaign(t)
	foundTunnel := false
	for _, tr := range c.Samples {
		if tr.PeerISP != "" {
			continue // two-provider traces tunnel per segment
		}
		if tr.MPLS && len(tr.Hops) == 2 {
			foundTunnel = true
		}
		if tr.MPLS && len(tr.Hops) > 2 {
			t.Errorf("MPLS trace shows %d hops", len(tr.Hops))
		}
	}
	if !foundTunnel {
		t.Log("no MPLS tunnel in retained samples (probabilistic; not a failure)")
	}
}

func TestPeeredTraces(t *testing.T) {
	_, c := campaign(t)
	peered := 0
	for _, tr := range c.Samples {
		if tr.PeerISP == "" {
			continue
		}
		peered++
		if tr.PeerISP == tr.ISP {
			t.Error("peer must differ from the primary provider")
		}
		// Hop names must mention both providers' domains (unless rDNS
		// noise hid every hop of a segment, which is very unlikely
		// across the sample set).
		domains := map[string]bool{}
		for _, h := range tr.Hops {
			if h.Name == "" {
				continue
			}
			if isp, ok := ISPForDomain(h.Name); ok {
				domains[isp] = true
			}
		}
		if len(domains) > 2 {
			t.Errorf("trace names %d providers", len(domains))
		}
	}
	if peered == 0 {
		t.Error("no peered traces in samples; PeerProb should produce ~30%")
	}
}

func TestGravityDraw(t *testing.T) {
	g := newGravity([]float64{1, 0, 100}, []int{0, 1, 2})
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[g.draw(rng)]++
	}
	if counts[2] < 9000 {
		t.Errorf("heavy city drawn %d/10000", counts[2])
	}
	if counts[1] > 100 {
		t.Errorf("zero-weight city drawn %d times", counts[1])
	}
	empty := newGravity(nil, nil)
	if empty.draw(rng) != -1 {
		t.Error("empty gravity should return -1")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 200000 || o.MPLSProb != 0.25 || o.GeoNoiseProb != 0.05 || o.RetainTraces != 64 {
		t.Errorf("defaults = %+v", o)
	}
}
