package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
)

// grid.go plans the exhaustive disaster grid: a lat/lon lattice of
// circular-disaster centers spanning the mapped fiber plant, crossed
// with a ladder of radii. Each planned cell is an ordinary regional
// scenario, so it canonicalizes through the existing content hash and
// the serving cache, singleflight, and baseline-version keys all apply
// unchanged. Planning is pure and deterministic: the same spec against
// the same map always yields the same cells in the same order, which
// is what lets the job store resume a half-finished sweep and still
// produce a byte-identical artifact.

// kmPerDegLat is the meridian arc length of one degree of latitude,
// matching the constant the geo package uses for its planar
// approximations.
const kmPerDegLat = 111.32

// DefaultMaxGridCells bounds a planned grid when the spec does not
// set its own cap. A grid sweep is admission-controlled work; an
// accidental cellKm=1 request must fail at planning time, not grind
// the job queue for a week.
const DefaultMaxGridCells = 20000

// GridSpec declares an exhaustive disaster-grid sweep: circular
// disasters of every radius in RadiiKm evaluated at every cell center
// of a CellKm-spaced lattice over the mapped conduits' bounding
// region.
type GridSpec struct {
	// CellKm is the lattice spacing between neighboring disaster
	// centers, in kilometers. Must be positive.
	CellKm float64 `json:"cellKm"`
	// RadiiKm is the disaster-radius ladder evaluated at every kept
	// center. Must be non-empty with positive entries; sorted and
	// de-duplicated by canonicalization.
	RadiiKm []float64 `json:"radiiKm"`
	// CullKm drops lattice centers farther than this from every
	// tenanted conduit — a disaster that cannot reach any fiber
	// perturbs nothing and is not worth an evaluation. Defaults to the
	// largest radius in the ladder.
	CullKm float64 `json:"cullKm,omitempty"`
	// MaxCells caps the planned cell count (centers × radii); planning
	// fails rather than exceeding it. Defaults to DefaultMaxGridCells.
	// It bounds admission only and never changes which cells a
	// successfully planned grid contains, so it stays out of the hash.
	MaxCells int `json:"maxCells,omitempty"`
}

// canonicalGrid sorts and de-duplicates the radius ladder and fills
// the CullKm default so logically equal specs hash equally.
func canonicalGrid(spec GridSpec) GridSpec {
	radii := append([]float64(nil), spec.RadiiKm...)
	sort.Float64s(radii)
	w := 0
	for i, r := range radii {
		if i == 0 || r != radii[w-1] {
			radii[w] = r
			w++
		}
	}
	spec.RadiiKm = radii[:w]
	if spec.CullKm == 0 && len(spec.RadiiKm) > 0 {
		spec.CullKm = spec.RadiiKm[len(spec.RadiiKm)-1]
	}
	return spec
}

// Validate checks the spec's fields without planning it.
func (spec GridSpec) Validate() error {
	if spec.CellKm <= 0 {
		return fmt.Errorf("grid: cellKm must be positive (got %g)", spec.CellKm)
	}
	if len(spec.RadiiKm) == 0 {
		return fmt.Errorf("grid: at least one radius required")
	}
	for _, r := range spec.RadiiKm {
		if r <= 0 {
			return fmt.Errorf("grid: radius must be positive (got %g)", r)
		}
	}
	if spec.CullKm < 0 {
		return fmt.Errorf("grid: cullKm must be non-negative (got %g)", spec.CullKm)
	}
	if spec.MaxCells < 0 {
		return fmt.Errorf("grid: maxCells must be non-negative (got %d)", spec.MaxCells)
	}
	return nil
}

// Hash returns the stable content hash of the spec's canonical form.
// Only fields that influence the planned cells enter: MaxCells is an
// admission bound, not part of the identity.
func (spec GridSpec) Hash() string {
	c := canonicalGrid(spec)
	s := fmt.Sprintf("grid1|cell=%g|cull=%g|radii=", c.CellKm, c.CullKm)
	for i, r := range c.RadiiKm {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%g", r)
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:16])
}

// GridCell is one planned evaluation: a circular disaster of RadiusKm
// centered on the lattice point (Row, Col). Index is the cell's slot
// in the plan's deterministic order — rows south to north, columns
// west to east, radii ascending within a center.
type GridCell struct {
	Index    int     `json:"index"`
	Row      int     `json:"row"`
	Col      int     `json:"col"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radiusKm"`
}

// Scenario returns the cell's regional-disaster scenario. The name
// labels listings only; it never enters the content hash, so a grid
// cell and an interactively posted disaster at the same coordinates
// share one cache entry.
func (c GridCell) Scenario() Scenario {
	return Scenario{
		Name:    fmt.Sprintf("grid[%d,%d] r=%gkm", c.Row, c.Col, c.RadiusKm),
		Regions: []Region{{Lat: c.Lat, Lon: c.Lon, RadiusKm: c.RadiusKm}},
	}
}

// GridPlan is a materialized GridSpec against one baseline map: the
// lattice geometry and every surviving cell in evaluation order.
type GridPlan struct {
	Spec GridSpec `json:"spec"` // canonical form
	Hash string   `json:"hash"` // Spec.Hash()

	// Lattice geometry: Rows × Cols centers starting at (OriginLat,
	// OriginLon) stepping (LatStep, LonStep) degrees. Cells record
	// their own centers; the geometry exists for raster rendering.
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	OriginLat float64 `json:"originLat"`
	OriginLon float64 `json:"originLon"`
	LatStep   float64 `json:"latStep"`
	LonStep   float64 `json:"lonStep"`

	Cells []GridCell `json:"cells"`
}

// Total returns the number of planned cells.
func (p *GridPlan) Total() int { return len(p.Cells) }

// PlanGrid lays the spec's lattice over the bounding region of the
// map's tenanted conduits, culls centers that no disaster in the
// ladder could ever reach fiber from, and expands the survivors into
// cells. The result is deterministic in (map, spec).
func PlanGrid(m *fiber.Map, spec GridSpec) (*GridPlan, error) {
	spec = canonicalGrid(spec)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	maxCells := spec.MaxCells
	if maxCells == 0 {
		maxCells = DefaultMaxGridCells
	}

	// Bounding region and cull index over the lit plant only: dark
	// conduits cannot be cut, so they neither extend the lattice nor
	// keep a center alive.
	bounds := geo.EmptyBounds()
	idx := geo.NewGridIndex(math.Max(spec.CellKm, 50))
	lit := 0
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		lit++
		idx.InsertPolyline(int(c.ID), c.Path)
		for _, p := range c.Path {
			bounds = bounds.Add(p)
		}
	}
	if lit == 0 || bounds.Empty() {
		return nil, fmt.Errorf("grid: map has no tenanted conduits to sweep")
	}

	latStep := spec.CellKm / kmPerDegLat
	midLat := (bounds.MinLat + bounds.MaxLat) / 2
	cosMid := math.Cos(midLat * math.Pi / 180)
	if cosMid < 0.1 {
		cosMid = 0.1
	}
	lonStep := spec.CellKm / (kmPerDegLat * cosMid)

	rows := int(math.Ceil((bounds.MaxLat-bounds.MinLat)/latStep)) + 1
	cols := int(math.Ceil((bounds.MaxLon-bounds.MinLon)/lonStep)) + 1

	plan := &GridPlan{
		Spec:      spec,
		Hash:      spec.Hash(),
		Rows:      rows,
		Cols:      cols,
		OriginLat: bounds.MinLat,
		OriginLon: bounds.MinLon,
		LatStep:   latStep,
		LonStep:   lonStep,
	}

	// Row-major from the southwest corner, radii ascending within a
	// center: the deterministic evaluation order everything downstream
	// (checkpoints, heatmaps, SSE chunks) is keyed to.
	for r := 0; r < rows; r++ {
		lat := round6(bounds.MinLat + float64(r)*latStep)
		for c := 0; c < cols; c++ {
			lon := round6(bounds.MinLon + float64(c)*lonStep)
			if !idx.AnyWithinKm(geo.Point{Lat: lat, Lon: lon}, spec.CullKm) {
				continue
			}
			for _, radius := range spec.RadiiKm {
				plan.Cells = append(plan.Cells, GridCell{
					Index:    len(plan.Cells),
					Row:      r,
					Col:      c,
					Lat:      lat,
					Lon:      lon,
					RadiusKm: radius,
				})
				if len(plan.Cells) > maxCells {
					return nil, fmt.Errorf("grid: plan exceeds %d cells (use a coarser cellKm or raise maxCells)", maxCells)
				}
			}
		}
	}
	if len(plan.Cells) == 0 {
		return nil, fmt.Errorf("grid: every lattice center was culled (cullKm %g too small for cellKm %g)", spec.CullKm, spec.CellKm)
	}
	return plan, nil
}

// round6 rounds to 1e-6 degrees (about 11 cm) so cell centers — and
// therefore the scenario hashes derived from them — serialize without
// float noise.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// PlanGrid plans the spec against the engine's current baseline map
// and reports which baseline version the plan is valid for. A job that
// records the version can detect a baseline swap and re-plan instead
// of mixing cells from two maps.
func (e *Engine) PlanGrid(spec GridSpec) (*GridPlan, uint64, error) {
	snap := e.snapshot()
	plan, err := PlanGrid(snap.res.Map, spec)
	if err != nil {
		return nil, 0, err
	}
	return plan, snap.version, nil
}
