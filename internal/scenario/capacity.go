package scenario

import (
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
)

// capacity.go is the traffic half of the IP-over-optical capacity
// layer: a gravity-model demand matrix over the map's city
// populations (the same weighting the traceroute campaign draws its
// endpoint mix from), evaluated against per-conduit capacities
// (fiber/capacity.go) with the Dinic kernel. The baseline — demand
// pairs, capacity table, per-pair max flows, and the lit-capacity
// component of every node — is memoized once per snapshot; each
// evaluation then reports how many Gbps of baseline-served demand the
// perturbation strands.
//
// Both evaluation paths produce bit-identical LostTraffic values. The
// clone path recomputes every pair's flow on the materialized map's
// own graph; the overlay path runs on the shared snapshot graph with
// the overlay's capacity table and virtual conduits as extra edges,
// and reuses the memoized baseline flow for any pair whose source and
// sink components the perturbation never reaches. Reuse is sound
// because an excluded (zero-capacity) edge is never staged into the
// flow network at all: two graphs that agree on the subgraph
// reachable from the source produce identical augmenting-path
// sequences, hence identical float64 flow sums.

// demandPairs is how many top gravity pairs form the demand matrix.
// Small enough that a capacity stage costs a bounded number of flow
// queries per evaluation, large enough to cover the major corridors.
const demandPairs = 32

// demandFraction scales total offered demand relative to total
// baseline network capacity. Offered demand deliberately exceeds most
// single-pair path capacities so a capacity-reducing cut shows up as
// lost Gbps rather than disappearing into slack.
const demandFraction = 0.5

// LostTraffic quantifies the demand the perturbation strands: the
// gravity demand matrix evaluated before and after, in Gbps. LostGbps
// is ServedBeforeGbps - ServedAfterGbps; an addition-only scenario
// can make it negative (the network serves more than the baseline).
type LostTraffic struct {
	// Demands is the number of gravity pairs evaluated.
	Demands int `json:"demands"`
	// OfferedGbps is the total demand offered across all pairs.
	OfferedGbps float64 `json:"offeredGbps"`
	// ServedBeforeGbps / ServedAfterGbps are the demand actually
	// carried (min of offered and max-flow, summed over pairs).
	ServedBeforeGbps float64 `json:"servedBeforeGbps"`
	ServedAfterGbps  float64 `json:"servedAfterGbps"`
	// LostGbps is the headline delta: baseline-served Gbps the
	// perturbed network no longer carries.
	LostGbps float64 `json:"lostGbps"`
}

// trafficDemand is one gravity pair: endpoints and offered Gbps.
type trafficDemand struct {
	s, t fiber.NodeID
	gbps float64
}

// capacityBaseline is the snapshot's memoized capacity state.
type capacityBaseline struct {
	demands []trafficDemand
	offered float64
	// caps[cid] is the baseline capacity of base conduit cid.
	caps []float64
	// comp[node] identifies the node's component in the baseline
	// lit-capacity graph (conduits with positive capacity).
	comp []int32
	// served[i] is demand i's baseline carried Gbps; servedTotal their
	// sum, accumulated in demand order.
	served      []float64
	servedTotal float64
}

// capacityTable fills dst with per-conduit capacities under v's
// effective tenancy, growing it as needed.
func capacityTable(v fiber.View, dst []float64) []float64 {
	nc := v.NumConduits()
	if cap(dst) < nc {
		dst = make([]float64, nc)
	}
	dst = dst[:nc]
	for cid := 0; cid < nc; cid++ {
		dst[cid] = fiber.ConduitCapacityGbps(v, fiber.ConduitID(cid))
	}
	return dst
}

// capacity memoizes the snapshot's capacity baseline: gravity
// demands, the capacity table, lit-capacity components, and per-pair
// baseline flows.
func (s *snapshot) capacity() *capacityBaseline {
	s.capOnce.Do(func() {
		s.baseline() // the conduit graph s.g rides with the baseline
		m := s.res.Map
		cb := &s.capBase
		cb.caps = capacityTable(m, nil)

		// Union-find components over positive-capacity conduits.
		parent := make([]int32, m.NumNodes())
		for i := range parent {
			parent[i] = int32(i)
		}
		var find func(int32) int32
		find = func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for cid, c := range cb.caps {
			if c <= 0 {
				continue
			}
			a, b := m.ConduitEnds(fiber.ConduitID(cid))
			ra, rb := find(int32(a)), find(int32(b))
			if ra != rb {
				parent[ra] = rb
			}
		}
		cb.comp = make([]int32, len(parent))
		for i := range parent {
			cb.comp[i] = find(int32(i))
		}

		cb.demands = buildDemands(m, cb.caps)
		for _, d := range cb.demands {
			cb.offered += d.gbps
		}

		ws := graph.NewWorkspace()
		cb.served = make([]float64, len(cb.demands))
		for i, d := range cb.demands {
			mf := s.g.MaxFlowWS(ws, int(d.s), int(d.t), cb.caps, nil)
			if mf > d.gbps {
				mf = d.gbps
			}
			cb.served[i] = mf
			cb.servedTotal += mf
		}
	})
	return &s.capBase
}

// buildDemands selects the top gravity pairs by population product
// (ties broken by node ids, so the matrix is deterministic) and
// scales them so total offered demand is demandFraction of total
// baseline capacity.
func buildDemands(m *fiber.Map, caps []float64) []trafficDemand {
	type cand struct {
		s, t fiber.NodeID
		w    float64
	}
	var cands []cand
	for i := range m.Nodes {
		pi := float64(m.Nodes[i].Population)
		if pi <= 0 {
			continue
		}
		for j := i + 1; j < len(m.Nodes); j++ {
			pj := float64(m.Nodes[j].Population)
			if pj <= 0 {
				continue
			}
			cands = append(cands, cand{s: fiber.NodeID(i), t: fiber.NodeID(j), w: pi * pj})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		if cands[i].s != cands[j].s {
			return cands[i].s < cands[j].s
		}
		return cands[i].t < cands[j].t
	})
	if len(cands) > demandPairs {
		cands = cands[:demandPairs]
	}

	var totalCap, totalW float64
	for _, c := range caps {
		totalCap += c
	}
	for _, c := range cands {
		totalW += c.w
	}
	out := make([]trafficDemand, 0, len(cands))
	for _, c := range cands {
		gbps := 0.0
		if totalW > 0 {
			gbps = demandFraction * totalCap * (c.w / totalW)
		}
		out = append(out, trafficDemand{s: c.s, t: c.t, gbps: gbps})
	}
	return out
}

// lostTrafficOn evaluates the demand matrix on a perturbed topology:
// g must use the view's base conduit ids as edge ids, caps[eid] their
// perturbed capacities, and extra any overlay-only conduits carrying
// capacity as Weight. reusable (nil means never) reports whether a
// demand index may take its memoized baseline flow instead of a fresh
// query — callers guarantee that is exact, not approximate. Returns
// the delta plus recomputed/reused counts for span attribution.
func lostTrafficOn(cb *capacityBaseline, g *graph.Graph, ws *graph.Workspace, caps []float64, extra []graph.Edge, reusable func(i int) bool) (*LostTraffic, int, int) {
	lt := &LostTraffic{
		Demands:          len(cb.demands),
		OfferedGbps:      cb.offered,
		ServedBeforeGbps: cb.servedTotal,
	}
	recomputed, reused := 0, 0
	for i, d := range cb.demands {
		var served float64
		if reusable != nil && reusable(i) {
			served = cb.served[i]
			reused++
		} else {
			served = g.MaxFlowWS(ws, int(d.s), int(d.t), caps, extra)
			if served > d.gbps {
				served = d.gbps
			}
			recomputed++
		}
		lt.ServedAfterGbps += served
	}
	lt.LostGbps = lt.ServedBeforeGbps - lt.ServedAfterGbps
	return lt, recomputed, reused
}

// lostTrafficClone is the clone path's capacity stage: recompute
// every pair on the perturbed map's own graph. pm's conduit ids
// coincide with the view the overlay path reads, so the staged flow
// networks — and therefore the float sums — are identical.
func lostTrafficClone(snap *snapshot, pm *fiber.Map) *LostTraffic {
	cb := snap.capacity()
	caps := capacityTable(pm, nil)
	lt, _, _ := lostTrafficOn(cb, pm.Graph(), graph.NewWorkspace(), caps, nil, nil)
	return lt
}

// capacityTouched marks the baseline lit-capacity components the
// perturbation reaches: endpoints of cut conduits, of every conduit a
// removed provider occupied (its capacity drops), and of additions
// (which may gain capacity or bridge components). A demand pair whose
// source and sink components are both unmarked sees a byte-identical
// reachable subgraph, so its baseline flow is exact.
func capacityTouched(m *fiber.Map, cb *capacityBaseline, cuts []fiber.ConduitID, pert fiber.Perturbation) map[int32]bool {
	touched := make(map[int32]bool)
	mark := func(n fiber.NodeID) { touched[cb.comp[n]] = true }
	markConduit := func(cid fiber.ConduitID) {
		a, b := m.ConduitEnds(cid)
		mark(a)
		mark(b)
	}
	for _, cid := range cuts {
		markConduit(cid)
	}
	for _, isp := range pert.RemoveISPs {
		for _, cid := range m.ConduitsOf(isp) {
			markConduit(cid)
		}
	}
	for _, ad := range pert.Additions {
		mark(ad.A)
		mark(ad.B)
	}
	return touched
}
