package scenario

import (
	"context"
	"testing"

	"intertubes/internal/obs"
)

// trace_test.go pins the flight-recorder integration: a recorded
// evaluation's span tree carries the overlay path's attribution
// (per-stage reused/recomputed outcome, touched-ISP counts, min-cut
// path split, scenario hash, baseline version) and the cache stamps
// its outcome on the caller's span.

func freshTraces(t *testing.T) *obs.TraceStore {
	t.Helper()
	st := obs.NewTraceStore(8, 8)
	old := obs.DefaultTraces
	obs.DefaultTraces = st
	t.Cleanup(func() { obs.DefaultTraces = old })
	return st
}

func attrMap(s obs.SpanRecord) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for _, a := range s.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

func TestRecordedEvaluationAttribution(t *testing.T) {
	st := freshTraces(t)
	eng := newEngine(t, 0)
	ctx, root := obs.StartTrace(context.Background(), "test.eval")
	if _, err := eng.Evaluate(ctx, Scenario{CutMostShared: 5}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tr, ok := st.Get(root.TraceID())
	if !ok {
		t.Fatal("evaluation trace not retained")
	}
	byName := map[string]obs.SpanRecord{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}

	eval, ok := byName["scenario.evaluate"]
	if !ok {
		t.Fatalf("no scenario.evaluate span; got %v", names(tr.Spans))
	}
	ea := attrMap(eval)
	if ea["path"] != "overlay" {
		t.Errorf("path attr = %q, want overlay", ea["path"])
	}
	if ea["scenario_hash"] == "" {
		t.Error("scenario_hash attr missing")
	}
	if ea["baseline_version"] == "" {
		t.Error("baseline_version attr missing")
	}

	for _, stageName := range []string{
		"scenario.stage.apply", "scenario.stage.matrix",
		"scenario.stage.disconnection", "scenario.stage.partition",
	} {
		s, ok := byName[stageName]
		if !ok {
			t.Errorf("missing stage span %s", stageName)
			continue
		}
		if s.ParentID != eval.SpanID {
			t.Errorf("%s parent = %d, want evaluate %d", stageName, s.ParentID, eval.SpanID)
		}
	}

	// A most-shared cut touches providers: both reuse stages must
	// report a recomputed outcome with touched counts and the partition
	// stage must attribute its min-cut path split.
	for _, stageName := range []string{"scenario.stage.disconnection", "scenario.stage.partition"} {
		a := attrMap(byName[stageName])
		if a["outcome"] != "recomputed" {
			t.Errorf("%s outcome = %q, want recomputed", stageName, a["outcome"])
		}
		if a["touched"] == "" || a["touched"] == "0" {
			t.Errorf("%s touched = %q, want > 0", stageName, a["touched"])
		}
		if a["reused"] == "" {
			t.Errorf("%s reused attr missing", stageName)
		}
	}
	pa := attrMap(byName["scenario.stage.partition"])
	if pa["mincut_fastpath"] == "" || pa["mincut_stoerwagner"] == "" {
		t.Errorf("partition stage missing min-cut split: %v", pa)
	}
}

func TestRecordedEvaluationReusedOutcome(t *testing.T) {
	st := freshTraces(t)
	eng := newEngine(t, 0)
	// Removing no ISPs and cutting nothing touches no provider: every
	// stage serves baseline rows and reports a reused outcome.
	ctx, root := obs.StartTrace(context.Background(), "test.noop")
	if _, err := eng.Evaluate(ctx, Scenario{}); err != nil {
		t.Fatal(err)
	}
	root.End()
	tr, _ := st.Get(root.TraceID())
	for _, s := range tr.Spans {
		if s.Name != "scenario.stage.disconnection" && s.Name != "scenario.stage.partition" {
			continue
		}
		a := attrMap(s)
		if a["outcome"] != "reused" {
			t.Errorf("%s outcome = %q, want reused for a no-op scenario", s.Name, a["outcome"])
		}
		if a["touched"] != "0" {
			t.Errorf("%s touched = %q, want 0", s.Name, a["touched"])
		}
	}
}

func TestCacheOutcomeAttrs(t *testing.T) {
	st := freshTraces(t)
	eng := newEngine(t, 0)
	c := NewCache(eng, 8)
	sc := Scenario{CutMostShared: 3}

	evalOnce := func(name string) map[string]string {
		ctx, root := obs.StartTrace(context.Background(), name)
		if _, err := c.Eval(ctx, sc); err != nil {
			t.Fatal(err)
		}
		root.End()
		tr, ok := st.Get(root.TraceID())
		if !ok {
			t.Fatalf("%s: trace not retained", name)
		}
		for _, s := range tr.Spans {
			if s.Name == name {
				return attrMap(s)
			}
		}
		t.Fatalf("%s: root span not found", name)
		return nil
	}

	if a := evalOnce("req.miss"); a["cache"] != "miss" {
		t.Errorf("first eval cache attr = %q, want miss", a["cache"])
	}
	if a := evalOnce("req.hit"); a["cache"] != "hit" {
		t.Errorf("second eval cache attr = %q, want hit", a["cache"])
	}
}

func TestSweepProgressGauge(t *testing.T) {
	eng := newEngine(t, 2)
	scs := sweepGrid()
	out := Sweep(context.Background(), eng, scs, 2)
	if len(out) != len(scs) {
		t.Fatalf("outcomes = %d, want %d", len(out), len(scs))
	}
	if v := sweepProgress.Value(); v != 1 {
		t.Errorf("scenario_sweep_progress = %g after a finished sweep, want 1", v)
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
