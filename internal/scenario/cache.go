package scenario

import (
	"container/list"
	"context"
	"sync"

	"intertubes/internal/obs"
)

// cache.go is the serving layer around the engine: a bounded LRU
// keyed by scenario content hash, with singleflight deduplication so
// that N concurrent identical queries cost exactly one evaluation.
// Every counter is an obs metric, so /metrics exposes hit rate,
// evictions, and coalesced queries.

var (
	cacheHits = obs.GetCounter("scenario_cache_hits_total",
		"Scenario queries answered from the result cache.")
	cacheMisses = obs.GetCounter("scenario_cache_misses_total",
		"Scenario queries that required an evaluation.")
	cacheEvictions = obs.GetCounter("scenario_cache_evictions_total",
		"Cached scenario results evicted by the LRU bound.")
	cacheCoalesced = obs.GetCounter("scenario_singleflight_coalesced_total",
		"Scenario queries that joined an in-flight identical evaluation.")
	cacheSize = obs.GetGauge("scenario_cache_entries",
		"Scenario results currently cached.")
)

// DefaultCacheCapacity bounds the cache when the caller passes a
// non-positive capacity.
const DefaultCacheCapacity = 128

// Cache is a bounded, concurrency-safe scenario query service. Cached
// *Results are shared across callers and must be treated as
// immutable.
type Cache struct {
	eng *Engine
	cap int

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *entry
	byHash   map[string]*list.Element
	inflight map[string]*flight
}

type entry struct {
	hash string
	res  *Result
}

// flight is one in-progress evaluation; followers block on done.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewCache wraps an engine in a query cache holding at most capacity
// results (DefaultCacheCapacity if capacity <= 0).
func NewCache(eng *Engine, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		eng:      eng,
		cap:      capacity,
		ll:       list.New(),
		byHash:   make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Engine returns the wrapped engine.
func (c *Cache) Engine() *Engine { return c.eng }

// Eval resolves the scenario and returns its Result, from cache when
// the hash is known, joining an identical in-flight evaluation when
// one exists, and evaluating otherwise. Evaluation errors are
// propagated to every waiter and never cached.
func (c *Cache) Eval(ctx context.Context, sc Scenario) (*Result, error) {
	sc, err := Resolve(sc)
	if err != nil {
		return nil, err
	}
	hash := sc.Hash()

	c.mu.Lock()
	if el, ok := c.byHash[hash]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		cacheHits.Inc()
		return el.Value.(*entry).res, nil
	}
	if fl, ok := c.inflight[hash]; ok {
		c.mu.Unlock()
		cacheCoalesced.Inc()
		select {
		case <-fl.done:
			return fl.res, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[hash] = fl
	c.mu.Unlock()

	cacheMisses.Inc()
	fl.res, fl.err = c.eng.Evaluate(ctx, sc)

	c.mu.Lock()
	delete(c.inflight, hash)
	if fl.err == nil {
		c.insert(hash, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// insert adds a result and evicts from the LRU tail past capacity.
// Caller holds c.mu.
func (c *Cache) insert(hash string, res *Result) {
	if el, ok := c.byHash[hash]; ok { // lost a benign race: refresh
		c.ll.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.byHash[hash] = c.ll.PushFront(&entry{hash: hash, res: res})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byHash, tail.Value.(*entry).hash)
		cacheEvictions.Inc()
	}
	cacheSize.Set(float64(c.ll.Len()))
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Summary is one row of the cache listing.
type Summary struct {
	Hash string `json:"hash"`
	Name string `json:"name,omitempty"`
	// Perturbation headline.
	ConduitsCut   int      `json:"conduitsCut"`
	ISPsRemoved   []string `json:"ispsRemoved,omitempty"`
	ConduitsAdded int      `json:"conduitsAdded"`
	// MeanDisconnection is the after-column average of the
	// disconnection table.
	MeanDisconnection float64 `json:"meanDisconnection"`
}

// Entries lists the cached results, most recently used first.
func (c *Cache) Entries() []Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Summary, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Summary{
			Hash:              e.hash,
			Name:              e.res.Scenario.Name,
			ConduitsCut:       e.res.ConduitsCut,
			ISPsRemoved:       e.res.ISPsRemoved,
			ConduitsAdded:     e.res.ConduitsAdded,
			MeanDisconnection: e.res.MeanDisconnectionAfter(),
		})
	}
	return out
}
