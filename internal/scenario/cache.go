package scenario

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"intertubes/internal/obs"
)

// cache.go is the serving layer around the engine: a bounded LRU
// keyed by (baseline snapshot version, scenario content hash), with
// singleflight deduplication so that N concurrent identical queries
// cost exactly one evaluation. Folding the version into the key means
// a SwapBaseline can never serve results computed against the old
// baseline: stale entries become unreachable and age out of the LRU.
// Every counter is an obs metric, so /metrics exposes hit rate,
// evictions, and coalesced queries.

var (
	cacheHits = obs.GetCounter("scenario_cache_hits_total",
		"Scenario queries answered from the result cache.")
	cacheMisses = obs.GetCounter("scenario_cache_misses_total",
		"Scenario queries that required an evaluation.")
	cacheEvictions = obs.GetCounter("scenario_cache_evictions_total",
		"Cached scenario results evicted by the LRU bound.")
	cacheCoalesced = obs.GetCounter("scenario_singleflight_coalesced_total",
		"Scenario queries that joined an in-flight identical evaluation.")
	cacheSize = obs.GetGauge("scenario_cache_entries",
		"Scenario results currently cached.")
)

// DefaultCacheCapacity bounds the cache when the caller passes a
// non-positive capacity.
const DefaultCacheCapacity = 128

// Cache is a bounded, concurrency-safe scenario query service. Cached
// *Results are shared across callers and must be treated as
// immutable.
type Cache struct {
	eng *Engine
	cap int

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *entry
	byKey    map[string]*list.Element
	inflight map[string]*flight
}

type entry struct {
	key string // version-prefixed cache key, not the bare scenario hash
	res *Result
}

// cacheKey scopes a scenario hash to one baseline snapshot version.
func cacheKey(version uint64, hash string) string {
	return strconv.FormatUint(version, 10) + "|" + hash
}

// flight is one in-progress evaluation. It runs on its own goroutine
// under a context detached from whichever caller happened to arrive
// first, so one caller hanging up can never poison the result the
// others receive. waiters counts the callers still interested; when
// the last one abandons the flight, cancel stops the evaluation at
// its next cancellation checkpoint.
type flight struct {
	done    chan struct{}
	res     *Result
	err     error
	panicV  any // captured evaluation panic, re-raised in each waiter
	cancel  context.CancelFunc
	waiters int // guarded by Cache.mu
}

// NewCache wraps an engine in a query cache holding at most capacity
// results (DefaultCacheCapacity if capacity <= 0).
func NewCache(eng *Engine, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		eng:      eng,
		cap:      capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Engine returns the wrapped engine.
func (c *Cache) Engine() *Engine { return c.eng }

// Eval resolves the scenario and returns its Result, from cache when
// the hash is known, joining an identical in-flight evaluation when
// one exists, and evaluating otherwise. Evaluation errors are
// propagated to every waiter and never cached.
//
// The evaluation itself runs under a context derived from the FIRST
// caller's values but not its cancellation: a leader that hangs up
// merely drops its claim on the flight, and followers still receive
// the real Result. Only when every waiter is gone is the evaluation
// canceled — and the flight is unregistered at that moment, so a
// caller arriving later starts fresh instead of inheriting a doomed
// flight.
func (c *Cache) Eval(ctx context.Context, sc Scenario) (*Result, error) {
	sc, err := Resolve(sc)
	if err != nil {
		return nil, err
	}
	// Pin the snapshot now: the key's version and the evaluation the
	// flight runs must refer to the same baseline even if SwapBaseline
	// lands mid-query.
	snap := c.eng.snapshot()
	key := cacheKey(snap.version, sc.Hash())

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		cacheHits.Inc()
		obs.SpanFromContext(ctx).SetAttr("cache", "hit")
		return el.Value.(*entry).res, nil
	}
	if fl, ok := c.inflight[key]; ok {
		fl.waiters++
		c.mu.Unlock()
		cacheCoalesced.Inc()
		obs.SpanFromContext(ctx).SetAttr("cache", "coalesced")
		return c.wait(ctx, key, fl)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	fl := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.inflight[key] = fl
	c.mu.Unlock()

	cacheMisses.Inc()
	// The flight context keeps ctx's values (WithoutCancel), so the
	// engine's spans join the leader caller's recorded trace; only the
	// leader's trace carries the evaluation tree, which is truthful —
	// coalesced followers did not run it.
	obs.SpanFromContext(ctx).SetAttr("cache", "miss")
	go c.run(fctx, key, fl, snap, sc)
	return c.wait(ctx, key, fl)
}

// run executes one flight and publishes its outcome. A panicking
// evaluation is captured here — the flight goroutine must not crash
// the process — and re-raised in every waiter by wait.
func (c *Cache) run(fctx context.Context, key string, fl *flight, snap *snapshot, sc Scenario) {
	defer func() {
		fl.panicV = recover()
		fl.cancel()
		c.mu.Lock()
		// Pointer compare: an abandoned flight may already have been
		// replaced by a newer one for the same key.
		if c.inflight[key] == fl {
			delete(c.inflight, key)
		}
		if fl.panicV == nil && fl.err == nil {
			// Cache even if every waiter gave up first but the
			// evaluation won the race and completed: the work is done
			// and the next query should be a hit.
			c.insert(key, fl.res)
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.res, fl.err = c.eng.evaluateOn(fctx, snap, sc)
}

// wait blocks one caller on a flight it holds a claim on. If the
// caller's context ends first, the claim is dropped; dropping the last
// claim cancels the evaluation and unregisters the flight. A panic
// captured by run is re-raised here, in the waiter's own goroutine, so
// the server's panic containment sees it exactly as if the evaluation
// had run inline.
func (c *Cache) wait(ctx context.Context, key string, fl *flight) (*Result, error) {
	select {
	case <-fl.done:
		if fl.panicV != nil {
			panic(fl.panicV)
		}
		return fl.res, fl.err
	case <-ctx.Done():
		c.mu.Lock()
		fl.waiters--
		if fl.waiters == 0 {
			fl.cancel()
			if c.inflight[key] == fl {
				delete(c.inflight, key)
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// insert adds a result and evicts from the LRU tail past capacity.
// Caller holds c.mu.
func (c *Cache) insert(key string, res *Result) {
	if el, ok := c.byKey[key]; ok { // lost a benign race: refresh
		c.ll.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		cacheEvictions.Inc()
	}
	cacheSize.Set(float64(c.ll.Len()))
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Summary is one row of the cache listing.
type Summary struct {
	Hash string `json:"hash"`
	Name string `json:"name,omitempty"`
	// Perturbation headline.
	ConduitsCut   int      `json:"conduitsCut"`
	ISPsRemoved   []string `json:"ispsRemoved,omitempty"`
	ConduitsAdded int      `json:"conduitsAdded"`
	// MeanDisconnection is the after-column average of the
	// disconnection table.
	MeanDisconnection float64 `json:"meanDisconnection"`
}

// Entries lists the cached results, most recently used first.
func (c *Cache) Entries() []Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Summary, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Summary{
			Hash:              e.res.Hash,
			Name:              e.res.Scenario.Name,
			ConduitsCut:       e.res.ConduitsCut,
			ISPsRemoved:       e.res.ISPsRemoved,
			ConduitsAdded:     e.res.ConduitsAdded,
			MeanDisconnection: e.res.MeanDisconnectionAfter(),
		})
	}
	return out
}
