package scenario

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/obs"
	"intertubes/internal/resilience"
	"intertubes/internal/risk"
)

// overlay_eval.go is the copy-on-write evaluation path. Instead of
// deep-cloning the map per scenario, it records the perturbation as a
// fiber.Overlay over the shared snapshot and recomputes only what the
// delta touches:
//
//   - stats, sharing, and ranking read straight through the overlay
//     views (no map copy);
//   - disconnection and partition cost are recomputed only for the
//     providers the delta can affect — a provider is "touched" when a
//     cut conduit carries its (surviving) tenancy or an addition
//     lights it; every other provider reuses its baseline row, which
//     is exactly what the clone path would recompute for it;
//   - touched partition costs run through the sparse Stoer-Wagner
//     kernel with the snapshot's per-provider unit weight table,
//     masked in place in a pooled scratch buffer (additions lower
//     masks to 1, cuts raise them to +Inf, overlay-new conduits ride
//     as extra edges);
//   - the heavyweight optional stages (latency, traffic) materialize
//     a concrete map only when the scenario requests them.
//
// The output contract is strict: bit-identical Results to the clone
// path (Options.CloneEval), enforced by the differential suite in
// overlay_equiv_test.go.

// touchedCut/touchedAdd classify why a provider needs recomputation.
const (
	touchedCut = 1 << iota
	touchedAdd
)

// evalScratch is the reusable per-evaluation workspace: the graph
// kernel scratch, the union-find scratch, and the masked weight /
// vertex / extra-edge buffers. Pooled so concurrent sweeps reuse a
// few of them instead of reallocating per scenario.
type evalScratch struct {
	ws    *graph.Workspace
	imp   resilience.ImpactScratch
	w     []float64
	verts []int
	extra []graph.Edge
	// capW is the capacity stage's per-conduit capacity table
	// (base conduits first, overlay virtuals after).
	capW []float64
}

var scratchPool = sync.Pool{
	New: func() any { return &evalScratch{ws: graph.NewWorkspace()} },
}

func getScratch(nEdges int) *evalScratch {
	s := scratchPool.Get().(*evalScratch)
	if len(s.w) < nEdges {
		s.w = make([]float64, nEdges)
	}
	return s
}

func putScratch(s *evalScratch) { scratchPool.Put(s) }

// maskWeights fills dst with the provider's unit weight row under the
// perturbation: merged-addition tenancy gains first, then cuts to
// +Inf — the same order the mutation path applies them, so a cut
// merged-addition conduit stays dark. Allocation-free.
func maskWeights(dst, baseRow []float64, gains []fiber.ConduitID, cuts []fiber.ConduitID) {
	copy(dst, baseRow)
	for _, cid := range gains {
		dst[cid] = 1
	}
	inf := math.Inf(1)
	for _, cid := range cuts {
		dst[cid] = inf
	}
}

func (e *Engine) evaluateOverlay(ctx context.Context, snap *snapshot, sc Scenario) (*Result, error) {
	checkpoint := func() error { return ctx.Err() }
	if err := checkpoint(); err != nil {
		return nil, err
	}

	m := snap.res.Map
	base := snap.baseline()

	// Stage spans carry the attribution story of the overlay path —
	// which stages ran against the delta, which reused baseline rows,
	// and for how many touched providers. stage() brackets one section;
	// attrs are no-ops unless the evaluation is being recorded.
	stage := func(name string, fn func(sp *obs.Span) error) error {
		_, sp := obs.Trace(ctx, name)
		defer sp.End()
		return fn(sp)
	}

	var (
		res  *Result
		kept []string
		pert fiber.Perturbation
		ov   *fiber.Overlay
	)
	removed := make(map[string]bool, len(sc.RemoveISPs))
	err := stage("scenario.stage.apply", func(sp *obs.Span) error {
		cuts, err := resolveCutsOn(snap, sc)
		if err != nil {
			return err
		}
		res = &Result{
			Hash:        sc.Hash(),
			Scenario:    sc,
			Cut:         cuts,
			ConduitsCut: len(cuts),
			ISPsRemoved: sc.RemoveISPs,
		}
		for _, cid := range cuts {
			res.TenanciesCut += len(m.Conduit(cid).Tenants)
		}

		kept = keptISPs(snap, sc)
		for _, isp := range sc.RemoveISPs {
			removed[isp] = true
		}

		// Resolve additions to node ids; an empty tenant list means open
		// access — every kept provider lights the build.
		pert = fiber.Perturbation{Cuts: cuts, RemoveISPs: sc.RemoveISPs}
		for _, ad := range sc.Additions {
			a, ok := m.NodeByKey(ad.A)
			if !ok {
				return fmt.Errorf("scenario: unknown node %q in addition", ad.A)
			}
			b, ok := m.NodeByKey(ad.B)
			if !ok {
				return fmt.Errorf("scenario: unknown node %q in addition", ad.B)
			}
			tenants := ad.Tenants
			if len(tenants) == 0 {
				tenants = kept
			}
			pert.Additions = append(pert.Additions, fiber.OverlayAddition{A: a, B: b, Tenants: tenants})
		}
		if ov, err = fiber.NewOverlay(m, pert); err != nil {
			return err
		}
		res.LinksRemoved = ov.LinksRemoved()
		res.ConduitsAdded = len(pert.Additions)
		sp.SetAttrInt("cuts", int64(len(cuts)))
		sp.SetAttrInt("additions", int64(len(pert.Additions)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	cuts := res.Cut

	if err := checkpoint(); err != nil {
		return nil, err
	}

	plus, final := ov.Plus(), ov.Final()
	var mx2 *risk.Matrix
	_ = stage("scenario.stage.matrix", func(sp *obs.Span) error {
		mx2 = risk.BuildFrom(final, kept)
		res.Stats = StatsDelta{Before: base.stats, After: final.Stats()}
		fillSharing(res, base, mx2)
		fillRanking(res, base, mx2)
		sp.SetAttrInt("isps", int64(len(mx2.ISPs)))
		return nil
	})

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Touched set: a surviving provider's connectivity or partition
	// answer can only change if a cut conduit carries its tenancy or an
	// addition lights it. Everything else reuses its baseline row —
	// the clone path would recompute the identical value.
	touched := make(map[string]uint8)
	for _, cid := range cuts {
		for _, isp := range m.Tenants(cid) {
			if !removed[isp] {
				touched[isp] |= touchedCut
			}
		}
	}
	for _, ad := range pert.Additions {
		for _, isp := range ad.Tenants {
			if !removed[isp] {
				touched[isp] |= touchedAdd
			}
		}
	}

	scr := getScratch(snap.g.NumEdges())
	defer putScratch(scr)
	cutMask := ov.CutMask()

	// Per-ISP disconnection on the plus view (cuts excluded by weight,
	// footprints intact), in matrix order then stable-sorted by damage
	// — CutImpact's exact ordering.
	_ = stage("scenario.stage.disconnection", func(sp *obs.Span) error {
		recomputed := 0
		impacts := make([]resilience.Impact, 0, len(mx2.ISPs))
		for _, isp := range mx2.ISPs {
			bits := touched[isp]
			if bits == 0 {
				impacts = append(impacts, base.disc[isp])
				continue
			}
			recomputed++
			nodes := snap.ispNodes[snap.ispIdx[isp]]
			if bits&touchedAdd != 0 {
				nodes = plus.NodesOf(isp)
			}
			impacts = append(impacts, scr.imp.ImpactOn(plus, isp, nodes, cuts, cutMask))
		}
		sort.SliceStable(impacts, func(i, j int) bool {
			return impacts[i].DisconnectedPairs > impacts[j].DisconnectedPairs
		})
		fillDisconnection(res, base, impacts)
		setReuseAttrs(sp, recomputed, len(mx2.ISPs)-recomputed)
		return nil
	})

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Partition cost on the final view. Touched providers run the
	// sparse Stoer-Wagner kernel over the masked snapshot weight row;
	// the rest reuse the baseline cost.
	_ = stage("scenario.stage.partition", func(sp *obs.Span) error {
		fast0, full0 := scr.ws.MinCutStats()
		recomputed := 0
		type pcost struct {
			isp string
			min int
		}
		pcs := make([]pcost, 0, len(kept))
		nb := ov.NumBaseConduits()
		nc := final.NumConduits()
		for _, isp := range kept {
			bits := touched[isp]
			if bits == 0 {
				pcs = append(pcs, pcost{isp: isp, min: base.part[isp]})
				continue
			}
			recomputed++
			// Tenancy gains this provider received on merged (base-conduit)
			// additions; overlay-new conduits become extra edges instead.
			scr.verts = scr.verts[:0]
			scr.extra = scr.extra[:0]
			gains := gainsFor(pert.Additions, ov.AdditionTargets(), nb, isp)
			maskWeights(scr.w, snap.ispW[snap.ispIdx[isp]], gains, cuts)
			for cid := fiber.ConduitID(nb); int(cid) < nc; cid++ {
				if final.HasTenant(cid, isp) {
					a, b := final.ConduitEnds(cid)
					scr.extra = append(scr.extra, graph.Edge{U: int(a), V: int(b), Weight: 1})
				}
			}
			for _, n := range final.NodesOf(isp) {
				scr.verts = append(scr.verts, int(n))
			}
			min := resilience.PartitionCostWS(snap.g, scr.ws, scr.verts, scr.w, scr.extra)
			pcs = append(pcs, pcost{isp: isp, min: min})
		}
		sort.SliceStable(pcs, func(i, j int) bool { return pcs[i].min < pcs[j].min })
		for _, pc := range pcs {
			res.Partition = append(res.Partition, PartitionShift{
				ISP:    pc.isp,
				Before: base.part[pc.isp],
				After:  pc.min,
			})
		}
		setReuseAttrs(sp, recomputed, len(kept)-recomputed)
		fast, full := scr.ws.MinCutStats()
		sp.SetAttrInt("mincut_fastpath", int64(fast-fast0))
		sp.SetAttrInt("mincut_stoerwagner", int64(full-full0))
		return nil
	})

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Capacity stage: re-flow the gravity demand matrix over the
	// perturbed capacities. Base conduit capacities come from the
	// final view (cuts dark, removals thinned, merged additions
	// widened); overlay-new conduits ride as extra edges. A demand
	// pair reuses its memoized baseline flow when the perturbation
	// never reaches its source or sink component.
	_ = stage("scenario.stage.capacity", func(sp *obs.Span) error {
		cb := snap.capacity()
		scr.capW = capacityTable(final, scr.capW)
		scr.extra = scr.extra[:0]
		nb := ov.NumBaseConduits()
		for cid := nb; cid < len(scr.capW); cid++ {
			a, b := final.ConduitEnds(fiber.ConduitID(cid))
			scr.extra = append(scr.extra, graph.Edge{U: int(a), V: int(b), Weight: scr.capW[cid]})
		}
		touchedComps := capacityTouched(m, cb, cuts, pert)
		reusable := func(i int) bool {
			d := &cb.demands[i]
			return !touchedComps[cb.comp[d.s]] && !touchedComps[cb.comp[d.t]]
		}
		var recomputed, reused int
		res.LostTraffic, recomputed, reused = lostTrafficOn(cb, snap.g, scr.ws, scr.capW[:nb], scr.extra, reusable)
		setReuseAttrs(sp, recomputed, reused)
		return nil
	})

	// The optional heavyweight stages consume a concrete *Map; build
	// it once, only when asked.
	if sc.IncludeLatency || sc.IncludeTraffic {
		pm := ov.Materialize()
		if err := e.latencyStage(ctx, snap, sc, pm, res); err != nil {
			return nil, err
		}
		if err := e.trafficStage(ctx, snap, sc, pm, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// setReuseAttrs records a stage's reuse attribution: how many
// providers it recomputed against the delta vs served from baseline
// rows, and the stage outcome ("reused" when the delta touched no one).
func setReuseAttrs(sp *obs.Span, recomputed, reused int) {
	outcome := "reused"
	if recomputed > 0 {
		outcome = "recomputed"
	}
	sp.SetAttr("outcome", outcome)
	sp.SetAttrInt("touched", int64(recomputed))
	sp.SetAttrInt("reused", int64(reused))
}

// gainsFor collects the merged-addition base conduits where the
// provider gains tenancy. Small inputs; allocates only when the
// provider actually gained something.
func gainsFor(adds []fiber.OverlayAddition, targets []fiber.ConduitID, numBase int, isp string) []fiber.ConduitID {
	var gains []fiber.ConduitID
	for i, ad := range adds {
		if int(targets[i]) >= numBase {
			continue
		}
		for _, t := range ad.Tenants {
			if t == isp {
				gains = append(gains, targets[i])
				break
			}
		}
	}
	return gains
}
