// Package scenario is the what-if engine over a completed study: a
// Scenario value declaratively composes perturbations of the baseline
// long-haul map — conduit cuts (explicit, most-shared, most-between,
// or regional disasters), provider removal, new conduit builds, and
// option overrides — and evaluates into a Result carrying deltas
// against the baseline: sharing distribution, risk-ranking shifts,
// per-ISP disconnection, partition cost, and (optionally) latency and
// traffic impact.
//
// Scenarios canonicalize to a stable content hash, which is the key
// of the serving layer: Cache (bounded LRU with singleflight dedup,
// so N identical concurrent queries cost one evaluation) and Sweep (a
// deterministic batch runner on internal/par with the same
// bit-identical-at-any-worker-count contract as the other hot paths).
//
// This is the paper's closing future work ("analyze different
// dimensions of network resilience") turned into a query language:
// §5's mitigation frameworks and the resilience analyses become
// special cases of one declarative spec.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"intertubes/internal/fiber"
)

// Region is a circular disaster footprint: every tenanted conduit
// whose route enters the circle is cut.
type Region struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radiusKm"`
}

// Addition is one new conduit build: a straight-line conduit between
// two map nodes ("City,ST" keys). Tenants are the providers that
// light it; an empty list means open access — every baseline provider
// may use it (the §5.2 framing, where any ISP re-routes over a new
// conduit).
type Addition struct {
	A       string   `json:"a"`
	B       string   `json:"b"`
	Tenants []string `json:"tenants,omitempty"`
}

// Overrides adjusts evaluation knobs that have a baseline default.
// Unlike Workers (a pure speed knob, deliberately absent here), these
// change what is computed, so they are part of the scenario hash.
type Overrides struct {
	// Probes overrides the traceroute campaign size used when
	// IncludeTraffic is set.
	Probes int `json:"probes,omitempty"`
	// LatencyMaxPairs overrides the latency-study pair cap used when
	// IncludeLatency is set.
	LatencyMaxPairs int `json:"latencyMaxPairs,omitempty"`
}

// Scenario is one declarative what-if query. The zero value is the
// null scenario (no perturbation). Fields compose: the evaluated cut
// set is the union of CutConduits, the CutMostShared most-shared
// conduits, the CutMostBetween highest-betweenness conduits, and
// every tenanted conduit inside any Region.
type Scenario struct {
	// Name labels the scenario in listings and reports. It does not
	// enter the content hash.
	Name string `json:"name,omitempty"`
	// Preset names a predefined scenario to start from; the remaining
	// fields compose on top of it. Resolve expands it.
	Preset string `json:"preset,omitempty"`

	CutConduits    []fiber.ConduitID `json:"cutConduits,omitempty"`
	CutMostShared  int               `json:"cutMostShared,omitempty"`
	CutMostBetween int               `json:"cutMostBetween,omitempty"`
	Regions        []Region          `json:"regions,omitempty"`
	RemoveISPs     []string          `json:"removeISPs,omitempty"`
	Additions      []Addition        `json:"add,omitempty"`

	// IncludeLatency adds the §5.3 latency study (best/ROW/LOS deltas)
	// to the result; IncludeTraffic adds a traceroute campaign overlay
	// (sharing under traffic). Both cost real evaluation time.
	IncludeLatency bool `json:"includeLatency,omitempty"`
	IncludeTraffic bool `json:"includeTraffic,omitempty"`

	Overrides Overrides `json:"overrides,omitempty"`
}

// Resolve expands the Preset (if any) and returns the canonical form
// of the scenario. It fails on an unknown preset or an invalid field.
func Resolve(sc Scenario) (Scenario, error) {
	if sc.Preset != "" {
		base, ok := Preset(sc.Preset)
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: unknown preset %q", sc.Preset)
		}
		sc = merge(base, sc)
	}
	if err := validate(sc); err != nil {
		return Scenario{}, err
	}
	return canonical(sc), nil
}

// merge composes an explicit request on top of a preset: list fields
// append, count fields take the maximum, booleans or, and non-zero
// overrides win.
func merge(base, req Scenario) Scenario {
	out := base
	out.Preset = req.Preset
	if req.Name != "" {
		out.Name = req.Name
	}
	out.CutConduits = append(out.CutConduits, req.CutConduits...)
	out.Regions = append(out.Regions, req.Regions...)
	out.RemoveISPs = append(out.RemoveISPs, req.RemoveISPs...)
	out.Additions = append(out.Additions, req.Additions...)
	if req.CutMostShared > out.CutMostShared {
		out.CutMostShared = req.CutMostShared
	}
	if req.CutMostBetween > out.CutMostBetween {
		out.CutMostBetween = req.CutMostBetween
	}
	out.IncludeLatency = out.IncludeLatency || req.IncludeLatency
	out.IncludeTraffic = out.IncludeTraffic || req.IncludeTraffic
	if req.Overrides.Probes != 0 {
		out.Overrides.Probes = req.Overrides.Probes
	}
	if req.Overrides.LatencyMaxPairs != 0 {
		out.Overrides.LatencyMaxPairs = req.Overrides.LatencyMaxPairs
	}
	return out
}

func validate(sc Scenario) error {
	if sc.CutMostShared < 0 || sc.CutMostBetween < 0 {
		return fmt.Errorf("scenario: negative cut count")
	}
	if sc.Overrides.Probes < 0 || sc.Overrides.LatencyMaxPairs < 0 {
		return fmt.Errorf("scenario: negative override")
	}
	for _, cid := range sc.CutConduits {
		if cid < 0 {
			return fmt.Errorf("scenario: negative conduit id %d", cid)
		}
	}
	for _, r := range sc.Regions {
		if r.RadiusKm <= 0 {
			return fmt.Errorf("scenario: region radius must be positive (got %g)", r.RadiusKm)
		}
		if r.Lat < -90 || r.Lat > 90 || r.Lon < -180 || r.Lon > 180 {
			return fmt.Errorf("scenario: region center (%g, %g) off the globe", r.Lat, r.Lon)
		}
	}
	for _, ad := range sc.Additions {
		if ad.A == "" || ad.B == "" || ad.A == ad.B {
			return fmt.Errorf("scenario: addition needs two distinct node keys (got %q - %q)", ad.A, ad.B)
		}
	}
	return nil
}

// canonical sorts and de-duplicates every list field so that
// logically equal scenarios serialize — and hash — identically.
func canonical(sc Scenario) Scenario {
	sc.Preset = "" // resolved
	sc.CutConduits = dedupeIDs(sc.CutConduits)
	sc.RemoveISPs = dedupeStrings(sc.RemoveISPs)

	regions := append([]Region(nil), sc.Regions...)
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i], regions[j]
		if a.Lat != b.Lat {
			return a.Lat < b.Lat
		}
		if a.Lon != b.Lon {
			return a.Lon < b.Lon
		}
		return a.RadiusKm < b.RadiusKm
	})
	sc.Regions = dedupeRegions(regions)

	adds := make([]Addition, 0, len(sc.Additions))
	for _, ad := range sc.Additions {
		if ad.A > ad.B {
			ad.A, ad.B = ad.B, ad.A
		}
		ad.Tenants = dedupeStrings(ad.Tenants)
		adds = append(adds, ad)
	}
	sort.Slice(adds, func(i, j int) bool {
		a, b := adds[i], adds[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return strings.Join(a.Tenants, ",") < strings.Join(b.Tenants, ",")
	})
	sc.Additions = dedupeAdditions(adds)
	return sc
}

// Hash returns the stable content hash of the scenario's canonical
// form: equal perturbations hash equally no matter how they were
// spelled. Name never enters the hash; Workers is not a scenario
// field at all (the determinism contract makes it a pure speed knob).
func (sc Scenario) Hash() string {
	c := canonical(sc)
	var b strings.Builder
	b.WriteString("v1|cut=")
	for i, cid := range c.CutConduits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", cid)
	}
	fmt.Fprintf(&b, "|shared=%d|between=%d|regions=", c.CutMostShared, c.CutMostBetween)
	for i, r := range c.Regions {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g/%g/%g", r.Lat, r.Lon, r.RadiusKm)
	}
	b.WriteString("|rm=")
	b.WriteString(strings.Join(c.RemoveISPs, ","))
	b.WriteString("|add=")
	for i, ad := range c.Additions {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s~%s~%s", ad.A, ad.B, strings.Join(ad.Tenants, "+"))
	}
	fmt.Fprintf(&b, "|lat=%t|traffic=%t|probes=%d|maxpairs=%d",
		c.IncludeLatency, c.IncludeTraffic, c.Overrides.Probes, c.Overrides.LatencyMaxPairs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// IsZero reports whether the scenario perturbs nothing.
func (sc Scenario) IsZero() bool {
	return len(sc.CutConduits) == 0 && sc.CutMostShared == 0 && sc.CutMostBetween == 0 &&
		len(sc.Regions) == 0 && len(sc.RemoveISPs) == 0 && len(sc.Additions) == 0
}

func dedupeIDs(ids []fiber.ConduitID) []fiber.ConduitID {
	if len(ids) == 0 {
		return nil
	}
	out := append([]fiber.ConduitID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func dedupeStrings(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	out := append([]string(nil), xs...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func dedupeRegions(rs []Region) []Region {
	if len(rs) == 0 {
		return nil
	}
	w := 1
	for i := 1; i < len(rs); i++ {
		if rs[i] != rs[w-1] {
			rs[w] = rs[i]
			w++
		}
	}
	return rs[:w]
}

func dedupeAdditions(as []Addition) []Addition {
	if len(as) == 0 {
		return nil
	}
	eq := func(a, b Addition) bool {
		if a.A != b.A || a.B != b.B || len(a.Tenants) != len(b.Tenants) {
			return false
		}
		for i := range a.Tenants {
			if a.Tenants[i] != b.Tenants[i] {
				return false
			}
		}
		return true
	}
	w := 1
	for i := 1; i < len(as); i++ {
		if !eq(as[i], as[w-1]) {
			as[w] = as[i]
			w++
		}
	}
	return as[:w]
}
