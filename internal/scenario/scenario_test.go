package scenario

import (
	"reflect"
	"testing"

	"intertubes/internal/fiber"
)

func TestHashOrderIndependence(t *testing.T) {
	a := Scenario{
		CutConduits: []fiber.ConduitID{3, 1, 2, 1},
		RemoveISPs:  []string{"B", "A", "B"},
		Regions: []Region{
			{Lat: 30, Lon: -90, RadiusKm: 100},
			{Lat: 29, Lon: -95, RadiusKm: 50},
		},
		Additions: []Addition{{A: "Y,YY", B: "X,XX"}, {A: "X,XX", B: "Y,YY"}},
	}
	b := Scenario{
		CutConduits: []fiber.ConduitID{1, 2, 3},
		RemoveISPs:  []string{"A", "B"},
		Regions: []Region{
			{Lat: 29, Lon: -95, RadiusKm: 50},
			{Lat: 30, Lon: -90, RadiusKm: 100},
		},
		Additions: []Addition{{A: "X,XX", B: "Y,YY"}},
	}
	if a.Hash() != b.Hash() {
		t.Errorf("logically equal scenarios hash differently:\n %s\n %s", a.Hash(), b.Hash())
	}
}

func TestHashIgnoresName(t *testing.T) {
	a := Scenario{Name: "one", CutMostShared: 5}
	b := Scenario{Name: "two", CutMostShared: 5}
	if a.Hash() != b.Hash() {
		t.Error("Name must not enter the hash")
	}
}

func TestHashDistinguishesPerturbations(t *testing.T) {
	seen := map[string]Scenario{}
	for _, sc := range []Scenario{
		{},
		{CutMostShared: 5},
		{CutMostShared: 6},
		{CutMostBetween: 5},
		{CutConduits: []fiber.ConduitID{5}},
		{RemoveISPs: []string{"Level 3"}},
		{Regions: []Region{{Lat: 30, Lon: -90, RadiusKm: 100}}},
		{Regions: []Region{{Lat: 30, Lon: -90, RadiusKm: 101}}},
		{Additions: []Addition{{A: "X,XX", B: "Y,YY"}}},
		{Additions: []Addition{{A: "X,XX", B: "Y,YY", Tenants: []string{"Z"}}}},
		{IncludeLatency: true},
		{IncludeTraffic: true},
		{IncludeLatency: true, Overrides: Overrides{LatencyMaxPairs: 10}},
		{IncludeTraffic: true, Overrides: Overrides{Probes: 10}},
	} {
		h := sc.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision %s between %+v and %+v", h, prev, sc)
		}
		seen[h] = sc
	}
}

func TestResolvePresetEqualsExplicit(t *testing.T) {
	byPreset, err := Resolve(Scenario{Preset: "top12-cut"})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Resolve(Scenario{Name: "top12-cut", CutMostShared: 12})
	if err != nil {
		t.Fatal(err)
	}
	if byPreset.Hash() != explicit.Hash() {
		t.Errorf("preset and explicit spelling hash differently")
	}
	if byPreset.Preset != "" {
		t.Errorf("Resolve should clear Preset, got %q", byPreset.Preset)
	}
}

func TestResolveMergesOnTopOfPreset(t *testing.T) {
	sc, err := Resolve(Scenario{
		Preset:     "gulf-hurricane",
		RemoveISPs: []string{"Sprint"},
		Regions:    []Region{{Lat: 25.76, Lon: -80.19, RadiusKm: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "gulf-hurricane" {
		t.Errorf("Name = %q", sc.Name)
	}
	if len(sc.Regions) != 2 {
		t.Errorf("regions should compose, got %v", sc.Regions)
	}
	if !reflect.DeepEqual(sc.RemoveISPs, []string{"Sprint"}) {
		t.Errorf("RemoveISPs = %v", sc.RemoveISPs)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"unknown preset", Scenario{Preset: "nope"}},
		{"negative shared", Scenario{CutMostShared: -1}},
		{"negative conduit", Scenario{CutConduits: []fiber.ConduitID{-2}}},
		{"zero radius", Scenario{Regions: []Region{{Lat: 30, Lon: -90}}}},
		{"off-globe", Scenario{Regions: []Region{{Lat: 120, Lon: -90, RadiusKm: 10}}}},
		{"self addition", Scenario{Additions: []Addition{{A: "X,XX", B: "X,XX"}}}},
		{"empty addition", Scenario{Additions: []Addition{{A: "X,XX"}}}},
		{"negative probes", Scenario{Overrides: Overrides{Probes: -1}}},
	}
	for _, tc := range cases {
		if _, err := Resolve(tc.sc); err == nil {
			t.Errorf("%s: Resolve accepted %+v", tc.name, tc.sc)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !(Scenario{Name: "noop", IncludeLatency: true}).IsZero() {
		t.Error("latency-only scenario should be zero-perturbation")
	}
	if (Scenario{CutMostShared: 1}).IsZero() {
		t.Error("cut scenario is not zero")
	}
}

func TestPresetsResolve(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets")
	}
	for _, name := range names {
		sc, err := Resolve(Scenario{Preset: name})
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if sc.IsZero() {
			t.Errorf("preset %s resolves to the null scenario", name)
		}
	}
	if len(Presets()) != len(names) {
		t.Errorf("Presets() and PresetNames() disagree")
	}
}
