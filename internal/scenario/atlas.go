package scenario

import (
	"context"
	"fmt"

	"intertubes/internal/fiber"
	"intertubes/internal/latency"
)

// atlas.go wires the all-pairs latency atlas (internal/latency) into
// the engine: the baseline atlas is memoized on the snapshot behind
// an atomic pointer, and a scenario's atlas is built over the
// copy-on-write overlay view, reusing every baseline matrix row whose
// source the perturbation provably cannot affect.
//
// The reuse rule works on connected components of the lit-conduit
// graph: a source's reachable region is exactly its lit component, so
// its row can only change if the perturbation touches that component
// — a cut or provider removal darkening one of its conduits, or an
// addition landing an endpoint in it (which also merges in whatever
// the other endpoint's component could reach). Marking whole
// components is conservative — a far-side cut recomputes more rows
// than strictly necessary — but never unsound, and the differential
// suite pins byte-identical results against a from-scratch rebuild.

// litComponents returns the union-find component id of every node
// over conduits with lit fiber (>= 1 tenant), memoized per snapshot.
func (s *snapshot) litComponents() []int32 {
	s.litOnce.Do(func() {
		m := s.res.Map
		parent := make([]int32, m.NumNodes())
		for i := range parent {
			parent[i] = int32(i)
		}
		var find func(int32) int32
		find = func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for cid := 0; cid < m.NumConduits(); cid++ {
			if len(m.Tenants(fiber.ConduitID(cid))) == 0 {
				continue
			}
			a, b := m.ConduitEnds(fiber.ConduitID(cid))
			ra, rb := find(int32(a)), find(int32(b))
			if ra != rb {
				parent[ra] = rb
			}
		}
		s.litComp = make([]int32, len(parent))
		for i := range parent {
			s.litComp[i] = find(int32(i))
		}
	})
	return s.litComp
}

// LatencyAtlas returns the baseline snapshot's all-pairs latency
// atlas and the baseline version it belongs to, building the atlas on
// first use. The atlas is immutable and shared; a SwapBaseline starts
// a fresh snapshot whose atlas is rebuilt on demand. A canceled build
// is not cached.
func (e *Engine) LatencyAtlas(ctx context.Context) (*latency.Atlas, uint64, error) {
	snap := e.snapshot()
	at, err := e.latencyAtlasOn(ctx, snap)
	return at, snap.version, err
}

func (e *Engine) latencyAtlasOn(ctx context.Context, snap *snapshot) (*latency.Atlas, error) {
	if at := snap.atlasPtr.Load(); at != nil {
		return at, nil
	}
	snap.atlasMu.Lock()
	defer snap.atlasMu.Unlock()
	if at := snap.atlasPtr.Load(); at != nil {
		return at, nil
	}
	at, err := latency.Build(ctx, snap.res.Map, latency.Options{Workers: e.opts.Workers})
	if err != nil {
		return nil, err
	}
	snap.atlasPtr.Store(at)
	return at, nil
}

// LatencyAtlasFor evaluates a scenario's perturbation as a latency
// atlas over the overlay view, recomputing only rows whose source's
// lit component the perturbation touches and reusing every other
// baseline row verbatim (Atlas.ReusedRows reports how many). The
// result is byte-identical to a from-scratch build on the
// materialized perturbed map.
func (e *Engine) LatencyAtlasFor(ctx context.Context, sc Scenario) (*latency.Atlas, error) {
	snap := e.snapshot()
	base, err := e.latencyAtlasOn(ctx, snap)
	if err != nil {
		return nil, err
	}
	m := snap.res.Map
	cuts, err := resolveCutsOn(snap, sc)
	if err != nil {
		return nil, err
	}
	kept := keptISPs(snap, sc)
	pert := fiber.Perturbation{Cuts: cuts, RemoveISPs: sc.RemoveISPs}
	for _, ad := range sc.Additions {
		a, ok := m.NodeByKey(ad.A)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown node %q in addition", ad.A)
		}
		b, ok := m.NodeByKey(ad.B)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown node %q in addition", ad.B)
		}
		tenants := ad.Tenants
		if len(tenants) == 0 {
			tenants = kept
		}
		pert.Additions = append(pert.Additions, fiber.OverlayAddition{A: a, B: b, Tenants: tenants})
	}
	ov, err := fiber.NewOverlay(m, pert)
	if err != nil {
		return nil, err
	}

	comp := snap.litComponents()
	touched := make(map[int32]bool)
	mark := func(n fiber.NodeID) { touched[comp[n]] = true }
	for _, cid := range cuts {
		a, b := m.ConduitEnds(cid)
		mark(a)
		mark(b)
	}
	for _, isp := range sc.RemoveISPs {
		for _, cid := range m.ConduitsOf(isp) {
			a, b := m.ConduitEnds(cid)
			mark(a)
			mark(b)
		}
	}
	for _, ad := range pert.Additions {
		mark(ad.A)
		mark(ad.B)
	}
	reuse := func(src fiber.NodeID) bool { return !touched[comp[src]] }
	return latency.BuildView(ctx, m, ov.Final(), base, reuse, latency.Options{Workers: e.opts.Workers})
}
