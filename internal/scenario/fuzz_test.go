package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
)

// fuzz_test.go drives the clone-vs-overlay differential harness from
// fuzzed perturbations over a small atlas: whatever the fuzzer
// composes, the two evaluation paths must agree byte for byte (or
// fail with the same error), and neither may panic.

var (
	fuzzOnce  sync.Once
	fuzzOv    *Engine
	fuzzCl    *Engine
	fuzzRes   *mapbuilder.Result
	fuzzIsps  []string
	fuzzNodes int
)

// fuzzEngines builds one tiny three-provider atlas and the engine
// pair over it. Small on purpose: the clone reference runs on every
// fuzz input.
func fuzzEngines() (*Engine, *Engine) {
	fuzzOnce.Do(func() {
		profiles := []mapbuilder.Profile{
			{Name: "Alpha", Tier: mapbuilder.Tier1, Geocoded: true, POPTarget: 10, Redundancy: 0.2, JitterAmp: 0.2},
			{Name: "Beta", Tier: mapbuilder.Tier1, Geocoded: false, POPTarget: 8, Redundancy: 0.2, JitterAmp: 0.2},
			{Name: "Gamma", Tier: mapbuilder.Regional, Geocoded: true, POPTarget: 6, Redundancy: 0.3, JitterAmp: 0.2},
		}
		fuzzRes = mapbuilder.BuildWithProfiles(mapbuilder.Options{Seed: 3}, profiles)
		mx := risk.Build(fuzzRes.Map, nil)
		fuzzIsps = mx.ISPs
		fuzzNodes = fuzzRes.Map.NumNodes()
		fuzzOv = New(fuzzRes, mx, Options{Seed: 3})
		fuzzCl = New(fuzzRes, mx, Options{Seed: 3, CloneEval: true})
	})
	return fuzzOv, fuzzCl
}

// fuzzScenario shapes arbitrary fuzz bytes into a scenario. Values
// are folded into valid ranges except the cut ids, which may go out
// of range on purpose — both paths must then fail identically.
func fuzzScenario(cutA, cutB uint16, shared, between, rmMask, addA, addB, tenantMask uint8) Scenario {
	var sc Scenario
	nc := fuzzRes.Map.NumConduits()
	if cutA > 0 {
		sc.CutConduits = append(sc.CutConduits, fiber.ConduitID(int(cutA)%(nc+3)))
	}
	if cutB > 0 {
		sc.CutConduits = append(sc.CutConduits, fiber.ConduitID(int(cutB)%(nc+3)))
	}
	sc.CutMostShared = int(shared % 8)
	sc.CutMostBetween = int(between % 8)
	for i, isp := range fuzzIsps {
		if rmMask&(1<<uint(i)) != 0 {
			sc.RemoveISPs = append(sc.RemoveISPs, isp)
		}
	}
	a, b := int(addA)%fuzzNodes, int(addB)%fuzzNodes
	if a != b {
		var tenants []string
		for i, isp := range fuzzIsps {
			if tenantMask&(1<<uint(i)) != 0 {
				tenants = append(tenants, isp)
			}
		}
		sc.Additions = []Addition{{
			A:       fuzzRes.Map.Node(fiber.NodeID(a)).Key(),
			B:       fuzzRes.Map.Node(fiber.NodeID(b)).Key(),
			Tenants: tenants, // empty = open access
		}}
	}
	return sc
}

func FuzzOverlayEvaluate(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint16(1), uint16(5), uint8(3), uint8(2), uint8(1), uint8(0), uint8(7), uint8(2))
	f.Add(uint16(9999), uint16(0), uint8(0), uint8(0), uint8(0), uint8(1), uint8(2), uint8(0))
	f.Add(uint16(4), uint16(4), uint8(7), uint8(7), uint8(7), uint8(3), uint8(9), uint8(5))
	f.Fuzz(func(t *testing.T, cutA, cutB uint16, shared, between, rmMask, addA, addB, tenantMask uint8) {
		ov, cl := fuzzEngines()
		sc := fuzzScenario(cutA, cutB, shared, between, rmMask, addA, addB, tenantMask)
		ctx := context.Background()

		rOv, errOv := ov.Evaluate(ctx, sc)
		rCl, errCl := cl.Evaluate(ctx, sc)
		if (errOv == nil) != (errCl == nil) {
			t.Fatalf("error disagreement: overlay=%v clone=%v (scenario %+v)", errOv, errCl, sc)
		}
		if errOv != nil {
			if errOv.Error() != errCl.Error() {
				t.Fatalf("error text disagreement: overlay=%q clone=%q", errOv, errCl)
			}
			return
		}
		bOv, err := json.Marshal(rOv)
		if err != nil {
			t.Fatal(err)
		}
		bCl, err := json.Marshal(rCl)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bOv, bCl) {
			t.Fatalf("overlay and clone Results diverge for %+v:\n overlay: %s\n clone:   %s", sc, bOv, bCl)
		}
	})
}
