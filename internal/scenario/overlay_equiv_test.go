package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"intertubes/internal/fiber"
)

// overlay_equiv_test.go is the clone-vs-overlay differential harness:
// the copy-on-write evaluation path must produce byte-identical
// Result JSON to the clone-per-scenario reference path for every
// preset, for randomized composite scenarios, across engine reuse
// (pooled scratch), and at any sweep worker count.

// enginePair returns an overlay-path engine and a clone-path engine
// over the same baseline.
func enginePair(t *testing.T) (overlay, clone *Engine) {
	t.Helper()
	res, mx := build(t)
	overlay = New(res, mx, Options{Seed: 42})
	clone = New(res, mx, Options{Seed: 42, CloneEval: true})
	return overlay, clone
}

func evalJSON(t *testing.T, eng *Engine, sc Scenario) []byte {
	t.Helper()
	r, err := eng.Evaluate(context.Background(), sc)
	if err != nil {
		t.Fatalf("evaluate %+v: %v", sc, err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// diffJSON pinpoints the first divergence so a failure is debuggable.
func diffJSON(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := i+120, i+120
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	t.Errorf("%s: overlay and clone Results diverge at byte %d:\n overlay: …%s…\n clone:   …%s…",
		label, i, got[lo:hiG], want[lo:hiW])
}

// equivScenarios is the deterministic part of the differential corpus:
// the zero scenario, every preset, and composites exercising each
// interaction the overlay must replicate (cut a merged addition,
// re-add a removed provider, open-access additions, overlapping cut
// clauses).
func equivScenarios(t *testing.T) []Scenario {
	t.Helper()
	res, mx := build(t)
	m := res.Map
	k0, k1 := m.Node(0).Key(), m.Node(1).Key()
	kLast := m.Node(fiber.NodeID(m.NumNodes() - 1)).Key()

	scs := []Scenario{
		{}, // zero scenario: nothing perturbed, everything reused
	}
	for _, name := range PresetNames() {
		scs = append(scs, Scenario{Preset: name})
	}
	scs = append(scs,
		// Cut an explicit conduit plus overlapping most-shared set.
		Scenario{CutConduits: mx.TopShared(2)[:1], CutMostShared: 4},
		// Remove two providers and cut conduits they occupied.
		Scenario{RemoveISPs: mx.ISPs[:2], CutMostShared: 3},
		// Remove a provider and explicitly re-add it on a new build.
		Scenario{
			RemoveISPs: []string{mx.ISPs[0]},
			Additions:  []Addition{{A: k0, B: kLast, Tenants: []string{mx.ISPs[0]}}},
		},
		// Open-access addition (touches every kept provider).
		Scenario{Additions: []Addition{{A: k0, B: kLast}}},
		// Addition that merges with an existing corridor-less conduit,
		// then cut underneath it.
		Scenario{
			CutConduits: mx.TopShared(1),
			Additions:   []Addition{{A: k0, B: k1, Tenants: []string{mx.ISPs[1]}}},
		},
		// Everything at once.
		Scenario{
			CutMostShared:  3,
			CutMostBetween: 3,
			Regions:        []Region{{Lat: 29.95, Lon: -90.07, RadiusKm: 250}},
			RemoveISPs:     []string{mx.ISPs[2]},
			Additions: []Addition{
				{A: k0, B: kLast, Tenants: []string{mx.ISPs[0], mx.ISPs[3]}},
				{A: k1, B: kLast},
			},
		},
	)
	return scs
}

func TestOverlayMatchesClonePresets(t *testing.T) {
	ovEng, clEng := enginePair(t)
	for i, sc := range equivScenarios(t) {
		label := sc.Preset
		if label == "" {
			label = fmt.Sprintf("composite-%d", i)
		}
		diffJSON(t, label, evalJSON(t, ovEng, sc), evalJSON(t, clEng, sc))
	}
}

func TestOverlayMatchesCloneLatencyTraffic(t *testing.T) {
	ovEng, clEng := enginePair(t)
	sc := Scenario{
		CutMostShared:  2,
		IncludeLatency: true,
		IncludeTraffic: true,
		Overrides:      Overrides{LatencyMaxPairs: 60, Probes: 2000},
	}
	diffJSON(t, "latency+traffic", evalJSON(t, ovEng, sc), evalJSON(t, clEng, sc))
}

// randomScenario draws a composite scenario over valid map entities.
func randomScenario(rng *rand.Rand, eng *Engine) Scenario {
	snap := eng.snapshot()
	m := snap.res.Map
	isps := snap.mx.ISPs
	var sc Scenario
	for i := 0; i < rng.Intn(4); i++ {
		sc.CutConduits = append(sc.CutConduits, fiber.ConduitID(rng.Intn(m.NumConduits())))
	}
	if rng.Intn(3) == 0 {
		sc.CutMostShared = rng.Intn(6)
	}
	if rng.Intn(4) == 0 {
		sc.CutMostBetween = rng.Intn(5)
	}
	if rng.Intn(4) == 0 {
		sc.Regions = []Region{{
			Lat: 25 + rng.Float64()*20, Lon: -120 + rng.Float64()*40,
			RadiusKm: 50 + rng.Float64()*300,
		}}
	}
	for i := 0; i < rng.Intn(3); i++ {
		sc.RemoveISPs = append(sc.RemoveISPs, isps[rng.Intn(len(isps))])
	}
	for i := 0; i < rng.Intn(3); i++ {
		a := rng.Intn(m.NumNodes())
		b := rng.Intn(m.NumNodes())
		if a == b {
			continue
		}
		var tenants []string
		for j := 0; j < rng.Intn(3); j++ { // 0 = open access
			tenants = append(tenants, isps[rng.Intn(len(isps))])
		}
		sc.Additions = append(sc.Additions, Addition{
			A: m.Node(fiber.NodeID(a)).Key(), B: m.Node(fiber.NodeID(b)).Key(), Tenants: tenants,
		})
	}
	return sc
}

func TestOverlayMatchesCloneRandomized(t *testing.T) {
	ovEng, clEng := enginePair(t)
	rng := rand.New(rand.NewSource(7))
	n := 25
	if testing.Short() {
		n = 6
	}
	for trial := 0; trial < n; trial++ {
		sc := randomScenario(rng, ovEng)
		diffJSON(t, fmt.Sprintf("trial-%d", trial), evalJSON(t, ovEng, sc), evalJSON(t, clEng, sc))
	}
}

// TestOverlayEngineReuse pins scratch hygiene: one engine evaluating
// a sequence of scenarios twice (pooled workspaces, reused weight
// masks) must reproduce its own first-pass bytes exactly.
func TestOverlayEngineReuse(t *testing.T) {
	ovEng, _ := enginePair(t)
	scs := equivScenarios(t)
	first := make([][]byte, len(scs))
	for i, sc := range scs {
		first[i] = evalJSON(t, ovEng, sc)
	}
	for i, sc := range scs {
		diffJSON(t, fmt.Sprintf("reuse-%d", i), evalJSON(t, ovEng, sc), first[i])
	}
}

// TestSweepOverlayWorkerInvariance: a sweep's outcome bytes are
// identical at one worker and many, and identical to the clone
// engine's sweep.
func TestSweepOverlayWorkerInvariance(t *testing.T) {
	ovEng, clEng := enginePair(t)
	scs := equivScenarios(t)

	marshal := func(out []Outcome) []byte {
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ctx := context.Background()
	serial := marshal(Sweep(ctx, ovEng, scs, 1))
	parallel := marshal(Sweep(ctx, ovEng, scs, 8))
	diffJSON(t, "overlay 1-vs-8 workers", parallel, serial)
	cloneOut := marshal(Sweep(ctx, clEng, scs, 4))
	diffJSON(t, "overlay-vs-clone sweep", serial, cloneOut)
}
