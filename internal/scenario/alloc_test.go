package scenario

import (
	"context"
	"testing"

	"intertubes/internal/fiber"
)

// alloc_test.go guards the overlay path's allocation story: applying
// a weight mask to a warmed scratch row allocates nothing, and an
// overlay evaluation never pays for a per-scenario map clone — its
// allocation count sits far below the clone path's. The guards skip
// under -short (perf gates, not correctness) and under the race
// detector (instrumentation allocates), matching the graph package's
// convention.

func skipIfAllocsUnmeasurable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("allocation guard skipped under the race detector")
	}
}

func TestMaskWeightsZeroAllocs(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	res, mx := build(t)
	eng := New(res, mx, Options{Seed: 42})
	snap := eng.snapshot()
	snap.baseline()

	dst := make([]float64, snap.g.NumEdges())
	baseRow := snap.ispW[0]
	gains := []fiber.ConduitID{3, 7}
	cuts := mx.TopShared(5)
	if avg := testing.AllocsPerRun(100, func() {
		maskWeights(dst, baseRow, gains, cuts)
	}); avg != 0 {
		t.Fatalf("maskWeights allocates %.1f per run, want 0", avg)
	}
}

// TestOverlayEvaluateNoMapClone pins the tentpole claim: the overlay
// path never deep-copies the map. A clone of the full atlas costs
// thousands of allocations (conduit slices, tenant lists, indexes —
// twice, for the plus and final maps); the overlay evaluation of the
// same scenario must come in far below one clone, let alone two.
func TestOverlayEvaluateNoMapClone(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	res, mx := build(t)
	ovEng := New(res, mx, Options{Seed: 42})
	clEng := New(res, mx, Options{Seed: 42, CloneEval: true})
	ctx := context.Background()
	sc := Scenario{CutMostShared: 5}

	// Warm both engines (baseline memos, pooled scratch).
	if _, err := ovEng.Evaluate(ctx, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := clEng.Evaluate(ctx, sc); err != nil {
		t.Fatal(err)
	}

	ovAllocs := testing.AllocsPerRun(10, func() {
		if _, err := ovEng.Evaluate(ctx, sc); err != nil {
			t.Fatal(err)
		}
	})
	clAllocs := testing.AllocsPerRun(10, func() {
		if _, err := clEng.Evaluate(ctx, sc); err != nil {
			t.Fatal(err)
		}
	})

	// One map clone alone allocates per conduit; the overlay path must
	// be an order of magnitude below the two-clone reference.
	if ovAllocs*10 > clAllocs {
		t.Fatalf("overlay Evaluate allocates %.0f per run vs clone path %.0f — overlay path is paying for map copies",
			ovAllocs, clAllocs)
	}
}
