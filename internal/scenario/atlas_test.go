package scenario

import (
	"context"
	"math"
	"reflect"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/latency"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
)

// atlas_test.go pins the overlay row-reuse rule: a scenario atlas that
// reuses untouched baseline rows must be byte-identical to a
// from-scratch build — both over the overlay view and over the fully
// materialized perturbed map.

// sameAtlas compares two atlases row by row with exact float equality
// (+Inf entries included) plus the derived pair tables.
func sameAtlas(t *testing.T, label string, got, want *latency.Atlas) {
	t.Helper()
	if got.NumSources() != want.NumSources() {
		t.Fatalf("%s: sources %d vs %d", label, got.NumSources(), want.NumSources())
	}
	for i := 0; i < want.NumSources(); i++ {
		gr, wr := got.Row(i), want.Row(i)
		if len(gr) != len(wr) {
			t.Fatalf("%s: row %d length %d vs %d", label, i, len(gr), len(wr))
		}
		for v := range wr {
			if gr[v] != wr[v] && !(gr[v] != gr[v] && wr[v] != wr[v]) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, v, gr[v], wr[v])
			}
		}
	}
	if !reflect.DeepEqual(got.Pairs(), want.Pairs()) {
		t.Fatalf("%s: pair tables diverge", label)
	}
}

// referenceAtlases rebuilds sc's perturbation the way LatencyAtlasFor
// does and returns the two from-scratch references: a no-reuse build
// over the overlay view, and a build over the materialized map.
func referenceAtlases(t *testing.T, eng *Engine, sc Scenario) (*latency.Atlas, *latency.Atlas) {
	t.Helper()
	ctx := context.Background()
	snap := eng.snapshot()
	m := snap.res.Map
	cuts, err := resolveCutsOn(snap, sc)
	if err != nil {
		t.Fatal(err)
	}
	kept := keptISPs(snap, sc)
	pert := fiber.Perturbation{Cuts: cuts, RemoveISPs: sc.RemoveISPs}
	for _, ad := range sc.Additions {
		a, _ := m.NodeByKey(ad.A)
		b, _ := m.NodeByKey(ad.B)
		tenants := ad.Tenants
		if len(tenants) == 0 {
			tenants = kept
		}
		pert.Additions = append(pert.Additions, fiber.OverlayAddition{A: a, B: b, Tenants: tenants})
	}
	ov, err := fiber.NewOverlay(m, pert)
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := latency.BuildView(ctx, m, ov.Final(), nil, nil, latency.Options{})
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := latency.Build(ctx, ov.Materialize(), latency.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return viewed, materialized
}

func TestLatencyAtlasForDifferential(t *testing.T) {
	eng := newEngine(t, 0)
	_, mx := build(t)
	m := eng.snapshot().res.Map
	keyOf := func(id fiber.NodeID) string { return m.Node(id).Key() }
	scenarios := []struct {
		name string
		sc   Scenario
	}{
		{"empty", Scenario{}},
		{"explicit-cuts", Scenario{CutConduits: []fiber.ConduitID{0, 5, 9}}},
		{"shared-cuts", Scenario{CutMostShared: 5}},
		{"remove-isp", Scenario{RemoveISPs: []string{mx.ISPs[0]}}},
		{"addition", Scenario{Additions: []Addition{{A: keyOf(0), B: keyOf(7)}}}},
		{"mixed", Scenario{CutMostShared: 3, Additions: []Addition{{A: keyOf(2), B: keyOf(11)}}}},
	}
	ctx := context.Background()
	for _, tc := range scenarios {
		t.Run(tc.name, func(t *testing.T) {
			got, err := eng.LatencyAtlasFor(ctx, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			viewed, materialized := referenceAtlases(t, eng, tc.sc)
			sameAtlas(t, "vs overlay view", got, viewed)
			sameAtlas(t, "vs materialized map", got, materialized)
		})
	}
}

// TestLatencyAtlasForEmptyReusesEveryRow: an empty perturbation
// touches no lit component, so every baseline row is copied verbatim.
func TestLatencyAtlasForEmptyReusesEveryRow(t *testing.T) {
	eng := newEngine(t, 0)
	ctx := context.Background()
	base, _, err := eng.LatencyAtlas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	at, err := eng.LatencyAtlasFor(ctx, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if at.ReusedRows != base.NumSources() {
		t.Fatalf("ReusedRows = %d, want %d", at.ReusedRows, base.NumSources())
	}
	sameAtlas(t, "empty scenario vs baseline", at, base)
}

// TestLatencyAtlasForIslandReuse: on a two-island map, cutting the
// far island's only conduit must leave the near island's rows reused
// — the component rule recomputes only what the cut can reach.
func TestLatencyAtlasForIslandReuse(t *testing.T) {
	m := fiber.NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1000000, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 40, Lon: -98}, 1000000, -1)
	c := m.AddNode("C", "XX", geo.Point{Lat: 41, Lon: -99}, 1000000, -1)
	d := m.AddNode("D", "YY", geo.Point{Lat: 33, Lon: -84}, 1000000, -1)
	e := m.AddNode("E", "YY", geo.Point{Lat: 34, Lon: -85}, 1000000, -1)
	mk := func(x, y fiber.NodeID, corr int) fiber.ConduitID {
		id := m.EnsureConduit(x, y, corr, geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2))
		m.AddTenant(id, "X")
		return id
	}
	mk(a, b, 0)
	mk(a, c, 1)
	mk(c, b, 2)
	bridge := mk(d, e, 3)

	eng := New(&mapbuilder.Result{Map: m}, risk.Build(m, nil), Options{Seed: 42})
	ctx := context.Background()
	at, err := eng.LatencyAtlasFor(ctx, Scenario{CutConduits: []fiber.ConduitID{bridge}})
	if err != nil {
		t.Fatal(err)
	}
	if at.ReusedRows != 3 {
		t.Fatalf("ReusedRows = %d, want 3 (the untouched island)", at.ReusedRows)
	}
	_, materialized := referenceAtlases(t, eng, Scenario{CutConduits: []fiber.ConduitID{bridge}})
	sameAtlas(t, "island cut vs materialized", at, materialized)
	// The cut darkened D-E: the atlas must show them disconnected.
	if di := at.RowIndex(d); !math.IsInf(at.Row(di)[e], 1) {
		t.Fatalf("D->E after cut = %v, want +Inf", at.Row(di)[e])
	}
}

// TestLatencyAtlasMemoized: the baseline atlas is built once per
// snapshot and rebuilt only after a baseline swap.
func TestLatencyAtlasMemoized(t *testing.T) {
	res, mx := build(t)
	eng := New(res, mx, Options{Seed: 42})
	ctx := context.Background()
	at1, v1, err := eng.LatencyAtlas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	at2, v2, err := eng.LatencyAtlas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if at1 != at2 || v1 != v2 {
		t.Fatal("second LatencyAtlas call rebuilt the memoized atlas")
	}
	eng.SwapBaseline(res, mx)
	at3, v3, err := eng.LatencyAtlas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("version did not advance across SwapBaseline")
	}
	if at3 == at1 {
		t.Fatal("swapped baseline served the old snapshot's atlas")
	}
	sameAtlas(t, "same inputs across swap", at3, at1)
}
