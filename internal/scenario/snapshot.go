package scenario

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/latency"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/mitigate"
	"intertubes/internal/resilience"
	"intertubes/internal/risk"
)

// snapshot.go holds the engine's immutable baseline state. Everything
// an evaluation reads — the map, the risk matrix, the memoized
// baseline study stages, and the shared tables the copy-on-write
// overlay path consults — lives in one snapshot value behind an
// atomic pointer, so a baseline swap is a single pointer store and an
// in-flight evaluation keeps the snapshot it started with. Snapshots
// are versioned; the serving cache folds the version into its keys so
// a swapped baseline can never serve results computed against the old
// one.

// snapshot is one immutable baseline: inputs, memoized baseline
// analyses, and the overlay evaluation tables. All lazily-built state
// is guarded (sync.Once or a mutex) and append-only, so concurrent
// evaluations share one snapshot freely.
type snapshot struct {
	version uint64
	res     *mapbuilder.Result
	mx      *risk.Matrix

	baseOnce sync.Once
	base     baseline

	// Overlay-path tables, built with the baseline: the conduit graph,
	// and per matrix-ISP the unit weight table (1 on the provider's
	// conduits, +Inf elsewhere), baseline footprint, and index.
	g        *graph.Graph
	ispIdx   map[string]int
	ispW     [][]float64
	ispNodes [][]fiber.NodeID

	// Betweenness cut ranking, memoized for ResolveCuts: the full
	// positive-betweenness ordering, of which every CutMostBetween
	// request is a prefix.
	btwOnce sync.Once
	btwRank []fiber.ConduitID

	// Capacity-layer baseline (capacity.go): gravity demands, the
	// conduit capacity table, lit-capacity components, and memoized
	// per-pair baseline flows.
	capOnce sync.Once
	capBase capacityBaseline

	// All-pairs latency atlas (atlas.go), built lazily behind an
	// atomic pointer — the CSR-topology idiom: a hit is one load, a
	// miss takes the mutex, double-checks, builds once. litComp holds
	// the union-find components of the lit-conduit graph that the
	// overlay row-reuse rule consults.
	atlasMu  sync.Mutex
	atlasPtr atomic.Pointer[latency.Atlas]
	litOnce  sync.Once
	litComp  []int32

	latMu   sync.Mutex
	latBase map[int]mitigate.LatencySummary // by MaxPairs

	trafMu   sync.Mutex
	trafBase map[int]TrafficSummary // by Probes
}

// baseline is everything Evaluate diffs against, computed once per
// snapshot.
type baseline struct {
	stats   fiber.Stats
	sharing []int
	rankOf  map[string]int
	meanOf  map[string]float64
	disc    map[string]resilience.Impact
	part    map[string]int
}

func newSnapshot(version uint64, res *mapbuilder.Result, mx *risk.Matrix) *snapshot {
	return &snapshot{
		version:  version,
		res:      res,
		mx:       mx,
		latBase:  make(map[int]mitigate.LatencySummary),
		trafBase: make(map[int]TrafficSummary),
	}
}

func (s *snapshot) baseline() *baseline {
	s.baseOnce.Do(func() {
		m := s.res.Map
		b := &s.base
		b.stats = m.Stats()
		b.sharing = s.mx.SharingCounts()
		b.rankOf = make(map[string]int)
		b.meanOf = make(map[string]float64)
		for pos, r := range s.mx.Ranking() {
			b.rankOf[r.ISP] = pos + 1
			b.meanOf[r.ISP] = r.Mean
		}
		b.disc = make(map[string]resilience.Impact)
		for _, im := range resilience.CutImpact(m, s.mx, nil) {
			b.disc[im.ISP] = im
		}
		b.part = make(map[string]int)
		for _, pc := range resilience.PartitionCosts(m, s.mx.ISPs) {
			b.part[pc.ISP] = pc.MinCuts
		}

		// Overlay tables ride along: the overlay path needs them on its
		// first evaluation, which also needs the baseline itself.
		s.g = m.Graph()
		s.ispIdx = make(map[string]int, len(s.mx.ISPs))
		s.ispW = make([][]float64, len(s.mx.ISPs))
		s.ispNodes = make([][]fiber.NodeID, len(s.mx.ISPs))
		inf := math.Inf(1)
		for i, isp := range s.mx.ISPs {
			s.ispIdx[isp] = i
			w := make([]float64, s.g.NumEdges())
			for eid := range w {
				if m.Conduit(fiber.ConduitID(eid)).HasTenant(isp) {
					w[eid] = 1
				} else {
					w[eid] = inf
				}
			}
			s.ispW[i] = w
			s.ispNodes[i] = m.NodesOf(isp)
		}
	})
	return &s.base
}

// betweennessRank memoizes the full betweenness cut ordering; a
// CutMostBetween=k clause resolves to its first k entries, exactly
// what resilience.TargetedByBetweenness(m, k) returns.
func (s *snapshot) betweennessRank() []fiber.ConduitID {
	s.btwOnce.Do(func() {
		s.btwRank = resilience.TargetedByBetweenness(s.res.Map, s.res.Map.NumConduits())
	})
	return s.btwRank
}

// baselineLatency memoizes the snapshot's baseline latency summary per
// pair cap. A canceled computation is not cached; the next caller
// recomputes.
func (e *Engine) baselineLatency(ctx context.Context, snap *snapshot, maxPairs int) (mitigate.LatencySummary, error) {
	snap.latMu.Lock()
	if s, ok := snap.latBase[maxPairs]; ok {
		snap.latMu.Unlock()
		return s, nil
	}
	snap.latMu.Unlock()
	study, err := mitigate.LatencyStudyCtx(ctx, snap.res.Map, snap.res.Atlas, mitigate.LatencyOptions{
		MaxPairs: maxPairs,
		Workers:  e.opts.Workers,
	})
	if err != nil {
		return mitigate.LatencySummary{}, err
	}
	s := mitigate.Summarize(study)
	snap.latMu.Lock()
	snap.latBase[maxPairs] = s
	snap.latMu.Unlock()
	return s, nil
}

// baselineTraffic memoizes the snapshot's baseline traffic overlay per
// campaign size. A canceled campaign is not cached; the next caller
// recomputes.
func (e *Engine) baselineTraffic(ctx context.Context, snap *snapshot, probes int) (TrafficSummary, error) {
	snap.trafMu.Lock()
	if s, ok := snap.trafBase[probes]; ok {
		snap.trafMu.Unlock()
		return s, nil
	}
	snap.trafMu.Unlock()
	s, err := e.trafficOn(ctx, snap.res, probes)
	if err != nil {
		return TrafficSummary{}, err
	}
	snap.trafMu.Lock()
	snap.trafBase[probes] = s
	snap.trafMu.Unlock()
	return s, nil
}
