package scenario

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"intertubes/internal/fiber"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHit(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	sc := Scenario{Preset: "level3-exit"}

	before := evaluations.Value()
	r1, err := c.Eval(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Different spelling, same content: must hit.
	r2, err := c.Eval(ctx, Scenario{Name: "other spelling", RemoveISPs: []string{"Level 3"}})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("logically equal scenarios should share one cached *Result")
	}
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("evaluations = %d, want 1 (second call must be a cache hit)", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(newEngine(t, 0), 2)
	ctx := context.Background()
	eval := func(cid int) {
		t.Helper()
		if _, err := c.Eval(ctx, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(cid)}}); err != nil {
			t.Fatal(err)
		}
	}
	eval(0)
	eval(1)
	eval(0) // touch 0: now 1 is least recently used
	eval(2) // evicts 1

	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	before := evaluations.Value()
	eval(0) // still cached
	if got := evaluations.Value() - before; got != 0 {
		t.Errorf("scenario 0 was evicted (evaluations +%d)", got)
	}
	eval(1) // was evicted: re-evaluates
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("scenario 1 should have been evicted and re-run (+%d)", got)
	}
}

func TestCacheEntriesMRUFirst(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	a := Scenario{Name: "a", CutConduits: []fiber.ConduitID{0}}
	b := Scenario{Name: "b", CutConduits: []fiber.ConduitID{1}}
	if _, err := c.Eval(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval(ctx, b); err != nil {
		t.Fatal(err)
	}
	es := c.Entries()
	if len(es) != 2 || es[0].Name != "b" || es[1].Name != "a" {
		t.Errorf("Entries = %+v, want MRU-first [b a]", es)
	}
	if es[0].ConduitsCut != 1 {
		t.Errorf("summary headline = %+v", es[0])
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	bad := Scenario{CutConduits: []fiber.ConduitID{1 << 30}}
	if _, err := c.Eval(ctx, bad); err == nil {
		t.Fatal("out-of-range cut should fail")
	}
	if c.Len() != 0 {
		t.Errorf("error was cached: Len = %d", c.Len())
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	sc := Scenario{Preset: "backbone-attack"}

	const callers = 16
	before := evaluations.Value()
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Eval(ctx, sc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("%d concurrent identical queries cost %d evaluations, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result", i)
		}
	}
}

func TestCacheConcurrentDistinct(t *testing.T) {
	c := NewCache(newEngine(t, 0), 32)
	ctx := context.Background()

	const distinct = 6
	before := evaluations.Value()
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		for j := 0; j < 3; j++ { // three callers per scenario
			wg.Add(1)
			go func(cid int) {
				defer wg.Done()
				if _, err := c.Eval(ctx, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(cid)}}); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	if got := evaluations.Value() - before; got != distinct {
		t.Errorf("evaluations = %d, want %d (one per distinct scenario)", got, distinct)
	}
	if c.Len() != distinct {
		t.Errorf("Len = %d, want %d", c.Len(), distinct)
	}
}

func TestCacheResolveError(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	if _, err := c.Eval(context.Background(), Scenario{Preset: "nope"}); err == nil {
		t.Error("unknown preset should fail before touching the cache")
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(newEngine(t, 0), 0)
	if c.cap != DefaultCacheCapacity {
		t.Errorf("cap = %d, want %d", c.cap, DefaultCacheCapacity)
	}
}

// TestCacheLeaderCancelFollowerGetsResult pins the singleflight
// leader-context fix: the caller that started the evaluation hanging
// up must not poison the result a coalesced follower receives.
func TestCacheLeaderCancelFollowerGetsResult(t *testing.T) {
	eng := newEngine(t, 0)
	c := NewCache(eng, 8)
	sc := Scenario{Preset: "backbone-attack"}

	started := make(chan struct{})
	release := make(chan struct{})
	eng.SetEvalHook(func(context.Context) {
		close(started)
		<-release
	})
	defer eng.SetEvalHook(nil)

	evalsBefore := evaluations.Value()
	coalescedBefore := cacheCoalesced.Value()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Eval(leaderCtx, sc)
		leaderErr <- err
	}()
	<-started

	type outcome struct {
		res *Result
		err error
	}
	follower := make(chan outcome, 1)
	go func() {
		r, err := c.Eval(context.Background(), sc)
		follower <- outcome{res: r, err: err}
	}()
	waitFor(t, "follower to join the flight", func() bool {
		return cacheCoalesced.Value() > coalescedBefore
	})

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	close(release)

	out := <-follower
	if out.err != nil {
		t.Fatalf("follower err = %v, want nil — leader cancellation poisoned the flight", out.err)
	}
	if out.res == nil || out.res.Hash == "" {
		t.Fatalf("follower got %+v, want a real evaluated Result", out.res)
	}
	if got := evaluations.Value() - evalsBefore; got != 1 {
		t.Errorf("evaluations = %d, want 1 (follower must reuse the flight)", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (completed flight should be cached)", c.Len())
	}
}

// TestCacheAbandonedFlightCanceled pins the other half of the flight
// lifecycle: when every waiter hangs up, the evaluation's context is
// canceled so the work actually stops, the cancellation is counted,
// and the hash is immediately free for a fresh evaluation.
func TestCacheAbandonedFlightCanceled(t *testing.T) {
	eng := newEngine(t, 0)
	c := NewCache(eng, 8)
	sc := Scenario{Preset: "backbone-attack"}

	observed := make(chan error, 1)
	eng.SetEvalHook(func(ctx context.Context) {
		<-ctx.Done()
		observed <- ctx.Err()
	})

	canceledBefore := evaluationsCanceled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Eval(ctx, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := <-observed; !errors.Is(err, context.Canceled) {
		t.Fatalf("flight ctx err = %v, want canceled (abandoned work must stop)", err)
	}
	waitFor(t, "canceled-evaluations counter", func() bool {
		return evaluationsCanceled.Value() > canceledBefore
	})
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0 (canceled evaluation must not be cached)", c.Len())
	}

	eng.SetEvalHook(nil)
	if _, err := c.Eval(context.Background(), sc); err != nil {
		t.Fatalf("fresh evaluation after abandonment failed: %v", err)
	}
}

// TestCachePanicPropagatesToWaiter: the evaluation runs on a flight
// goroutine, so a panic there must be re-raised in the waiter's
// goroutine (where HTTP panic containment can see it) and must not
// wedge the hash.
func TestCachePanicPropagatesToWaiter(t *testing.T) {
	eng := newEngine(t, 0)
	c := NewCache(eng, 8)
	sc := Scenario{Preset: "backbone-attack"}
	eng.SetEvalHook(func(context.Context) { panic("boom") })

	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recover = %v, want boom", r)
			}
		}()
		_, _ = c.Eval(context.Background(), sc)
		t.Error("Eval returned instead of panicking")
	}()

	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0 (panicked evaluation must not be cached)", c.Len())
	}
	eng.SetEvalHook(nil)
	if _, err := c.Eval(context.Background(), sc); err != nil {
		t.Fatalf("cache unusable after a panicked flight: %v", err)
	}
}

// Exercise the cache under the race detector with mixed hits, misses,
// and coalesced queries.
func TestCacheRace(t *testing.T) {
	c := NewCache(newEngine(t, 0), 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(i % 6)}}
			if _, err := c.Eval(ctx, sc); err != nil {
				t.Error(err)
			}
			c.Entries()
			c.Len()
		}(i)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}
