package scenario

import (
	"context"
	"sync"
	"testing"

	"intertubes/internal/fiber"
)

func TestCacheHit(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	sc := Scenario{Preset: "level3-exit"}

	before := evaluations.Value()
	r1, err := c.Eval(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Different spelling, same content: must hit.
	r2, err := c.Eval(ctx, Scenario{Name: "other spelling", RemoveISPs: []string{"Level 3"}})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("logically equal scenarios should share one cached *Result")
	}
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("evaluations = %d, want 1 (second call must be a cache hit)", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(newEngine(t, 0), 2)
	ctx := context.Background()
	eval := func(cid int) {
		t.Helper()
		if _, err := c.Eval(ctx, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(cid)}}); err != nil {
			t.Fatal(err)
		}
	}
	eval(0)
	eval(1)
	eval(0) // touch 0: now 1 is least recently used
	eval(2) // evicts 1

	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	before := evaluations.Value()
	eval(0) // still cached
	if got := evaluations.Value() - before; got != 0 {
		t.Errorf("scenario 0 was evicted (evaluations +%d)", got)
	}
	eval(1) // was evicted: re-evaluates
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("scenario 1 should have been evicted and re-run (+%d)", got)
	}
}

func TestCacheEntriesMRUFirst(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	a := Scenario{Name: "a", CutConduits: []fiber.ConduitID{0}}
	b := Scenario{Name: "b", CutConduits: []fiber.ConduitID{1}}
	if _, err := c.Eval(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval(ctx, b); err != nil {
		t.Fatal(err)
	}
	es := c.Entries()
	if len(es) != 2 || es[0].Name != "b" || es[1].Name != "a" {
		t.Errorf("Entries = %+v, want MRU-first [b a]", es)
	}
	if es[0].ConduitsCut != 1 {
		t.Errorf("summary headline = %+v", es[0])
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	bad := Scenario{CutConduits: []fiber.ConduitID{1 << 30}}
	if _, err := c.Eval(ctx, bad); err == nil {
		t.Fatal("out-of-range cut should fail")
	}
	if c.Len() != 0 {
		t.Errorf("error was cached: Len = %d", c.Len())
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	ctx := context.Background()
	sc := Scenario{Preset: "backbone-attack"}

	const callers = 16
	before := evaluations.Value()
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Eval(ctx, sc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if got := evaluations.Value() - before; got != 1 {
		t.Errorf("%d concurrent identical queries cost %d evaluations, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result", i)
		}
	}
}

func TestCacheConcurrentDistinct(t *testing.T) {
	c := NewCache(newEngine(t, 0), 32)
	ctx := context.Background()

	const distinct = 6
	before := evaluations.Value()
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		for j := 0; j < 3; j++ { // three callers per scenario
			wg.Add(1)
			go func(cid int) {
				defer wg.Done()
				if _, err := c.Eval(ctx, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(cid)}}); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
	if got := evaluations.Value() - before; got != distinct {
		t.Errorf("evaluations = %d, want %d (one per distinct scenario)", got, distinct)
	}
	if c.Len() != distinct {
		t.Errorf("Len = %d, want %d", c.Len(), distinct)
	}
}

func TestCacheResolveError(t *testing.T) {
	c := NewCache(newEngine(t, 0), 8)
	if _, err := c.Eval(context.Background(), Scenario{Preset: "nope"}); err == nil {
		t.Error("unknown preset should fail before touching the cache")
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(newEngine(t, 0), 0)
	if c.cap != DefaultCacheCapacity {
		t.Errorf("cap = %d, want %d", c.cap, DefaultCacheCapacity)
	}
}

// Exercise the cache under the race detector with mixed hits, misses,
// and coalesced queries.
func TestCacheRace(t *testing.T) {
	c := NewCache(newEngine(t, 0), 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(i % 6)}}
			if _, err := c.Eval(ctx, sc); err != nil {
				t.Error(err)
			}
			c.Entries()
			c.Len()
		}(i)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}
