package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/mitigate"
	"intertubes/internal/obs"
	"intertubes/internal/resilience"
	"intertubes/internal/risk"
	"intertubes/internal/traceroute"
)

// engine.go evaluates a canonical Scenario against the baseline study
// into a Result of deltas. Evaluation is pure and deterministic: the
// same scenario against the same baseline yields the same Result for
// any worker count, which is what makes the hash a safe cache key and
// Sweep's bit-identical contract hold.
//
// Two evaluation paths produce bit-identical Results. The default
// copy-on-write overlay path (overlay_eval.go) records the scenario's
// delta over the shared snapshot and recomputes only the stages the
// delta touches. The clone path here deep-copies the map per scenario
// and re-runs everything; it is the executable specification the
// overlay path is differentially tested against, selectable with
// Options.CloneEval.

var evaluations = obs.GetCounter("scenario_evaluations_total",
	"Scenario evaluations actually executed (cache hits and singleflight followers excluded).")

var evaluationsCanceled = obs.GetCounter("scenario_evaluations_canceled_total",
	"Scenario evaluations aborted by context cancellation or deadline before completing.")

// Options fixes the baseline knobs scenario evaluation inherits from
// the study.
type Options struct {
	// Seed is the study seed; the traffic overlay derives its campaign
	// stream from it exactly as the baseline campaign does.
	Seed int64
	// Probes is the default campaign size for IncludeTraffic scenarios
	// (overridable per scenario).
	Probes int
	// LatencyMaxPairs is the default pair cap for IncludeLatency
	// scenarios (overridable per scenario).
	LatencyMaxPairs int
	// Workers bounds the worker pool used by the heavy sub-analyses.
	// Results are bit-identical for any value.
	Workers int
	// CloneEval selects the reference clone-per-scenario evaluation
	// path instead of the copy-on-write overlay path. Results are
	// bit-identical either way; the clone path exists as the
	// specification the overlay is differentially tested against.
	CloneEval bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Probes == 0 {
		o.Probes = 200000
	}
	if o.LatencyMaxPairs == 0 {
		o.LatencyMaxPairs = 3000
	}
	return o
}

// Engine evaluates scenarios against one immutable baseline snapshot.
// It is safe for concurrent use: the snapshot is read-only (its lazy
// memos are internally synchronized), and SwapBaseline replaces it
// atomically without disturbing in-flight evaluations.
type Engine struct {
	opts Options

	snap atomic.Pointer[snapshot]

	hookMu   sync.Mutex
	evalHook func(ctx context.Context)
}

// New builds an engine over a completed map build and its risk
// matrix.
func New(res *mapbuilder.Result, mx *risk.Matrix, opts Options) *Engine {
	e := &Engine{opts: opts.withDefaults()}
	e.snap.Store(newSnapshot(1, res, mx))
	return e
}

// snapshot returns the current baseline snapshot. Callers that make
// several reads against one baseline (an evaluation, a sweep) load it
// once and pass it down, so a concurrent swap cannot tear them.
func (e *Engine) snapshot() *snapshot { return e.snap.Load() }

// Matrix returns the current baseline's risk matrix.
func (e *Engine) Matrix() *risk.Matrix { return e.snapshot().mx }

// BaselineVersion returns the current snapshot's version; it starts
// at 1 and increments on every SwapBaseline.
func (e *Engine) BaselineVersion() uint64 { return e.snapshot().version }

// SwapBaseline atomically replaces the engine's baseline with a new
// map build and matrix. In-flight evaluations finish against the
// snapshot they started with; subsequent evaluations see the new one.
// The version bump makes stale cached results unreachable.
func (e *Engine) SwapBaseline(res *mapbuilder.Result, mx *risk.Matrix) {
	for {
		old := e.snap.Load()
		next := newSnapshot(old.version+1, res, mx)
		if e.snap.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetEvalHook installs fn to run at the start of every evaluation
// (after the executed-evaluations counter increments), with the
// evaluation's context. It exists for fault-injection tests — blocking
// an evaluation, observing its cancellation, or panicking mid-stage —
// and must not be used to mutate engine state. nil removes the hook.
func (e *Engine) SetEvalHook(fn func(ctx context.Context)) {
	e.hookMu.Lock()
	e.evalHook = fn
	e.hookMu.Unlock()
}

func (e *Engine) runEvalHook(ctx context.Context) {
	e.hookMu.Lock()
	fn := e.evalHook
	e.hookMu.Unlock()
	if fn != nil {
		fn(ctx)
	}
}

func (e *Engine) trafficOn(ctx context.Context, res *mapbuilder.Result, probes int) (TrafficSummary, error) {
	camp, err := traceroute.RunCtx(ctx, res, traceroute.Options{
		N:       probes,
		Seed:    e.opts.Seed + 2,
		Workers: e.opts.Workers,
	})
	if err != nil {
		return TrafficSummary{}, err
	}
	pub, over := camp.SharingWithTraffic()
	return TrafficSummary{
		Conduits:      len(pub),
		MeanPublished: mean(pub),
		MeanOverlaid:  mean(over),
	}, nil
}

func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// ---- Result types ----

// StatsDelta carries Figure 1's headline numbers before and after.
type StatsDelta struct {
	Before fiber.Stats `json:"before"`
	After  fiber.Stats `json:"after"`
}

// SharingShift is one k of Figure 6's distribution, before and after.
type SharingShift struct {
	K      int `json:"k"`
	Before int `json:"before"`
	After  int `json:"after"`
}

// RankShift is one provider's Figure 7 movement. A removed provider
// does not appear; a provider whose conduits all went dark keeps a
// row with MeanAfter 0.
type RankShift struct {
	ISP        string  `json:"isp"`
	MeanBefore float64 `json:"meanBefore"`
	MeanAfter  float64 `json:"meanAfter"`
	RankBefore int     `json:"rankBefore"`
	RankAfter  int     `json:"rankAfter"`
}

// Disconnection is one provider's connectivity damage: the fraction
// of its baseline-footprint node pairs disconnected, before vs after.
type Disconnection struct {
	ISP string `json:"isp"`
	// CutsHit is how many cut conduits the provider occupied in the
	// baseline map.
	CutsHit int     `json:"cutsHit"`
	Before  float64 `json:"before"`
	After   float64 `json:"after"`
	// LargestComponent is the fraction of the provider's nodes left
	// in its largest surviving component.
	LargestComponent float64 `json:"largestComponent"`
}

// PartitionShift is one provider's minimum-cuts-to-partition, before
// vs after.
type PartitionShift struct {
	ISP    string `json:"isp"`
	Before int    `json:"before"`
	After  int    `json:"after"`
}

// LatencyDelta compares the §5.3 latency summaries.
type LatencyDelta struct {
	MaxPairs int                     `json:"maxPairs"`
	Before   mitigate.LatencySummary `json:"before"`
	After    mitigate.LatencySummary `json:"after"`
}

// TrafficSummary condenses a traceroute overlay: how many published
// conduits exist and the mean sharing degree with and without the
// traffic-inferred tenants.
type TrafficSummary struct {
	Conduits      int     `json:"conduits"`
	MeanPublished float64 `json:"meanPublished"`
	MeanOverlaid  float64 `json:"meanOverlaid"`
}

// TrafficDelta compares traffic overlays at one campaign size.
type TrafficDelta struct {
	Probes int            `json:"probes"`
	Before TrafficSummary `json:"before"`
	After  TrafficSummary `json:"after"`
}

// Result is the evaluated scenario: the canonical spec, its hash, the
// resolved perturbation, and every delta against the baseline.
type Result struct {
	Hash     string   `json:"hash"`
	Scenario Scenario `json:"scenario"`

	// Cut is the resolved cut set (union of all cut clauses), sorted.
	Cut          []fiber.ConduitID `json:"cut,omitempty"`
	ConduitsCut  int               `json:"conduitsCut"`
	TenanciesCut int               `json:"tenanciesCut"`
	// ISPsRemoved / LinksRemoved account the provider-removal clause;
	// ConduitsAdded the additions actually materialized.
	ISPsRemoved   []string `json:"ispsRemoved,omitempty"`
	LinksRemoved  int      `json:"linksRemoved"`
	ConduitsAdded int      `json:"conduitsAdded"`

	Stats         StatsDelta       `json:"stats"`
	Sharing       []SharingShift   `json:"sharing"`
	Ranking       []RankShift      `json:"ranking"`
	Disconnection []Disconnection  `json:"disconnection"`
	Partition     []PartitionShift `json:"partition"`
	// LostTraffic is the capacity-layer delta: Gbps of gravity-model
	// demand the perturbation strands (capacity.go). Always present.
	LostTraffic *LostTraffic  `json:"lostTraffic"`
	Latency     *LatencyDelta `json:"latency,omitempty"`
	Traffic     *TrafficDelta `json:"traffic,omitempty"`
}

// MeanDisconnectionAfter averages the after-column of the
// disconnection table — the scalar headline of a cut scenario.
func (r *Result) MeanDisconnectionAfter() float64 {
	if len(r.Disconnection) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.Disconnection {
		sum += d.After
	}
	return sum / float64(len(r.Disconnection))
}

// ---- Evaluation ----

// Evaluate resolves, canonicalizes, and evaluates the scenario
// against the current baseline snapshot. It is deterministic: equal
// scenarios produce equal Results, bit for bit, at any Workers
// setting and on either evaluation path.
//
// Cancellation is cooperative: ctx is checked between stages and, via
// the ctx-aware par pool, at every chunk grant inside the heavy scans.
// A canceled evaluation returns ctx.Err() (and counts toward
// scenario_evaluations_canceled_total); it never returns a partial
// Result, so determinism of completed evaluations is unaffected.
func (e *Engine) Evaluate(ctx context.Context, sc Scenario) (*Result, error) {
	return e.evaluateOn(ctx, e.snapshot(), sc)
}

// evaluateOn is the shared evaluation entry: every caller that has
// pinned a snapshot (Evaluate, the cache's flights, Sweep) funnels
// through here, so one baseline swap cannot split an evaluation
// across two baselines.
func (e *Engine) evaluateOn(ctx context.Context, snap *snapshot, sc Scenario) (_ *Result, err error) {
	sc, err = Resolve(sc)
	if err != nil {
		return nil, err
	}
	evaluations.Inc()
	defer func() {
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			evaluationsCanceled.Inc()
		}
	}()
	// Trace, not StartTrace: the evaluation joins an enclosing recorded
	// trace (an HTTP scenario request, a whatif run, a sweep) but never
	// starts one itself, keeping raw Evaluate loops recorder-free.
	ctx, sp := obs.Trace(ctx, "scenario.evaluate")
	defer sp.End()
	e.runEvalHook(ctx)

	path := "overlay"
	if e.opts.CloneEval {
		path = "clone"
	}
	hash := ""
	if sp.TraceID() != "" {
		// The hash only feeds attribution (span attrs, pprof labels);
		// computing it is skipped entirely when nothing records.
		hash = sc.Hash()
		sp.SetAttr("scenario_hash", hash)
		sp.SetAttr("path", path)
		sp.SetAttrInt("baseline_version", int64(snap.version))
	}

	var res *Result
	run := func(ctx context.Context) {
		if e.opts.CloneEval {
			res, err = e.evaluateClone(ctx, snap, sc)
		} else {
			res, err = e.evaluateOverlay(ctx, snap, sc)
		}
	}
	if hash != "" {
		// pprof labels make CPU profile samples (including par worker
		// goroutines, which adopt the labels at spawn) attributable to
		// the evaluation. Only paid when the evaluation is recorded.
		pprof.Do(ctx, pprof.Labels("stage", "scenario.evaluate", "scenario_hash", hash), run)
	} else {
		run(ctx)
	}
	if err != nil {
		return nil, err
	}
	sp.SetItems(int64(len(res.Cut) + res.LinksRemoved + res.ConduitsAdded))
	return res, nil
}

// evaluateClone is the reference path: clone the map, mutate, re-run
// every analysis.
func (e *Engine) evaluateClone(ctx context.Context, snap *snapshot, sc Scenario) (*Result, error) {
	// checkpoint guards stage boundaries: the cheap stages below run a
	// few hundred microseconds each, so between-stage checks plus the
	// in-scan chunk-grant checks bound cancellation latency without a
	// determinism cost.
	checkpoint := func() error { return ctx.Err() }
	if err := checkpoint(); err != nil {
		return nil, err
	}

	m := snap.res.Map
	base := snap.baseline()

	cuts, err := resolveCutsOn(snap, sc)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Hash:        sc.Hash(),
		Scenario:    sc,
		Cut:         cuts,
		ConduitsCut: len(cuts),
		ISPsRemoved: sc.RemoveISPs,
	}
	for _, cid := range cuts {
		res.TenanciesCut += len(m.Conduit(cid).Tenants)
	}

	// pmPlus: removals and additions applied, cut conduits still lit —
	// the topology used for connectivity, where a severed node must
	// still count against its provider's pair total.
	pmPlus := m.Clone()
	for _, isp := range sc.RemoveISPs {
		res.LinksRemoved += pmPlus.RemoveISP(isp)
	}
	kept := keptISPs(snap, sc)
	for _, ad := range sc.Additions {
		if err := applyAddition(pmPlus, ad, kept); err != nil {
			return nil, err
		}
		res.ConduitsAdded++
	}

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// pm: the fully perturbed map — cuts go dark on top of pmPlus.
	pm := pmPlus.Clone()
	for _, cid := range cuts {
		pm.ClearTenants(cid)
	}

	mx2 := risk.Build(pm, kept)

	res.Stats = StatsDelta{Before: base.stats, After: pm.Stats()}
	fillSharing(res, base, mx2)
	fillRanking(res, base, mx2)

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Per-ISP disconnection: pmPlus keeps full footprints, the cut set
	// is excluded by weight inside CutImpact.
	fillDisconnection(res, base, resilience.CutImpact(pmPlus, mx2, cuts))

	// Partition cost on the fully perturbed map, most fragile first.
	for _, pc := range resilience.PartitionCosts(pm, kept) {
		res.Partition = append(res.Partition, PartitionShift{
			ISP:    pc.ISP,
			Before: base.part[pc.ISP],
			After:  pc.MinCuts,
		})
	}

	if err := checkpoint(); err != nil {
		return nil, err
	}

	// Capacity stage: the gravity demand matrix re-flowed over the
	// fully perturbed map's own graph — the executable spec the
	// overlay path's touched-component reuse is tested against.
	res.LostTraffic = lostTrafficClone(snap, pm)

	if err := e.latencyStage(ctx, snap, sc, pm, res); err != nil {
		return nil, err
	}
	if err := e.trafficStage(ctx, snap, sc, pm, res); err != nil {
		return nil, err
	}
	return res, nil
}

// keptISPs returns the matrix providers that survive the scenario's
// removal clause, in matrix order.
func keptISPs(snap *snapshot, sc Scenario) []string {
	kept := make([]string, 0, len(snap.mx.ISPs))
	removed := make(map[string]bool, len(sc.RemoveISPs))
	for _, isp := range sc.RemoveISPs {
		removed[isp] = true
	}
	for _, isp := range snap.mx.ISPs {
		if !removed[isp] {
			kept = append(kept, isp)
		}
	}
	return kept
}

// fillSharing writes the Figure 6 distribution shift.
func fillSharing(res *Result, base *baseline, mx2 *risk.Matrix) {
	after := mx2.SharingCounts()
	n := len(base.sharing)
	if len(after) > n {
		n = len(after)
	}
	for k := 1; k <= n; k++ {
		s := SharingShift{K: k}
		if k <= len(base.sharing) {
			s.Before = base.sharing[k-1]
		}
		if k <= len(after) {
			s.After = after[k-1]
		}
		res.Sharing = append(res.Sharing, s)
	}
}

// fillRanking writes the Figure 7 movements, in after-ranking order.
func fillRanking(res *Result, base *baseline, mx2 *risk.Matrix) {
	for pos, r := range mx2.Ranking() {
		res.Ranking = append(res.Ranking, RankShift{
			ISP:        r.ISP,
			MeanBefore: base.meanOf[r.ISP],
			MeanAfter:  r.Mean,
			RankBefore: base.rankOf[r.ISP],
			RankAfter:  pos + 1,
		})
	}
}

// fillDisconnection writes the per-ISP connectivity damage table from
// an impact list already in CutImpact's order.
func fillDisconnection(res *Result, base *baseline, impacts []resilience.Impact) {
	for _, im := range impacts {
		res.Disconnection = append(res.Disconnection, Disconnection{
			ISP:              im.ISP,
			CutsHit:          im.CutsHit,
			Before:           base.disc[im.ISP].DisconnectedPairs,
			After:            im.DisconnectedPairs,
			LargestComponent: im.LargestComponent,
		})
	}
}

// latencyStage runs the §5.3 latency comparison when the scenario
// asks for it. pm is the fully perturbed map.
func (e *Engine) latencyStage(ctx context.Context, snap *snapshot, sc Scenario, pm *fiber.Map, res *Result) error {
	if !sc.IncludeLatency {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx, sp := obs.Trace(ctx, "scenario.stage.latency")
	defer sp.End()
	maxPairs := e.opts.LatencyMaxPairs
	if sc.Overrides.LatencyMaxPairs > 0 {
		maxPairs = sc.Overrides.LatencyMaxPairs
	}
	afterStudy, err := mitigate.LatencyStudyCtx(ctx, pm, snap.res.Atlas, mitigate.LatencyOptions{
		MaxPairs: maxPairs,
		Workers:  e.opts.Workers,
	})
	if err != nil {
		return err
	}
	before, err := e.baselineLatency(ctx, snap, maxPairs)
	if err != nil {
		return err
	}
	res.Latency = &LatencyDelta{
		MaxPairs: maxPairs,
		Before:   before,
		After:    mitigate.Summarize(afterStudy),
	}
	return nil
}

// trafficStage runs the traffic-overlay comparison when the scenario
// asks for it. pm is the fully perturbed map.
func (e *Engine) trafficStage(ctx context.Context, snap *snapshot, sc Scenario, pm *fiber.Map, res *Result) error {
	if !sc.IncludeTraffic {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx, sp := obs.Trace(ctx, "scenario.stage.traffic")
	defer sp.End()
	probes := e.opts.Probes
	if sc.Overrides.Probes > 0 {
		probes = sc.Overrides.Probes
	}
	res2 := *snap.res
	res2.Map = pm
	before, err := e.baselineTraffic(ctx, snap, probes)
	if err != nil {
		return err
	}
	after, err := e.trafficOn(ctx, &res2, probes)
	if err != nil {
		return err
	}
	res.Traffic = &TrafficDelta{
		Probes: probes,
		Before: before,
		After:  after,
	}
	return nil
}

// ResolveCuts materializes the scenario's cut clauses against the
// current baseline map into one sorted, de-duplicated conduit set.
func (e *Engine) ResolveCuts(sc Scenario) ([]fiber.ConduitID, error) {
	return resolveCutsOn(e.snapshot(), sc)
}

func resolveCutsOn(snap *snapshot, sc Scenario) ([]fiber.ConduitID, error) {
	m := snap.res.Map
	var cuts []fiber.ConduitID
	for _, cid := range sc.CutConduits {
		if int(cid) >= len(m.Conduits) {
			return nil, fmt.Errorf("scenario: conduit %d out of range (map has %d)", cid, len(m.Conduits))
		}
		cuts = append(cuts, cid)
	}
	if sc.CutMostShared > 0 {
		cuts = append(cuts, snap.mx.TopShared(sc.CutMostShared)...)
	}
	if sc.CutMostBetween > 0 {
		rank := snap.betweennessRank()
		k := sc.CutMostBetween
		if k > len(rank) {
			k = len(rank)
		}
		cuts = append(cuts, rank[:k]...)
	}
	for _, r := range sc.Regions {
		cuts = append(cuts, resilience.ConduitsInRegion(m, resilience.Region{
			Center:   geo.Point{Lat: r.Lat, Lon: r.Lon},
			RadiusKm: r.RadiusKm,
		})...)
	}
	return dedupeIDs(cuts), nil
}

// applyAddition materializes one new build on the perturbed map. An
// empty tenant list means open access: every kept baseline provider
// lights the new conduit.
func applyAddition(pm *fiber.Map, ad Addition, kept []string) error {
	a, ok := pm.NodeByKey(ad.A)
	if !ok {
		return fmt.Errorf("scenario: unknown node %q in addition", ad.A)
	}
	b, ok := pm.NodeByKey(ad.B)
	if !ok {
		return fmt.Errorf("scenario: unknown node %q in addition", ad.B)
	}
	path := geo.Polyline{pm.Node(a).Loc, pm.Node(b).Loc}
	cid := pm.EnsureConduit(a, b, -1, path)
	tenants := ad.Tenants
	if len(tenants) == 0 {
		tenants = kept
	}
	for _, isp := range tenants {
		pm.AddTenant(cid, isp)
	}
	return nil
}

// FromAdditions converts the §5.2 optimizer's chosen builds into
// scenario additions (open access, matching the paper's framing where
// any provider may re-route over a new conduit).
func FromAdditions(m *fiber.Map, adds []mitigate.Addition) []Addition {
	out := make([]Addition, 0, len(adds))
	for _, ad := range adds {
		out = append(out, Addition{
			A: m.Node(ad.A).Key(),
			B: m.Node(ad.B).Key(),
		})
	}
	return out
}
