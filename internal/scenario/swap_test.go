package scenario

import (
	"context"
	"testing"

	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
)

// swap_test.go pins the snapshot-versioned cache keys: after a
// SwapBaseline, a cached result computed against the old baseline
// must never be served for the new one, and vice versa when entries
// for both versions coexist.

func TestCacheSwapBaselineNoStaleResults(t *testing.T) {
	res, mx := build(t)
	eng := New(res, mx, Options{Seed: 42})
	c := NewCache(eng, 8)
	ctx := context.Background()
	sc := Scenario{} // zero scenario: Result.Stats mirrors the baseline

	if v := eng.BaselineVersion(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	r1, err := c.Eval(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	// A distinct baseline: same atlas, one provider gone.
	m2 := res.Map.Clone()
	m2.RemoveISP(mx.ISPs[0])
	res2 := *res
	res2.Map = m2
	mx2 := risk.Build(m2, nil)
	eng.SwapBaseline(&res2, mx2)
	if v := eng.BaselineVersion(); v != 2 {
		t.Fatalf("version after swap = %d, want 2", v)
	}

	before := evaluations.Value()
	r2, err := c.Eval(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := evaluations.Value() - before; got != 1 {
		t.Fatalf("evaluations after swap = %d, want 1 (stale cache entry served)", got)
	}
	if r2 == r1 {
		t.Fatal("swap served the old baseline's cached *Result")
	}
	if r2.Stats.Before == r1.Stats.Before {
		t.Error("post-swap result still diffs against the old baseline stats")
	}
	if r2.Stats.Before.ISPs != r1.Stats.Before.ISPs-1 {
		t.Errorf("post-swap baseline ISPs = %d, want %d",
			r2.Stats.Before.ISPs, r1.Stats.Before.ISPs-1)
	}

	// Both versions' entries coexist under distinct keys; hitting the
	// new baseline again is a pure cache hit.
	if c.Len() != 2 {
		t.Errorf("cache Len = %d, want 2 (one entry per version)", c.Len())
	}
	before = evaluations.Value()
	r3, err := c.Eval(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r2 || evaluations.Value() != before {
		t.Error("repeat query against the swapped baseline should hit the cache")
	}

	// Listings expose the scenario content hash, not the internal
	// version-prefixed key.
	for _, s := range c.Entries() {
		if s.Hash != sc.Hash() {
			t.Errorf("Summary.Hash = %q, want scenario hash %q", s.Hash, sc.Hash())
		}
	}
}

func TestSwapBaselineMidSweepPinsSnapshot(t *testing.T) {
	res, mx := build(t)
	eng := New(res, mx, Options{Seed: 42})

	// The sweep pins its snapshot before any evaluation; a swap while
	// it runs must not mix baselines. Force the swap from the eval
	// hook, which runs inside the first evaluation.
	m2 := res.Map.Clone()
	m2.RemoveISP(mx.ISPs[0])
	res2 := *res
	res2.Map = m2
	swapped := false
	eng.SetEvalHook(func(context.Context) {
		if !swapped {
			swapped = true
			eng.SwapBaseline(&res2, risk.Build(m2, nil))
		}
	})
	defer eng.SetEvalHook(nil)

	scs := []Scenario{{}, {}, {CutMostShared: 1}}
	out := Sweep(context.Background(), eng, scs, 1)
	for i, o := range out {
		if o.Err != "" {
			t.Fatalf("slot %d failed: %s", i, o.Err)
		}
		if o.Result.Stats.Before.ISPs != out[0].Result.Stats.Before.ISPs {
			t.Errorf("slot %d diffed against a different baseline than slot 0", i)
		}
	}
	// All slots used the pre-swap baseline.
	want := mapbuilderStatsISPs(res)
	if got := out[0].Result.Stats.Before.ISPs; got != want {
		t.Errorf("sweep baseline ISPs = %d, want pre-swap %d", got, want)
	}
}

func mapbuilderStatsISPs(res *mapbuilder.Result) int {
	return res.Map.Stats().ISPs
}
