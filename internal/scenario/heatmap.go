package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// heatmap.go reduces per-cell sweep Results into the disaster-grid
// product: a compact CellOutcome per evaluated cell, assembled into a
// Heatmap that renders as a GeoJSON FeatureCollection (for GIS
// viewers) or an ASCII raster (for terminals and logs). Reduction and
// rendering are pure functions of their inputs, so a resumed job that
// recovered half its cells from a checkpoint emits artifacts
// byte-identical to an uninterrupted run.

// CellOutcome is the reduced, persistable result of one grid cell:
// the cell's geometry plus the scalar damage metrics the heatmap
// plots. It is what job checkpoints store — small enough that a
// thousand-cell sweep checkpoints in well under a megabyte, rich
// enough to rebuild every artifact without re-evaluating.
type CellOutcome struct {
	Index    int     `json:"index"`
	Row      int     `json:"row"`
	Col      int     `json:"col"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radiusKm"`

	// Err records a deterministic evaluation failure (the cell still
	// counts as completed; it will fail identically on re-run). A
	// canceled evaluation is never reduced to a CellOutcome at all —
	// see Outcome.Canceled.
	Err string `json:"err,omitempty"`

	// ConduitsCut / TenanciesCut size the physical damage.
	ConduitsCut  int `json:"conduitsCut"`
	TenanciesCut int `json:"tenanciesCut"`
	// ISPsHit counts providers occupying at least one cut conduit;
	// ISPsDegraded counts providers whose disconnected-pair fraction
	// worsened against the baseline.
	ISPsHit      int `json:"ispsHit"`
	ISPsDegraded int `json:"ispsDegraded"`
	// MeanDisconnection and WorstDisconnection summarize the
	// per-provider disconnected-pair fractions after the disaster
	// (the heatmap's primary severity scale, 0..1).
	MeanDisconnection  float64 `json:"meanDisconnection"`
	WorstDisconnection float64 `json:"worstDisconnection"`
	// PartitionCostDrop sums, over providers, how many fewer cuts
	// partition them after the disaster — lost safety margin.
	PartitionCostDrop int `json:"partitionCostDrop"`
	// RankShifts counts providers whose risk-ranking position moved.
	RankShifts int `json:"rankShifts"`
	// LostTrafficGbps is the capacity-layer severity: Gbps of
	// gravity-model demand the disaster strands.
	LostTrafficGbps float64 `json:"lostTrafficGbps"`
}

// ReduceCell collapses one sweep Outcome into the cell's persistable
// metrics. The caller must not pass a canceled outcome — a canceled
// slot never ran, so it has no outcome to reduce; DecodeCheckpoint
// rejects persisted cells claiming otherwise.
func ReduceCell(cell GridCell, o Outcome) CellOutcome {
	out := CellOutcome{
		Index:    cell.Index,
		Row:      cell.Row,
		Col:      cell.Col,
		Lat:      cell.Lat,
		Lon:      cell.Lon,
		RadiusKm: cell.RadiusKm,
	}
	if o.Err != "" || o.Result == nil {
		out.Err = o.Err
		if out.Err == "" {
			out.Err = "no result"
		}
		return out
	}
	r := o.Result
	out.ConduitsCut = r.ConduitsCut
	out.TenanciesCut = r.TenanciesCut
	var sum float64
	for _, d := range r.Disconnection {
		if d.CutsHit > 0 {
			out.ISPsHit++
		}
		if d.After > d.Before {
			out.ISPsDegraded++
		}
		sum += d.After
		if d.After > out.WorstDisconnection {
			out.WorstDisconnection = d.After
		}
	}
	if len(r.Disconnection) > 0 {
		out.MeanDisconnection = sum / float64(len(r.Disconnection))
	}
	for _, p := range r.Partition {
		if p.Before > p.After {
			out.PartitionCostDrop += p.Before - p.After
		}
	}
	for _, rk := range r.Ranking {
		if rk.RankBefore != rk.RankAfter {
			out.RankShifts++
		}
	}
	if r.LostTraffic != nil {
		out.LostTrafficGbps = r.LostTraffic.LostGbps
	}
	return out
}

// GridGeom is the slice of a GridPlan that artifact assembly needs:
// the spec, its hash, and the lattice dimensions. Job checkpoints
// persist it so a recovered job can rebuild its heatmap even after
// the live baseline map (and therefore any re-planned lattice) has
// moved on.
type GridGeom struct {
	Hash  string   `json:"hash"`
	Spec  GridSpec `json:"spec"`
	Rows  int      `json:"rows"`
	Cols  int      `json:"cols"`
	Total int      `json:"total"`
}

// Geom returns the plan's artifact geometry.
func (p *GridPlan) Geom() GridGeom {
	return GridGeom{Hash: p.Hash, Spec: p.Spec, Rows: p.Rows, Cols: p.Cols, Total: p.Total()}
}

// Heatmap is the assembled grid-sweep artifact: every completed cell
// outcome in plan order plus the lattice geometry needed to raster
// it. Build one with BuildHeatmap.
type Heatmap struct {
	GridHash        string        `json:"gridHash"`
	BaselineVersion uint64        `json:"baselineVersion"`
	Spec            GridSpec      `json:"spec"`
	Rows            int           `json:"rows"`
	Cols            int           `json:"cols"`
	Total           int           `json:"total"`
	Completed       int           `json:"completed"`
	MaxSeverity     float64       `json:"maxSeverity"`
	// MaxLostTrafficGbps is the worst capacity-layer severity across
	// completed cells, the Gbps counterpart of MaxSeverity.
	MaxLostTrafficGbps float64       `json:"maxLostTrafficGbps"`
	Cells              []CellOutcome `json:"cells"`
}

// BuildHeatmap assembles the artifact from the grid geometry and its
// completed cell outcomes (any order; they are sorted into plan
// order). Partial inputs build a partial heatmap — the streaming
// endpoint uses that — but the determinism contract only applies to
// complete ones.
func BuildHeatmap(g GridGeom, baselineVersion uint64, cells []CellOutcome) *Heatmap {
	h := &Heatmap{
		GridHash:        g.Hash,
		BaselineVersion: baselineVersion,
		Spec:            g.Spec,
		Rows:            g.Rows,
		Cols:            g.Cols,
		Total:           g.Total,
		Completed:       len(cells),
	}
	byIndex := make([]*CellOutcome, g.Total)
	for i := range cells {
		c := &cells[i]
		if c.Index >= 0 && c.Index < len(byIndex) {
			byIndex[c.Index] = c
		}
	}
	h.Cells = make([]CellOutcome, 0, len(cells))
	for _, c := range byIndex {
		if c == nil {
			continue
		}
		h.Cells = append(h.Cells, *c)
		if c.MeanDisconnection > h.MaxSeverity {
			h.MaxSeverity = c.MeanDisconnection
		}
		if c.LostTrafficGbps > h.MaxLostTrafficGbps {
			h.MaxLostTrafficGbps = c.LostTrafficGbps
		}
	}
	h.Completed = len(h.Cells)
	return h
}

// ---- GeoJSON rendering ----

type heatFeature struct {
	Type       string       `json:"type"`
	Geometry   heatGeometry `json:"geometry"`
	Properties CellOutcome  `json:"properties"`
}

type heatGeometry struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"`
}

type heatDoc struct {
	Type            string        `json:"type"`
	GridHash        string        `json:"gridHash"`
	BaselineVersion uint64        `json:"baselineVersion"`
	Rows            int           `json:"rows"`
	Cols            int           `json:"cols"`
	Total           int           `json:"total"`
	Completed       int           `json:"completed"`
	Features        []heatFeature `json:"features"`
}

// GeoJSON renders the heatmap as a FeatureCollection: one Point
// feature per completed cell, properties carrying the damage metrics.
// Rendering is deterministic — features in plan order, fixed key
// order — so equal heatmaps serialize byte-identically.
func (h *Heatmap) GeoJSON() ([]byte, error) {
	doc := heatDoc{
		Type:            "FeatureCollection",
		GridHash:        h.GridHash,
		BaselineVersion: h.BaselineVersion,
		Rows:            h.Rows,
		Cols:            h.Cols,
		Total:           h.Total,
		Completed:       h.Completed,
		Features:        make([]heatFeature, 0, len(h.Cells)),
	}
	for _, c := range h.Cells {
		doc.Features = append(doc.Features, heatFeature{
			Type:       "Feature",
			Geometry:   heatGeometry{Type: "Point", Coordinates: [2]float64{c.Lon, c.Lat}},
			Properties: c,
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// severityRamp maps the 0..1 disconnection scale onto terminal ink:
// '.' is an evaluated cell with no damage, '@' total disconnection.
const severityRamp = ".:-=+*#%@"

// rampIndex maps a severity onto the ramp, clamped at both ends: a
// NaN or negative severity renders as no damage instead of indexing
// out of range, and anything >= 1 saturates at the top glyph.
func rampIndex(sev float64) int {
	// NaN fails both comparisons and lands on 0; float-side clamping
	// also keeps ±Inf away from the undefined float-to-int conversion.
	if sev >= 1 {
		return len(severityRamp) - 1
	}
	if sev > 0 {
		return int(sev * float64(len(severityRamp)))
	}
	return 0
}

// RenderGrid renders one ASCII raster per radius in the ladder, rows
// north at the top, ' ' for culled or not-yet-evaluated lattice
// points, '!' for cells whose evaluation failed, and the severity
// ramp (absolute 0..1 mean-disconnection scale) everywhere else.
func (h *Heatmap) RenderGrid() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disaster grid %s (baseline v%d): %d/%d cells, %d×%d lattice\n",
		h.GridHash, h.BaselineVersion, h.Completed, h.Total, h.Rows, h.Cols)
	fmt.Fprintf(&b, "max severity %.4f, max lost traffic %.1f Gbps\n",
		h.MaxSeverity, h.MaxLostTrafficGbps)
	byKey := make(map[[3]int]*CellOutcome, len(h.Cells))
	radiusPos := make(map[float64]int, len(h.Spec.RadiiKm))
	for i, r := range h.Spec.RadiiKm {
		radiusPos[r] = i
	}
	for i := range h.Cells {
		c := &h.Cells[i]
		ri, ok := radiusPos[c.RadiusKm]
		if !ok {
			continue
		}
		byKey[[3]int{ri, c.Row, c.Col}] = c
	}
	for ri, radius := range h.Spec.RadiiKm {
		fmt.Fprintf(&b, "\nradius %g km (scale 0..1: %q)\n", radius, severityRamp)
		for row := h.Rows - 1; row >= 0; row-- {
			for col := 0; col < h.Cols; col++ {
				c := byKey[[3]int{ri, row, col}]
				switch {
				case c == nil:
					b.WriteByte(' ')
				case c.Err != "":
					b.WriteByte('!')
				default:
					b.WriteByte(severityRamp[rampIndex(c.MeanDisconnection)])
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
