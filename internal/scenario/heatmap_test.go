package scenario

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestRampIndexClamps pins the raster glyph lookup at both ends of
// the scale: the old code clamped only the high side, so a NaN or
// negative severity indexed out of range and panicked the renderer.
func TestRampIndexClamps(t *testing.T) {
	cases := []struct {
		sev  float64
		want int
	}{
		{0, 0},
		{0.05, 0},
		{0.5, 4},
		{0.999, 8},
		{1, 8},
		{1.7, 8},
		{-0.2, 0},
		{math.Inf(1), 8},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
	}
	for _, tc := range cases {
		if got := rampIndex(tc.sev); got != tc.want {
			t.Errorf("rampIndex(%v) = %d, want %d", tc.sev, got, tc.want)
		}
	}
}

// TestRenderGridPathologicalSeverity renders cells carrying NaN and
// negative severities without panicking.
func TestRenderGridPathologicalSeverity(t *testing.T) {
	h := &Heatmap{
		GridHash: "test", Rows: 1, Cols: 3, Total: 3, Completed: 3,
		Spec: GridSpec{RadiiKm: []float64{50}},
		Cells: []CellOutcome{
			{Index: 0, Row: 0, Col: 0, RadiusKm: 50, MeanDisconnection: math.NaN()},
			{Index: 1, Row: 0, Col: 1, RadiusKm: 50, MeanDisconnection: -0.5},
			{Index: 2, Row: 0, Col: 2, RadiusKm: 50, MeanDisconnection: 2.5},
		},
	}
	grid := h.RenderGrid()
	if !strings.Contains(grid, "..@") {
		t.Errorf("pathological severities rendered unexpectedly:\n%s", grid)
	}
}

func TestReduceCellMetrics(t *testing.T) {
	cell := GridCell{Index: 3, Row: 1, Col: 2, Lat: 40, Lon: -100, RadiusKm: 50}
	res := &Result{
		ConduitsCut:  4,
		TenanciesCut: 9,
		Disconnection: []Disconnection{
			{ISP: "a", CutsHit: 2, Before: 0, After: 0.5},
			{ISP: "b", CutsHit: 0, Before: 0.1, After: 0.1},
			{ISP: "c", CutsHit: 1, Before: 0, After: 0.25},
		},
		Partition: []PartitionShift{
			{ISP: "a", Before: 5, After: 2},
			{ISP: "b", Before: 3, After: 3},
			{ISP: "c", Before: 2, After: 4}, // additions can raise it; no drop
		},
		Ranking: []RankShift{
			{ISP: "a", RankBefore: 1, RankAfter: 3},
			{ISP: "b", RankBefore: 2, RankAfter: 2},
		},
	}
	out := ReduceCell(cell, Outcome{Result: res})

	if out.Index != 3 || out.Row != 1 || out.Col != 2 || out.Lat != 40 || out.Lon != -100 || out.RadiusKm != 50 {
		t.Errorf("cell geometry not carried through: %+v", out)
	}
	if out.Err != "" {
		t.Errorf("successful reduce set Err %q", out.Err)
	}
	if out.ConduitsCut != 4 || out.TenanciesCut != 9 {
		t.Errorf("damage counts = (%d,%d), want (4,9)", out.ConduitsCut, out.TenanciesCut)
	}
	if out.ISPsHit != 2 {
		t.Errorf("ISPsHit = %d, want 2", out.ISPsHit)
	}
	if out.ISPsDegraded != 2 {
		t.Errorf("ISPsDegraded = %d, want 2", out.ISPsDegraded)
	}
	if want := (0.5 + 0.1 + 0.25) / 3; out.MeanDisconnection != want {
		t.Errorf("MeanDisconnection = %g, want %g", out.MeanDisconnection, want)
	}
	if out.WorstDisconnection != 0.5 {
		t.Errorf("WorstDisconnection = %g, want 0.5", out.WorstDisconnection)
	}
	if out.PartitionCostDrop != 3 {
		t.Errorf("PartitionCostDrop = %d, want 3", out.PartitionCostDrop)
	}
	if out.RankShifts != 1 {
		t.Errorf("RankShifts = %d, want 1", out.RankShifts)
	}
}

func TestReduceCellErrors(t *testing.T) {
	cell := GridCell{Index: 0}
	if out := ReduceCell(cell, Outcome{Err: "boom"}); out.Err != "boom" {
		t.Errorf("Err = %q, want boom", out.Err)
	}
	if out := ReduceCell(cell, Outcome{}); out.Err == "" {
		t.Error("empty outcome reduced without an error marker")
	}
}

// TestHeatmapDeterministicAssembly pins the artifact contract: cells
// fed to BuildHeatmap in any order produce byte-identical GeoJSON and
// raster output, because assembly sorts into plan order.
func TestHeatmapDeterministicAssembly(t *testing.T) {
	eng := newEngine(t, 0)
	plan, version, err := eng.PlanGrid(testGridSpec())
	if err != nil {
		t.Fatal(err)
	}
	scs := make([]Scenario, plan.Total())
	for i, c := range plan.Cells {
		scs[i] = c.Scenario()
	}
	outs := Sweep(context.Background(), eng, scs, 0)
	cells := make([]CellOutcome, len(outs))
	for i, o := range outs {
		if o.Canceled {
			t.Fatalf("slot %d canceled in an uncanceled sweep", i)
		}
		cells[i] = ReduceCell(plan.Cells[i], o)
	}

	h := BuildHeatmap(plan.Geom(), version, cells)
	if h.Completed != plan.Total() || h.Total != plan.Total() {
		t.Fatalf("heatmap %d/%d, want %d/%d", h.Completed, h.Total, plan.Total(), plan.Total())
	}
	golden, err := h.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenGrid := h.RenderGrid()

	// Reverse the cell order — a resumed job merges checkpointed and
	// freshly evaluated cells in whatever order they arrive.
	rev := make([]CellOutcome, len(cells))
	for i, c := range cells {
		rev[len(cells)-1-i] = c
	}
	h2 := BuildHeatmap(plan.Geom(), version, rev)
	b2, err := h2.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(golden) {
		t.Error("GeoJSON differs when cells arrive out of order")
	}
	if h2.RenderGrid() != goldenGrid {
		t.Error("raster differs when cells arrive out of order")
	}
	if h2.MaxSeverity != h.MaxSeverity {
		t.Errorf("MaxSeverity %g != %g", h2.MaxSeverity, h.MaxSeverity)
	}

	// Sanity on the renderings themselves.
	if !strings.Contains(string(golden), `"FeatureCollection"`) {
		t.Error("GeoJSON lacks FeatureCollection type")
	}
	if got := strings.Count(string(golden), `"Feature"`); got != plan.Total() {
		t.Errorf("GeoJSON has %d features, want %d", got, plan.Total())
	}
	for _, r := range plan.Spec.RadiiKm {
		if !strings.Contains(goldenGrid, "radius") {
			t.Errorf("raster lacks a section for radius %g", r)
		}
	}
}

func TestHeatmapPartialAndErrorCells(t *testing.T) {
	res, _ := build(t)
	plan, err := PlanGrid(res.Map, testGridSpec())
	if err != nil {
		t.Fatal(err)
	}
	// One completed healthy cell, one failed cell; the rest missing.
	cells := []CellOutcome{
		ReduceCell(plan.Cells[0], Outcome{Result: &Result{}}),
		ReduceCell(plan.Cells[1], Outcome{Err: "stage exploded"}),
	}
	h := BuildHeatmap(plan.Geom(), 1, cells)
	if h.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", h.Completed)
	}
	grid := h.RenderGrid()
	if !strings.Contains(grid, "!") {
		t.Error("raster does not mark the failed cell with '!'")
	}
	b, err := h.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "stage exploded") {
		t.Error("GeoJSON dropped the failed cell's error")
	}
	// Out-of-range indices are ignored rather than panicking.
	h2 := BuildHeatmap(plan.Geom(), 1, []CellOutcome{{Index: -1}, {Index: plan.Total() + 5}})
	if h2.Completed != 0 {
		t.Errorf("out-of-range cells counted as completed: %d", h2.Completed)
	}
}
