package scenario

import (
	"context"

	"intertubes/internal/obs"
	"intertubes/internal/par"
)

// sweep.go is the batch runner: evaluate a grid of scenarios over the
// internal/par worker pool. It honors the same determinism contract
// as the other hot paths — the returned slice is bit-identical for
// any worker count, because each evaluation is pure and results land
// at their input index (ordered reduce, never completion order).

// Outcome pairs one sweep slot with its evaluation error; exactly one
// of Result/Err is set.
type Outcome struct {
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// Sweep evaluates every scenario against the engine, fanning out over
// up to workers goroutines (<= 0 means all CPUs). Outcomes are in
// input order; a failed scenario fails its slot, not the sweep.
//
// Canceling ctx stops the sweep at the next chunk grant; slots whose
// evaluation never ran (or was itself canceled mid-flight) report
// ctx.Err() in Outcome.Err, so the slice length always matches scs.
func Sweep(ctx context.Context, eng *Engine, scs []Scenario, workers int) []Outcome {
	_, sp := obs.Trace(ctx, "scenario.sweep")
	sp.SetWorkers(par.Workers(workers))
	sp.SetItems(int64(len(scs)))
	defer sp.End()
	// Pin one snapshot for the whole batch: every slot evaluates
	// against the same baseline even if SwapBaseline lands mid-sweep.
	// Forcing its baseline here keeps each parallel evaluation
	// read-only (the memo is guarded by sync.Once).
	snap := eng.snapshot()
	snap.baseline()
	out, err := par.MapCtx(ctx, len(scs), workers, func(i int) Outcome {
		res, err := eng.evaluateOn(ctx, snap, scs[i])
		if err != nil {
			return Outcome{Err: err.Error()}
		}
		return Outcome{Result: res}
	})
	if err != nil {
		for i := range out {
			if out[i].Result == nil && out[i].Err == "" {
				out[i] = Outcome{Err: err.Error()}
			}
		}
	}
	return out
}
