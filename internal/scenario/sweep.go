package scenario

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"intertubes/internal/obs"
	"intertubes/internal/par"
)

// sweep.go is the batch runner: evaluate a grid of scenarios over the
// internal/par worker pool. It honors the same determinism contract
// as the other hot paths — the returned slice is bit-identical for
// any worker count, because each evaluation is pure and results land
// at their input index (ordered reduce, never completion order).

// Outcome pairs one sweep slot with its evaluation error; exactly one
// of Result/Err is set. Canceled distinguishes a slot that never
// completed because the sweep's context ended — the evaluation either
// never started or was stopped mid-flight — from a deterministic
// evaluation failure. It is a stable machine-readable marker: the job
// store checkpoints failed slots (they fail identically on re-run)
// but re-runs canceled ones, without string-matching ctx.Err() text.
type Outcome struct {
	Result   *Result `json:"result,omitempty"`
	Err      string  `json:"err,omitempty"`
	Canceled bool    `json:"canceled,omitempty"`
}

// isCancellation reports whether err is a context cancellation or
// deadline expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sweepProgress is the live completed/total ratio of the most recent
// sweep (1 when idle after a finished sweep, 0 before any). The
// disaster-grid sweep service polls this for progress bars.
var sweepProgress = obs.GetGauge("scenario_sweep_progress",
	"Fraction of the current scenario sweep completed (completed/total).")

// progressLogInterval rate-limits the sweep progress log line.
const progressLogInterval = time.Second

// Sweep evaluates every scenario against the engine, fanning out over
// up to workers goroutines (<= 0 means all CPUs). Outcomes are in
// input order; a failed scenario fails its slot, not the sweep.
//
// Canceling ctx stops the sweep at the next chunk grant; slots whose
// evaluation never ran (or was itself canceled mid-flight) report
// ctx.Err() in Outcome.Err, so the slice length always matches scs.
//
// Progress is observational only: workers bump an atomic counter
// feeding the scenario_sweep_progress gauge and a rate-limited slog
// line; completion order never influences where results land.
func Sweep(ctx context.Context, eng *Engine, scs []Scenario, workers int) []Outcome {
	ctx, sp := obs.Trace(ctx, "scenario.sweep")
	sp.SetWorkers(par.Workers(workers))
	sp.SetItems(int64(len(scs)))
	defer sp.End()
	// Pin one snapshot for the whole batch: every slot evaluates
	// against the same baseline even if SwapBaseline lands mid-sweep.
	// Forcing its baseline here keeps each parallel evaluation
	// read-only (the memo is guarded by sync.Once).
	snap := eng.snapshot()
	snap.baseline()
	snap.capacity()

	total := len(scs)
	var done atomic.Int64
	var lastLog atomic.Int64 // unix nanos of the last progress line
	if total > 0 {
		sweepProgress.Set(0)
		// Settle the gauge no matter how the sweep ends: a canceled
		// sweep must not leave a frozen partial fraction that reads as
		// forever-in-progress. 1 is the idle-after-a-sweep value the
		// completion path also converges to.
		defer sweepProgress.Set(1)
	}
	start := time.Now()
	progress := func() {
		n := done.Add(1)
		sweepProgress.Set(float64(n) / float64(total))
		if n == int64(total) {
			return // the completion line below covers the last slot
		}
		now := time.Now().UnixNano()
		last := lastLog.Load()
		if now-last < int64(progressLogInterval) || !lastLog.CompareAndSwap(last, now) {
			return
		}
		obs.Logger("scenario").Info("sweep progress",
			"completed", n, "total", total,
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}

	out, err := par.MapCtx(ctx, total, workers, func(i int) Outcome {
		res, err := eng.evaluateOn(ctx, snap, scs[i])
		progress()
		if err != nil {
			return Outcome{Err: err.Error(), Canceled: isCancellation(err)}
		}
		return Outcome{Result: res}
	})
	if err != nil {
		canceled := isCancellation(err)
		for i := range out {
			if out[i].Result == nil && out[i].Err == "" {
				out[i] = Outcome{Err: err.Error(), Canceled: canceled}
			}
		}
	}
	if total > 0 {
		obs.Logger("scenario").Info("sweep finished",
			"completed", done.Load(), "total", total,
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}
	return out
}
