package scenario

import (
	"context"
	"encoding/json"
	"testing"

	"intertubes/internal/fiber"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// capacity_test.go covers the capacity layer end to end: the gravity
// demand matrix, the lost-traffic stage on both evaluation paths, and
// the acceptance scenario — a circular disaster over the busiest city
// strands a nonzero number of Gbps, bit-identically on the clone and
// overlay paths and at any sweep worker count.

// biggestCityRegion centers a disaster circle on the map's most
// populous node — guaranteed to hit the top gravity demand pair.
func biggestCityRegion(t *testing.T, radiusKm float64) Region {
	t.Helper()
	res, _ := build(t)
	m := res.Map
	best := fiber.NodeID(0)
	for i := range m.Nodes {
		if m.Nodes[i].Population > m.Nodes[best].Population {
			best = fiber.NodeID(i)
		}
	}
	loc := m.Node(best).Loc
	return Region{Lat: loc.Lat, Lon: loc.Lon, RadiusKm: radiusKm}
}

func TestLostTrafficCircularDisaster(t *testing.T) {
	overlay, clone := enginePair(t)
	sc := Scenario{Regions: []Region{biggestCityRegion(t, 150)}}

	r, err := overlay.Evaluate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	lt := r.LostTraffic
	if lt == nil {
		t.Fatal("circular disaster Result has no LostTraffic")
	}
	if lt.Demands == 0 || lt.OfferedGbps <= 0 {
		t.Fatalf("empty demand matrix: %+v", lt)
	}
	if lt.ServedBeforeGbps <= 0 {
		t.Fatalf("baseline serves no traffic: %+v", lt)
	}
	if lt.LostGbps <= 0 {
		t.Fatalf("circular disaster strands no traffic: %+v", lt)
	}
	if lt.ServedBeforeGbps-lt.ServedAfterGbps != lt.LostGbps {
		t.Fatalf("LostGbps inconsistent with served columns: %+v", lt)
	}

	// Bit-identical between the overlay path and the clone reference.
	diffJSON(t, "circular disaster", evalJSON(t, overlay, sc), evalJSON(t, clone, sc))
}

func TestLostTrafficZeroScenario(t *testing.T) {
	overlay, _ := enginePair(t)
	r, err := overlay.Evaluate(context.Background(), Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	lt := r.LostTraffic
	if lt == nil {
		t.Fatal("zero scenario Result has no LostTraffic")
	}
	if lt.LostGbps != 0 {
		t.Fatalf("zero scenario lost %v Gbps, want exactly 0", lt.LostGbps)
	}
	if lt.ServedAfterGbps != lt.ServedBeforeGbps {
		t.Fatalf("zero scenario served columns differ: %+v", lt)
	}
}

// TestLostTrafficAdditionCanGain: an addition-only scenario may serve
// more than the baseline; LostGbps goes negative, never positive.
func TestLostTrafficAdditionCanGain(t *testing.T) {
	overlay, clone := enginePair(t)
	res, _ := build(t)
	m := res.Map
	k0 := m.Node(0).Key()
	kLast := m.Node(fiber.NodeID(m.NumNodes() - 1)).Key()
	sc := Scenario{Additions: []Addition{{A: k0, B: kLast}}}

	r, err := overlay.Evaluate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.LostTraffic.LostGbps > 0 {
		t.Fatalf("addition-only scenario lost %v Gbps, want <= 0", r.LostTraffic.LostGbps)
	}
	diffJSON(t, "addition gain", evalJSON(t, overlay, sc), evalJSON(t, clone, sc))
}

// TestLostTrafficSweepWorkerInvariance: the capacity stage must not
// break the sweep's bit-identical-at-any-worker-count contract.
func TestLostTrafficSweepWorkerInvariance(t *testing.T) {
	overlay, clone := enginePair(t)
	scs := []Scenario{
		{Regions: []Region{biggestCityRegion(t, 150)}},
		{CutMostShared: 5},
		{},
	}
	one := Sweep(context.Background(), overlay, scs, 1)
	many := Sweep(context.Background(), overlay, scs, 8)
	ref := Sweep(context.Background(), clone, scs, 4)
	for i := range scs {
		j1 := mustJSON(t, one[i].Result)
		j8 := mustJSON(t, many[i].Result)
		jc := mustJSON(t, ref[i].Result)
		diffJSON(t, "workers 1 vs 8", j8, j1)
		diffJSON(t, "overlay vs clone", j1, jc)
		if one[i].Result.LostTraffic == nil {
			t.Fatalf("sweep slot %d has no LostTraffic", i)
		}
	}
}

// TestReduceCellCarriesLostTraffic: the grid-sweep heatmap reduction
// propagates the Gbps severity alongside MeanDisconnection.
func TestReduceCellCarriesLostTraffic(t *testing.T) {
	overlay, _ := enginePair(t)
	sc := Scenario{Regions: []Region{biggestCityRegion(t, 150)}}
	r, err := overlay.Evaluate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	cell := GridCell{Index: 0, Row: 0, Col: 0, Lat: 1, Lon: 2, RadiusKm: 150}
	out := ReduceCell(cell, Outcome{Result: r})
	if out.LostTrafficGbps != r.LostTraffic.LostGbps {
		t.Fatalf("ReduceCell LostTrafficGbps = %v, want %v", out.LostTrafficGbps, r.LostTraffic.LostGbps)
	}
	h := BuildHeatmap(GridGeom{Hash: "h", Rows: 1, Cols: 1, Total: 1}, 1, []CellOutcome{out})
	if h.MaxLostTrafficGbps != out.LostTrafficGbps {
		t.Fatalf("BuildHeatmap MaxLostTrafficGbps = %v, want %v", h.MaxLostTrafficGbps, out.LostTrafficGbps)
	}
}
