package scenario

import (
	"context"
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"

	"intertubes/internal/fiber"
)

func sweepGrid() []Scenario {
	scs := []Scenario{
		{Preset: "top12-cut"},
		{Preset: "gulf-hurricane"},
		{Preset: "level3-exit"},
		{CutMostBetween: 4},
		{CutConduits: []fiber.ConduitID{1 << 30}}, // deliberately failing slot
	}
	for i := 0; i < 4; i++ {
		scs = append(scs, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(i)}})
	}
	return scs
}

// TestSweepWorkerInvariance is the acceptance criterion: a sweep is
// bit-identical for Workers in {1, 4, NumCPU}.
func TestSweepWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	scs := sweepGrid()

	var golden []byte
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		eng := newEngine(t, workers)
		out := Sweep(ctx, eng, scs, workers)
		if len(out) != len(scs) {
			t.Fatalf("workers=%d: %d outcomes for %d scenarios", workers, len(out), len(scs))
		}
		buf, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = buf
		} else if string(buf) != string(golden) {
			t.Errorf("workers=%d: sweep output differs from workers=1", workers)
		}
	}
}

func TestSweepOutcomeOrderAndErrors(t *testing.T) {
	eng := newEngine(t, 0)
	scs := sweepGrid()
	out := Sweep(context.Background(), eng, scs, 0)

	for i, o := range out {
		failing := len(scs[i].CutConduits) == 1 && scs[i].CutConduits[0] == 1<<30
		if failing {
			if o.Err == "" || o.Result != nil {
				t.Errorf("slot %d: expected error outcome, got %+v", i, o)
			}
			// A deterministic evaluation failure is not a cancellation:
			// the job store checkpoints it and must never re-run it.
			if o.Canceled {
				t.Errorf("slot %d: deterministic failure marked Canceled", i)
			}
			continue
		}
		if o.Err != "" || o.Result == nil {
			t.Errorf("slot %d: unexpected error %q", i, o.Err)
			continue
		}
		// The outcome must sit at its input index, not completion order.
		want, err := Resolve(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Hash != want.Hash() {
			t.Errorf("slot %d: hash %s, want %s", i, o.Result.Hash, want.Hash())
		}
	}
}

// TestSweepCancelSettlesProgressAndMarksOutcomes pins the two cancel
// satellites: a canceled sweep must settle scenario_sweep_progress
// (not freeze it at a partial fraction forever) and must mark every
// slot that never completed with the machine-readable Canceled flag
// instead of only stringifying ctx.Err().
func TestSweepCancelSettlesProgressAndMarksOutcomes(t *testing.T) {
	eng := newEngine(t, 0)
	// No deliberately failing slot here: every slot must end as a pure
	// cancellation so the assertions below hold for all of them.
	var scs []Scenario
	for i := 0; i < 8; i++ {
		scs = append(scs, Scenario{CutConduits: []fiber.ConduitID{fiber.ConduitID(i)}})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	eng.SetEvalHook(func(hctx context.Context) {
		// First evaluation to reach the hook cancels the sweep; every
		// hooked evaluation then parks until the cancellation lands, so
		// no slot can complete. Deterministic — no sleeps.
		if fired.CompareAndSwap(false, true) {
			cancel()
		}
		<-hctx.Done()
	})
	defer eng.SetEvalHook(nil)

	out := Sweep(ctx, eng, scs, 2)
	if len(out) != len(scs) {
		t.Fatalf("%d outcomes for %d scenarios", len(out), len(scs))
	}
	for i, o := range out {
		if o.Result != nil {
			t.Errorf("slot %d: canceled sweep produced a result", i)
		}
		if o.Err == "" {
			t.Errorf("slot %d: canceled slot has empty Err", i)
		}
		if !o.Canceled {
			t.Errorf("slot %d: canceled slot not marked Canceled (err %q)", i, o.Err)
		}
	}
	if got := sweepProgress.Value(); got != 1 {
		t.Errorf("scenario_sweep_progress after canceled sweep = %g, want 1 (settled)", got)
	}
}

func TestSweepEmpty(t *testing.T) {
	eng := newEngine(t, 0)
	if out := Sweep(context.Background(), eng, nil, 0); len(out) != 0 {
		t.Errorf("empty sweep returned %v", out)
	}
}
