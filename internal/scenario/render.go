package scenario

import (
	"fmt"
	"strings"

	"intertubes/internal/report"
)

// render.go turns a Result into the text delta report the whatif CLI
// prints and the server's text variant serves — same rendering path
// as every paper figure (internal/report).

// Render renders the full delta report for an evaluated scenario.
func Render(r *Result) string {
	var b strings.Builder

	name := r.Scenario.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "what-if scenario %s  [%s]\n", name, r.Hash)
	fmt.Fprintf(&b, "  conduits cut:    %d (%d tenancies severed)\n", r.ConduitsCut, r.TenanciesCut)
	if len(r.ISPsRemoved) > 0 {
		fmt.Fprintf(&b, "  providers removed: %s (%d links)\n",
			strings.Join(r.ISPsRemoved, ", "), r.LinksRemoved)
	}
	if r.ConduitsAdded > 0 {
		fmt.Fprintf(&b, "  conduits added:  %d\n", r.ConduitsAdded)
	}
	sb, sa := r.Stats.Before, r.Stats.After
	fmt.Fprintf(&b, "  map: %d -> %d lit conduits, %d -> %d links, mean disconnection %.4f\n\n",
		sb.Conduits, sa.Conduits, sb.Links, sa.Links, r.MeanDisconnectionAfter())

	// Sharing distribution (Figure 6 before/after). Only rows that
	// exist either side.
	t := report.Table{
		Title:   "Sharing distribution: conduits shared by >= k ISPs",
		Headers: []string{"k", "before", "after", "delta"},
	}
	for _, s := range r.Sharing {
		if s.Before == 0 && s.After == 0 {
			continue
		}
		t.AddRow(s.K, s.Before, s.After, s.After-s.Before)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')

	t2 := report.Table{
		Title:   "Risk ranking shifts (ascending mean sharing after)",
		Headers: []string{"ISP", "mean before", "mean after", "rank before", "rank after"},
	}
	for _, r := range r.Ranking {
		t2.AddRow(r.ISP, r.MeanBefore, r.MeanAfter, r.RankBefore, r.RankAfter)
	}
	b.WriteString(t2.String())
	b.WriteByte('\n')

	t3 := report.Table{
		Title:   "Per-provider disconnection (fraction of node pairs)",
		Headers: []string{"ISP", "cuts hit", "before", "after", "largest comp"},
	}
	for _, d := range r.Disconnection {
		t3.AddRow(d.ISP, d.CutsHit, fmt.Sprintf("%.4f", d.Before),
			fmt.Sprintf("%.4f", d.After), fmt.Sprintf("%.2f", d.LargestComponent))
	}
	b.WriteString(t3.String())
	b.WriteByte('\n')

	t4 := report.Table{
		Title:   "Minimum cuts to partition each backbone",
		Headers: []string{"ISP", "before", "after"},
	}
	for _, p := range r.Partition {
		t4.AddRow(p.ISP, p.Before, p.After)
	}
	b.WriteString(t4.String())

	if lt := r.LostTraffic; lt != nil {
		fmt.Fprintf(&b, "\nlost traffic (gravity demand, %d pairs):\n", lt.Demands)
		fmt.Fprintf(&b, "  offered:   %.1f Gbps\n", lt.OfferedGbps)
		fmt.Fprintf(&b, "  served:    %.1f -> %.1f Gbps\n", lt.ServedBeforeGbps, lt.ServedAfterGbps)
		fmt.Fprintf(&b, "  stranded:  %.1f Gbps\n", lt.LostGbps)
	}

	if r.Latency != nil {
		lb, la := r.Latency.Before, r.Latency.After
		fmt.Fprintf(&b, "\nlatency impact (%d max pairs):\n", r.Latency.MaxPairs)
		fmt.Fprintf(&b, "  pairs with a lit path:  %d -> %d\n", lb.Pairs, la.Pairs)
		fmt.Fprintf(&b, "  best==ROW fraction:     %.2f -> %.2f\n", lb.BestEqualsROW, la.BestEqualsROW)
		fmt.Fprintf(&b, "  LOS gap p50 / p75 (ms): %.3f / %.3f -> %.3f / %.3f\n",
			lb.LosGapP50, lb.LosGapP75, la.LosGapP50, la.LosGapP75)
	}
	if r.Traffic != nil {
		tb, ta := r.Traffic.Before, r.Traffic.After
		fmt.Fprintf(&b, "\ntraffic overlay (%d probes):\n", r.Traffic.Probes)
		fmt.Fprintf(&b, "  lit conduits:           %d -> %d\n", tb.Conduits, ta.Conduits)
		fmt.Fprintf(&b, "  mean sharing published: %.2f -> %.2f\n", tb.MeanPublished, ta.MeanPublished)
		fmt.Fprintf(&b, "  mean sharing overlaid:  %.2f -> %.2f\n", tb.MeanOverlaid, ta.MeanOverlaid)
	}
	return b.String()
}
