package scenario

import "sort"

// presets.go names the scenarios the paper's narrative keeps coming
// back to, so CLIs and the HTTP API can ask for them without spelling
// out the spec. Presets are plain Scenario values; callers may
// compose more perturbations on top (see Resolve).

// presets maps name -> scenario. Keep values literal: a preset must
// canonicalize and hash identically across processes.
var presets = map[string]Scenario{
	// The §5 target set: the 12 most-shared conduits (shared by more
	// than 17 of 20 ISPs) all cut at once.
	"top12-cut": {
		Name:          "top12-cut",
		CutMostShared: 12,
	},
	// A targeted attacker with perfect topology knowledge: the eight
	// highest-betweenness conduits.
	"backbone-attack": {
		Name:           "backbone-attack",
		CutMostBetween: 8,
	},
	// A major hurricane over the Gulf Coast (the paper cites exactly
	// this class of geographically correlated failure).
	"gulf-hurricane": {
		Name:    "gulf-hurricane",
		Regions: []Region{{Lat: 29.95, Lon: -90.07, RadiusKm: 350}},
	},
	// A Cascadia-subduction earthquake around Puget Sound.
	"cascadia-quake": {
		Name:    "cascadia-quake",
		Regions: []Region{{Lat: 47.61, Lon: -122.33, RadiusKm: 250}},
	},
	// The dominant transit provider exits the market (Table 4's
	// headline ISP) — who inherits the shared-risk landscape?
	"level3-exit": {
		Name:       "level3-exit",
		RemoveISPs: []string{"Level 3"},
	},
}

// Preset returns the named preset scenario.
func Preset(name string) (Scenario, bool) {
	sc, ok := presets[name]
	return sc, ok
}

// PresetNames lists the preset names, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Presets returns every preset scenario, sorted by name.
func Presets() []Scenario {
	out := make([]Scenario, 0, len(presets))
	for _, name := range PresetNames() {
		out = append(out, presets[name])
	}
	return out
}
