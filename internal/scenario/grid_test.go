package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func testGridSpec() GridSpec {
	return GridSpec{CellKm: 400, RadiiKm: []float64{60, 150}}
}

func TestGridSpecHashCanonical(t *testing.T) {
	base := GridSpec{CellKm: 200, RadiiKm: []float64{25, 50, 100}}
	h := base.Hash()

	// Radius order and duplicates are canonicalized away.
	if got := (GridSpec{CellKm: 200, RadiiKm: []float64{100, 25, 50, 25}}).Hash(); got != h {
		t.Errorf("unordered/duplicated radii changed the hash: %s vs %s", got, h)
	}
	// CullKm defaults to the largest radius, so spelling it out is a no-op.
	if got := (GridSpec{CellKm: 200, RadiiKm: []float64{25, 50, 100}, CullKm: 100}).Hash(); got != h {
		t.Errorf("explicit default cullKm changed the hash: %s vs %s", got, h)
	}
	// MaxCells is an admission bound, not identity.
	if got := (GridSpec{CellKm: 200, RadiiKm: []float64{25, 50, 100}, MaxCells: 7}).Hash(); got != h {
		t.Errorf("maxCells changed the hash: %s vs %s", got, h)
	}
	// Fields that change the planned cells change the hash.
	for _, other := range []GridSpec{
		{CellKm: 100, RadiiKm: []float64{25, 50, 100}},
		{CellKm: 200, RadiiKm: []float64{25, 50}},
		{CellKm: 200, RadiiKm: []float64{25, 50, 100}, CullKm: 400},
	} {
		if other.Hash() == h {
			t.Errorf("distinct spec %+v collided with %+v", other, base)
		}
	}
}

func TestGridSpecValidate(t *testing.T) {
	for _, bad := range []GridSpec{
		{CellKm: 0, RadiiKm: []float64{10}},
		{CellKm: -5, RadiiKm: []float64{10}},
		{CellKm: 100},
		{CellKm: 100, RadiiKm: []float64{10, -1}},
		{CellKm: 100, RadiiKm: []float64{10}, CullKm: -2},
		{CellKm: 100, RadiiKm: []float64{10}, MaxCells: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", bad)
		}
	}
	if err := (testGridSpec()).Validate(); err != nil {
		t.Errorf("Validate rejected a valid spec: %v", err)
	}
}

func TestPlanGridDeterministicAndOrdered(t *testing.T) {
	res, _ := build(t)
	spec := testGridSpec()

	p1, err := PlanGrid(res.Map, spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanGrid(res.Map, spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(p1)
	b2, _ := json.Marshal(p2)
	if string(b1) != string(b2) {
		t.Error("PlanGrid is not deterministic for identical inputs")
	}
	if p1.Total() == 0 {
		t.Fatal("plan has no cells")
	}
	if p1.Hash != spec.Hash() {
		t.Errorf("plan hash %s != spec hash %s", p1.Hash, spec.Hash())
	}

	// Deterministic order: Index is the slot, rows/cols non-decreasing
	// row-major, radii strictly ascending within one center.
	prev := GridCell{Row: -1, Col: -1}
	for i, c := range p1.Cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.Row < 0 || c.Row >= p1.Rows || c.Col < 0 || c.Col >= p1.Cols {
			t.Fatalf("cell %d at (%d,%d) outside %dx%d lattice", i, c.Row, c.Col, p1.Rows, p1.Cols)
		}
		sameCenter := c.Row == prev.Row && c.Col == prev.Col
		if sameCenter {
			if c.RadiusKm <= prev.RadiusKm {
				t.Fatalf("cell %d: radii not ascending within center", i)
			}
		} else if c.Row < prev.Row || (c.Row == prev.Row && c.Col < prev.Col) {
			t.Fatalf("cell %d: not row-major order (%d,%d) after (%d,%d)",
				i, c.Row, c.Col, prev.Row, prev.Col)
		}
		prev = c
	}

	// Each cell is an ordinary regional scenario whose hash ignores the
	// display name, so grid cells share cache entries with interactive
	// disaster posts at the same coordinates.
	c := p1.Cells[0]
	sc := c.Scenario()
	bare := Scenario{Regions: []Region{{Lat: c.Lat, Lon: c.Lon, RadiusKm: c.RadiusKm}}}
	if sc.Hash() != bare.Hash() {
		t.Errorf("cell scenario hash %s != unnamed equivalent %s", sc.Hash(), bare.Hash())
	}
	if !strings.Contains(sc.Name, "grid[") {
		t.Errorf("cell scenario name %q lacks the grid label", sc.Name)
	}
}

func TestPlanGridCullingAndCaps(t *testing.T) {
	res, _ := build(t)

	// A tighter cull keeps no more centers than a looser one.
	loose, err := PlanGrid(res.Map, GridSpec{CellKm: 400, RadiiKm: []float64{60}, CullKm: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := PlanGrid(res.Map, GridSpec{CellKm: 400, RadiiKm: []float64{60}, CullKm: 60})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Total() > loose.Total() {
		t.Errorf("tighter cull kept more cells: %d > %d", tight.Total(), loose.Total())
	}

	// MaxCells is enforced at planning time.
	if _, err := PlanGrid(res.Map, GridSpec{CellKm: 400, RadiiKm: []float64{60}, MaxCells: 1}); err == nil {
		t.Error("PlanGrid accepted a plan exceeding MaxCells")
	}
	// Invalid specs fail before any planning work.
	if _, err := PlanGrid(res.Map, GridSpec{}); err == nil {
		t.Error("PlanGrid accepted an empty spec")
	}
}

func TestEnginePlanGridReportsBaselineVersion(t *testing.T) {
	eng := newEngine(t, 0)
	plan, version, err := eng.PlanGrid(testGridSpec())
	if err != nil {
		t.Fatal(err)
	}
	if version != eng.BaselineVersion() {
		t.Errorf("PlanGrid version %d != engine baseline version %d", version, eng.BaselineVersion())
	}
	if plan.Total() == 0 {
		t.Error("engine plan has no cells")
	}
}
