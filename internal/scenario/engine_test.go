package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/mitigate"
	"intertubes/internal/risk"
)

var (
	cachedRes *mapbuilder.Result
	cachedMx  *risk.Matrix
)

// build returns one shared baseline study for the package's tests; the
// engine never mutates it, so sharing is safe.
func build(t *testing.T) (*mapbuilder.Result, *risk.Matrix) {
	t.Helper()
	if cachedRes == nil {
		cachedRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
		cachedMx = risk.Build(cachedRes.Map, nil)
	}
	return cachedRes, cachedMx
}

func newEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	res, mx := build(t)
	return New(res, mx, Options{Seed: 42, Workers: workers})
}

func TestEvaluateCutScenario(t *testing.T) {
	eng := newEngine(t, 0)
	r, err := eng.Evaluate(context.Background(), Scenario{Preset: "top12-cut"})
	if err != nil {
		t.Fatal(err)
	}
	if r.ConduitsCut != 12 {
		t.Errorf("ConduitsCut = %d, want 12", r.ConduitsCut)
	}
	if r.TenanciesCut == 0 {
		t.Error("cutting the most-shared conduits severed no tenancies")
	}
	if r.Stats.After.Links >= r.Stats.Before.Links {
		t.Errorf("links should drop: %d -> %d", r.Stats.Before.Links, r.Stats.After.Links)
	}
	if r.Hash == "" || r.Scenario.Preset != "" {
		t.Errorf("result should carry hash + resolved scenario: %+v", r.Scenario)
	}
	if len(r.Sharing) == 0 || len(r.Ranking) == 0 || len(r.Disconnection) == 0 || len(r.Partition) == 0 {
		t.Fatalf("missing delta sections: %+v", r)
	}
	// The most-shared conduits are shared by nearly every provider, so
	// the top of the sharing distribution must shrink.
	top := r.Sharing[len(r.Sharing)-1]
	if top.After >= top.Before && top.Before > 0 {
		t.Errorf("top sharing bucket did not shrink: %+v", top)
	}
	// A pure-cut scenario can only lose connectivity: After >= Before
	// for every provider.
	for _, d := range r.Disconnection {
		if d.After < d.Before {
			t.Errorf("disconnection for %s improved under a cut: %v -> %v", d.ISP, d.Before, d.After)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	// Same scenario, fresh engines, different worker counts: the
	// results must be deeply equal — this is what makes the hash a safe
	// cache key.
	sc := Scenario{Preset: "gulf-hurricane"}
	var results []*Result
	for _, workers := range []int{1, 4} {
		eng := newEngine(t, workers)
		r, err := eng.Evaluate(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("evaluation differs across worker counts")
	}
}

func TestEvaluateRemoveISP(t *testing.T) {
	res, mx := build(t)
	eng := newEngine(t, 0)
	victim := mx.ISPs[0]
	r, err := eng.Evaluate(context.Background(), Scenario{RemoveISPs: []string{victim}})
	if err != nil {
		t.Fatal(err)
	}
	if r.LinksRemoved != len(res.Map.ConduitsOf(victim)) {
		t.Errorf("LinksRemoved = %d, want %d", r.LinksRemoved, len(res.Map.ConduitsOf(victim)))
	}
	for _, rk := range r.Ranking {
		if rk.ISP == victim {
			t.Errorf("removed provider %s still ranked", victim)
		}
	}
	for _, d := range r.Disconnection {
		if d.ISP == victim {
			t.Errorf("removed provider %s still in disconnection table", victim)
		}
	}
	if len(r.Ranking) != len(mx.ISPs)-1 {
		t.Errorf("ranking rows = %d, want %d", len(r.Ranking), len(mx.ISPs)-1)
	}
}

func TestEvaluateAddition(t *testing.T) {
	res, _ := build(t)
	eng := newEngine(t, 0)
	a, b := res.Map.Node(0).Key(), res.Map.Node(1).Key()
	r, err := eng.Evaluate(context.Background(), Scenario{
		Additions: []Addition{{A: a, B: b, Tenants: []string{"Level 3"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ConduitsAdded != 1 {
		t.Errorf("ConduitsAdded = %d, want 1", r.ConduitsAdded)
	}
	if r.Stats.After.Links != r.Stats.Before.Links+1 {
		t.Errorf("links %d -> %d, want +1", r.Stats.Before.Links, r.Stats.After.Links)
	}

	if _, err := eng.Evaluate(context.Background(), Scenario{
		Additions: []Addition{{A: "Nowhere,ZZ", B: a}},
	}); err == nil {
		t.Error("unknown node key should fail evaluation")
	}
}

func TestEvaluateLatencyAndTraffic(t *testing.T) {
	eng := newEngine(t, 0)
	r, err := eng.Evaluate(context.Background(), Scenario{
		Preset:         "top12-cut",
		IncludeLatency: true,
		IncludeTraffic: true,
		Overrides:      Overrides{LatencyMaxPairs: 120, Probes: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency == nil || r.Latency.MaxPairs != 120 {
		t.Fatalf("latency delta missing or wrong cap: %+v", r.Latency)
	}
	if r.Latency.Before.Pairs == 0 {
		t.Error("baseline latency study found no pairs")
	}
	if r.Traffic == nil || r.Traffic.Probes != 4000 {
		t.Fatalf("traffic delta missing or wrong probes: %+v", r.Traffic)
	}
	if r.Traffic.Before.Conduits == 0 {
		t.Error("baseline traffic overlay saw no conduits")
	}
}

func TestResolveCutsUnion(t *testing.T) {
	eng := newEngine(t, 0)
	shared := eng.Matrix().TopShared(3)
	sc, err := Resolve(Scenario{
		CutConduits:   []fiber.ConduitID{shared[0], 0},
		CutMostShared: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := eng.ResolveCuts(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := dedupeIDs(append([]fiber.ConduitID{shared[0], 0}, shared...))
	if !reflect.DeepEqual(cuts, want) {
		t.Errorf("cuts = %v, want union %v", cuts, want)
	}

	if _, err := eng.ResolveCuts(Scenario{CutConduits: []fiber.ConduitID{1 << 30}}); err == nil {
		t.Error("out-of-range conduit should fail")
	}
}

func TestRegionCutsMatchResilience(t *testing.T) {
	eng := newEngine(t, 0)
	sc, err := Resolve(Scenario{Preset: "gulf-hurricane"})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := eng.ResolveCuts(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("a 350 km Gulf Coast disaster cut nothing")
	}
}

func TestFromAdditions(t *testing.T) {
	res, _ := build(t)
	m := res.Map
	adds := FromAdditions(m, nil)
	if len(adds) != 0 {
		t.Errorf("FromAdditions(nil) = %v", adds)
	}
	// Round-trip one synthetic addition through the converter.
	out := FromAdditions(m, []mitigate.Addition{{A: 0, B: 1}})
	if len(out) != 1 || out[0].A != m.Node(0).Key() || out[0].B != m.Node(1).Key() {
		t.Errorf("FromAdditions = %+v", out)
	}
}

func TestRenderResult(t *testing.T) {
	eng := newEngine(t, 0)
	r, err := eng.Evaluate(context.Background(), Scenario{Preset: "level3-exit"})
	if err != nil {
		t.Fatal(err)
	}
	text := Render(r)
	for _, want := range []string{"level3-exit", "providers removed", "Sharing distribution", "Risk ranking", "Minimum cuts"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}
