package fiber

import "intertubes/internal/geo"

func mustPoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }
