// Package fiber defines the core model of the InterTubes study: the
// long-haul fiber map. A Map holds Nodes (cities where conduits
// terminate), Conduits (tubes between node pairs, each with a
// geographic path), and the tenancy relation recording which service
// providers have fiber in which conduit. A Link, in the paper's
// §2 terminology, is one (ISP, conduit) presence; conduit sharing is
// what the entire §4 risk analysis is about.
package fiber

import (
	"fmt"
	"math"
	"sort"

	"intertubes/internal/geo"
	"intertubes/internal/graph"
)

// NodeID identifies a node (city) in a Map.
type NodeID int

// ConduitID identifies a conduit in a Map.
type ConduitID int

// Node is a city where at least one long-haul conduit terminates.
type Node struct {
	ID         NodeID
	City       string
	State      string
	Loc        geo.Point
	Population int
	// AtlasCity is the index of this city in the source atlas, or -1.
	AtlasCity int
}

// Key returns the canonical "City,ST" identifier.
func (n Node) Key() string { return n.City + "," + n.State }

// Conduit is a physical tube between two nodes that can house the
// fiber of multiple providers.
type Conduit struct {
	ID       ConduitID
	A, B     NodeID
	Path     geo.Polyline
	LengthKm float64
	// Corridor is the index of the atlas corridor this conduit
	// follows, or -1 for conduits that follow no known corridor.
	Corridor int
	// Tenants are the providers known (from published maps or public
	// records) to have fiber in this conduit, sorted.
	Tenants []string
	// Hidden are providers that actually occupy the conduit but whose
	// presence is not in any published map — the paper discovered such
	// tenants only through traceroute naming hints (§4.3, Figure 9).
	Hidden []string
}

// Other returns the endpoint of c that is not n.
func (c *Conduit) Other(n NodeID) NodeID {
	if c.A == n {
		return c.B
	}
	return c.A
}

// HasTenant reports whether isp is a published tenant.
func (c *Conduit) HasTenant(isp string) bool { return containsSorted(c.Tenants, isp) }

// SharingDegree returns the number of published tenants.
func (c *Conduit) SharingDegree() int { return len(c.Tenants) }

// AllTenants returns published plus hidden tenants, sorted,
// de-duplicated.
func (c *Conduit) AllTenants() []string {
	out := make([]string, 0, len(c.Tenants)+len(c.Hidden))
	out = append(out, c.Tenants...)
	for _, h := range c.Hidden {
		if !containsSorted(c.Tenants, h) {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

func containsSorted(xs []string, x string) bool {
	i := sort.SearchStrings(xs, x)
	return i < len(xs) && xs[i] == x
}

func insertSorted(xs []string, x string) ([]string, bool) {
	i := sort.SearchStrings(xs, x)
	if i < len(xs) && xs[i] == x {
		return xs, false
	}
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs, true
}

type pairKey struct{ lo, hi NodeID }

func mkPair(a, b NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// Map is the long-haul fiber map: the paper's Figure 1 object.
type Map struct {
	Nodes    []Node
	Conduits []Conduit

	nodeByKey      map[string]NodeID
	conduitsByPair map[pairKey][]ConduitID
	byTenant       map[string][]ConduitID
	linkCount      int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{
		nodeByKey:      make(map[string]NodeID),
		conduitsByPair: make(map[pairKey][]ConduitID),
		byTenant:       make(map[string][]ConduitID),
	}
}

// AddNode registers a city, returning the existing node if the
// "City,ST" key is already present.
func (m *Map) AddNode(city, state string, loc geo.Point, population, atlasCity int) NodeID {
	key := city + "," + state
	if id, ok := m.nodeByKey[key]; ok {
		return id
	}
	id := NodeID(len(m.Nodes))
	m.Nodes = append(m.Nodes, Node{
		ID: id, City: city, State: state, Loc: loc,
		Population: population, AtlasCity: atlasCity,
	})
	m.nodeByKey[key] = id
	return id
}

// NodeByKey looks a node up by "City,ST".
func (m *Map) NodeByKey(key string) (NodeID, bool) {
	id, ok := m.nodeByKey[key]
	return id, ok
}

// Node returns the node with the given id.
func (m *Map) Node(id NodeID) *Node { return &m.Nodes[id] }

// Conduit returns the conduit with the given id.
func (m *Map) Conduit(id ConduitID) *Conduit { return &m.Conduits[id] }

// EnsureConduit returns the conduit between a and b following the
// given atlas corridor, creating it if necessary. Conduits following
// different corridors between the same pair remain distinct (parallel
// deployments, e.g. Kansas City-Denver in the paper).
func (m *Map) EnsureConduit(a, b NodeID, corridor int, path geo.Polyline) ConduitID {
	if a == b {
		panic(fmt.Sprintf("fiber: conduit endpoints equal (%d)", a))
	}
	pk := mkPair(a, b)
	for _, cid := range m.conduitsByPair[pk] {
		if m.Conduits[cid].Corridor == corridor {
			return cid
		}
	}
	id := ConduitID(len(m.Conduits))
	m.Conduits = append(m.Conduits, Conduit{
		ID: id, A: a, B: b, Path: path,
		LengthKm: path.LengthKm(), Corridor: corridor,
	})
	m.conduitsByPair[pk] = append(m.conduitsByPair[pk], id)
	return id
}

// ConduitsBetween returns the conduits (possibly parallel) directly
// connecting a and b.
func (m *Map) ConduitsBetween(a, b NodeID) []ConduitID {
	out := m.conduitsByPair[mkPair(a, b)]
	cp := make([]ConduitID, len(out))
	copy(cp, out)
	return cp
}

// AddTenant records isp's published presence in conduit cid. It
// returns false if the tenancy was already recorded.
func (m *Map) AddTenant(cid ConduitID, isp string) bool {
	c := &m.Conduits[cid]
	var added bool
	c.Tenants, added = insertSorted(c.Tenants, isp)
	if added {
		m.byTenant[isp] = append(m.byTenant[isp], cid)
		m.linkCount++
	}
	return added
}

// AddHiddenTenant records an unpublished tenancy (visible to the
// traceroute overlay but not to the published risk matrix).
func (m *Map) AddHiddenTenant(cid ConduitID, isp string) bool {
	c := &m.Conduits[cid]
	if containsSorted(c.Tenants, isp) {
		return false
	}
	var added bool
	c.Hidden, added = insertSorted(c.Hidden, isp)
	return added
}

// ISPs returns the published tenants across the map, sorted.
func (m *Map) ISPs() []string {
	out := make([]string, 0, len(m.byTenant))
	for isp := range m.byTenant {
		out = append(out, isp)
	}
	sort.Strings(out)
	return out
}

// ConduitsOf returns the conduits where isp is a published tenant.
func (m *Map) ConduitsOf(isp string) []ConduitID {
	src := m.byTenant[isp]
	out := make([]ConduitID, len(src))
	copy(out, src)
	return out
}

// NodesOf returns the distinct nodes touched by isp's conduits,
// ascending.
func (m *Map) NodesOf(isp string) []NodeID {
	seen := make(map[NodeID]struct{})
	for _, cid := range m.byTenant[isp] {
		c := &m.Conduits[cid]
		seen[c.A] = struct{}{}
		seen[c.B] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkCount returns the total number of (ISP, conduit) links.
func (m *Map) LinkCount() int { return m.linkCount }

// Stats summarizes the map in the terms of the paper's Figure 1
// caption: nodes, links, and conduits with at least one tenant.
type Stats struct {
	Nodes        int
	Links        int
	Conduits     int // conduits with >= 1 published tenant
	ISPs         int
	TotalKm      float64
	AvgTenancy   float64 // links / conduits
	MaxSharing   int
	SharedByGE2  int
	SharedByGE3  int
	SharedByGE4  int
	SharedByGT17 int
}

// Stats computes summary statistics over tenanted conduits.
func (m *Map) Stats() Stats {
	s := Stats{Nodes: len(m.Nodes), Links: m.linkCount, ISPs: len(m.byTenant)}
	for i := range m.Conduits {
		c := &m.Conduits[i]
		n := len(c.Tenants)
		if n == 0 {
			continue
		}
		s.Conduits++
		s.TotalKm += c.LengthKm
		if n > s.MaxSharing {
			s.MaxSharing = n
		}
		if n >= 2 {
			s.SharedByGE2++
		}
		if n >= 3 {
			s.SharedByGE3++
		}
		if n >= 4 {
			s.SharedByGE4++
		}
		if n > 17 {
			s.SharedByGT17++
		}
	}
	if s.Conduits > 0 {
		s.AvgTenancy = float64(s.Links) / float64(s.Conduits)
	}
	return s
}

// Graph returns the conduit multigraph over all conduits: vertex i is
// node i, edge j is conduit j, weighted by length. Conduits with no
// tenants are included; use WeightFunc filters to exclude them.
func (m *Map) Graph() *graph.Graph {
	g := graph.New(len(m.Nodes))
	for i := range m.Conduits {
		c := &m.Conduits[i]
		g.AddEdge(int(c.A), int(c.B), c.LengthKm)
	}
	return g
}

// TenantWeight returns a graph.WeightFunc that permits only conduits
// where isp is a published tenant, weighted by length.
func (m *Map) TenantWeight(isp string) graph.WeightFunc {
	return func(eid int) float64 {
		c := &m.Conduits[eid]
		if !c.HasTenant(isp) {
			return inf
		}
		return c.LengthKm
	}
}

// LitWeight returns a graph.WeightFunc permitting any conduit with at
// least one published tenant (the paper's "conduits with lit fiber").
func (m *Map) LitWeight() graph.WeightFunc {
	return func(eid int) float64 {
		c := &m.Conduits[eid]
		if len(c.Tenants) == 0 {
			return inf
		}
		return c.LengthKm
	}
}

var inf = math.Inf(1)
