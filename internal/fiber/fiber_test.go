package fiber

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"intertubes/internal/geo"
)

func testMap(t *testing.T) (*Map, []NodeID, []ConduitID) {
	t.Helper()
	m := NewMap()
	a := m.AddNode("Denver", "CO", geo.Point{Lat: 39.74, Lon: -104.99}, 715000, 1)
	b := m.AddNode("Salt Lake City", "UT", geo.Point{Lat: 40.76, Lon: -111.89}, 200000, 2)
	c := m.AddNode("Cheyenne", "WY", geo.Point{Lat: 41.14, Lon: -104.82}, 65000, 3)
	c1 := m.EnsureConduit(a, b, 0, geo.GreatCircle(m.Node(a).Loc, m.Node(b).Loc, 4))
	c2 := m.EnsureConduit(a, c, 1, geo.GreatCircle(m.Node(a).Loc, m.Node(c).Loc, 4))
	c3 := m.EnsureConduit(b, c, 2, geo.GreatCircle(m.Node(b).Loc, m.Node(c).Loc, 4))
	return m, []NodeID{a, b, c}, []ConduitID{c1, c2, c3}
}

func TestAddNodeIdempotent(t *testing.T) {
	m := NewMap()
	a := m.AddNode("Denver", "CO", geo.Point{}, 1, -1)
	b := m.AddNode("Denver", "CO", geo.Point{}, 2, -1)
	if a != b {
		t.Errorf("duplicate add returned new id %d != %d", b, a)
	}
	if len(m.Nodes) != 1 {
		t.Errorf("nodes = %d, want 1", len(m.Nodes))
	}
	if id, ok := m.NodeByKey("Denver,CO"); !ok || id != a {
		t.Errorf("NodeByKey = %v,%v", id, ok)
	}
}

func TestEnsureConduitDedupe(t *testing.T) {
	m, nodes, conduits := testMap(t)
	again := m.EnsureConduit(nodes[0], nodes[1], 0, nil)
	if again != conduits[0] {
		t.Errorf("same pair+corridor should dedupe: %d != %d", again, conduits[0])
	}
	// Reversed endpoints also dedupe.
	rev := m.EnsureConduit(nodes[1], nodes[0], 0, nil)
	if rev != conduits[0] {
		t.Errorf("reversed pair should dedupe: %d != %d", rev, conduits[0])
	}
	// A different corridor creates a parallel conduit.
	par := m.EnsureConduit(nodes[0], nodes[1], 9, geo.GreatCircle(m.Node(nodes[0]).Loc, m.Node(nodes[1]).Loc, 8))
	if par == conduits[0] {
		t.Error("different corridor must not dedupe")
	}
	if got := m.ConduitsBetween(nodes[0], nodes[1]); len(got) != 2 {
		t.Errorf("ConduitsBetween = %v, want 2 parallel conduits", got)
	}
}

func TestEnsureConduitPanicsOnSelfLoop(t *testing.T) {
	m, nodes, _ := testMap(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.EnsureConduit(nodes[0], nodes[0], 0, nil)
}

func TestTenancy(t *testing.T) {
	m, _, conduits := testMap(t)
	if !m.AddTenant(conduits[0], "Level 3") {
		t.Error("first add should succeed")
	}
	if m.AddTenant(conduits[0], "Level 3") {
		t.Error("duplicate add should report false")
	}
	m.AddTenant(conduits[0], "AT&T")
	m.AddTenant(conduits[1], "Level 3")

	c := m.Conduit(conduits[0])
	if !c.HasTenant("Level 3") || !c.HasTenant("AT&T") || c.HasTenant("Sprint") {
		t.Errorf("tenants = %v", c.Tenants)
	}
	if c.SharingDegree() != 2 {
		t.Errorf("sharing = %d", c.SharingDegree())
	}
	// Tenants stay sorted.
	if c.Tenants[0] != "AT&T" || c.Tenants[1] != "Level 3" {
		t.Errorf("tenants not sorted: %v", c.Tenants)
	}
	if got := m.ConduitsOf("Level 3"); len(got) != 2 {
		t.Errorf("Level 3 conduits = %v", got)
	}
	if got := m.ISPs(); len(got) != 2 || got[0] != "AT&T" {
		t.Errorf("ISPs = %v", got)
	}
	if m.LinkCount() != 3 {
		t.Errorf("links = %d, want 3", m.LinkCount())
	}
}

func TestHiddenTenants(t *testing.T) {
	m, _, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3")
	if !m.AddHiddenTenant(conduits[0], "SoftLayer") {
		t.Error("hidden add should succeed")
	}
	if m.AddHiddenTenant(conduits[0], "SoftLayer") {
		t.Error("duplicate hidden add should report false")
	}
	// A published tenant cannot also be hidden.
	if m.AddHiddenTenant(conduits[0], "Level 3") {
		t.Error("published tenant must not become hidden")
	}
	all := m.Conduit(conduits[0]).AllTenants()
	if len(all) != 2 || all[0] != "Level 3" || all[1] != "SoftLayer" {
		t.Errorf("AllTenants = %v", all)
	}
	// Hidden tenants do not count as links or published tenants.
	if m.LinkCount() != 1 {
		t.Errorf("links = %d, want 1", m.LinkCount())
	}
	if m.Conduit(conduits[0]).HasTenant("SoftLayer") {
		t.Error("hidden tenant must not be published")
	}
}

func TestNodesOf(t *testing.T) {
	m, nodes, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3") // Denver-SLC
	m.AddTenant(conduits[2], "Level 3") // SLC-Cheyenne
	got := m.NodesOf("Level 3")
	if len(got) != 3 {
		t.Fatalf("NodesOf = %v", got)
	}
	for i, want := range nodes {
		if got[i] != want {
			t.Errorf("NodesOf[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestStats(t *testing.T) {
	m, _, conduits := testMap(t)
	isps := []string{"A", "B", "C", "D"}
	for _, isp := range isps {
		m.AddTenant(conduits[0], isp)
	}
	m.AddTenant(conduits[1], "A")
	m.AddTenant(conduits[1], "B")
	// conduits[2] stays empty.
	s := m.Stats()
	if s.Nodes != 3 || s.Conduits != 2 || s.Links != 6 || s.ISPs != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.SharedByGE2 != 2 || s.SharedByGE3 != 1 || s.SharedByGE4 != 1 {
		t.Errorf("sharing counts = %+v", s)
	}
	if s.MaxSharing != 4 || s.SharedByGT17 != 0 {
		t.Errorf("max sharing = %+v", s)
	}
	if math.Abs(s.AvgTenancy-3.0) > 1e-9 {
		t.Errorf("avg tenancy = %v, want 3", s.AvgTenancy)
	}
}

func TestGraphAndWeights(t *testing.T) {
	m, nodes, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3") // Denver-SLC
	m.AddTenant(conduits[1], "Level 3") // Denver-Cheyenne
	m.AddTenant(conduits[2], "Sprint")  // SLC-Cheyenne

	g := m.Graph()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("graph = %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	// Level 3 cannot use the Sprint-only conduit: SLC->Cheyenne must
	// route via Denver.
	p, ok := g.ShortestPath(int(nodes[1]), int(nodes[2]), m.TenantWeight("Level 3"))
	if !ok || p.Hops() != 2 {
		t.Errorf("Level 3 path = %+v, %v", p, ok)
	}
	// Under LitWeight the direct conduit is usable.
	p, ok = g.ShortestPath(int(nodes[1]), int(nodes[2]), m.LitWeight())
	if !ok || p.Hops() != 1 {
		t.Errorf("lit path = %+v, %v", p, ok)
	}
}

func TestLitWeightExcludesEmptyConduits(t *testing.T) {
	m, nodes, _ := testMap(t)
	// No tenants anywhere: all conduits unlit.
	g := m.Graph()
	if _, ok := g.ShortestPath(int(nodes[0]), int(nodes[1]), m.LitWeight()); ok {
		t.Error("path should not exist over unlit conduits")
	}
}

func TestConduitOther(t *testing.T) {
	m, nodes, conduits := testMap(t)
	c := m.Conduit(conduits[0])
	if c.Other(nodes[0]) != nodes[1] || c.Other(nodes[1]) != nodes[0] {
		t.Error("Other endpoints wrong")
	}
}

func TestGeoJSON(t *testing.T) {
	m, _, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3")
	raw, err := m.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" {
		t.Errorf("type = %q", doc.Type)
	}
	points, lines := 0, 0
	for _, f := range doc.Features {
		switch f.Geometry.Type {
		case "Point":
			points++
		case "LineString":
			lines++
		}
	}
	// 3 nodes, and only the single tenanted conduit.
	if points != 3 || lines != 1 {
		t.Errorf("points=%d lines=%d, want 3,1", points, lines)
	}
}

func TestLayerGeoJSON(t *testing.T) {
	raw, err := LayerGeoJSON("road", []geo.Polyline{
		geo.GreatCircle(geo.Point{Lat: 40, Lon: -105}, geo.Point{Lat: 41, Lon: -104}, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Error("invalid JSON")
	}
}

func TestInsertSortedProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		var xs []string
		for _, r := range raw {
			s := string(rune('a' + r%26))
			xs, _ = insertSorted(xs, s)
		}
		for i := 1; i < len(xs); i++ {
			if xs[i-1] >= xs[i] {
				return false // must be strictly sorted (set semantics)
			}
		}
		for _, x := range xs {
			if !containsSorted(xs, x) {
				return false
			}
		}
		return !containsSorted(xs, "0") // digit never inserted
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoJSONSimplified(t *testing.T) {
	m, _, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3")
	full, err := m.GeoJSONSimplified(0)
	if err != nil {
		t.Fatal(err)
	}
	slim, err := m.GeoJSONSimplified(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(slim) >= len(full) {
		t.Errorf("simplified export (%d bytes) not smaller than full (%d)", len(slim), len(full))
	}
	if !json.Valid(slim) {
		t.Error("simplified export is invalid JSON")
	}
}
