package fiber

import (
	"reflect"
	"testing"

	"intertubes/internal/geo"
)

// cloneMap builds a small shared map:
//
//	c0 A-B: X, Y
//	c1 B-C: X
//	c2 A-C: Z
func cloneMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	a := m.AddNode("A", "XX", geo.Point{Lat: 40, Lon: -100}, 1, -1)
	b := m.AddNode("B", "XX", geo.Point{Lat: 41, Lon: -101}, 1, -1)
	c := m.AddNode("C", "XX", geo.Point{Lat: 42, Lon: -102}, 1, -1)
	mk := func(x, y NodeID, corr int) ConduitID {
		return m.EnsureConduit(x, y, corr, geo.GreatCircle(m.Node(x).Loc, m.Node(y).Loc, 2))
	}
	c0 := mk(a, b, 0)
	c1 := mk(b, c, 1)
	c2 := mk(a, c, 2)
	m.AddTenant(c0, "X")
	m.AddTenant(c0, "Y")
	m.AddTenant(c1, "X")
	m.AddTenant(c2, "Z")
	return m
}

func TestCloneIndependence(t *testing.T) {
	m := cloneMap(t)
	cp := m.Clone()

	if !reflect.DeepEqual(m.Stats(), cp.Stats()) {
		t.Fatalf("clone stats differ: %+v vs %+v", m.Stats(), cp.Stats())
	}
	if !reflect.DeepEqual(m.ISPs(), cp.ISPs()) {
		t.Fatalf("clone ISPs differ: %v vs %v", m.ISPs(), cp.ISPs())
	}

	// Mutate the clone; the original must be untouched.
	cp.ClearTenants(0)
	cp.RemoveISP("Z")
	if got := m.Conduit(0).Tenants; len(got) != 2 {
		t.Errorf("original conduit 0 tenants mutated: %v", got)
	}
	if got := m.ConduitsOf("Z"); len(got) != 1 {
		t.Errorf("original byTenant index mutated: %v", got)
	}
	if got := m.Stats().Links; got != 4 {
		t.Errorf("original link count mutated: %d", got)
	}

	// And new tenancies on the clone must not leak back.
	cp.AddTenant(1, "W")
	if got := m.ConduitsOf("W"); len(got) != 0 {
		t.Errorf("tenant added to clone visible in original: %v", got)
	}
}

func TestRemoveTenant(t *testing.T) {
	m := cloneMap(t)
	if !m.RemoveTenant(0, "X") {
		t.Fatal("RemoveTenant(0, X) = false")
	}
	if m.RemoveTenant(0, "X") {
		t.Error("second RemoveTenant(0, X) should report false")
	}
	if m.Conduit(0).HasTenant("X") {
		t.Error("conduit 0 still lists X")
	}
	if got := m.ConduitsOf("X"); !reflect.DeepEqual(got, []ConduitID{1}) {
		t.Errorf("ConduitsOf(X) = %v, want [1]", got)
	}
	if got := m.Stats().Links; got != 3 {
		t.Errorf("Links = %d, want 3", got)
	}
}

func TestClearTenantsDarkensConduit(t *testing.T) {
	m := cloneMap(t)
	if got := m.ClearTenants(0); got != 2 {
		t.Fatalf("ClearTenants(0) = %d, want 2", got)
	}
	if got := m.ClearTenants(0); got != 0 {
		t.Errorf("second ClearTenants(0) = %d, want 0", got)
	}
	st := m.Stats()
	if st.Conduits != 2 { // lit conduits only
		t.Errorf("lit conduits = %d, want 2", st.Conduits)
	}
	if st.Links != 2 {
		t.Errorf("links = %d, want 2", st.Links)
	}
}

func TestRemoveISP(t *testing.T) {
	m := cloneMap(t)
	if got := m.RemoveISP("X"); got != 2 {
		t.Fatalf("RemoveISP(X) = %d, want 2", got)
	}
	if got := m.RemoveISP("X"); got != 0 {
		t.Errorf("second RemoveISP(X) = %d, want 0", got)
	}
	for _, isp := range m.ISPs() {
		if isp == "X" {
			t.Error("X still listed by ISPs()")
		}
	}
	if m.Conduit(1).HasTenant("X") {
		t.Error("conduit 1 still lists X")
	}
}
