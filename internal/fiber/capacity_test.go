package fiber

import (
	"testing"

	"intertubes/internal/geo"
)

func TestWavelengthsForDeterministic(t *testing.T) {
	a, b := NodeID(3), NodeID(9)
	w1 := WavelengthsFor(a, b, 812.5, 3)
	w2 := WavelengthsFor(a, b, 812.5, 3)
	if w1 != w2 {
		t.Fatalf("WavelengthsFor not deterministic: %d vs %d", w1, w2)
	}
	if w1 <= 0 {
		t.Fatalf("lit conduit has %d wavelengths, want > 0", w1)
	}
}

func TestWavelengthsForDarkIsZero(t *testing.T) {
	if w := WavelengthsFor(1, 2, 500, 0); w != 0 {
		t.Fatalf("dark conduit wavelengths = %d, want 0", w)
	}
	if c := CapacityGbps(1, 2, 500, 0); c != 0 {
		t.Fatalf("dark conduit capacity = %v, want 0", c)
	}
}

func TestWavelengthsForMonotoneInTenants(t *testing.T) {
	prev := 0
	for tenants := 1; tenants <= 20; tenants++ {
		w := WavelengthsFor(5, 6, 1200, tenants)
		if w <= prev {
			t.Fatalf("wavelengths not strictly increasing: %d tenants -> %d (prev %d)", tenants, w, prev)
		}
		prev = w
	}
}

func TestWavelengthsForLongHaulPenalty(t *testing.T) {
	// The same endpoints and tenancy, but far beyond the regeneration
	// threshold: per-tenant spectrum must not grow, and stays >= 2.
	short := WavelengthsFor(1, 2, 100, 1)
	for km := 2500.0; km < 6000; km += 700 {
		long := WavelengthsFor(1, 2, km, 1)
		if long < 2 {
			t.Fatalf("long-haul per-tenant wavelengths = %d at %g km, want >= 2", long, km)
		}
		_ = short
	}
}

// TestConduitCapacityViewAgreement: a map and an overlay of it with no
// perturbation must report identical capacities, and cutting a conduit
// through an overlay must zero it.
func TestConduitCapacityViewAgreement(t *testing.T) {
	m := NewMap()
	a := m.AddNode("A", "aa", geo.Point{Lat: 30, Lon: -90}, 1000, -1)
	b := m.AddNode("B", "bb", geo.Point{Lat: 31, Lon: -91}, 2000, -1)
	cid := m.EnsureConduit(a, b, -1, geo.Polyline{m.Node(a).Loc, m.Node(b).Loc})
	m.AddTenant(cid, "isp1")
	m.AddTenant(cid, "isp2")

	ov, err := NewOverlay(m, Perturbation{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ConduitCapacityGbps(ov.Final(), cid), ConduitCapacityGbps(m, cid); got != want {
		t.Fatalf("overlay capacity %v != map capacity %v", got, want)
	}

	cut, err := NewOverlay(m, Perturbation{Cuts: []ConduitID{cid}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ConduitCapacityGbps(cut.Final(), cid); got != 0 {
		t.Fatalf("cut conduit capacity = %v, want 0", got)
	}
}
