package fiber

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	m, _, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3")
	m.AddTenant(conduits[0], "AT&T")
	m.AddTenant(conduits[1], "Sprint")
	m.AddHiddenTenant(conduits[0], "SoftLayer")

	var buf bytes.Buffer
	if err := WriteMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMap(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("nodes %d != %d", len(got.Nodes), len(m.Nodes))
	}
	if len(got.Conduits) != len(m.Conduits) {
		t.Fatalf("conduits %d != %d", len(got.Conduits), len(m.Conduits))
	}
	for i := range m.Nodes {
		a, b := &m.Nodes[i], &got.Nodes[i]
		if a.Key() != b.Key() || a.Population != b.Population || a.AtlasCity != b.AtlasCity {
			t.Errorf("node %d: %+v != %+v", i, a, b)
		}
		if a.Loc.DistanceKm(b.Loc) > 0.01 {
			t.Errorf("node %d moved %.4f km", i, a.Loc.DistanceKm(b.Loc))
		}
	}
	for i := range m.Conduits {
		a, b := &m.Conduits[i], &got.Conduits[i]
		if a.Corridor != b.Corridor || len(a.Tenants) != len(b.Tenants) || len(a.Hidden) != len(b.Hidden) {
			t.Errorf("conduit %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Tenants {
			if a.Tenants[j] != b.Tenants[j] {
				t.Errorf("conduit %d tenant %d: %q != %q", i, j, a.Tenants[j], b.Tenants[j])
			}
		}
		// Length is recomputed from the (rounded) path: within metres.
		if diff := a.LengthKm - b.LengthKm; diff > 0.05 || diff < -0.05 {
			t.Errorf("conduit %d length %.4f != %.4f", i, a.LengthKm, b.LengthKm)
		}
	}
	if got.LinkCount() != m.LinkCount() {
		t.Errorf("links %d != %d", got.LinkCount(), m.LinkCount())
	}
}

func TestReadMapErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"bad record", "banana|x", "unknown record"},
		{"short node", "node|A|ST|1", "7 fields"},
		{"bad node numbers", "node|A|ST|x|0|1|0", "malformed node"},
		{"bad coords", "node|A|ST|99|0|1|0", "invalid coordinates"},
		{"short conduit", "conduit|a|b", "7 fields"},
		{"unknown endpoint", "conduit|A,ST|B,ST|0|||", "unknown node"},
		{"bad corridor", "node|A|ST|1|1|1|0\nnode|B|ST|2|2|1|0\nconduit|A,ST|B,ST|x|||", "corridor"},
		{"bad path", "node|A|ST|1|1|1|0\nnode|B|ST|2|2|1|0\nconduit|A,ST|B,ST|0|||junk", "bad path point"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadMap(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestReadMapSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nnode|A|ST|1|1|1|-1\n# trailing comment\n"
	m, err := ReadMap(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 1 {
		t.Errorf("nodes = %d", len(m.Nodes))
	}
}

func TestWriteMapIsStable(t *testing.T) {
	m, _, conduits := testMap(t)
	m.AddTenant(conduits[0], "Level 3")
	var a, b bytes.Buffer
	if err := WriteMap(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteMap(&b, m); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
	if !strings.HasPrefix(a.String(), datasetHeader) {
		t.Error("missing header")
	}
}
