package fiber

// capacity.go is the physical half of the IP-over-optical capacity
// layer: a deterministic synthetic wavelength count per conduit,
// derived from its sharing degree and corridor length. Like the rest
// of the atlas-derived quantities (see atlas's wiggle synthesis), the
// model is a pure seeded function of stable inputs — endpoints,
// length, tenant count — so any View (the baseline map, a clone, a
// copy-on-write overlay) computes the identical capacity for the same
// effective state, and a cut conduit (tenants gone dark) reads as
// zero capacity with no extra bookkeeping.

// GbpsPerWavelength is the line rate of one lit DWDM wavelength, in
// Gbps (40G coherent transport, the paper-era long-haul standard).
const GbpsPerWavelength = 40.0

// baseWavelengthsPerTenant is the spectral slice every tenant lights
// on a conduit it occupies, before the per-conduit jitter.
const baseWavelengthsPerTenant = 4

// longHaulRegenKm is the corridor length beyond which regeneration
// spacing thins each tenant's lit spectrum by one wavelength.
const longHaulRegenKm = 2000

// capacityHash is FNV-1a over the conduit's stable identity — the
// same deterministic-synthesis idiom the atlas uses to wiggle
// corridor geometry.
func capacityHash(a, b NodeID, lengthKm float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hv := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			hv ^= x & 0xff
			hv *= prime64
			x >>= 8
		}
	}
	mix(uint64(a))
	mix(uint64(b))
	mix(uint64(lengthKm * 16)) // 1/16 km grid: stable under float noise
	return hv
}

// WavelengthsFor returns the conduit's synthetic lit wavelength
// count: each tenant lights baseWavelengthsPerTenant wavelengths plus
// a deterministic 0..3 jitter seeded from the conduit's endpoints and
// length, minus one on ultra-long corridors (regeneration spacing),
// never below 2 per tenant. A dark conduit (no tenants) is 0.
func WavelengthsFor(a, b NodeID, lengthKm float64, tenants int) int {
	if tenants <= 0 {
		return 0
	}
	per := baseWavelengthsPerTenant + int(capacityHash(a, b, lengthKm)%4)
	if lengthKm > longHaulRegenKm {
		per--
	}
	if per < 2 {
		per = 2
	}
	return tenants * per
}

// CapacityGbps returns the conduit's synthetic capacity in Gbps.
func CapacityGbps(a, b NodeID, lengthKm float64, tenants int) float64 {
	return float64(WavelengthsFor(a, b, lengthKm, tenants)) * GbpsPerWavelength
}

// ConduitCapacityGbps returns the conduit's capacity under the view's
// effective tenancy. Because the model is a pure function of the
// view's current state, a clone and an overlay of the same
// perturbation report bit-identical capacities.
func ConduitCapacityGbps(v View, cid ConduitID) float64 {
	a, b := v.ConduitEnds(cid)
	return CapacityGbps(a, b, v.ConduitLengthKm(cid), len(v.Tenants(cid)))
}
