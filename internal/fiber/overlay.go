package fiber

import (
	"fmt"
	"sort"

	"intertubes/internal/geo"
)

// overlay.go is the copy-on-write counterpart of clone.go: instead of
// deep-copying the whole map to perturb it, an Overlay records the
// delta — cut conduits, removed providers, new builds — and answers
// View queries by consulting the delta first and the shared immutable
// base otherwise. Construction cost is proportional to the
// perturbation, not the map, which is what makes thousands of what-if
// evaluations per sweep affordable.
//
// Semantics are pinned to the mutation path: an Overlay's Final view
// must answer every View query exactly as the map built by Clone +
// RemoveISP + EnsureConduit/AddTenant + ClearTenants (in that order —
// the scenario engine's order) would. In particular additions are NOT
// filtered by removed providers (removal happens first, so an explicit
// addition can re-introduce a removed provider's tenancy), and cuts
// are applied last (they darken tenancies merged in by additions).
// Materialize replays the delta through those primitives, and the
// overlay test suite diffs the two against each other.

// OverlayAddition is one resolved new build: endpoints as node ids and
// an explicit, sorted tenant list (callers expand "open access" before
// constructing the overlay).
type OverlayAddition struct {
	A, B    NodeID
	Tenants []string
}

// Perturbation is the delta an Overlay applies to its base map.
type Perturbation struct {
	// Cuts are base conduit ids to darken (additions cannot be cut).
	Cuts []ConduitID
	// RemoveISPs lose every published tenancy.
	RemoveISPs []string
	// Additions are new builds, applied after removals in order.
	Additions []OverlayAddition
}

// Overlay is a copy-on-write perturbed view of a base map. The base
// is shared and never mutated; concurrent overlays over one base are
// safe. The zero value is not ready; use NewOverlay.
type Overlay struct {
	base *Map
	pert Perturbation

	cut     []bool          // len == len(base.Conduits)
	removed map[string]bool // provider-removal set
	// effPlus overrides the plus-view tenant list for base conduits
	// affected by removals or merged additions. Cuts are not recorded
	// here: the Final view masks them at read time.
	effPlus map[ConduitID][]string
	// virtual conduits materialized by additions that merged with no
	// existing conduit; ids follow the base (len(base.Conduits)+i).
	virtual []Conduit
	// targets[i] is the conduit addition i landed on (base or virtual).
	targets []ConduitID
	// cutList is the deduplicated cut set (cut's true indices).
	cutList []ConduitID

	linksRemoved int
}

// NewOverlay builds the copy-on-write view of base under p. It fails
// on an addition whose endpoints coincide (mirroring EnsureConduit)
// or a cut id outside the base conduit range.
func NewOverlay(base *Map, p Perturbation) (*Overlay, error) {
	o := &Overlay{
		base:    base,
		pert:    p,
		cut:     make([]bool, len(base.Conduits)),
		removed: make(map[string]bool, len(p.RemoveISPs)),
		effPlus: make(map[ConduitID][]string),
	}
	for _, cid := range p.Cuts {
		if cid < 0 || int(cid) >= len(base.Conduits) {
			return nil, fmt.Errorf("fiber: overlay cut %d out of range (base has %d conduits)", cid, len(base.Conduits))
		}
		if !o.cut[cid] {
			o.cut[cid] = true
			o.cutList = append(o.cutList, cid)
		}
	}

	// Removals first — the mutation path's order.
	for _, isp := range p.RemoveISPs {
		if o.removed[isp] {
			continue
		}
		o.removed[isp] = true
		cids := base.byTenant[isp]
		o.linksRemoved += len(cids)
		for _, cid := range cids {
			o.effPlus[cid] = removeSorted(o.effTenantsPlus(cid), isp)
		}
	}

	// Additions merge exactly like EnsureConduit: the first existing
	// conduit between the pair following no corridor (-1) wins; base
	// conduits are consulted before earlier virtual builds, matching
	// conduitsByPair's append order.
	virtByPair := make(map[pairKey][]int)
	for _, ad := range p.Additions {
		if ad.A == ad.B {
			return nil, fmt.Errorf("fiber: overlay addition endpoints equal (%d)", ad.A)
		}
		pk := mkPair(ad.A, ad.B)
		target := ConduitID(-1)
		for _, cid := range base.conduitsByPair[pk] {
			if base.Conduits[cid].Corridor == -1 {
				target = cid
				break
			}
		}
		if target < 0 {
			if vis := virtByPair[pk]; len(vis) > 0 {
				target = o.virtual[vis[0]].ID
			}
		}
		if target < 0 {
			path := geo.Polyline{base.Nodes[ad.A].Loc, base.Nodes[ad.B].Loc}
			target = ConduitID(len(base.Conduits) + len(o.virtual))
			o.virtual = append(o.virtual, Conduit{
				ID: target, A: ad.A, B: ad.B, Path: path,
				LengthKm: path.LengthKm(), Corridor: -1,
			})
			virtByPair[pk] = append(virtByPair[pk], len(o.virtual)-1)
		}
		o.targets = append(o.targets, target)
		if int(target) >= len(base.Conduits) {
			vc := &o.virtual[int(target)-len(base.Conduits)]
			for _, isp := range ad.Tenants {
				vc.Tenants, _ = insertSorted(vc.Tenants, isp)
			}
		} else {
			eff := o.effTenantsPlus(target)
			for _, isp := range ad.Tenants {
				eff, _ = insertSorted(eff, isp)
			}
			o.effPlus[target] = eff
		}
	}
	return o, nil
}

// effTenantsPlus returns a mutable effective tenant slice for a base
// conduit in the plus view: the existing override, or a fresh copy of
// the base tenants.
func (o *Overlay) effTenantsPlus(cid ConduitID) []string {
	if eff, ok := o.effPlus[cid]; ok {
		return eff
	}
	return append([]string(nil), o.base.Conduits[cid].Tenants...)
}

// LinksRemoved returns the number of (ISP, conduit) links the
// provider-removal clause severed — what RemoveISP would have counted.
func (o *Overlay) LinksRemoved() int { return o.linksRemoved }

// CutMask returns the cut indicator indexed by base conduit id.
// Read-only; virtual conduits (ids at or beyond its length) are never
// cut.
func (o *Overlay) CutMask() []bool { return o.cut }

// AdditionTargets returns, per addition, the conduit it landed on
// (a base conduit when the build merged with an existing route, a
// virtual id otherwise). Read-only.
func (o *Overlay) AdditionTargets() []ConduitID { return o.targets }

// NumBaseConduits returns the base map's conduit count; view conduit
// ids at or beyond it are virtual.
func (o *Overlay) NumBaseConduits() int { return len(o.base.Conduits) }

// Plus is the view with removals and additions applied but cut
// conduits still lit — the topology connectivity analyses run on,
// where a severed node still counts against its provider's pair total
// and the cut set is excluded by weight instead.
func (o *Overlay) Plus() View { return overlayView{o: o, dark: false} }

// Final is the fully perturbed view: cuts darkened on top of Plus.
func (o *Overlay) Final() View { return overlayView{o: o, dark: true} }

// Materialize replays the perturbation through the mutation primitives
// onto a deep clone of the base, producing the very map the clone
// evaluation path builds. The heavyweight consumers (latency studies,
// traffic campaigns) take a concrete *Map; overlay evaluations
// materialize one only when those stages are actually requested.
func (o *Overlay) Materialize() *Map {
	pm := o.base.Clone()
	for _, isp := range o.pert.RemoveISPs {
		pm.RemoveISP(isp)
	}
	for _, ad := range o.pert.Additions {
		path := geo.Polyline{pm.Nodes[ad.A].Loc, pm.Nodes[ad.B].Loc}
		cid := pm.EnsureConduit(ad.A, ad.B, -1, path)
		for _, isp := range ad.Tenants {
			pm.AddTenant(cid, isp)
		}
	}
	for _, cid := range o.pert.Cuts {
		pm.ClearTenants(cid)
	}
	return pm
}

// overlayView adapts an Overlay to the View interface; dark selects
// whether cut conduits read as tenantless.
type overlayView struct {
	o    *Overlay
	dark bool
}

func (v overlayView) NumNodes() int { return len(v.o.base.Nodes) }

func (v overlayView) NumConduits() int { return len(v.o.base.Conduits) + len(v.o.virtual) }

func (v overlayView) conduit(cid ConduitID) *Conduit {
	if nb := len(v.o.base.Conduits); int(cid) >= nb {
		return &v.o.virtual[int(cid)-nb]
	}
	return &v.o.base.Conduits[cid]
}

func (v overlayView) ConduitEnds(cid ConduitID) (NodeID, NodeID) {
	c := v.conduit(cid)
	return c.A, c.B
}

func (v overlayView) ConduitLengthKm(cid ConduitID) float64 { return v.conduit(cid).LengthKm }

func (v overlayView) Tenants(cid ConduitID) []string {
	o := v.o
	if nb := len(o.base.Conduits); int(cid) >= nb {
		return o.virtual[int(cid)-nb].Tenants
	}
	if v.dark && o.cut[cid] {
		return nil
	}
	if eff, ok := o.effPlus[cid]; ok {
		return eff
	}
	return o.base.Conduits[cid].Tenants
}

func (v overlayView) HasTenant(cid ConduitID, isp string) bool {
	return containsSorted(v.Tenants(cid), isp)
}

func (v overlayView) NodesOf(isp string) []NodeID {
	seen := make(map[NodeID]struct{})
	nc := v.NumConduits()
	for cid := ConduitID(0); int(cid) < nc; cid++ {
		if !v.HasTenant(cid, isp) {
			continue
		}
		c := v.conduit(cid)
		seen[c.A] = struct{}{}
		seen[c.B] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats computes the Figure 1 summary over the view's effective
// tenancy. The per-conduit accumulation runs in ascending conduit id
// order — virtuals after the base block — exactly like Map.Stats over
// the materialized map, so even the floating-point kilometre total is
// bit-identical to the mutation path's.
func (v overlayView) Stats() Stats {
	s := Stats{Nodes: len(v.o.base.Nodes), ISPs: v.ispCount()}
	nc := v.NumConduits()
	for cid := ConduitID(0); int(cid) < nc; cid++ {
		n := len(v.Tenants(cid))
		s.Links += n
		if n == 0 {
			continue
		}
		s.Conduits++
		s.TotalKm += v.ConduitLengthKm(cid)
		if n > s.MaxSharing {
			s.MaxSharing = n
		}
		if n >= 2 {
			s.SharedByGE2++
		}
		if n >= 3 {
			s.SharedByGE3++
		}
		if n >= 4 {
			s.SharedByGE4++
		}
		if n > 17 {
			s.SharedByGT17++
		}
	}
	if s.Conduits > 0 {
		s.AvgTenancy = float64(s.Links) / float64(s.Conduits)
	}
	return s
}

// ispCount counts providers with at least one effective tenancy — the
// view equivalent of len(byTenant) on a materialized map. Only
// conduits the delta touched can change a provider's link count, so
// the diff walks the affected set and adjusts the base count.
func (v overlayView) ispCount() int {
	o := v.o
	delta := make(map[string]int)
	diff := func(cid ConduitID) {
		base := o.base.Conduits[cid].Tenants
		eff := v.Tenants(cid)
		// Merge-walk two sorted lists, counting insertions/deletions.
		i, j := 0, 0
		for i < len(base) || j < len(eff) {
			switch {
			case j == len(eff) || (i < len(base) && base[i] < eff[j]):
				delta[base[i]]--
				i++
			case i == len(base) || base[i] > eff[j]:
				delta[eff[j]]++
				j++
			default:
				i++
				j++
			}
		}
	}
	if v.dark {
		for _, cid := range o.cutList {
			diff(cid)
		}
	}
	for cid := range o.effPlus {
		if v.dark && o.cut[cid] {
			continue // already diffed as a cut
		}
		diff(cid)
	}
	for i := range o.virtual {
		for _, isp := range o.virtual[i].Tenants {
			delta[isp]++
		}
	}
	count := len(o.base.byTenant)
	for isp, d := range delta {
		baseN := len(o.base.byTenant[isp])
		if baseN > 0 && baseN+d == 0 {
			count--
		} else if baseN == 0 && d > 0 {
			count++
		}
	}
	return count
}

var _ View = overlayView{}
