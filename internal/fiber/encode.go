package fiber

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"intertubes/internal/geo"
)

// encode.go serializes a Map to a line-oriented text format and back —
// the equivalent of the dataset the paper released through the
// PREDICT portal. The format is designed for diffing and longevity:
//
//	# comment
//	node|City|ST|<lat>|<lon>|<population>|<atlasCity>
//	conduit|<aKey>|<bKey>|<corridor>|<tenants,csv>|<hidden,csv>|<lat,lon;lat,lon;...>
//
// Node lines must precede the conduit lines that reference them.
// Coordinates are written with five decimals (~1 m); lengths are
// recomputed on load.

const datasetHeader = "# intertubes long-haul fiber map v1"

// WriteMap serializes the map.
func WriteMap(w io.Writer, m *Map) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, datasetHeader)
	fmt.Fprintf(bw, "# nodes=%d conduits=%d links=%d\n", len(m.Nodes), len(m.Conduits), m.LinkCount())
	for i := range m.Nodes {
		n := &m.Nodes[i]
		fmt.Fprintf(bw, "node|%s|%s|%.5f|%.5f|%d|%d\n",
			n.City, n.State, n.Loc.Lat, n.Loc.Lon, n.Population, n.AtlasCity)
	}
	for i := range m.Conduits {
		c := &m.Conduits[i]
		var path strings.Builder
		for j, p := range c.Path {
			if j > 0 {
				path.WriteByte(';')
			}
			fmt.Fprintf(&path, "%.5f,%.5f", p.Lat, p.Lon)
		}
		fmt.Fprintf(bw, "conduit|%s|%s|%d|%s|%s|%s\n",
			m.Nodes[c.A].Key(), m.Nodes[c.B].Key(), c.Corridor,
			strings.Join(c.Tenants, ","), strings.Join(c.Hidden, ","), path.String())
	}
	return bw.Flush()
}

// ReadMap parses a map written by WriteMap.
func ReadMap(r io.Reader) (*Map, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22) // conduit paths are long lines
	m := NewMap()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		switch fields[0] {
		case "node":
			if len(fields) != 7 {
				return nil, fmt.Errorf("fiber: line %d: node wants 7 fields, got %d", lineNo, len(fields))
			}
			lat, err1 := strconv.ParseFloat(fields[3], 64)
			lon, err2 := strconv.ParseFloat(fields[4], 64)
			pop, err3 := strconv.Atoi(fields[5])
			ac, err4 := strconv.Atoi(fields[6])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("fiber: line %d: malformed node numbers", lineNo)
			}
			loc := geo.Point{Lat: lat, Lon: lon}
			if !loc.Valid() {
				return nil, fmt.Errorf("fiber: line %d: invalid coordinates", lineNo)
			}
			m.AddNode(fields[1], fields[2], loc, pop, ac)
		case "conduit":
			if len(fields) != 7 {
				return nil, fmt.Errorf("fiber: line %d: conduit wants 7 fields, got %d", lineNo, len(fields))
			}
			a, ok := m.NodeByKey(fields[1])
			if !ok {
				return nil, fmt.Errorf("fiber: line %d: unknown node %q", lineNo, fields[1])
			}
			b, ok := m.NodeByKey(fields[2])
			if !ok {
				return nil, fmt.Errorf("fiber: line %d: unknown node %q", lineNo, fields[2])
			}
			corridor, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("fiber: line %d: corridor: %v", lineNo, err)
			}
			path, err := parsePath(fields[6])
			if err != nil {
				return nil, fmt.Errorf("fiber: line %d: %v", lineNo, err)
			}
			cid := m.EnsureConduit(a, b, corridor, path)
			for _, t := range splitCSV(fields[4]) {
				m.AddTenant(cid, t)
			}
			for _, h := range splitCSV(fields[5]) {
				m.AddHiddenTenant(cid, h)
			}
		default:
			return nil, fmt.Errorf("fiber: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fiber: %w", err)
	}
	return m, nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parsePath(s string) (geo.Polyline, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make(geo.Polyline, 0, len(parts))
	for _, p := range parts {
		comma := strings.IndexByte(p, ',')
		if comma < 0 {
			return nil, fmt.Errorf("bad path point %q", p)
		}
		lat, err1 := strconv.ParseFloat(p[:comma], 64)
		lon, err2 := strconv.ParseFloat(p[comma+1:], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad path point %q", p)
		}
		out = append(out, geo.Point{Lat: lat, Lon: lon})
	}
	return out, nil
}
