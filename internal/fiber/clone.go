package fiber

// clone.go extends the Map with the mutation primitives the what-if
// scenario engine (internal/scenario) perturbs a copy of the baseline
// map with: deep cloning, tenancy removal, and conduit darkening.
// The baseline Map built by mapbuilder stays immutable; every scenario
// evaluates against its own clone.

// Clone returns a deep copy of the map: nodes, conduits (tenancy
// slices included), and the lookup indexes are all fresh. Geometry
// (paths) is shared — polylines are never mutated after construction.
func (m *Map) Clone() *Map {
	cp := &Map{
		Nodes:          append([]Node(nil), m.Nodes...),
		Conduits:       make([]Conduit, len(m.Conduits)),
		nodeByKey:      make(map[string]NodeID, len(m.nodeByKey)),
		conduitsByPair: make(map[pairKey][]ConduitID, len(m.conduitsByPair)),
		byTenant:       make(map[string][]ConduitID, len(m.byTenant)),
		linkCount:      m.linkCount,
	}
	for i := range m.Conduits {
		c := m.Conduits[i]
		c.Tenants = append([]string(nil), c.Tenants...)
		c.Hidden = append([]string(nil), c.Hidden...)
		cp.Conduits[i] = c
	}
	for k, v := range m.nodeByKey {
		cp.nodeByKey[k] = v
	}
	for k, v := range m.conduitsByPair {
		cp.conduitsByPair[k] = append([]ConduitID(nil), v...)
	}
	for k, v := range m.byTenant {
		cp.byTenant[k] = append([]ConduitID(nil), v...)
	}
	return cp
}

// RemoveTenant deletes isp's published presence from conduit cid,
// returning false if the tenancy was not recorded. The byTenant index
// and link count stay consistent.
func (m *Map) RemoveTenant(cid ConduitID, isp string) bool {
	c := &m.Conduits[cid]
	if !containsSorted(c.Tenants, isp) {
		return false
	}
	c.Tenants = removeSorted(c.Tenants, isp)
	cids := m.byTenant[isp]
	for i, id := range cids {
		if id == cid {
			m.byTenant[isp] = append(cids[:i], cids[i+1:]...)
			break
		}
	}
	if len(m.byTenant[isp]) == 0 {
		delete(m.byTenant, isp)
	}
	m.linkCount--
	return true
}

// ClearTenants strips every published tenancy from conduit cid — the
// model of a physical cut: the tube goes dark for everyone. It returns
// the number of tenancies removed.
func (m *Map) ClearTenants(cid ConduitID) int {
	tenants := append([]string(nil), m.Conduits[cid].Tenants...)
	for _, isp := range tenants {
		m.RemoveTenant(cid, isp)
	}
	return len(tenants)
}

// RemoveISP deletes every published tenancy of isp across the map,
// returning the number of links removed.
func (m *Map) RemoveISP(isp string) int {
	cids := append([]ConduitID(nil), m.byTenant[isp]...)
	for _, cid := range cids {
		m.RemoveTenant(cid, isp)
	}
	return len(cids)
}

func removeSorted(xs []string, x string) []string {
	i := 0
	for ; i < len(xs); i++ {
		if xs[i] == x {
			break
		}
	}
	if i == len(xs) {
		return xs
	}
	return append(xs[:i], xs[i+1:]...)
}
