package fiber

// view.go defines the read-only view the analysis layers consume
// instead of a concrete *Map. A View answers every tenancy and
// topology question the risk/resilience pipelines ask, which lets the
// scenario engine substitute a copy-on-write Overlay for the deep
// clone it used to hand them: the same code path sees either the
// baseline map itself or a perturbed view of it, without copying.

// View is a read-only perspective on a fiber map. Implementations
// must be safe for concurrent readers; returned slices may alias
// internal state and must not be mutated.
type View interface {
	// NumNodes returns the number of nodes (views never add nodes).
	NumNodes() int
	// NumConduits returns the number of conduits, including any
	// overlay-added builds (ids len(base.Conduits).. are virtual).
	NumConduits() int
	// ConduitEnds returns the conduit's endpoints.
	ConduitEnds(cid ConduitID) (a, b NodeID)
	// ConduitLengthKm returns the conduit's route length.
	ConduitLengthKm(cid ConduitID) float64
	// Tenants returns the conduit's effective published tenants,
	// sorted. The slice is read-only and may alias internal state.
	Tenants(cid ConduitID) []string
	// HasTenant reports whether isp is an effective published tenant
	// of the conduit.
	HasTenant(cid ConduitID, isp string) bool
	// NodesOf returns the distinct nodes touched by the conduits where
	// isp is an effective tenant, ascending.
	NodesOf(isp string) []NodeID
	// Stats computes the Figure 1 summary over the effective tenancy.
	Stats() Stats
}

// The baseline Map is itself a View.

// NumNodes returns the number of nodes.
func (m *Map) NumNodes() int { return len(m.Nodes) }

// NumConduits returns the number of conduits.
func (m *Map) NumConduits() int { return len(m.Conduits) }

// ConduitEnds returns the conduit's endpoints.
func (m *Map) ConduitEnds(cid ConduitID) (NodeID, NodeID) {
	c := &m.Conduits[cid]
	return c.A, c.B
}

// ConduitLengthKm returns the conduit's route length.
func (m *Map) ConduitLengthKm(cid ConduitID) float64 { return m.Conduits[cid].LengthKm }

// Tenants returns the conduit's published tenants, sorted. Read-only.
func (m *Map) Tenants(cid ConduitID) []string { return m.Conduits[cid].Tenants }

// HasTenant reports whether isp is a published tenant of the conduit.
func (m *Map) HasTenant(cid ConduitID, isp string) bool { return m.Conduits[cid].HasTenant(isp) }

var _ View = (*Map)(nil)
