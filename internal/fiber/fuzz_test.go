package fiber

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMap asserts the dataset parser never panics and that
// anything it accepts re-serializes cleanly.
func FuzzReadMap(f *testing.F) {
	var seed bytes.Buffer
	m, _, conduits := seedMap()
	m.AddTenant(conduits[0], "Level 3")
	_ = WriteMap(&seed, m)
	f.Add(seed.String())
	f.Add("node|A|ST|1|1|1|-1\n")
	f.Add("conduit|A,ST|B,ST|0|||\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ReadMap(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteMap(&out, parsed); err != nil {
			t.Fatalf("accepted map fails to serialize: %v", err)
		}
		if _, err := ReadMap(&out); err != nil {
			t.Fatalf("round trip of accepted map fails: %v", err)
		}
	})
}

// seedMap builds the same fixture as testMap without needing a *testing.T.
func seedMap() (*Map, []NodeID, []ConduitID) {
	m := NewMap()
	a := m.AddNode("Denver", "CO", mustPoint(39.74, -104.99), 715000, 1)
	b := m.AddNode("Salt Lake City", "UT", mustPoint(40.76, -111.89), 200000, 2)
	c1 := m.EnsureConduit(a, b, 0, nil)
	return m, []NodeID{a, b}, []ConduitID{c1}
}
