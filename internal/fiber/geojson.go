package fiber

import (
	"encoding/json"

	"intertubes/internal/geo"
)

// geojson.go renders the map in GeoJSON so the constructed Figure 1
// can be inspected in any GIS viewer, mirroring the paper's release of
// its map through the PREDICT portal.

type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONGeom    `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONGeom struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

type geoJSONDoc struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

func lonLat(p geo.Point) [2]float64 { return [2]float64{p.Lon, p.Lat} }

// GeoJSON serializes the map: every node becomes a Point feature and
// every tenanted conduit a LineString feature carrying its tenants
// and length.
func (m *Map) GeoJSON() ([]byte, error) { return m.GeoJSONSimplified(0) }

// GeoJSONSimplified is GeoJSON with conduit paths Douglas-Peucker
// simplified at the given tolerance (km); 0 keeps full geometry.
func (m *Map) GeoJSONSimplified(toleranceKm float64) ([]byte, error) {
	doc := geoJSONDoc{Type: "FeatureCollection"}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		doc.Features = append(doc.Features, geoJSONFeature{
			Type:     "Feature",
			Geometry: geoJSONGeom{Type: "Point", Coordinates: lonLat(n.Loc)},
			Properties: map[string]any{
				"city":       n.City,
				"state":      n.State,
				"population": n.Population,
			},
		})
	}
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		path := c.Path
		if toleranceKm > 0 {
			path = path.Simplify(toleranceKm)
		}
		coords := make([][2]float64, len(path))
		for j, p := range path {
			coords[j] = lonLat(p)
		}
		doc.Features = append(doc.Features, geoJSONFeature{
			Type:     "Feature",
			Geometry: geoJSONGeom{Type: "LineString", Coordinates: coords},
			Properties: map[string]any{
				"a":        m.Nodes[c.A].Key(),
				"b":        m.Nodes[c.B].Key(),
				"lengthKm": c.LengthKm,
				"tenants":  c.Tenants,
				"sharing":  len(c.Tenants),
			},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// LayerGeoJSON serializes a bare polyline layer (e.g. the atlas road
// or rail network) for side-by-side display with the fiber map, as in
// the paper's Figures 2 and 3.
func LayerGeoJSON(name string, lines []geo.Polyline) ([]byte, error) {
	doc := geoJSONDoc{Type: "FeatureCollection"}
	for _, pl := range lines {
		coords := make([][2]float64, len(pl))
		for j, p := range pl {
			coords[j] = lonLat(p)
		}
		doc.Features = append(doc.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONGeom{Type: "LineString", Coordinates: coords},
			Properties: map[string]any{"layer": name},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}
