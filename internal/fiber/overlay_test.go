package fiber

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"intertubes/internal/geo"
)

// overlay_test.go diffs the copy-on-write Overlay against the
// mutation path it models: every View answer from Plus/Final must
// equal the same question asked of a map built with Clone + RemoveISP
// + EnsureConduit/AddTenant + ClearTenants.

// overlayTestMap builds a small map with parallel conduits, corridor
// and corridor-less routes, and a handful of providers.
func overlayTestMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	locs := []geo.Point{
		{Lat: 40, Lon: -100}, {Lat: 41, Lon: -99}, {Lat: 39, Lon: -98},
		{Lat: 42, Lon: -97}, {Lat: 38, Lon: -96}, {Lat: 40.5, Lon: -95},
	}
	for i, loc := range locs {
		m.AddNode(fmt.Sprintf("City%d", i), "ST", loc, 1000*(i+1), -1)
	}
	type spec struct {
		a, b     NodeID
		corridor int
		tenants  []string
	}
	specs := []spec{
		{0, 1, 7, []string{"Alpha", "Beta", "Gamma"}},
		{0, 1, -1, []string{"Alpha"}}, // corridor-less parallel: addition merge target
		{1, 2, 3, []string{"Beta", "Gamma"}},
		{2, 3, -1, []string{"Alpha", "Delta"}},
		{3, 4, 2, []string{"Gamma"}},
		{0, 2, -1, []string{"Beta"}},
		{1, 3, 5, []string{"Delta", "Epsilon"}},
		{4, 5, -1, nil}, // dark conduit, no tenants
	}
	for _, s := range specs {
		path := geo.Polyline{m.Node(s.a).Loc, m.Node(s.b).Loc}
		cid := m.EnsureConduit(s.a, s.b, s.corridor, path)
		for _, isp := range s.tenants {
			m.AddTenant(cid, isp)
		}
	}
	return m
}

// mutate replays p through the mutation primitives (the engine's
// order), returning the plus map (cuts lit) and final map (cuts dark).
func mutate(m *Map, p Perturbation) (plus, final *Map) {
	plus = m.Clone()
	for _, isp := range p.RemoveISPs {
		plus.RemoveISP(isp)
	}
	for _, ad := range p.Additions {
		path := geo.Polyline{plus.Nodes[ad.A].Loc, plus.Nodes[ad.B].Loc}
		cid := plus.EnsureConduit(ad.A, ad.B, -1, path)
		for _, isp := range ad.Tenants {
			plus.AddTenant(cid, isp)
		}
	}
	final = plus.Clone()
	for _, cid := range p.Cuts {
		final.ClearTenants(cid)
	}
	return plus, final
}

// diffViews asserts v answers every View question exactly like want.
func diffViews(t *testing.T, label string, v View, want *Map, isps []string) {
	t.Helper()
	if v.NumNodes() != want.NumNodes() || v.NumConduits() != want.NumConduits() {
		t.Fatalf("%s: dims (%d,%d) != (%d,%d)", label,
			v.NumNodes(), v.NumConduits(), want.NumNodes(), want.NumConduits())
	}
	for cid := ConduitID(0); int(cid) < want.NumConduits(); cid++ {
		ga, gb := v.ConduitEnds(cid)
		wa, wb := want.ConduitEnds(cid)
		if ga != wa || gb != wb {
			t.Errorf("%s: conduit %d ends (%d,%d) != (%d,%d)", label, cid, ga, gb, wa, wb)
		}
		if v.ConduitLengthKm(cid) != want.ConduitLengthKm(cid) {
			t.Errorf("%s: conduit %d length mismatch", label, cid)
		}
		gt, wt := v.Tenants(cid), want.Tenants(cid)
		if len(gt) != len(wt) || (len(wt) > 0 && !reflect.DeepEqual(gt, wt)) {
			t.Errorf("%s: conduit %d tenants %v != %v", label, cid, gt, wt)
		}
		for _, isp := range isps {
			if v.HasTenant(cid, isp) != want.HasTenant(cid, isp) {
				t.Errorf("%s: conduit %d HasTenant(%s) mismatch", label, cid, isp)
			}
		}
	}
	for _, isp := range isps {
		if got, want := v.NodesOf(isp), want.NodesOf(isp); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: NodesOf(%s) = %v, want %v", label, isp, got, want)
		}
	}
	if got, wantS := v.Stats(), want.Stats(); got != wantS {
		t.Errorf("%s: Stats %+v != %+v", label, got, wantS)
	}
}

func allISPs(m *Map, extra ...string) []string {
	out := append(m.ISPs(), extra...)
	return out
}

func TestOverlayMatchesMutation(t *testing.T) {
	m := overlayTestMap(t)
	cases := []struct {
		name string
		p    Perturbation
	}{
		{"zero", Perturbation{}},
		{"cut-only", Perturbation{Cuts: []ConduitID{0, 3}}},
		{"cut-duplicates", Perturbation{Cuts: []ConduitID{2, 2, 5}}},
		{"remove-only", Perturbation{RemoveISPs: []string{"Alpha"}}},
		{"remove-two", Perturbation{RemoveISPs: []string{"Beta", "Delta"}}},
		{"remove-unknown", Perturbation{RemoveISPs: []string{"Nobody"}}},
		{"add-merge", Perturbation{Additions: []OverlayAddition{
			{A: 0, B: 1, Tenants: []string{"Zeta"}}, // merges into corridor -1 conduit 1
		}}},
		{"add-virtual", Perturbation{Additions: []OverlayAddition{
			{A: 0, B: 4, Tenants: []string{"Alpha", "Zeta"}},
		}}},
		{"add-virtual-then-merge", Perturbation{Additions: []OverlayAddition{
			{A: 0, B: 4, Tenants: []string{"Alpha"}},
			{A: 4, B: 0, Tenants: []string{"Beta"}}, // merges into the virtual above
		}}},
		{"readd-removed", Perturbation{
			RemoveISPs: []string{"Alpha"},
			Additions:  []OverlayAddition{{A: 2, B: 3, Tenants: []string{"Alpha"}}},
		}},
		{"cut-merged-addition", Perturbation{
			Cuts:      []ConduitID{3},
			Additions: []OverlayAddition{{A: 2, B: 3, Tenants: []string{"Zeta"}}},
		}},
		{"everything", Perturbation{
			Cuts:       []ConduitID{0, 2, 6},
			RemoveISPs: []string{"Gamma"},
			Additions: []OverlayAddition{
				{A: 1, B: 4, Tenants: []string{"Alpha", "Zeta"}},
				{A: 0, B: 1, Tenants: []string{"Gamma"}}, // re-adds removed on merge target
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ov, err := NewOverlay(m, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			plus, final := mutate(m, tc.p)
			isps := allISPs(m, "Zeta", "Nobody")
			diffViews(t, "plus", ov.Plus(), plus, isps)
			diffViews(t, "final", ov.Final(), final, isps)

			// Materialize must rebuild exactly the final mutated map.
			mat := ov.Materialize()
			if got, want := mat.Stats(), final.Stats(); got != want {
				t.Errorf("Materialize stats %+v != %+v", got, want)
			}
			diffViews(t, "materialized", mat, final, isps)

			// LinksRemoved matches what sequential RemoveISP would count.
			wantRemoved := 0
			probe := m.Clone()
			for _, isp := range tc.p.RemoveISPs {
				wantRemoved += probe.RemoveISP(isp)
			}
			if ov.LinksRemoved() != wantRemoved {
				t.Errorf("LinksRemoved = %d, want %d", ov.LinksRemoved(), wantRemoved)
			}
		})
	}
}

func TestOverlayRandomized(t *testing.T) {
	m := overlayTestMap(t)
	isps := allISPs(m, "Zeta", "Eta")
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 150; trial++ {
		var p Perturbation
		for i := 0; i < rng.Intn(4); i++ {
			p.Cuts = append(p.Cuts, ConduitID(rng.Intn(m.NumConduits())))
		}
		for i := 0; i < rng.Intn(3); i++ {
			p.RemoveISPs = append(p.RemoveISPs, isps[rng.Intn(len(isps))])
		}
		for i := 0; i < rng.Intn(3); i++ {
			a := NodeID(rng.Intn(m.NumNodes()))
			b := NodeID(rng.Intn(m.NumNodes()))
			if a == b {
				continue
			}
			var ts []string
			for j := 0; j <= rng.Intn(2); j++ {
				ts = append(ts, isps[rng.Intn(len(isps))])
			}
			p.Additions = append(p.Additions, OverlayAddition{A: a, B: b, Tenants: dedupe(ts)})
		}
		ov, err := NewOverlay(m, p)
		if err != nil {
			t.Fatal(err)
		}
		plus, final := mutate(m, p)
		diffViews(t, fmt.Sprintf("trial%d-plus", trial), ov.Plus(), plus, isps)
		diffViews(t, fmt.Sprintf("trial%d-final", trial), ov.Final(), final, isps)
	}
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestOverlayErrors(t *testing.T) {
	m := overlayTestMap(t)
	if _, err := NewOverlay(m, Perturbation{Cuts: []ConduitID{ConduitID(m.NumConduits())}}); err == nil {
		t.Error("out-of-range cut accepted")
	}
	if _, err := NewOverlay(m, Perturbation{Additions: []OverlayAddition{{A: 2, B: 2}}}); err == nil {
		t.Error("self-loop addition accepted")
	}
}
