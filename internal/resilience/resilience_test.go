package resilience

import (
	"math"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
)

var (
	cachedRes *mapbuilder.Result
	cachedMx  *risk.Matrix
)

func build(t *testing.T) (*mapbuilder.Result, *risk.Matrix) {
	t.Helper()
	if cachedRes == nil {
		cachedRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
		cachedMx = risk.Build(cachedRes.Map, nil)
	}
	return cachedRes, cachedMx
}

// ringMap builds a 4-node ring owned entirely by one ISP, plus one
// spur node.
//
//	0-1-2-3-0 ring (X), 3-4 spur (X)
func ringMap(t *testing.T) (*fiber.Map, []fiber.ConduitID) {
	t.Helper()
	m := fiber.NewMap()
	var nodes []fiber.NodeID
	for i := 0; i < 5; i++ {
		nodes = append(nodes, m.AddNode(string(rune('A'+i)), "XX",
			geo.Point{Lat: 40 + float64(i), Lon: -100}, 1, -1))
	}
	mk := func(a, b fiber.NodeID, corr int) fiber.ConduitID {
		cid := m.EnsureConduit(a, b, corr, geo.GreatCircle(m.Node(a).Loc, m.Node(b).Loc, 2))
		m.AddTenant(cid, "X")
		return cid
	}
	var cids []fiber.ConduitID
	cids = append(cids, mk(nodes[0], nodes[1], 0))
	cids = append(cids, mk(nodes[1], nodes[2], 1))
	cids = append(cids, mk(nodes[2], nodes[3], 2))
	cids = append(cids, mk(nodes[3], nodes[0], 3))
	cids = append(cids, mk(nodes[3], nodes[4], 4)) // spur
	return m, cids
}

func TestCutImpactRing(t *testing.T) {
	m, cids := ringMap(t)
	mx := risk.Build(m, nil)

	// One ring cut: still connected.
	impacts := CutImpact(m, mx, []fiber.ConduitID{cids[0]})
	if len(impacts) != 1 {
		t.Fatalf("impacts = %v", impacts)
	}
	if impacts[0].DisconnectedPairs != 0 || impacts[0].LargestComponent != 1 {
		t.Errorf("one ring cut should not disconnect: %+v", impacts[0])
	}
	if impacts[0].CutsHit != 1 {
		t.Errorf("CutsHit = %d", impacts[0].CutsHit)
	}

	// Cutting the spur strands one node: largest component 4/5,
	// disconnected ordered pairs 8 of 20.
	impacts = CutImpact(m, mx, []fiber.ConduitID{cids[4]})
	if math.Abs(impacts[0].LargestComponent-0.8) > 1e-9 {
		t.Errorf("largest = %v, want 0.8", impacts[0].LargestComponent)
	}
	if math.Abs(impacts[0].DisconnectedPairs-0.4) > 1e-9 {
		t.Errorf("disconnected = %v, want 0.4", impacts[0].DisconnectedPairs)
	}

	// Two opposite ring cuts split 2-2(+spur)...: cutting conduits 0
	// and 2 leaves components {1,2} and {3,4,0}: sizes 2 and 3.
	impacts = CutImpact(m, mx, []fiber.ConduitID{cids[0], cids[2]})
	if math.Abs(impacts[0].LargestComponent-0.6) > 1e-9 {
		t.Errorf("largest = %v, want 0.6", impacts[0].LargestComponent)
	}
}

func TestMeanDisconnection(t *testing.T) {
	ims := []Impact{{DisconnectedPairs: 0.2}, {DisconnectedPairs: 0.4}}
	if got := MeanDisconnection(ims); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if MeanDisconnection(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestTargetedBeatsRandom(t *testing.T) {
	res, mx := build(t)
	k := 8
	targetedSharing := MeanDisconnection(CutImpact(res.Map, mx, TargetedBySharing(mx, k)))
	targetedBetween := MeanDisconnection(CutImpact(res.Map, mx, TargetedByBetweenness(res.Map, k)))
	random := RandomCuts(res.Map, mx, k, 12, 7)

	// The paper's core risk story: the shared choke points are the
	// high-impact targets — cutting them disconnects many providers at
	// once, well beyond random cuts.
	if targetedSharing <= random*1.5 {
		t.Errorf("sharing-targeted %.4f not clearly above random %.4f", targetedSharing, random)
	}
	// Betweenness targets the busiest trunks, but those are exactly
	// where providers keep ring protection, so it does NOT maximize
	// disconnection — a finding of this reproduction, asserted here so
	// it is noticed if the substrate changes.
	if targetedBetween >= targetedSharing {
		t.Errorf("betweenness-targeted %.4f >= sharing-targeted %.4f; expected rings to absorb trunk cuts",
			targetedBetween, targetedSharing)
	}
}

func TestRandomCutsEdgeCases(t *testing.T) {
	res, mx := build(t)
	if RandomCuts(res.Map, mx, 0, 5, 1) != 0 {
		t.Error("k=0 should be 0")
	}
	if RandomCuts(res.Map, mx, 5, 0, 1) != 0 {
		t.Error("trials=0 should be 0")
	}
	// Deterministic in seed.
	a := RandomCuts(res.Map, mx, 4, 3, 9)
	b := RandomCuts(res.Map, mx, 4, 3, 9)
	if a != b {
		t.Errorf("random cuts not deterministic: %v vs %v", a, b)
	}
}

func TestPartitionCostsRing(t *testing.T) {
	m, _ := ringMap(t)
	costs := PartitionCosts(m, []string{"X"})
	if len(costs) != 1 {
		t.Fatalf("costs = %v", costs)
	}
	// The spur node hangs off one conduit: min cut 1.
	if costs[0].MinCuts != 1 || costs[0].Nodes != 5 {
		t.Errorf("cost = %+v, want MinCuts 1", costs[0])
	}
}

func TestPartitionCostsFullMap(t *testing.T) {
	res, _ := build(t)
	costs := PartitionCosts(res.Map, []string{"Level 3", "Deutsche Telekom", "Suddenlink"})
	if len(costs) != 3 {
		t.Fatalf("costs = %v", costs)
	}
	for _, pc := range costs {
		if pc.MinCuts < 0 || pc.MinCuts > 10 {
			t.Errorf("%s min cuts = %d, implausible", pc.ISP, pc.MinCuts)
		}
		if pc.Nodes == 0 {
			t.Errorf("%s has no nodes", pc.ISP)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(costs); i++ {
		if costs[i].MinCuts < costs[i-1].MinCuts {
			t.Error("not sorted")
		}
	}
	// Every real backbone has spurs, so min cut is small — the point
	// of the analysis is that partitioning a single provider is cheap.
	if costs[0].MinCuts > 2 {
		t.Errorf("weakest provider needs %d cuts; expected 1-2", costs[0].MinCuts)
	}
}

func TestCriticality(t *testing.T) {
	res, mx := build(t)
	crit := Criticality(res.Map, mx, 10)
	if len(crit) != 10 {
		t.Fatalf("criticality rows = %d", len(crit))
	}
	for i, c := range crit {
		if c.Betweenness <= 0 {
			t.Errorf("row %d betweenness = %v", i, c.Betweenness)
		}
		if c.A == "" || c.B == "" {
			t.Errorf("row %d missing endpoints", i)
		}
		if i > 0 && c.Betweenness > crit[i-1].Betweenness {
			t.Error("not sorted by betweenness")
		}
	}
	// The paper's story: high-betweenness conduits are heavily shared.
	var avgSharing float64
	for _, c := range crit {
		avgSharing += float64(c.Sharing)
	}
	avgSharing /= float64(len(crit))
	if avgSharing < mx.MeanSharing() {
		t.Errorf("critical conduits avg sharing %.2f below map mean %.2f", avgSharing, mx.MeanSharing())
	}
}

func TestTargetedByBetweennessBounds(t *testing.T) {
	res, _ := build(t)
	if got := TargetedByBetweenness(res.Map, 5); len(got) != 5 {
		t.Errorf("k=5 returned %d", len(got))
	}
	if got := TargetedByBetweenness(res.Map, 100000); len(got) > res.Map.Stats().Conduits {
		t.Error("returned more conduits than exist")
	}
}

func TestConduitsInRegion(t *testing.T) {
	res, _ := build(t)
	// A 150 km circle around Salt Lake City catches the I-80/I-15
	// funnels.
	slc := geo.Point{Lat: 40.76, Lon: -111.89}
	got := ConduitsInRegion(res.Map, Region{Center: slc, RadiusKm: 150})
	if len(got) < 3 {
		t.Fatalf("only %d conduits near SLC", len(got))
	}
	for _, cid := range got {
		c := res.Map.Conduit(cid)
		if d := c.Path.DistanceToKm(slc); d > 150 {
			t.Errorf("conduit %d is %.0f km away", cid, d)
		}
	}
	// A circle in the middle of nowhere catches nothing.
	if got := ConduitsInRegion(res.Map, Region{Center: geo.Point{Lat: 44.5, Lon: -107.5}, RadiusKm: 30}); len(got) != 0 {
		t.Errorf("empty Wyoming contains conduits: %v", got)
	}
}

func TestDisaster(t *testing.T) {
	res, mx := build(t)
	// A hurricane over the Gulf coast near New Orleans.
	d := Disaster(res.Map, mx, Region{Center: geo.Point{Lat: 29.95, Lon: -90.07}, RadiusKm: 200})
	if d.ConduitsCut == 0 {
		t.Fatal("a Gulf hurricane should cut conduits")
	}
	if d.TenanciesCut < d.ConduitsCut {
		t.Error("tenancies cut must be >= conduits cut")
	}
	if len(d.Impacts) != 20 {
		t.Fatalf("impacts = %d", len(d.Impacts))
	}
	// The regional disaster disconnects someone but not everyone.
	worst := d.Impacts[0].DisconnectedPairs
	if worst <= 0 {
		t.Error("nobody affected by a 200 km Gulf hurricane")
	}
	best := d.Impacts[len(d.Impacts)-1].DisconnectedPairs
	if best >= worst {
		t.Error("impact should vary across providers")
	}
}
