// Package resilience analyzes the physical robustness of the
// long-haul map to conduit failures — the dimension the paper's §4
// opens ("the number of fiber cuts needed to partition the US
// long-haul infrastructure ... has associated security implications")
// and defers to future work. It quantifies:
//
//   - the impact of cutting a set of conduits on each provider
//     (disconnected node pairs, largest surviving component);
//   - targeted versus random cut strategies, showing that the heavily
//     shared conduits of §4 are precisely the high-impact targets;
//   - per-provider partition cost: the minimum number of conduit cuts
//     that splits a backbone (Stoer-Wagner global min cut);
//   - conduit criticality via shortest-path edge betweenness.
package resilience

import (
	"math"
	"math/rand"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
	"intertubes/internal/risk"
)

// Impact describes what a set of conduit cuts does to one provider.
type Impact struct {
	ISP string
	// CutsHit is how many of the cut conduits the provider occupied.
	CutsHit int
	// DisconnectedPairs is the fraction of the provider's node pairs
	// that lose connectivity over its own published conduits.
	DisconnectedPairs float64
	// LargestComponent is the fraction of the provider's nodes left in
	// its largest surviving component.
	LargestComponent float64
}

// cutWeight builds a WeightFunc over m's conduit graph restricted to
// the ISP's published conduits, excluding the cut set.
func cutWeight(m *fiber.Map, isp string, cut map[fiber.ConduitID]bool) graph.WeightFunc {
	return func(eid int) float64 {
		cid := fiber.ConduitID(eid)
		if cut[cid] {
			return math.Inf(1)
		}
		c := m.Conduit(cid)
		if !c.HasTenant(isp) {
			return math.Inf(1)
		}
		return 1
	}
}

// connectivity computes the pair-connectivity statistics of the ISP's
// subgraph under a cut.
func connectivity(m *fiber.Map, g *graph.Graph, isp string, cut map[fiber.ConduitID]bool) (pairsConnected float64, largest float64, nodes int) {
	nodeSet := m.NodesOf(isp)
	nodes = len(nodeSet)
	if nodes < 2 {
		return 1, 1, nodes
	}
	wf := cutWeight(m, isp, cut)
	// Union-find over the ISP's surviving conduits.
	parent := make(map[fiber.NodeID]fiber.NodeID, nodes)
	var find func(fiber.NodeID) fiber.NodeID
	find = func(x fiber.NodeID) fiber.NodeID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range nodeSet {
		parent[n] = n
	}
	for eid := 0; eid < g.NumEdges(); eid++ {
		if math.IsInf(wf(eid), 1) {
			continue
		}
		c := m.Conduit(fiber.ConduitID(eid))
		ra, rb := find(c.A), find(c.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	sizes := make(map[fiber.NodeID]int)
	for _, n := range nodeSet {
		sizes[find(n)]++
	}
	var sumSq, max int
	for _, s := range sizes {
		sumSq += s * s
		if s > max {
			max = s
		}
	}
	// Connected ordered pairs / all ordered pairs (excluding self).
	total := nodes * (nodes - 1)
	connected := sumSq - nodes
	return float64(connected) / float64(total), float64(max) / float64(nodes), nodes
}

// CutImpact evaluates a cut set against every ISP in the matrix.
// Results are sorted by decreasing DisconnectedPairs.
func CutImpact(m *fiber.Map, mx *risk.Matrix, cuts []fiber.ConduitID) []Impact {
	g := m.Graph()
	cut := make(map[fiber.ConduitID]bool, len(cuts))
	for _, cid := range cuts {
		cut[cid] = true
	}
	out := make([]Impact, 0, len(mx.ISPs))
	for _, isp := range mx.ISPs {
		im := Impact{ISP: isp}
		for _, cid := range cuts {
			if m.Conduit(cid).HasTenant(isp) {
				im.CutsHit++
			}
		}
		conn, largest, _ := connectivity(m, g, isp, cut)
		im.DisconnectedPairs = 1 - conn
		im.LargestComponent = largest
		out = append(out, im)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].DisconnectedPairs > out[j].DisconnectedPairs
	})
	return out
}

// MeanDisconnection averages DisconnectedPairs over a result set —
// the scalar used to compare cut strategies.
func MeanDisconnection(impacts []Impact) float64 {
	if len(impacts) == 0 {
		return 0
	}
	var sum float64
	for _, im := range impacts {
		sum += im.DisconnectedPairs
	}
	return sum / float64(len(impacts))
}

// TargetedBySharing returns the k most-shared conduits — the §4
// choke points as a cut strategy.
func TargetedBySharing(mx *risk.Matrix, k int) []fiber.ConduitID {
	return mx.TopShared(k)
}

// TargetedByBetweenness returns the k conduits with the highest
// shortest-path betweenness over the lit conduit graph.
func TargetedByBetweenness(m *fiber.Map, k int) []fiber.ConduitID {
	g := m.Graph()
	bc := g.EdgeBetweenness(m.LitWeight())
	type scored struct {
		cid fiber.ConduitID
		v   float64
	}
	all := make([]scored, 0, len(bc))
	for eid, v := range bc {
		if v > 0 {
			all = append(all, scored{cid: fiber.ConduitID(eid), v: v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].cid < all[j].cid
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]fiber.ConduitID, len(all))
	for i, s := range all {
		out[i] = s.cid
	}
	return out
}

// RandomCuts draws trials random k-conduit cut sets (over tenanted
// conduits) and returns the mean across trials of the mean
// disconnection — the baseline a targeted attacker is compared
// against.
func RandomCuts(m *fiber.Map, mx *risk.Matrix, k, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var lit []fiber.ConduitID
	for i := range m.Conduits {
		if len(m.Conduits[i].Tenants) > 0 {
			lit = append(lit, m.Conduits[i].ID)
		}
	}
	if len(lit) == 0 || k <= 0 || trials <= 0 {
		return 0
	}
	if k > len(lit) {
		k = len(lit)
	}
	var total float64
	for t := 0; t < trials; t++ {
		perm := rng.Perm(len(lit))
		cuts := make([]fiber.ConduitID, k)
		for i := 0; i < k; i++ {
			cuts[i] = lit[perm[i]]
		}
		total += MeanDisconnection(CutImpact(m, mx, cuts))
	}
	return total / float64(trials)
}

// PartitionCost is one provider's minimum-cut summary.
type PartitionCost struct {
	ISP string
	// MinCuts is the minimum number of conduit cuts that partitions
	// the provider's backbone (0 if it is already disconnected).
	MinCuts int
	// Nodes is the provider's footprint size.
	Nodes int
}

// PartitionCosts computes, per provider, the minimum number of conduit
// cuts that splits its published backbone (Stoer-Wagner with unit
// conduit weights). Sorted ascending by MinCuts — the most fragile
// providers first.
func PartitionCosts(m *fiber.Map, isps []string) []PartitionCost {
	g := m.Graph()
	out := make([]PartitionCost, 0, len(isps))
	for _, isp := range isps {
		nodes := m.NodesOf(isp)
		verts := make([]int, len(nodes))
		for i, n := range nodes {
			verts[i] = int(n)
		}
		pc := PartitionCost{ISP: isp, Nodes: len(nodes)}
		unit := func(eid int) float64 {
			if m.Conduit(fiber.ConduitID(eid)).HasTenant(isp) {
				return 1
			}
			return math.Inf(1)
		}
		if cut, ok := g.GlobalMinCut(verts, unit); ok {
			pc.MinCuts = int(math.Round(cut))
		}
		out = append(out, pc)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].MinCuts < out[j].MinCuts })
	return out
}

// CriticalConduit is one row of the criticality ranking.
type CriticalConduit struct {
	Conduit     fiber.ConduitID
	A, B        string
	Betweenness float64
	Sharing     int
}

// Criticality ranks the top-k conduits by betweenness and reports
// their sharing degree — the overlap between "carries the most paths"
// and "shared by the most ISPs" is the paper's risk story in one
// table.
func Criticality(m *fiber.Map, mx *risk.Matrix, k int) []CriticalConduit {
	g := m.Graph()
	bc := g.EdgeBetweenness(m.LitWeight())
	ids := TargetedByBetweenness(m, k)
	out := make([]CriticalConduit, 0, len(ids))
	for _, cid := range ids {
		c := m.Conduit(cid)
		out = append(out, CriticalConduit{
			Conduit:     cid,
			A:           m.Node(c.A).Key(),
			B:           m.Node(c.B).Key(),
			Betweenness: bc[int(cid)],
			Sharing:     mx.Sharing(cid),
		})
	}
	return out
}
