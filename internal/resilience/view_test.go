package resilience

import (
	"math"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/risk"
)

// view_test.go pins the overlay-aware entry points to their clone-path
// references: ImpactOn must reproduce CutImpact's rows exactly, and
// PartitionCostWS must agree with PartitionCosts through the dense
// kernel, on both the raw baseline map and a perturbed overlay view.

// impactByISP indexes CutImpact's sorted output by provider.
func impactByISP(impacts []Impact) map[string]Impact {
	out := make(map[string]Impact, len(impacts))
	for _, im := range impacts {
		out[im.ISP] = im
	}
	return out
}

func cutIndicator(n int, cuts []fiber.ConduitID) []bool {
	cut := make([]bool, n)
	for _, cid := range cuts {
		cut[cid] = true
	}
	return cut
}

func TestImpactOnMatchesCutImpactRing(t *testing.T) {
	m, cids := ringMap(t)
	mx := risk.Build(m, nil)
	var s ImpactScratch
	cutSets := [][]fiber.ConduitID{
		nil,
		{cids[0]},
		{cids[4]},
		{cids[0], cids[2]},
		{cids[0], cids[1], cids[2], cids[3], cids[4]},
	}
	for _, cuts := range cutSets {
		want := impactByISP(CutImpact(m, mx, cuts))
		cut := cutIndicator(m.NumConduits(), cuts)
		for _, isp := range mx.ISPs {
			got := s.ImpactOn(m, isp, m.NodesOf(isp), cuts, cut)
			if got != want[isp] {
				t.Errorf("cuts %v isp %s: ImpactOn %+v != CutImpact %+v", cuts, isp, got, want[isp])
			}
		}
	}
}

func TestImpactOnMatchesCutImpactAtlas(t *testing.T) {
	res, mx := build(t)
	m := res.Map
	cuts := mx.TopShared(5)
	want := impactByISP(CutImpact(m, mx, cuts))
	cut := cutIndicator(m.NumConduits(), cuts)
	var s ImpactScratch
	for _, isp := range mx.ISPs {
		got := s.ImpactOn(m, isp, m.NodesOf(isp), cuts, cut)
		if got != want[isp] {
			t.Errorf("isp %s: ImpactOn %+v != CutImpact %+v", isp, got, want[isp])
		}
	}
}

func TestImpactOnOverlayMatchesMutatedClone(t *testing.T) {
	res, mx := build(t)
	m := res.Map
	isps := mx.ISPs

	pert := fiber.Perturbation{
		Cuts:       mx.TopShared(3),
		RemoveISPs: []string{isps[0]},
		Additions: []fiber.OverlayAddition{
			{A: 0, B: fiber.NodeID(m.NumNodes() - 1), Tenants: []string{isps[1], isps[2]}},
		},
	}
	ov, err := fiber.NewOverlay(m, pert)
	if err != nil {
		t.Fatal(err)
	}

	// Clone path: removals + additions lit (the "plus" map CutImpact
	// runs on), per the engine's order. Cuts stay lit; CutImpact
	// excludes them by weight.
	pmPlus := m.Clone()
	for _, isp := range pert.RemoveISPs {
		pmPlus.RemoveISP(isp)
	}
	for _, ad := range pert.Additions {
		path := geo.Polyline{pmPlus.Node(ad.A).Loc, pmPlus.Node(ad.B).Loc}
		cid := pmPlus.EnsureConduit(ad.A, ad.B, -1, path)
		for _, isp := range ad.Tenants {
			pmPlus.AddTenant(cid, isp)
		}
	}

	kept := isps[1:]
	mx2 := risk.BuildFrom(ov.Final(), kept)
	want := impactByISP(CutImpact(pmPlus, mx2, pert.Cuts))
	cut := cutIndicator(ov.NumBaseConduits(), pert.Cuts)
	plus := ov.Plus()
	var s ImpactScratch
	for _, isp := range mx2.ISPs {
		got := s.ImpactOn(plus, isp, plus.NodesOf(isp), pert.Cuts, cut)
		if got != want[isp] {
			t.Errorf("isp %s: overlay ImpactOn %+v != clone CutImpact %+v", isp, got, want[isp])
		}
	}
}

func TestPartitionCostWSMatchesDense(t *testing.T) {
	res, mx := build(t)
	m := res.Map
	g := m.Graph()
	ws := graph.NewWorkspace()

	wantByISP := make(map[string]int)
	for _, pc := range PartitionCosts(m, mx.ISPs) {
		wantByISP[pc.ISP] = pc.MinCuts
	}

	w := make([]float64, g.NumEdges())
	for _, isp := range mx.ISPs {
		for eid := range w {
			if m.Conduit(fiber.ConduitID(eid)).HasTenant(isp) {
				w[eid] = 1
			} else {
				w[eid] = math.Inf(1)
			}
		}
		nodes := m.NodesOf(isp)
		verts := make([]int, len(nodes))
		for i, n := range nodes {
			verts[i] = int(n)
		}
		if got := PartitionCostWS(g, ws, verts, w, nil); got != wantByISP[isp] {
			t.Errorf("isp %s: PartitionCostWS = %d, want %d", isp, got, wantByISP[isp])
		}
	}
}
