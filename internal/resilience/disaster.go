package resilience

import (
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/risk"
)

// disaster.go models geographically correlated failures: a hurricane,
// earthquake, or flood takes out every conduit whose route passes
// through an affected region — the failure mode behind the paper's
// natural-disaster citations (the 2003 blackout, the 2006 Taiwan
// quake) and its observation that outages stem from a "lack of
// geographic diversity in connectivity".

// Region is a circular disaster footprint.
type Region struct {
	Center   geo.Point
	RadiusKm float64
}

// ConduitsInRegion returns every tenanted conduit whose path enters
// the region, sorted by id.
func ConduitsInRegion(m *fiber.Map, r Region) []fiber.ConduitID {
	var out []fiber.ConduitID
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		// Cheap bounds rejection before the exact distance test.
		if !c.Path.Bounds().ExpandKm(r.RadiusKm).Contains(r.Center) {
			continue
		}
		if c.Path.DistanceToKm(r.Center) <= r.RadiusKm {
			out = append(out, c.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DisasterImpact is the outcome of a regional failure.
type DisasterImpact struct {
	Region       Region
	ConduitsCut  int
	TenanciesCut int // (ISP, conduit) links severed
	Impacts      []Impact
}

// Disaster cuts every conduit in the region and evaluates the impact
// on every matrix ISP.
func Disaster(m *fiber.Map, mx *risk.Matrix, r Region) DisasterImpact {
	cuts := ConduitsInRegion(m, r)
	out := DisasterImpact{Region: r, ConduitsCut: len(cuts)}
	for _, cid := range cuts {
		out.TenanciesCut += len(m.Conduit(cid).Tenants)
	}
	out.Impacts = CutImpact(m, mx, cuts)
	return out
}
