package resilience

import (
	"math"

	"intertubes/internal/fiber"
	"intertubes/internal/graph"
)

// view.go holds the overlay-aware entry points the scenario engine's
// copy-on-write path uses: the same per-provider metrics as CutImpact
// and PartitionCosts, computed against a fiber.View (typically a
// scenario overlay) without cloning a map, with reusable scratch, and
// — for partition costs — through the sparse Stoer-Wagner kernel.
// Both replicate the reference arithmetic exactly: the component
// statistics are integers before the final divisions, and the unique
// min-cut value is integral, so results are bit-identical to the
// clone path.

// ImpactScratch carries the union-find state ImpactOn reuses across
// calls. The zero value is ready; not safe for concurrent use.
type ImpactScratch struct {
	parent []int32
	count  []int32
}

// ImpactOn computes one provider's Impact under a cut set, against a
// view. nodes is the provider's footprint on the view (v.NodesOf(isp)
// — callers typically have it already); cuts is the resolved cut list
// and cut its indicator indexed by conduit id (ids at or beyond
// len(cut) — overlay virtuals — are never cut). The result matches
// the provider's row of CutImpact over the materialized equivalent.
func (s *ImpactScratch) ImpactOn(v fiber.View, isp string, nodes []fiber.NodeID, cuts []fiber.ConduitID, cut []bool) Impact {
	im := Impact{ISP: isp}
	for _, cid := range cuts {
		if v.HasTenant(cid, isp) {
			im.CutsHit++
		}
	}
	n := len(nodes)
	if n < 2 {
		im.DisconnectedPairs = 0
		im.LargestComponent = 1
		return im
	}

	if nn := v.NumNodes(); len(s.parent) < nn {
		s.parent = make([]int32, nn)
		s.count = make([]int32, nn)
	}
	parent := s.parent
	for _, nid := range nodes {
		parent[nid] = int32(nid)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	nc := v.NumConduits()
	for cid := fiber.ConduitID(0); int(cid) < nc; cid++ {
		if int(cid) < len(cut) && cut[cid] {
			continue
		}
		if !v.HasTenant(cid, isp) {
			continue
		}
		a, b := v.ConduitEnds(cid)
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[ra] = rb
		}
	}
	var sumSq, max int
	for _, nid := range nodes {
		s.count[find(int32(nid))]++
	}
	for _, nid := range nodes {
		r := find(int32(nid))
		if c := int(s.count[r]); c > 0 {
			sumSq += c * c
			if c > max {
				max = c
			}
			s.count[r] = 0
		}
	}
	total := n * (n - 1)
	connected := sumSq - n
	im.DisconnectedPairs = 1 - float64(connected)/float64(total)
	im.LargestComponent = float64(max) / float64(n)
	return im
}

// PartitionCostWS computes one provider's minimum conduit cuts to
// partition — the PartitionCosts per-ISP value — through the sparse
// workspace Stoer-Wagner kernel. verts is the provider's footprint,
// weights the materialized per-edge table (1 on the provider's
// conduits, +Inf elsewhere), extra any overlay-added edges. Returns 0
// when the footprint is trivial or already disconnected, matching the
// dense reference.
func PartitionCostWS(g *graph.Graph, ws *graph.Workspace, verts []int, weights []float64, extra []graph.Edge) int {
	if cut, ok := g.GlobalMinCutWS(ws, verts, weights, extra); ok {
		return int(math.Round(cut))
	}
	return 0
}
