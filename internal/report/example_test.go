package report_test

import (
	"fmt"

	"intertubes/internal/report"
)

func ExampleTable() {
	t := report.Table{Title: "Demo", Headers: []string{"ISP", "Links"}}
	t.AddRow("Level 3", 336)
	t.AddRow("AT&T", 57)
	fmt.Print(t.String())
	// Output:
	// Demo
	// ISP      Links
	// -------  -----
	// Level 3  336
	// AT&T     57
}

func ExampleQuantile() {
	fmt.Println(report.Quantile([]float64{1, 2, 3, 4, 5}, 0.5))
	// Output: 3
}
