// Package report renders the study's tables and figures as text:
// aligned tables (Tables 1-5), bar charts (Figures 4, 6, 7),
// heat maps (Figure 8), and CDF plots (Figures 9, 12). Everything
// returns a string so the cmd tools, examples, and EXPERIMENTS.md
// generation share one rendering path.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a titled, aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying the cells with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		// Trim trailing padding.
		s := b.String()
		for len(s) > 0 && s[len(s)-1] == ' ' {
			s = s[:len(s)-1]
		}
		b.Reset()
		b.WriteString(s)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var sep []string
		for i := 0; i < ncols; i++ {
			sep = append(sep, strings.Repeat("-", widths[i]))
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart scaled to width characters.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxL := 0
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxL {
			maxL = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 {
			n = int(math.Round(b.Value / maxV * float64(width)))
		}
		fmt.Fprintf(&sb, "%-*s |%s %s\n", maxL, b.Label, strings.Repeat("#", n), trimFloat(b.Value))
	}
	return sb.String()
}

// CDFSeries is one named, sorted sample set.
type CDFSeries struct {
	Name   string
	Values []float64 // must be sorted ascending
}

// CDFTable renders one or more empirical CDFs as a quantile table —
// the textual equivalent of the paper's CDF figures.
func CDFTable(title string, series []CDFSeries, quantiles []float64) string {
	if len(quantiles) == 0 {
		quantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	}
	t := Table{Title: title}
	t.Headers = append(t.Headers, "series", "n")
	for _, q := range quantiles {
		t.Headers = append(t.Headers, fmt.Sprintf("p%02.0f", q*100))
	}
	for _, s := range series {
		row := []any{s.Name, len(s.Values)}
		for _, q := range quantiles {
			row = append(row, Quantile(s.Values, q))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Quantile returns the q-quantile of ascending-sorted values, with
// linear interpolation; NaN for empty input.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionAtOrBelow returns the empirical CDF value at x.
func FractionAtOrBelow(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(sorted))
}

// Heatmap renders a labelled integer matrix with shade characters,
// dark for small values (similar risk profiles in Figure 8 are dark).
func Heatmap(title string, labels []string, cells [][]int) string {
	shades := []byte{'@', '#', '+', '-', '.', ' '}
	maxV := 0
	for _, row := range cells {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	// Short labels for columns.
	short := make([]string, len(labels))
	maxL := 0
	for i, l := range labels {
		if len(l) > 4 {
			short[i] = l[:4]
		} else {
			short[i] = l
		}
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s", maxL, "")
	for _, s := range short {
		fmt.Fprintf(&b, " %-4s", s)
	}
	b.WriteByte('\n')
	for i, row := range cells {
		fmt.Fprintf(&b, "%-*s", maxL, labels[i])
		for _, v := range row {
			var shade byte
			if maxV == 0 {
				shade = shades[0]
			} else {
				idx := v * (len(shades) - 1) / maxV
				shade = shades[idx]
			}
			fmt.Fprintf(&b, " %c%c%c%c", shade, shade, shade, ' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: '@' = most similar (distance 0) ... ' ' = least similar\n")
	return b.String()
}
