package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "Table 1", Headers: []string{"ISP", "Nodes", "Links"}}
	tab.AddRow("Level 3", 240, 336)
	tab.AddRow("AT&T", 25, 57)
	out := tab.String()
	if !strings.Contains(out, "Table 1") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "ISP") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[3], "Level 3") || !strings.Contains(lines[3], "336") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns align: "Nodes" column starts at the same offset in all rows.
	col := strings.Index(lines[1], "Nodes")
	if !strings.HasPrefix(lines[3][col:], "240") {
		t.Errorf("misaligned: %q", lines[3])
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("trailing whitespace in %q", l)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := Table{}
	tab.AddRow(3.0, 3.14159, 12)
	out := tab.String()
	if !strings.Contains(out, "3  3.14  12") {
		t.Errorf("float formatting: %q", out)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tab := Table{}
	tab.AddRow("x")
	out := tab.String()
	if strings.Contains(out, "-") {
		t.Errorf("separator without headers: %q", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Figure 6", []Bar{
		{Label: "k=1", Value: 542},
		{Label: "k=2", Value: 486},
		{Label: "k=20", Value: 0},
	}, 40)
	if !strings.Contains(out, "Figure 6") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Largest bar has the full width of #, zero bar has none.
	if strings.Count(lines[1], "#") != 40 {
		t.Errorf("max bar = %q", lines[1])
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Errorf("zero bar = %q", lines[3])
	}
	// Default width.
	out = BarChart("", []Bar{{Label: "a", Value: 1}}, 0)
	if strings.Count(out, "#") != 50 {
		t.Errorf("default width: %q", out)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(vals, q); math.Abs(got-want) > 1e-9 {
			t.Errorf("q%.2f = %v, want %v", q, got, want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-element quantile")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		// sort ascending
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(vals, q1) <= Quantile(vals, q2)+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	vals := []float64{1, 2, 2, 3}
	if f := FractionAtOrBelow(vals, 2); math.Abs(f-0.75) > 1e-9 {
		t.Errorf("f(2) = %v", f)
	}
	if f := FractionAtOrBelow(vals, 0.5); f != 0 {
		t.Errorf("f(0.5) = %v", f)
	}
	if f := FractionAtOrBelow(vals, 99); f != 1 {
		t.Errorf("f(99) = %v", f)
	}
	if f := FractionAtOrBelow(nil, 1); f != 0 {
		t.Errorf("empty = %v", f)
	}
}

func TestCDFTable(t *testing.T) {
	out := CDFTable("Figure 9", []CDFSeries{
		{Name: "physical", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "overlaid", Values: []float64{2, 4, 6, 8, 10}},
	}, nil)
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "p50") {
		t.Errorf("cdf table: %q", out)
	}
	if !strings.Contains(out, "physical") || !strings.Contains(out, "overlaid") {
		t.Error("missing series")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("Figure 8", []string{"Level 3", "Sprint"}, [][]int{{0, 5}, {5, 0}})
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "Leve") {
		t.Errorf("heatmap: %q", out)
	}
	// Diagonal (0) renders dark '@', max renders light ' '.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], "@@@") {
		t.Errorf("diagonal not dark: %q", lines[2])
	}
	// All-zero matrix doesn't divide by zero.
	_ = Heatmap("", []string{"a"}, [][]int{{0}})
}
