package jobs

import (
	"strings"
	"testing"

	"intertubes/internal/scenario"
)

func validCheckpoint() *Checkpoint {
	spec := scenario.GridSpec{CellKm: 200, RadiiKm: []float64{50, 100}}
	spec = scenario.GridSpec{CellKm: spec.CellKm, RadiiKm: spec.RadiiKm, CullKm: 100}
	return &Checkpoint{
		V:               1,
		ID:              "sweep-abc-v1",
		Geom:            scenario.GridGeom{Hash: spec.Hash(), Spec: spec, Rows: 3, Cols: 4, Total: 10},
		BaselineVersion: 1,
		State:           StateRunning,
		Cells: []scenario.CellOutcome{
			{Index: 0}, {Index: 7, MeanDisconnection: 0.25},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := validCheckpoint()
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != cp.ID || got.Geom.Hash != cp.Geom.Hash || got.Geom.Total != cp.Geom.Total ||
		got.State != cp.State || len(got.Cells) != 2 {
		t.Errorf("round trip mangled checkpoint: %+v", got)
	}
	// Encoding is deterministic for identical content.
	data2, err := EncodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("checkpoint encoding is not deterministic")
	}
}

func TestCheckpointDecodeRejections(t *testing.T) {
	mutate := func(f func(*Checkpoint)) []byte {
		cp := validCheckpoint()
		f(cp)
		data, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"not json":        []byte("{"),
		"wrong version":   mutate(func(c *Checkpoint) { c.V = 2 }),
		"missing id":      mutate(func(c *Checkpoint) { c.ID = "" }),
		"bad spec":        mutate(func(c *Checkpoint) { c.Geom.Spec.CellKm = -1 }),
		"hash mismatch":   mutate(func(c *Checkpoint) { c.Geom.Hash = strings.Repeat("0", 32) }),
		"bad state":       mutate(func(c *Checkpoint) { c.State = "exploded" }),
		"zero lattice":    mutate(func(c *Checkpoint) { c.Geom.Rows = 0 }),
		"over capacity":   mutate(func(c *Checkpoint) { c.Geom.Total = 1000 }),
		"too many cells":  mutate(func(c *Checkpoint) { c.Geom.Total = 1 }),
		"index range":     mutate(func(c *Checkpoint) { c.Cells[1].Index = 10 }),
		"negative index":  mutate(func(c *Checkpoint) { c.Cells[0].Index = -1 }),
		"duplicate index": mutate(func(c *Checkpoint) { c.Cells[1].Index = 0 }),
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("%s: decode accepted an invalid checkpoint", name)
		}
	}
}

func TestCheckpointPathRejectsTraversal(t *testing.T) {
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := checkpointPath("/tmp", id); err == nil {
			t.Errorf("checkpointPath accepted id %q", id)
		}
	}
}

// FuzzCheckpointDecode hammers the resume trust boundary: arbitrary
// bytes must either decode into a checkpoint that re-encodes and
// re-decodes cleanly, or be rejected — never panic, never round-trip
// into something invalid. scripts/fuzz.sh auto-discovers this target.
func FuzzCheckpointDecode(f *testing.F) {
	if seed, err := EncodeCheckpoint(validCheckpoint()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{"v":1,"id":"x","geom":{"hash":"","spec":{"cellKm":1,"radiiKm":[1]},"rows":1,"cols":1,"total":1},"state":"pending","cells":[]}`))
	f.Add([]byte("null"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		out, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatalf("decoded checkpoint failed to encode: %v", err)
		}
		if _, err := DecodeCheckpoint(out); err != nil {
			t.Fatalf("re-encoded checkpoint failed validation: %v", err)
		}
	})
}
