// Package jobs is the batch-analysis subsystem: a job store for
// long-running sweeps that owns lifecycle (pending → running →
// done/failed/canceled), persists periodic checkpoints so a restarted
// process resumes mid-sweep, and streams partial results to
// subscribers. Its first (and so far only) workload is the exhaustive
// disaster-grid sweep: every cell of a scenario.GridPlan evaluated
// through scenario.Sweep's ordered-reduce contract, which is what
// makes a resumed job's final artifact byte-identical to an
// uninterrupted run at any worker count.
//
// Admission control is structural: one runner goroutine executes jobs
// strictly one at a time, so a heavyweight sweep can never occupy more
// than its configured worker count while interactive scenario requests
// keep their own admission lane in internal/server.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"intertubes/internal/obs"
	"intertubes/internal/scenario"
)

// ErrShutdown is the cancel cause a closing store injects into the
// running job's context. The runner uses it to park the job as
// resumable (checkpointed, state pending) instead of marking it
// canceled — the distinction between "the process is going away" and
// "a user killed this job".
var ErrShutdown = errors.New("jobs: store shutting down")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrQueueFull reports that admission control rejected a new sweep.
var ErrQueueFull = errors.New("jobs: queue full")

// errJobCanceled is the cancel cause of a user-initiated Cancel.
var errJobCanceled = errors.New("jobs: job canceled")

var (
	queueDepth = obs.GetGauge("jobs_queue_depth",
		"Sweep jobs admitted but not yet running.")
	jobsRunning = obs.GetGauge("jobs_running",
		"Sweep jobs currently executing (0 or 1; the runner is serial).")
	cellsCompleted = obs.GetCounter("jobs_cells_completed_total",
		"Grid cells evaluated (or recovered from checkpoint) across all jobs.")
)

// stateGauges carries one jobs_by_state{state=...} gauge per lifecycle
// state, surfaced on /metrics and GET /api/stats.
var stateGauges = func() map[State]*obs.Gauge {
	m := make(map[State]*obs.Gauge)
	for _, st := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCanceled} {
		m[st] = obs.GetGauge("jobs_by_state",
			"Sweep jobs per lifecycle state.", obs.L("state", string(st)))
	}
	return m
}()

// Options configures a Store.
type Options struct {
	// Dir persists one checkpoint file per job; empty runs the store
	// in-memory only (no resume across restarts).
	Dir string
	// Workers is the scenario.Sweep worker count per batch (<= 0: all
	// CPUs).
	Workers int
	// CheckpointEvery is the batch size in cells between checkpoint
	// writes and stream chunks. Default 64.
	CheckpointEvery int
	// MaxQueue bounds the pending-job queue; Submit fails with
	// ErrQueueFull beyond it. Default 8.
	MaxQueue int
}

// Store owns every job. One Store runs per process; create it with
// NewStore and release it with Close.
type Store struct {
	eng  *scenario.Engine
	opts Options

	ctx  context.Context
	stop context.CancelCauseFunc
	wake chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	order  []string // creation order, for stable listings
	queue  []string // pending job IDs, FIFO
	closed bool
}

// NewStore builds the store, recovers any resumable checkpoints from
// opts.Dir, and starts the runner goroutine.
func NewStore(eng *scenario.Engine, opts Options) (*Store, error) {
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 64
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 8
	}
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Store{
		eng:  eng,
		opts: opts,
		ctx:  ctx,
		stop: stop,
		wake: make(chan struct{}, 1),
		jobs: make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.Dir != "" {
		if err := s.recover(); err != nil {
			stop(ErrShutdown)
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// recover loads checkpoints from disk: terminal jobs become queryable
// records (their artifacts still render), pending/running ones are
// re-queued to resume from their completed-cell set.
func (s *Store) recover() error {
	cps, skipped, err := readCheckpoints(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("jobs: recover: %w", err)
	}
	for _, name := range skipped {
		obs.Logger("jobs").Warn("skipping unreadable checkpoint", "file", name)
	}
	// Deterministic recovery order regardless of directory iteration.
	sort.Slice(cps, func(i, j int) bool { return cps[i].ID < cps[j].ID })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cp := range cps {
		j := &job{
			id:              cp.ID,
			geom:            cp.Geom,
			baselineVersion: cp.BaselineVersion,
			state:           cp.State,
			err:             cp.Err,
			cells:           make(map[int]scenario.CellOutcome, len(cp.Cells)),
			resumed:         len(cp.Cells),
			created:         time.Now(),
		}
		for _, c := range cp.Cells {
			j.cells[c.Index] = c
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if !cp.State.terminal() {
			j.state = StatePending
			s.queue = append(s.queue, j.id)
			obs.Logger("jobs").Info("resuming checkpointed sweep",
				"job", j.id, "completed", len(j.cells), "total", j.geom.Total)
		}
	}
	s.updateGaugesLocked()
	return nil
}

// Submit admits a grid sweep. Identity is deterministic — the spec's
// content hash plus the engine's current baseline version — so
// resubmitting an identical sweep returns the existing job instead of
// duplicating work; a terminal failed/canceled job is re-queued
// (keeping its completed cells) as the retry path.
func (s *Store) Submit(spec scenario.GridSpec) (Status, error) {
	plan, version, err := s.eng.PlanGrid(spec)
	if err != nil {
		return Status{}, err
	}
	id := fmt.Sprintf("sweep-%s-v%d", plan.Hash[:12], version)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, ErrShutdown
	}
	if j, ok := s.jobs[id]; ok {
		if j.state == StateFailed || j.state == StateCanceled {
			j.state = StatePending
			j.err = ""
			j.finished = time.Time{}
			j.canceled = false
			s.queue = append(s.queue, j.id)
			s.updateGaugesLocked()
			s.kick()
		}
		return j.status(), nil
	}
	if len(s.queue) >= s.opts.MaxQueue {
		return Status{}, ErrQueueFull
	}
	j := &job{
		id:              id,
		geom:            plan.Geom(),
		baselineVersion: version,
		state:           StatePending,
		cells:           make(map[int]scenario.CellOutcome),
		created:         time.Now(),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.updateGaugesLocked()
	s.kick()
	return j.status(), nil
}

// kick nudges the runner; callers hold s.mu.
func (s *Store) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// StoreStats is the admission snapshot surfaced on GET /api/stats.
type StoreStats struct {
	QueueDepth int           `json:"queueDepth"`
	Running    int           `json:"running"`
	ByState    map[State]int `json:"byState"`
}

// Stats reports queue depth and per-state job counts; the same values
// feed the jobs_queue_depth and jobs_by_state gauges.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{QueueDepth: len(s.queue), ByState: make(map[State]int)}
	for _, j := range s.jobs {
		st.ByState[j.state]++
	}
	st.Running = st.ByState[StateRunning]
	return st
}

// List returns every job's status in creation order.
func (s *Store) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Get returns one job's status.
func (s *Store) Get(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// Heatmap assembles the job's current artifact from its completed
// cells — partial while running, final once done. Deterministic:
// equal cell sets render byte-identically regardless of evaluation
// order, interruptions, or worker count.
func (s *Store) Heatmap(id string) (*scenario.Heatmap, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	geom, version := j.geom, j.baselineVersion
	cells := make([]scenario.CellOutcome, 0, len(j.cells))
	for _, c := range j.cells {
		cells = append(cells, c)
	}
	s.mu.Unlock()
	return scenario.BuildHeatmap(geom, version, cells), nil
}

// Subscribe attaches a streaming listener to the job. The channel
// closes when the job reaches a terminal state (or the store shuts
// down); call the returned func to detach early.
func (s *Store) Subscribe(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, nil, ErrNotFound
	}
	s.mu.Unlock()
	ch, cancel := j.subscribe()
	// Re-check terminality after registering: if the job finished (or
	// finishes) around the registration, deliver one closing snapshot
	// and close, so late subscribers never hang on events that already
	// fired.
	s.mu.Lock()
	terminal := j.state.terminal()
	s.mu.Unlock()
	if terminal {
		j.publish(s.snapshotEvent(j))
		j.closeSubs()
	}
	return ch, cancel, nil
}

func (s *Store) snapshotEvent(j *job) Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Event{JobID: j.id, State: j.state, Err: j.err,
		Total: j.geom.Total, Completed: len(j.cells)}
}

// Cancel terminally cancels a job. Pending jobs cancel immediately;
// the running job's context is torn down with errJobCanceled and the
// runner persists the terminal state. Canceling a terminal job is a
// no-op.
func (s *Store) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Status{}, ErrNotFound
	}
	if j.state.terminal() {
		st := j.status()
		s.mu.Unlock()
		return st, nil
	}
	j.canceled = true
	if j.state == StatePending {
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.finishLocked(j, StateCanceled, "canceled before start")
		st := j.status()
		s.mu.Unlock()
		return st, nil
	}
	cancel := j.cancel
	st := j.status()
	s.mu.Unlock()
	if cancel != nil {
		cancel(errJobCanceled)
	}
	return st, nil
}

// Wait blocks until the job reaches a terminal state or the store
// closes, and returns its latest status.
func (s *Store) Wait(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		j, ok := s.jobs[id]
		if !ok {
			return Status{}, ErrNotFound
		}
		if j.state.terminal() || s.closed {
			return j.status(), nil
		}
		s.cond.Wait()
	}
}

// Close stops the runner. A running job is interrupted with
// ErrShutdown, checkpointed at the last completed batch, and left
// pending on disk for the next process to resume.
func (s *Store) Close() {
	s.stop(ErrShutdown)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.kick()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.closeSubs()
	}
}

// updateGaugesLocked recomputes the observable state counts; callers
// hold s.mu. Job counts are small (bounded by MaxQueue plus history),
// so a full recount per transition is cheaper than bookkeeping.
func (s *Store) updateGaugesLocked() {
	counts := make(map[State]int, len(stateGauges))
	for _, j := range s.jobs {
		counts[j.state]++
	}
	for st, g := range stateGauges {
		g.Set(float64(counts[st]))
	}
	queueDepth.Set(float64(len(s.queue)))
	jobsRunning.Set(float64(counts[StateRunning]))
}

// finishLocked records a terminal transition; callers hold s.mu and
// are responsible for persistence and subscriber teardown afterwards.
func (s *Store) finishLocked(j *job, st State, errText string) {
	j.state = st
	j.err = errText
	j.finished = time.Now()
	s.updateGaugesLocked()
	s.cond.Broadcast()
}

// run is the serial job runner.
func (s *Store) run() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.mu.Unlock()
			select {
			case <-s.wake:
			case <-s.ctx.Done():
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one sweep: plan, evaluate missing cells in
// checkpoint-sized batches, persist and stream after each batch.
func (s *Store) runJob(j *job) {
	plan, version, err := s.eng.PlanGrid(j.geom.Spec)
	if err != nil {
		s.terminate(j, StateFailed, fmt.Sprintf("plan: %v", err))
		return
	}

	s.mu.Lock()
	if j.canceled {
		s.finishLocked(j, StateCanceled, "canceled before start")
		s.mu.Unlock()
		s.persist(j)
		j.publish(s.snapshotEvent(j))
		j.closeSubs()
		return
	}
	if version != j.baselineVersion || plan.Total() != j.geom.Total {
		// The baseline moved between checkpoint and resume (or between
		// submit and start): completed cells belong to a different map
		// and would poison the artifact. Start over against the new
		// baseline.
		obs.Logger("jobs").Info("baseline changed, discarding checkpointed cells",
			"job", j.id, "was_version", j.baselineVersion, "now_version", version)
		j.cells = make(map[int]scenario.CellOutcome)
		j.resumed = 0
		j.baselineVersion = version
		j.geom = plan.Geom()
	}
	ctx, cancel := context.WithCancelCause(
		context.WithValue(s.ctx, jobIDKey{}, j.id))
	defer cancel(nil)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	s.updateGaugesLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.persist(j)
	j.publish(s.snapshotEvent(j))
	obs.Logger("jobs").Info("sweep started", "job", j.id,
		"total", plan.Total(), "resumed", j.resumed, "workers", s.opts.Workers)

	for {
		// Collect the next batch of cells with no completed outcome, in
		// plan order. Plan order + pure per-cell evaluation is the whole
		// determinism story: batch boundaries, interruptions, and worker
		// counts cannot change any cell's outcome, only when it lands.
		s.mu.Lock()
		batch := make([]scenario.GridCell, 0, s.opts.CheckpointEvery)
		for _, c := range plan.Cells {
			if _, done := j.cells[c.Index]; !done {
				batch = append(batch, c)
				if len(batch) == s.opts.CheckpointEvery {
					break
				}
			}
		}
		s.mu.Unlock()
		if len(batch) == 0 {
			s.terminate(j, StateDone, "")
			return
		}

		if v := s.eng.BaselineVersion(); v != j.baselineVersion {
			s.terminate(j, StateFailed,
				fmt.Sprintf("baseline swapped mid-sweep (v%d -> v%d)", j.baselineVersion, v))
			return
		}
		scs := make([]scenario.Scenario, len(batch))
		for i, c := range batch {
			scs[i] = c.Scenario()
		}
		outs := scenario.Sweep(ctx, s.eng, scs, s.opts.Workers)

		interrupted := false
		fresh := make([]scenario.CellOutcome, 0, len(outs))
		for i, o := range outs {
			if o.Canceled {
				// Never ran (or was stopped mid-flight): not an outcome.
				// The machine-readable marker is what lets resume re-run
				// exactly these slots and checkpoint the rest.
				interrupted = true
				continue
			}
			fresh = append(fresh, scenario.ReduceCell(batch[i], o))
		}
		s.mu.Lock()
		for _, c := range fresh {
			j.cells[c.Index] = c
		}
		completed := len(j.cells)
		s.mu.Unlock()
		cellsCompleted.Add(int64(len(fresh)))
		s.persist(j)
		if len(fresh) > 0 {
			j.publish(Event{JobID: j.id, State: StateRunning,
				Total: j.geom.Total, Completed: completed, Cells: fresh})
		}

		if interrupted {
			cause := context.Cause(ctx)
			if errors.Is(cause, ErrShutdown) || (cause == nil && s.ctx.Err() != nil) {
				// Process shutdown: park resumable. The checkpoint just
				// written carries every completed cell; the in-memory
				// state returns to pending so List reflects reality.
				s.mu.Lock()
				j.state = StatePending
				s.updateGaugesLocked()
				s.cond.Broadcast()
				s.mu.Unlock()
				s.persist(j)
				obs.Logger("jobs").Info("sweep parked for shutdown",
					"job", j.id, "completed", completed, "total", j.geom.Total)
				return
			}
			s.terminate(j, StateCanceled, "canceled")
			return
		}
	}
}

// terminate finishes the job, persists the terminal checkpoint, and
// tears down subscribers.
func (s *Store) terminate(j *job, st State, errText string) {
	s.mu.Lock()
	s.finishLocked(j, st, errText)
	s.mu.Unlock()
	s.persist(j)
	j.publish(s.snapshotEvent(j))
	j.closeSubs()
	obs.Logger("jobs").Info("sweep finished", "job", j.id, "state", string(st), "err", errText)
}

// persist writes the job's checkpoint if the store has a directory.
func (s *Store) persist(j *job) {
	if s.opts.Dir == "" {
		return
	}
	s.mu.Lock()
	cp := &Checkpoint{
		V:               checkpointVersion,
		ID:              j.id,
		Geom:            j.geom,
		BaselineVersion: j.baselineVersion,
		State:           j.state,
		Err:             j.err,
		Cells:           make([]scenario.CellOutcome, 0, len(j.cells)),
	}
	for _, c := range j.cells {
		cp.Cells = append(cp.Cells, c)
	}
	s.mu.Unlock()
	// Plan-order cells keep checkpoint bytes deterministic for a given
	// completed set, which makes the files diffable and testable.
	sort.Slice(cp.Cells, func(a, b int) bool { return cp.Cells[a].Index < cp.Cells[b].Index })
	if err := writeCheckpoint(s.opts.Dir, cp); err != nil {
		obs.Logger("jobs").Error("checkpoint write failed", "job", j.id, "err", err)
	}
}
