package jobs

import (
	"context"
	"sync"
	"testing"

	"intertubes/internal/mapbuilder"
	"intertubes/internal/risk"
	"intertubes/internal/scenario"
)

var (
	fixtureOnce sync.Once
	fixtureRes  *mapbuilder.Result
	fixtureMx   *risk.Matrix
)

func newEngine(t *testing.T, workers int) *scenario.Engine {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureRes = mapbuilder.Build(mapbuilder.Options{Seed: 42})
		fixtureMx = risk.Build(fixtureRes.Map, nil)
	})
	return scenario.New(fixtureRes, fixtureMx, scenario.Options{Seed: 42, Workers: workers})
}

func smallSpec() scenario.GridSpec {
	return scenario.GridSpec{CellKm: 500, RadiiKm: []float64{80}}
}

func TestJobLifecycleInMemory(t *testing.T) {
	eng := newEngine(t, 0)
	s, err := NewStore(eng, Options{Workers: 2, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total == 0 {
		t.Fatalf("submit returned %+v", st)
	}
	if st.BaselineVersion != eng.BaselineVersion() {
		t.Errorf("job pinned version %d, engine at %d", st.BaselineVersion, eng.BaselineVersion())
	}

	// Identical spec resubmission is idempotent (same deterministic ID,
	// no duplicate work).
	st2, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Errorf("resubmit created a second job: %s vs %s", st2.ID, st.ID)
	}

	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state %s (%s), want done", final.State, final.Err)
	}
	if final.Completed != final.Total {
		t.Errorf("completed %d of %d", final.Completed, final.Total)
	}

	h, err := s.Heatmap(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h.Completed != final.Total || h.BaselineVersion != final.BaselineVersion {
		t.Errorf("heatmap %d cells v%d, want %d v%d",
			h.Completed, h.BaselineVersion, final.Total, final.BaselineVersion)
	}
	if _, err := h.GeoJSON(); err != nil {
		t.Fatal(err)
	}

	if list := s.List(); len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("List = %+v", list)
	}
	if _, err := s.Get("nope"); err != ErrNotFound {
		t.Errorf("Get(unknown) err = %v, want ErrNotFound", err)
	}
}

func TestJobInvalidSpecRejectedAtSubmit(t *testing.T) {
	eng := newEngine(t, 0)
	s, err := NewStore(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(scenario.GridSpec{}); err == nil {
		t.Error("empty spec admitted")
	}
	if _, err := s.Submit(scenario.GridSpec{CellKm: 500, RadiiKm: []float64{80}, MaxCells: 1}); err == nil {
		t.Error("over-budget grid admitted")
	}
}

func TestJobCancelMidFlight(t *testing.T) {
	eng := newEngine(t, 0)
	s, err := NewStore(eng, Options{Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Block job evaluations (only job evaluations — the context carries
	// the job ID) until the cancel lands; the job must terminate as
	// canceled, not done or failed.
	started := make(chan string, 1)
	eng.SetEvalHook(func(ctx context.Context) {
		if id, ok := JobIDFromContext(ctx); ok {
			select {
			case started <- id:
			default:
			}
			<-ctx.Done()
		}
	})
	defer eng.SetEvalHook(nil)

	st, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := <-started
	if id != st.ID {
		t.Fatalf("hook saw job %s, submitted %s", id, st.ID)
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", final.State, final.Err)
	}
	// Canceling a terminal job stays terminal.
	again, err := s.Cancel(st.ID)
	if err != nil || again.State != StateCanceled {
		t.Errorf("re-cancel: %+v, %v", again, err)
	}
}

func TestJobStreamDeliversChunksAndClose(t *testing.T) {
	eng := newEngine(t, 0)
	s, err := NewStore(eng, Options{Workers: 2, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ch, detach, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer detach()

	got := 0
	var last Event
	for ev := range ch {
		if ev.JobID != st.ID {
			t.Errorf("event for %s on %s's stream", ev.JobID, st.ID)
		}
		got += len(ev.Cells)
		last = ev
	}
	final, err := s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Err)
	}
	// The stream is lossy under backpressure by design, but an
	// unblocked local subscriber sees every chunk plus the terminal
	// state event.
	if got != final.Total {
		t.Errorf("streamed %d cells, job completed %d", got, final.Total)
	}
	if !last.State.terminal() {
		t.Errorf("last streamed event state %s, want terminal", last.State)
	}

	// Late subscription to a finished job closes immediately after a
	// snapshot rather than hanging.
	ch2, detach2, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer detach2()
	saw := false
	for ev := range ch2 {
		saw = ev.State == StateDone || saw
	}
	if !saw {
		t.Error("late subscriber never saw the terminal snapshot")
	}
}

func TestJobQueueBoundAndRetry(t *testing.T) {
	eng := newEngine(t, 0)
	s, err := NewStore(eng, Options{Workers: 1, MaxQueue: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Park the runner so submissions pile up in the queue.
	release := make(chan struct{})
	eng.SetEvalHook(func(ctx context.Context) {
		if _, ok := JobIDFromContext(ctx); ok {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
	})
	defer eng.SetEvalHook(nil)

	if _, err := s.Submit(smallSpec()); err != nil {
		t.Fatal(err)
	}
	// The first job may still be queued or already running; either way a
	// second distinct spec lands in the queue, and a third must shed.
	if _, err := s.Submit(scenario.GridSpec{CellKm: 500, RadiiKm: []float64{120}}); err != nil && err != ErrQueueFull {
		t.Fatal(err)
	}
	_, err3 := s.Submit(scenario.GridSpec{CellKm: 500, RadiiKm: []float64{160}})
	_, err4 := s.Submit(scenario.GridSpec{CellKm: 500, RadiiKm: []float64{200}})
	if err3 != ErrQueueFull && err4 != ErrQueueFull {
		t.Errorf("queue never filled: %v, %v", err3, err4)
	}
	close(release)
}
