package jobs

import (
	"context"
	"sync"
	"time"

	"intertubes/internal/scenario"
)

// job.go holds the per-job record: lifecycle state, the completed-cell
// set, and the pub/sub fan-out that feeds the SSE streaming endpoint.

// State is a job's lifecycle position. pending → running → one of
// done/failed/canceled; a store shutdown parks a running job back at
// pending (checkpointed, resumable) rather than inventing a distinct
// interrupted state.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) valid() bool {
	switch s {
	case StatePending, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// terminal reports whether the job has finished for good; only
// terminal states stop the store from scheduling the job again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Terminal reports whether the job has finished for good (done,
// failed, or canceled). Exported for consumers deciding whether a
// job's artifacts are final — e.g. the server withholds caching
// headers from partial results.
func (s State) Terminal() bool {
	return s.terminal()
}

// Status is the externally visible snapshot of one job, served by
// GET /api/jobs and GET /api/jobs/{id}.
type Status struct {
	ID              string            `json:"id"`
	Spec            scenario.GridSpec `json:"spec"`
	SpecHash        string            `json:"specHash"`
	BaselineVersion uint64            `json:"baselineVersion"`
	State           State             `json:"state"`
	Err             string            `json:"err,omitempty"`
	Total           int               `json:"total"`
	Completed       int               `json:"completed"`
	// Resumed counts cells recovered from a checkpoint rather than
	// evaluated by this process — observability for the resume path.
	Resumed  int       `json:"resumed,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

// Event is one streaming update: a state transition and/or a chunk of
// freshly completed cells. The SSE endpoint relays these verbatim.
type Event struct {
	JobID     string `json:"jobId"`
	State     State  `json:"state"`
	Err       string `json:"err,omitempty"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	// Cells carries the cells completed since the previous event (only
	// on chunk events; state-transition events leave it empty).
	Cells []scenario.CellOutcome `json:"cells,omitempty"`
}

// job is the store-internal mutable record. All fields are guarded by
// the store mutex except the cancel func (immutable once set) and the
// subscriber list (own mutex, so publishing never contends with the
// store lock).
type job struct {
	id              string
	geom            scenario.GridGeom
	baselineVersion uint64
	state           State
	err             string
	// cells maps plan index → completed outcome. Canceled evaluations
	// never land here.
	cells   map[int]scenario.CellOutcome
	resumed int

	created  time.Time
	started  time.Time
	finished time.Time

	// cancel tears down the per-job context with errJobCanceled; set
	// when the run starts, nil while pending.
	cancel context.CancelCauseFunc
	// canceled latches a user cancel requested before/while running so
	// the runner can honor it even between batches.
	canceled bool

	subMu sync.Mutex
	subs  map[chan Event]struct{}
}

func (j *job) status() Status {
	return Status{
		ID:              j.id,
		Spec:            j.geom.Spec,
		SpecHash:        j.geom.Hash,
		BaselineVersion: j.baselineVersion,
		State:           j.state,
		Err:             j.err,
		Total:           j.geom.Total,
		Completed:       len(j.cells),
		Resumed:         j.resumed,
		Created:         j.created,
		Started:         j.started,
		Finished:        j.finished,
	}
}

// subscribe registers a buffered event channel. The returned cancel
// func is idempotent and safe to call concurrently with publishes.
func (j *job) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	j.subMu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	j.subMu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			j.subMu.Lock()
			delete(j.subs, ch)
			j.subMu.Unlock()
		})
	}
}

// publish fans an event out to every subscriber without blocking: a
// subscriber that cannot keep up drops events (SSE consumers
// re-synchronize from GET /api/jobs/{id} and the result endpoint, so
// a dropped chunk is lost progress detail, not lost data).
func (j *job) publish(ev Event) {
	j.subMu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.subMu.Unlock()
}

// closeSubs closes every subscriber channel; called exactly once when
// the job reaches a terminal state or the store shuts down.
func (j *job) closeSubs() {
	j.subMu.Lock()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.subMu.Unlock()
}

// jobIDKey marks contexts descending from a job run, so test fault
// hooks (Engine.SetEvalHook) can target job evaluations specifically
// while interactive scenario requests pass through untouched.
type jobIDKey struct{}

// JobIDFromContext reports the job ID the evaluation belongs to, if
// the context descends from a job run.
func JobIDFromContext(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(jobIDKey{}).(string)
	return id, ok
}
