package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intertubes/internal/scenario"
)

// checkpoint.go is the persistence layer: one JSON document per job,
// written atomically (temp file + rename) after every evaluated batch,
// so a killed fibermapd resumes a half-finished sweep instead of
// recomputing it. Checkpoints store the compact reduced CellOutcome
// per completed cell — not full Results — which keeps a thousand-cell
// sweep's checkpoint well under a megabyte while still carrying
// everything the heatmap artifacts need. Determinism makes that safe:
// each cell is a pure function of (baseline version, cell scenario),
// so re-rendering from checkpointed cells is byte-identical to an
// uninterrupted run.

// checkpointVersion is the on-disk format version; DecodeCheckpoint
// rejects anything else so a future format change cannot be silently
// misread as cells.
const checkpointVersion = 1

// Checkpoint is the serialized job state. Canceled cells are never
// present: a canceled evaluation never ran, so there is nothing to
// persist (see scenario.Outcome.Canceled). Cells whose evaluation
// failed deterministically are present with Err set — they would fail
// identically on re-run, so re-running them is waste.
type Checkpoint struct {
	V               int                    `json:"v"`
	ID              string                 `json:"id"`
	Geom            scenario.GridGeom      `json:"geom"`
	BaselineVersion uint64                 `json:"baselineVersion"`
	State           State                  `json:"state"`
	Err             string                 `json:"err,omitempty"`
	Cells           []scenario.CellOutcome `json:"cells"`
}

// EncodeCheckpoint serializes a checkpoint in the canonical form
// DecodeCheckpoint accepts.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if cp.V == 0 {
		cp.V = checkpointVersion
	}
	return json.MarshalIndent(cp, "", " ")
}

// DecodeCheckpoint parses and validates a checkpoint document. It is
// the trust boundary between on-disk bytes and the resume path, so it
// rejects structurally inconsistent documents (bad version, spec/hash
// mismatch, out-of-range or duplicate cell indices) rather than letting
// them corrupt a resumed job; scripts/fuzz.sh exercises it directly.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("jobs: checkpoint parse: %w", err)
	}
	if cp.V != checkpointVersion {
		return nil, fmt.Errorf("jobs: checkpoint version %d, want %d", cp.V, checkpointVersion)
	}
	if cp.ID == "" {
		return nil, fmt.Errorf("jobs: checkpoint missing job id")
	}
	if err := cp.Geom.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("jobs: checkpoint spec: %w", err)
	}
	if got := cp.Geom.Spec.Hash(); got != cp.Geom.Hash {
		return nil, fmt.Errorf("jobs: checkpoint grid hash %s does not match spec (%s)", cp.Geom.Hash, got)
	}
	if !cp.State.valid() {
		return nil, fmt.Errorf("jobs: checkpoint state %q unknown", cp.State)
	}
	if cp.Geom.Rows <= 0 || cp.Geom.Cols <= 0 || cp.Geom.Total <= 0 {
		return nil, fmt.Errorf("jobs: checkpoint lattice %dx%d total %d",
			cp.Geom.Rows, cp.Geom.Cols, cp.Geom.Total)
	}
	if max := cp.Geom.Rows * cp.Geom.Cols * len(cp.Geom.Spec.RadiiKm); cp.Geom.Total > max {
		return nil, fmt.Errorf("jobs: checkpoint total %d exceeds lattice capacity %d", cp.Geom.Total, max)
	}
	if len(cp.Cells) > cp.Geom.Total {
		return nil, fmt.Errorf("jobs: checkpoint has %d cells for total %d", len(cp.Cells), cp.Geom.Total)
	}
	seen := make(map[int]bool, len(cp.Cells))
	for i := range cp.Cells {
		idx := cp.Cells[i].Index
		if idx < 0 || idx >= cp.Geom.Total {
			return nil, fmt.Errorf("jobs: checkpoint cell index %d out of range [0,%d)", idx, cp.Geom.Total)
		}
		if seen[idx] {
			return nil, fmt.Errorf("jobs: checkpoint cell index %d duplicated", idx)
		}
		seen[idx] = true
	}
	return &cp, nil
}

// checkpointPath is the job's on-disk location; job IDs are generated
// from hex hash + version so they are always filename-safe, but guard
// anyway against a hand-edited directory.
func checkpointPath(dir, id string) (string, error) {
	if strings.ContainsAny(id, "/\\") || id == "" || id == "." || id == ".." {
		return "", fmt.Errorf("jobs: invalid job id %q", id)
	}
	return filepath.Join(dir, id+".json"), nil
}

// writeCheckpoint persists atomically: a temp file in the same
// directory, fsync-free (the determinism contract makes a torn write
// merely a lost checkpoint, never corruption — decode rejects it and
// the job restarts from the previous one), then rename over the final
// name.
func writeCheckpoint(dir string, cp *Checkpoint) error {
	path, err := checkpointPath(dir, cp.ID)
	if err != nil {
		return err
	}
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+cp.ID+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readCheckpoints loads every decodable checkpoint in dir, skipping
// (and reporting) corrupt ones rather than failing recovery outright.
func readCheckpoints(dir string) (cps []*Checkpoint, skipped []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			skipped = append(skipped, name)
			continue
		}
		cp, derr := DecodeCheckpoint(data)
		if derr != nil {
			skipped = append(skipped, name)
			continue
		}
		cps = append(cps, cp)
	}
	return cps, skipped, nil
}
