package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"intertubes/internal/scenario"
)

// resume_test.go is the tentpole acceptance test: a sweep job killed
// mid-flight (simulated process shutdown), restarted from its on-disk
// checkpoint in a brand-new store at a different worker count, must
// emit a final GeoJSON heatmap byte-identical to an uninterrupted run.

func resumeSpec() scenario.GridSpec {
	return scenario.GridSpec{CellKm: 350, RadiiKm: []float64{60, 140}}
}

func TestCrashResumeByteIdenticalGeoJSON(t *testing.T) {
	dir := t.TempDir()
	const batch = 3

	// Reference: an uninterrupted run, workers=1, no persistence.
	refEng := newEngine(t, 0)
	refStore, err := NewStore(refEng, Options{Workers: 1, CheckpointEvery: batch})
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := refStore.Submit(resumeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if refSt.Total <= 2*batch {
		t.Fatalf("grid too small to interrupt meaningfully: %d cells", refSt.Total)
	}
	if fin, err := refStore.Wait(refSt.ID); err != nil || fin.State != StateDone {
		t.Fatalf("reference run: %+v, %v", fin, err)
	}
	refHeat, err := refStore.Heatmap(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := refHeat.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	refStore.Close()

	// Run A: workers=2, persistent. The eval hook lets exactly the
	// first checkpoint batch through, then parks every later job
	// evaluation until shutdown cancels it — a deterministic
	// mid-flight kill via the existing fault harness.
	engA := newEngine(t, 0)
	var evals atomic.Int64
	engA.SetEvalHook(func(ctx context.Context) {
		if _, ok := JobIDFromContext(ctx); !ok {
			return
		}
		if evals.Add(1) > batch {
			<-ctx.Done()
		}
	})
	storeA, err := NewStore(engA, Options{Dir: dir, Workers: 2, CheckpointEvery: batch})
	if err != nil {
		t.Fatal(err)
	}
	stA, err := storeA.Submit(resumeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if stA.ID != refSt.ID {
		t.Fatalf("job IDs diverge across stores: %s vs %s", stA.ID, refSt.ID)
	}
	ch, detach, err := storeA.Subscribe(stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first checkpointed chunk, then simulate the process
	// dying: Close interrupts the running sweep with ErrShutdown.
	for ev := range ch {
		if len(ev.Cells) > 0 {
			break
		}
	}
	storeA.Close()
	detach()
	engA.SetEvalHook(nil)

	cpPath := filepath.Join(dir, stA.ID+".json")
	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State.terminal() {
		t.Fatalf("parked checkpoint is terminal: %s", cp.State)
	}
	if len(cp.Cells) < batch || len(cp.Cells) >= cp.Geom.Total {
		t.Fatalf("checkpoint has %d of %d cells; want a partial >= %d",
			len(cp.Cells), cp.Geom.Total, batch)
	}

	// Run B: a fresh process (new engine, new store, same directory) at
	// a different worker count. Recovery re-queues the parked job; the
	// runner evaluates only the missing cells.
	engB := newEngine(t, 0)
	var evalsB atomic.Int64
	engB.SetEvalHook(func(ctx context.Context) {
		if _, ok := JobIDFromContext(ctx); ok {
			evalsB.Add(1)
		}
	})
	defer engB.SetEvalHook(nil)
	storeB, err := NewStore(engB, Options{Dir: dir, Workers: 5, CheckpointEvery: batch})
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()

	finB, err := storeB.Wait(stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finB.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", finB.State, finB.Err)
	}
	if finB.Resumed != len(cp.Cells) {
		t.Errorf("Resumed = %d, checkpoint had %d cells", finB.Resumed, len(cp.Cells))
	}
	if got, want := evalsB.Load(), int64(finB.Total-finB.Resumed); got != want {
		t.Errorf("resume evaluated %d cells, want exactly the %d missing ones", got, want)
	}

	heatB, err := storeB.Heatmap(stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	jsonB, err := heatB.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonB, refJSON) {
		t.Fatal("resumed GeoJSON differs from the uninterrupted reference run")
	}
	// The raster artifact rides the same contract.
	if heatB.RenderGrid() != refHeat.RenderGrid() {
		t.Fatal("resumed ASCII raster differs from the uninterrupted reference run")
	}

	// The terminal checkpoint on disk is also final and decodable.
	data, err = os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.State != StateDone || len(cp2.Cells) != cp2.Geom.Total {
		t.Errorf("terminal checkpoint: state %s, %d/%d cells",
			cp2.State, len(cp2.Cells), cp2.Geom.Total)
	}
}

// TestRecoverDiscardsStaleBaseline pins the safety rule: checkpointed
// cells from a different baseline version are discarded, not mixed
// into the artifact.
func TestRecoverDiscardsStaleBaseline(t *testing.T) {
	dir := t.TempDir()
	eng := newEngine(t, 0)

	plan, _, err := eng.PlanGrid(resumeSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Forge a parked checkpoint claiming a baseline this engine never
	// had, with one bogus completed cell.
	id := "sweep-" + plan.Hash[:12] + "-v1"
	cp := &Checkpoint{
		V:               1,
		ID:              id,
		Geom:            plan.Geom(),
		BaselineVersion: 999,
		State:           StatePending,
		Cells: []scenario.CellOutcome{{
			Index: 0, Lat: plan.Cells[0].Lat, Lon: plan.Cells[0].Lon,
			RadiusKm: plan.Cells[0].RadiusKm, MeanDisconnection: 0.999,
		}},
	}
	if err := writeCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}

	s, err := NewStore(eng, Options{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fin, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Err)
	}
	h, err := s.Heatmap(id)
	if err != nil {
		t.Fatal(err)
	}
	if h.BaselineVersion != eng.BaselineVersion() {
		t.Errorf("artifact pinned v%d, engine baseline is v%d", h.BaselineVersion, eng.BaselineVersion())
	}
	for _, c := range h.Cells {
		if c.MeanDisconnection == 0.999 {
			t.Fatal("stale checkpointed cell survived a baseline change")
		}
	}
}
