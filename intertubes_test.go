package intertubes_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intertubes"
)

var cached *intertubes.Study

// study returns a shared small-campaign study; the facade caches every
// stage, and the study is deterministic, so sharing is safe.
func study(t *testing.T) *intertubes.Study {
	t.Helper()
	if cached == nil {
		cached = intertubes.NewStudy(intertubes.Options{
			Probes:          20000,
			LatencyMaxPairs: 600,
			AddConduits:     3,
		})
	}
	return cached
}

func TestStudyHeadline(t *testing.T) {
	s := study(t)
	st := s.Map().Stats()
	if st.ISPs != 20 {
		t.Errorf("ISPs = %d", st.ISPs)
	}
	if st.Conduits < 250 {
		t.Errorf("conduits = %d", st.Conduits)
	}
}

func TestRenderersProduceTheirArtifacts(t *testing.T) {
	s := study(t)
	cases := []struct {
		name    string
		render  func() string
		markers []string
	}{
		{"Table1", s.RenderTable1, []string{"Table 1", "Level 3", "EarthLink"}},
		{"Step3", s.RenderStep3, []string{"Step 3", "Sprint", "CenturyLink"}},
		{"Figure1", s.RenderFigure1, []string{"Figure 1", "conduits:", "sharing"}},
		{"Figure4", s.RenderFigure4, []string{"Figure 4", "rail or road"}},
		{"Figure6", s.RenderFigure6, []string{"Figure 6", "k= 1", "k=20"}},
		{"Figure7", s.RenderFigure7, []string{"Figure 7", "avg sharing"}},
		{"Figure8", s.RenderFigure8, []string{"Figure 8", "legend"}},
		{"Figure9", s.RenderFigure9, []string{"Figure 9", "physical map only", "traceroute overlaid"}},
		{"Table2", s.RenderTable2, []string{"Table 2", "# Probes"}},
		{"Table3", s.RenderTable3, []string{"Table 3", "# Probes"}},
		{"Table4", s.RenderTable4, []string{"Table 4", "Level 3"}},
		{"Figure10", s.RenderFigure10, []string{"Figure 10", "SRR avg"}},
		{"Table5", s.RenderTable5, []string{"Table 5", "|"}},
		{"Figure11", s.RenderFigure11, []string{"Figure 11", "chosen additions"}},
		{"Figure12", s.RenderFigure12, []string{"Figure 12", "best paths", "LOS"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := c.render()
			if len(out) < 40 {
				t.Fatalf("suspiciously short output: %q", out)
			}
			for _, m := range c.markers {
				if !strings.Contains(out, m) {
					t.Errorf("missing %q in:\n%s", m, out)
				}
			}
		})
	}
}

func TestRenderAllCoversEverything(t *testing.T) {
	s := study(t)
	out := s.RenderAll()
	for _, marker := range []string{
		"Table 1", "Figure 1", "Figure 4", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Table 2", "Table 3", "Table 4", "Figure 10", "Table 5",
		"Figure 11", "Figure 12",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("RenderAll missing %s", marker)
		}
	}
}

func TestPaperShapeAssertions(t *testing.T) {
	s := study(t)
	// Figure 6 shape: monotone decreasing, ~90% shared by >=2.
	counts := s.RiskMatrix().SharingCounts()
	total := counts[0]
	if frac := float64(counts[1]) / float64(total); frac < 0.80 || frac > 0.97 {
		t.Errorf("share>=2 = %.3f", frac)
	}
	// Figure 7 shape: the small internationals are the most exposed.
	ranking := s.RiskMatrix().Ranking()
	topThird := map[string]bool{}
	for _, r := range ranking[len(ranking)*2/3:] {
		topThird[r.ISP] = true
	}
	exposedCount := 0
	for _, isp := range []string{"Deutsche Telekom", "NTT", "Inteliquent", "TeliaSonera"} {
		if topThird[isp] {
			exposedCount++
		}
	}
	if exposedCount < 3 {
		t.Errorf("only %d of 4 small internationals in the most-exposed third", exposedCount)
	}
	// Table 5 shape: Level 3 dominates suggested peerings.
	level3 := 0
	for _, r := range s.Robustness() {
		for _, p := range r.SuggestedPeers {
			if p == "Level 3" {
				level3++
			}
		}
	}
	if level3 < 10 {
		t.Errorf("Level 3 suggested %d times", level3)
	}
}

func TestTargetConduits(t *testing.T) {
	s := study(t)
	targets := s.TargetConduits()
	if len(targets) != 12 {
		t.Fatalf("targets = %d, want the paper's 12", len(targets))
	}
	// Each target is heavily shared.
	for _, cid := range targets {
		if s.RiskMatrix().Sharing(cid) < 10 {
			t.Errorf("target %d shared by only %d", cid, s.RiskMatrix().Sharing(cid))
		}
	}
}

func TestExportGeoJSON(t *testing.T) {
	s := study(t)
	dir := t.TempDir()
	if err := s.ExportGeoJSON(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fibermap.geojson", "roads.geojson", "rails.geojson", "pipelines.geojson"} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(raw) < 100 || !strings.Contains(string(raw[:60]), "FeatureCollection") {
			t.Errorf("%s looks wrong", f)
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := intertubes.NewStudy(intertubes.Options{Probes: 5000})
	b := intertubes.NewStudy(intertubes.Options{Probes: 5000})
	if a.RenderFigure1() != b.RenderFigure1() {
		t.Error("Figure 1 differs between identically-seeded studies")
	}
	if a.RenderTable2() != b.RenderTable2() {
		t.Error("Table 2 differs between identically-seeded studies")
	}
}

func TestSeedChangesStudy(t *testing.T) {
	a := intertubes.NewStudy(intertubes.Options{Seed: 1, Probes: 5000})
	b := intertubes.NewStudy(intertubes.Options{Seed: 2, Probes: 5000})
	if a.RenderFigure1() == b.RenderFigure1() {
		t.Error("different seeds should give different maps")
	}
}
