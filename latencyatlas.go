package intertubes

import (
	"context"
	"fmt"
	"sort"

	"intertubes/internal/latency"
	"intertubes/internal/mitigate"
	"intertubes/internal/report"
)

// latencyatlas.go surfaces the all-pairs latency atlas
// (internal/latency) on the Study: the inflation CDF the "Dissecting
// Latency" extension reports, and the greedy overlay relay planner it
// motivates. Both read the engine's snapshot-memoized atlas, so
// repeated renders and API pages share one source-batched build.

// LatencyAtlas returns (building once per engine baseline) the
// all-pairs city-to-city latency atlas, plus the baseline version it
// was built from — the version the latency API folds into its ETag.
func (s *Study) LatencyAtlas() (*latency.Atlas, uint64) {
	at, version, _ := s.Scenarios().Engine().LatencyAtlas(context.Background()) // background ctx: cannot fail
	return at, version
}

// RenderInflationCDF renders the atlas's latency-inflation study —
// the Figure 12 machinery pointed at every connected city pair:
// fiber-path delay, the geodesic c-latency bound, and their ratio.
func (s *Study) RenderInflationCDF() string {
	at, _ := s.LatencyAtlas()
	return renderInflationCDF(at.Pairs())
}

// renderInflationCDF is the pure rendering half, split out so the
// degenerate-input guard is testable without a full study: an empty
// pair set renders a note, never NaN percentiles.
func renderInflationCDF(pairs []latency.PairLatency) string {
	const title = "Latency inflation: fiber-path delay vs geodesic c-latency, all connected city pairs"
	if len(pairs) == 0 {
		return title + "\n  (no connected city pairs)\n"
	}
	infl := make([]float64, len(pairs))
	fiberMs := make([]float64, len(pairs))
	geoMs := make([]float64, len(pairs))
	for i, pl := range pairs {
		infl[i] = pl.Inflation
		fiberMs[i] = pl.FiberMs
		geoMs[i] = pl.GeoMs
	}
	sort.Float64s(infl)
	sort.Float64s(fiberMs)
	sort.Float64s(geoMs)
	series := []report.CDFSeries{
		{Name: "fiber path (ms)", Values: fiberMs},
		{Name: "c-latency (ms)", Values: geoMs},
		{Name: "inflation (x)", Values: infl},
	}
	return report.CDFTable(title, series, nil) +
		fmt.Sprintf("pairs: %d; median inflation %.2fx, p90 %.2fx\n",
			len(pairs), report.Quantile(infl, 0.50), report.Quantile(infl, 0.90))
}

// RelayPlan greedily places k overlay relay sites scored off the
// atlas rows and reports the study-pair delay improvement — the
// overlay-routing payoff of the atlas (see mitigate.PlaceRelays).
func (s *Study) RelayPlan(k int) mitigate.RelayResult {
	at, _ := s.LatencyAtlas()
	return mitigate.PlaceRelays(at, s.Latency(), k)
}

// RenderRelayPlan renders a k-relay plan.
func (s *Study) RenderRelayPlan(k int) string {
	res := s.RelayPlan(k)
	out := fmt.Sprintf("Overlay relay plan (greedy, k=%d) over %d study pairs\n", k, res.Pairs)
	if len(res.Relays) == 0 {
		return out + "  no relay improves any pair\n"
	}
	for i, r := range res.Relays {
		out += fmt.Sprintf("  %d. %s: saves %.2f ms aggregate across %d pairs\n",
			i+1, s.res.Map.Node(r.Node).Key(), r.GainMs, r.PairsImproved)
	}
	out += fmt.Sprintf("mean pair delay %.2f -> %.2f ms\n", res.MeanBeforeMs, res.MeanAfterMs)
	return out
}
