package intertubes

import (
	"strings"
	"testing"

	"intertubes/internal/geo"
)

// TestRenderFigure4Guard pins renderFigure4 against degenerate
// co-location inputs: an empty analysis must render a clean notice,
// never a NaN histogram.
func TestRenderFigure4Guard(t *testing.T) {
	cases := []struct {
		name    string
		colo    []geo.Colocation
		want    []string
		forbid  []string
		wantNaN bool
	}{
		{
			name:   "empty analysis",
			colo:   nil,
			want:   []string{"Figure 4", "no co-location data"},
			forbid: []string{"NaN"},
		},
		{
			name: "single fully colocated conduit",
			colo: []geo.Colocation{{
				Fractions: map[string]float64{"road": 1, "rail": 1},
				Any:       1,
			}},
			want:   []string{"exactly 1.0", "mean co-location: road 1.00, rail 1.00, either 1.00"},
			forbid: []string{"NaN"},
		},
		{
			name: "mixed fractions",
			colo: []geo.Colocation{
				{Fractions: map[string]float64{"road": 0.5, "rail": 0.1}, Any: 0.5},
				{Fractions: map[string]float64{"road": 0.9, "rail": 0.3}, Any: 0.9},
			},
			want:   []string{"mean co-location: road 0.70, rail 0.20, either 0.70"},
			forbid: []string{"NaN"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := renderFigure4(tc.colo)
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("missing %q in:\n%s", w, got)
				}
			}
			for _, f := range tc.forbid {
				if strings.Contains(got, f) {
					t.Errorf("output contains %q:\n%s", f, got)
				}
			}
		})
	}
}
