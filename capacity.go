package intertubes

import (
	"context"
	"fmt"
	"strings"

	"intertubes/internal/fiber"
	"intertubes/internal/report"
	"intertubes/internal/scenario"
)

// capacity.go exposes the capacity layer at the Study level: the
// wavelength-derived conduit capacities and the gravity-model traffic
// matrix (internal/scenario), rendered as the traffic stranded when
// the §5 target conduits — the most heavily shared — are lost.

// RenderCapacity renders the capacity study: baseline offered and
// served Gbps under the gravity demand model, the traffic stranded by
// cutting all target conduits at once, and a per-conduit table of the
// loss each target causes alone. Evaluations go through the scenario
// cache, so repeated renders cost one sweep.
func (s *Study) RenderCapacity() string {
	targets := s.TargetConduits()
	scs := make([]scenario.Scenario, 0, len(targets)+1)
	scs = append(scs, scenario.Scenario{Name: "cut-all-targets", CutConduits: targets})
	for _, cid := range targets {
		scs = append(scs, scenario.Scenario{
			Name:        fmt.Sprintf("cut-conduit-%d", cid),
			CutConduits: []fiber.ConduitID{cid},
		})
	}
	outs := s.SweepScenarios(context.Background(), scs)

	var b strings.Builder
	b.WriteString("Capacity study: gravity-model demand vs wavelength-derived conduit capacities\n")
	all := outs[0].Result
	if all == nil || all.LostTraffic == nil {
		fmt.Fprintf(&b, "  evaluation failed: %s\n", outs[0].Err)
		return b.String()
	}
	lt := all.LostTraffic
	fmt.Fprintf(&b, "  demand pairs:      %d (top population products)\n", lt.Demands)
	fmt.Fprintf(&b, "  offered:           %.1f Gbps\n", lt.OfferedGbps)
	fmt.Fprintf(&b, "  served (baseline): %.1f Gbps\n", lt.ServedBeforeGbps)
	fmt.Fprintf(&b, "  cutting all %d most-shared conduits: served %.1f -> %.1f Gbps, stranded %.1f Gbps\n\n",
		len(targets), lt.ServedBeforeGbps, lt.ServedAfterGbps, lt.LostGbps)

	t := report.Table{
		Title:   "Lost traffic per target conduit (cut alone)",
		Headers: []string{"conduit", "sharing", "length km", "lost Gbps"},
	}
	for i, cid := range targets {
		o := outs[i+1]
		if o.Result == nil || o.Result.LostTraffic == nil {
			continue
		}
		c := s.res.Map.Conduit(cid)
		t.AddRow(
			fmt.Sprintf("%s - %s", s.res.Map.Node(c.A).Key(), s.res.Map.Node(c.B).Key()),
			s.mx.Sharing(cid),
			fmt.Sprintf("%.0f", c.LengthKm),
			fmt.Sprintf("%.1f", o.Result.LostTraffic.LostGbps),
		)
	}
	b.WriteString(t.String())
	return b.String()
}
