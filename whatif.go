package intertubes

import (
	"context"

	"intertubes/internal/geo"
	"intertubes/internal/resilience"
	"intertubes/internal/scenario"
)

// whatif.go extends the Study with the declarative what-if engine
// (internal/scenario): compose perturbations of the baseline map —
// cuts, regional disasters, provider removal, new builds — and get the
// deltas against every §4/§5 analysis, cached by content hash.

// Scenarios returns (once) the what-if query service: a content-hash
// keyed LRU cache with singleflight deduplication over the scenario
// engine. Results are shared and must be treated as immutable.
func (s *Study) Scenarios() *scenario.Cache {
	if s.scen == nil {
		eng := scenario.New(s.res, s.mx, scenario.Options{
			Seed:            s.opts.Seed,
			Probes:          s.opts.Probes,
			LatencyMaxPairs: s.opts.LatencyMaxPairs,
			Workers:         s.opts.Workers,
		})
		s.scen = scenario.NewCache(eng, 0)
	}
	return s.scen
}

// WhatIf evaluates one scenario (through the cache) against the
// baseline study.
func (s *Study) WhatIf(ctx context.Context, sc scenario.Scenario) (*scenario.Result, error) {
	return s.Scenarios().Eval(ctx, sc)
}

// SweepScenarios evaluates a batch of scenarios over the study's
// worker pool; outcomes are in input order and bit-identical for any
// worker count.
func (s *Study) SweepScenarios(ctx context.Context, scs []scenario.Scenario) []scenario.Outcome {
	return scenario.Sweep(ctx, s.Scenarios().Engine(), scs, s.opts.Workers)
}

// RenderScenario evaluates a scenario and renders its delta report.
func (s *Study) RenderScenario(ctx context.Context, sc scenario.Scenario) (string, error) {
	r, err := s.WhatIf(ctx, sc)
	if err != nil {
		return "", err
	}
	return scenario.Render(r), nil
}

// Disaster evaluates a circular regional failure — every tenanted
// conduit entering the region is cut — against every mapped ISP.
func (s *Study) Disaster(lat, lon, radiusKm float64) resilience.DisasterImpact {
	return resilience.Disaster(s.res.Map, s.mx, resilience.Region{
		Center:   geo.Point{Lat: lat, Lon: lon},
		RadiusKm: radiusKm,
	})
}

// RenderDisaster renders the full what-if report for a regional
// disaster, reusing the scenario engine's regional-cut primitive (and
// its cache: repeated renders of the same region cost one evaluation).
func (s *Study) RenderDisaster(lat, lon, radiusKm float64) (string, error) {
	return s.RenderScenario(context.Background(), scenario.Scenario{
		Name:    "regional-disaster",
		Regions: []scenario.Region{{Lat: lat, Lon: lon, RadiusKm: radiusKm}},
	})
}
