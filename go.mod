module intertubes

go 1.22
