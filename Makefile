GO ?= go

.PHONY: build test race vet verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge gate: vet, build, tests, race detector.
verify:
	sh scripts/verify.sh

# bench runs the benchmark suite and writes BENCH_obs.json.
bench:
	sh scripts/bench.sh

clean:
	rm -f BENCH_obs.json
