GO ?= go

.PHONY: build test race vet verify fuzz bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full pre-merge gate: vet, build, tests, race detector,
# fuzz smoke (skip the last with SKIP_FUZZ=1).
verify:
	sh scripts/verify.sh

# fuzz runs every native fuzz target for a short burst (FUZZTIME=10s).
fuzz:
	sh scripts/fuzz.sh

# bench runs the benchmark suite and writes BENCH_obs.json.
bench:
	sh scripts/bench.sh

# bench-smoke runs the graph-kernel micro-benchmarks and the
# clone-vs-overlay scenario pairs for one iteration each — a fast CI
# check that the benchmarks themselves still build and
# run (it does not overwrite BENCH_obs.json).
bench-smoke:
	BENCH='DijkstraSweep|KShortestPaths$$|EdgeBetweenness|MaxFlow|ScenarioEvaluate|ScenarioEvaluateCapacity|ScenarioSweep|GridSweep|TracingOverhead|LatencyAtlas' BENCHTIME=1x OUT=BENCH_smoke.json sh scripts/bench.sh
	rm -f BENCH_smoke.json

clean:
	rm -f BENCH_obs.json BENCH_smoke.json
