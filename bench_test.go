package intertubes_test

// bench_test.go regenerates every table and figure of the paper's
// evaluation as a benchmark, one per artifact (see DESIGN.md's
// per-experiment index), plus ablations of the design choices called
// out there. Run:
//
//	go test -bench=. -benchmem
//
// The benchmarks measure the cost of regenerating each artifact and
// report its headline number as a custom metric where one exists.

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"intertubes"
	"intertubes/internal/fiber"
	"intertubes/internal/geo"
	"intertubes/internal/graph"
	"intertubes/internal/latency"
	"intertubes/internal/mapbuilder"
	"intertubes/internal/mitigate"
	"intertubes/internal/obs"
	"intertubes/internal/records"
	"intertubes/internal/risk"
	"intertubes/internal/scenario"
	"intertubes/internal/traceroute"
)

var (
	benchOnce  sync.Once
	benchStudy *intertubes.Study
	benchRes   *mapbuilder.Result
	benchMx    *risk.Matrix
)

func sharedStudy() *intertubes.Study {
	benchOnce.Do(func() {
		benchStudy = intertubes.NewStudy(intertubes.Options{
			Seed:            42,
			Probes:          60000,
			LatencyMaxPairs: 1500,
			AddConduits:     5,
		})
		benchRes = benchStudy.Result()
		benchMx = benchStudy.RiskMatrix()
	})
	return benchStudy
}

// BenchmarkTable1_InitialMap regenerates Table 1: the full §2
// pipeline, reporting per-ISP node/link counts.
func BenchmarkTable1_InitialMap(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := intertubes.NewStudy(intertubes.Options{Seed: 42})
		out = s.RenderTable1()
	}
	if len(out) == 0 {
		b.Fatal("empty artifact")
	}
}

// BenchmarkFigure1_MapConstruction regenerates the Figure 1 map and
// reports its headline statistics.
func BenchmarkFigure1_MapConstruction(b *testing.B) {
	var nodes, links, conduits int
	for i := 0; i < b.N; i++ {
		res := mapbuilder.Build(mapbuilder.Options{Seed: 42})
		st := res.Map.Stats()
		nodes, links, conduits = st.Nodes, st.Links, st.Conduits
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(links), "links")
	b.ReportMetric(float64(conduits), "conduits")
}

// BenchmarkFigure4_Colocation regenerates the §3 co-location analysis
// (the ArcGIS-substitute overlap engine over every conduit).
func BenchmarkFigure4_Colocation(b *testing.B) {
	s := sharedStudy()
	res := benchRes
	var meanRoad float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := geo.NewOverlapAnalyzer(map[string][]geo.Polyline{
			"road": res.Atlas.RoadPolylines(),
			"rail": res.Atlas.RailPolylines(),
		}, geo.OverlapOptions{BufferKm: 15})
		var road float64
		n := 0
		for j := range res.Map.Conduits {
			c := &res.Map.Conduits[j]
			if len(c.Tenants) == 0 {
				continue
			}
			road += an.Analyze(c.Path).Fractions["road"]
			n++
		}
		meanRoad = road / float64(n)
	}
	_ = s
	b.ReportMetric(meanRoad, "mean-road-frac")
}

// BenchmarkFigure6_SharingCounts regenerates Figure 6 from the risk
// matrix.
func BenchmarkFigure6_SharingCounts(b *testing.B) {
	sharedStudy()
	var ge2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mx := risk.Build(benchRes.Map, nil)
		counts := mx.SharingCounts()
		ge2 = counts[1]
	}
	b.ReportMetric(float64(ge2), "conduits-ge2")
}

// BenchmarkFigure7_ISPRanking regenerates Figure 7.
func BenchmarkFigure7_ISPRanking(b *testing.B) {
	sharedStudy()
	var most float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := benchMx.Ranking()
		most = r[len(r)-1].Mean
	}
	b.ReportMetric(most, "max-avg-sharing")
}

// BenchmarkFigure8_Hamming regenerates Figure 8's distance matrix.
func BenchmarkFigure8_Hamming(b *testing.B) {
	sharedStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := benchMx.Hamming()
		if len(h) != 20 {
			b.Fatal("wrong matrix size")
		}
	}
}

// BenchmarkFigure9_TrafficCDF regenerates Figure 9: a traceroute
// campaign plus the sharing CDF shift.
func BenchmarkFigure9_TrafficCDF(b *testing.B) {
	sharedStudy()
	var shift float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp := traceroute.Run(benchRes, traceroute.Options{N: 20000, Seed: 7})
		pub, over := camp.SharingWithTraffic()
		var sp, so int
		for j := range pub {
			sp += pub[j]
			so += over[j]
		}
		shift = float64(so)/float64(len(over)) - float64(sp)/float64(len(pub))
	}
	b.ReportMetric(shift, "avg-tenant-shift")
}

// BenchmarkTable2_WestEast regenerates Table 2 from a fresh campaign.
func BenchmarkTable2_WestEast(b *testing.B) {
	sharedStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp := traceroute.Run(benchRes, traceroute.Options{N: 20000, Seed: 7})
		if len(camp.TopConduits(20, true)) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable3_EastWest regenerates Table 3 (ranking only; the
// campaign is shared with the study).
func BenchmarkTable3_EastWest(b *testing.B) {
	s := sharedStudy()
	camp := s.Campaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(camp.TopConduits(20, false)) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable4_ISPConduits regenerates Table 4's provider ranking.
func BenchmarkTable4_ISPConduits(b *testing.B) {
	s := sharedStudy()
	camp := s.Campaign()
	var topConduits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := camp.TopISPs(10)
		topConduits = rows[0].Conduits
	}
	b.ReportMetric(float64(topConduits), "top-isp-conduits")
}

// BenchmarkFigure10_Robustness regenerates Figure 10: the §5.1
// framework over the most-shared conduits.
func BenchmarkFigure10_Robustness(b *testing.B) {
	s := sharedStudy()
	targets := s.TargetConduits()
	var avgPI float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := mitigate.RobustnessSuggestion(benchRes.Map, benchMx, targets, 3)
		var sum float64
		n := 0
		for _, r := range rows {
			if r.Evaluated > 0 {
				sum += r.PI.Avg
				n++
			}
		}
		avgPI = sum / float64(n)
	}
	b.ReportMetric(avgPI, "avg-path-inflation")
}

// BenchmarkTable5_Peering regenerates Table 5 and reports how often
// Level 3 is the suggested peer.
func BenchmarkTable5_Peering(b *testing.B) {
	s := sharedStudy()
	targets := s.TargetConduits()
	var level3 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := mitigate.RobustnessSuggestion(benchRes.Map, benchMx, targets, 3)
		level3 = 0
		for _, r := range rows {
			for _, p := range r.SuggestedPeers {
				if p == "Level 3" {
					level3++
				}
			}
		}
	}
	b.ReportMetric(float64(level3), "level3-suggestions")
}

// BenchmarkFigure11_AddLinks regenerates Figure 11's greedy sweep
// (k=3 per iteration to keep the benchmark honest but affordable).
func BenchmarkFigure11_AddLinks(b *testing.B) {
	sharedStudy()
	var added int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mitigate.AddConduits(benchRes.Map, benchMx, mitigate.AddOptions{K: 3})
		added = len(res.Additions)
	}
	b.ReportMetric(float64(added), "conduits-added")
}

// BenchmarkFigure12_Latency regenerates Figure 12's delay study.
func BenchmarkFigure12_Latency(b *testing.B) {
	sharedStudy()
	var bestEqROW float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := mitigate.LatencyStudy(benchRes.Map, benchRes.Atlas, mitigate.LatencyOptions{MaxPairs: 800})
		bestEqROW = mitigate.Summarize(study).BestEqualsROW
	}
	b.ReportMetric(bestEqROW, "best-eq-row-frac")
}

// BenchmarkRecordsInference measures the §2 step-2/4 substrate: full
// tenant inference over every conduit in the corpus.
func BenchmarkRecordsInference(b *testing.B) {
	sharedStudy()
	inf := records.NewInference(benchRes.Index)
	isps := mapbuilder.MappedNames()
	refs := benchRes.Corpus.Refs()
	var found int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found = 0
		for _, ref := range refs {
			found += len(inf.TenantsFor(ref, isps, 8))
		}
	}
	b.ReportMetric(float64(found)/float64(len(refs)), "tenants-per-conduit")
}

// ---- Graph kernel micro-benchmarks. ----
//
// The §5 analyses are dominated by shortest-path queries, so the
// kernel's steady-state cost is tracked directly: each benchmark
// reuses one workspace across iterations, exactly as the sweeps do
// (see DESIGN.md "Graph kernel memory layout"). Run with -benchmem:
// the allocs/op column is the contract.

// BenchmarkDijkstraSweep measures single-source distance queries over
// the built map graph, cycling the source across all vertices.
func BenchmarkDijkstraSweep(b *testing.B) {
	sharedStudy()
	g := benchRes.Map.Graph()
	wf := benchRes.Map.LitWeight()
	ws := graph.NewWorkspace()
	dst := make([]float64, g.NumVertices())
	dst = g.ShortestDistancesWS(ws, 0, wf, dst) // warm: CSR build + workspace growth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.ShortestDistancesWS(ws, i%g.NumVertices(), wf, dst)
	}
	b.ReportMetric(float64(g.NumVertices()), "vertices")
}

// BenchmarkKShortestPaths measures Yen's algorithm (k=4, the latency
// study's setting) between city pairs cycled across the graph.
func BenchmarkKShortestPaths(b *testing.B) {
	sharedStudy()
	g := benchRes.Map.Graph()
	wf := benchRes.Map.LitWeight()
	ws := graph.NewWorkspace()
	n := g.NumVertices()
	g.KShortestPathsWS(ws, 0, n/2, 4, wf) // warm: CSR build + workspace growth
	var paths int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % n
		dst := (i + n/2) % n
		if src == dst {
			dst = (dst + 1) % n
		}
		paths += len(g.KShortestPathsWS(ws, src, dst, 4, wf))
	}
	b.ReportMetric(float64(paths)/float64(b.N), "paths/op")
}

// BenchmarkEdgeBetweenness measures the all-sources Brandes pass the
// resilience analysis runs to pick backhoe targets.
func BenchmarkEdgeBetweenness(b *testing.B) {
	sharedStudy()
	g := benchRes.Map.Graph()
	wf := benchRes.Map.LitWeight()
	ws := graph.NewWorkspace()
	dst := make([]float64, g.NumEdges())
	dst = g.EdgeBetweennessWS(ws, wf, dst) // warm: CSR build + workspace growth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.EdgeBetweennessWS(ws, wf, dst)
	}
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

// BenchmarkMaxFlow measures the Dinic max-flow kernel over the built
// map graph with wavelength-derived capacities, cycling source/sink
// across vertices. Run with -benchmem: the steady-state contract is
// zero allocs/op (the workspace owns every scratch structure).
func BenchmarkMaxFlow(b *testing.B) {
	sharedStudy()
	m := benchRes.Map
	g := m.Graph()
	caps := make([]float64, g.NumEdges())
	for eid := range caps {
		caps[eid] = fiber.ConduitCapacityGbps(m, fiber.ConduitID(eid))
	}
	ws := graph.NewWorkspace()
	n := g.NumVertices()
	g.MaxFlowWS(ws, 0, n/2, caps, nil) // warm: CSR build + workspace growth
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % n
		dst := (i + n/2) % n
		if src == dst {
			dst = (dst + 1) % n
		}
		total += g.MaxFlowWS(ws, src, dst, caps, nil)
	}
	b.ReportMetric(total/float64(b.N), "gbps/op")
}

// ---- Ablations (design choices called out in DESIGN.md). ----

// BenchmarkAblationBufferWidth sweeps the Figure 4 co-location buffer.
func BenchmarkAblationBufferWidth(b *testing.B) {
	sharedStudy()
	for _, buffer := range []float64{10, 20, 40} {
		b.Run(formatKm(buffer), func(b *testing.B) {
			var meanAny float64
			for i := 0; i < b.N; i++ {
				an := geo.NewOverlapAnalyzer(map[string][]geo.Polyline{
					"road": benchRes.Atlas.RoadPolylines(),
					"rail": benchRes.Atlas.RailPolylines(),
				}, geo.OverlapOptions{BufferKm: buffer})
				var any float64
				n := 0
				for j := range benchRes.Map.Conduits {
					c := &benchRes.Map.Conduits[j]
					if len(c.Tenants) == 0 {
						continue
					}
					any += an.Analyze(c.Path).Any
					n++
				}
				meanAny = any / float64(n)
			}
			b.ReportMetric(meanAny, "mean-colocated-frac")
		})
	}
}

func formatKm(v float64) string {
	return "buffer-" + string(rune('0'+int(v)/10)) + string(rune('0'+int(v)%10)) + "km"
}

// BenchmarkAblationCampaignSize checks how quickly the Table 2 conduit
// ranking stabilizes with campaign size.
func BenchmarkAblationCampaignSize(b *testing.B) {
	sharedStudy()
	reference := traceroute.Run(benchRes, traceroute.Options{N: 100000, Seed: 7})
	refTop := topSet(reference, 20)
	for _, n := range []int{5000, 20000, 50000} {
		name := map[int]string{5000: "n-5k", 20000: "n-20k", 50000: "n-50k"}[n]
		b.Run(name, func(b *testing.B) {
			var overlap float64
			for i := 0; i < b.N; i++ {
				camp := traceroute.Run(benchRes, traceroute.Options{N: n, Seed: 7})
				got := topSet(camp, 20)
				match := 0
				for k := range got {
					if refTop[k] {
						match++
					}
				}
				overlap = float64(match) / 20
			}
			b.ReportMetric(overlap, "top20-overlap-vs-100k")
		})
	}
}

func topSet(c *traceroute.Campaign, n int) map[string]bool {
	out := make(map[string]bool, n)
	for _, r := range c.TopConduits(n, true) {
		out[r.A+"|"+r.B] = true
	}
	return out
}

// BenchmarkAblationAlignCandidates sweeps step 3's candidate-path
// count and reports alignment accuracy against ground truth.
func BenchmarkAblationAlignCandidates(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		name := map[int]string{1: "k-1", 3: "k-3", 5: "k-5"}[k]
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res := mapbuilder.Build(mapbuilder.Options{Seed: 42, AlignCandidates: k})
				acc = res.Report.AlignmentAccuracy()
			}
			b.ReportMetric(acc, "alignment-accuracy")
		})
	}
}

// BenchmarkAblationRecordsNoise sweeps public-records corpus quality
// and reports step-2 validation rate.
func BenchmarkAblationRecordsNoise(b *testing.B) {
	for _, cov := range []float64{0.5, 0.9, 1.0} {
		name := map[float64]string{0.5: "coverage-50", 0.9: "coverage-90", 1.0: "coverage-100"}[cov]
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res := mapbuilder.Build(mapbuilder.Options{
					Seed:    42,
					Records: records.Options{Coverage: cov, TenantRecall: 0.9, Seed: 43},
				})
				rate = float64(res.Report.Step2Validated) / float64(res.Report.Step2Checked)
			}
			b.ReportMetric(rate, "step2-validation-rate")
		})
	}
}

// BenchmarkAblationOccupancyDiscount compares the sharing tail with
// the shared-trench economics on and off.
func BenchmarkAblationOccupancyDiscount(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "discount-on"
		if disable {
			name = "discount-off"
		}
		b.Run(name, func(b *testing.B) {
			var tail int
			var mean float64
			for i := 0; i < b.N; i++ {
				res := mapbuilder.Build(mapbuilder.Options{Seed: 42, DisableOccupancyDiscount: disable})
				mx := risk.Build(res.Map, nil)
				tail = len(mx.SharedAtLeast(15))
				mean = mx.MeanSharing()
			}
			b.ReportMetric(float64(tail), "conduits-ge15")
			b.ReportMetric(mean, "mean-sharing")
		})
	}
}

// BenchmarkAblationGreedyVsExact compares the fast summed-SR candidate
// scorer with the exact minimax scorer in the §5.2 optimizer.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	sharedStudy()
	for _, exact := range []bool{false, true} {
		name := "approx"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var meanImpr float64
			for i := 0; i < b.N; i++ {
				res := mitigate.AddConduits(benchRes.Map, benchMx, mitigate.AddOptions{K: 3, Exact: exact})
				var sum float64
				n := 0
				for _, series := range res.Improvement {
					sum += series[len(series)-1]
					n++
				}
				meanImpr = sum / float64(n)
			}
			b.ReportMetric(meanImpr, "mean-improvement")
		})
	}
}

// BenchmarkLatencyImprovements measures the §5.3 constructive
// analysis: proposing ROW-following builds.
func BenchmarkLatencyImprovements(b *testing.B) {
	sharedStudy()
	study := mitigate.LatencyStudy(benchRes.Map, benchRes.Atlas, mitigate.LatencyOptions{MaxPairs: 800})
	b.ResetTimer()
	var saved float64
	for i := 0; i < b.N; i++ {
		imps := mitigate.LatencyImprovements(benchRes.Map, benchRes.Atlas, study, 10, mitigate.LatencyOptions{})
		saved = 0
		for _, imp := range imps {
			saved += imp.SavedMs
		}
	}
	b.ReportMetric(saved, "total-ms-saved-top10")
}

// ---- Worker-pool scaling (the internal/par substrate). ----
//
// Each pair below times the same computation at workers=1 and at the
// machine's CPU count; the outputs are bit-identical by construction
// (see DESIGN.md "Parallel execution"), so the only difference the
// pair can show is wall-clock speedup. On a multi-core machine the
// campaign and latency variants should scale near-linearly; on a
// uniprocessor both variants collapse to the serial path.

func workerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	// Uniprocessor: still exercise the pooled code path.
	return []int{1, 2}
}

// BenchmarkWorkersColocation times the Figure 4 co-location scan over
// every tenanted conduit via OverlapAnalyzer.AnalyzeAll.
func BenchmarkWorkersColocation(b *testing.B) {
	sharedStudy()
	an := geo.NewOverlapAnalyzer(map[string][]geo.Polyline{
		"road": benchRes.Atlas.RoadPolylines(),
		"rail": benchRes.Atlas.RailPolylines(),
	}, geo.OverlapOptions{BufferKm: 15})
	var pls []geo.Polyline
	for j := range benchRes.Map.Conduits {
		c := &benchRes.Map.Conduits[j]
		if len(c.Tenants) > 0 {
			pls = append(pls, c.Path)
		}
	}
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if out := an.AnalyzeAll(pls, w); len(out) != len(pls) {
					b.Fatal("short result")
				}
			}
		})
	}
}

// BenchmarkWorkersCampaign times the Figure 9 traceroute campaign.
func BenchmarkWorkersCampaign(b *testing.B) {
	sharedStudy()
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				camp := traceroute.Run(benchRes, traceroute.Options{N: 20000, Seed: 7, Workers: w})
				total = camp.Total
			}
			b.ReportMetric(float64(total), "probes-kept")
		})
	}
}

// BenchmarkWorkersLatencyStudy times the Figure 12 all-pairs sweep.
func BenchmarkWorkersLatencyStudy(b *testing.B) {
	sharedStudy()
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				study := mitigate.LatencyStudy(benchRes.Map, benchRes.Atlas,
					mitigate.LatencyOptions{MaxPairs: 800, Workers: w})
				pairs = len(study)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkWorkersAddConduits times the Figure 11 candidate-scoring
// scan inside the greedy sweep.
func BenchmarkWorkersAddConduits(b *testing.B) {
	sharedStudy()
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var added int
			for i := 0; i < b.N; i++ {
				res := mitigate.AddConduits(benchRes.Map, benchMx, mitigate.AddOptions{K: 3, Workers: w})
				added = len(res.Additions)
			}
			b.ReportMetric(float64(added), "conduits-added")
		})
	}
}

// ---- Scenario engine: clone vs overlay evaluation paths. ----
//
// Each pair below runs the same workload through the retained
// clone-per-scenario reference path and the copy-on-write overlay
// path (see DESIGN.md "Snapshot overlays"). The two paths produce
// byte-identical Result JSON — the differential suite in
// internal/scenario pins that — so the pair measures pure evaluation
// cost: the overlay/clone ns/op ratio in BENCH_obs.json is the
// tentpole's throughput claim.

// scenarioModes names the two evaluation paths for sub-benchmarks.
func scenarioModes() []struct {
	name  string
	clone bool
} {
	return []struct {
		name  string
		clone bool
	}{{"clone", true}, {"overlay", false}}
}

// scenarioSweepBatch is a representative disaster grid: a sweep of
// localized circular disaster footprints centered on map nodes
// spread across the atlas (the ROADMAP's disaster-grid scale item),
// plus the global what-ifs a campaign mixes in — escalating
// shared-conduit cuts, a provider removal, and a new build.
func scenarioSweepBatch() []scenario.Scenario {
	isps := benchMx.ISPs
	m := benchRes.Map
	batch := make([]scenario.Scenario, 0, 16)
	n := m.NumNodes()
	for i := 0; i < 10; i++ {
		loc := m.Node(fiber.NodeID(i * n / 10)).Loc
		batch = append(batch, scenario.Scenario{
			Regions: []scenario.Region{{Lat: loc.Lat, Lon: loc.Lon, RadiusKm: 120}},
		})
	}
	batch = append(batch,
		scenario.Scenario{CutMostShared: 2},
		scenario.Scenario{CutMostShared: 5},
		scenario.Scenario{CutMostBetween: 3},
		scenario.Scenario{RemoveISPs: isps[:1]},
		scenario.Scenario{Additions: []scenario.Addition{{
			A: m.Node(0).Key(), B: m.Node(fiber.NodeID(n - 1)).Key(),
		}}},
		scenario.Scenario{},
	)
	return batch
}

// BenchmarkScenarioEvaluate times one what-if evaluation per
// iteration on a warmed engine, per path.
func BenchmarkScenarioEvaluate(b *testing.B) {
	sharedStudy()
	sc := scenario.Scenario{CutMostShared: 5}
	ctx := context.Background()
	for _, mode := range scenarioModes() {
		b.Run(mode.name, func(b *testing.B) {
			eng := scenario.New(benchRes, benchMx, scenario.Options{Seed: 42, CloneEval: mode.clone})
			if _, err := eng.Evaluate(ctx, sc); err != nil { // warm: baseline memo, scratch pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(ctx, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioEvaluateCapacity times a circular-disaster
// evaluation — the workload whose cost the capacity stage (gravity
// demands + max-flow per touched pair) rides on — per path, on a
// warmed engine. The lost-gbps metric is the severity the heatmap
// plots; it is byte-identical across modes by the differential suite.
func BenchmarkScenarioEvaluateCapacity(b *testing.B) {
	sharedStudy()
	loc := benchRes.Map.Node(0).Loc
	sc := scenario.Scenario{
		Regions: []scenario.Region{{Lat: loc.Lat, Lon: loc.Lon, RadiusKm: 150}},
	}
	ctx := context.Background()
	for _, mode := range scenarioModes() {
		b.Run(mode.name, func(b *testing.B) {
			eng := scenario.New(benchRes, benchMx, scenario.Options{Seed: 42, CloneEval: mode.clone})
			r, err := eng.Evaluate(ctx, sc) // warm: baseline + capacity memo
			if err != nil {
				b.Fatal(err)
			}
			if r.LostTraffic == nil {
				b.Fatal("no lost-traffic delta")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r, err = eng.Evaluate(ctx, sc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.LostTraffic.LostGbps, "lost-gbps")
		})
	}
}

// BenchmarkTracingOverhead pins the flight recorder's evaluation-path
// cost: the same warmed overlay evaluation with the recorder off
// (plain Evaluate, nothing records) and on (every iteration records a
// full span tree into the store, attrs, exemplars and all). cmd/
// benchjson derives the on/off ns-per-op ratio into BENCH_obs.json;
// the acceptance bar is ratio <= 1.05.
func BenchmarkTracingOverhead(b *testing.B) {
	sharedStudy()
	sc := scenario.Scenario{CutMostShared: 5}
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		record bool
	}{
		{"recorder=off", false},
		{"recorder=on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := scenario.New(benchRes, benchMx, scenario.Options{Seed: 42})
			if _, err := eng.Evaluate(ctx, sc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ectx := ctx
				var sp *obs.Span
				if mode.record {
					ectx, sp = obs.StartTrace(ctx, "bench.evaluate")
				}
				if _, err := eng.Evaluate(ectx, sc); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
		})
	}
}

// BenchmarkGridSweep times the batch subsystem's workload: plan the
// exhaustive disaster grid, sweep every cell, reduce each outcome, and
// assemble the GeoJSON heatmap — one full sweep job minus checkpoint
// I/O. cmd/benchjson derives cells/sec from the "cells" metric; that
// is the headline throughput of the jobs subsystem.
func BenchmarkGridSweep(b *testing.B) {
	sharedStudy()
	eng := scenario.New(benchRes, benchMx, scenario.Options{Seed: 42})
	plan, version, err := eng.PlanGrid(scenario.GridSpec{CellKm: 500, RadiiKm: []float64{100, 250}})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	scs := make([]scenario.Scenario, len(plan.Cells))
	for i, c := range plan.Cells {
		scs[i] = c.Scenario()
	}
	warm := scenario.Sweep(ctx, eng, scs[:1], 1)
	if warm[0].Err != "" {
		b.Fatal(warm[0].Err)
	}
	var artifact []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := scenario.Sweep(ctx, eng, scs, 0)
		cells := make([]scenario.CellOutcome, len(outs))
		for j := range outs {
			if outs[j].Err != "" {
				b.Fatal(outs[j].Err)
			}
			cells[j] = scenario.ReduceCell(plan.Cells[j], outs[j])
		}
		if artifact, err = scenario.BuildHeatmap(plan.Geom(), version, cells).GeoJSON(); err != nil {
			b.Fatal(err)
		}
	}
	if len(artifact) == 0 {
		b.Fatal("empty artifact")
	}
	b.ReportMetric(float64(len(plan.Cells)), "cells")
}

// BenchmarkScenarioSweep times the full disaster-grid batch through
// Sweep at all CPUs, per path; scenarios/op normalizes the grid size.
func BenchmarkScenarioSweep(b *testing.B) {
	sharedStudy()
	batch := scenarioSweepBatch()
	ctx := context.Background()
	for _, mode := range scenarioModes() {
		b.Run(mode.name, func(b *testing.B) {
			eng := scenario.New(benchRes, benchMx, scenario.Options{Seed: 42, CloneEval: mode.clone})
			warm := scenario.Sweep(ctx, eng, batch[:1], 1)
			if warm[0].Err != "" {
				b.Fatal(warm[0].Err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := scenario.Sweep(ctx, eng, batch, 0)
				for j := range out {
					if out[j].Err != "" {
						b.Fatal(out[j].Err)
					}
				}
			}
			b.ReportMetric(float64(len(batch)), "scenarios/op")
		})
	}
}

// BenchmarkLatencyAtlas pins the atlas speedup claim: the all-pairs
// city latency table computed per-pair (one early-stopped Dijkstra
// per pair — the asymptotics the §5.3 study grew up on) against the
// source-batched build (one full Dijkstra per city). Both halves
// produce byte-identical pair tables, verified before timing. The
// "row" sub-benchmark times one warm per-source row fill; its
// allocs/op must read 0 in BENCH_obs.json — the steady state of the
// batched kernel.
func BenchmarkLatencyAtlas(b *testing.B) {
	sharedStudy()
	ctx := context.Background()
	ref, err := latency.PairsPerPair(ctx, benchRes.Map, latency.Options{})
	if err != nil {
		b.Fatal(err)
	}
	warm, err := latency.Build(ctx, benchRes.Map, latency.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Pairs(), ref) {
		b.Fatal("batched atlas diverges from the per-pair reference")
	}

	b.Run("per-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := latency.PairsPerPair(ctx, benchRes.Map, latency.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			at, err := latency.Build(ctx, benchRes.Map, latency.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(at.Pairs()) != len(ref) {
				b.Fatal("pair count changed")
			}
		}
	})
	b.Run("row", func(b *testing.B) {
		g := benchRes.Map.Graph()
		wf := benchRes.Map.LitWeight()
		ws := graph.NewWorkspace()
		row := make([]float64, g.NumVertices())
		src := int(warm.Source(0))
		g.ShortestDistancesWS(ws, src, wf, row)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ShortestDistancesWS(ws, src, wf, row)
		}
	})
}
