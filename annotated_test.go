package intertubes_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnnotatedMap(t *testing.T) {
	s := study(t)
	anns := s.AnnotatedMap()
	if len(anns) != s.Map().Stats().Conduits {
		t.Fatalf("annotations = %d, want one per tenanted conduit (%d)",
			len(anns), s.Map().Stats().Conduits)
	}
	// Sorted by descending traffic.
	for i := 1; i < len(anns); i++ {
		ti := anns[i].ProbesWestEast + anns[i].ProbesEastWest
		tj := anns[i-1].ProbesWestEast + anns[i-1].ProbesEastWest
		if ti > tj {
			t.Fatal("not sorted by traffic")
		}
	}
	for _, ann := range anns[:20] {
		if ann.DelayMs <= 0 || ann.LengthKm <= 0 {
			t.Errorf("degenerate annotation %+v", ann)
		}
		// Delay follows length at fiber speed.
		if ann.DelayMs > ann.LengthKm/200 || ann.DelayMs < ann.LengthKm/210 {
			t.Errorf("delay %.3f ms inconsistent with %f km", ann.DelayMs, ann.LengthKm)
		}
		if ann.Sharing != len(ann.Tenants) {
			t.Errorf("sharing %d != tenants %d", ann.Sharing, len(ann.Tenants))
		}
		for _, inf := range ann.InferredTenants {
			for _, ten := range ann.Tenants {
				if inf == ten {
					t.Errorf("inferred tenant %s already published", inf)
				}
			}
		}
	}
	// The busiest conduits carry real probe volume and betweenness.
	if anns[0].ProbesWestEast+anns[0].ProbesEastWest == 0 {
		t.Error("busiest conduit has no probes")
	}
}

func TestAnnotatedGeoJSON(t *testing.T) {
	s := study(t)
	raw, err := s.AnnotatedGeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" || len(doc.Features) == 0 {
		t.Fatalf("doc = %s...", raw[:60])
	}
	props := doc.Features[0].Properties
	for _, key := range []string{"a", "b", "lengthKm", "delayMs", "tenants", "sharing", "probesWestEast", "betweenness"} {
		if _, ok := props[key]; !ok {
			t.Errorf("missing property %q", key)
		}
	}
	// Export to file.
	path := filepath.Join(t.TempDir(), "annotated.geojson")
	if err := s.ExportAnnotatedGeoJSON(path); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() < 1000 {
		t.Errorf("export too small: %v %v", fi, err)
	}
}

func TestHighRiskHighTraffic(t *testing.T) {
	s := study(t)
	hot := s.HighRiskHighTraffic(40)
	if len(hot) == 0 {
		t.Fatal("no high-risk high-traffic conduits; the paper's core finding should reproduce")
	}
	anns := s.AnnotatedMap()
	var avgSharing float64
	for _, a := range anns {
		avgSharing += float64(a.Sharing)
	}
	avgSharing /= float64(len(anns))
	for _, h := range hot {
		if float64(h.Sharing) < avgSharing {
			t.Errorf("hot conduit %s-%s sharing %d below map average %.1f", h.A, h.B, h.Sharing, avgSharing)
		}
	}
	// k larger than the map degrades gracefully.
	if got := s.HighRiskHighTraffic(10 * len(anns)); len(got) != len(anns) {
		t.Errorf("oversized k returned %d of %d", len(got), len(anns))
	}
}

func TestRenderResilience(t *testing.T) {
	s := study(t)
	out := s.RenderResilience(5)
	for _, marker := range []string{"criticality", "random cuts", "targeted (most shared)", "Minimum conduit cuts"} {
		if !strings.Contains(out, marker) {
			t.Errorf("missing %q", marker)
		}
	}
	if out2 := s.RenderResilience(0); !strings.Contains(out2, "cutting 8 conduits") {
		t.Error("k<=0 should default to 8")
	}
}

func TestCutImpactFacade(t *testing.T) {
	s := study(t)
	impacts := s.CutImpact(6)
	if len(impacts) != 20 {
		t.Fatalf("impacts = %d", len(impacts))
	}
	anyHit := false
	for _, im := range impacts {
		if im.CutsHit > 6 {
			t.Errorf("%s hit in %d > 6 cuts", im.ISP, im.CutsHit)
		}
		if im.CutsHit > 0 {
			anyHit = true
		}
		if im.DisconnectedPairs < 0 || im.DisconnectedPairs > 1 {
			t.Errorf("%s disconnection %v out of range", im.ISP, im.DisconnectedPairs)
		}
	}
	if !anyHit {
		t.Error("cutting the most-shared conduits hit nobody")
	}
}

func TestPartitionCostsFacade(t *testing.T) {
	s := study(t)
	costs := s.PartitionCosts()
	if len(costs) != 20 {
		t.Fatalf("costs = %d", len(costs))
	}
}

func TestCriticalityFacade(t *testing.T) {
	s := study(t)
	crit := s.Criticality(5)
	if len(crit) != 5 {
		t.Fatalf("criticality = %d", len(crit))
	}
}

func TestTitleIIScenario(t *testing.T) {
	s := study(t)
	r := s.TitleIIScenario(3)
	if len(r.Entrants) != 3 {
		t.Fatalf("entrants = %v", r.Entrants)
	}
	// The paper's §6.2 claim: mandated access raises shared risk.
	if r.ScenarioMeanSharing <= r.BaselineMeanSharing {
		t.Errorf("mean sharing did not rise: %.2f -> %.2f",
			r.BaselineMeanSharing, r.ScenarioMeanSharing)
	}
	if r.ScenarioTail < r.BaselineTail {
		t.Errorf("mega-shared tail shrank: %d -> %d", r.BaselineTail, r.ScenarioTail)
	}
	if r.IncumbentMeanRise <= 0 {
		t.Errorf("incumbent exposure did not rise: %v", r.IncumbentMeanRise)
	}
	// Entrants mostly ride existing tubes.
	if r.NewConduits > 40 {
		t.Errorf("entrants dug %d new conduits; mandated access should make that rare", r.NewConduits)
	}
	// n<=0 defaults to 3.
	if d := s.TitleIIScenario(0); len(d.Entrants) != 3 {
		t.Errorf("default entrants = %d", len(d.Entrants))
	}
}

func TestRenderTitleII(t *testing.T) {
	s := study(t)
	out := s.RenderTitleII(2)
	for _, marker := range []string{"Title II scenario", "mean conduit sharing", "new conduits dug"} {
		if !strings.Contains(out, marker) {
			t.Errorf("missing %q", marker)
		}
	}
}
