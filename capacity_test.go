package intertubes_test

import (
	"strings"
	"testing"
)

// TestRenderCapacity exercises the capacity study end to end on the
// shared study: the baseline must serve a nonzero share of the
// gravity demand, and cutting all target conduits must strand traffic.
func TestRenderCapacity(t *testing.T) {
	out := study(t).RenderCapacity()
	for _, m := range []string{
		"Capacity study", "offered:", "served (baseline):",
		"most-shared conduits", "Lost traffic per target conduit",
	} {
		if !strings.Contains(out, m) {
			t.Errorf("missing %q in:\n%s", m, out)
		}
	}
	if strings.Contains(out, "evaluation failed") {
		t.Fatalf("capacity sweep failed:\n%s", out)
	}
	// The per-conduit table has one row per target conduit.
	if got := strings.Count(out, " - "); got < 5 {
		t.Errorf("per-conduit table suspiciously small (%d rows):\n%s", got, out)
	}
}
