package intertubes

import (
	"strings"
	"testing"

	"intertubes/internal/latency"
)

// TestRenderInflationCDFGuard pins renderInflationCDF against
// degenerate pair sets: an empty atlas (a fully dark map) must render
// a clean notice, and a populated one must never leak NaN quantiles.
func TestRenderInflationCDFGuard(t *testing.T) {
	cases := []struct {
		name   string
		pairs  []latency.PairLatency
		want   []string
		forbid []string
	}{
		{
			name:   "empty pair set",
			pairs:  nil,
			want:   []string{"Latency inflation", "no connected city pairs"},
			forbid: []string{"NaN"},
		},
		{
			name: "single pair",
			pairs: []latency.PairLatency{
				{A: 0, B: 1, FiberMs: 5, GeoMs: 4, Inflation: 1.25},
			},
			want:   []string{"fiber path (ms)", "c-latency (ms)", "inflation (x)", "pairs: 1", "median inflation 1.25x"},
			forbid: []string{"NaN"},
		},
		{
			name: "several pairs",
			pairs: []latency.PairLatency{
				{A: 0, B: 1, FiberMs: 5, GeoMs: 4, Inflation: 1.25},
				{A: 0, B: 2, FiberMs: 9, GeoMs: 3, Inflation: 3},
				{A: 1, B: 2, FiberMs: 4, GeoMs: 4, Inflation: 1},
			},
			want:   []string{"pairs: 3"},
			forbid: []string{"NaN"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := renderInflationCDF(tc.pairs)
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
			for _, f := range tc.forbid {
				if strings.Contains(out, f) {
					t.Errorf("output contains forbidden %q:\n%s", f, out)
				}
			}
		})
	}
}
